// Reproduces Table 2: time consumption of reordering. RCM / LLP / Gorder
// are host-side preprocessing passes (wall-clock seconds, one-off, before
// any query can run). "SAGE per round" is the modeled GPU cost of applying
// one Sampling-based Reordering round — incurred incrementally at runtime,
// not as start-up latency (Section 7.2).

#include "bench_common.h"

namespace sage::bench {
namespace {

double SagePerRoundSeconds(const graph::Csr& csr) {
  sim::GpuDevice device(BenchSpec());
  core::EngineOptions opts;
  opts.sampling_reorder = true;
  opts.sampling_threshold_edges = csr.num_edges() / 2 + 1;
  core::Engine engine(&device, csr, opts);
  apps::PageRankProgram pr;
  int guard = 0;
  while (engine.reorder_rounds() < 3 && guard < 100) {
    auto s = apps::RunPageRank(engine, pr, 2);
    SAGE_CHECK(s.ok());
    ++guard;
  }
  return engine.reorder_rounds() == 0
             ? 0.0
             : engine.reorder_seconds_total() / engine.reorder_rounds();
}

void Run() {
  std::printf("=== Table 2: time consumption of reordering (sec.) ===\n");
  std::printf("(RCM/LLP/Gorder: host preprocessing wall-clock; SAGE: modeled "
              "GPU cost per round)\n");
  PrintHeader("dataset", {"RCM", "LLP", "Gorder", "SAGE/round"});
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);
    std::vector<double> row;
    for (const char* method : {"rcm", "llp", "gorder"}) {
      row.push_back(CachedReorder(method, id, csr).seconds);
    }
    row.push_back(SagePerRoundSeconds(csr));
    PrintRow(graph::DatasetName(id), row, "%12.5f");
  }
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
