// Micro-benchmarks (google-benchmark) for the substrate primitives: the
// segmented sort used by Sampling-based Reordering, CSR construction, the
// memory-system model, tile decomposition, and the reordering baselines on
// a small graph. These guard the simulator's own performance (a slow
// simulator caps every experiment above).

#include <benchmark/benchmark.h>

#include "core/resident.h"
#include "graph/generators.h"
#include "reorder/permutation.h"
#include "reorder/reorderers.h"
#include "sim/gpu_device.h"
#include "sim/memory_sim.h"
#include "util/prefix_sum.h"
#include "util/random.h"
#include "util/segsort.h"

namespace sage {
namespace {

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_PrefixSum(benchmark::State& state) {
  std::vector<uint32_t> in(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::ExclusivePrefixSum(in));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrefixSum)->Arg(1 << 14)->Arg(1 << 18);

void BM_SegmentedSort(benchmark::State& state) {
  util::Rng rng(2);
  size_t n = state.range(0);
  std::vector<uint32_t> keys(n);
  std::vector<uint32_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<uint32_t>(rng.Next());
    vals[i] = static_cast<uint32_t>(i);
  }
  std::vector<uint64_t> offsets{0, n / 3, n / 2, n};
  for (auto _ : state) {
    auto k = keys;
    auto v = vals;
    util::SegmentedSortKV(offsets, k, v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SegmentedSort)->Arg(1 << 14)->Arg(1 << 17);

void BM_CsrFromCoo(benchmark::State& state) {
  graph::Csr csr = graph::GenerateRmat(12, 60000, 0.5, 0.2, 0.2, 3);
  graph::Coo coo = csr.ToCoo();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Csr::FromCoo(coo));
  }
  state.SetItemsProcessed(state.iterations() * coo.num_edges());
}
BENCHMARK(BM_CsrFromCoo);

void BM_ApplyPermutation(benchmark::State& state) {
  graph::Csr csr = graph::GenerateRmat(12, 60000, 0.5, 0.2, 0.2, 3);
  auto perm = reorder::RandomOrder(csr, 1).new_of_old;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder::ApplyToCsr(csr, perm));
  }
  state.SetItemsProcessed(state.iterations() * csr.num_edges());
}
BENCHMARK(BM_ApplyPermutation);

void BM_MemoryAccessBatch(benchmark::State& state) {
  sim::DeviceSpec spec;
  sim::MemorySim mem(spec);
  sim::Buffer buf = mem.Register("x", 1 << 20, 4);
  util::Rng rng(4);
  std::vector<uint64_t> idx(32);
  for (auto& i : idx) i = rng.UniformU64(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Access(buf, idx));
  }
  state.SetItemsProcessed(state.iterations() * idx.size());
}
BENCHMARK(BM_MemoryAccessBatch);

void BM_CollectSectorsDedup(benchmark::State& state) {
  // The sector-dedup kernel of every modeled access: address arithmetic
  // (the power-of-two shift fast path under the hood), sort, unique. This
  // is the simulator's single hottest loop, and the SIMD/scalar split in
  // util/simd.h exists for it.
  sim::DeviceSpec spec;
  sim::MemorySim mem(spec);
  sim::Buffer buf = mem.Register("x", 1 << 22, 4);
  util::Rng rng(5);
  size_t n = state.range(0);
  std::vector<uint64_t> idx(n);
  for (auto& i : idx) i = rng.UniformU64(1 << 22);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    mem.CollectSectors(buf, idx, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CollectSectorsDedup)->Arg(32)->Arg(1 << 10)->Arg(1 << 14);

void BM_FilterCommit(benchmark::State& state) {
  // The branchless deferred-filter commit loop of Engine::RunStage: output
  // pre-sized, every neighbor stored unconditionally, the cursor advancing
  // only when the filter admits it — no per-edge push_back.
  util::Rng rng(6);
  size_t n = state.range(0);
  std::vector<uint32_t> neighbors(n);
  std::vector<uint32_t> admit(n);
  for (size_t i = 0; i < n; ++i) {
    neighbors[i] = static_cast<uint32_t>(rng.Next());
    admit[i] = static_cast<uint32_t>(rng.UniformU64(2));
  }
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.resize(n);
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      out[kept] = neighbors[i];
      kept += admit[i];
    }
    out.resize(kept);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterCommit)->Arg(1 << 14)->Arg(1 << 18);

void BM_DecomposeAdjacency(benchmark::State& state) {
  core::TiledOptions opts;
  std::vector<core::TileEntry> out;
  for (auto _ : state) {
    out.clear();
    core::DecomposeAdjacency(7, 12345, static_cast<uint32_t>(state.range(0)),
                             opts, 8, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DecomposeAdjacency)->Arg(17)->Arg(1000)->Arg(100000);

void BM_RcmOrder(benchmark::State& state) {
  graph::Csr csr = graph::GenerateCommunity(4096, 16, 256, 0.8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder::RcmOrder(csr));
  }
}
BENCHMARK(BM_RcmOrder);

void BM_GorderOrder(benchmark::State& state) {
  graph::Csr csr = graph::GenerateCommunity(4096, 16, 256, 0.8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder::GorderOrder(csr));
  }
}
BENCHMARK(BM_GorderOrder);

}  // namespace
}  // namespace sage

BENCHMARK_MAIN();
