// Extension experiments beyond the paper's evaluation, exercising claims
// the paper makes in prose:
//   (a) Dynamic graphs (Section 7.2): apply edge-update batches to the
//       CSR, keep querying, and watch Sampling-based Reordering
//       re-converge — versus an offline Gorder whose preprocessing would
//       have to be redone from scratch.
//   (b) Out-of-core PageRank: SAGE's on-demand tile reads vs Subway's
//       whole-graph preloads under a global traversal.
//   (c) Concurrent multi-source BFS (the iBFS workload [27]): shared
//       traversal amortizes adjacency reads across 32 instances.
//   (d) Multi-GPU PageRank with owner-computes message exchange.
//   (e) Delta (residual-push) PageRank: frontier-adaptive convergence vs
//       fixed global rounds.

#include "apps/msbfs.h"
#include "apps/pr_delta.h"
#include "baselines/subway.h"
#include "bench_common.h"
#include "core/sharded_engine.h"
#include "graph/dynamic.h"

namespace sage::bench {
namespace {

void DynamicSection() {
  std::printf("\n(a) dynamic updates: PR speed before/after 3 update "
              "batches (twitter-s)\n");
  PrintHeader("state", {"GTEPS", "SR-rounds"});
  graph::Csr csr = LoadDataset(graph::DatasetId::kTwitters);
  util::Rng rng(77);
  for (int batch_no = 0; batch_no <= 3; ++batch_no) {
    sim::GpuDevice device(BenchSpec());
    core::EngineOptions opts;
    opts.sampling_reorder = true;
    opts.sampling_threshold_edges = csr.num_edges() / 2 + 1;
    core::Engine engine(&device, csr, opts);
    apps::PageRankProgram pr;
    // Let the reorderer adapt, then measure.
    auto warm = apps::RunPageRank(engine, pr, 12);
    SAGE_CHECK(warm.ok());
    engine.PauseSampling();
    auto measured = apps::RunPageRank(engine, pr, kPrIterations);
    SAGE_CHECK(measured.ok());
    PrintRow("batch " + std::to_string(batch_no),
             {measured->GTeps(), static_cast<double>(engine.reorder_rounds())});
    // Stream the next batch of updates into the CSR.
    graph::EdgeUpdateBatch batch;
    for (int i = 0; i < 20000; ++i) {
      batch.insertions.emplace_back(rng.UniformU32(csr.num_nodes()),
                                    rng.UniformU32(csr.num_nodes()));
    }
    auto updated = graph::ApplyUpdates(csr, batch);
    SAGE_CHECK(updated.ok());
    csr = std::move(updated).value();
  }
}

void OutOfCorePrSection() {
  std::printf("\n(b) out-of-core PageRank (%u iterations), GTEPS\n",
              kPrIterations);
  PrintHeader("dataset", {"Subway", "SAGE", "Subway-MB", "SAGE-MB"});
  for (graph::DatasetId id :
       {graph::DatasetId::kLjournals, graph::DatasetId::kTwitters}) {
    graph::Csr csr = LoadDataset(id);
    sim::GpuDevice sdev(BenchSpec());
    baselines::SubwayPageRank subway(&sdev, &csr);
    auto sub = subway.Run(kPrIterations);

    sim::GpuDevice gdev(BenchSpec());
    core::EngineOptions opts;
    opts.adjacency_on_host = true;
    double sage = PrGteps(gdev, csr, opts);
    PrintRow(graph::DatasetName(id),
             {sub.stats.GTeps(), sage,
              static_cast<double>(sub.bytes_transferred) / 1e6,
              static_cast<double>(gdev.host_link().stats().wire_bytes) / 1e6});
  }
}

void MsBfsSection() {
  std::printf("\n(c) concurrent multi-source BFS: 32 instances shared vs "
              "separate\n");
  PrintHeader("dataset", {"shared-ms", "separate-ms", "speedup"});
  for (graph::DatasetId id :
       {graph::DatasetId::kLjournals, graph::DatasetId::kTwitters}) {
    graph::Csr csr = LoadDataset(id);
    auto sources = PickSources(csr, 32, 0xc0ffee);

    sim::GpuDevice d1(BenchSpec());
    core::Engine e1(&d1, csr, core::EngineOptions());
    apps::MultiSourceBfsProgram msbfs;
    auto shared = apps::RunMultiSourceBfs(e1, msbfs, sources);
    SAGE_CHECK(shared.ok());

    sim::GpuDevice d2(BenchSpec());
    core::Engine e2(&d2, csr, core::EngineOptions());
    apps::BfsProgram bfs;
    double separate = 0;
    for (graph::NodeId src : sources) {
      auto s = apps::RunBfs(e2, bfs, src);
      SAGE_CHECK(s.ok());
      separate += s->seconds;
    }
    PrintRow(graph::DatasetName(id),
             {shared->seconds * 1e3, separate * 1e3,
              separate / std::max(shared->seconds, 1e-12)});
  }
}

void MultiGpuPrSection() {
  std::printf("\n(d) multi-GPU PageRank (2 GPUs, %u iterations), GTEPS\n",
              kPrIterations);
  PrintHeader("dataset", {"1xSAGE", "2xSAGE", "2xGunrock", "comm-ms"});
  for (graph::DatasetId id :
       {graph::DatasetId::kBrains, graph::DatasetId::kTwitters}) {
    graph::Csr csr = LoadDataset(id);
    sim::GpuDevice single(BenchSpec());
    double one = PrGteps(single, csr, core::EngineOptions());

    double sage_comm_ms = 0;
    auto pr2 = [&](core::MultiGpuStrategy strategy, double* comm_ms) {
      core::ShardOptions opts;
      opts.num_shards = 2;
      opts.strategy = strategy;
      opts.spec = BenchSpec();
      auto engine = core::ShardedEngine::Create(csr, opts);
      SAGE_CHECK(engine.ok()) << engine.status().ToString();
      apps::AppParams params;
      params.iterations = kPrIterations;
      auto result = (*engine)->Run("pagerank", params);
      SAGE_CHECK(result.ok()) << result.status().ToString();
      if (comm_ms != nullptr) *comm_ms = result->comm_seconds * 1e3;
      double t = result->stats.seconds + result->comm_seconds;
      return t <= 0 ? 0.0
                    : static_cast<double>(result->stats.edges_traversed) / t /
                          1e9;
    };
    double sage2 = pr2(core::MultiGpuStrategy::kSage, &sage_comm_ms);
    double gunrock2 = pr2(core::MultiGpuStrategy::kGunrockLike, nullptr);
    PrintRow(graph::DatasetName(id), {one, sage2, gunrock2, sage_comm_ms});
  }
}

void DeltaPrSection() {
  std::printf("\n(e) delta PageRank: adaptive frontier vs %u global rounds\n",
              kPrIterations);
  PrintHeader("dataset",
              {"global-ms", "delta-ms", "delta-iters", "last-front%"});
  for (graph::DatasetId id :
       {graph::DatasetId::kTwitters, graph::DatasetId::kFriendsters}) {
    graph::Csr csr = LoadDataset(id);
    sim::GpuDevice d1(BenchSpec());
    core::Engine e1(&d1, csr, core::EngineOptions());
    apps::PageRankProgram pr;
    auto global = apps::RunPageRank(e1, pr, kPrIterations);
    SAGE_CHECK(global.ok());

    sim::GpuDevice d2(BenchSpec());
    core::Engine e2(&d2, csr, core::EngineOptions());
    std::vector<core::RunStats> trace;
    e2.set_iteration_trace(&trace);
    apps::DeltaPageRankProgram prd;
    auto delta = apps::RunDeltaPageRank(e2, prd, 1e-7);
    SAGE_CHECK(delta.ok());
    double last_frontier_pct =
        trace.empty() ? 0.0
                      : 100.0 * static_cast<double>(trace.back().frontier_nodes) /
                            static_cast<double>(csr.num_nodes());
    PrintRow(graph::DatasetName(id),
             {global->seconds * 1e3, delta->seconds * 1e3,
              static_cast<double>(delta->iterations), last_frontier_pct});
  }
}

void Run() {
  std::printf("=== Extension experiments (beyond the paper's figures) ===\n");
  DynamicSection();
  OutOfCorePrSection();
  MsBfsSection();
  MultiGpuPrSection();
  DeltaPrSection();
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
