// Simulation throughput: wall-clock speed of the simulator itself (edges
// simulated per second of host time), serial vs parallel execution backend
// (DESIGN.md §5). This measures the cost of *running* the model, not the
// modeled GTEPS — the modeled results are bit-identical in both modes (the
// equivalence harness proves it; this bench re-checks the output digests).
//
// Emits BENCH_sim_throughput.json next to the binary's working directory.
// The speedup column only exceeds 1 on a multi-core host: with one
// hardware thread the parallel backend degenerates to the serial path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "check/determinism.h"
#include "sim/profile.h"
#include "util/metrics.h"

namespace sage::bench {
namespace {

/// Regression floor for the parallel backend's wall-clock speed relative
/// to serial. The parallel backend always pays for trace recording and
/// sliced-L2 replay bookkeeping; on few-core hosts (the JSON records
/// host_threads) there is little replay parallelism to win it back, and
/// the cost is most visible on the workload with the largest per-iteration
/// traces — uk-2002s/pr (~3.9M traversed edges of dense global PR rounds)
/// has measured as low as 0.865x serial on a single-thread host. That is
/// expected overhead, not a bug (outputs stay bit-identical; the
/// equivalence harness checks them). Anything below this floor, though,
/// means the trace/replay path itself regressed and the bench fails.
constexpr double kMinParallelSpeedup = 0.70;

struct Measurement {
  std::string dataset;
  std::string app;
  uint64_t edges = 0;
  double serial_wall = 0.0;
  double parallel_wall = 0.0;
  uint32_t host_threads = 0;
  bool identical = false;

  double SerialEps() const {
    return serial_wall <= 0 ? 0 : static_cast<double>(edges) / serial_wall;
  }
  double ParallelEps() const {
    return parallel_wall <= 0 ? 0
                              : static_cast<double>(edges) / parallel_wall;
  }
  double Speedup() const {
    return parallel_wall <= 0 ? 0 : serial_wall / parallel_wall;
  }
};

double WallSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One app run under `threads`; returns (edges traversed, output digest).
/// With `observe`, the full SageScope path is on: the device records its
/// kernel timeline and the device + engine metric registries are exported
/// to JSON after the run — the cost the observability_overhead measurement
/// prices.
std::pair<uint64_t, uint64_t> RunOnce(const graph::Csr& csr,
                                      const std::string& app,
                                      uint32_t threads, bool observe = false) {
  core::EngineOptions opts;
  opts.host_threads = threads;
  sim::GpuDevice device(BenchSpec());
  if (observe) device.set_timeline_enabled(true);
  core::Engine engine(&device, csr, opts);
  uint64_t edges = 0;
  uint64_t digest = 0xcbf29ce484222325ull;
  if (app == "bfs") {
    apps::BfsProgram bfs;
    for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
      auto stats = apps::RunBfs(engine, bfs, src);
      SAGE_CHECK(stats.ok()) << stats.status().ToString();
      edges += stats->edges_traversed;
    }
    for (graph::NodeId u = 0; u < csr.num_nodes(); ++u) {
      uint32_t d = bfs.DistanceOf(u);
      digest = check::HashBytes(&d, sizeof(d), digest);
    }
  } else {
    apps::PageRankProgram pr;
    auto stats = apps::RunPageRank(engine, pr, kPrIterations);
    SAGE_CHECK(stats.ok()) << stats.status().ToString();
    edges += stats->edges_traversed;
    for (graph::NodeId u = 0; u < csr.num_nodes(); ++u) {
      double r = pr.RankOf(u);
      digest = check::HashBytes(&r, sizeof(r), digest);
    }
  }
  if (observe) {
    // Consume the exports the way a caller would so the work is not
    // optimized away; none of it may perturb the modeled results.
    util::MetricsRegistry registry;
    sim::ExportDeviceMetrics(device, &registry);
    volatile size_t sink = registry.ToJson().size() +
                           engine.metrics().ToJson().size() +
                           device.totals().kernel_records.size();
    (void)sink;
  }
  // Fold modeled timing in: serial and parallel must agree on every bit.
  const auto& totals = device.totals();
  digest = check::HashBytes(&totals.seconds, sizeof(totals.seconds), digest);
  digest = check::HashSpan(
      std::span<const uint64_t>(totals.sm_sectors), digest);
  return {edges, digest};
}

// --- Observability overhead (SageScope) -------------------------------------

/// Prices the "everything on" observability configuration — kernel
/// timeline recording plus a full metrics export — against the plain run
/// on the same workload. The digest check proves the instrumented run's
/// modeled results did not move; the overhead ratio is documented in
/// BENCH_sim_throughput.json (target <= 2%).
struct ObservabilityCost {
  double plain_wall = 0.0;
  double observed_wall = 0.0;
  bool identical = false;

  double Overhead() const {
    return plain_wall <= 0 ? 0 : observed_wall / plain_wall - 1.0;
  }
};

ObservabilityCost MeasureObservability() {
  // Best-of-N per mode: run-to-run scheduler noise on this sub-second
  // workload swamps a couple of percent, so each side reports its fastest
  // repeat rather than a sum.
  constexpr int kRepeats = 9;
  graph::Csr csr = LoadDataset(graph::DatasetId::kLjournals);
  ObservabilityCost cost;
  (void)RunOnce(csr, "bfs", 1);  // warm-up, as in Measure
  uint64_t plain_digest = 0, observed_digest = 0;
  cost.plain_wall = std::numeric_limits<double>::infinity();
  cost.observed_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRepeats; ++r) {
    cost.plain_wall = std::min(
        cost.plain_wall,
        WallSeconds([&] { plain_digest = RunOnce(csr, "bfs", 1).second; }));
    cost.observed_wall = std::min(
        cost.observed_wall, WallSeconds([&] {
          observed_digest = RunOnce(csr, "bfs", 1, /*observe=*/true).second;
        }));
  }
  cost.identical = plain_digest == observed_digest;
  SAGE_CHECK(cost.identical)
      << "observability changed the modeled results (digest moved)";
  return cost;
}

Measurement Measure(graph::DatasetId id, const std::string& app) {
  graph::Csr csr = LoadDataset(id);
  Measurement m;
  m.dataset = graph::DatasetName(id);
  m.app = app;
  m.host_threads = util::ThreadPool::HardwareThreads();

  uint64_t serial_digest = 0, parallel_digest = 0;
  // Warm one run so dataset caches / first-touch allocation don't skew the
  // serial (first-measured) side.
  (void)RunOnce(csr, app, 1);
  m.serial_wall = WallSeconds([&] {
    auto [edges, digest] = RunOnce(csr, app, 1);
    m.edges = edges;
    serial_digest = digest;
  });
  m.parallel_wall = WallSeconds([&] {
    auto [edges, digest] = RunOnce(csr, app, 0);
    SAGE_CHECK(edges == m.edges);
    parallel_digest = digest;
  });
  m.identical = serial_digest == parallel_digest;
  SAGE_CHECK(m.identical) << m.dataset << "/" << app
                          << ": parallel run diverged from serial";
  SAGE_CHECK(m.Speedup() >= kMinParallelSpeedup)
      << m.dataset << "/" << app << ": parallel backend at "
      << m.Speedup() << "x serial, below the " << kMinParallelSpeedup
      << "x regression floor (see kMinParallelSpeedup)";
  return m;
}

void WriteJson(const std::vector<Measurement>& ms,
               const ObservabilityCost& obs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"host_threads\": %u,\n  \"min_speedup\": %.2f,\n"
               "  \"results\": [\n",
               ms.empty() ? 0 : ms[0].host_threads, kMinParallelSpeedup);
  for (size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"app\": \"%s\", \"edges\": %llu,\n"
        "     \"serial_edges_per_sec\": %.1f, \"parallel_edges_per_sec\": "
        "%.1f,\n"
        "     \"speedup\": %.3f, \"bit_identical\": %s}%s\n",
        m.dataset.c_str(), m.app.c_str(),
        static_cast<unsigned long long>(m.edges), m.SerialEps(),
        m.ParallelEps(), m.Speedup(), m.identical ? "true" : "false",
        i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n"
      "  \"observability_overhead\": {\"workload\": \"ljournals/bfs "
      "serial, timeline + metrics export on\", \"plain_wall_seconds\": "
      "%.6f, \"observed_wall_seconds\": %.6f, \"overhead\": %.4f, "
      "\"bit_identical\": %s}\n"
      "}\n",
      obs.plain_wall, obs.observed_wall, obs.Overhead(),
      obs.identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run() {
  std::printf("=== Simulation throughput: serial vs parallel backend "
              "(host threads: %u) ===\n",
              util::ThreadPool::HardwareThreads());
  std::vector<Measurement> ms;
  for (graph::DatasetId id :
       {graph::DatasetId::kLjournals, graph::DatasetId::kUk2002s}) {
    for (const char* app : {"bfs", "pr"}) {
      ms.push_back(Measure(id, app));
    }
  }
  PrintHeader("dataset/app", {"edges", "serial-e/s", "par-e/s", "speedup"});
  for (const Measurement& m : ms) {
    PrintRow(m.dataset + "/" + m.app,
             {static_cast<double>(m.edges), m.SerialEps(), m.ParallelEps(),
              m.Speedup()},
             "%12.2f");
  }
  ObservabilityCost obs = MeasureObservability();
  std::printf("\nobservability (timeline + metrics export): %.2f%% overhead "
              "on ljournals/bfs, modeled results bit-identical\n",
              obs.Overhead() * 100.0);
  WriteJson(ms, obs, "BENCH_sim_throughput.json");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
