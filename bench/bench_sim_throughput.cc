// Simulation throughput: wall-clock speed of the simulator itself (edges
// simulated per second of host time), serial backend vs the parallel
// backend swept across host thread counts (DESIGN.md §5). This measures
// the cost of *running* the model, not the modeled GTEPS — the modeled
// results are bit-identical at every thread count (the equivalence harness
// proves it; this bench re-checks the output digests per swept point).
//
// Emits BENCH_sim_throughput.json next to the binary's working directory.
// Speedup only exceeds 1 on a multi-core host: with one hardware thread
// every parallel point is oversubscribed and pays trace/replay overhead
// plus context switches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "check/determinism.h"
#include "sim/profile.h"
#include "util/metrics.h"

namespace sage::bench {
namespace {

/// Regression floor for swept thread counts that the hardware can actually
/// run concurrently (1 < threads <= hardware_concurrency). The sharded L2
/// replay, arena workspaces, and SIMD hot loops exist to make those points
/// genuinely fast, so anything under this floor there means the parallel
/// backend regressed and the bench fails.
constexpr double kMinParallelSpeedup = 1.50;

/// Floor for oversubscribed points (threads > hardware_concurrency). The
/// parallel backend always pays for trace recording and sliced-L2 replay
/// bookkeeping; with more workers than cores there is no parallelism to
/// win it back and the OS adds context-switch cost on top. uk-2002s/pr
/// (~3.9M traversed edges of dense global PR rounds) has measured as low
/// as 0.865x serial on a single-thread host. That is expected overhead,
/// not a bug (outputs stay bit-identical; the digests below check them) —
/// but below this floor the trace/replay path itself regressed.
constexpr double kOversubscribedFloor = 0.70;

/// Swept host thread counts. 1 is the serial baseline; the rest run the
/// trace-then-replay parallel backend with that many workers.
constexpr uint32_t kSweepThreads[] = {1, 2, 4, 8};

/// Best-of-N wall clocks per point: run-to-run scheduler noise on these
/// sub-second workloads swamps the few-percent differences the floors
/// police, so each point reports its fastest repeat.
constexpr int kRepeats = 3;

/// Floor that applies to a parallel point at `threads` workers.
double FloorFor(uint32_t threads) {
  return threads <= util::ThreadPool::HardwareThreads()
             ? kMinParallelSpeedup
             : kOversubscribedFloor;
}

struct SweepPoint {
  uint32_t threads = 0;
  double wall = 0.0;       // best-of-kRepeats seconds
  bool identical = false;  // digest equals the serial digest
};

struct Measurement {
  std::string dataset;
  std::string app;
  uint64_t edges = 0;
  double serial_wall = 0.0;
  std::vector<SweepPoint> sweep;  // parallel points (threads > 1)

  double SerialEps() const {
    return serial_wall <= 0 ? 0 : static_cast<double>(edges) / serial_wall;
  }
  double Eps(const SweepPoint& p) const {
    return p.wall <= 0 ? 0 : static_cast<double>(edges) / p.wall;
  }
  double Speedup(const SweepPoint& p) const {
    return p.wall <= 0 ? 0 : serial_wall / p.wall;
  }
};

double WallSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One app run under `threads`; returns (edges traversed, output digest).
/// With `observe`, the full SageScope path is on: the device records its
/// kernel timeline and the device + engine metric registries are exported
/// to JSON after the run — the cost the observability_overhead measurement
/// prices.
std::pair<uint64_t, uint64_t> RunOnce(const graph::Csr& csr,
                                      const std::string& app,
                                      uint32_t threads, bool observe = false) {
  core::EngineOptions opts;
  opts.host_threads = threads;
  sim::GpuDevice device(BenchSpec());
  if (observe) device.set_timeline_enabled(true);
  core::Engine engine(&device, csr, opts);
  uint64_t edges = 0;
  uint64_t digest = 0xcbf29ce484222325ull;
  if (app == "bfs") {
    apps::BfsProgram bfs;
    for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
      auto stats = apps::RunBfs(engine, bfs, src);
      SAGE_CHECK(stats.ok()) << stats.status().ToString();
      edges += stats->edges_traversed;
    }
    for (graph::NodeId u = 0; u < csr.num_nodes(); ++u) {
      uint32_t d = bfs.DistanceOf(u);
      digest = check::HashBytes(&d, sizeof(d), digest);
    }
  } else {
    apps::PageRankProgram pr;
    auto stats = apps::RunPageRank(engine, pr, kPrIterations);
    SAGE_CHECK(stats.ok()) << stats.status().ToString();
    edges += stats->edges_traversed;
    for (graph::NodeId u = 0; u < csr.num_nodes(); ++u) {
      double r = pr.RankOf(u);
      digest = check::HashBytes(&r, sizeof(r), digest);
    }
  }
  if (observe) {
    // Consume the exports the way a caller would so the work is not
    // optimized away; none of it may perturb the modeled results.
    util::MetricsRegistry registry;
    sim::ExportDeviceMetrics(device, &registry);
    volatile size_t sink = registry.ToJson().size() +
                           engine.metrics().ToJson().size() +
                           device.totals().kernel_records.size();
    (void)sink;
  }
  // Fold modeled timing in: every thread count must agree on every bit.
  const auto& totals = device.totals();
  digest = check::HashBytes(&totals.seconds, sizeof(totals.seconds), digest);
  digest = check::HashSpan(
      std::span<const uint64_t>(totals.sm_sectors), digest);
  return {edges, digest};
}

// --- Observability overhead (SageScope) -------------------------------------

/// Prices the "everything on" observability configuration — kernel
/// timeline recording plus a full metrics export — against the plain run
/// on the same workload. The digest check proves the instrumented run's
/// modeled results did not move; the overhead ratio is documented in
/// BENCH_sim_throughput.json (target <= 2%).
struct ObservabilityCost {
  double plain_wall = 0.0;
  double observed_wall = 0.0;
  bool identical = false;

  double Overhead() const {
    return plain_wall <= 0 ? 0 : observed_wall / plain_wall - 1.0;
  }
};

ObservabilityCost MeasureObservability() {
  // Best-of-N per mode, as for the sweep points.
  constexpr int kObsRepeats = 9;
  graph::Csr csr = LoadDataset(graph::DatasetId::kLjournals);
  ObservabilityCost cost;
  (void)RunOnce(csr, "bfs", 1);  // warm-up, as in Measure
  uint64_t plain_digest = 0, observed_digest = 0;
  cost.plain_wall = std::numeric_limits<double>::infinity();
  cost.observed_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kObsRepeats; ++r) {
    cost.plain_wall = std::min(
        cost.plain_wall,
        WallSeconds([&] { plain_digest = RunOnce(csr, "bfs", 1).second; }));
    cost.observed_wall = std::min(
        cost.observed_wall, WallSeconds([&] {
          observed_digest = RunOnce(csr, "bfs", 1, /*observe=*/true).second;
        }));
  }
  cost.identical = plain_digest == observed_digest;
  SAGE_CHECK(cost.identical)
      << "observability changed the modeled results (digest moved)";
  return cost;
}

Measurement Measure(graph::DatasetId id, const std::string& app) {
  graph::Csr csr = LoadDataset(id);
  Measurement m;
  m.dataset = graph::DatasetName(id);
  m.app = app;

  uint64_t serial_digest = 0;
  // Warm one run so dataset caches / first-touch allocation don't skew the
  // serial (first-measured) side.
  (void)RunOnce(csr, app, 1);
  m.serial_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRepeats; ++r) {
    m.serial_wall = std::min(m.serial_wall, WallSeconds([&] {
      auto [edges, digest] = RunOnce(csr, app, 1);
      m.edges = edges;
      serial_digest = digest;
    }));
  }
  for (uint32_t threads : kSweepThreads) {
    if (threads <= 1) continue;  // serial baseline measured above
    SweepPoint p;
    p.threads = threads;
    p.wall = std::numeric_limits<double>::infinity();
    uint64_t parallel_digest = 0;
    for (int r = 0; r < kRepeats; ++r) {
      p.wall = std::min(p.wall, WallSeconds([&] {
        auto [edges, digest] = RunOnce(csr, app, threads);
        SAGE_CHECK(edges == m.edges);
        parallel_digest = digest;
      }));
    }
    p.identical = parallel_digest == serial_digest;
    SAGE_CHECK(p.identical)
        << m.dataset << "/" << app << " @" << threads
        << " threads: parallel run diverged from serial";
    double floor = FloorFor(threads);
    SAGE_CHECK(m.Speedup(p) >= floor)
        << m.dataset << "/" << app << " @" << threads
        << " threads: parallel backend at " << m.Speedup(p)
        << "x serial, below the " << floor << "x floor ("
        << (floor == kMinParallelSpeedup ? "kMinParallelSpeedup"
                                         : "kOversubscribedFloor")
        << ")";
    m.sweep.push_back(p);
  }
  return m;
}

void WriteJson(const std::vector<Measurement>& ms,
               const ObservabilityCost& obs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n  \"hardware_threads\": %u,\n  \"sweep_threads\": [1, 2, 4, 8],\n"
      "  \"min_speedup\": %.2f,\n  \"oversubscribed_floor\": %.2f,\n"
      "  \"min_speedup_policy\": \"min_speedup is enforced at swept points "
      "with 1 < threads <= hardware_threads; points above "
      "hardware_threads cannot speed up and are held to "
      "oversubscribed_floor instead\",\n"
      "  \"results\": [\n",
      util::ThreadPool::HardwareThreads(), kMinParallelSpeedup,
      kOversubscribedFloor);
  for (size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"app\": \"%s\", \"edges\": %llu,\n"
        "     \"serial_edges_per_sec\": %.1f,\n     \"sweep\": [\n",
        m.dataset.c_str(), m.app.c_str(),
        static_cast<unsigned long long>(m.edges), m.SerialEps());
    for (size_t j = 0; j < m.sweep.size(); ++j) {
      const SweepPoint& p = m.sweep[j];
      std::fprintf(
          f,
          "      {\"threads\": %u, \"edges_per_sec\": %.1f, "
          "\"speedup\": %.3f, \"floor\": %.2f, \"bit_identical\": %s}%s\n",
          p.threads, m.Eps(p), m.Speedup(p), FloorFor(p.threads),
          p.identical ? "true" : "false",
          j + 1 < m.sweep.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n"
      "  \"observability_overhead\": {\"workload\": \"ljournals/bfs "
      "serial, timeline + metrics export on\", \"plain_wall_seconds\": "
      "%.6f, \"observed_wall_seconds\": %.6f, \"overhead\": %.4f, "
      "\"bit_identical\": %s}\n"
      "}\n",
      obs.plain_wall, obs.observed_wall, obs.Overhead(),
      obs.identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run() {
  std::printf("=== Simulation throughput: serial vs parallel backend, "
              "thread sweep {1,2,4,8} (hardware threads: %u) ===\n",
              util::ThreadPool::HardwareThreads());
  std::vector<Measurement> ms;
  for (graph::DatasetId id :
       {graph::DatasetId::kLjournals, graph::DatasetId::kUk2002s}) {
    for (const char* app : {"bfs", "pr"}) {
      ms.push_back(Measure(id, app));
    }
  }
  PrintHeader("dataset/app",
              {"edges", "serial-e/s", "x2", "x4", "x8"});
  for (const Measurement& m : ms) {
    std::vector<double> row{static_cast<double>(m.edges), m.SerialEps()};
    for (const SweepPoint& p : m.sweep) row.push_back(m.Speedup(p));
    PrintRow(m.dataset + "/" + m.app, row, "%12.2f");
  }
  ObservabilityCost obs = MeasureObservability();
  std::printf("\nobservability (timeline + metrics export): %.2f%% overhead "
              "on ljournals/bfs, modeled results bit-identical\n",
              obs.Overhead() * 100.0);
  WriteJson(ms, obs, "BENCH_sim_throughput.json");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
