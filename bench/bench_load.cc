// SageFlood SLO harness: a million-plus simulated requests through the
// real QosPolicy under uncontended and 2x-overload scenarios, with
// bursty Poisson arrivals and zipf-skewed graph/tenant popularity.
//
// The simulation is virtual-time (serve/loadgen.h): dispatch costs come
// from real engine runs (modeled seconds, calibrated here at two
// --host-threads settings), and the policy path is wall-clock-free, so
// every number below is bit-reproducible.
//
// Gates (exit 1 on failure):
//  - >= 1M simulated requests across the scenarios
//  - interactive goodput at 2x overload >= 0.9x its uncontended value
//  - zero interactive sheds at overload while best-effort demand exists
//  - the overload shed set is bit-identical across host-thread counts
//
// Emits BENCH_load.json into the working directory.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "serve/loadgen.h"
#include "util/logging.h"

namespace sage::bench {
namespace {

constexpr uint64_t kRequestsPerScenario = 500000;

serve::CostModel Calibrate(const std::vector<const graph::Csr*>& graphs,
                           uint32_t host_threads) {
  core::EngineOptions options;
  options.host_threads = host_threads;
  auto model = serve::CalibrateCostModel(graphs, options, BenchSpec(), 64);
  SAGE_CHECK(model.ok()) << model.status().ToString();
  return std::move(*model);
}

serve::LoadReport Scenario(const std::string& name, double overload,
                           const serve::CostModel& model) {
  serve::LoadOptions options;
  options.requests = kRequestsPerScenario;
  options.overload = overload;
  serve::LoadReport report = serve::RunLoad(options, model);
  report.scenario = name;
  return report;
}

void PrintReport(const serve::LoadReport& r) {
  std::printf("%-14s offered %.0f req/s (%.2fx capacity), %llu dispatches, "
              "mean batch %.1f\n",
              r.scenario.c_str(), r.offered_rps,
              r.offered_rps / r.capacity_rps,
              static_cast<unsigned long long>(r.dispatches), r.mean_batch);
  for (int c = 0; c < serve::kNumPriorities; ++c) {
    const serve::ClassReport& cr = r.by_class[c];
    std::printf("  %-12s offered %8llu  goodput %.4f  evicted %6llu  "
                "p99 %8.2f ms  p99.9 %8.2f ms\n",
                serve::PriorityName(static_cast<serve::Priority>(c)),
                static_cast<unsigned long long>(cr.offered), cr.goodput,
                static_cast<unsigned long long>(cr.evicted), cr.p99_ms,
                cr.p999_ms);
  }
  std::printf("  quota_rejections %llu  queue_full %llu  evictions %llu  "
              "shed_digest %016llx\n",
              static_cast<unsigned long long>(r.quota_rejections),
              static_cast<unsigned long long>(r.queue_full_rejections),
              static_cast<unsigned long long>(r.evictions),
              static_cast<unsigned long long>(r.shed_digest));
}

int Main() {
  // Four graphs spanning the category signatures (skewed, web, community,
  // uniform) — the zipf head lands on the RMAT graph.
  graph::Csr rmat = graph::GenerateRmat(12, 49152, 0.57, 0.19, 0.19, 42);
  graph::Csr web = graph::GenerateWebCopy(12000, 8, 0.3, 7);
  graph::Csr community = graph::GenerateCommunity(8000, 16, 500, 0.8, 11);
  graph::Csr uniform = graph::GenerateUniform(10000, 60000, 13);
  std::vector<const graph::Csr*> graphs = {&rmat, &web, &community, &uniform};

  std::printf("calibrating dispatch cost model (4 graphs x "
              "{host_threads=1, host_threads=4})...\n");
  serve::CostModel model1 = Calibrate(graphs, 1);
  serve::CostModel model4 = Calibrate(graphs, 4);
  bool models_identical = model1.graphs.size() == model4.graphs.size();
  for (size_t g = 0; models_identical && g < model1.graphs.size(); ++g) {
    models_identical =
        model1.graphs[g].batch1_seconds == model4.graphs[g].batch1_seconds &&
        model1.graphs[g].batchmax_seconds == model4.graphs[g].batchmax_seconds;
  }
  SAGE_CHECK(models_identical)
      << "modeled dispatch costs diverged across host_threads (PR-2 "
         "determinism contract broken)";
  for (size_t g = 0; g < model1.graphs.size(); ++g) {
    std::printf("  graph %zu: batch1 %.6fs, batch64 %.6fs "
                "(%.1fx per-request amortization)\n",
                g, model1.graphs[g].batch1_seconds,
                model1.graphs[g].batchmax_seconds,
                64.0 * model1.graphs[g].batch1_seconds /
                    model1.graphs[g].batchmax_seconds);
  }

  std::printf("\nrunning %llu-request scenarios...\n\n",
              static_cast<unsigned long long>(kRequestsPerScenario));
  // 0.25x is the honest "uncontended" point: batching efficiency means
  // the knee sits well below 1.0x of full-batch capacity.
  serve::LoadReport uncontended = Scenario("uncontended", 0.25, model1);
  serve::LoadReport overload = Scenario("overload_2x", 2.0, model1);
  serve::LoadReport overload_t4 = Scenario("overload_2x_t4", 2.0, model4);
  PrintReport(uncontended);
  PrintReport(overload);
  PrintReport(overload_t4);

  const uint64_t total = uncontended.requests + overload.requests +
                         overload_t4.requests;
  const int interactive = static_cast<int>(serve::Priority::kInteractive);
  const int best_effort = static_cast<int>(serve::Priority::kBestEffort);
  const double uncontended_goodput =
      uncontended.by_class[interactive].goodput;
  const double overload_goodput = overload.by_class[interactive].goodput;
  const bool gate_requests = total >= 1000000;
  const bool gate_goodput =
      uncontended_goodput > 0.0 &&
      overload_goodput >= 0.9 * uncontended_goodput;
  const bool gate_no_interactive_shed =
      overload.by_class[interactive].evicted == 0 &&
      overload.by_class[best_effort].offered > 0;
  const bool gate_digest = overload.shed_digest == overload_t4.shed_digest;

  std::printf("\ngates:\n");
  std::printf("  total simulated requests %llu >= 1M: %s\n",
              static_cast<unsigned long long>(total),
              gate_requests ? "PASS" : "FAIL");
  std::printf("  interactive goodput %0.4f @2x >= 0.9 * %0.4f uncontended: "
              "%s\n",
              overload_goodput, uncontended_goodput,
              gate_goodput ? "PASS" : "FAIL");
  std::printf("  zero interactive sheds under overload (best-effort "
              "available): %s\n",
              gate_no_interactive_shed ? "PASS" : "FAIL");
  std::printf("  shed set bit-identical across host_threads {1,4}: %s\n",
              gate_digest ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_load.json", "w");
  SAGE_CHECK(f != nullptr);
  std::fprintf(f, "{\n  \"bench\": \"load\",\n");
  std::fprintf(f, "  \"total_requests\": %llu,\n",
               static_cast<unsigned long long>(total));
  std::fprintf(f, "  \"scenarios\": [\n    %s,\n    %s,\n    %s\n  ],\n",
               uncontended.ToJson().c_str(), overload.ToJson().c_str(),
               overload_t4.ToJson().c_str());
  std::fprintf(f,
               "  \"gates\": {\n"
               "    \"requests_1m\": %s,\n"
               "    \"interactive_goodput_ratio\": %.4f,\n"
               "    \"interactive_goodput_held\": %s,\n"
               "    \"no_interactive_sheds\": %s,\n"
               "    \"shed_digest_thread_invariant\": %s\n"
               "  }\n}\n",
               gate_requests ? "true" : "false",
               uncontended_goodput > 0.0
                   ? overload_goodput / uncontended_goodput
                   : 0.0,
               gate_goodput ? "true" : "false",
               gate_no_interactive_shed ? "true" : "false",
               gate_digest ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote BENCH_load.json\n");

  return gate_requests && gate_goodput && gate_no_interactive_shed &&
                 gate_digest
             ? 0
             : 1;
}

}  // namespace
}  // namespace sage::bench

int main() { return sage::bench::Main(); }
