// Serving-path benchmark: host throughput (requests per second of wall
// time) of the batching query service vs the naive one-engine-per-query
// loop, on a 64-source BFS workload over one graph.
//
// The service wins twice: warm engines amortize construction (CSR copy,
// partitioning, resident-tile bookkeeping) across queries, and batching
// coalesces the 64 BFS requests into one MS-BFS traversal that shares
// every adjacency read. The run asserts each batched answer is
// bit-identical to its solo run before reporting any number.
//
// Emits BENCH_serve.json into the working directory.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "apps/bfs.h"
#include "apps/registry.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"

namespace sage::bench {
namespace {

constexpr int kRequests = 64;

double WallSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Result {
  double wall = 0.0;        // host seconds for all requests
  double modeled = 0.0;     // summed modeled GPU seconds of the dispatches
  std::vector<uint64_t> digests;
  uint64_t dispatches = 0;
  uint64_t engines = 0;
  // Service-side submit -> response latency percentiles (SageScope
  // histogram via QueryService::stats(); zero for the baseline, which has
  // no service).
  uint64_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;

  double Rps() const {
    return wall <= 0 ? 0 : static_cast<double>(kRequests) / wall;
  }
};

/// The baseline the serving layer replaces: every query builds its own
/// device + engine + program, runs, and throws the stack away.
Result OneEnginePerQuery(const graph::Csr& csr,
                         const std::vector<graph::NodeId>& sources) {
  Result result;
  result.digests.reserve(sources.size());
  result.wall = WallSeconds([&] {
    for (graph::NodeId source : sources) {
      sim::GpuDevice device(BenchSpec());
      core::EngineOptions options;
      options.host_threads = 1;
      auto engine = core::Engine::Create(&device, csr, options);
      SAGE_CHECK(engine.ok()) << engine.status().ToString();
      apps::BfsProgram bfs;
      auto stats = apps::RunBfs(**engine, bfs, source);
      SAGE_CHECK(stats.ok()) << stats.status().ToString();
      result.modeled += stats->seconds;
      result.digests.push_back(apps::OutputDigest(**engine, bfs));
      ++result.dispatches;
      ++result.engines;
    }
  });
  return result;
}

/// The same workload through the query service (synchronous dispatch so
/// the measurement has no thread-scheduling noise; batching coalesces all
/// 64 requests into one MS-BFS run).
Result BatchedService(const graph::Csr& csr,
                      const std::vector<graph::NodeId>& sources) {
  serve::GraphRegistry registry;
  SAGE_CHECK(registry.Add("g", csr).ok());
  serve::ServeOptions options;
  options.worker_threads = 0;
  options.engines_per_graph = 1;
  options.device_spec = BenchSpec();

  Result result;
  result.digests.resize(sources.size());
  serve::QueryService service(&registry, options);
  result.wall = WallSeconds([&] {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(sources.size());
    for (graph::NodeId source : sources) {
      serve::Request request;
      request.graph = "g";
      request.app = "bfs";
      request.params.sources = {source};
      auto submitted = service.Submit(std::move(request));
      SAGE_CHECK(submitted.ok()) << submitted.status().ToString();
      futures.push_back(std::move(*submitted));
    }
    service.ProcessAllPending();
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::Response response = futures[i].get();
      SAGE_CHECK(response.status.ok()) << response.status.ToString();
      result.digests[i] = response.output_digest;
      // Modeled seconds are per dispatch; count each batch once.
      if (i == 0 || response.batch_size == 1) {
        result.modeled += response.stats.seconds;
      }
    }
  });
  serve::ServiceStats stats = service.stats();
  result.dispatches = stats.batches;
  result.engines = stats.engines_created;
  result.latency_samples = stats.latency_samples;
  result.latency_p50_ms = stats.latency_p50_ms;
  result.latency_p95_ms = stats.latency_p95_ms;
  result.latency_p99_ms = stats.latency_p99_ms;
  return result;
}

void WriteJson(const Result& baseline, const Result& batched,
               bool identical, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"%d-source BFS, rmat scale 13\",\n"
               "  \"requests\": %d,\n"
               "  \"identical_outputs\": %s,\n"
               "  \"baseline\": {\"wall_seconds\": %.6f, \"requests_per_sec\""
               ": %.1f, \"dispatches\": %llu, \"engines_built\": %llu,"
               " \"modeled_seconds\": %.6f},\n"
               "  \"batched\": {\"wall_seconds\": %.6f, \"requests_per_sec\""
               ": %.1f, \"dispatches\": %llu, \"engines_built\": %llu,"
               " \"modeled_seconds\": %.6f,"
               " \"latency_ms\": {\"samples\": %llu, \"p50\": %.3f,"
               " \"p95\": %.3f, \"p99\": %.3f}},\n"
               "  \"speedup\": %.2f\n"
               "}\n",
               kRequests, kRequests, identical ? "true" : "false",
               baseline.wall, baseline.Rps(),
               static_cast<unsigned long long>(baseline.dispatches),
               static_cast<unsigned long long>(baseline.engines),
               baseline.modeled, batched.wall, batched.Rps(),
               static_cast<unsigned long long>(batched.dispatches),
               static_cast<unsigned long long>(batched.engines),
               batched.modeled,
               static_cast<unsigned long long>(batched.latency_samples),
               batched.latency_p50_ms, batched.latency_p95_ms,
               batched.latency_p99_ms,
               batched.wall <= 0 ? 0 : baseline.wall / batched.wall);
  std::fclose(f);
}

int Main() {
  graph::Csr csr = graph::GenerateRmat(13, 98304, 0.57, 0.19, 0.19, 42);
  std::vector<graph::NodeId> sources = PickSources(csr, kRequests);

  std::printf("serving bench: %d BFS requests, rmat scale 13 (%u nodes, "
              "%llu edges)\n\n",
              kRequests, csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));

  Result baseline = OneEnginePerQuery(csr, sources);
  Result batched = BatchedService(csr, sources);

  bool identical = baseline.digests == batched.digests;
  SAGE_CHECK(identical)
      << "batched responses diverged from one-engine-per-query outputs";

  PrintHeader("mode", {"wall-s", "req/s", "dispatches", "engines",
                       "modeled-s"});
  PrintRow("per-query", {baseline.wall, baseline.Rps(),
                         static_cast<double>(baseline.dispatches),
                         static_cast<double>(baseline.engines),
                         baseline.modeled});
  PrintRow("service", {batched.wall, batched.Rps(),
                       static_cast<double>(batched.dispatches),
                       static_cast<double>(batched.engines),
                       batched.modeled});
  double speedup = batched.wall <= 0 ? 0 : baseline.wall / batched.wall;
  std::printf("\nall %d batched outputs bit-identical to solo runs\n",
              kRequests);
  std::printf("service speedup: %.2fx requests/sec (target >= 2x)\n",
              speedup);

  WriteJson(baseline, batched, identical, "BENCH_serve.json");
  std::printf("wrote BENCH_serve.json\n");
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace sage::bench

int main() { return sage::bench::Main(); }
