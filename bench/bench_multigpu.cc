// SageShard benchmark: multi-device sharded execution end to end.
//
// Part 1 — engine level: BFS through core::ShardedEngine for K in
// {1, 2, 4} devices. Digests must be bit-identical across K, and the
// delta-compressed frontier exchange must ship at most half of what a
// dense per-pair bitmap exchange would (the gate the run exits non-zero
// on).
//
// Part 2 — serve level: a replicated hot graph behind QueryService with 1,
// 2, and 4 placement shards (worker threads and warm engines scale with
// the shard count), measuring requests per second of wall time.
//
// Emits BENCH_multigpu.json into the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <vector>

#include "apps/registry.h"
#include "bench_common.h"
#include "core/sharded_engine.h"
#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"

namespace sage::bench {
namespace {

constexpr int kServeRequests = 32;

double WallSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct EngineResult {
  uint32_t shards = 0;
  uint64_t digest = 0;
  double gteps = 0.0;
  double comm_ms = 0.0;
  uint64_t payload_bytes = 0;
  uint64_t dense_bytes = 0;
  double DeltaRatio() const {
    return dense_bytes == 0
               ? 0.0
               : static_cast<double>(payload_bytes) /
                     static_cast<double>(dense_bytes);
  }
};

EngineResult RunSharded(const graph::Csr& csr, uint32_t shards) {
  core::ShardOptions options;
  options.num_shards = shards;
  options.host_threads = 0;  // one host thread per shard
  options.spec = BenchSpec();
  auto engine = core::ShardedEngine::Create(csr, options);
  SAGE_CHECK(engine.ok()) << engine.status().ToString();
  EngineResult out;
  out.shards = shards;
  double total_edges = 0;
  double total_seconds = 0;
  for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
    apps::AppParams params;
    params.sources = {src};
    auto result = (*engine)->Run("bfs", params);
    SAGE_CHECK(result.ok()) << result.status().ToString();
    total_edges += static_cast<double>(result->stats.edges_traversed);
    total_seconds += result->stats.seconds + result->comm_seconds;
    out.comm_ms += result->comm_seconds * 1e3;
    out.payload_bytes += result->frontier_payload_bytes;
    out.dense_bytes += result->frontier_dense_bytes;
    out.digest = (*engine)->OutputDigest();
  }
  out.gteps = total_seconds <= 0 ? 0 : total_edges / total_seconds / 1e9;
  return out;
}

struct ServeResult {
  uint32_t shards = 0;
  double wall = 0.0;          // host wall clock: observability, not a gate
  double makespan = 0.0;      // modeled busy seconds of the busiest shard
  uint64_t replications = 0;
  double WallRps() const {
    return wall <= 0 ? 0 : static_cast<double>(kServeRequests) / wall;
  }
  /// Modeled serving capacity: requests per modeled-second of the busiest
  /// shard. Deterministic (the host machine's core count and load cannot
  /// move it), and a direct measure of whether placement actually spreads
  /// dispatches — broken routing piles every request on one shard and
  /// capacity stops scaling.
  double ModeledRps() const {
    return makespan <= 0 ? 0
                         : static_cast<double>(kServeRequests) / makespan;
  }
};

ServeResult RunServe(const graph::Csr& csr, uint32_t shards) {
  serve::GraphRegistry registry(shards);
  SAGE_CHECK(registry.Add("hot", csr).ok());
  // Pre-replicate the hot graph everywhere: the scaling question is how
  // much serving capacity extra placement shards (with their engines and
  // workers) buy for one hot graph.
  for (uint32_t s = 1; s < shards; ++s) {
    SAGE_CHECK(registry.AddReplica("hot", s).ok());
  }
  serve::ServeOptions options;
  options.worker_threads = shards;
  options.engines_per_graph = shards;
  options.batching = false;  // measure dispatch capacity, not coalescing
  options.device_spec = BenchSpec();
  serve::QueryService service(&registry, options);
  std::vector<graph::NodeId> sources = PickSources(csr, kServeRequests);

  ServeResult out;
  out.shards = shards;
  std::vector<double> shard_busy(shards, 0.0);
  out.wall = WallSeconds([&] {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      serve::Request request;
      request.graph = "hot";
      request.app = "bfs";
      request.params.sources = {sources[i]};
      request.shard_hint = static_cast<uint32_t>(i % shards);
      auto submitted = service.Submit(std::move(request));
      SAGE_CHECK(submitted.ok()) << submitted.status().ToString();
      futures.push_back(std::move(*submitted));
    }
    for (auto& f : futures) {
      serve::Response response = f.get();
      SAGE_CHECK(response.status.ok()) << response.status.ToString();
      SAGE_CHECK(response.served_by_shard < shards);
      shard_busy[response.served_by_shard] +=
          response.stats.seconds / response.batch_size;
    }
  });
  out.makespan = *std::max_element(shard_busy.begin(), shard_busy.end());
  out.replications = service.stats().shard_replications;
  service.Shutdown();
  return out;
}

void WriteJson(const std::vector<EngineResult>& engine,
               const std::vector<ServeResult>& serve, bool identical,
               double worst_ratio, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"BFS, rmat scale 13; %d-request serve "
               "storm\",\n"
               "  \"digests_identical_across_shard_counts\": %s,\n"
               "  \"delta_over_dense_worst\": %.4f,\n"
               "  \"delta_gate\": 0.5,\n"
               "  \"sharded_engine\": [\n",
               kServeRequests, identical ? "true" : "false", worst_ratio);
  for (size_t i = 0; i < engine.size(); ++i) {
    const EngineResult& r = engine[i];
    std::fprintf(f,
                 "    {\"shards\": %u, \"gteps\": %.4f, \"comm_ms\": %.4f,"
                 " \"frontier_payload_bytes\": %llu,"
                 " \"frontier_dense_bytes\": %llu,"
                 " \"delta_over_dense\": %.4f}%s\n",
                 r.shards, r.gteps, r.comm_ms,
                 static_cast<unsigned long long>(r.payload_bytes),
                 static_cast<unsigned long long>(r.dense_bytes),
                 r.DeltaRatio(), i + 1 < engine.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"serve_scaling\": [\n");
  for (size_t i = 0; i < serve.size(); ++i) {
    const ServeResult& r = serve[i];
    std::fprintf(f,
                 "    {\"shards\": %u, \"wall_seconds\": %.6f,"
                 " \"wall_requests_per_sec\": %.1f,"
                 " \"busiest_shard_modeled_seconds\": %.6f,"
                 " \"modeled_requests_per_sec\": %.1f,"
                 " \"replications\": %llu}%s\n",
                 r.shards, r.wall, r.WallRps(), r.makespan, r.ModeledRps(),
                 static_cast<unsigned long long>(r.replications),
                 i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main() {
  graph::Csr csr = graph::GenerateRmat(13, 98304, 0.57, 0.19, 0.19, 42);
  std::printf("multi-device bench: rmat scale 13 (%u nodes, %llu edges)\n\n",
              csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));

  std::printf("--- sharded engine (BFS) ---\n");
  PrintHeader("devices", {"GTEPS", "comm-ms", "payload-KB", "dense-KB",
                          "delta/dense"});
  std::vector<EngineResult> engine;
  bool identical = true;
  double worst_ratio = 0.0;
  for (uint32_t shards : {1u, 2u, 4u}) {
    EngineResult r = RunSharded(csr, shards);
    engine.push_back(r);
    if (r.digest != engine.front().digest) identical = false;
    if (shards > 1) worst_ratio = std::max(worst_ratio, r.DeltaRatio());
    PrintRow(std::to_string(shards) + "x",
             {r.gteps, r.comm_ms,
              static_cast<double>(r.payload_bytes) / 1024.0,
              static_cast<double>(r.dense_bytes) / 1024.0, r.DeltaRatio()});
  }
  SAGE_CHECK(identical) << "sharded digests diverged across shard counts";
  std::printf("digests bit-identical across 1/2/4 devices\n");
  std::printf("worst delta/dense ratio: %.4f (gate <= 0.5)\n\n", worst_ratio);

  std::printf("--- serve-level scaling (%d BFS requests, hot graph "
              "replicated) ---\n",
              kServeRequests);
  PrintHeader("shards", {"wall-s", "wall-req/s", "modeled-req/s"});
  std::vector<ServeResult> serve;
  for (uint32_t shards : {1u, 2u, 4u}) {
    ServeResult r = RunServe(csr, shards);
    serve.push_back(r);
    PrintRow(std::to_string(shards), {r.wall, r.WallRps(), r.ModeledRps()});
  }
  // The gate uses modeled capacity (requests per modeled-second of the
  // busiest shard): deterministic where wall req/s depends on how many
  // host cores this machine happens to have.
  const double scaling = serve.front().ModeledRps() <= 0
                             ? 0.0
                             : serve.back().ModeledRps() /
                                   serve.front().ModeledRps();
  std::printf("\nmodeled serving capacity, 4-shard vs 1-shard: %.2fx\n",
              scaling);

  WriteJson(engine, serve, identical, worst_ratio, "BENCH_multigpu.json");
  std::printf("wrote BENCH_multigpu.json\n");

  // Gates: the delta exchange must beat a dense bitmap exchange by 2x,
  // and modeled serving capacity must grow with the device count (even
  // spread across 4 shards gives ~4x; anything under 1.5x means routing
  // is piling requests onto too few shards).
  bool ok = worst_ratio <= 0.5 && scaling >= 1.5;
  if (!ok) {
    std::printf("GATE FAILED: delta/dense %.4f (<= 0.5), capacity scaling "
                "%.2fx (>= 1.5)\n",
                worst_ratio, scaling);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sage::bench

int main() { return sage::bench::Main(); }
