// SageGuard benchmark: what resilience costs when nothing goes wrong, and
// what it buys when things do.
//
// Two measurements on a 64-request BFS workload (rmat scale 13):
//
//  1. Checkpoint overhead — the same fault-free engine run with
//     checkpointing off vs every-4 vs every-2 iterations. Snapshots are
//     host-side state copies, so this is pure wall-clock overhead; the
//     modeled GPU seconds and the output digest must not move at all.
//
//  2. Faulty serving — the query service fault-free vs under a 1%
//     transient-kernel fault rate (retry + checkpoint-resume enabled).
//     The run asserts every faulted response is bit-identical to the
//     fault-free service's answer before reporting throughput; the cost
//     of absorbing the faults shows up as wall time, retries, and
//     resumes.
//
// Emits BENCH_guard.json into the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "apps/registry.h"
#include "bench_common.h"
#include "core/guard.h"
#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"
#include "sim/fault_injector.h"
#include "util/stats.h"

namespace sage::bench {
namespace {

constexpr int kRequests = 64;
constexpr int kCheckpointRepeats = 5;

double WallSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// --- 1. Checkpoint overhead -------------------------------------------------

struct CheckpointPoint {
  uint32_t interval = 0;  // 0 = checkpointing off
  double wall = 0.0;      // host seconds, kCheckpointRepeats BFS runs
  double modeled = 0.0;   // modeled GPU seconds (must equal the baseline)
  uint64_t saves = 0;     // checkpoints taken across the repeats
  uint64_t digest = 0;
};

CheckpointPoint MeasureCheckpointing(const graph::Csr& csr,
                                     graph::NodeId source,
                                     uint32_t interval) {
  CheckpointPoint point;
  point.interval = interval;
  sim::GpuDevice device(BenchSpec());
  core::EngineOptions options;
  options.host_threads = 1;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  SAGE_CHECK(program.ok());
  apps::AppParams params;
  params.sources = {source};
  core::MemoryCheckpointSink sink;
  if (interval > 0) {
    core::RunGuard guard;
    guard.checkpoint_sink = &sink;
    guard.checkpoint_interval = interval;
    engine.set_run_guard(guard);
  }
  point.wall = WallSeconds([&] {
    for (int r = 0; r < kCheckpointRepeats; ++r) {
      auto stats = apps::RunApp(engine, **program, params);
      SAGE_CHECK(stats.ok()) << stats.status().ToString();
      point.modeled += stats->seconds;
    }
  });
  point.saves = sink.saves();
  point.digest = apps::OutputDigest(engine, **program);
  return point;
}

// --- 2. Fault-free vs 1%-fault serving --------------------------------------

struct ServeResult {
  double wall = 0.0;
  // Client-observed per-request wall time (nearest-rank percentiles over
  // the sorted samples — util::PercentileOfSorted).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  // Service-side submit -> response latency from the SageScope histogram
  // (QueryService::stats()).
  uint64_t svc_samples = 0;
  double svc_p50_ms = 0.0;
  double svc_p95_ms = 0.0;
  double svc_p99_ms = 0.0;
  std::vector<uint64_t> digests;
  uint64_t retries = 0;
  uint64_t resumes = 0;
  double backoff_ms = 0.0;

  double Rps() const {
    return wall <= 0 ? 0 : static_cast<double>(kRequests) / wall;
  }
};

ServeResult RunService(const graph::Csr& csr,
                       const std::vector<graph::NodeId>& sources,
                       const std::string& fault_spec) {
  serve::GraphRegistry registry;
  SAGE_CHECK(registry.Add("g", csr).ok());
  serve::ServeOptions options;
  options.worker_threads = 0;
  options.engines_per_graph = 1;
  options.device_spec = BenchSpec();
  // One request per dispatch: every engine run is a separate fault target,
  // which is the interesting (and worst) case for retry overhead.
  options.batching = false;
  options.fault_spec = fault_spec;
  options.retry.max_attempts = 5;
  options.checkpoint_interval = 2;

  ServeResult result;
  result.digests.reserve(sources.size());
  serve::QueryService service(&registry, options);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(sources.size());
  result.wall = WallSeconds([&] {
    for (size_t i = 0; i < sources.size(); ++i) {
      serve::Request request;
      request.graph = "g";
      request.app = "bfs";
      request.params.sources = {sources[i]};
      request.id = i;
      double latency = WallSeconds([&] {
        auto submitted = service.Submit(std::move(request));
        SAGE_CHECK(submitted.ok()) << submitted.status().ToString();
        service.ProcessAllPending();
        serve::Response response = submitted->get();
        SAGE_CHECK(response.status.ok()) << response.status.ToString();
        result.digests.push_back(response.output_digest);
      });
      latencies_ms.push_back(latency * 1e3);
    }
  });
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = util::PercentileOfSorted(latencies_ms, 50.0);
  result.p95_ms = util::PercentileOfSorted(latencies_ms, 95.0);
  result.p99_ms = util::PercentileOfSorted(latencies_ms, 99.0);
  serve::ServiceStats stats = service.stats();
  result.svc_samples = stats.latency_samples;
  result.svc_p50_ms = stats.latency_p50_ms;
  result.svc_p95_ms = stats.latency_p95_ms;
  result.svc_p99_ms = stats.latency_p99_ms;
  result.retries = stats.retries;
  result.resumes = stats.resumes;
  result.backoff_ms = stats.backoff_ms;
  return result;
}

// --- Reporting --------------------------------------------------------------

void WriteJson(const std::vector<CheckpointPoint>& ckpts,
               const ServeResult& clean, const ServeResult& faulty,
               const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"checkpoint_overhead\": [\n");
  for (size_t i = 0; i < ckpts.size(); ++i) {
    const CheckpointPoint& p = ckpts[i];
    double overhead =
        ckpts[0].wall <= 0 ? 0 : p.wall / ckpts[0].wall - 1.0;
    std::fprintf(f,
                 "    {\"interval\": %u, \"wall_seconds\": %.6f, "
                 "\"checkpoints\": %llu, \"overhead\": %.4f}%s\n",
                 p.interval, p.wall,
                 static_cast<unsigned long long>(p.saves), overhead,
                 i + 1 < ckpts.size() ? "," : "");
  }
  auto latency_fields = [f](const ServeResult& r) {
    std::fprintf(f,
                 "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
                 "\"p99\": %.3f}, \"service_latency_ms\": {\"samples\": "
                 "%llu, \"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}",
                 r.p50_ms, r.p95_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.svc_samples), r.svc_p50_ms,
                 r.svc_p95_ms, r.svc_p99_ms);
  };
  std::fprintf(
      f,
      "  ],\n"
      "  \"serve\": {\n"
      "    \"workload\": \"%d solo BFS dispatches, rmat scale 13\",\n"
      "    \"fault_free\": {\"wall_seconds\": %.6f, \"requests_per_sec\": "
      "%.1f, ",
      kRequests, clean.wall, clean.Rps());
  latency_fields(clean);
  std::fprintf(
      f,
      "},\n"
      "    \"one_pct_faults\": {\"wall_seconds\": %.6f, "
      "\"requests_per_sec\": %.1f, \"retries\": %llu, "
      "\"resumes\": %llu, \"backoff_ms\": %.3f, ",
      faulty.wall, faulty.Rps(),
      static_cast<unsigned long long>(faulty.retries),
      static_cast<unsigned long long>(faulty.resumes), faulty.backoff_ms);
  latency_fields(faulty);
  std::fprintf(f,
               "},\n"
               "    \"digests_identical\": true,\n"
               "    \"throughput_ratio\": %.3f\n"
               "  }\n"
               "}\n",
               clean.Rps() <= 0 ? 0 : faulty.Rps() / clean.Rps());
  std::fclose(f);
}

int Main() {
  graph::Csr csr = graph::GenerateRmat(13, 98304, 0.57, 0.19, 0.19, 42);
  std::vector<graph::NodeId> sources = PickSources(csr, kRequests);

  std::printf("SageGuard bench: rmat scale 13 (%u nodes, %llu edges)\n\n",
              csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));

  // 1. Checkpoint overhead.
  std::vector<CheckpointPoint> ckpts;
  for (uint32_t interval : {0u, 4u, 2u}) {
    ckpts.push_back(MeasureCheckpointing(csr, sources[0], interval));
  }
  PrintHeader("checkpointing", {"wall-s", "modeled-s", "saves", "overhead"});
  for (const CheckpointPoint& p : ckpts) {
    // Checkpointing must never perturb the simulation: same modeled
    // seconds, same output, only host wall time may move.
    SAGE_CHECK(p.modeled == ckpts[0].modeled)
        << "interval " << p.interval << " changed modeled time";
    SAGE_CHECK(p.digest == ckpts[0].digest)
        << "interval " << p.interval << " changed the output";
    PrintRow(p.interval == 0 ? "off" : "every-" + std::to_string(p.interval),
             {p.wall, p.modeled, static_cast<double>(p.saves),
              ckpts[0].wall <= 0 ? 0 : p.wall / ckpts[0].wall - 1.0});
  }

  // 2. Fault-free vs 1%-fault serving.
  ServeResult clean = RunService(csr, sources, "");
  ServeResult faulty =
      RunService(csr, sources, "seed 11\ntransient rate 0.01\n");
  SAGE_CHECK(clean.digests == faulty.digests)
      << "faulted responses diverged from fault-free answers";

  std::printf("\n");
  PrintHeader("serving", {"wall-s", "req/s", "p99-ms", "retries", "resumes"});
  PrintRow("fault-free", {clean.wall, clean.Rps(), clean.p99_ms,
                          static_cast<double>(clean.retries),
                          static_cast<double>(clean.resumes)});
  PrintRow("1% faults", {faulty.wall, faulty.Rps(), faulty.p99_ms,
                         static_cast<double>(faulty.retries),
                         static_cast<double>(faulty.resumes)});
  std::printf("\nall %d faulted responses bit-identical to fault-free\n",
              kRequests);

  WriteJson(ckpts, clean, faulty, "BENCH_guard.json");
  std::printf("wrote BENCH_guard.json\n");
  return 0;
}

}  // namespace
}  // namespace sage::bench

int main() { return sage::bench::Main(); }
