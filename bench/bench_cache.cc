// SageCache benchmark (DESIGN.md §12), three gates in one binary:
//
//  1. Out-of-core correctness: with a memory budget forcing the adjacency
//     host-side, every app x strategy x host-thread-count run must produce
//     an output digest bit-identical to the in-core run.
//  2. Hot-tile cache effectiveness: a zipf-skewed access stream against a
//     cache holding 25% of the tile universe, protected section pre-filled
//     by popularity rank, must sustain a warm hit rate >= 0.8.
//  3. Serve-tier admission: a graph load that fails against a full memory
//     budget must succeed once the service is attached as pool evictor
//     (cold warm-engine pools are shed LRU-by-last-dispatch).
//
// Emits BENCH_cache.json into the working directory; exits nonzero when
// any gate fails.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "bench_common.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"
#include "sim/gpu_device.h"
#include "sim/tile_cache.h"
#include "util/random.h"

namespace sage::bench {
namespace {

// --- Gate 1: out-of-core digest parity --------------------------------------

struct DigestMatrix {
  int cases = 0;
  int identical = 0;
  double in_core_seconds = 0.0;      // kSage bfs, in-core
  double out_of_core_seconds = 0.0;  // kSage bfs, budget = bytes/4
};

apps::AppParams ParamsFor(const std::string& app) {
  apps::AppParams params;
  if (app == "bfs" || app == "sssp") {
    params.sources = {1};
  } else if (app == "msbfs") {
    params.sources = {1, 2, 3, 4};
  }
  params.iterations = kPrIterations;
  params.k = 2;
  return params;
}

uint64_t RunDigest(const graph::Csr& csr, const std::string& app,
                   const core::EngineOptions& options, double* seconds) {
  sim::GpuDevice device(BenchSpec());
  auto engine = core::Engine::Create(&device, csr, options);
  SAGE_CHECK(engine.ok()) << engine.status().ToString();
  auto program = apps::CreateProgram(app);
  SAGE_CHECK(program.ok());
  auto stats = apps::RunApp(**engine, **program, ParamsFor(app));
  SAGE_CHECK(stats.ok()) << stats.status().ToString();
  if (seconds != nullptr) *seconds = stats->seconds;
  return apps::OutputDigest(**engine, **program);
}

DigestMatrix RunDigestMatrix(const graph::Csr& csr) {
  DigestMatrix matrix;
  const uint64_t budget = csr.MemoryBytes() / 4;
  const core::ExpandStrategy strategies[] = {
      core::ExpandStrategy::kSage, core::ExpandStrategy::kB40c,
      core::ExpandStrategy::kWarpCentric};
  const char* strategy_names[] = {"sage", "b40c", "warp"};
  std::printf("%-10s %-6s in-core digest   ooc(t=1) ooc(t=4)\n", "app",
              "sched");
  for (const char* app_name : {"bfs", "pagerank", "kcore", "sssp", "msbfs"}) {
    const std::string app = app_name;
    for (int s = 0; s < 3; ++s) {
      core::EngineOptions in_core;
      in_core.strategy = strategies[s];
      in_core.host_threads = 1;
      const bool record = app == "bfs" && s == 0;
      const uint64_t want =
          RunDigest(csr, app, in_core,
                    record ? &matrix.in_core_seconds : nullptr);
      bool ok[2] = {false, false};
      int i = 0;
      for (uint32_t threads : {1u, 4u}) {
        core::EngineOptions ooc = in_core;
        ooc.memory_budget_bytes = budget;
        ooc.host_threads = threads;
        const uint64_t got =
            RunDigest(csr, app, ooc,
                      record && threads == 1 ? &matrix.out_of_core_seconds
                                             : nullptr);
        ok[i++] = got == want;
        ++matrix.cases;
        if (got == want) ++matrix.identical;
      }
      std::printf("%-10s %-6s %016llx %8s %8s\n", app.c_str(),
                  strategy_names[s], static_cast<unsigned long long>(want),
                  ok[0] ? "ok" : "DIVERGED", ok[1] ? "ok" : "DIVERGED");
    }
  }
  return matrix;
}

// --- Gate 2: zipf hot-tile hit rate -----------------------------------------

struct ZipfResult {
  uint64_t accesses = 0;
  double hit_rate = 0.0;
  uint64_t capacity_tiles = 0;
  uint64_t universe_tiles = 0;
};

ZipfResult RunZipfMicrobench() {
  // A 4096-tile universe with a cache holding a quarter of it — the
  // out-of-core regime where most of the adjacency cannot be resident.
  constexpr uint64_t kTiles = 4096;
  constexpr double kAlpha = 1.05;
  sim::HostTileCache cache;
  sim::HostTileCache::Config config;
  config.sectors_per_tile = 8;
  config.sector_bytes = 32;
  config.capacity_bytes = (kTiles / 4) * 8 * 32;
  cache.Configure(config);
  SAGE_CHECK(cache.enabled());

  // Degree-ranked pre-fill stand-in: Rng::Zipf favors small ids, so
  // popularity rank == tile id. Fill the protected section with the
  // hottest tiles.
  for (uint64_t t = 0; !cache.PrefillFull(); ++t) cache.Prefill(t);

  util::Rng rng(0x5361676543616368ull);  // "SageCach"
  std::vector<uint64_t> sectors, fetch;
  auto access_one = [&] {
    const uint64_t tile = rng.Zipf(kTiles, kAlpha);
    sectors.clear();
    for (uint32_t s = 0; s < config.sectors_per_tile; ++s) {
      sectors.push_back(tile * config.sectors_per_tile + s);
    }
    cache.Access(sectors, &fetch);
  };
  // Warm window: demand traffic sorts itself into the sections.
  for (int i = 0; i < 50000; ++i) access_one();
  cache.ResetStats();  // counters only — residency survives
  ZipfResult result;
  result.accesses = 200000;
  for (uint64_t i = 0; i < result.accesses; ++i) access_one();
  result.hit_rate = cache.stats().HitRate();
  result.capacity_tiles = cache.capacity_tiles();
  result.universe_tiles = kTiles;
  std::printf(
      "\nzipf(%.2f) over %llu tiles, cache %llu tiles: warm hit rate %.3f "
      "(gate >= 0.80)\n",
      kAlpha, static_cast<unsigned long long>(kTiles),
      static_cast<unsigned long long>(result.capacity_tiles),
      result.hit_rate);
  return result;
}

// --- Gate 3: serve-tier eviction admits a previously failing load -----------

struct EvictionResult {
  bool failed_without_evictor = false;
  bool admitted_with_evictor = false;
  uint64_t evictions = 0;
};

EvictionResult RunEvictionScenario() {
  const graph::Csr a = graph::GenerateRmat(11, 16384, 0.57, 0.19, 0.19, 7);
  const graph::Csr b = graph::GenerateUniform(1200, 6000, 3);
  const uint64_t a_bytes = a.MemoryBytes();
  const uint64_t b_bytes = b.MemoryBytes();

  serve::GraphRegistry registry;
  // Both CSRs fit with half an a of slack; a's warm engine (a full extra
  // a_bytes of pool) is what pushes the load of b over budget.
  registry.set_memory_budget_bytes(a_bytes + b_bytes + a_bytes / 2);
  SAGE_CHECK(registry.Add("a", a).ok());

  serve::ServeOptions options;
  options.worker_threads = 0;
  options.engines_per_graph = 1;
  options.device_spec = BenchSpec();
  serve::QueryService service(&registry, options);

  serve::Request request;
  request.graph = "a";
  request.app = "bfs";
  request.params.sources = {1};
  auto submitted = service.Submit(request);
  SAGE_CHECK(submitted.ok());
  service.ProcessAllPending();
  SAGE_CHECK(submitted->get().status.ok());

  EvictionResult result;
  result.failed_without_evictor =
      registry.Add("b", b).code() == util::StatusCode::kResourceExhausted;

  registry.set_evictor(&service);
  result.admitted_with_evictor = registry.Add("b", b).ok();
  for (const auto& [name, value] : service.metrics().Snapshot().counters) {
    if (name == "serve.cache.evictions") result.evictions = value;
  }
  std::printf(
      "registry budget: load of 'b' %s without evictor, %s with evictor "
      "(%llu warm engines shed)\n",
      result.failed_without_evictor ? "failed" : "UNEXPECTEDLY FIT",
      result.admitted_with_evictor ? "admitted" : "STILL REFUSED",
      static_cast<unsigned long long>(result.evictions));
  return result;
}

// --- JSON + gates -----------------------------------------------------------

void WriteJson(const DigestMatrix& matrix, const ZipfResult& zipf,
               const EvictionResult& eviction, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"out_of_core\": {\"cases\": %d, \"identical\": %d,\n"
      "    \"in_core_modeled_seconds\": %.6f,"
      " \"out_of_core_modeled_seconds\": %.6f},\n"
      "  \"zipf_cache\": {\"universe_tiles\": %llu, \"capacity_tiles\":"
      " %llu,\n"
      "    \"accesses\": %llu, \"hit_rate\": %.4f, \"gate\": 0.8},\n"
      "  \"registry_eviction\": {\"failed_without_evictor\": %s,\n"
      "    \"admitted_with_evictor\": %s, \"evictions\": %llu}\n"
      "}\n",
      matrix.cases, matrix.identical, matrix.in_core_seconds,
      matrix.out_of_core_seconds,
      static_cast<unsigned long long>(zipf.universe_tiles),
      static_cast<unsigned long long>(zipf.capacity_tiles),
      static_cast<unsigned long long>(zipf.accesses), zipf.hit_rate,
      eviction.failed_without_evictor ? "true" : "false",
      eviction.admitted_with_evictor ? "true" : "false",
      static_cast<unsigned long long>(eviction.evictions));
  std::fclose(f);
}

int Main() {
  graph::Csr csr = graph::GenerateRmat(12, 49152, 0.57, 0.19, 0.19, 42);
  std::printf("SageCache bench: rmat scale 12 (%u nodes, %llu edges, "
              "%llu CSR bytes)\n\n",
              csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()),
              static_cast<unsigned long long>(csr.MemoryBytes()));

  DigestMatrix matrix = RunDigestMatrix(csr);
  ZipfResult zipf = RunZipfMicrobench();
  EvictionResult eviction = RunEvictionScenario();

  std::printf("\nout-of-core digests: %d/%d identical; paging cost: "
              "%.6fs in-core -> %.6fs out-of-core (bfs/sage)\n",
              matrix.identical, matrix.cases, matrix.in_core_seconds,
              matrix.out_of_core_seconds);

  WriteJson(matrix, zipf, eviction, "BENCH_cache.json");
  std::printf("wrote BENCH_cache.json\n");

  int rc = 0;
  if (matrix.identical != matrix.cases) {
    std::fprintf(stderr, "GATE FAILED: out-of-core digests diverged\n");
    rc = 1;
  }
  if (zipf.hit_rate < 0.8) {
    std::fprintf(stderr, "GATE FAILED: zipf hit rate %.3f < 0.8\n",
                 zipf.hit_rate);
    rc = 1;
  }
  if (!eviction.failed_without_evictor || !eviction.admitted_with_evictor) {
    std::fprintf(stderr,
                 "GATE FAILED: registry eviction scenario did not "
                 "fail-then-admit\n");
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace sage::bench

int main() { return sage::bench::Main(); }
