#ifndef SAGE_BENCH_BENCH_COMMON_H_
#define SAGE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/pagerank.h"
#include "core/engine.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "reorder/reorderers.h"
#include "sim/gpu_device.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace sage::bench {

/// Number of PageRank iterations every PR measurement runs.
inline constexpr uint32_t kPrIterations = 5;
/// BFS / BC sources measured per dataset (averaged). The paper uses 100
/// random sources; the simulator is deterministic so a couple suffice.
inline constexpr int kSourcesPerDataset = 2;

/// The simulated GPU every benchmark runs on: one RTX-8000-like device
/// (72 SMs) with the L2 scaled to keep graph-much-larger-than-cache, the
/// regime of the paper's evaluation.
inline sim::DeviceSpec BenchSpec() {
  sim::DeviceSpec spec;
  // The datasets are scaled ~500x below the paper's; scale the L2 so the
  // cache-pressure regime matches (node-attribute arrays several times the
  // L2, adjacency two orders of magnitude above it).
  spec.l2_bytes = 64 << 10;
  return spec;
}

/// Generates (or loads from the on-disk cache) a bench-scale dataset.
inline graph::Csr LoadDataset(graph::DatasetId id) {
  std::string cache = "/tmp/sage_datasets";
  std::string path = cache + "/" + graph::DatasetName(id) + ".v2.sagecsr";
  auto loaded = graph::LoadCsrBinary(path);
  if (loaded.ok()) return std::move(loaded).value();
  graph::Csr csr = graph::MakeDataset(id, graph::DatasetScale::kBench);
  // Best effort cache (the directory may not exist; ignore failures).
  (void)::system(("mkdir -p " + cache).c_str());
  (void)graph::SaveCsrBinary(csr, path);
  return csr;
}

/// Computes a reordering baseline once per dataset and caches the
/// permutation on disk (Gorder in particular is expensive preprocessing —
/// that cost is itself a Table 2 datapoint, preserved in the cache).
/// `method` is one of "rcm", "llp", "gorder", "random".
inline reorder::ReorderResult CachedReorder(const std::string& method,
                                            graph::DatasetId id,
                                            const graph::Csr& csr) {
  std::string path = "/tmp/sage_datasets/" + graph::DatasetName(id) + "." +
                     method + ".v2.perm";
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    uint64_t n = 0;
    double seconds = 0;
    reorder::ReorderResult result;
    if (std::fread(&n, sizeof(n), 1, f) == 1 &&
        std::fread(&seconds, sizeof(seconds), 1, f) == 1 &&
        n == csr.num_nodes()) {
      result.new_of_old.resize(n);
      if (std::fread(result.new_of_old.data(), sizeof(graph::NodeId), n, f) ==
          n) {
        result.seconds = seconds;
        std::fclose(f);
        return result;
      }
    }
    std::fclose(f);
  }
  reorder::ReorderResult result;
  if (method == "rcm") {
    result = reorder::RcmOrder(csr);
  } else if (method == "llp") {
    result = reorder::LlpOrder(csr);
  } else if (method == "gorder") {
    result = reorder::GorderOrder(csr);
  } else if (method == "random") {
    result = reorder::RandomOrder(csr, 0xd1ce);
  } else {
    SAGE_LOG(Fatal) << "unknown reorder method " << method;
  }
  (void)::system("mkdir -p /tmp/sage_datasets");
  if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    uint64_t n = result.new_of_old.size();
    std::fwrite(&n, sizeof(n), 1, f);
    std::fwrite(&result.seconds, sizeof(result.seconds), 1, f);
    std::fwrite(result.new_of_old.data(), sizeof(graph::NodeId), n, f);
    std::fclose(f);
  }
  return result;
}

/// Deterministic non-isolated source nodes, biased toward well-connected
/// ones so BFS runs cover a large fraction of the graph.
inline std::vector<graph::NodeId> PickSources(const graph::Csr& csr, int k,
                                              uint64_t seed = 0x5eed) {
  util::Rng rng(seed);
  std::vector<graph::NodeId> sources;
  int guard = 0;
  while (static_cast<int>(sources.size()) < k && guard < 100000) {
    graph::NodeId v = rng.UniformU32(csr.num_nodes());
    if (csr.OutDegree(v) >= 8) sources.push_back(v);
    ++guard;
  }
  while (static_cast<int>(sources.size()) < k) sources.push_back(0);
  return sources;
}

/// Mean traversal speed (GTEPS, the paper's metric) of BFS over the
/// standard sources on an engine configuration.
inline double BfsGteps(sim::GpuDevice& device, const graph::Csr& csr,
                       const core::EngineOptions& options) {
  core::Engine engine(&device, csr, options);
  apps::BfsProgram bfs;
  double total_edges = 0;
  double total_seconds = 0;
  for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
    auto stats = apps::RunBfs(engine, bfs, src);
    SAGE_CHECK(stats.ok()) << stats.status().ToString();
    total_edges += static_cast<double>(stats->edges_traversed);
    total_seconds += stats->seconds;
  }
  return total_seconds <= 0 ? 0.0 : total_edges / total_seconds / 1e9;
}

/// Mean BC traversal speed (forward + backward edges over combined time).
inline double BcGteps(sim::GpuDevice& device, const graph::Csr& csr,
                      const core::EngineOptions& options) {
  core::Engine engine(&device, csr, options);
  apps::Betweenness bc(csr.num_nodes());
  double total_edges = 0;
  double total_seconds = 0;
  for (graph::NodeId src : PickSources(csr, 1)) {
    auto stats = bc.Run(engine, src);
    SAGE_CHECK(stats.ok()) << stats.status().ToString();
    total_edges += static_cast<double>(stats->edges_traversed);
    total_seconds += stats->seconds;
  }
  return total_seconds <= 0 ? 0.0 : total_edges / total_seconds / 1e9;
}

/// PageRank traversal speed over kPrIterations rounds.
inline double PrGteps(sim::GpuDevice& device, const graph::Csr& csr,
                      const core::EngineOptions& options) {
  core::Engine engine(&device, csr, options);
  apps::PageRankProgram pr;
  auto stats = apps::RunPageRank(engine, pr, kPrIterations);
  SAGE_CHECK(stats.ok()) << stats.status().ToString();
  return stats->GTeps();
}

/// Runs `n` independent benchmark configurations concurrently on the host.
/// Each fn(i) must own its whole device + engine stack — the simulations
/// share nothing, so running them side by side changes wall-clock time
/// only, never a result (each is bit-deterministic on its own).
/// `host_threads` follows EngineOptions::host_threads semantics: 0 = auto
/// (hardware concurrency), 1 = serial.
inline void RunConfigsConcurrently(size_t n, uint32_t host_threads,
                                   const std::function<void(size_t)>& fn) {
  uint32_t threads = host_threads == 0 ? util::ThreadPool::HardwareThreads()
                                       : host_threads;
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  util::ThreadPool pool(threads - 1);
  pool.ParallelFor(n, [&](uint32_t /*worker*/, size_t i) { fn(i); });
}

/// Fixed-width table-row helpers so every bench prints aligned output.
inline void PrintHeader(const std::string& first,
                        const std::vector<std::string>& cols) {
  std::printf("%-14s", first.c_str());
  for (const auto& c : cols) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline void PrintRow(const std::string& first,
                     const std::vector<double>& values,
                     const char* fmt = "%12.3f") {
  std::printf("%-14s", first.c_str());
  for (double v : values) std::printf(" "), std::printf(fmt, v);
  std::printf("\n");
}

}  // namespace sage::bench

#endif  // SAGE_BENCH_BENCH_COMMON_H_
