// Reproduces Figure 9: the multi-GPU scenario — BFS with 2 simulated GPUs.
// Now a thin wrapper over core::ShardedEngine (the first-class sharded
// execution path): Gunrock/Groute are shown with hash placement and with
// metis-like pre-partitioning (whose cost is excluded from the speed, as
// the paper does, but reported below the table); SAGE uses
// preprocessing-free hash placement. A single-GPU SAGE column shows that 2
// GPUs do not always win (per-iteration synchronization; Section 7.2).

#include "bench_common.h"
#include "core/sharded_engine.h"

namespace sage::bench {
namespace {

double MultiGteps(const graph::Csr& csr, core::MultiGpuStrategy strategy,
                  graph::PartitionerKind partitioner,
                  double* partition_cost) {
  core::ShardOptions options;
  options.num_shards = 2;
  options.strategy = strategy;
  options.partitioner = partitioner;
  options.spec = BenchSpec();
  auto engine = core::ShardedEngine::Create(csr, options);
  SAGE_CHECK(engine.ok()) << engine.status().ToString();
  double total_edges = 0;
  double total_seconds = 0;
  for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
    apps::AppParams params;
    params.sources = {src};
    auto result = (*engine)->Run("bfs", params);
    SAGE_CHECK(result.ok()) << result.status().ToString();
    total_edges += static_cast<double>(result->stats.edges_traversed);
    total_seconds += result->stats.seconds + result->comm_seconds;
    *partition_cost = result->partition_seconds;
  }
  return total_seconds <= 0 ? 0 : total_edges / total_seconds / 1e9;
}

void Run() {
  std::printf("=== Figure 9: multi-GPU scenario (BFS, 2 GPUs), GTEPS ===\n");
  PrintHeader("dataset", {"1xSAGE", "Gunrock", "Gunrock+m", "Groute",
                          "Groute+m", "SAGE"});
  double metis_cost_total = 0;
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);
    sim::GpuDevice single(BenchSpec());
    double one = BfsGteps(single, csr, core::EngineOptions());
    double unused = 0;
    double metis_cost = 0;
    std::vector<double> row{
        one,
        MultiGteps(csr, core::MultiGpuStrategy::kGunrockLike,
                   graph::PartitionerKind::kHash, &unused),
        MultiGteps(csr, core::MultiGpuStrategy::kGunrockLike,
                   graph::PartitionerKind::kMetisLike, &metis_cost),
        MultiGteps(csr, core::MultiGpuStrategy::kGrouteLike,
                   graph::PartitionerKind::kHash, &unused),
        MultiGteps(csr, core::MultiGpuStrategy::kGrouteLike,
                   graph::PartitionerKind::kMetisLike, &unused),
        MultiGteps(csr, core::MultiGpuStrategy::kSage,
                   graph::PartitionerKind::kHash, &unused)};
    PrintRow(graph::DatasetName(id), row);
    metis_cost_total += metis_cost;
  }
  std::printf("(metis-like pre-partitioning cost, excluded above: %.2fs "
              "total across datasets)\n",
              metis_cost_total);
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
