// Reproduces Figure 9: the multi-GPU scenario — BFS with 2 simulated GPUs.
// Gunrock/Groute are shown with hash placement and with metis-like
// pre-partitioning (whose cost is excluded from the speed, as the paper
// does, but reported below the table); SAGE uses preprocessing-free hash
// placement. A single-GPU SAGE column shows that 2 GPUs do not always win
// (per-iteration synchronization; Section 7.2).

#include "baselines/multi_gpu.h"
#include "bench_common.h"

namespace sage::bench {
namespace {

double MultiGteps(const graph::Csr& csr, baselines::MultiGpuStrategy strategy,
                  baselines::PartitionScheme scheme, double* partition_cost) {
  baselines::MultiGpuOptions opts;
  opts.spec = BenchSpec();
  opts.strategy = strategy;
  opts.partition = scheme;
  double total_edges = 0;
  double total_seconds = 0;
  for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
    auto result = baselines::MultiGpuBfs(csr, src, opts);
    SAGE_CHECK(result.ok()) << result.status().ToString();
    total_edges += static_cast<double>(result->stats.edges_traversed);
    total_seconds += result->stats.seconds;
    *partition_cost = result->partition_seconds;
  }
  return total_seconds <= 0 ? 0 : total_edges / total_seconds / 1e9;
}

void Run() {
  std::printf("=== Figure 9: multi-GPU scenario (BFS, 2 GPUs), GTEPS ===\n");
  PrintHeader("dataset", {"1xSAGE", "Gunrock", "Gunrock+m", "Groute",
                          "Groute+m", "SAGE"});
  double metis_cost_total = 0;
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);
    sim::GpuDevice single(BenchSpec());
    double one = BfsGteps(single, csr, core::EngineOptions());
    double unused = 0;
    double metis_cost = 0;
    std::vector<double> row{
        one,
        MultiGteps(csr, baselines::MultiGpuStrategy::kGunrockLike,
                   baselines::PartitionScheme::kHash, &unused),
        MultiGteps(csr, baselines::MultiGpuStrategy::kGunrockLike,
                   baselines::PartitionScheme::kMetisLike, &metis_cost),
        MultiGteps(csr, baselines::MultiGpuStrategy::kGrouteLike,
                   baselines::PartitionScheme::kHash, &unused),
        MultiGteps(csr, baselines::MultiGpuStrategy::kGrouteLike,
                   baselines::PartitionScheme::kMetisLike, &unused),
        MultiGteps(csr, baselines::MultiGpuStrategy::kSage,
                   baselines::PartitionScheme::kHash, &unused)};
    PrintRow(graph::DatasetName(id), row);
    metis_cost_total += metis_cost;
  }
  std::printf("(metis-like pre-partitioning cost, excluded above: %.2fs "
              "total across datasets)\n",
              metis_cost_total);
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
