// Extra design-choice ablations beyond the paper's Figure 10 (DESIGN.md's
// per-experiment index calls these out):
//   (a) MIN_TILE_SIZE sweep — Algorithm 2's smallest cooperative group;
//   (b) tile alignment on/off — the Section 5.3 sector-alignment strategy;
//   (c) L2 capacity sensitivity — how much of SAGE's win is cache-borne;
//   (d) sampling-threshold sweep — the paper fixes the Sampling-based
//       Reordering stage threshold at |E|; this sweep shows the
//       convergence-speed/quality trade-off that justifies the benches'
//       |E|/2 setting.
// BFS on twitter-s (the most skewed dataset) in GTEPS.

#include "bench_common.h"

namespace sage::bench {
namespace {

void Run() {
  graph::Csr csr = LoadDataset(graph::DatasetId::kTwitters);
  std::printf("=== Extra ablations (BFS on twitter-s, GTEPS) ===\n");

  std::printf("\n(a) MIN_TILE_SIZE sweep\n");
  PrintHeader("min_tile", {"GTEPS"});
  for (uint32_t mts : {4u, 8u, 16u, 32u, 64u}) {
    sim::GpuDevice device(BenchSpec());
    core::EngineOptions opts;
    opts.min_tile_size = mts;
    PrintRow(std::to_string(mts), {BfsGteps(device, csr, opts)});
  }

  std::printf("\n(b) tile alignment (Section 5.3)\n");
  PrintHeader("alignment", {"GTEPS", "amplif."});
  for (bool align : {false, true}) {
    sim::GpuDevice device(BenchSpec());
    core::EngineOptions opts;
    opts.tile_alignment = align;
    double g = BfsGteps(device, csr, opts);
    PrintRow(align ? "aligned" : "unaligned",
             {g, device.mem().device_stats().Amplification()});
  }

  std::printf("\n(c) L2 capacity sensitivity\n");
  PrintHeader("l2_kb", {"GTEPS", "hit-rate"});
  for (uint64_t kb : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
    sim::DeviceSpec spec = BenchSpec();
    spec.l2_bytes = kb << 10;
    sim::GpuDevice device(spec);
    double g = BfsGteps(device, csr, core::EngineOptions());
    PrintRow(std::to_string(kb),
             {g, device.mem().device_stats().L2HitRate()});
  }

  std::printf("\n(d) sampling-threshold sweep (speed measured after 5 "
              "applied rounds)\n");
  PrintHeader("threshold", {"GTEPS@r5", "runs-to-r5"});
  for (uint64_t div : {8ull, 4ull, 2ull, 1ull}) {
    sim::GpuDevice device(BenchSpec());
    core::EngineOptions opts;
    opts.sampling_reorder = true;
    opts.sampling_threshold_edges = csr.num_edges() / div + 1;
    core::Engine engine(&device, csr, opts);
    apps::BfsProgram bfs;
    auto sources = PickSources(csr, 64, 0xfeed);
    size_t si = 0;
    int runs = 0;
    while (engine.reorder_rounds() < 5 && runs < 300) {
      auto s = apps::RunBfs(engine, bfs, sources[si++ % sources.size()]);
      SAGE_CHECK(s.ok());
      ++runs;
    }
    sim::GpuDevice fresh(BenchSpec());
    core::Engine measured(&fresh, engine.csr(), core::EngineOptions());
    apps::BfsProgram bfs2;
    double te = 0;
    double ts = 0;
    for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
      auto s = apps::RunBfs(measured, bfs2, engine.InternalId(src));
      SAGE_CHECK(s.ok());
      te += static_cast<double>(s->edges_traversed);
      ts += s->seconds;
    }
    PrintRow("|E|/" + std::to_string(div),
             {ts <= 0 ? 0 : te / ts / 1e9, static_cast<double>(runs)});
  }
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
