// Reproduces Figure 6: SAGE traversal speed (GTEPS) under different node
// orders — the original CSR order, offline reordering baselines (RCM, LLP,
// Gorder replicas), and SAGE's own Sampling-based Reordering measured
// after 1, 5 and 10 applied rounds (the paper runs to round 100; the
// scaled graphs converge within ~5 rounds, matching the paper's
// observation that "only a few rounds achieve competitive performance").

#include <functional>

#include "bench_common.h"
#include "reorder/permutation.h"

namespace sage::bench {
namespace {

// One measurement: traversal speed of `app` on a SAGE engine over `csr`.
using AppFn = std::function<double(sim::GpuDevice&, const graph::Csr&,
                                   const core::EngineOptions&)>;

double MeasureReplica(const graph::Csr& csr, const AppFn& app) {
  sim::GpuDevice device(BenchSpec());
  return app(device, csr, core::EngineOptions());
}

// Measures the app's speed on a given (already relabeled) layout, from
// vertex-consistent sources given as ids in that layout.
double MeasureLayout(const graph::Csr& layout, const char* app,
                     const std::vector<graph::NodeId>& sources) {
  sim::GpuDevice device(BenchSpec());
  core::Engine engine(&device, layout, core::EngineOptions());
  double te = 0;
  double ts = 0;
  if (std::string(app) == "bfs") {
    apps::BfsProgram bfs;
    for (graph::NodeId src : sources) {
      auto s = apps::RunBfs(engine, bfs, src);
      SAGE_CHECK(s.ok());
      te += static_cast<double>(s->edges_traversed);
      ts += s->seconds;
    }
  } else if (std::string(app) == "bc") {
    apps::Betweenness bc(layout.num_nodes());
    auto s = bc.Run(engine, sources[0]);
    SAGE_CHECK(s.ok());
    te = static_cast<double>(s->edges_traversed);
    ts = s->seconds;
  } else {
    apps::PageRankProgram pr;
    auto s = apps::RunPageRank(engine, pr, kPrIterations);
    SAGE_CHECK(s.ok());
    te = static_cast<double>(s->edges_traversed);
    ts = s->seconds;
  }
  return ts <= 0 ? 0 : te / ts / 1e9;
}

// Warm a sampling engine through reordering rounds by running the app
// itself (the paper samples the live workload); at every checkpoint the
// learned order is measured on a fresh engine — "the execution based on
// that order" (Figure 6's bar semantics) — from vertex-consistent sources.
std::vector<double> MeasureSampling(const graph::Csr& csr, const char* app,
                                    const std::vector<uint32_t>& checkpoints) {
  sim::GpuDevice device(BenchSpec());
  core::EngineOptions opts;
  opts.sampling_reorder = true;
  opts.sampling_threshold_edges = csr.num_edges() / 2 + 1;
  core::Engine engine(&device, csr, opts);

  apps::BfsProgram bfs;
  apps::Betweenness bc(csr.num_nodes());
  apps::PageRankProgram pr;
  auto fixed = PickSources(csr, kSourcesPerDataset);
  auto sources = PickSources(csr, 64, 0xfeed);
  size_t si = 0;

  auto warm_once = [&] {
    if (std::string(app) == "bfs") {
      auto s = apps::RunBfs(engine, bfs, sources[si++ % sources.size()]);
      SAGE_CHECK(s.ok());
    } else if (std::string(app) == "bc") {
      auto s = bc.Run(engine, sources[si++ % sources.size()]);
      SAGE_CHECK(s.ok());
    } else {
      auto s = apps::RunPageRank(engine, pr, 3);
      SAGE_CHECK(s.ok());
    }
  };

  std::vector<double> out;
  int guard = 0;
  for (uint32_t target : checkpoints) {
    while (engine.reorder_rounds() < target && guard < 500) {
      warm_once();
      ++guard;
    }
    std::vector<graph::NodeId> mapped;
    for (graph::NodeId src : fixed) mapped.push_back(engine.InternalId(src));
    out.push_back(MeasureLayout(engine.csr(), app, mapped));
  }
  return out;
}

void RunApp(const char* app, const AppFn& fn) {
  std::printf("\n--- Figure 6 (%s): SAGE traversal speed by node order, "
              "GTEPS ---\n",
              app);
  PrintHeader("dataset", {"orig", "RCM", "LLP", "Gorder", "SAGE_1", "SAGE_5",
                          "SAGE_10"});
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);
    std::vector<double> row;
    row.push_back(MeasureReplica(csr, fn));
    for (const char* method : {"rcm", "llp", "gorder"}) {
      auto perm = CachedReorder(method, id, csr);
      row.push_back(MeasureReplica(reorder::ApplyToCsr(csr, perm.new_of_old),
                                   fn));
    }
    auto sampled = MeasureSampling(csr, app, {1, 5, 10});
    row.insert(row.end(), sampled.begin(), sampled.end());
    PrintRow(graph::DatasetName(id), row);
  }
}

void Run() {
  std::printf("=== Figure 6: comparison between SAGE and reordering "
              "methods ===\n");
  RunApp("bfs", [](sim::GpuDevice& d, const graph::Csr& c,
                   const core::EngineOptions& o) { return BfsGteps(d, c, o); });
  RunApp("bc", [](sim::GpuDevice& d, const graph::Csr& c,
                  const core::EngineOptions& o) { return BcGteps(d, c, o); });
  RunApp("pr", [](sim::GpuDevice& d, const graph::Csr& c,
                  const core::EngineOptions& o) { return PrGteps(d, c, o); });
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
