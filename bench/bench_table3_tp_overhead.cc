// Reproduces Table 3: Tiled Partitioning scheduling cost (leader
// elections, votes, cg::partition) as overhead / total running time, in
// milliseconds, for BFS / BC / PR on every dataset.

#include "bench_common.h"

namespace sage::bench {
namespace {

struct Overhead {
  double tp_ms = 0;
  double total_ms = 0;
};

Overhead Measure(const graph::Csr& csr, const char* app) {
  sim::GpuDevice device(BenchSpec());
  core::EngineOptions opts;  // full SAGE
  core::Engine engine(&device, csr, opts);
  core::RunStats stats;
  if (std::string(app) == "bfs") {
    apps::BfsProgram bfs;
    auto s = apps::RunBfs(engine, bfs, PickSources(csr, 1)[0]);
    SAGE_CHECK(s.ok());
    stats = *s;
  } else if (std::string(app) == "bc") {
    apps::Betweenness bc(csr.num_nodes());
    auto s = bc.Run(engine, PickSources(csr, 1)[0]);
    SAGE_CHECK(s.ok());
    stats = *s;
  } else {
    apps::PageRankProgram pr;
    auto s = apps::RunPageRank(engine, pr, kPrIterations);
    SAGE_CHECK(s.ok());
    stats = *s;
  }
  return Overhead{stats.tp_overhead_seconds * 1e3, stats.seconds * 1e3};
}

void Run() {
  std::printf("=== Table 3: Tiled Partitioning costs out of running time "
              "(msec.) ===\n");
  std::printf("%-14s %22s %22s %22s\n", "dataset", "BFS", "BC", "PR");
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);
    std::printf("%-14s", graph::DatasetName(id).c_str());
    for (const char* app : {"bfs", "bc", "pr"}) {
      Overhead o = Measure(csr, app);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.3f/%.3f (%.1f%%)", o.tp_ms,
                    o.total_ms, 100.0 * o.tp_ms / std::max(o.total_ms, 1e-12));
      std::printf(" %22s", cell);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
