// Reproduces Table 1: statistics of the (scaled synthetic) datasets. The
// |V|, |E| columns are ~500x below the paper's originals by design; the
// category signatures (E/V ratio ordering, skew ordering) are the
// reproduction target — see DESIGN.md §1.

#include "bench_common.h"

int main() {
  std::printf("=== Table 1: statistics of datasets (scaled) ===\n");
  std::printf("%-14s %-16s %10s %12s %8s %8s %10s\n", "dataset", "category",
              "|V|", "|E|", "E/V", "maxdeg", "deg-gini");
  for (sage::graph::DatasetId id : sage::graph::AllDatasets()) {
    sage::graph::Csr csr = sage::bench::LoadDataset(id);
    auto stats = sage::graph::ComputeStats(csr);
    std::printf("%-14s %-16s %10llu %12llu %8.1f %8u %10.3f\n",
                sage::graph::DatasetName(id).c_str(),
                sage::graph::DatasetCategory(id).c_str(),
                static_cast<unsigned long long>(stats.num_nodes),
                static_cast<unsigned long long>(stats.num_edges),
                stats.avg_degree, stats.max_degree, stats.degree_gini);
  }
  return 0;
}
