// Reproduces Figure 10: ablation study of SAGE's techniques, applied
// incrementally to BFS on all five datasets.
//   Base    — no load reallocation (one thread walks each frontier node)
//   +TP     — Tiled Partitioning (Algorithm 2)
//   +RTS    — plus Resident Tile Stealing (Algorithm 3)
//   +SR     — plus Sampling-based Reordering (Section 6, measured after
//             5 rounds have been applied)
// Values are traversal speeds in GTEPS (higher is better).

#include "bench_common.h"

namespace sage::bench {
namespace {

double SrGteps(const graph::Csr& csr) {
  sim::GpuDevice device(BenchSpec());
  core::EngineOptions opts;  // full SAGE
  opts.sampling_reorder = true;
  opts.sampling_threshold_edges = csr.num_edges() / 2 + 1;
  core::Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto sources = PickSources(csr, 16, 0xabcd);
  // Warm up until 5 reordering rounds have been applied, then measure the
  // learned order on a fresh engine from vertex-consistent sources.
  size_t si = 0;
  int guard = 0;
  while (engine.reorder_rounds() < 5 && guard < 400) {
    auto warm = apps::RunBfs(engine, bfs, sources[si % sources.size()]);
    SAGE_CHECK(warm.ok());
    ++si;
    ++guard;
  }
  sim::GpuDevice fresh(BenchSpec());
  core::Engine measured(&fresh, engine.csr(), core::EngineOptions());
  apps::BfsProgram bfs2;
  double total_edges = 0;
  double total_seconds = 0;
  for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
    auto stats = apps::RunBfs(measured, bfs2, engine.InternalId(src));
    SAGE_CHECK(stats.ok());
    total_edges += static_cast<double>(stats->edges_traversed);
    total_seconds += stats->seconds;
  }
  return total_seconds <= 0 ? 0.0 : total_edges / total_seconds / 1e9;
}

void Run() {
  std::printf("=== Figure 10: impact analysis (ablation), BFS, GTEPS ===\n");
  PrintHeader("dataset", {"Base", "+TP", "+TP+RTS", "+TP+RTS+SR"});
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);

    core::EngineOptions base;
    base.tiled_partitioning = false;
    base.resident_tiles = false;
    core::EngineOptions tp;
    tp.tiled_partitioning = true;
    tp.resident_tiles = false;
    core::EngineOptions rts;  // defaults: TP + RTS

    sim::GpuDevice d0(BenchSpec());
    sim::GpuDevice d1(BenchSpec());
    sim::GpuDevice d2(BenchSpec());
    std::vector<double> row;
    row.push_back(BfsGteps(d0, csr, base));
    row.push_back(BfsGteps(d1, csr, tp));
    row.push_back(BfsGteps(d2, csr, rts));
    row.push_back(SrGteps(csr));
    PrintRow(graph::DatasetName(id), row);
  }
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
