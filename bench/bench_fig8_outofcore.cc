// Reproduces Figure 8: the out-of-core scenario — adjacency data lives in
// host memory behind the PCIe link; BFS traversal speed in GTEPS.
//   OnDemand — no load reallocation, per-thread scattered host reads
//              (UM-style worst case; Section 3.3's motivation)
//   Subway   — active-subgraph extraction + asynchronous bulk preloading
//   SAGE     — tiled partitioning keeps host requests merged/aligned and
//              resident-tile stealing keeps the PCIe pipeline occupied
// Also reports effective link efficiency (payload / wire bytes).

#include "baselines/subway.h"
#include "bench_common.h"

namespace sage::bench {
namespace {

double SageOoc(const graph::Csr& csr, bool tiled, double* efficiency) {
  sim::GpuDevice device(BenchSpec());
  core::EngineOptions opts;
  opts.adjacency_on_host = true;
  if (!tiled) {
    opts.tiled_partitioning = false;
    opts.resident_tiles = false;
  }
  double gteps = BfsGteps(device, csr, opts);
  *efficiency = device.host_link().stats().Efficiency();
  return gteps;
}

void Run() {
  std::printf("=== Figure 8: out-of-core scenario (BFS over PCIe), GTEPS "
              "===\n");
  PrintHeader("dataset",
              {"OnDemand", "Subway", "SAGE", "eff(OnD)", "eff(SAGE)"});
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);

    double eff_naive = 0;
    double naive = SageOoc(csr, /*tiled=*/false, &eff_naive);

    sim::GpuDevice sdev(BenchSpec());
    baselines::SubwayBfs subway(&sdev, &csr);
    double sub_edges = 0;
    double sub_seconds = 0;
    for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
      auto r = subway.Run(src);
      sub_edges += static_cast<double>(r.stats.edges_traversed);
      sub_seconds += r.stats.seconds;
    }
    double sub = sub_seconds <= 0 ? 0 : sub_edges / sub_seconds / 1e9;

    double eff_sage = 0;
    double sage = SageOoc(csr, /*tiled=*/true, &eff_sage);

    PrintRow(graph::DatasetName(id), {naive, sub, sage, eff_naive, eff_sage});
  }
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
