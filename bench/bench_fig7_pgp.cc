// Reproduces Figure 7: SAGE vs parallel-graph-processing baselines, with
// and without Gorder preprocessing, for BFS / BC / PR on all datasets.
// All GPU baselines run on the same simulated device and cost model; only
// the scheduling strategy differs (DESIGN.md §1):
//   Ligra   — CPU direction-optimizing engine (work-based cost model)
//   Tigr    — UDT preprocessing (split degree 32) + warp mapping
//   Gunrock — per-warp dynamic grouping
//   B40C    — three-bucket rescheduling
//   SAGE    — tiled partitioning + resident tile stealing
// Values are GTEPS. The +G columns traverse the Gorder-relabeled replica
// (SAGE has no +G column in the paper; shown here for completeness).

#include "baselines/ligra.h"
#include "bench_common.h"
#include "reorder/permutation.h"

namespace sage::bench {
namespace {

enum class App { kBfs, kBc, kPr };

double GpuMethod(const graph::Csr& csr, const core::EngineOptions& opts,
                 App app) {
  sim::GpuDevice device(BenchSpec());
  switch (app) {
    case App::kBfs:
      return BfsGteps(device, csr, opts);
    case App::kBc:
      return BcGteps(device, csr, opts);
    case App::kPr:
      return PrGteps(device, csr, opts);
  }
  return 0;
}

double LigraMethod(const graph::Csr& csr, App app) {
  baselines::LigraEngine ligra(csr);
  double total_edges = 0;
  double total_seconds = 0;
  switch (app) {
    case App::kBfs:
      for (graph::NodeId src : PickSources(csr, kSourcesPerDataset)) {
        auto s = ligra.Bfs(src);
        total_edges += static_cast<double>(s.edges_traversed);
        total_seconds += s.seconds;
      }
      break;
    case App::kBc:
      for (graph::NodeId src : PickSources(csr, 1)) {
        auto s = ligra.Bc(src);
        total_edges += static_cast<double>(s.edges_traversed);
        total_seconds += s.seconds;
      }
      break;
    case App::kPr: {
      auto s = ligra.PageRank(kPrIterations);
      total_edges = static_cast<double>(s.edges_traversed);
      total_seconds = s.seconds;
      break;
    }
  }
  return total_seconds <= 0 ? 0 : total_edges / total_seconds / 1e9;
}

core::EngineOptions TigrOptions() {
  core::EngineOptions o;
  o.strategy = core::ExpandStrategy::kWarpCentric;
  o.tiled_partitioning = false;
  o.resident_tiles = false;
  o.udt_split_degree = 32;
  return o;
}

core::EngineOptions GunrockOptions() {
  core::EngineOptions o;
  o.strategy = core::ExpandStrategy::kWarpCentric;
  o.tiled_partitioning = false;
  o.resident_tiles = false;
  return o;
}

core::EngineOptions B40cOptions() {
  core::EngineOptions o;
  o.strategy = core::ExpandStrategy::kB40c;
  o.tiled_partitioning = false;
  o.resident_tiles = false;
  return o;
}

void RunApp(const char* name, App app) {
  std::printf("\n--- Figure 7 (%s): SAGE vs PGP baselines, GTEPS "
              "(+G = on Gorder replica) ---\n",
              name);
  PrintHeader("dataset", {"Ligra", "Ligra+G", "Tigr", "Tigr+G", "Gunrock",
                          "Gunrock+G", "B40C", "B40C+G", "SAGE", "SAGE+G"});
  for (graph::DatasetId id : graph::AllDatasets()) {
    graph::Csr csr = LoadDataset(id);
    auto gorder = CachedReorder("gorder", id, csr);
    graph::Csr gcsr = reorder::ApplyToCsr(csr, gorder.new_of_old);

    // The ten cells of a row are independent simulations — run them
    // concurrently (each owns its device; results are unaffected).
    std::vector<std::function<double()>> cells;
    cells.push_back([&] { return LigraMethod(csr, app); });
    cells.push_back([&] { return LigraMethod(gcsr, app); });
    for (const auto& opts : {TigrOptions(), GunrockOptions(), B40cOptions(),
                             core::EngineOptions()}) {
      cells.push_back([&csr, opts, app] { return GpuMethod(csr, opts, app); });
      cells.push_back(
          [&gcsr, opts, app] { return GpuMethod(gcsr, opts, app); });
    }
    std::vector<double> row(cells.size());
    RunConfigsConcurrently(cells.size(), 0,
                           [&](size_t i) { row[i] = cells[i](); });
    PrintRow(graph::DatasetName(id), row, "%12.3f");
  }
}

void Run() {
  std::printf("=== Figure 7: comparison between SAGE and PGP approaches "
              "===\n");
  RunApp("bfs", App::kBfs);
  RunApp("bc", App::kBc);
  RunApp("pr", App::kPr);
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::Run();
  return 0;
}
