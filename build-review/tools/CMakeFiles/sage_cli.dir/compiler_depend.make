# Empty compiler generated dependencies file for sage_cli.
# This may be replaced when dependencies are built.
