file(REMOVE_RECURSE
  "CMakeFiles/sage_cli.dir/sage_cli.cc.o"
  "CMakeFiles/sage_cli.dir/sage_cli.cc.o.d"
  "sage_cli"
  "sage_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
