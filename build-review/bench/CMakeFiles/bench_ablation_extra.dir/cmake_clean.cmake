file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extra.dir/bench_ablation_extra.cc.o"
  "CMakeFiles/bench_ablation_extra.dir/bench_ablation_extra.cc.o.d"
  "bench_ablation_extra"
  "bench_ablation_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
