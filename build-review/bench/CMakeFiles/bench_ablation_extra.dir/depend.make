# Empty dependencies file for bench_ablation_extra.
# This may be replaced when dependencies are built.
