file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_outofcore.dir/bench_fig8_outofcore.cc.o"
  "CMakeFiles/bench_fig8_outofcore.dir/bench_fig8_outofcore.cc.o.d"
  "bench_fig8_outofcore"
  "bench_fig8_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
