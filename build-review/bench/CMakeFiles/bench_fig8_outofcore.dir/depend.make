# Empty dependencies file for bench_fig8_outofcore.
# This may be replaced when dependencies are built.
