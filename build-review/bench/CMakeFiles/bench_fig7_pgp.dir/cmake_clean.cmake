file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pgp.dir/bench_fig7_pgp.cc.o"
  "CMakeFiles/bench_fig7_pgp.dir/bench_fig7_pgp.cc.o.d"
  "bench_fig7_pgp"
  "bench_fig7_pgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
