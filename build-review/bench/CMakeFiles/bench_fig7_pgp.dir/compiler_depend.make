# Empty compiler generated dependencies file for bench_fig7_pgp.
# This may be replaced when dependencies are built.
