# Empty dependencies file for bench_fig6_reordering.
# This may be replaced when dependencies are built.
