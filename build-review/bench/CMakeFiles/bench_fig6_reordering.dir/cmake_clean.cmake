file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_reordering.dir/bench_fig6_reordering.cc.o"
  "CMakeFiles/bench_fig6_reordering.dir/bench_fig6_reordering.cc.o.d"
  "bench_fig6_reordering"
  "bench_fig6_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
