# Empty compiler generated dependencies file for bench_table2_reorder_cost.
# This may be replaced when dependencies are built.
