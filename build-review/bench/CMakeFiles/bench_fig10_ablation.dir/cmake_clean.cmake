file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ablation.dir/bench_fig10_ablation.cc.o"
  "CMakeFiles/bench_fig10_ablation.dir/bench_fig10_ablation.cc.o.d"
  "bench_fig10_ablation"
  "bench_fig10_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
