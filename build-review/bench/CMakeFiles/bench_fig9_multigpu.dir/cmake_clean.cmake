file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_multigpu.dir/bench_fig9_multigpu.cc.o"
  "CMakeFiles/bench_fig9_multigpu.dir/bench_fig9_multigpu.cc.o.d"
  "bench_fig9_multigpu"
  "bench_fig9_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
