# Empty dependencies file for bench_fig9_multigpu.
# This may be replaced when dependencies are built.
