# Empty compiler generated dependencies file for dynamic_graph.
# This may be replaced when dependencies are built.
