file(REMOVE_RECURSE
  "CMakeFiles/dynamic_graph.dir/dynamic_graph.cpp.o"
  "CMakeFiles/dynamic_graph.dir/dynamic_graph.cpp.o.d"
  "dynamic_graph"
  "dynamic_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
