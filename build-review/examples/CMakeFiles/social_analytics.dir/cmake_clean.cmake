file(REMOVE_RECURSE
  "CMakeFiles/social_analytics.dir/social_analytics.cpp.o"
  "CMakeFiles/social_analytics.dir/social_analytics.cpp.o.d"
  "social_analytics"
  "social_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
