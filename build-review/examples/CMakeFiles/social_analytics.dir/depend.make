# Empty dependencies file for social_analytics.
# This may be replaced when dependencies are built.
