# Empty dependencies file for sage_sim.
# This may be replaced when dependencies are built.
