file(REMOVE_RECURSE
  "CMakeFiles/sage_sim.dir/gpu_device.cc.o"
  "CMakeFiles/sage_sim.dir/gpu_device.cc.o.d"
  "CMakeFiles/sage_sim.dir/link.cc.o"
  "CMakeFiles/sage_sim.dir/link.cc.o.d"
  "CMakeFiles/sage_sim.dir/memory_sim.cc.o"
  "CMakeFiles/sage_sim.dir/memory_sim.cc.o.d"
  "CMakeFiles/sage_sim.dir/profile.cc.o"
  "CMakeFiles/sage_sim.dir/profile.cc.o.d"
  "CMakeFiles/sage_sim.dir/replay.cc.o"
  "CMakeFiles/sage_sim.dir/replay.cc.o.d"
  "libsage_sim.a"
  "libsage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
