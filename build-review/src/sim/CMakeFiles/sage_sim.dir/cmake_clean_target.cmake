file(REMOVE_RECURSE
  "libsage_sim.a"
)
