
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gpu_device.cc" "src/sim/CMakeFiles/sage_sim.dir/gpu_device.cc.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/gpu_device.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/sim/CMakeFiles/sage_sim.dir/link.cc.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/link.cc.o.d"
  "/root/repo/src/sim/memory_sim.cc" "src/sim/CMakeFiles/sage_sim.dir/memory_sim.cc.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/memory_sim.cc.o.d"
  "/root/repo/src/sim/profile.cc" "src/sim/CMakeFiles/sage_sim.dir/profile.cc.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/profile.cc.o.d"
  "/root/repo/src/sim/replay.cc" "src/sim/CMakeFiles/sage_sim.dir/replay.cc.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
