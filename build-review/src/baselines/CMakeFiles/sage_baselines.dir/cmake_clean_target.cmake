file(REMOVE_RECURSE
  "libsage_baselines.a"
)
