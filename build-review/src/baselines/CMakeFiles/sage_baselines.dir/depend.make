# Empty dependencies file for sage_baselines.
# This may be replaced when dependencies are built.
