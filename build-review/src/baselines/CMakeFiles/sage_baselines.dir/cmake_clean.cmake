file(REMOVE_RECURSE
  "CMakeFiles/sage_baselines.dir/ligra.cc.o"
  "CMakeFiles/sage_baselines.dir/ligra.cc.o.d"
  "CMakeFiles/sage_baselines.dir/metis_like.cc.o"
  "CMakeFiles/sage_baselines.dir/metis_like.cc.o.d"
  "CMakeFiles/sage_baselines.dir/multi_gpu.cc.o"
  "CMakeFiles/sage_baselines.dir/multi_gpu.cc.o.d"
  "CMakeFiles/sage_baselines.dir/subway.cc.o"
  "CMakeFiles/sage_baselines.dir/subway.cc.o.d"
  "libsage_baselines.a"
  "libsage_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
