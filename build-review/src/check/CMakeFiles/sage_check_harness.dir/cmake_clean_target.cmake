file(REMOVE_RECURSE
  "libsage_check_harness.a"
)
