# Empty dependencies file for sage_check_harness.
# This may be replaced when dependencies are built.
