file(REMOVE_RECURSE
  "CMakeFiles/sage_check_harness.dir/determinism.cc.o"
  "CMakeFiles/sage_check_harness.dir/determinism.cc.o.d"
  "libsage_check_harness.a"
  "libsage_check_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_check_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
