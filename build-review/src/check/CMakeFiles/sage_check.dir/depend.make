# Empty dependencies file for sage_check.
# This may be replaced when dependencies are built.
