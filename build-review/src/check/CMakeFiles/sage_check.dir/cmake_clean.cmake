file(REMOVE_RECURSE
  "CMakeFiles/sage_check.dir/access_checker.cc.o"
  "CMakeFiles/sage_check.dir/access_checker.cc.o.d"
  "libsage_check.a"
  "libsage_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
