file(REMOVE_RECURSE
  "libsage_check.a"
)
