
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bc.cc" "src/apps/CMakeFiles/sage_apps.dir/bc.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/bc.cc.o.d"
  "/root/repo/src/apps/bfs.cc" "src/apps/CMakeFiles/sage_apps.dir/bfs.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/bfs.cc.o.d"
  "/root/repo/src/apps/cc.cc" "src/apps/CMakeFiles/sage_apps.dir/cc.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/cc.cc.o.d"
  "/root/repo/src/apps/kcore.cc" "src/apps/CMakeFiles/sage_apps.dir/kcore.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/kcore.cc.o.d"
  "/root/repo/src/apps/label_prop.cc" "src/apps/CMakeFiles/sage_apps.dir/label_prop.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/label_prop.cc.o.d"
  "/root/repo/src/apps/msbfs.cc" "src/apps/CMakeFiles/sage_apps.dir/msbfs.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/msbfs.cc.o.d"
  "/root/repo/src/apps/pagerank.cc" "src/apps/CMakeFiles/sage_apps.dir/pagerank.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/pagerank.cc.o.d"
  "/root/repo/src/apps/pr_delta.cc" "src/apps/CMakeFiles/sage_apps.dir/pr_delta.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/pr_delta.cc.o.d"
  "/root/repo/src/apps/reference.cc" "src/apps/CMakeFiles/sage_apps.dir/reference.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/reference.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/sage_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sssp.cc" "src/apps/CMakeFiles/sage_apps.dir/sssp.cc.o" "gcc" "src/apps/CMakeFiles/sage_apps.dir/sssp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/sage_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reorder/CMakeFiles/sage_reorder.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/sage_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/check/CMakeFiles/sage_check.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sage_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
