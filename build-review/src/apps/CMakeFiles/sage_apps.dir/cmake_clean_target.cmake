file(REMOVE_RECURSE
  "libsage_apps.a"
)
