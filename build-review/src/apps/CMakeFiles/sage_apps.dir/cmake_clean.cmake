file(REMOVE_RECURSE
  "CMakeFiles/sage_apps.dir/bc.cc.o"
  "CMakeFiles/sage_apps.dir/bc.cc.o.d"
  "CMakeFiles/sage_apps.dir/bfs.cc.o"
  "CMakeFiles/sage_apps.dir/bfs.cc.o.d"
  "CMakeFiles/sage_apps.dir/cc.cc.o"
  "CMakeFiles/sage_apps.dir/cc.cc.o.d"
  "CMakeFiles/sage_apps.dir/kcore.cc.o"
  "CMakeFiles/sage_apps.dir/kcore.cc.o.d"
  "CMakeFiles/sage_apps.dir/label_prop.cc.o"
  "CMakeFiles/sage_apps.dir/label_prop.cc.o.d"
  "CMakeFiles/sage_apps.dir/msbfs.cc.o"
  "CMakeFiles/sage_apps.dir/msbfs.cc.o.d"
  "CMakeFiles/sage_apps.dir/pagerank.cc.o"
  "CMakeFiles/sage_apps.dir/pagerank.cc.o.d"
  "CMakeFiles/sage_apps.dir/pr_delta.cc.o"
  "CMakeFiles/sage_apps.dir/pr_delta.cc.o.d"
  "CMakeFiles/sage_apps.dir/reference.cc.o"
  "CMakeFiles/sage_apps.dir/reference.cc.o.d"
  "CMakeFiles/sage_apps.dir/registry.cc.o"
  "CMakeFiles/sage_apps.dir/registry.cc.o.d"
  "CMakeFiles/sage_apps.dir/sssp.cc.o"
  "CMakeFiles/sage_apps.dir/sssp.cc.o.d"
  "libsage_apps.a"
  "libsage_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
