# Empty dependencies file for sage_apps.
# This may be replaced when dependencies are built.
