file(REMOVE_RECURSE
  "libsage_util.a"
)
