file(REMOVE_RECURSE
  "CMakeFiles/sage_util.dir/logging.cc.o"
  "CMakeFiles/sage_util.dir/logging.cc.o.d"
  "CMakeFiles/sage_util.dir/prefix_sum.cc.o"
  "CMakeFiles/sage_util.dir/prefix_sum.cc.o.d"
  "CMakeFiles/sage_util.dir/random.cc.o"
  "CMakeFiles/sage_util.dir/random.cc.o.d"
  "CMakeFiles/sage_util.dir/segsort.cc.o"
  "CMakeFiles/sage_util.dir/segsort.cc.o.d"
  "CMakeFiles/sage_util.dir/stats.cc.o"
  "CMakeFiles/sage_util.dir/stats.cc.o.d"
  "CMakeFiles/sage_util.dir/status.cc.o"
  "CMakeFiles/sage_util.dir/status.cc.o.d"
  "CMakeFiles/sage_util.dir/thread_pool.cc.o"
  "CMakeFiles/sage_util.dir/thread_pool.cc.o.d"
  "libsage_util.a"
  "libsage_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
