# Empty dependencies file for sage_util.
# This may be replaced when dependencies are built.
