file(REMOVE_RECURSE
  "libsage_graph.a"
)
