file(REMOVE_RECURSE
  "CMakeFiles/sage_graph.dir/builder.cc.o"
  "CMakeFiles/sage_graph.dir/builder.cc.o.d"
  "CMakeFiles/sage_graph.dir/coo.cc.o"
  "CMakeFiles/sage_graph.dir/coo.cc.o.d"
  "CMakeFiles/sage_graph.dir/csr.cc.o"
  "CMakeFiles/sage_graph.dir/csr.cc.o.d"
  "CMakeFiles/sage_graph.dir/datasets.cc.o"
  "CMakeFiles/sage_graph.dir/datasets.cc.o.d"
  "CMakeFiles/sage_graph.dir/dynamic.cc.o"
  "CMakeFiles/sage_graph.dir/dynamic.cc.o.d"
  "CMakeFiles/sage_graph.dir/generators.cc.o"
  "CMakeFiles/sage_graph.dir/generators.cc.o.d"
  "CMakeFiles/sage_graph.dir/io.cc.o"
  "CMakeFiles/sage_graph.dir/io.cc.o.d"
  "libsage_graph.a"
  "libsage_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
