# Empty dependencies file for sage_graph.
# This may be replaced when dependencies are built.
