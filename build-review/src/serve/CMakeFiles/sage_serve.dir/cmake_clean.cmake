file(REMOVE_RECURSE
  "CMakeFiles/sage_serve.dir/graph_registry.cc.o"
  "CMakeFiles/sage_serve.dir/graph_registry.cc.o.d"
  "CMakeFiles/sage_serve.dir/service.cc.o"
  "CMakeFiles/sage_serve.dir/service.cc.o.d"
  "libsage_serve.a"
  "libsage_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
