# Empty dependencies file for sage_serve.
# This may be replaced when dependencies are built.
