file(REMOVE_RECURSE
  "libsage_serve.a"
)
