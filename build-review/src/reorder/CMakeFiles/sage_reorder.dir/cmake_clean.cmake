file(REMOVE_RECURSE
  "CMakeFiles/sage_reorder.dir/gorder.cc.o"
  "CMakeFiles/sage_reorder.dir/gorder.cc.o.d"
  "CMakeFiles/sage_reorder.dir/llp.cc.o"
  "CMakeFiles/sage_reorder.dir/llp.cc.o.d"
  "CMakeFiles/sage_reorder.dir/permutation.cc.o"
  "CMakeFiles/sage_reorder.dir/permutation.cc.o.d"
  "CMakeFiles/sage_reorder.dir/rcm.cc.o"
  "CMakeFiles/sage_reorder.dir/rcm.cc.o.d"
  "libsage_reorder.a"
  "libsage_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
