
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reorder/gorder.cc" "src/reorder/CMakeFiles/sage_reorder.dir/gorder.cc.o" "gcc" "src/reorder/CMakeFiles/sage_reorder.dir/gorder.cc.o.d"
  "/root/repo/src/reorder/llp.cc" "src/reorder/CMakeFiles/sage_reorder.dir/llp.cc.o" "gcc" "src/reorder/CMakeFiles/sage_reorder.dir/llp.cc.o.d"
  "/root/repo/src/reorder/permutation.cc" "src/reorder/CMakeFiles/sage_reorder.dir/permutation.cc.o" "gcc" "src/reorder/CMakeFiles/sage_reorder.dir/permutation.cc.o.d"
  "/root/repo/src/reorder/rcm.cc" "src/reorder/CMakeFiles/sage_reorder.dir/rcm.cc.o" "gcc" "src/reorder/CMakeFiles/sage_reorder.dir/rcm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/sage_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
