# Empty dependencies file for sage_reorder.
# This may be replaced when dependencies are built.
