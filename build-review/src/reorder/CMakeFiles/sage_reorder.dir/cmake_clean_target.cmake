file(REMOVE_RECURSE
  "libsage_reorder.a"
)
