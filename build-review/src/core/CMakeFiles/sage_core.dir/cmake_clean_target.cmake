file(REMOVE_RECURSE
  "libsage_core.a"
)
