# Empty dependencies file for sage_core.
# This may be replaced when dependencies are built.
