file(REMOVE_RECURSE
  "CMakeFiles/sage_core.dir/engine.cc.o"
  "CMakeFiles/sage_core.dir/engine.cc.o.d"
  "CMakeFiles/sage_core.dir/expand.cc.o"
  "CMakeFiles/sage_core.dir/expand.cc.o.d"
  "CMakeFiles/sage_core.dir/resident.cc.o"
  "CMakeFiles/sage_core.dir/resident.cc.o.d"
  "CMakeFiles/sage_core.dir/sampling_reorder.cc.o"
  "CMakeFiles/sage_core.dir/sampling_reorder.cc.o.d"
  "CMakeFiles/sage_core.dir/udt.cc.o"
  "CMakeFiles/sage_core.dir/udt.cc.o.d"
  "libsage_core.a"
  "libsage_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
