
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/sage_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/sage_core.dir/engine.cc.o.d"
  "/root/repo/src/core/expand.cc" "src/core/CMakeFiles/sage_core.dir/expand.cc.o" "gcc" "src/core/CMakeFiles/sage_core.dir/expand.cc.o.d"
  "/root/repo/src/core/resident.cc" "src/core/CMakeFiles/sage_core.dir/resident.cc.o" "gcc" "src/core/CMakeFiles/sage_core.dir/resident.cc.o.d"
  "/root/repo/src/core/sampling_reorder.cc" "src/core/CMakeFiles/sage_core.dir/sampling_reorder.cc.o" "gcc" "src/core/CMakeFiles/sage_core.dir/sampling_reorder.cc.o.d"
  "/root/repo/src/core/udt.cc" "src/core/CMakeFiles/sage_core.dir/udt.cc.o" "gcc" "src/core/CMakeFiles/sage_core.dir/udt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/check/CMakeFiles/sage_check.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/sage_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sage_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reorder/CMakeFiles/sage_reorder.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
