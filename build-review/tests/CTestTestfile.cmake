# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/graph_test[1]_include.cmake")
include("/root/repo/build-review/tests/reorder_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
include("/root/repo/build-review/tests/apps_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_options_test[1]_include.cmake")
include("/root/repo/build-review/tests/shapes_test[1]_include.cmake")
include("/root/repo/build-review/tests/check_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-review/tests/api_test[1]_include.cmake")
include("/root/repo/build-review/tests/serve_test[1]_include.cmake")
