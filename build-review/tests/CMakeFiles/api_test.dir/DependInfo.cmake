
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api_test.cc" "tests/CMakeFiles/api_test.dir/api_test.cc.o" "gcc" "tests/CMakeFiles/api_test.dir/api_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/serve/CMakeFiles/sage_serve.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/sage_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/check/CMakeFiles/sage_check_harness.dir/DependInfo.cmake"
  "/root/repo/build-review/src/check/CMakeFiles/sage_check.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/sage_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/sage_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reorder/CMakeFiles/sage_reorder.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sage_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/sage_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
