#!/usr/bin/env bash
# Correctness gate for SAGE: sanitizer build + full test suite + clang-tidy.
#
#   tools/run_checks.sh [build-dir]
#
# Builds Debug with ASan+UBSan and -Werror into build-checks/ (or the given
# directory), runs ctest under the sanitizers, runs the SageVet pre-flight
# over every registered app (sage_cli vet --json, validated JSON), then runs
# clang-tidy over src/ with findings promoted to errors (skipped with a
# notice when the tool is not installed — the container image does not
# always ship it). Every stage is gating: the script fails on the first
# finding.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-checks"}"

echo "== configure (Debug, address+undefined sanitizers, -Werror) =="
cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSAGE_SANITIZE="address;undefined" \
  -DSAGE_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "${build_dir}" -j "$(nproc)"

echo "== ctest under sanitizers =="
# halt_on_error keeps UBSan findings fatal so ctest actually fails on them.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

echo "== TSan build (parallel backend + serving layer) =="
# The parallel execution backend (DESIGN.md §5) and the query service
# (DESIGN.md §6) are the repo's multi-threaded code; build their test
# binaries under ThreadSanitizer and run the thread-pool, serial-vs-
# parallel equivalence (including the sharded L2 replay — parallel_test's
# ShardedReplayManySlicesOddThreads drives the per-slice probe workers
# directly), and concurrent-dispatch suites under it.
# TSan and ASan cannot coexist in one build, hence the separate tree.
tsan_dir="${build_dir}-tsan"
cmake -S "${repo_root}" -B "${tsan_dir}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSAGE_SANITIZE="thread"
cmake --build "${tsan_dir}" -j "$(nproc)" --target parallel_test serve_test guard_serve_test shard_serve_test qos_test cache_test

echo "== parallel/equivalence tests under TSan =="
TSAN_OPTIONS="halt_on_error=1" \
  "${tsan_dir}/tests/parallel_test" \
  --gtest_filter='-*DeathTest*'  # fork-based death tests misfire under TSan

echo "== serving-layer tests under TSan =="
# Exercises Submit/worker/engine-pool interleavings (ServeThreadedTest in
# particular drives three dispatch workers against two engine pools).
TSAN_OPTIONS="halt_on_error=1" \
  "${tsan_dir}/tests/serve_test" \
  --gtest_filter='-*DeathTest*'

echo "== SageGuard tests under TSan =="
# Retry/breaker/bisection state plus the Submit-storm admission test
# (4 submitter threads against a full queue and 2 dispatch workers).
TSAN_OPTIONS="halt_on_error=1" \
  "${tsan_dir}/tests/guard_serve_test" \
  --gtest_filter='-*DeathTest*'

echo "== SageShard serving tests under TSan =="
# Shard-aware placement/routing under 4 dispatch workers, including
# hot-graph replication racing dispatches
# (ShardServeTest.ConcurrentShardedDispatchIsRaceFree).
TSAN_OPTIONS="halt_on_error=1" \
  "${tsan_dir}/tests/shard_serve_test" \
  --gtest_filter='-*DeathTest*'

echo "== SageFlood QoS tests under TSan =="
# The concurrent mixed-class Submit storm: 4 submitter threads racing 2
# dispatch workers through the QosPolicy under the admission mutex, with
# per-class accounting checked after the drain
# (QosServiceTest.ConcurrentMixedClassStormKeepsPerClassAccounting).
TSAN_OPTIONS="halt_on_error=1" \
  "${tsan_dir}/tests/qos_test" \
  --gtest_filter='-*DeathTest*'

echo "== SageCache tests under TSan =="
# Registry eviction racing in-flight dispatches: 2 dispatch workers on one
# graph while over-budget Adds shed its idle warm engines
# (RegistryBudgetTest.EvictionIsSafeUnderInFlightDispatches).
TSAN_OPTIONS="halt_on_error=1" \
  "${tsan_dir}/tests/cache_test" \
  --gtest_filter='-*DeathTest*'

echo "== fault matrix (sage_cli faults, ASan/UBSan build) =="
# Every injectable fault class, serial and under --host-threads=4: the
# guarded run must recover to the fault-free digest (exit 0) with the
# sanitizers watching the recovery paths. Uses the DESIGN.md §7 example
# shapes on a small generated graph.
fault_dir="$(mktemp -d)"
trap 'rm -rf "${fault_dir}"' EXIT
cmake --build "${build_dir}" -j "$(nproc)" --target sage_cli
python3 - "$fault_dir/g.el" <<'EOF'
import random, sys
random.seed(7)
with open(sys.argv[1], "w") as f:
    for _ in range(6000):
        print(random.randrange(1000), random.randrange(1000), file=f)
EOF
declare -A fault_specs=(
  [transient]=$'transient kernel 3\n'
  [transient-rate]=$'seed 9\ntransient rate 1.0 count 2\n'
  [oom]=$'oom grow 2\n'
  [ecc-detected]=$'corrupt iter 2\n'
  [straggler]=$'straggler sm 0 x 16.0\n'
  [ckpt-corrupt]=$'transient kernel 5\ncorrupt-checkpoint iter 4\n'
)
for name in "${!fault_specs[@]}"; do
  printf '%s' "${fault_specs[$name]}" > "${fault_dir}/${name}.txt"
  for threads in 1 4; do
    echo "-- fault class ${name}, host-threads=${threads}"
    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ASAN_OPTIONS="detect_leaks=1" \
      "${build_dir}/tools/sage_cli" faults "${fault_dir}/g.el" bfs \
        "${fault_dir}/${name}.txt" --host-threads="${threads}" > /dev/null
  done
done
echo "fault matrix: all classes recovered to the fault-free digest"

echo "== observability (SageScope exports, ASan/UBSan build) =="
# profile --json, the kernel-timeline trace, the metrics registries, and a
# traced serve replay — every JSON artifact must parse (python3 -m
# json.tool) with the sanitizers watching the export paths. The TSan
# serve_test pass above already hammers concurrent stats()/metrics()
# exports (ServeScopeTest.ConcurrentStatsAndMetricsExportAreClean).
obs_dir="$(mktemp -d)"
trap 'rm -rf "${fault_dir}" "${obs_dir}"' EXIT
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" generate rmat "${obs_dir}/g.sagecsr" 10 16384 \
  > /dev/null
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" profile "${obs_dir}/g.sagecsr" bfs --json \
    --trace-out="${obs_dir}/profile_trace.json" \
    --metrics-out="${obs_dir}/profile_metrics.json" \
  > "${obs_dir}/profile.json"
python3 -m json.tool "${obs_dir}/profile.json" > /dev/null
python3 -m json.tool "${obs_dir}/profile_trace.json" > /dev/null
python3 -m json.tool "${obs_dir}/profile_metrics.json" > /dev/null
cat > "${obs_dir}/requests.txt" <<EOF
graph g ${obs_dir}/g.sagecsr
bfs g 1
bfs g 2
bfs g 3
pagerank g 5
sssp g 1
EOF
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" serve "${obs_dir}/requests.txt" \
    --trace-out="${obs_dir}/serve_trace.json" \
    --metrics-out="${obs_dir}/serve_metrics.json" \
  > /dev/null
python3 -m json.tool "${obs_dir}/serve_trace.json" > /dev/null
python3 -m json.tool "${obs_dir}/serve_metrics.json" > /dev/null
echo "observability: profile/trace/metrics/serve JSON all valid"

echo "== SageFlood load smoke (sage_cli load, ASan/UBSan build) =="
# A 10k-request bursty QoS replay at 2x modeled capacity through the
# virtual-time simulator, with the sanitizers watching the policy and
# report paths; the machine-readable SLO report must parse. bench_load
# (tools/run_bench.sh) owns the million-request gates.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" load 10000 2.0 --json \
  > "${obs_dir}/load.json"
python3 -m json.tool "${obs_dir}/load.json" > /dev/null
echo "SageFlood: 10k-request load smoke clean, SLO report valid JSON"

echo "== perf smoke (tiny graph, parallel vs serial wall clock) =="
# Not a benchmark — the sanitizer build distorts absolute timing — just a
# guard against catastrophic parallel-backend regressions (an accidental
# global lock would show up as a many-x blowup): best-of-3 parallel wall
# must stay within 4x of best-of-3 serial wall on the observability stage's
# tiny graph. tools/run_bench.sh owns the real floors (min_speedup policy
# in BENCH_sim_throughput.json).
python3 - "${build_dir}/tools/sage_cli" "${obs_dir}/g.sagecsr" <<'EOF'
import subprocess, sys, time

cli, graph = sys.argv[1], sys.argv[2]
env = {"UBSAN_OPTIONS": "print_stacktrace=1:halt_on_error=1",
       "ASAN_OPTIONS": "detect_leaks=1"}


def wall(threads):
    best = float("inf")
    for _ in range(3):
        t0 = time.monotonic()
        subprocess.run([cli, "bfs", graph, "0",
                        f"--host-threads={threads}"],
                       check=True, stdout=subprocess.DEVNULL, env=env)
        best = min(best, time.monotonic() - t0)
    return best


serial, parallel = wall(1), wall(4)
ratio = parallel / serial if serial > 0 else 0.0
print(f"perf smoke: serial {serial:.3f}s, parallel(4) {parallel:.3f}s, "
      f"ratio {ratio:.2f}x (tolerance 4.0x)")
if ratio > 4.0:
    sys.exit("perf smoke FAILED: parallel wall > 4x serial "
             "(parallel backend likely serialized or regressed)")
EOF

echo "== SageShard equivalence matrix (ASan/UBSan build) =="
# The sharded-vs-single-device contract: digests bit-identical for every
# (app, shard count, host-thread count) cell, partitioner edge cases, and
# per-device fault injection inside a group — rerun explicitly here so the
# gate is visible even when ctest output is skimmed, with the sanitizers
# watching the exchange paths.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tests/shard_test"
# CLI surface smoke: a sharded BFS through the redesigned device-group API
# must agree with the single-device digest printed by profile runs.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" bfs "${obs_dir}/g.sagecsr" 0 \
    --shards=2 --partitioner=metis > /dev/null
echo "SageShard: sharded digests match single-device across the matrix"

echo "== SageCache out-of-core digest check (ASan/UBSan build) =="
# A --memory-budget small enough to force paging (the observability
# graph's CSR is ~70KB; 30000 bytes leaves most of the adjacency
# host-side) must leave the output digest bit-identical to the in-core
# run, serial and parallel, with the sanitizers watching the paging and
# cache paths.
ooc_ref="$(UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" bfs "${obs_dir}/g.sagecsr" 0 \
  | grep '^output digest')"
[[ -n "${ooc_ref}" ]] || { echo "no in-core digest printed" >&2; exit 1; }
for threads in 1 4; do
  ooc_got="$(UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ASAN_OPTIONS="detect_leaks=1" \
    "${build_dir}/tools/sage_cli" bfs "${obs_dir}/g.sagecsr" 0 \
      --memory-budget=30000 --host-threads="${threads}" \
    | grep '^output digest')"
  if [[ "${ooc_got}" != "${ooc_ref}" ]]; then
    echo "SageCache out-of-core digest diverged (host-threads=${threads}):" \
         "in-core '${ooc_ref}', out-of-core '${ooc_got}'" >&2
    exit 1
  fi
done
echo "SageCache: out-of-core digests bit-identical to in-core (t=1,4)"

echo "== SageVet pre-flight (sage_cli vet, ASan/UBSan build) =="
# Vets every registered app at the deepest level (static checks plus a
# probe traversal under SageCheck kFull). Gating: sage_cli vet exits 3 when
# any program is unsound, and the JSON report must parse. The wall-time is
# recorded so the pre-flight price stays visible in the log.
vet_start="${SECONDS}"
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=1" \
  "${build_dir}/tools/sage_cli" vet --level=probe --json \
  > "${obs_dir}/vet.json"
python3 -m json.tool "${obs_dir}/vet.json" > /dev/null
echo "SageVet: all registered apps sound ($((SECONDS - vet_start))s wall)"

echo "== clang-tidy (gating: findings are errors) =="
# .clang-tidy promotes every enabled check to an error (WarningsAsErrors:
# '*'), so a non-empty finding list fails this script via set -e.
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
    -name '*.cc' | sort)
  clang-tidy -p "${build_dir}" "${sources[@]}"
else
  echo "clang-tidy not installed; skipping lint pass (config: .clang-tidy)"
fi

echo "== all checks passed =="
