#!/usr/bin/env bash
# Simulation-throughput benchmark: builds the release tree and runs
# bench_sim_throughput, which measures the wall-clock speed of the
# simulator itself (edges simulated per second of host time) with the
# serial vs the parallel execution backend (DESIGN.md §5) and emits
# BENCH_sim_throughput.json into the repo root.
#
#   tools/run_bench.sh [build-dir]
#
# The speedup column only exceeds 1 on a multi-core host; on a single
# hardware thread the parallel backend intentionally degenerates to the
# serial path. Either way the run asserts the two modes are bit-identical.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

echo "== configure + build (RelWithDebInfo) =="
cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target bench_sim_throughput

echo "== bench_sim_throughput ($(nproc) hardware threads) =="
cd "${repo_root}"
"${build_dir}/bench/bench_sim_throughput"

echo "== wrote ${repo_root}/BENCH_sim_throughput.json =="
