#!/usr/bin/env bash
# Host-throughput benchmarks: builds the release tree and runs
#  - bench_sim_throughput: wall-clock speed of the simulator itself (edges
#    simulated per second of host time), serial vs parallel execution
#    backend (DESIGN.md §5) -> BENCH_sim_throughput.json
#  - bench_serve: requests/sec of the batching query service vs naive
#    one-engine-per-query dispatch on a 64-source BFS workload
#    (DESIGN.md §6) -> BENCH_serve.json
#  - bench_guard: SageGuard costs (DESIGN.md §7) — checkpoint overhead and
#    fault-free vs 1%-transient-fault serving -> BENCH_guard.json
#  - bench_multigpu: SageShard — sharded-engine BFS across 1/2/4 simulated
#    devices (digests must be bit-identical; the delta-compressed frontier
#    exchange must ship <= 0.5x the dense-bitmap bytes) plus serve-level
#    req/s scaling with placement shards -> BENCH_multigpu.json
#  - bench_load: SageFlood — 1.5M simulated requests through the QoS
#    admission policy (virtual-time, engine-calibrated costs) under
#    uncontended and 2x-overload scenarios; gates interactive goodput,
#    zero interactive sheds, and shed-set bit-identity across
#    --host-threads (DESIGN.md §11) -> BENCH_load.json
# All emit their JSON into the repo root and assert that every measured
# mode produces bit-identical outputs before reporting a number.
#
#   tools/run_bench.sh [build-dir]
#
# bench_sim_throughput sweeps --host-threads over {1,2,4,8} and FAILS
# (exits nonzero, aborting this script under `set -e`) if any swept point
# misses its floor: 1.50x serial (kMinParallelSpeedup) at points the
# hardware can run concurrently (1 < threads <= hardware_concurrency),
# 0.70x (kOversubscribedFloor) at oversubscribed points, where no speedup
# is physically possible and only trace/replay overhead is policed. The
# emitted JSON records hardware_threads and the floor applied per point.
# bench_serve exits nonzero if the service's speedup drops below its 2x
# acceptance floor.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

echo "== configure + build (RelWithDebInfo) =="
cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target bench_sim_throughput bench_serve bench_guard bench_multigpu bench_load bench_cache

echo "== bench_sim_throughput ($(nproc) hardware threads) =="
cd "${repo_root}"
"${build_dir}/bench/bench_sim_throughput"

echo "== bench_serve (batched dispatch vs one-engine-per-query) =="
"${build_dir}/bench/bench_serve"

echo "== bench_guard (checkpoint overhead, serving under faults) =="
"${build_dir}/bench/bench_guard"

echo "== bench_multigpu (sharded engine + serve-level shard scaling) =="
# Exits nonzero when sharded digests diverge from single-device, when the
# delta exchange exceeds 0.5x the dense-bitmap baseline, or when extra
# placement shards lose serve throughput.
"${build_dir}/bench/bench_multigpu"

echo "== bench_load (SageFlood million-request SLO harness) =="
# Exits nonzero when interactive goodput at 2x overload drops below 0.9x
# its uncontended value, when any interactive request is shed while
# best-effort demand exists, or when the shed set is not bit-identical
# across host-thread counts.
"${build_dir}/bench/bench_load"

echo "== bench_cache (SageCache out-of-core + hot-tile cache + eviction) =="
# Exits nonzero when any out-of-core digest diverges from its in-core run
# (every app x strategy x host-thread count), when the zipf warm hit rate
# drops below 0.8, or when the registry eviction scenario fails to admit a
# graph that could not load without the evictor.
"${build_dir}/bench/bench_cache"

echo "== wrote ${repo_root}/BENCH_sim_throughput.json, BENCH_serve.json, BENCH_guard.json, BENCH_multigpu.json, BENCH_load.json and BENCH_cache.json =="
