// sage_cli — command-line front end for the SAGE library.
//
// Subcommands register declaratively in kSubcommands below; run
// `sage_cli --help` for the generated overview or `sage_cli <cmd> --help`
// for one command's usage. Flags are shared across subcommands and
// accepted anywhere on the command line.
//
// <graph> arguments are either a binary .sagecsr file (from
// generate/convert) or a whitespace edge-list text file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "apps/bfs.h"
#include "apps/kcore.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "apps/registry.h"
#include "apps/sssp.h"
#include "check/access_checker.h"
#include "check/determinism.h"
#include "check/vet.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "core/guard.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/partitioner.h"
#include "reorder/permutation.h"
#include "reorder/reorderers.h"
#include "serve/graph_registry.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "sim/fault_injector.h"
#include "sim/gpu_device.h"
#include "sim/profile.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace sage;

// ---------------------------------------------------------------------------
// Shared flags (accepted anywhere on the command line).

/// Checker severity requested via --check; kOff when the flag is absent.
sim::CheckLevel g_check_level = sim::CheckLevel::kOff;
/// Host threads requested via --host-threads; 0 = hardware concurrency.
uint32_t g_host_threads = 0;
/// --help anywhere: print the matched subcommand's usage (or the overview).
bool g_help = false;
/// serve: warm engines per graph (--engines).
uint32_t g_serve_engines = 2;
/// serve: dispatch workers (--serve-threads; 0 = synchronous drain).
uint32_t g_serve_threads = 2;
/// serve: admission-queue capacity (--queue).
size_t g_serve_queue = 1024;
/// serve: disable request coalescing (--no-batch).
bool g_serve_batching = true;
/// SageFlood: admission class for submitted requests (--priority).
serve::Priority g_serve_priority = serve::Priority::kInteractive;
/// SageFlood: tenant id for per-tenant quota accounting (--tenant).
std::string g_serve_tenant = "default";
/// SageScope: machine-readable profile output (--json).
bool g_json = false;
/// SageScope: Chrome-trace JSON destination (--trace-out; "" = off).
std::string g_trace_out;
/// SageScope: metrics-registry JSON destination (--metrics-out; "" = off).
std::string g_metrics_out;
/// SageVet: analysis depth requested via --level (vet subcommand).
std::string g_vet_level = "probe";
/// SageShard: simulated devices for bfs/pagerank/msbfs and placement
/// shards for serve (--shards; 1 = single-device engine path).
uint32_t g_shards = 1;
/// SageShard: how the CSR splits across devices (--partitioner).
graph::PartitionerKind g_partitioner = graph::PartitionerKind::kHash;
/// SageShard: inter-device synchronization model (--multi-gpu-strategy).
core::MultiGpuStrategy g_mg_strategy = core::MultiGpuStrategy::kSage;
/// SageCache: resident-memory budget in bytes (--memory-budget; 0 = off).
/// Engines page adjacency out-of-core through the hot-tile cache when the
/// CSR exceeds it; serve additionally uses it as the registry-wide budget
/// under which cold warm-engine pools are evicted.
uint64_t g_memory_budget = 0;

bool ParseU32(const std::string& value, uint32_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint32_t>(parsed);
  return true;
}

bool ParseU64(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

/// One shared flag: `--name` or `--name=value`, usable with any
/// subcommand. parse receives the text after '=' ("" when absent) and
/// returns false on a malformed value.
struct FlagDef {
  const char* name;
  const char* value_help;  // "" or e.g. "=N"
  const char* help;
  bool (*parse)(const std::string& value);
};

const FlagDef kFlags[] = {
    {"check", "[=bounds|full]",
     "run under SageCheck (bare --check means full); prints the violation\n"
     "                     report and exits 3 if the run was not clean",
     [](const std::string& v) {
       if (v.empty() || v == "full") {
         g_check_level = sim::CheckLevel::kFull;
       } else if (v == "bounds") {
         g_check_level = sim::CheckLevel::kBounds;
       } else {
         return false;
       }
       return true;
     }},
    {"host-threads", "=N",
     "host threads for the parallel execution backend (0 = hardware\n"
     "                     concurrency, 1 = serial; results are bit-identical "
     "either way)",
     [](const std::string& v) { return ParseU32(v, &g_host_threads); }},
    {"help", "", "print usage for the given subcommand (or this overview)",
     [](const std::string& v) {
       g_help = true;
       return v.empty();
     }},
    {"engines", "=N", "serve: warm engines kept per graph (default 2)",
     [](const std::string& v) { return ParseU32(v, &g_serve_engines); }},
    {"serve-threads", "=N",
     "serve: dispatch workers (default 2; 0 = synchronous)",
     [](const std::string& v) { return ParseU32(v, &g_serve_threads); }},
    {"queue", "=N", "serve: admission queue capacity (default 1024)",
     [](const std::string& v) {
       uint32_t q = 0;
       if (!ParseU32(v, &q)) return false;
       g_serve_queue = q;
       return true;
     }},
    {"no-batch", "", "serve: disable request coalescing",
     [](const std::string& v) {
       g_serve_batching = false;
       return v.empty();
     }},
    {"priority", "=interactive|batch|besteffort",
     "serve: QoS admission class for submitted requests (default "
     "interactive)",
     [](const std::string& v) {
       return serve::ParsePriority(v, &g_serve_priority);
     }},
    {"tenant", "=ID",
     "serve: tenant id for per-tenant quota accounting (default "
     "\"default\")",
     [](const std::string& v) {
       g_serve_tenant = v;
       return !v.empty();
     }},
    {"json", "", "profile: print the device profile as structured JSON",
     [](const std::string& v) {
       g_json = true;
       return v.empty();
     }},
    {"trace-out", "=PATH",
     "write a Chrome-trace JSON of the run (load in chrome://tracing;\n"
     "                     profile: kernel timeline, serve: spans + "
     "dispatches + kernels)",
     [](const std::string& v) {
       g_trace_out = v;
       return !v.empty();
     }},
    {"metrics-out", "=PATH",
     "write the SageScope metrics registry as JSON (profile, serve)",
     [](const std::string& v) {
       g_metrics_out = v;
       return !v.empty();
     }},
    {"level", "=off|static|probe",
     "vet: analysis depth (default probe — static checks plus a traversal\n"
     "                     of the canonical probe graph under SageCheck)",
     [](const std::string& v) {
       g_vet_level = v;
       return !v.empty();
     }},
    {"shards", "=K",
     "run bfs/pagerank/msbfs across K simulated devices (ShardedEngine);\n"
     "                     serve: placement shards for the graph registry",
     [](const std::string& v) { return ParseU32(v, &g_shards); }},
    {"memory-budget", "=BYTES",
     "SageCache: cap resident graph memory (0 = unlimited). Engines page\n"
     "                     adjacency out-of-core through the hot-tile cache "
     "when the CSR\n"
     "                     exceeds the budget; serve: shared registry budget "
     "— over-budget\n"
     "                     loads evict cold warm-engine pools before failing",
     [](const std::string& v) { return ParseU64(v, &g_memory_budget); }},
    {"partitioner", "=hash|range|metis",
     "sharded runs: how the CSR splits across devices (default hash;\n"
     "                     legacy spelling metis-like accepted)",
     [](const std::string& v) {
       return graph::ParsePartitionerKind(v, &g_partitioner);
     }},
    {"multi-gpu-strategy", "=sage|gunrock|groute",
     "sharded runs: inter-device sync model (default sage; legacy\n"
     "                     spellings gunrock-like/groute-like accepted)",
     [](const std::string& v) {
       return core::ParseMultiGpuStrategy(v, &g_mg_strategy);
     }},
};

/// Writes `content` to `path`; reports on stderr and returns false on
/// failure.
bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

// ---------------------------------------------------------------------------
// Subcommand registry.

/// A declaratively registered subcommand: `run` receives the positional
/// arguments after the subcommand name (shared flags already stripped).
struct Subcommand {
  const char* name;
  const char* args_help;
  const char* summary;
  size_t min_args;
  int (*run)(const std::vector<std::string>& args);
};

const Subcommand* FindSubcommand(const std::string& name);

int Usage() {
  extern const Subcommand kSubcommands[];
  extern const size_t kNumSubcommands;
  std::fprintf(stderr, "usage: sage_cli <subcommand> [flags] [args...]\n\n");
  std::fprintf(stderr, "subcommands:\n");
  for (size_t i = 0; i < kNumSubcommands; ++i) {
    const Subcommand& cmd = kSubcommands[i];
    std::string head = std::string(cmd.name) + " " + cmd.args_help;
    std::fprintf(stderr, "  %-38s %s\n", head.c_str(), cmd.summary);
  }
  std::fprintf(stderr, "\nflags (accepted anywhere):\n");
  for (const FlagDef& flag : kFlags) {
    std::string head = "--" + std::string(flag.name) + flag.value_help;
    std::fprintf(stderr, "  %-19s %s\n", head.c_str(), flag.help);
  }
  return 2;
}

int SubcommandUsage(const Subcommand& cmd) {
  std::fprintf(stderr, "usage: sage_cli %s %s\n  %s\n", cmd.name,
               cmd.args_help, cmd.summary);
  return 2;
}

core::EngineOptions BaseOptions() {
  core::EngineOptions options;
  options.check_level = g_check_level;
  options.host_threads = g_host_threads;
  options.memory_budget_bytes = g_memory_budget;
  return options;
}

/// Prints the SageCheck report for a finished run and folds any violations
/// into the exit code (3 = run completed but the checker found bugs).
int FinishChecked(const core::Engine& engine, int rc) {
  const check::AccessChecker* checker = engine.checker();
  if (checker == nullptr) return rc;
  std::printf("%s", checker->Report().c_str());
  if (rc == 0 && !checker->clean()) return 3;
  return rc;
}

core::ShardOptions ShardedOptions() {
  core::ShardOptions options;
  options.num_shards = g_shards;
  options.strategy = g_mg_strategy;
  options.partitioner = g_partitioner;
  options.host_threads = g_host_threads;
  options.engine_options = BaseOptions();
  return options;
}

/// Runs `app` across --shards simulated devices and prints the sharded
/// stats (comm time, delta-compressed frontier bytes vs the dense
/// baseline). Returns the process exit code.
int RunSharded(const graph::Csr& csr, const std::string& app,
               const apps::AppParams& params) {
  auto engine = core::ShardedEngine::Create(csr, ShardedOptions());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto result = (*engine)->Run(app, params);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%u devices (%s, %s partitioning): %.3f GTEPS over %u iterations\n",
      g_shards, core::MultiGpuStrategyName(g_mg_strategy),
      graph::PartitionerKindName(g_partitioner),
      result->stats.edges_traversed /
          ((result->stats.seconds + result->comm_seconds) * 1e9),
      result->stats.iterations);
  std::printf("edge cut %llu; comm %.3f ms; frontier %llu B delta "
              "(%llu B on the wire, %llu B dense); digest %016llx\n",
              static_cast<unsigned long long>(result->edge_cut),
              result->comm_seconds * 1e3,
              static_cast<unsigned long long>(result->frontier_payload_bytes),
              static_cast<unsigned long long>(result->frontier_wire_bytes),
              static_cast<unsigned long long>(result->frontier_dense_bytes),
              static_cast<unsigned long long>((*engine)->OutputDigest()));
  return 0;
}

util::StatusOr<graph::Csr> LoadGraph(const std::string& path) {
  auto bin = graph::LoadCsrBinary(path);
  if (bin.ok()) return bin;
  auto coo = graph::LoadEdgeListText(path);
  if (!coo.ok()) return coo.status();
  return graph::Csr::FromCoo(*coo);
}

/// Synthesizes a graph from a generator kind + its numeric arguments
/// (shared by `generate` and the serve request file's `gen` directive).
util::StatusOr<graph::Csr> SynthesizeGraph(
    const std::string& kind, const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return util::Status::InvalidArgument(
        "generator '" + kind + "' needs two numeric arguments");
  }
  if (kind == "rmat") {
    return graph::GenerateRmat(std::stoul(args[0]), std::stoull(args[1]),
                               0.57, 0.19, 0.19, 1);
  }
  if (kind == "uniform") {
    return graph::GenerateUniform(std::stoul(args[0]), std::stoull(args[1]),
                                  1);
  }
  if (kind == "web") {
    return graph::GenerateWebCopy(std::stoul(args[0]), std::stoul(args[1]),
                                  0.75, 1);
  }
  if (kind == "community") {
    return graph::GenerateCommunity(std::stoul(args[0]), std::stoul(args[1]),
                                    std::stoul(args[0]) / 16 + 1, 0.8, 1);
  }
  return util::Status::InvalidArgument("unknown generator kind: " + kind);
}

// ---------------------------------------------------------------------------
// Handlers.

int CmdGenerate(const std::vector<std::string>& args) {
  std::vector<std::string> rest(args.begin() + 2, args.end());
  auto csr = SynthesizeGraph(args[0], rest);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 2;
  }
  auto status = graph::SaveCsrBinary(*csr, args[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges\n", args[1].c_str(),
              csr->num_nodes(),
              static_cast<unsigned long long>(csr->num_edges()));
  return 0;
}

int CmdConvert(const std::vector<std::string>& args) {
  auto coo = graph::LoadEdgeListText(args[0]);
  if (!coo.ok()) {
    std::fprintf(stderr, "%s\n", coo.status().ToString().c_str());
    return 1;
  }
  graph::Csr csr = graph::Csr::FromCoo(*coo);
  auto status = graph::SaveCsrBinary(csr, args[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges\n", args[1].c_str(),
              csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));
  return 0;
}

int CmdStats(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  auto stats = graph::ComputeStats(*csr);
  std::printf("nodes        : %llu\n",
              static_cast<unsigned long long>(stats.num_nodes));
  std::printf("edges        : %llu\n",
              static_cast<unsigned long long>(stats.num_edges));
  std::printf("avg degree   : %.2f\n", stats.avg_degree);
  std::printf("max degree   : %u\n", stats.max_degree);
  std::printf("degree gini  : %.3f\n", stats.degree_gini);
  std::printf("CSR bytes    : %llu\n",
              static_cast<unsigned long long>(csr->MemoryBytes()));
  return 0;
}

int CmdBfs(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  auto source = static_cast<graph::NodeId>(std::stoul(args[1]));
  if (g_shards > 1) {
    apps::AppParams params;
    params.sources = {source};
    return RunSharded(*csr, "bfs", params);
  }
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, *csr, BaseOptions());
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, source);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  uint64_t reached = 0;
  for (graph::NodeId v = 0; v < csr->num_nodes(); ++v) {
    if (bfs.DistanceOf(v) != apps::BfsProgram::kUnreached) ++reached;
  }
  std::printf("reached %llu nodes in %u iterations; %.3f GTEPS\n",
              static_cast<unsigned long long>(reached), stats->iterations,
              stats->GTeps());
  // The bit-identity fingerprint scripts compare across --host-threads /
  // --memory-budget runs (tools/run_checks.sh's out-of-core stage).
  std::printf("output digest %016llx\n",
              static_cast<unsigned long long>(apps::OutputDigest(engine, bfs)));
  std::printf("%s", sim::FormatDeviceProfile(device).c_str());
  return FinishChecked(engine, 0);
}

int CmdPageRank(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  uint32_t iterations = std::stoul(args[1]);
  if (g_shards > 1) {
    apps::AppParams params;
    params.iterations = iterations;
    return RunSharded(*csr, "pagerank", params);
  }
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, *csr, BaseOptions());
  apps::PageRankProgram pr;
  auto stats = apps::RunPageRank(engine, pr, iterations);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  double top = 0;
  graph::NodeId who = 0;
  for (graph::NodeId v = 0; v < csr->num_nodes(); ++v) {
    if (pr.RankOf(v) > top) {
      top = pr.RankOf(v);
      who = v;
    }
  }
  std::printf("%u iterations, %.3f GTEPS; top node %u (rank %.6f)\n",
              iterations, stats->GTeps(), who, top);
  std::printf("%s", sim::FormatDeviceProfile(device).c_str());
  return FinishChecked(engine, 0);
}

int CmdKcore(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  uint32_t k = std::stoul(args[1]);
  sim::GpuDevice device{sim::DeviceSpec()};
  // Peeling needs the symmetrized graph.
  graph::Coo coo = csr->ToCoo();
  graph::Symmetrize(coo);
  graph::RemoveSelfLoops(coo);
  graph::SortCoo(coo);
  graph::DedupSortedCoo(coo);
  core::Engine engine(&device, graph::Csr::FromCoo(coo), BaseOptions());
  apps::KCoreProgram kcore;
  auto stats = apps::RunKCore(engine, kcore, k);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  uint64_t in_core = 0;
  for (graph::NodeId v = 0; v < csr->num_nodes(); ++v) {
    if (kcore.InCore(v)) ++in_core;
  }
  std::printf("%llu of %u nodes are in the %u-core\n",
              static_cast<unsigned long long>(in_core), csr->num_nodes(), k);
  return FinishChecked(engine, 0);
}

int CmdSssp(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  auto source = static_cast<graph::NodeId>(std::stoul(args[1]));
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, *csr, BaseOptions());
  apps::SsspProgram sssp;
  auto stats = apps::RunSssp(engine, sssp, source);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  uint64_t reached = 0;
  uint64_t max_dist = 0;
  for (graph::NodeId v = 0; v < csr->num_nodes(); ++v) {
    uint64_t d = sssp.DistanceOf(v);
    if (d != apps::SsspProgram::kInfinity) {
      ++reached;
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf("reached %llu nodes; max weighted distance %llu; %.3f GTEPS\n",
              static_cast<unsigned long long>(reached),
              static_cast<unsigned long long>(max_dist), stats->GTeps());
  return FinishChecked(engine, 0);
}

int CmdMsBfs(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  uint32_t k = std::stoul(args[1]);
  if (k == 0 || k > apps::MultiSourceBfsProgram::kMaxSources) {
    std::fprintf(stderr, "k must be in [1, 64]\n");
    return 1;
  }
  std::vector<graph::NodeId> sources;
  for (graph::NodeId v = 0; v < csr->num_nodes() && sources.size() < k; ++v) {
    if (csr->OutDegree(v) > 0) sources.push_back(v);
  }
  if (g_shards > 1) {
    apps::AppParams params;
    params.sources = sources;
    return RunSharded(*csr, "msbfs", params);
  }
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, *csr, BaseOptions());
  apps::MultiSourceBfsProgram msbfs;
  auto stats = apps::RunMultiSourceBfs(engine, msbfs, sources);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  for (uint32_t i = 0; i < sources.size(); ++i) {
    std::printf("instance %2u (source %u): reached %llu nodes\n", i,
                sources[i],
                static_cast<unsigned long long>(msbfs.ReachedCount(i)));
  }
  std::printf("%zu concurrent BFS in one traversal: %.3f GTEPS\n",
              sources.size(), stats->GTeps());
  return FinishChecked(engine, 0);
}

int CmdReorder(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  const std::string& method = args[1];
  reorder::ReorderResult result;
  if (method == "rcm") {
    result = reorder::RcmOrder(*csr);
  } else if (method == "llp") {
    result = reorder::LlpOrder(*csr);
  } else if (method == "gorder") {
    result = reorder::GorderOrder(*csr);
  } else if (method == "random") {
    result = reorder::RandomOrder(*csr, 1);
  } else {
    std::fprintf(stderr, "unknown reorder method: %s\n", method.c_str());
    return 2;
  }
  graph::Csr relabeled = reorder::ApplyToCsr(*csr, result.new_of_old);
  auto status = graph::SaveCsrBinary(relabeled, args[2]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s reordering took %.3f s; wrote %s\n", method.c_str(),
              result.seconds, args[2].c_str());
  return 0;
}

int CmdPartition(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  uint32_t parts = std::stoul(args[1]);
  auto partitioner = graph::MakePartitioner(g_partitioner);
  auto result = partitioner->Partition(*csr, parts);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%u-way %s partition: edge cut %llu (%.2f%% of edges), "
              "balance %.3f, %.3f s\n",
              parts, partitioner->name(),
              static_cast<unsigned long long>(result->edge_cut),
              csr->num_edges() > 0
                  ? 100.0 * static_cast<double>(result->edge_cut) /
                        static_cast<double>(csr->num_edges())
                  : 0.0,
              result->balance, result->seconds);
  return 0;
}

int CmdDeterminism(const std::vector<std::string>& args) {
  auto loaded = LoadGraph(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Csr& csr = *loaded;
  graph::NodeId source = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (csr.OutDegree(v) > 0) {
      source = v;
      break;
    }
  }
  check::DeterminismOptions options;  // all three strategies
  check::DeterminismReport report = check::RunBfsDeterminism(
      csr, sim::DeviceSpec(), source, BaseOptions(), options);
  std::printf("%s", report.details.c_str());
  if (!report.deterministic) {
    std::fprintf(stderr, "determinism harness FAILED: traversal output or "
                         "sector accounting depends on the schedule\n");
    return 3;
  }
  std::printf("deterministic: output invariant under SM permutation and "
              "dispatch shuffling on all strategies\n");

  check::EquivalenceOptions eq;  // all strategies, threads {2, 7, auto}
  check::EquivalenceReport eq_report = check::RunBfsEquivalence(
      csr, sim::DeviceSpec(), source, BaseOptions(), eq);
  std::printf("%s", eq_report.details.c_str());
  if (!eq_report.equivalent) {
    std::fprintf(stderr, "equivalence harness FAILED: parallel execution "
                         "diverged from the serial charge sequence\n");
    return 3;
  }
  std::printf("equivalent: parallel execution is bit-identical to serial "
              "on all strategies\n");
  return 0;
}

/// Builds AppParams for `app`: the first non-isolated node as the default
/// source, overridden by `arg` when present (source for traversals,
/// iterations for pagerank, k for kcore).
apps::AppParams MakeAppParams(const graph::Csr& csr, const std::string& app,
                              const std::string* arg) {
  apps::AppParams params;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (csr.OutDegree(v) > 0) {
      params.sources = {v};
      break;
    }
  }
  if (arg != nullptr) {
    uint32_t value = std::stoul(*arg);
    if (app == "pagerank") {
      params.iterations = value;
    } else if (app == "kcore") {
      params.k = value;
    } else {
      params.sources = {static_cast<graph::NodeId>(value)};
    }
  }
  if (app == "pagerank" || app == "kcore") params.sources.clear();
  return params;
}

// ---------------------------------------------------------------------------
// profile: run one app and report the device profile (SageScope).

/// `profile <graph> <app> [arg]` — one engine run, with the device kernel
/// timeline enabled when --trace-out is set. Prints FormatDeviceProfile
/// (or its structured-JSON twin under --json); --trace-out writes the
/// modeled kernel timeline as Chrome-trace JSON, --metrics-out the device
/// and engine metric registries as one JSON object.
int CmdProfile(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  const std::string& app = args[1];
  if (!apps::AppKnown(app)) {
    std::fprintf(stderr, "unknown app: %s\n", app.c_str());
    return 2;
  }
  apps::AppParams params =
      MakeAppParams(*csr, app, args.size() > 2 ? &args[2] : nullptr);
  sim::GpuDevice device{sim::DeviceSpec()};
  if (!g_trace_out.empty()) device.set_timeline_enabled(true);
  core::Engine engine(&device, *csr, BaseOptions());
  auto program = apps::CreateProgram(app);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 2;
  }
  auto stats = apps::RunApp(engine, **program, params);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  if (g_json) {
    std::printf("%s\n", sim::FormatDeviceProfileJson(device).c_str());
  } else {
    std::printf("%u iterations, %.3f GTEPS, digest %016llx\n",
                stats->iterations, stats->GTeps(),
                static_cast<unsigned long long>(
                    apps::OutputDigest(engine, **program)));
    std::printf("%s", sim::FormatDeviceProfile(device).c_str());
  }
  int rc = 0;
  if (!g_metrics_out.empty()) {
    util::MetricsRegistry device_metrics;
    sim::ExportDeviceMetrics(device, &device_metrics);
    std::string json = "{\"device\":" + device_metrics.ToJson() +
                       ",\"engine\":" + engine.metrics().ToJson() + "}";
    if (!WriteTextFile(g_metrics_out, json)) rc = 1;
  }
  if (!g_trace_out.empty()) {
    util::TraceLog trace;
    sim::AppendKernelTrace(device, app + "@" + args[0], 0, &trace);
    if (!WriteTextFile(g_trace_out, trace.ToJson())) rc = 1;
  }
  return FinishChecked(engine, rc);
}

// ---------------------------------------------------------------------------
// faults: replay a deterministic fault scenario against one app run.

/// `faults <graph> <app> <spec.txt> [arg]` — runs the app twice: once
/// fault-free for a reference digest, once under the parsed fault scenario
/// with SageGuard recovery (checkpoints every 2 iterations, resume-on-retry,
/// up to 5 attempts). Prints the fault trace and compares digests; silent
/// corruption shows up as a MISMATCH and exit code 3. Honors
/// --host-threads — the trace and digest are bit-identical either way.
int CmdFaults(const std::vector<std::string>& args) {
  auto csr = LoadGraph(args[0]);
  if (!csr.ok()) {
    std::fprintf(stderr, "%s\n", csr.status().ToString().c_str());
    return 1;
  }
  const std::string& app = args[1];
  if (!apps::AppKnown(app)) {
    std::fprintf(stderr, "unknown app: %s\n", app.c_str());
    return 2;
  }
  std::ifstream file(args[2]);
  if (!file) {
    std::fprintf(stderr, "cannot open fault spec %s\n", args[2].c_str());
    return 1;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  auto spec = sim::ParseFaultSpec(buf.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }

  apps::AppParams params =
      MakeAppParams(*csr, app, args.size() > 3 ? &args[3] : nullptr);

  // Reference run: same app, same engine options, no injector.
  uint64_t reference = 0;
  double ref_seconds = 0.0;
  {
    sim::GpuDevice device{sim::DeviceSpec()};
    core::Engine engine(&device, *csr, BaseOptions());
    auto program = apps::CreateProgram(app);
    auto stats = apps::RunApp(engine, **program, params);
    if (!stats.ok()) {
      std::fprintf(stderr, "fault-free run failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    reference = apps::OutputDigest(engine, **program);
    ref_seconds = stats->seconds;
  }

  // Guarded run under the scenario, recovering the way the serve layer
  // does: retry retryable faults, resuming from the last good checkpoint,
  // falling back to a full rerun when the checkpoint itself is corrupt.
  sim::GpuDevice device{sim::DeviceSpec()};
  sim::FaultInjector injector(*spec);
  device.set_fault_injector(&injector);
  core::Engine engine(&device, *csr, BaseOptions());
  auto program = apps::CreateProgram(app);
  core::MemoryCheckpointSink sink;
  core::RunGuard guard;
  guard.checkpoint_sink = &sink;
  guard.checkpoint_interval = 2;
  engine.set_run_guard(guard);

  constexpr uint32_t kMaxAttempts = 5;
  uint32_t attempts = 1;
  uint32_t resumes = 0;
  uint32_t fallbacks = 0;
  auto stats = apps::RunApp(engine, **program, params);
  while (!stats.ok() &&
         stats.status().code() == util::StatusCode::kUnavailable &&
         attempts < kMaxAttempts) {
    ++attempts;
    if (sink.has()) {
      auto resumed = apps::ResumeApp(engine, **program, sink.latest(), params);
      if (!resumed.ok() &&
          resumed.status().code() == util::StatusCode::kCorruption) {
        sink.Clear();
        ++fallbacks;
        stats = apps::RunApp(engine, **program, params);
      } else {
        ++resumes;
        stats = std::move(resumed);
      }
    } else {
      stats = apps::RunApp(engine, **program, params);
    }
  }

  std::printf("fault trace (%zu events):\n", injector.events().size());
  if (injector.events().empty()) {
    std::printf("  (no faults fired)\n");
  } else {
    for (const sim::FaultEvent& ev : injector.events()) {
      std::printf("  %s\n", ev.ToString().c_str());
    }
  }
  std::printf("attempts=%u resumes=%u checkpoint-fallbacks=%u "
              "checkpoints-saved=%llu\n",
              attempts, resumes, fallbacks,
              static_cast<unsigned long long>(sink.saves()));
  if (!stats.ok()) {
    std::printf("run FAILED after %u attempts: %s\n", attempts,
                stats.status().ToString().c_str());
    return 1;
  }
  uint64_t digest = apps::OutputDigest(engine, **program);
  std::printf("modeled seconds: fault-free %.6f, faulted %.6f\n", ref_seconds,
              stats->seconds);
  std::printf("digest: fault-free %016llx, faulted %016llx -> %s\n",
              static_cast<unsigned long long>(reference),
              static_cast<unsigned long long>(digest),
              digest == reference ? "MATCH" : "MISMATCH (corrupted output)");
  return digest == reference ? 0 : 3;
}

// ---------------------------------------------------------------------------
// vet: SageVet pre-flight analysis of registered programs.

/// `vet [app...]` — vets every registered app (or just the named ones) at
/// --level (default probe) and prints one report per app: human-readable
/// text, or a JSON array of report objects under --json. Exit codes:
/// 0 = every program clean or warnings only, 2 = bad arguments,
/// 3 = at least one program is unsound.
int CmdVet(const std::vector<std::string>& args) {
  auto level = check::ParseVetLevel(g_vet_level);
  if (!level.ok()) {
    std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
    return 2;
  }
  const std::vector<std::string> names =
      args.empty() ? apps::RegisteredApps() : args;
  int rc = 0;
  std::string json = "[";
  bool first = true;
  for (const std::string& name : names) {
    auto report = apps::VetApp(name, *level, BaseOptions());
    if (!report.ok()) {
      std::fprintf(stderr, "vet %s: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 2;
    }
    if (g_json) {
      if (!first) json += ",";
      json += report->ToJson();
      first = false;
    } else {
      std::printf("%s", report->ToText().c_str());
    }
    if (report->unsound()) rc = 3;
  }
  if (g_json) {
    json += "]";
    std::printf("%s\n", json.c_str());
  }
  return rc;
}

// ---------------------------------------------------------------------------
// serve: replay a request file through the query service.

/// Parses one request-file line (see CmdServe's usage text) into either a
/// graph registration or a request; blank lines and '#' comments skipped.
int CmdServe(const std::vector<std::string>& args) {
  std::ifstream file(args[0]);
  if (!file) {
    std::fprintf(stderr, "cannot open request file %s\n", args[0].c_str());
    return 1;
  }

  serve::GraphRegistry registry(g_shards);
  registry.set_memory_budget_bytes(g_memory_budget);
  std::vector<serve::Request> requests;
  std::string line;
  size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    std::istringstream in(line);
    std::string verb;
    if (!(in >> verb) || verb[0] == '#') continue;
    std::vector<std::string> words;
    for (std::string w; in >> w;) words.push_back(w);
    auto fail = [&](const std::string& why) {
      std::fprintf(stderr, "%s:%zu: %s\n", args[0].c_str(), lineno,
                   why.c_str());
      return 1;
    };
    if (verb == "graph") {
      if (words.size() != 2) return fail("graph <name> <path>");
      auto csr = LoadGraph(words[1]);
      if (!csr.ok()) return fail(csr.status().ToString());
      auto status = registry.Add(words[0], std::move(*csr));
      if (!status.ok()) return fail(status.ToString());
    } else if (verb == "gen") {
      if (words.size() < 2) return fail("gen <name> <kind> <args...>");
      std::vector<std::string> rest(words.begin() + 2, words.end());
      auto csr = SynthesizeGraph(words[1], rest);
      if (!csr.ok()) return fail(csr.status().ToString());
      auto status = registry.Add(words[0], std::move(*csr));
      if (!status.ok()) return fail(status.ToString());
    } else if (verb == "bfs" || verb == "sssp") {
      if (words.size() != 2) return fail(verb + " <graph> <source>");
      serve::Request r;
      r.graph = words[0];
      r.app = verb;
      r.params.sources = {static_cast<graph::NodeId>(std::stoul(words[1]))};
      requests.push_back(std::move(r));
    } else if (verb == "pagerank") {
      if (words.size() != 2) return fail("pagerank <graph> <iterations>");
      serve::Request r;
      r.graph = words[0];
      r.app = verb;
      r.params.iterations = std::stoul(words[1]);
      requests.push_back(std::move(r));
    } else if (verb == "kcore") {
      if (words.size() != 2) return fail("kcore <graph> <k>");
      serve::Request r;
      r.graph = words[0];
      r.app = verb;
      r.params.k = std::stoul(words[1]);
      requests.push_back(std::move(r));
    } else if (verb == "msbfs") {
      if (words.size() < 2) return fail("msbfs <graph> <s1> [s2...]");
      serve::Request r;
      r.graph = words[0];
      r.app = verb;
      for (size_t i = 1; i < words.size(); ++i) {
        r.params.sources.push_back(
            static_cast<graph::NodeId>(std::stoul(words[i])));
      }
      requests.push_back(std::move(r));
    } else {
      return fail("unknown directive '" + verb + "'");
    }
  }
  if (registry.size() == 0 || requests.empty()) {
    std::fprintf(stderr, "request file needs at least one graph/gen line "
                         "and one request\n");
    return 1;
  }

  for (serve::Request& request : requests) {
    request.priority = g_serve_priority;
    request.tenant = g_serve_tenant;
  }

  serve::ServeOptions options;
  options.engines_per_graph = g_serve_engines;
  options.worker_threads = g_serve_threads;
  options.max_pending = std::max<size_t>(g_serve_queue, requests.size());
  options.batching = g_serve_batching;
  options.engine_options.host_threads = 1;
  options.engine_options.memory_budget_bytes = g_memory_budget;
  util::TraceLog trace_log;
  if (!g_trace_out.empty()) options.trace = &trace_log;
  serve::QueryService service(&registry, options);
  // With a budget set, the service sheds cold warm-engine pools when the
  // registry needs room (graphs registered above already fit or failed
  // loudly — the evictor covers loads made while the service is live).
  if (g_memory_budget > 0) registry.set_evictor(&service);

  util::WallTimer timer;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests.size());
  for (const serve::Request& request : requests) {
    auto submitted = service.Submit(request);
    if (!submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.status().ToString().c_str());
      return 1;
    }
    futures.push_back(std::move(*submitted));
  }
  if (options.worker_threads == 0) service.ProcessAllPending();

  int rc = 0;
  std::printf("%-4s %-10s %-9s %5s %12s %18s\n", "#", "app", "graph",
              "batch", "modeled-s", "digest");
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::Response response = futures[i].get();
    if (!response.status.ok()) {
      std::printf("%-4zu request failed: %s\n", i,
                  response.status.ToString().c_str());
      rc = 1;
      continue;
    }
    std::printf("%-4zu %-10s %-9s %5u %12.6f %18llx\n", i,
                requests[i].app.c_str(), requests[i].graph.c_str(),
                response.batch_size, response.stats.seconds,
                static_cast<unsigned long long>(response.output_digest));
  }
  double wall = timer.Seconds();
  serve::ServiceStats stats = service.stats();
  std::printf("\n%zu requests in %.3f s host wall (%.1f req/s): "
              "%llu dispatches, %llu coalesced, %llu warm engines\n",
              futures.size(), wall,
              wall > 0 ? static_cast<double>(futures.size()) / wall : 0.0,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.engines_created));
  if (stats.latency_samples > 0) {
    std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  (%llu samples)\n",
                stats.latency_p50_ms, stats.latency_p95_ms,
                stats.latency_p99_ms,
                static_cast<unsigned long long>(stats.latency_samples));
  }
  service.Shutdown();
  if (!g_metrics_out.empty() &&
      !WriteTextFile(g_metrics_out, service.metrics().ToJson())) {
    rc = 1;
  }
  if (!g_trace_out.empty() &&
      !WriteTextFile(g_trace_out, trace_log.ToJson())) {
    rc = 1;
  }
  return rc;
}

// ---------------------------------------------------------------------------
// load: SageFlood virtual-time QoS load simulation.

int CmdLoad(const std::vector<std::string>& args) {
  serve::LoadOptions options;
  options.overload = 2.0;
  if (!args.empty()) {
    uint32_t requests = 0;
    if (!ParseU32(args[0], &requests) || requests == 0) {
      std::fprintf(stderr, "bad request count '%s'\n", args[0].c_str());
      return 1;
    }
    options.requests = requests;
  }
  if (args.size() > 1) {
    char* end = nullptr;
    double overload = std::strtod(args[1].c_str(), &end);
    if (end == nullptr || *end != '\0' || overload <= 0.0) {
      std::fprintf(stderr, "bad overload multiplier '%s'\n", args[1].c_str());
      return 1;
    }
    options.overload = overload;
  }

  // Small versions of the four category-signature graphs (skewed, web,
  // community, uniform) keep calibration cheap; the zipf head lands on
  // the RMAT graph, same as the full bench.
  graph::Csr rmat = graph::GenerateRmat(10, 12288, 0.57, 0.19, 0.19, 42);
  graph::Csr web = graph::GenerateWebCopy(3000, 8, 0.3, 7);
  graph::Csr community = graph::GenerateCommunity(2000, 16, 250, 0.8, 11);
  graph::Csr uniform = graph::GenerateUniform(2500, 15000, 13);
  std::vector<const graph::Csr*> graphs = {&rmat, &web, &community, &uniform};

  auto model = serve::CalibrateCostModel(graphs, BaseOptions(),
                                         sim::DeviceSpec(),
                                         options.max_batch);
  if (!model.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  serve::LoadReport report = serve::RunLoad(options, *model);
  report.scenario = "cli";
  if (g_json) {
    std::printf("%s\n", report.ToJson().c_str());
    return 0;
  }

  std::printf("SageFlood load simulation: %llu requests at %.2fx modeled "
              "capacity (%.0f of %.0f req/s), %.3f virtual seconds\n",
              static_cast<unsigned long long>(report.requests),
              options.overload, report.offered_rps, report.capacity_rps,
              report.virtual_seconds);
  std::printf("%llu dispatches, mean batch %.1f\n\n",
              static_cast<unsigned long long>(report.dispatches),
              report.mean_batch);
  std::printf("%-12s %9s %9s %8s %8s %9s %9s %10s\n", "class", "offered",
              "completed", "goodput", "evicted", "p50-ms", "p99-ms",
              "p99.9-ms");
  for (int c = 0; c < serve::kNumPriorities; ++c) {
    const serve::ClassReport& cr = report.by_class[c];
    std::printf("%-12s %9llu %9llu %8.4f %8llu %9.3f %9.3f %10.3f\n",
                serve::PriorityName(static_cast<serve::Priority>(c)),
                static_cast<unsigned long long>(cr.offered),
                static_cast<unsigned long long>(cr.completed), cr.goodput,
                static_cast<unsigned long long>(cr.evicted), cr.p50_ms,
                cr.p99_ms, cr.p999_ms);
  }
  std::printf("\nshed: %llu evictions, %llu queue-full, %llu over-quota "
              "(digest %016llx)\n",
              static_cast<unsigned long long>(report.evictions),
              static_cast<unsigned long long>(report.queue_full_rejections),
              static_cast<unsigned long long>(report.quota_rejections),
              static_cast<unsigned long long>(report.shed_digest));
  return 0;
}

// ---------------------------------------------------------------------------
// Registry table + dispatch.

const Subcommand kSubcommands[] = {
    {"generate", "<kind> <out.sagecsr> <a> <b>",
     "synthesize a graph (rmat <scale> <edges> | uniform <nodes> <edges> | "
     "web <nodes> <deg> | community <nodes> <deg>)",
     4, &CmdGenerate},
    {"convert", "<edges.txt> <out.sagecsr>", "text edge list -> binary CSR",
     2, &CmdConvert},
    {"stats", "<graph>", "Table-1-style stats", 1, &CmdStats},
    {"bfs", "<graph> <source>", "run BFS on SAGE", 2, &CmdBfs},
    {"pagerank", "<graph> <iterations>", "run PageRank", 2, &CmdPageRank},
    {"kcore", "<graph> <k>", "k-core size", 2, &CmdKcore},
    {"sssp", "<graph> <source>", "weighted SSSP", 2, &CmdSssp},
    {"msbfs", "<graph> <k>", "k concurrent BFS in one traversal", 2,
     &CmdMsBfs},
    {"profile", "<graph> <app> [arg]",
     "run one app and print the device profile (--json for JSON; "
     "--trace-out / --metrics-out export the kernel timeline and metrics)",
     2, &CmdProfile},
    {"reorder", "<graph> <method> <out.sagecsr>",
     "relabel with rcm|llp|gorder|random", 3, &CmdReorder},
    {"partition", "<graph> <num_parts>", "graph partition (--partitioner)", 2,
     &CmdPartition},
    {"determinism", "<graph>", "schedule-invariance + parallel equivalence",
     1, &CmdDeterminism},
    {"faults", "<graph> <app> <spec.txt> [arg]",
     "replay a fault scenario: guarded run vs fault-free digest compare "
     "(arg = source | iterations | k)",
     3, &CmdFaults},
    {"serve", "<requests.txt>",
     "replay a request file through the query service (directives: "
     "graph/gen/bfs/sssp/pagerank/kcore/msbfs; --priority/--tenant tag "
     "every request)",
     1, &CmdServe},
    {"load", "[requests] [overload_x]",
     "SageFlood virtual-time QoS load simulation (default 100000 requests "
     "at 2.0x modeled capacity; --json for the machine-readable SLO "
     "report)",
     0, &CmdLoad},
    {"vet", "[app...]",
     "SageVet pre-flight analysis of registered programs "
     "(--level=off|static|probe, --json for machine-readable reports); "
     "exit 3 if any program is unsound",
     0, &CmdVet},
};
const size_t kNumSubcommands = sizeof(kSubcommands) / sizeof(kSubcommands[0]);

const Subcommand* FindSubcommand(const std::string& name) {
  for (const Subcommand& cmd : kSubcommands) {
    if (name == cmd.name) return &cmd;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  // Pass 1: strip shared flags (accepted anywhere), collect positionals.
  std::vector<std::string> positionals;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const FlagDef* def = nullptr;
    for (const FlagDef& flag : kFlags) {
      if (name == flag.name) {
        def = &flag;
        break;
      }
    }
    if (def == nullptr || !def->parse(value)) {
      std::fprintf(stderr, "bad flag: %s\n", arg.c_str());
      return Usage();
    }
  }

  if (positionals.empty()) return Usage();
  const Subcommand* cmd = FindSubcommand(positionals[0]);
  if (cmd == nullptr) {
    std::fprintf(stderr, "unknown subcommand: %s\n", positionals[0].c_str());
    return Usage();
  }
  std::vector<std::string> args(positionals.begin() + 1, positionals.end());
  if (g_help) return SubcommandUsage(*cmd);
  if (args.size() < cmd->min_args) return SubcommandUsage(*cmd);
  return cmd->run(args);
}
