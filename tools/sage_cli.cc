// sage_cli — command-line front end for the SAGE library.
//
//   sage_cli generate <kind> <out.sagecsr> [args...]   synthesize a graph
//       kinds: rmat <scale> <edges> | uniform <nodes> <edges> |
//              web <nodes> <degree> | community <nodes> <degree>
//   sage_cli convert <edges.txt> <out.sagecsr>         text -> binary CSR
//   sage_cli stats <graph>                             Table-1-style stats
//   sage_cli bfs <graph> <source>                      run BFS on SAGE
//   sage_cli pagerank <graph> <iterations>             run PageRank
//   sage_cli kcore <graph> <k>                         k-core size
//   sage_cli sssp <graph> <source>                     weighted SSSP
//   sage_cli msbfs <graph> <k>                         k concurrent BFS
//   sage_cli reorder <graph> <method> <out.sagecsr>    rcm|llp|gorder|random
//   sage_cli partition <graph> <num_parts>             metis-like partition
//   sage_cli determinism <graph>                       schedule-invariance check
//
// Global flags (anywhere on the command line):
//   --check[=bounds|full]   run under SageCheck (bare --check means full);
//                           prints the violation report and exits 3 if the
//                           run was not clean.
//   --host-threads=N        host threads for the parallel execution backend
//                           (0 = hardware concurrency, 1 = serial; results
//                           are bit-identical either way — DESIGN.md §5).
//
// <graph> is either a binary .sagecsr file (from generate/convert) or a
// whitespace edge-list text file.

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/bfs.h"
#include "apps/kcore.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "baselines/metis_like.h"
#include "check/access_checker.h"
#include "check/determinism.h"
#include "core/engine.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "reorder/permutation.h"
#include "reorder/reorderers.h"
#include "sim/gpu_device.h"
#include "sim/profile.h"

namespace {

using namespace sage;

int Usage() {
  std::fprintf(stderr,
               "usage: sage_cli "
               "<generate|convert|stats|bfs|pagerank|kcore|sssp|msbfs|reorder|"
               "partition|determinism> "
               "[--check[=bounds|full]] [--host-threads=N] "
               "...\n(see the header of tools/sage_cli.cc)\n");
  return 2;
}

/// Checker severity requested via --check; kOff when the flag is absent.
sim::CheckLevel g_check_level = sim::CheckLevel::kOff;

/// Host threads requested via --host-threads; 0 = hardware concurrency.
uint32_t g_host_threads = 0;

core::EngineOptions BaseOptions() {
  core::EngineOptions options;
  options.check_level = g_check_level;
  options.host_threads = g_host_threads;
  return options;
}

/// Prints the SageCheck report for a finished run and folds any violations
/// into the exit code (3 = run completed but the checker found bugs).
int FinishChecked(const core::Engine& engine, int rc) {
  const check::AccessChecker* checker = engine.checker();
  if (checker == nullptr) return rc;
  std::printf("%s", checker->Report().c_str());
  if (rc == 0 && !checker->clean()) return 3;
  return rc;
}

util::StatusOr<graph::Csr> LoadGraph(const std::string& path) {
  auto bin = graph::LoadCsrBinary(path);
  if (bin.ok()) return bin;
  auto coo = graph::LoadEdgeListText(path);
  if (!coo.ok()) return coo.status();
  return graph::Csr::FromCoo(*coo);
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string kind = argv[0];
  graph::Csr csr;
  if (kind == "rmat" && argc >= 4) {
    csr = graph::GenerateRmat(std::stoul(argv[2]), std::stoull(argv[3]),
                              0.57, 0.19, 0.19, 1);
  } else if (kind == "uniform" && argc >= 4) {
    csr = graph::GenerateUniform(std::stoul(argv[2]), std::stoull(argv[3]), 1);
  } else if (kind == "web" && argc >= 4) {
    csr = graph::GenerateWebCopy(std::stoul(argv[2]), std::stoul(argv[3]),
                                 0.75, 1);
  } else if (kind == "community" && argc >= 4) {
    csr = graph::GenerateCommunity(std::stoul(argv[2]), std::stoul(argv[3]),
                                   std::stoul(argv[2]) / 16 + 1, 0.8, 1);
  } else {
    return Usage();
  }
  auto status = graph::SaveCsrBinary(csr, argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges\n", argv[1], csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto coo = graph::LoadEdgeListText(argv[0]);
  if (!coo.ok()) {
    std::fprintf(stderr, "%s\n", coo.status().ToString().c_str());
    return 1;
  }
  graph::Csr csr = graph::Csr::FromCoo(*coo);
  auto status = graph::SaveCsrBinary(csr, argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges\n", argv[1], csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));
  return 0;
}

int CmdStats(const graph::Csr& csr) {
  auto stats = graph::ComputeStats(csr);
  std::printf("nodes        : %llu\n",
              static_cast<unsigned long long>(stats.num_nodes));
  std::printf("edges        : %llu\n",
              static_cast<unsigned long long>(stats.num_edges));
  std::printf("avg degree   : %.2f\n", stats.avg_degree);
  std::printf("max degree   : %u\n", stats.max_degree);
  std::printf("degree gini  : %.3f\n", stats.degree_gini);
  std::printf("CSR bytes    : %llu\n",
              static_cast<unsigned long long>(csr.MemoryBytes()));
  return 0;
}

int CmdBfs(const graph::Csr& csr, graph::NodeId source) {
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, csr, BaseOptions());
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, source);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  uint64_t reached = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (bfs.DistanceOf(v) != apps::BfsProgram::kUnreached) ++reached;
  }
  std::printf("reached %llu nodes in %u iterations; %.3f GTEPS\n",
              static_cast<unsigned long long>(reached), stats->iterations,
              stats->GTeps());
  std::printf("%s", sim::FormatDeviceProfile(device).c_str());
  return FinishChecked(engine, 0);
}

int CmdPageRank(const graph::Csr& csr, uint32_t iterations) {
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, csr, BaseOptions());
  apps::PageRankProgram pr;
  auto stats = apps::RunPageRank(engine, pr, iterations);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  double top = 0;
  graph::NodeId who = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (pr.RankOf(v) > top) {
      top = pr.RankOf(v);
      who = v;
    }
  }
  std::printf("%u iterations, %.3f GTEPS; top node %u (rank %.6f)\n",
              iterations, stats->GTeps(), who, top);
  std::printf("%s", sim::FormatDeviceProfile(device).c_str());
  return FinishChecked(engine, 0);
}

int CmdKcore(const graph::Csr& csr, uint32_t k) {
  sim::GpuDevice device{sim::DeviceSpec()};
  // Peeling needs the symmetrized graph.
  graph::Coo coo = csr.ToCoo();
  graph::Symmetrize(coo);
  graph::RemoveSelfLoops(coo);
  graph::SortCoo(coo);
  graph::DedupSortedCoo(coo);
  core::Engine engine(&device, graph::Csr::FromCoo(coo), BaseOptions());
  apps::KCoreProgram kcore;
  auto stats = apps::RunKCore(engine, kcore, k);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  uint64_t in_core = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (kcore.InCore(v)) ++in_core;
  }
  std::printf("%llu of %u nodes are in the %u-core\n",
              static_cast<unsigned long long>(in_core), csr.num_nodes(), k);
  return FinishChecked(engine, 0);
}

int CmdSssp(const graph::Csr& csr, graph::NodeId source) {
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, csr, BaseOptions());
  apps::SsspProgram sssp;
  auto stats = apps::RunSssp(engine, sssp, source);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  uint64_t reached = 0;
  uint64_t max_dist = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    uint64_t d = sssp.DistanceOf(v);
    if (d != apps::SsspProgram::kInfinity) {
      ++reached;
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf("reached %llu nodes; max weighted distance %llu; %.3f GTEPS\n",
              static_cast<unsigned long long>(reached),
              static_cast<unsigned long long>(max_dist), stats->GTeps());
  return FinishChecked(engine, 0);
}

int CmdMsBfs(const graph::Csr& csr, uint32_t k) {
  if (k == 0 || k > apps::MultiSourceBfsProgram::kMaxSources) {
    std::fprintf(stderr, "k must be in [1, 64]\n");
    return 1;
  }
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, csr, BaseOptions());
  apps::MultiSourceBfsProgram msbfs;
  std::vector<graph::NodeId> sources;
  for (graph::NodeId v = 0; v < csr.num_nodes() && sources.size() < k; ++v) {
    if (csr.OutDegree(v) > 0) sources.push_back(v);
  }
  auto stats = apps::RunMultiSourceBfs(engine, msbfs, sources);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return FinishChecked(engine, 1);
  }
  for (uint32_t i = 0; i < sources.size(); ++i) {
    std::printf("instance %2u (source %u): reached %llu nodes\n", i,
                sources[i],
                static_cast<unsigned long long>(msbfs.ReachedCount(i)));
  }
  std::printf("%zu concurrent BFS in one traversal: %.3f GTEPS\n",
              sources.size(), stats->GTeps());
  return FinishChecked(engine, 0);
}

int CmdReorder(const graph::Csr& csr, const std::string& method,
               const std::string& out) {
  reorder::ReorderResult result;
  if (method == "rcm") {
    result = reorder::RcmOrder(csr);
  } else if (method == "llp") {
    result = reorder::LlpOrder(csr);
  } else if (method == "gorder") {
    result = reorder::GorderOrder(csr);
  } else if (method == "random") {
    result = reorder::RandomOrder(csr, 1);
  } else {
    return Usage();
  }
  graph::Csr relabeled = reorder::ApplyToCsr(csr, result.new_of_old);
  auto status = graph::SaveCsrBinary(relabeled, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s reordering took %.3f s; wrote %s\n", method.c_str(),
              result.seconds, out.c_str());
  return 0;
}

int CmdDeterminism(const graph::Csr& csr) {
  graph::NodeId source = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (csr.OutDegree(v) > 0) {
      source = v;
      break;
    }
  }
  check::DeterminismOptions options;  // all three strategies
  check::DeterminismReport report = check::RunBfsDeterminism(
      csr, sim::DeviceSpec(), source, BaseOptions(), options);
  std::printf("%s", report.details.c_str());
  if (!report.deterministic) {
    std::fprintf(stderr, "determinism harness FAILED: traversal output or "
                         "sector accounting depends on the schedule\n");
    return 3;
  }
  std::printf("deterministic: output invariant under SM permutation and "
              "dispatch shuffling on all strategies\n");

  check::EquivalenceOptions eq;  // all strategies, threads {2, 7, auto}
  check::EquivalenceReport eq_report = check::RunBfsEquivalence(
      csr, sim::DeviceSpec(), source, BaseOptions(), eq);
  std::printf("%s", eq_report.details.c_str());
  if (!eq_report.equivalent) {
    std::fprintf(stderr, "equivalence harness FAILED: parallel execution "
                         "diverged from the serial charge sequence\n");
    return 3;
  }
  std::printf("equivalent: parallel execution is bit-identical to serial "
              "on all strategies\n");
  return 0;
}

int CmdPartition(const graph::Csr& csr, uint32_t parts) {
  auto result = baselines::MetisLikePartition(csr, parts);
  std::printf("%u-way partition: edge cut %llu (%.2f%% of edges), balance "
              "%.3f, %.3f s\n",
              parts, static_cast<unsigned long long>(result.edge_cut),
              csr.num_edges() > 0
                  ? 100.0 * static_cast<double>(result.edge_cut) /
                        static_cast<double>(csr.num_edges())
                  : 0.0,
              result.balance, result.seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global flags before positional dispatch.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check" || arg == "--check=full") {
      g_check_level = sim::CheckLevel::kFull;
    } else if (arg == "--check=bounds") {
      g_check_level = sim::CheckLevel::kBounds;
    } else if (arg.rfind("--check", 0) == 0) {
      std::fprintf(stderr, "unknown check level: %s\n", arg.c_str());
      return Usage();
    } else if (arg.rfind("--host-threads=", 0) == 0) {
      try {
        g_host_threads =
            std::stoul(arg.substr(std::strlen("--host-threads=")));
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --host-threads value: %s\n", arg.c_str());
        return Usage();
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc - 2, argv + 2);
  if (cmd == "convert") return CmdConvert(argc - 2, argv + 2);

  if (argc < 3) return Usage();
  auto csr = LoadGraph(argv[2]);
  if (!csr.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 csr.status().ToString().c_str());
    return 1;
  }
  if (cmd == "stats") return CmdStats(*csr);
  if (cmd == "bfs" && argc >= 4) {
    return CmdBfs(*csr, static_cast<graph::NodeId>(std::stoul(argv[3])));
  }
  if (cmd == "pagerank" && argc >= 4) {
    return CmdPageRank(*csr, std::stoul(argv[3]));
  }
  if (cmd == "kcore" && argc >= 4) return CmdKcore(*csr, std::stoul(argv[3]));
  if (cmd == "sssp" && argc >= 4) {
    return CmdSssp(*csr, static_cast<graph::NodeId>(std::stoul(argv[3])));
  }
  if (cmd == "msbfs" && argc >= 4) return CmdMsBfs(*csr, std::stoul(argv[3]));
  if (cmd == "reorder" && argc >= 5) return CmdReorder(*csr, argv[3], argv[4]);
  if (cmd == "partition" && argc >= 4) {
    return CmdPartition(*csr, std::stoul(argv[3]));
  }
  if (cmd == "determinism") return CmdDeterminism(*csr);
  return Usage();
}
