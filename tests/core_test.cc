#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/bfs.h"
#include "apps/reference.h"
#include "core/engine.h"
#include "core/expand.h"
#include "core/resident.h"
#include "core/sampling_reorder.h"
#include "graph/generators.h"
#include "reorder/permutation.h"
#include "sim/gpu_device.h"
#include "sim/profile.h"
#include "util/random.h"

namespace sage::core {
namespace {

using graph::Csr;
using graph::EdgeId;
using graph::NodeId;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

// --- DecomposeAdjacency (property sweep) ----------------------------------

struct DecomposeCase {
  uint32_t degree;
  uint32_t min_tile;
  bool align;
  uint64_t begin;
};

class DecomposeTest : public ::testing::TestWithParam<DecomposeCase> {};

TEST_P(DecomposeTest, CoversAdjacencyExactlyOnce) {
  const DecomposeCase& c = GetParam();
  TiledOptions opts;
  opts.block_size = 256;
  opts.min_tile_size = c.min_tile;
  opts.tile_alignment = c.align;
  std::vector<TileEntry> entries;
  DecomposeAdjacency(7, c.begin, c.degree, opts, 8, &entries);

  // Entries tile [begin, begin + degree) contiguously, in order.
  uint64_t cursor = c.begin;
  uint32_t covered = 0;
  for (const TileEntry& t : entries) {
    EXPECT_EQ(t.node, 7u);
    EXPECT_EQ(t.offset, cursor);
    EXPECT_GT(t.size, 0u);
    EXPECT_LE(t.size, opts.block_size);
    cursor += t.size;
    covered += t.size;
  }
  EXPECT_EQ(covered, c.degree);

  // At most one sub-minimum fragment plus (with alignment) one prefix.
  uint32_t small = 0;
  for (const TileEntry& t : entries) {
    if (t.size < c.min_tile) ++small;
  }
  EXPECT_LE(small, c.align ? 2u : 1u);

  if (c.align && c.degree >= 2 * opts.min_tile_size + 8) {
    // Full tiles must start sector-aligned once past the prefix.
    for (const TileEntry& t : entries) {
      if (t.size >= c.min_tile && t.offset != c.begin) {
        EXPECT_EQ(t.offset % 8, 0u) << "tile at " << t.offset;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeTest,
    ::testing::Values(DecomposeCase{0, 8, true, 3},
                      DecomposeCase{1, 8, true, 5},
                      DecomposeCase{7, 8, true, 11},
                      DecomposeCase{8, 8, true, 12},
                      DecomposeCase{17, 8, false, 0},
                      DecomposeCase{100, 8, true, 13},
                      DecomposeCase{255, 4, true, 1},
                      DecomposeCase{256, 8, false, 7},
                      DecomposeCase{1000, 16, true, 9},
                      DecomposeCase{65536, 8, true, 21},
                      DecomposeCase{123457, 32, true, 3}));

// --- ResidentTileStore -----------------------------------------------------

TEST(ResidentTileStoreTest, PutGetInvalidate) {
  ResidentTileStore store(10);
  EXPECT_FALSE(store.Has(3));
  std::vector<TileEntry> entries{{3, 100, 64}, {3, 164, 8}};
  store.Put(3, entries);
  ASSERT_TRUE(store.Has(3));
  auto got = store.Get(3);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].offset, 100u);
  EXPECT_EQ(store.size(), 2u);
  store.Invalidate();
  EXPECT_FALSE(store.Has(3));
  EXPECT_EQ(store.size(), 0u);
}

// --- Edge-exactly-once invariant across all expansion paths -----------------

// Filter that records every (frontier, neighbor) call.
class RecordingFilter : public FilterProgram {
 public:
  void Bind(Engine* engine) override {
    engine_ = engine;
    buf_ = engine->RegisterAttribute("rec.attr", 4);
    footprint_.neighbor_reads = {&buf_};
  }
  bool Filter(NodeId frontier, NodeId neighbor) override {
    ++calls_[{frontier, neighbor}];
    return false;
  }
  const Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "recording"; }

  const std::map<std::pair<NodeId, NodeId>, int>& calls() const {
    return calls_;
  }
  void Clear() { calls_.clear(); }

 private:
  Engine* engine_ = nullptr;
  sim::Buffer buf_;
  Footprint footprint_;
  std::map<std::pair<NodeId, NodeId>, int> calls_;
};

struct PathCase {
  const char* label;
  ExpandStrategy strategy;
  bool tiled;
  bool resident;
};

class EdgeOnceTest : public ::testing::TestWithParam<PathCase> {};

TEST_P(EdgeOnceTest, EveryFrontierEdgeFiltersExactlyOnce) {
  const PathCase& c = GetParam();
  Csr csr = graph::GenerateRmat(9, 5000, 0.57, 0.19, 0.19, 12);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.strategy = c.strategy;
  opts.tiled_partitioning = c.tiled;
  opts.resident_tiles = c.resident;
  Engine engine(&device, csr, opts);
  RecordingFilter filter;
  ASSERT_TRUE(engine.Bind(&filter).ok());

  // One iteration over a mixed frontier (hub + small nodes).
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < csr.num_nodes() && frontier.size() < 300; v += 7) {
    frontier.push_back(v);
  }
  auto stats = engine.RunOneIteration(frontier, nullptr);
  ASSERT_TRUE(stats.ok());

  std::map<std::pair<NodeId, NodeId>, int> expected;
  uint64_t edge_count = 0;
  for (NodeId f : frontier) {
    for (NodeId n : csr.Neighbors(f)) {
      ++expected[{f, n}];
      ++edge_count;
    }
  }
  EXPECT_EQ(stats->edges_traversed, edge_count);
  EXPECT_EQ(filter.calls(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, EdgeOnceTest,
    ::testing::Values(
        PathCase{"scalar", ExpandStrategy::kSage, false, false},
        PathCase{"tiled", ExpandStrategy::kSage, true, false},
        PathCase{"resident", ExpandStrategy::kSage, true, true},
        PathCase{"b40c", ExpandStrategy::kB40c, false, false},
        PathCase{"warp", ExpandStrategy::kWarpCentric, false, false}),
    [](const auto& name_info) { return std::string(name_info.param.label); });

// --- Footprint charging -----------------------------------------------------

TEST(FootprintTest, NeighborArraysAreCharged) {
  Csr csr = graph::GenerateRmat(8, 3000, 0.5, 0.2, 0.2, 3);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  RecordingFilter filter;
  ASSERT_TRUE(engine.Bind(&filter).ok());
  uint64_t batches_before = device.mem().device_stats().batches;
  std::vector<NodeId> frontier{0, 1, 2, 3};
  ASSERT_TRUE(engine.RunOneIteration(frontier, nullptr).ok());
  EXPECT_GT(device.mem().device_stats().batches, batches_before);
  EXPECT_GT(device.mem().device_stats().useful_bytes, 0u);
}

// --- SamplingReorderer unit behaviour ---------------------------------------

TEST(SamplingReorderTest, StagesAdvanceAndRoundCompletes) {
  sim::GpuDevice device(TestSpec());
  SamplingReorderer::Options opts;
  opts.threshold_edges = 64;
  SamplingReorderer sampler(256, 10000, 8, &device, opts);
  EXPECT_EQ(sampler.stage(), 1);

  util::Rng rng(3);
  std::vector<NodeId> tile(16);
  device.BeginKernel();
  int guard = 0;
  while (sampler.rounds_completed() == 0 && guard++ < 1000) {
    for (auto& id : tile) id = rng.UniformU32(256);
    sampler.ObserveTileAccess(tile, 0);
    auto perm = sampler.MaybeTakePermutation();
    if (perm.has_value()) {
      EXPECT_TRUE(reorder::IsPermutation(*perm));
      break;
    }
  }
  device.EndKernel();
  EXPECT_EQ(sampler.rounds_completed(), 1u);
}

TEST(SamplingReorderTest, ClusteredWorkloadImprovesObjective) {
  // Synthetic workload: tiles repeatedly co-access fixed groups of 8 nodes
  // that are scattered across the id space. A good permutation packs each
  // group into one sector.
  const NodeId n = 512;
  const uint32_t vps = 8;
  util::Rng rng(17);
  // 64 groups of 8 random distinct nodes.
  std::vector<NodeId> ids(n);
  for (NodeId i = 0; i < n; ++i) ids[i] = i;
  rng.Shuffle(ids);
  std::vector<std::vector<NodeId>> groups;
  for (NodeId g = 0; g < n / 8; ++g) {
    groups.emplace_back(ids.begin() + g * 8, ids.begin() + (g + 1) * 8);
  }
  auto objective = [&](const std::vector<NodeId>& new_of_old) {
    uint64_t sectors = 0;
    for (const auto& group : groups) {
      std::set<NodeId> s;
      for (NodeId v : group) s.insert(new_of_old[v] / vps);
      sectors += s.size();
    }
    return sectors;
  };

  sim::GpuDevice device(TestSpec());
  SamplingReorderer::Options opts;
  opts.threshold_edges = 4096;
  SamplingReorderer sampler(n, 100000, vps, &device, opts);
  std::vector<NodeId> total = reorder::IdentityPermutation(n);

  device.BeginKernel();
  int rounds = 0;
  int guard = 0;
  while (rounds < 6 && guard++ < 200000) {
    const auto& group = groups[rng.UniformU32(groups.size())];
    // Present the group under the *current* labeling.
    std::vector<NodeId> tile;
    for (NodeId v : group) tile.push_back(total[v]);
    sampler.ObserveTileAccess(tile, 0);
    auto perm = sampler.MaybeTakePermutation();
    if (perm.has_value()) {
      ASSERT_TRUE(reorder::IsPermutation(*perm));
      total = reorder::ComposePermutations(total, *perm);
      ++rounds;
    }
  }
  device.EndKernel();
  ASSERT_GE(rounds, 3);
  EXPECT_LT(objective(total),
            objective(reorder::IdentityPermutation(n)));
}

// --- Engine odds and ends ----------------------------------------------------

TEST(EngineDetailTest, MaxIterationsBoundsTheRun) {
  Csr csr = graph::GeneratePath(100);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::BfsProgram bfs;
  ASSERT_TRUE(engine.Bind(&bfs).ok());
  bfs.SetSource(0);
  NodeId src[1] = {0};
  auto stats = engine.Run(src, /*max_iterations=*/3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->iterations, 3u);
  EXPECT_EQ(bfs.DistanceOf(3), 3u);
  EXPECT_EQ(bfs.DistanceOf(4), apps::BfsProgram::kUnreached);
}

TEST(EngineDetailTest, OutOfCoreBfsIsCorrectAndSlower) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.55, 0.2, 0.2, 8);
  auto ref = apps::BfsReference(csr, 0);

  sim::GpuDevice in_core(TestSpec());
  Engine fast(&in_core, csr, EngineOptions());
  apps::BfsProgram bfs1;
  auto s1 = apps::RunBfs(fast, bfs1, 0);
  ASSERT_TRUE(s1.ok());

  sim::GpuDevice ooc_dev(TestSpec());
  EngineOptions ooc_opts;
  ooc_opts.adjacency_on_host = true;
  Engine ooc(&ooc_dev, csr, ooc_opts);
  apps::BfsProgram bfs2;
  auto s2 = apps::RunBfs(ooc, bfs2, 0);
  ASSERT_TRUE(s2.ok());

  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs2.DistanceOf(v), ref[v]);
  }
  EXPECT_GT(s2->seconds, s1->seconds);
  EXPECT_GT(ooc_dev.host_link().stats().transfers, 0u);
}

TEST(EngineDetailTest, PauseSamplingFreezesRounds) {
  Csr csr = graph::GenerateRmat(9, 6000, 0.5, 0.2, 0.2, 4);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.sampling_reorder = true;
  opts.sampling_threshold_edges = 1000;
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
  uint32_t rounds = engine.reorder_rounds();
  engine.PauseSampling();
  ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
  ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
  EXPECT_EQ(engine.reorder_rounds(), rounds);
  engine.ResumeSampling();
  for (int i = 0; i < 10 && engine.reorder_rounds() == rounds; ++i) {
    ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
  }
  EXPECT_GT(engine.reorder_rounds(), rounds);
}

TEST(EngineDetailTest, ProfileReportMentionsKeySections) {
  Csr csr = graph::GenerateRmat(8, 2000, 0.5, 0.2, 0.2, 2);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::BfsProgram bfs;
  ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
  std::string report = sim::FormatDeviceProfile(device);
  EXPECT_NE(report.find("kernels launched"), std::string::npos);
  EXPECT_NE(report.find("L2 hit rate"), std::string::npos);
  EXPECT_NE(report.find("amplification"), std::string::npos);
}

// Identical runs on identical engines must produce identical modeled time
// (the simulator is fully deterministic).
TEST(EngineDetailTest, DeterministicModeledTime) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.55, 0.2, 0.2, 6);
  double t[2];
  for (int i = 0; i < 2; ++i) {
    sim::GpuDevice device(TestSpec());
    Engine engine(&device, csr, EngineOptions());
    apps::BfsProgram bfs;
    auto stats = apps::RunBfs(engine, bfs, 0);
    ASSERT_TRUE(stats.ok());
    t[i] = stats->seconds;
  }
  EXPECT_EQ(t[0], t[1]);
}

}  // namespace
}  // namespace sage::core
