// SageFlood tests: token-bucket quotas, bursty arrival generation, the
// QosPolicy admission/dequeue rules, Submit-time validation of the QoS
// request fields, graceful shedding through the live service, and the
// thread-count bit-identity of shed decisions.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/loadgen.h"
#include "serve/qos.h"
#include "serve/service.h"
#include "util/arrival.h"
#include "util/timer.h"
#include "util/token_bucket.h"

namespace sage::serve {
namespace {

using graph::Csr;
using graph::NodeId;
using util::StatusCode;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr TestGraph() { return graph::GenerateRmat(10, 8192, 0.57, 0.19, 0.19, 7); }

ServeOptions SyncOptions() {
  ServeOptions options;
  options.worker_threads = 0;
  options.device_spec = TestSpec();
  return options;
}

Request MakeRequest(NodeId source, Priority priority = Priority::kInteractive,
                    const std::string& tenant = "default") {
  Request request;
  request.graph = "g";
  request.app = "bfs";
  request.params.sources = {source};
  request.priority = priority;
  request.tenant = tenant;
  return request;
}

// --- util::TokenBucket ------------------------------------------------------

TEST(TokenBucketTest, RefillPatternIsDeterministic) {
  // rate 0.5/tick, burst 1: odd ticks admit, even ticks deny.
  util::TokenBucket bucket(0.5, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(1));
  EXPECT_FALSE(bucket.TryAcquire(2));
  EXPECT_TRUE(bucket.TryAcquire(3));
  EXPECT_FALSE(bucket.TryAcquire(4));
}

TEST(TokenBucketTest, BurstCapsBankedCredit) {
  util::TokenBucket bucket(1.0, 3.0);
  // A long idle stretch banks at most `burst` tokens.
  EXPECT_TRUE(bucket.TryAcquire(100));
  EXPECT_TRUE(bucket.TryAcquire(100));
  EXPECT_TRUE(bucket.TryAcquire(100));
  EXPECT_FALSE(bucket.TryAcquire(100));
}

// --- util::ArrivalProcess ---------------------------------------------------

TEST(ArrivalTest, SameSeedSameSequence) {
  util::ArrivalOptions shape;
  shape.rate = 500.0;
  shape.burst_factor = 3.0;
  shape.burst_period_s = 0.01;
  util::ArrivalProcess a(shape, 42), b(shape, 42), c(shape, 43);
  bool any_difference = false;
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double ta = a.Next();
    EXPECT_EQ(ta, b.Next());
    EXPECT_GT(ta, prev);  // strictly increasing
    prev = ta;
    any_difference |= ta != c.Next();
  }
  EXPECT_TRUE(any_difference);
}

TEST(ArrivalTest, BurstyProcessKeepsTheLongRunMeanRate) {
  util::ArrivalOptions shape;
  shape.rate = 1000.0;
  shape.burst_factor = 3.0;
  shape.burst_period_s = 0.01;
  shape.burst_duty = 0.3;
  util::ArrivalProcess process(shape, 7);
  const int n = 20000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = process.Next();
  double mean_rate = n / last;
  EXPECT_NEAR(mean_rate, shape.rate, 0.1 * shape.rate);
}

TEST(ArrivalTest, SaveRestoreResumesExactSequence) {
  util::ArrivalOptions shape;
  shape.rate = 2000.0;
  shape.burst_factor = 4.0;
  shape.burst_period_s = 0.002;
  shape.burst_duty = 0.25;
  util::ArrivalProcess fresh(shape, 99);
  util::ArrivalProcess first_half(shape, 99);
  for (int i = 0; i < 2500; ++i) {
    EXPECT_EQ(fresh.Next(), first_half.Next());
  }
  // A brand-new process (different seed — Restore overwrites the RNG)
  // resumed from the checkpoint must continue bit-identically to the
  // process that never stopped.
  const util::ArrivalProcess::State checkpoint = first_half.Save();
  util::ArrivalProcess resumed(shape, 12345);
  resumed.Restore(checkpoint);
  for (int i = 0; i < 2500; ++i) {
    EXPECT_EQ(fresh.Next(), resumed.Next());
  }
}

TEST(ArrivalTest, LongHorizonBoundariesStayExact) {
  // Short cycles at high rate push the cycle counter into the hundreds of
  // thousands; the incremental cycle_start accumulation must keep phase
  // boundaries consistent (strictly increasing arrivals, no stall) and a
  // deep-horizon checkpoint must still resume bit-identically — the
  // regression the old double(cycle) * period recomputation failed.
  util::ArrivalOptions shape;
  shape.rate = 1000.0;
  shape.burst_factor = 5.0;
  shape.burst_period_s = 1e-4;  // ~10 cycles per arrival at the mean rate
  shape.burst_duty = 0.3;
  util::ArrivalProcess fresh(shape, 7);
  util::ArrivalProcess checkpointed(shape, 7);
  double prev = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const double t = fresh.Next();
    ASSERT_GT(t, prev);
    ASSERT_TRUE(std::isfinite(t));
    prev = t;
    checkpointed.Next();
  }
  const util::ArrivalProcess::State deep = checkpointed.Save();
  util::ArrivalProcess resumed(shape, 1);
  resumed.Restore(deep);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(fresh.Next(), resumed.Next());
  }
}

// --- Load-generator report edge cases ---------------------------------------

TEST(LoadGenTest, ZeroCompletionClassesReportZeroPercentiles) {
  // All traffic interactive: the batch and best-effort classes complete
  // nothing, so their report rows must be explicit zeros instead of
  // asserting inside PercentileOfSorted on an empty latency vector.
  CostModel model;
  model.max_batch = 8;
  model.graphs = {GraphCost{1e-4, 4e-4}};
  LoadOptions options;
  options.requests = 2000;
  options.overload = 1.5;
  options.max_batch = model.max_batch;
  options.class_mix = {1.0, 0.0, 0.0};
  const LoadReport report = RunLoad(options, model);
  EXPECT_GT(report.by_class[0].completed, 0u);
  for (int c = 1; c < kNumPriorities; ++c) {
    const ClassReport& cr = report.by_class[c];
    EXPECT_EQ(cr.completed, 0u);
    EXPECT_EQ(cr.p50_ms, 0.0);
    EXPECT_EQ(cr.p99_ms, 0.0);
    EXPECT_EQ(cr.p999_ms, 0.0);
  }
}

// --- Priority / ShedReason names --------------------------------------------

TEST(QosNamesTest, PriorityParsingRoundTrips) {
  Priority p = Priority::kInteractive;
  EXPECT_TRUE(ParsePriority("batch", &p));
  EXPECT_EQ(p, Priority::kBatch);
  EXPECT_TRUE(ParsePriority("besteffort", &p));
  EXPECT_EQ(p, Priority::kBestEffort);
  EXPECT_TRUE(ParsePriority("best-effort", &p));
  EXPECT_TRUE(ParsePriority("best_effort", &p));
  EXPECT_TRUE(ParsePriority("interactive", &p));
  EXPECT_EQ(p, Priority::kInteractive);
  EXPECT_FALSE(ParsePriority("urgent", &p));
  EXPECT_FALSE(ParsePriority("", &p));
  for (int c = 0; c < kNumPriorities; ++c) {
    Priority parsed = Priority::kBestEffort;
    EXPECT_TRUE(ParsePriority(PriorityName(static_cast<Priority>(c)),
                              &parsed));
    EXPECT_EQ(static_cast<int>(parsed), c);
  }
  EXPECT_STREQ(ShedReasonName(ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(ShedReasonName(ShedReason::kPriorityEviction),
               "priority_eviction");
  EXPECT_STREQ(ShedReasonName(ShedReason::kQuota), "quota");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDeadlineUnmeetable),
               "deadline_unmeetable");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDeadlineExpired),
               "deadline_expired");
}

// --- QosPolicy --------------------------------------------------------------

TEST(QosPolicyTest, EvictsStrictlyLowerClassesOnly) {
  QosPolicy policy(QosOptions{});
  // Queue full, best-effort present: an interactive arrival evicts it.
  auto a = policy.Admit(Priority::kInteractive, "t", {4, 0, 4}, 8);
  EXPECT_TRUE(a.admit);
  EXPECT_EQ(a.reason, ShedReason::kPriorityEviction);
  EXPECT_EQ(a.evict, static_cast<int>(Priority::kBestEffort));
  // Best-effort exhausted: batch is next on the chopping block.
  a = policy.Admit(Priority::kInteractive, "t", {4, 4, 0}, 8);
  EXPECT_TRUE(a.admit);
  EXPECT_EQ(a.evict, static_cast<int>(Priority::kBatch));
  // Queue full of interactive: nothing below it to evict.
  a = policy.Admit(Priority::kInteractive, "t", {8, 0, 0}, 8);
  EXPECT_FALSE(a.admit);
  EXPECT_EQ(a.reason, ShedReason::kQueueFull);
  // A class never evicts its own kind or better.
  a = policy.Admit(Priority::kBestEffort, "t", {0, 0, 8}, 8);
  EXPECT_FALSE(a.admit);
  EXPECT_EQ(a.reason, ShedReason::kQueueFull);
  a = policy.Admit(Priority::kBatch, "t", {4, 0, 4}, 8);
  EXPECT_TRUE(a.admit);
  EXPECT_EQ(a.evict, static_cast<int>(Priority::kBestEffort));
  // Room available: plain admit, nobody shed.
  a = policy.Admit(Priority::kBestEffort, "t", {1, 1, 1}, 8);
  EXPECT_TRUE(a.admit);
  EXPECT_EQ(a.reason, ShedReason::kNone);
  EXPECT_EQ(a.evict, -1);
}

TEST(QosPolicyTest, WeightedRoundRobinHonorsWeights) {
  QosPolicy policy(QosOptions{});  // weights {16, 4, 1}
  std::array<size_t, kNumPriorities> deep{100, 100, 100};
  std::array<int, kNumPriorities> served{};
  for (int i = 0; i < 21; ++i) {
    int c = policy.NextClass(deep);
    ASSERT_GE(c, 0);
    ++served[c];
  }
  EXPECT_EQ(served[0], 16);
  EXPECT_EQ(served[1], 4);
  EXPECT_EQ(served[2], 1);
  // Empty classes cede their slots; all-empty returns -1.
  std::array<size_t, kNumPriorities> only_best{0, 0, 5};
  EXPECT_EQ(policy.NextClass(only_best),
            static_cast<int>(Priority::kBestEffort));
  std::array<size_t, kNumPriorities> empty{0, 0, 0};
  EXPECT_EQ(policy.NextClass(empty), -1);
}

TEST(QosPolicyTest, TenantQuotaIsPerTenantAndDeterministic) {
  QosOptions options;
  options.tenant_rate_per_tick = 0.5;
  options.tenant_burst = 1.0;
  QosPolicy policy(options);
  std::array<size_t, kNumPriorities> depth{0, 0, 0};
  // One tenant submitting every tick gets every other request.
  EXPECT_TRUE(policy.Admit(Priority::kBatch, "a", depth, 100).admit);
  auto denied = policy.Admit(Priority::kBatch, "a", depth, 100);
  EXPECT_FALSE(denied.admit);
  EXPECT_EQ(denied.reason, ShedReason::kQuota);
  EXPECT_TRUE(policy.Admit(Priority::kBatch, "a", depth, 100).admit);
  // A different tenant has its own untouched bucket.
  EXPECT_TRUE(policy.Admit(Priority::kBatch, "b", depth, 100).admit);
}

// --- Submit-time validation of the QoS fields -------------------------------

TEST(QosValidationTest, RejectsMalformedQosRequestFields) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  QueryService service(&registry, SyncOptions());

  Request bad_priority = MakeRequest(0);
  bad_priority.priority = static_cast<Priority>(7);
  auto s = service.Submit(bad_priority);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.status().ToString().find("unknown priority"),
            std::string::npos);

  Request no_tenant = MakeRequest(0);
  no_tenant.tenant.clear();
  EXPECT_EQ(service.Submit(no_tenant).status().code(),
            StatusCode::kInvalidArgument);

  Request long_tenant = MakeRequest(0);
  long_tenant.tenant.assign(65, 'x');  // max_tenant_chars = 64
  EXPECT_EQ(service.Submit(long_tenant).status().code(),
            StatusCode::kInvalidArgument);

  Request expired = MakeRequest(0);
  expired.deadline_wall_until_seconds = util::MonotonicSeconds() - 1.0;
  auto e = service.Submit(expired);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(e.status().ToString().find("already expired"), std::string::npos);

  Request negative = MakeRequest(0);
  negative.deadline_wall_until_seconds = -1.0;
  EXPECT_EQ(service.Submit(negative).status().code(),
            StatusCode::kInvalidArgument);

  // None of the rejects were admitted.
  EXPECT_EQ(service.stats().submitted, 0u);

  // A tenant id exactly at the cap is fine.
  Request max_tenant = MakeRequest(0);
  max_tenant.tenant.assign(64, 'x');
  EXPECT_TRUE(service.Submit(max_tenant).ok());
}

// --- Graceful shedding through the live service -----------------------------

TEST(QosServiceTest, InteractiveEvictsNewestBestEffort) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  ServeOptions options = SyncOptions();
  options.max_pending = 2;
  QueryService service(&registry, options);

  auto be1 = service.Submit(MakeRequest(0, Priority::kBestEffort));
  auto be2 = service.Submit(MakeRequest(1, Priority::kBestEffort));
  ASSERT_TRUE(be1.ok() && be2.ok());
  // Queue full — the interactive arrival evicts the NEWEST best-effort
  // request instead of being refused.
  auto inter = service.Submit(MakeRequest(2, Priority::kInteractive));
  ASSERT_TRUE(inter.ok()) << inter.status().ToString();

  Response victim = be2->get();  // resolved immediately at eviction
  EXPECT_EQ(victim.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(victim.shed_reason, ShedReason::kPriorityEviction);
  EXPECT_NE(victim.status.ToString().find("[shed=priority_eviction]"),
            std::string::npos);

  service.ProcessAllPending();
  EXPECT_TRUE(be1->get().status.ok());
  EXPECT_TRUE(inter->get().status.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 0u);  // eviction is not a queue-full refusal
  const int be = static_cast<int>(Priority::kBestEffort);
  const int in = static_cast<int>(Priority::kInteractive);
  EXPECT_EQ(stats.shed_by_class[be], 1u);
  EXPECT_EQ(stats.completed_by_class[be], 1u);
  EXPECT_EQ(stats.submitted_by_class[be], 2u);
  EXPECT_EQ(stats.completed_by_class[in], 1u);
  // The per-class shed counters are exported through the registry too.
  std::string json = service.metrics().ToJson();
  EXPECT_NE(json.find("\"serve.shed.best_effort\": 1"), std::string::npos)
      << json;
}

TEST(QosServiceTest, QueueFullIsDistinctFromShedding) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  ServeOptions options = SyncOptions();
  options.max_pending = 2;
  QueryService service(&registry, options);

  ASSERT_TRUE(service.Submit(MakeRequest(0, Priority::kInteractive)).ok());
  ASSERT_TRUE(service.Submit(MakeRequest(1, Priority::kInteractive)).ok());
  // Nothing below interactive queued: the best-effort arrival is refused
  // outright, and the refusal is labeled queue_full, not an eviction.
  auto refused = service.Submit(MakeRequest(2, Priority::kBestEffort));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().ToString().find("[shed=queue_full]"),
            std::string::npos);

  service.ProcessAllPending();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed_by_class[static_cast<int>(Priority::kBestEffort)],
            0u);
}

TEST(QosServiceTest, TenantQuotaRejectionsAreCountedSeparately) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  ServeOptions options = SyncOptions();
  options.qos.tenant_rate_per_tick = 0.5;
  options.qos.tenant_burst = 1.0;
  QueryService service(&registry, options);

  // Tenant "hog" submits every tick: every other request is over quota.
  ASSERT_TRUE(
      service.Submit(MakeRequest(0, Priority::kBatch, "hog")).ok());
  auto denied = service.Submit(MakeRequest(1, Priority::kBatch, "hog"));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(denied.status().ToString().find("[shed=quota]"),
            std::string::npos);
  ASSERT_TRUE(
      service.Submit(MakeRequest(2, Priority::kBatch, "hog")).ok());
  // Another tenant is unaffected by hog's bucket.
  ASSERT_TRUE(
      service.Submit(MakeRequest(3, Priority::kBatch, "quiet")).ok());

  service.ProcessAllPending();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.quota_rejections, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.submitted, 3u);
  std::string json = service.metrics().ToJson();
  EXPECT_NE(json.find("\"serve.quota_rejections\": 1"), std::string::npos)
      << json;
}

TEST(QosServiceTest, HopelessModeledDeadlineShedsAtDequeue) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  QueryService service(&registry, SyncOptions());

  // First dispatch seeds the modeled-cost estimate for (g, bfs).
  auto warm = service.Submit(MakeRequest(0));
  ASSERT_TRUE(warm.ok());
  service.ProcessAllPending();
  ASSERT_TRUE(warm->get().status.ok());

  // The estimate says this deadline cannot be met; the request is dropped
  // at dequeue without burning a dispatch.
  Request hopeless = MakeRequest(1);
  hopeless.deadline_modeled_seconds = 1e-12;
  auto f = service.Submit(hopeless);
  ASSERT_TRUE(f.ok());
  uint64_t batches_before = service.stats().batches;
  service.ProcessAllPending();
  Response r = f->get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.shed_reason, ShedReason::kDeadlineUnmeetable);
  EXPECT_NE(r.status.ToString().find("[shed=deadline_unmeetable]"),
            std::string::npos);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_drops, 1u);
  EXPECT_EQ(stats.batches, batches_before);  // no dispatch spent on it
}

TEST(QosServiceTest, WallDeadlineExpiredWhileQueuedSheds) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  QueryService service(&registry, SyncOptions());

  Request request = MakeRequest(0);
  request.deadline_wall_until_seconds = util::MonotonicSeconds() + 0.02;
  auto f = service.Submit(request);
  ASSERT_TRUE(f.ok());
  // Let the deadline lapse while the request sits in the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  service.ProcessAllPending();
  Response r = f->get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.shed_reason, ShedReason::kDeadlineExpired);
  EXPECT_NE(r.status.ToString().find("[shed=deadline_expired]"),
            std::string::npos);
  EXPECT_EQ(service.stats().deadline_drops, 1u);
}

// --- Shed decisions are bit-identical across --host-threads -----------------

/// Runs a fixed overload scenario (tight queue, quotas on, mixed classes)
/// and fingerprints every shed decision: FNV-1a over (submission index,
/// shed reason) in submission order.
uint64_t ShedDigest(uint32_t host_threads) {
  GraphRegistry registry;
  SAGE_CHECK(registry.Add("g", TestGraph()).ok());
  ServeOptions options = SyncOptions();
  options.engine_options.host_threads = host_threads;
  options.max_pending = 4;
  options.qos.tenant_rate_per_tick = 0.3;
  options.qos.tenant_burst = 2.0;
  QueryService service(&registry, options);

  auto fnv = [](uint64_t h, uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
    return h;
  };
  uint64_t digest = 1469598103934665603ull;
  std::vector<std::future<Response>> futures;
  std::vector<size_t> future_index;
  for (size_t i = 0; i < 64; ++i) {
    Priority cls = static_cast<Priority>((i * 7 + i / 3) % kNumPriorities);
    std::string tenant = (i % 5 == 0) ? "hog" : "t" + std::to_string(i % 3);
    auto f = service.Submit(
        MakeRequest(static_cast<NodeId>(i % 16), cls, tenant));
    if (!f.ok()) {
      // Immediate refusal (quota / queue full): fold it in right away.
      ShedReason reason =
          f.status().ToString().find("[shed=quota]") != std::string::npos
              ? ShedReason::kQuota
              : ShedReason::kQueueFull;
      digest = fnv(fnv(digest, i), static_cast<uint64_t>(reason));
      continue;
    }
    futures.push_back(std::move(*f));
    future_index.push_back(i);
    if (i % 8 == 7) service.ProcessAllPending();
  }
  service.ProcessAllPending();
  for (size_t k = 0; k < futures.size(); ++k) {
    Response r = futures[k].get();
    if (r.shed_reason != ShedReason::kNone) {
      digest = fnv(fnv(digest, future_index[k]),
                   static_cast<uint64_t>(r.shed_reason));
    }
  }
  return digest;
}

TEST(QosDeterminismTest, ShedSetIsBitIdenticalAcrossHostThreads) {
  uint64_t serial = ShedDigest(1);
  uint64_t parallel = ShedDigest(4);
  EXPECT_EQ(serial, parallel);
  // The scenario actually sheds something, or the digest proves nothing.
  EXPECT_NE(serial, 1469598103934665603ull);
}

// --- TSan target: concurrent mixed-class submit storm -----------------------

// run_checks.sh runs this under TSan: admission (Submit + QosPolicy under
// the mutex), dispatch workers, and the stats reader all race; per-class
// accounting must survive it without losing a request.
TEST(QosServiceTest, ConcurrentMixedClassStormKeepsPerClassAccounting) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", TestGraph()).ok());
  ServeOptions options = SyncOptions();
  options.worker_threads = 2;
  options.max_pending = 4096;  // nothing sheds: accounting must balance
  QueryService service(&registry, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::array<std::atomic<uint64_t>, kNumPriorities> sent{};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<Response>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Priority cls = static_cast<Priority>((t + i) % kNumPriorities);
        auto f = service.Submit(MakeRequest(
            static_cast<NodeId>((t * kPerThread + i) % 32), cls,
            "tenant" + std::to_string(t)));
        ASSERT_TRUE(f.ok()) << f.status().ToString();
        sent[static_cast<int>(cls)].fetch_add(1);
        futures[t].push_back(std::move(*f));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      EXPECT_TRUE(f.get().status.ok());
    }
  }
  service.Shutdown();

  ServiceStats stats = service.stats();
  uint64_t total = 0;
  for (int c = 0; c < kNumPriorities; ++c) {
    EXPECT_EQ(stats.submitted_by_class[c], sent[c].load());
    EXPECT_EQ(stats.completed_by_class[c], sent[c].load());
    EXPECT_EQ(stats.shed_by_class[c], 0u);
    total += stats.submitted_by_class[c];
  }
  EXPECT_EQ(total, stats.submitted);
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace sage::serve
