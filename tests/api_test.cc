// Tests for the uniform application API (apps/registry.h) and the
// validated engine construction path (EngineOptions::Validate /
// Engine::Create).

#include <gtest/gtest.h>

#include <memory>

#include "apps/bfs.h"
#include "apps/kcore.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/registry.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/builder.h"
#include "graph/coo.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "util/status.h"

namespace sage::apps {
namespace {

using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;
using util::StatusCode;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr TestGraph() { return graph::GenerateRmat(10, 8192, 0.57, 0.19, 0.19, 7); }

Csr Symmetrized(const Csr& csr) {
  graph::Coo coo = csr.ToCoo();
  graph::Symmetrize(coo);
  graph::RemoveSelfLoops(coo);
  graph::SortCoo(coo);
  graph::DedupSortedCoo(coo);
  return Csr::FromCoo(coo);
}

// --- CreateProgram factory --------------------------------------------------

TEST(RegistryTest, FactoryCoversEveryRegisteredApp) {
  std::vector<std::string> names = RegisteredApps();
  EXPECT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(AppKnown(name));
    auto program = CreateProgram(name);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ASSERT_NE(*program, nullptr);
    // The program's self-reported name resolves too (e.g. msbfs programs
    // report "multi-source-bfs").
    EXPECT_TRUE(AppKnown((*program)->name()));
  }
}

TEST(RegistryTest, FactoryResolvesProgramSelfNames) {
  auto program = CreateProgram("multi-source-bfs");
  ASSERT_TRUE(program.ok());
  EXPECT_STREQ((*program)->name(), "multi-source-bfs");
}

TEST(RegistryTest, FactoryRejectsUnknownApp) {
  auto program = CreateProgram("triangle-count");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kNotFound);
}

// --- RunApp dispatch --------------------------------------------------------

TEST(RunAppTest, BfsThroughUniformEntryPointMatchesReference) {
  Csr csr = TestGraph();
  auto ref = BfsReference(csr, 1);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  auto program = CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  AppParams params;
  params.sources = {1};
  auto stats = RunApp(engine, **program, params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto& bfs = static_cast<BfsProgram&>(**program);
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]) << "node " << v;
  }
}

TEST(RunAppTest, LegacyWrappersMatchUniformEntryPoint) {
  Csr csr = TestGraph();
  sim::GpuDevice d1(TestSpec()), d2(TestSpec());
  Engine e1(&d1, csr, EngineOptions()), e2(&d2, csr, EngineOptions());

  BfsProgram wrapper_bfs;
  auto s1 = RunBfs(e1, wrapper_bfs, 3);
  ASSERT_TRUE(s1.ok());

  auto program = CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  AppParams params;
  params.sources = {3};
  auto s2 = RunApp(e2, **program, params);
  ASSERT_TRUE(s2.ok());

  EXPECT_EQ(OutputDigest(e1, wrapper_bfs), OutputDigest(e2, **program));
}

TEST(RunAppTest, RejectsUnregisteredProgram) {
  // A program whose name() the registry does not know.
  class MysteryProgram : public BfsProgram {
   public:
    const char* name() const override { return "mystery"; }
  };
  Csr csr = graph::GeneratePath(8);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  MysteryProgram program;
  auto stats = RunApp(engine, program, AppParams{});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(RunAppTest, ValidatesSourceCounts) {
  Csr csr = graph::GeneratePath(8);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());

  auto bfs = CreateProgram("bfs");
  ASSERT_TRUE(bfs.ok());
  AppParams none;  // bfs needs exactly one source
  auto stats = RunApp(engine, **bfs, none);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);

  AppParams two;
  two.sources = {0, 1};
  stats = RunApp(engine, **bfs, two);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);

  AppParams out_of_range;
  out_of_range.sources = {12345};
  stats = RunApp(engine, **bfs, out_of_range);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);

  auto msbfs = CreateProgram("msbfs");
  ASSERT_TRUE(msbfs.ok());
  AppParams too_many;
  for (NodeId v = 0; v < 65; ++v) too_many.sources.push_back(v % 8);
  stats = RunApp(engine, **msbfs, too_many);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunAppTest, OneEngineServesEveryAppInTurn) {
  // The serving layer's engine-reuse pattern: one warm engine, programs
  // rebound per dispatch. (kcore needs a symmetrized graph, so run it on
  // one here so every app shares the engine.)
  Csr csr = Symmetrized(TestGraph());
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  for (const std::string& name : RegisteredApps()) {
    SCOPED_TRACE(name);
    auto program = CreateProgram(name);
    ASSERT_TRUE(program.ok());
    AppParams params;
    params.sources = {0};
    params.iterations = 3;
    params.k = 2;
    auto stats = RunApp(engine, **program, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // Digest must be well-defined for every registered app.
    EXPECT_NE(OutputDigest(engine, **program), 0u);
  }
}

// --- MS-BFS distance recording (the BFS-coalescing contract) ----------------

TEST(MsBfsDistanceTest, RecordedDistancesMatchSoloBfs) {
  Csr csr = TestGraph();
  std::vector<NodeId> sources = {0, 1, 5, 17, 101, 512};

  sim::GpuDevice d1(TestSpec());
  Engine e1(&d1, csr, EngineOptions());
  MultiSourceBfsProgram msbfs;
  msbfs.EnableDistanceRecording();
  auto stats = RunMultiSourceBfs(e1, msbfs, sources);
  ASSERT_TRUE(stats.ok());

  for (size_t i = 0; i < sources.size(); ++i) {
    SCOPED_TRACE("source " + std::to_string(sources[i]));
    sim::GpuDevice d2(TestSpec());
    Engine e2(&d2, csr, EngineOptions());
    BfsProgram solo;
    auto solo_stats = RunBfs(e2, solo, sources[i]);
    ASSERT_TRUE(solo_stats.ok());
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      ASSERT_EQ(msbfs.DistanceOf(static_cast<uint32_t>(i), v),
                solo.DistanceOf(v))
          << "node " << v;
    }
    EXPECT_EQ(MsBfsInstanceDigest(e1, msbfs, static_cast<uint32_t>(i)),
              OutputDigest(e2, solo));
  }
}

TEST(MsBfsDistanceTest, RecordingDoesNotChangeReachability) {
  Csr csr = TestGraph();
  std::vector<NodeId> sources = {0, 9, 33};

  sim::GpuDevice d1(TestSpec()), d2(TestSpec());
  Engine e1(&d1, csr, EngineOptions()), e2(&d2, csr, EngineOptions());
  MultiSourceBfsProgram plain, recording;
  recording.EnableDistanceRecording();
  ASSERT_TRUE(RunMultiSourceBfs(e1, plain, sources).ok());
  ASSERT_TRUE(RunMultiSourceBfs(e2, recording, sources).ok());
  // Reachability-mask digests agree whether or not strict
  // level-synchronous recording is on.
  EXPECT_EQ(OutputDigest(e1, plain), OutputDigest(e2, recording));
}

// --- EngineOptions::Validate ------------------------------------------------

TEST(ValidateTest, AcceptsDefaultOptions) {
  EXPECT_TRUE(EngineOptions().Validate().ok());
}

TEST(ValidateTest, RejectsResidentTilesWithoutTiledPartitioning) {
  EngineOptions options;
  options.tiled_partitioning = false;
  options.resident_tiles = true;
  util::Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("resident tiles require tiled"),
            std::string::npos);
}

TEST(ValidateTest, RejectsUdtWithResidentTiles) {
  EngineOptions options;
  options.udt_split_degree = 8;
  util::Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("incompatible"), std::string::npos);
}

TEST(ValidateTest, RejectsUdtWithSamplingReorder) {
  EngineOptions options;
  options.udt_split_degree = 8;
  options.tiled_partitioning = false;
  options.resident_tiles = false;
  options.sampling_reorder = true;
  util::Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsZeroMinTileSize) {
  EngineOptions options;
  options.min_tile_size = 0;
  util::Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// --- Engine::Create ---------------------------------------------------------

TEST(EngineCreateTest, ReturnsWorkingEngine) {
  Csr csr = TestGraph();
  auto ref = BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  auto engine = core::Engine::Create(&device, csr, EngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  BfsProgram bfs;
  auto stats = RunBfs(**engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]);
  }
}

TEST(EngineCreateTest, RejectsNullDevice) {
  auto engine =
      core::Engine::Create(nullptr, graph::GeneratePath(4), EngineOptions());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineCreateTest, RejectsInvalidOptionsWithoutAborting) {
  // The whole point of Create over the constructor: a bad combo comes back
  // as a Status instead of a SAGE_CHECK abort.
  sim::GpuDevice device(TestSpec());
  EngineOptions options;
  options.tiled_partitioning = false;
  options.resident_tiles = true;
  auto engine = core::Engine::Create(&device, graph::GeneratePath(4), options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sage::apps
