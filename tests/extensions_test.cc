#include <gtest/gtest.h>

#include <cstdio>

#include "apps/bfs.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "apps/pr_delta.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "baselines/subway.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sim/gpu_device.h"

namespace sage {
namespace {

using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

// --- Multi-source BFS -------------------------------------------------------

TEST(MsBfsTest, EachInstanceMatchesSingleSourceReachability) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.55, 0.2, 0.2, 13);
  std::vector<NodeId> sources{0, 7, 42, 100};
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::MultiSourceBfsProgram msbfs;
  auto stats = apps::RunMultiSourceBfs(engine, msbfs, sources);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (uint32_t i = 0; i < sources.size(); ++i) {
    auto ref = apps::BfsReference(csr, sources[i]);
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      ASSERT_EQ(msbfs.Reached(i, v), ref[v] != 0xffffffffu)
          << "instance " << i << " node " << v;
    }
  }
}

TEST(MsBfsTest, SharedTraversalIsCheaperThanSeparateRuns) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.55, 0.2, 0.2, 29);
  std::vector<NodeId> sources;
  for (NodeId v = 0; sources.size() < 16 && v < csr.num_nodes(); v += 37) {
    if (csr.OutDegree(v) > 0) sources.push_back(v);
  }

  sim::GpuDevice d1(TestSpec());
  Engine e1(&d1, csr, EngineOptions());
  apps::MultiSourceBfsProgram msbfs;
  auto shared = apps::RunMultiSourceBfs(e1, msbfs, sources);
  ASSERT_TRUE(shared.ok());

  sim::GpuDevice d2(TestSpec());
  Engine e2(&d2, csr, EngineOptions());
  apps::BfsProgram bfs;
  double separate_seconds = 0;
  for (NodeId src : sources) {
    auto s = apps::RunBfs(e2, bfs, src);
    ASSERT_TRUE(s.ok());
    separate_seconds += s->seconds;
  }
  EXPECT_LT(shared->seconds, separate_seconds);
}

TEST(MsBfsTest, TooManySourcesIsChecked) {
  Csr csr = graph::GeneratePath(100);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::MultiSourceBfsProgram msbfs;
  ASSERT_TRUE(engine.Bind(&msbfs).ok());
  std::vector<NodeId> ok_sources(64, 0);
  msbfs.SetSources(ok_sources);  // exactly the limit: fine
  EXPECT_DEATH(
      {
        std::vector<NodeId> too_many(65, 0);
        msbfs.SetSources(too_many);
      },
      "Check failed");
}

// --- Weighted SSSP edge-array charging ---------------------------------------

TEST(SsspWeightsTest, EdgeArrayTrafficIsCharged) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.5, 0.2, 0.2, 31);
  // Run BFS (no edge arrays) and SSSP (with the weight array) and compare
  // useful bytes: SSSP must read strictly more per traversed edge.
  sim::GpuDevice d1(TestSpec());
  Engine e1(&d1, csr, EngineOptions());
  apps::BfsProgram bfs;
  ASSERT_TRUE(apps::RunBfs(e1, bfs, 0).ok());
  double bfs_bytes = static_cast<double>(d1.mem().device_stats().useful_bytes);

  sim::GpuDevice d2(TestSpec());
  Engine e2(&d2, csr, EngineOptions());
  apps::SsspProgram sssp;
  ASSERT_TRUE(apps::RunSssp(e2, sssp, 0).ok());
  double sssp_bytes =
      static_cast<double>(d2.mem().device_stats().useful_bytes);
  EXPECT_GT(sssp_bytes, bfs_bytes);
}

// --- Subway PageRank ----------------------------------------------------------

TEST(SubwayPrTest, MatchesReference) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.5, 0.2, 0.2, 23);
  sim::GpuDevice device(TestSpec());
  baselines::SubwayPageRank subway(&device, &csr);
  std::vector<double> ranks;
  auto result = subway.Run(4, &ranks);
  auto ref = apps::PageRankReference(csr, 4);
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(ranks[v], ref[v], 1e-9);
  }
  EXPECT_GT(result.stats.seconds, 0.0);
  // Whole-graph preload every iteration.
  EXPECT_GE(result.bytes_transferred,
            4 * csr.num_edges() * sizeof(NodeId));
}

// --- Delta PageRank ----------------------------------------------------------

TEST(DeltaPrTest, ConvergesToPowerIterationFixpoint) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 37);
  auto ref = apps::PageRankReference(csr, 100);  // ~fixpoint
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::DeltaPageRankProgram prd;
  auto stats = apps::RunDeltaPageRank(engine, prd, 1e-11);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(prd.RankOf(v), ref[v], 1e-6) << "node " << v;
  }
}

TEST(DeltaPrTest, FrontierShrinksAsResidualsDrain) {
  // The point of the delta formulation: work adapts. Early iterations are
  // global; once residuals drain, only the nodes still holding mass (the
  // hubs) stay active — unlike the fixed full-graph rounds of the global
  // traversal.
  Csr csr = graph::GenerateRmat(10, 9000, 0.57, 0.19, 0.19, 51);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  std::vector<core::RunStats> trace;
  engine.set_iteration_trace(&trace);
  apps::DeltaPageRankProgram prd;
  ASSERT_TRUE(apps::RunDeltaPageRank(engine, prd, 1e-7).ok());
  ASSERT_GT(trace.size(), 3u);
  // First iteration is the full node set; the last active iterations are
  // a small fraction of it.
  EXPECT_EQ(trace.front().frontier_nodes, csr.num_nodes());
  EXPECT_LT(trace.back().frontier_nodes, csr.num_nodes() / 10);
  // And the shrink is (weakly) sustained: the second half of the run
  // touches fewer edges than the first half.
  uint64_t first_half = 0;
  uint64_t second_half = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    (i < trace.size() / 2 ? first_half : second_half) +=
        trace[i].edges_traversed;
  }
  EXPECT_LT(second_half, first_half);
}

// --- Per-iteration trace -------------------------------------------------------

TEST(IterationTraceTest, TraceMatchesAggregate) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.55, 0.2, 0.2, 61);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  std::vector<core::RunStats> trace;
  engine.set_iteration_trace(&trace);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(trace.size(), stats->iterations);
  uint64_t edges = 0;
  double seconds = 0;
  for (const auto& it : trace) {
    edges += it.edges_traversed;
    seconds += it.seconds;
  }
  EXPECT_EQ(edges, stats->edges_traversed);
  EXPECT_DOUBLE_EQ(seconds, stats->seconds);
}

// --- METIS loader --------------------------------------------------------------

TEST(MetisLoaderTest, ParsesUnweightedGraph) {
  // Triangle 1-2-3 plus pendant 4 attached to 1 (1-indexed METIS ids).
  std::string path = testing::TempDir() + "/test.metis";
  FILE* f = fopen(path.c_str(), "w");
  fputs("% a comment\n4 4\n2 3 4\n1 3\n1 2\n1\n", f);
  fclose(f);
  auto csr = graph::LoadMetisGraph(path);
  ASSERT_TRUE(csr.ok()) << csr.status().ToString();
  EXPECT_EQ(csr->num_nodes(), 4u);
  EXPECT_EQ(csr->num_edges(), 8u);  // 4 undirected edges = 8 arcs
  EXPECT_EQ(csr->OutDegree(0), 3u);
  EXPECT_EQ(csr->Neighbors(3)[0], 0u);
  std::remove(path.c_str());
}

TEST(MetisLoaderTest, RejectsWeightedFormat) {
  std::string path = testing::TempDir() + "/weighted.metis";
  FILE* f = fopen(path.c_str(), "w");
  fputs("2 1 1\n2 5\n1 5\n", f);
  fclose(f);
  auto csr = graph::LoadMetisGraph(path);
  EXPECT_FALSE(csr.ok());
  EXPECT_EQ(csr.status().code(), util::StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

TEST(MetisLoaderTest, RejectsBadNeighborIds) {
  std::string path = testing::TempDir() + "/bad.metis";
  FILE* f = fopen(path.c_str(), "w");
  fputs("2 1\n9\n1\n", f);  // neighbor 9 > n=2
  fclose(f);
  auto csr = graph::LoadMetisGraph(path);
  EXPECT_FALSE(csr.ok());
  EXPECT_EQ(csr.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(MetisLoaderTest, RejectsArcCountMismatch) {
  std::string path = testing::TempDir() + "/mismatch.metis";
  FILE* f = fopen(path.c_str(), "w");
  fputs("2 2\n2\n1\n", f);  // header claims 2 edges, file has 1
  fclose(f);
  auto csr = graph::LoadMetisGraph(path);
  EXPECT_FALSE(csr.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sage
