#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "baselines/ligra.h"
#include "baselines/subway.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "core/udt.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/partitioner.h"
#include "sim/gpu_device.h"

namespace sage {
namespace {

using graph::HashPartition;
using graph::MetisLikePartition;
using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 256 << 10;
  return spec;
}

// --- Baseline engine strategies (B40C, warp-centric, Tigr/UDT) must be
// functionally identical to the reference.

struct StrategyCase {
  const char* label;
  core::ExpandStrategy strategy;
  uint32_t udt_split;
};

class StrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyTest, BfsMatchesReference) {
  const StrategyCase& c = GetParam();
  Csr csr = graph::GenerateRmat(10, 9000, 0.57, 0.19, 0.19, 33);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.strategy = c.strategy;
  opts.tiled_partitioning = false;
  opts.resident_tiles = false;
  opts.udt_split_degree = c.udt_split;
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]) << "node " << v;
  }
  EXPECT_EQ(stats->edges_traversed, [&] {
    uint64_t e = 0;
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      if (ref[v] != apps::BfsProgram::kUnreached) e += csr.OutDegree(v);
    }
    return e;
  }());
}

TEST_P(StrategyTest, PageRankMatchesReference) {
  const StrategyCase& c = GetParam();
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 44);
  auto ref = apps::PageRankReference(csr, 4);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.strategy = c.strategy;
  opts.tiled_partitioning = false;
  opts.resident_tiles = false;
  opts.udt_split_degree = c.udt_split;
  Engine engine(&device, csr, opts);
  apps::PageRankProgram pr;
  auto stats = apps::RunPageRank(engine, pr, 4);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(pr.RankOf(v), ref[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, StrategyTest,
    ::testing::Values(StrategyCase{"b40c", core::ExpandStrategy::kB40c, 0},
                      StrategyCase{"warp", core::ExpandStrategy::kWarpCentric,
                                   0},
                      StrategyCase{"tigr", core::ExpandStrategy::kWarpCentric,
                                   32}),
    [](const auto& name_info) { return std::string(name_info.param.label); });

// --- UDT structural invariants.

TEST(UdtTest, CoversEveryEdgeWithBoundedDegree) {
  Csr csr = graph::GenerateRmat(9, 6000, 0.6, 0.18, 0.18, 2);
  core::UdtLayout udt = core::BuildUdt(csr, 32);
  EXPECT_EQ(udt.virtual_csr.num_edges(), csr.num_edges());
  EXPECT_LE(udt.virtual_csr.MaxOutDegree(), 32u);
  // Group offsets partition the virtual id space.
  EXPECT_EQ(udt.group_offsets.front(), 0u);
  EXPECT_EQ(udt.group_offsets.back(), udt.virtual_nodes());
  // Edge multiset is preserved (u side collapses to real ids).
  std::multiset<std::pair<NodeId, NodeId>> original;
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    for (NodeId v : csr.Neighbors(u)) original.emplace(u, v);
  }
  std::multiset<std::pair<NodeId, NodeId>> transformed;
  for (NodeId vu = 0; vu < udt.virtual_nodes(); ++vu) {
    for (NodeId v : udt.virtual_csr.Neighbors(vu)) {
      transformed.emplace(udt.real_of_virtual[vu], v);
    }
  }
  EXPECT_EQ(original, transformed);
}

TEST(UdtTest, ZeroDegreeNodesGetOneVirtualNode) {
  Csr csr = graph::GenerateStar(10);  // nodes 1..9 have degree 0
  core::UdtLayout udt = core::BuildUdt(csr, 4);
  for (NodeId u = 1; u < 10; ++u) {
    EXPECT_EQ(udt.group_offsets[u + 1] - udt.group_offsets[u], 1u);
  }
  EXPECT_EQ(udt.group_offsets[1] - udt.group_offsets[0], 3u);  // ceil(9/4)
}

// --- Ligra.

TEST(LigraTest, BfsMatchesReference) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.5, 0.2, 0.2, 3);
  baselines::LigraEngine ligra(csr);
  std::vector<uint32_t> dist;
  auto stats = ligra.Bfs(2, &dist);
  auto ref = apps::BfsReference(csr, 2);
  EXPECT_EQ(dist, ref);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(LigraTest, DirectionOptimizationScansLessOnDenseFrontiers) {
  // On a dense small-diameter graph, DO-BFS should scan far fewer edges
  // than degree-sum expansion of every frontier would.
  Csr csr = graph::GenerateCommunity(4096, 60, 512, 0.5, 9);
  baselines::LigraEngine ligra(csr);
  std::vector<uint32_t> dist;
  auto stats = ligra.Bfs(0, &dist);
  uint64_t full_push = 0;
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (dist[v] != 0xffffffffu) full_push += csr.OutDegree(v);
  }
  EXPECT_LT(stats.edges_traversed, full_push);
}

TEST(LigraTest, PageRankMatchesReference) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 12);
  baselines::LigraEngine ligra(csr);
  std::vector<double> pr;
  ligra.PageRank(5, &pr);
  auto ref = apps::PageRankReference(csr, 5);
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(pr[v], ref[v], 1e-9);
  }
}

TEST(LigraTest, BcMatchesReference) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.45, 0.25, 0.2, 9);
  baselines::LigraEngine ligra(csr);
  std::vector<double> delta;
  ligra.Bc(3, &delta);
  auto ref = apps::BrandesReference(csr, 3);
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(delta[v], ref[v], 1e-9);
  }
}

// --- Subway.

TEST(SubwayTest, BfsMatchesReference) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.57, 0.19, 0.19, 21);
  sim::GpuDevice device(TestSpec());
  baselines::SubwayBfs subway(&device, &csr);
  std::vector<uint32_t> dist;
  auto result = subway.Run(0, &dist);
  auto ref = apps::BfsReference(csr, 0);
  EXPECT_EQ(dist, ref);
  EXPECT_GT(result.stats.seconds, 0.0);
  EXPECT_GT(result.bytes_transferred, 0u);
  EXPECT_GT(result.transfer_seconds, 0.0);
}

TEST(SubwayTest, TransfersScaleWithActiveEdges) {
  Csr small = graph::GenerateRmat(8, 1500, 0.5, 0.2, 0.2, 2);
  Csr large = graph::GenerateRmat(10, 12000, 0.5, 0.2, 0.2, 2);
  sim::GpuDevice d1(TestSpec());
  sim::GpuDevice d2(TestSpec());
  auto r1 = baselines::SubwayBfs(&d1, &small).Run(0);
  auto r2 = baselines::SubwayBfs(&d2, &large).Run(0);
  EXPECT_GT(r2.bytes_transferred, r1.bytes_transferred);
}

// --- Partitioners.

TEST(PartitionTest, HashIsBalanced) {
  Csr csr = graph::GenerateRmat(10, 8000, 0.5, 0.2, 0.2, 4);
  auto p = HashPartition(csr, 2);
  EXPECT_LE(p.balance, 1.01);
  EXPECT_TRUE(std::all_of(p.part.begin(), p.part.end(),
                          [](uint32_t x) { return x < 2; }));
}

TEST(PartitionTest, MetisLikeCutsFewerEdgesThanHash) {
  // Strong community structure: a good partitioner must find it.
  Csr csr = graph::GenerateCommunity(4096, 16, 2048, 0.95, 6);
  auto hash = HashPartition(csr, 2);
  auto metis = MetisLikePartition(csr, 2, 1);
  EXPECT_LT(metis.edge_cut, hash.edge_cut / 2);
  EXPECT_LE(metis.balance, 1.15);
  EXPECT_GT(metis.seconds, 0.0);
}

TEST(PartitionTest, FourWayPartition) {
  Csr csr = graph::GenerateCommunity(2048, 12, 512, 0.9, 7);
  auto p = MetisLikePartition(csr, 4, 1);
  std::set<uint32_t> parts(p.part.begin(), p.part.end());
  EXPECT_EQ(parts.size(), 4u);
  EXPECT_LE(p.balance, 1.4);
}

// --- Multi-GPU BFS through the sharded API (core::ShardedEngine).

core::ShardOptions ShardOpts(core::MultiGpuStrategy strategy,
                             graph::PartitionerKind partitioner,
                             uint32_t shards = 2) {
  core::ShardOptions opts;
  opts.num_shards = shards;
  opts.strategy = strategy;
  opts.partitioner = partitioner;
  opts.spec = TestSpec();
  return opts;
}

class MultiGpuTest
    : public ::testing::TestWithParam<core::MultiGpuStrategy> {};

TEST_P(MultiGpuTest, MatchesReferenceWithBothPartitionings) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.57, 0.19, 0.19, 15);
  auto ref = apps::BfsReference(csr, 0);
  for (auto kind : {graph::PartitionerKind::kHash,
                    graph::PartitionerKind::kMetisLike}) {
    auto engine =
        core::ShardedEngine::Create(csr, ShardOpts(GetParam(), kind));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    apps::AppParams params;
    params.sources = {0};
    auto result = (*engine)->Run("bfs", params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      ASSERT_EQ((*engine)->DistanceOf(v), ref[v]) << "node " << v;
    }
    EXPECT_GT(result->stats.seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, MultiGpuTest,
    ::testing::Values(core::MultiGpuStrategy::kSage,
                      core::MultiGpuStrategy::kGunrockLike,
                      core::MultiGpuStrategy::kGrouteLike),
    [](const auto& name_info) {
      return std::string(core::MultiGpuStrategyName(name_info.param));
    });

TEST(MultiGpuTest, InvalidArgs) {
  Csr csr = graph::GeneratePath(4);
  core::ShardOptions opts = ShardOpts(core::MultiGpuStrategy::kSage,
                                      graph::PartitionerKind::kHash);
  opts.num_shards = 0;
  EXPECT_FALSE(core::ShardedEngine::Create(csr, opts).ok());
  opts.num_shards = 2;
  auto engine = core::ShardedEngine::Create(csr, opts);
  ASSERT_TRUE(engine.ok());
  apps::AppParams params;
  params.sources = {99};
  EXPECT_FALSE((*engine)->Run("bfs", params).ok());
}

class MultiGpuPrTest
    : public ::testing::TestWithParam<core::MultiGpuStrategy> {};

TEST_P(MultiGpuPrTest, MatchesReference) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.5, 0.2, 0.2, 19);
  auto ref = apps::PageRankReference(csr, 4);
  for (auto kind : {graph::PartitionerKind::kHash,
                    graph::PartitionerKind::kMetisLike}) {
    auto engine =
        core::ShardedEngine::Create(csr, ShardOpts(GetParam(), kind));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    apps::AppParams params;
    params.iterations = 4;
    auto result = (*engine)->Run("pagerank", params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      ASSERT_NEAR((*engine)->RankOf(v), ref[v], 1e-9) << "node " << v;
    }
    EXPECT_GT(result->stats.seconds, 0.0);
    // The satellite fix: link traffic is reported in bytes, not sectors.
    EXPECT_GT(result->frontier_payload_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, MultiGpuPrTest,
    ::testing::Values(core::MultiGpuStrategy::kSage,
                      core::MultiGpuStrategy::kGunrockLike,
                      core::MultiGpuStrategy::kGrouteLike),
    [](const auto& name_info) {
      return std::string(core::MultiGpuStrategyName(name_info.param));
    });

TEST(MultiGpuTest, MetisReducesCommunication) {
  Csr csr = graph::GenerateCommunity(4096, 16, 2048, 0.95, 8);
  apps::AppParams params;
  params.sources = {0};
  auto hash = core::ShardedEngine::Create(
      csr, ShardOpts(core::MultiGpuStrategy::kSage,
                     graph::PartitionerKind::kHash));
  auto metis = core::ShardedEngine::Create(
      csr, ShardOpts(core::MultiGpuStrategy::kSage,
                     graph::PartitionerKind::kMetisLike));
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(metis.ok());
  auto hash_run = (*hash)->Run("bfs", params);
  auto metis_run = (*metis)->Run("bfs", params);
  ASSERT_TRUE(hash_run.ok());
  ASSERT_TRUE(metis_run.ok());
  EXPECT_LT(metis_run->frontier_payload_bytes,
            hash_run->frontier_payload_bytes);
}

}  // namespace
}  // namespace sage
