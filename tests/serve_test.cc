// Tests for the serving layer: graph registry, warm-engine pooling,
// admission backpressure, batching — and the central contract that a
// coalesced request's answer is bit-identical to running it alone.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"
#include "sim/gpu_device.h"

namespace sage::serve {
namespace {

using graph::Csr;
using graph::NodeId;
using util::StatusCode;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr GraphA() { return graph::GenerateRmat(10, 8192, 0.57, 0.19, 0.19, 7); }
Csr GraphB() { return graph::GenerateUniform(1500, 9000, 3); }

ServeOptions SyncOptions() {
  ServeOptions options;
  options.worker_threads = 0;  // caller drives via ProcessAllPending
  options.device_spec = TestSpec();
  return options;
}

Request MakeRequest(const std::string& graph, const std::string& app,
                    std::vector<NodeId> sources) {
  Request request;
  request.graph = graph;
  request.app = app;
  request.params.sources = std::move(sources);
  return request;
}

/// The request's answer when it runs alone on a fresh engine — the ground
/// truth every batched response must match bit-for-bit.
uint64_t SoloDigest(const Csr& csr, const Request& request) {
  sim::GpuDevice device(TestSpec());
  core::EngineOptions options;
  options.host_threads = 1;
  auto engine = core::Engine::Create(&device, csr, options);
  SAGE_CHECK(engine.ok());
  auto program = apps::CreateProgram(request.app);
  SAGE_CHECK(program.ok());
  auto stats = apps::RunApp(**engine, **program, request.params);
  SAGE_CHECK(stats.ok()) << stats.status().ToString();
  return apps::OutputDigest(**engine, **program);
}

// --- GraphRegistry ----------------------------------------------------------

TEST(GraphRegistryTest, AddFindNames) {
  GraphRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_TRUE(registry.Add("a", GraphA()).ok());
  ASSERT_TRUE(registry.Add("b", GraphB()).ok());
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.Find("a"), nullptr);
  EXPECT_EQ(registry.Find("missing"), nullptr);
  EXPECT_EQ(registry.Names().size(), 2u);
}

TEST(GraphRegistryTest, RejectsEmptyAndDuplicateNames) {
  GraphRegistry registry;
  EXPECT_EQ(registry.Add("", GraphA()).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.Add("a", GraphA()).ok());
  EXPECT_EQ(registry.Add("a", GraphB()).code(),
            StatusCode::kInvalidArgument);
}

// --- Batching: bit-identity -------------------------------------------------

TEST(ServeBatchingTest, CoalescedBfsIsBitIdenticalToSoloRuns) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  std::vector<Request> requests;
  for (NodeId s : {0u, 1u, 5u, 17u, 101u, 512u, 900u}) {
    requests.push_back(MakeRequest("g", "bfs", {s}));
  }

  QueryService service(&registry, SyncOptions());
  std::vector<std::future<Response>> futures;
  for (const Request& request : requests) {
    auto submitted = service.Submit(request);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  service.ProcessAllPending();

  for (size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // All seven queued before the drain, so they ran as one MS-BFS.
    EXPECT_EQ(response.batch_size, requests.size());
    // The contract: batched output == the output of running it alone.
    EXPECT_EQ(response.output_digest, SoloDigest(csr, requests[i]));
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced, requests.size());
  EXPECT_EQ(stats.completed, requests.size());
}

TEST(ServeBatchingTest, BatchingOffMatchesBatchingOn) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  std::vector<Request> requests;
  for (NodeId s : {3u, 8u, 21u, 77u}) {
    requests.push_back(MakeRequest("g", "bfs", {s}));
  }

  auto digests = [&](bool batching) {
    ServeOptions options = SyncOptions();
    options.batching = batching;
    QueryService service(&registry, options);
    std::vector<std::future<Response>> futures;
    for (const Request& request : requests) {
      auto submitted = service.Submit(request);
      EXPECT_TRUE(submitted.ok());
      futures.push_back(std::move(*submitted));
    }
    service.ProcessAllPending();
    std::vector<uint64_t> out;
    for (auto& f : futures) {
      Response r = f.get();
      EXPECT_TRUE(r.status.ok());
      EXPECT_EQ(r.batch_size > 1, batching);
      out.push_back(r.output_digest);
    }
    return out;
  };

  EXPECT_EQ(digests(true), digests(false));
}

TEST(ServeBatchingTest, DuplicatePageRankConfigsDedupe) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphB()).ok());

  Request ten;
  ten.graph = "g";
  ten.app = "pagerank";
  ten.params.iterations = 10;
  Request five = ten;
  five.params.iterations = 5;

  QueryService service(&registry, SyncOptions());
  auto f1 = service.Submit(ten);
  auto f2 = service.Submit(ten);   // same config: dedupes with f1
  auto f3 = service.Submit(five);  // different iterations: runs alone
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  service.ProcessAllPending();

  Response r1 = f1->get(), r2 = f2->get(), r3 = f3->get();
  ASSERT_TRUE(r1.status.ok() && r2.status.ok() && r3.status.ok());
  EXPECT_EQ(r1.batch_size, 2u);
  EXPECT_EQ(r2.batch_size, 2u);
  EXPECT_EQ(r3.batch_size, 1u);
  EXPECT_EQ(r1.output_digest, r2.output_digest);
  EXPECT_NE(r1.output_digest, r3.output_digest);
  EXPECT_EQ(service.stats().batches, 2u);
}

TEST(ServeBatchingTest, SsspNeverCoalesces) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());
  auto f1 = service.Submit(MakeRequest("g", "sssp", {0}));
  auto f2 = service.Submit(MakeRequest("g", "sssp", {1}));
  ASSERT_TRUE(f1.ok() && f2.ok());
  service.ProcessAllPending();
  EXPECT_EQ(f1->get().batch_size, 1u);
  EXPECT_EQ(f2->get().batch_size, 1u);
  EXPECT_EQ(service.stats().batches, 2u);
}

TEST(ServeBatchingTest, MaxBatchCapsCoalescing) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  ServeOptions options = SyncOptions();
  options.max_batch = 3;
  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (NodeId s = 0; s < 7; ++s) {
    auto submitted = service.Submit(MakeRequest("g", "bfs", {s}));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.ProcessAllPending();
  for (auto& f : futures) {
    EXPECT_LE(f.get().batch_size, 3u);
  }
  EXPECT_EQ(service.stats().batches, 3u);  // 3 + 3 + 1
}

// --- Warm-engine pooling ----------------------------------------------------

TEST(ServePoolTest, EnginesAreReusedAcrossRequestsAndGraphs) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("a", GraphA()).ok());
  ASSERT_TRUE(registry.Add("b", GraphB()).ok());

  ServeOptions options = SyncOptions();
  options.batching = false;  // every request is its own dispatch
  QueryService service(&registry, options);

  std::vector<std::future<Response>> futures;
  for (int wave = 0; wave < 3; ++wave) {
    for (NodeId s = 0; s < 4; ++s) {
      auto fa = service.Submit(MakeRequest("a", "bfs", {s}));
      auto fb = service.Submit(MakeRequest("b", "bfs", {s}));
      ASSERT_TRUE(fa.ok() && fb.ok());
      futures.push_back(std::move(*fa));
      futures.push_back(std::move(*fb));
    }
    service.ProcessAllPending();
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, futures.size());
  // 24 dispatches across 2 graphs; the sync dispatcher reuses one warm
  // engine per graph instead of building one per query.
  EXPECT_EQ(stats.engines_created, 2u);
}

// --- Backpressure -----------------------------------------------------------

TEST(ServeBackpressureTest, QueueFullRejectsWithResourceExhausted) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  ServeOptions options = SyncOptions();
  options.max_pending = 2;
  QueryService service(&registry, options);

  auto f1 = service.Submit(MakeRequest("g", "bfs", {0}));
  auto f2 = service.Submit(MakeRequest("g", "bfs", {1}));
  ASSERT_TRUE(f1.ok() && f2.ok());
  auto f3 = service.Submit(MakeRequest("g", "bfs", {2}));
  ASSERT_FALSE(f3.ok());
  EXPECT_EQ(f3.status().code(), StatusCode::kResourceExhausted);

  // Draining frees capacity; the retry is admitted.
  service.ProcessAllPending();
  auto f4 = service.Submit(MakeRequest("g", "bfs", {2}));
  ASSERT_TRUE(f4.ok());
  service.ProcessAllPending();
  EXPECT_TRUE(f4->get().status.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 3u);
}

// --- Request validation -----------------------------------------------------

TEST(ServeValidationTest, RejectsBadRequests) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());

  EXPECT_EQ(service.Submit(MakeRequest("nope", "bfs", {0})).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Submit(MakeRequest("g", "nope", {0})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.Submit(MakeRequest("g", "bfs", {0, 1})).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.Submit(MakeRequest("g", "bfs", {1u << 30})).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Submit(MakeRequest("g", "msbfs", {})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(ServeValidationTest, InvalidEngineOptionsSurfaceOnSubmit) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  ServeOptions options = SyncOptions();
  options.engine_options.tiled_partitioning = false;
  options.engine_options.resident_tiles = true;  // invalid combo
  QueryService service(&registry, options);
  auto submitted = service.Submit(MakeRequest("g", "bfs", {0}));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
}

// --- Threaded dispatch ------------------------------------------------------

TEST(ServeThreadedTest, ConcurrentWorkersMatchSoloDigests) {
  Csr csr_a = GraphA();
  Csr csr_b = GraphB();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("a", GraphA()).ok());
  ASSERT_TRUE(registry.Add("b", GraphB()).ok());

  ServeOptions options;
  options.worker_threads = 3;
  options.engines_per_graph = 2;
  options.device_spec = TestSpec();

  std::vector<Request> requests;
  for (NodeId s = 0; s < 8; ++s) {
    requests.push_back(MakeRequest("a", "bfs", {s}));
    requests.push_back(MakeRequest("b", "bfs", {s}));
  }
  Request pr;
  pr.graph = "a";
  pr.app = "pagerank";
  pr.params.iterations = 4;
  requests.push_back(pr);
  requests.push_back(pr);
  requests.push_back(MakeRequest("b", "sssp", {2}));

  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (const Request& request : requests) {
    auto submitted = service.Submit(request);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    const Csr& csr = requests[i].graph == "a" ? csr_a : csr_b;
    // Whatever batches the race produced, every answer matches its solo
    // run bit-for-bit.
    EXPECT_EQ(response.output_digest, SoloDigest(csr, requests[i]));
  }
  service.Shutdown();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_LE(stats.engines_created, 4u);  // <= engines_per_graph per graph
}

// --- Shutdown ---------------------------------------------------------------

TEST(ServeShutdownTest, ShutdownFailsQueuedRequestsAndRejectsNewOnes) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());
  auto pending = service.Submit(MakeRequest("g", "bfs", {0}));
  ASSERT_TRUE(pending.ok());
  service.Shutdown();
  // The queued request's promise is fulfilled with an error, not dropped.
  Response response = pending->get();
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  // New submissions are refused.
  EXPECT_EQ(service.Submit(MakeRequest("g", "bfs", {1})).status().code(),
            StatusCode::kFailedPrecondition);
  // Idempotent.
  service.Shutdown();
}

// --- SageScope: request timing, latency percentiles, trace export ----------

TEST(ServeScopeTest, ResponseCarriesTiming) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());
  auto f1 = service.Submit(MakeRequest("g", "bfs", {0}));
  auto f2 = service.Submit(MakeRequest("g", "bfs", {1}));
  ASSERT_TRUE(f1.ok() && f2.ok());
  service.ProcessAllPending();
  for (auto* f : {&*f1, &*f2}) {
    Response r = f->get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_GE(r.timing.queue_wait_ms, 0.0);
    EXPECT_GE(r.timing.coalesce_ms, 0.0);
    EXPECT_GT(r.timing.run_ms, 0.0);
    // total covers every segment of the request's path.
    EXPECT_GE(r.timing.total_ms, r.timing.run_ms);
    EXPECT_GE(r.timing.total_ms, r.timing.queue_wait_ms);
    EXPECT_EQ(r.timing.retries, 0u);
  }
  // Failures carry timing too.
  Request bad = MakeRequest("g", "bfs", {0});
  bad.cancel = std::make_shared<core::CancellationToken>();
  bad.cancel->Cancel();
  auto f3 = service.Submit(std::move(bad));
  ASSERT_TRUE(f3.ok());
  service.ProcessAllPending();
  Response r3 = f3->get();
  EXPECT_EQ(r3.status.code(), StatusCode::kAborted);
  EXPECT_GT(r3.timing.total_ms, 0.0);
}

TEST(ServeScopeTest, LatencyPercentilesFromHistogram) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  ServeOptions options = SyncOptions();
  options.batching = false;
  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (NodeId s = 0; s < 8; ++s) {
    auto f = service.Submit(MakeRequest("g", "bfs", {s}));
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  service.ProcessAllPending();
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.latency_samples, stats.completed);
  EXPECT_EQ(stats.latency_samples, 8u);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
  // The registry renders the same counters as JSON.
  std::string json = service.metrics().ToJson();
  EXPECT_NE(json.find("\"serve.completed\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.latency_total_us\""), std::string::npos);
}

TEST(ServeScopeTest, TraceRecordsSpansDispatchesAndKernels) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  util::TraceLog trace;
  ServeOptions options = SyncOptions();
  options.trace = &trace;
  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (NodeId s = 0; s < 3; ++s) {
    auto f = service.Submit(MakeRequest("g", "bfs", {s}));
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  service.ProcessAllPending();
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());
  size_t begins = 0, ends = 0, dispatches = 0, kernels = 0;
  for (const util::TraceEvent& ev : trace.snapshot()) {
    if (ev.ph == 'b') ++begins;
    if (ev.ph == 'e') ++ends;
    if (ev.ph == 'X' && ev.cat == "dispatch") ++dispatches;
    if (ev.ph == 'X' && ev.cat == "kernel") ++kernels;
  }
  EXPECT_EQ(begins, 3u);  // one async span per request
  EXPECT_EQ(ends, 3u);
  EXPECT_GE(dispatches, 1u);  // the 3 BFS coalesce into one dispatch
  EXPECT_GT(kernels, 0u);     // warm-engine timelines are on under tracing
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("sage-serve (wall)"), std::string::npos);
}

// TSan target (run_checks.sh): stats(), metrics().ToJson(), and Submit all
// race against the dispatch workers; none of it may data-race.
TEST(ServeScopeTest, ConcurrentStatsAndMetricsExportAreClean) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  ServeOptions options = SyncOptions();
  options.worker_threads = 2;
  QueryService service(&registry, options);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      ServiceStats stats = service.stats();
      EXPECT_LE(stats.completed, stats.submitted);
      std::string json = service.metrics().ToJson();
      EXPECT_FALSE(json.empty());
    }
  });
  std::vector<std::future<Response>> futures;
  for (int round = 0; round < 10; ++round) {
    for (NodeId s = 0; s < 4; ++s) {
      auto f = service.Submit(MakeRequest("g", "bfs", {s}));
      if (f.ok()) futures.push_back(std::move(*f));
    }
  }
  for (auto& f : futures) f.get();
  done.store(true);
  reader.join();
  service.Shutdown();
  EXPECT_EQ(service.stats().completed, futures.size());
}

}  // namespace
}  // namespace sage::serve
