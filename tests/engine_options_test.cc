#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/reference.h"
#include "core/engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "util/random.h"

namespace sage::core {
namespace {

using graph::Csr;
using graph::NodeId;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

// --- Invalid option combinations are rejected loudly ------------------------

TEST(EngineOptionsDeathTest, ResidentWithoutTiledAborts) {
  Csr csr = graph::GeneratePath(4);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.tiled_partitioning = false;
  opts.resident_tiles = true;
  EXPECT_DEATH({ Engine engine(&device, csr, opts); },
               "resident tiles require tiled partitioning");
}

TEST(EngineOptionsDeathTest, UdtWithReorderingAborts) {
  Csr csr = graph::GeneratePath(4);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.udt_split_degree = 8;
  opts.tiled_partitioning = false;
  opts.resident_tiles = false;
  opts.sampling_reorder = true;
  EXPECT_DEATH({ Engine engine(&device, csr, opts); }, "incompatible");
}

// --- B40C bucket coverage: graphs that exercise exactly one bucket ----------

TEST(B40cBucketsTest, BlockBucketOnly) {
  // One super node: lands in the block-sized bucket.
  Csr csr = graph::GenerateStar(2000);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.strategy = ExpandStrategy::kB40c;
  opts.tiled_partitioning = false;
  opts.resident_tiles = false;
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]);
  }
}

TEST(B40cBucketsTest, WarpBucketOnly) {
  // Uniform degree 48: above warp size, below block size.
  Csr csr = graph::GenerateCommunity(512, 48, 512, 1.0, 3);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.strategy = ExpandStrategy::kB40c;
  opts.tiled_partitioning = false;
  opts.resident_tiles = false;
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]);
  }
}

TEST(B40cBucketsTest, ScanBucketOnly) {
  // Grid: every degree <= 4, all edges go through the scan-gather path.
  Csr csr = graph::GenerateGrid2d(30, 30);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.strategy = ExpandStrategy::kB40c;
  opts.tiled_partitioning = false;
  opts.resident_tiles = false;
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]);
  }
}

// --- Min-tile sweep: functional invariance, monotone scheduling cost ---------

class MinTileTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MinTileTest, ResultsInvariantAcrossTileSizes) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.57, 0.19, 0.19, 41);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.min_tile_size = GetParam();
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinTileTest,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

// --- Randomized property sweep: every config agrees with the oracle ----------

TEST(PropertySweepTest, RandomGraphsRandomConfigs) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    uint32_t scale = 7 + rng.UniformU32(3);
    uint64_t edges = 500 + rng.UniformU64(4000);
    double a = 0.3 + 0.35 * rng.UniformDouble();
    Csr csr = graph::GenerateRmat(scale, edges, a, 0.2, 0.2, rng.Next());
    NodeId source = rng.UniformU32(csr.num_nodes());
    auto ref = apps::BfsReference(csr, source);

    EngineOptions opts;
    opts.tiled_partitioning = rng.Bernoulli(0.7);
    opts.resident_tiles = opts.tiled_partitioning && rng.Bernoulli(0.6);
    opts.tile_alignment = rng.Bernoulli(0.5);
    opts.min_tile_size = 4u << rng.UniformU32(3);
    opts.adjacency_on_host = rng.Bernoulli(0.3);
    if (rng.Bernoulli(0.3)) {
      opts.sampling_reorder = true;
      opts.sampling_threshold_edges = 500 + rng.UniformU64(2000);
    }

    sim::GpuDevice device(TestSpec());
    Engine engine(&device, csr, opts);
    apps::BfsProgram bfs;
    auto stats = apps::RunBfs(engine, bfs, source);
    ASSERT_TRUE(stats.ok()) << "trial " << trial;
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      ASSERT_EQ(bfs.DistanceOf(v), ref[v])
          << "trial " << trial << " node " << v;
    }
  }
}

}  // namespace
}  // namespace sage::core
