// SageVet: pre-flight static analysis + behavioral probing (DESIGN.md
// "Static verification"). Proves that every registered app passes vetting
// at every level, that deliberately lying programs are flagged unsound,
// and that corrupt CSRs are rejected at every entry point (ValidateCsr,
// GraphRegistry::Add, Engine::Create).

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/registry.h"
#include "check/vet.h"
#include "core/engine.h"
#include "core/filter.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "serve/graph_registry.h"
#include "serve/service.h"
#include "sim/gpu_device.h"
#include "util/status.h"

namespace sage {
namespace {

using check::VetLevel;
using check::VetReport;
using check::VetSeverity;
using graph::NodeId;

bool HasFinding(const VetReport& report, const std::string& code) {
  return std::any_of(
      report.findings.begin(), report.findings.end(),
      [&code](const check::VetFinding& f) { return f.code == code; });
}

std::string FindingCodes(const VetReport& report) {
  std::string out;
  for (const check::VetFinding& f : report.findings) {
    out += f.code;
    out += " ";
  }
  return out;
}

graph::Csr SmallValidGraph() {
  graph::Coo coo;
  coo.num_nodes = 4;
  auto edge = [&coo](NodeId a, NodeId b) {
    coo.u.push_back(a);
    coo.v.push_back(b);
    coo.u.push_back(b);
    coo.v.push_back(a);
  };
  edge(0, 1);
  edge(1, 2);
  edge(2, 3);
  return graph::Csr::FromCoo(coo);
}

check::ProbeHooks SimpleRunHooks() {
  check::ProbeHooks hooks;
  hooks.run = [](core::Engine& engine, core::FilterProgram&)
      -> util::StatusOr<core::RunStats> {
    const NodeId sources[] = {0};
    return engine.Run(std::span<const NodeId>(sources, 1));
  };
  return hooks;
}

// ---------------------------------------------------------------------------
// Lying programs. Each one makes a declaration that contradicts what it
// actually does; SageVet must catch all of them.

/// Declares a read-only footprint but mutates per-node state (and a call
/// counter) in Filter — the classic undeclared neighbor write: the stores
/// are invisible to the cost model and to SageCheck.
class LyingWriterProgram : public core::FilterProgram {
 public:
  void Bind(core::Engine* engine) override {
    visited_.assign(engine->csr().num_nodes(), 0);
    calls_ = 0;
    buf_ = engine->RegisterAttribute("liar.visited", 1);
    footprint_ = core::Footprint{};
    footprint_.neighbor_reads = {&buf_};
  }
  bool Filter(NodeId frontier, NodeId neighbor) override {
    (void)frontier;
    ++calls_;  // undeclared: every call mutates state
    if (visited_[neighbor]) return false;
    visited_[neighbor] = 1;  // undeclared neighbor write
    return true;
  }
  bool SaveState(std::vector<uint8_t>* out) const override {
    out->insert(out->end(), visited_.begin(), visited_.end());
    for (int shift = 0; shift < 64; shift += 8) {
      out->push_back(static_cast<uint8_t>(calls_ >> shift));
    }
    return true;
  }
  bool RestoreState(std::span<const uint8_t> bytes) override {
    if (bytes.size() != visited_.size() + 8) return false;
    std::copy(bytes.begin(), bytes.begin() + visited_.size(),
              visited_.begin());
    calls_ = 0;
    for (int i = 0; i < 8; ++i) {
      calls_ |= static_cast<uint64_t>(bytes[visited_.size() + i]) << (8 * i);
    }
    return true;
  }
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "lying-writer"; }

 private:
  core::Footprint footprint_;
  sim::Buffer buf_;
  std::vector<uint8_t> visited_;
  uint64_t calls_ = 0;
};

/// Declares its neighbor writes value-idempotent (the benign-race "no
/// atomics needed" class) but actually accumulates — two concurrent writers
/// would not store the same value, so the declaration hides a real race.
class FalseIdempotenceProgram : public core::FilterProgram {
 public:
  void Bind(core::Engine* engine) override {
    sum_.assign(engine->csr().num_nodes(), 0);
    seen_.assign(engine->csr().num_nodes(), 0);
    buf_ = engine->RegisterAttribute("falsei.sum", sizeof(uint32_t));
    footprint_ = core::Footprint{};
    footprint_.neighbor_reads = {&buf_};
    footprint_.neighbor_writes = {&buf_};
    footprint_.idempotent_neighbor_writes = true;  // a lie: += accumulates
  }
  bool Filter(NodeId frontier, NodeId neighbor) override {
    (void)frontier;
    sum_[neighbor] += 1;  // not idempotent: repeating changes the value
    if (seen_[neighbor]) return false;
    seen_[neighbor] = 1;
    return true;
  }
  bool SaveState(std::vector<uint8_t>* out) const override {
    for (uint32_t v : sum_) {
      for (int shift = 0; shift < 32; shift += 8) {
        out->push_back(static_cast<uint8_t>(v >> shift));
      }
    }
    return true;
  }
  bool RestoreState(std::span<const uint8_t> bytes) override {
    if (bytes.size() != sum_.size() * 4) return false;
    for (size_t i = 0; i < sum_.size(); ++i) {
      uint32_t v = 0;
      for (int b = 0; b < 4; ++b) {
        v |= static_cast<uint32_t>(bytes[i * 4 + b]) << (8 * b);
      }
      sum_[i] = v;
    }
    return true;
  }
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "false-idempotence"; }

 private:
  core::Footprint footprint_;
  sim::Buffer buf_;
  std::vector<uint32_t> sum_;
  std::vector<uint8_t> seen_;
};

/// Lists a buffer that was never registered with the engine's memory
/// system — the footprint charges against an address range the simulator
/// knows nothing about.
class PhantomBufferProgram : public core::FilterProgram {
 public:
  void Bind(core::Engine* engine) override {
    (void)engine;
    phantom_.id = 4242;  // never came from RegisterAttribute
    phantom_.num_elems = 1u << 20;
    phantom_.name = "phantom.buf";
    footprint_ = core::Footprint{};
    footprint_.neighbor_reads = {&phantom_};
  }
  bool Filter(NodeId, NodeId) override { return false; }
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "phantom-buffer"; }

 private:
  core::Footprint footprint_;
  sim::Buffer phantom_;
};

// ---------------------------------------------------------------------------
// ValidateCsr: the single structural-validation authority.

TEST(ValidateCsr, AcceptsWellFormedGraphs) {
  EXPECT_TRUE(graph::ValidateCsr(SmallValidGraph()).ok());
  EXPECT_TRUE(graph::ValidateCsr(check::MakeProbeGraph()).ok());
  EXPECT_TRUE(graph::ValidateCsr(graph::Csr()).ok());  // empty graph
}

TEST(ValidateCsr, RejectsNonMonotoneOffsets) {
  graph::Csr csr = SmallValidGraph();
  std::vector<graph::EdgeId>& offsets = csr.mutable_u_offsets();
  offsets[1] = offsets[2] + 3;  // decreasing: degree would be negative
  util::Status status = graph::ValidateCsr(csr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kCorruption);
}

TEST(ValidateCsr, RejectsTerminalOffsetMismatch) {
  graph::Csr csr = SmallValidGraph();
  csr.mutable_v().pop_back();  // terminal offset now exceeds edge storage
  util::Status status = graph::ValidateCsr(csr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kCorruption);
}

TEST(ValidateCsr, RejectsOutOfRangeTargets) {
  graph::Csr csr = SmallValidGraph();
  csr.mutable_v()[0] = csr.num_nodes() + 7;
  util::Status status = graph::ValidateCsr(csr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kCorruption);
}

TEST(ValidateCsr, RejectsWrongOffsetCount) {
  graph::Csr csr = SmallValidGraph();
  csr.mutable_u_offsets().pop_back();
  util::Status status = graph::ValidateCsr(csr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Corrupt graphs are rejected at every loading entry point.

TEST(VetIntegration, GraphRegistryRejectsCorruptCsr) {
  serve::GraphRegistry registry;
  EXPECT_TRUE(registry.Add("good", SmallValidGraph()).ok());

  graph::Csr non_monotone = SmallValidGraph();
  non_monotone.mutable_u_offsets()[1] =
      non_monotone.mutable_u_offsets()[2] + 5;
  util::Status status = registry.Add("bad-offsets", std::move(non_monotone));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);

  graph::Csr bad_target = SmallValidGraph();
  bad_target.mutable_v()[0] = 1000;
  status = registry.Add("bad-target", std::move(bad_target));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);

  // Rejected graphs were not registered.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Find("bad-offsets"), nullptr);
  EXPECT_EQ(registry.Find("bad-target"), nullptr);
}

TEST(VetIntegration, EngineCreateRejectsCorruptCsr) {
  graph::Csr corrupt = SmallValidGraph();
  corrupt.mutable_v()[0] = 999;

  sim::GpuDevice device{sim::DeviceSpec{}};
  core::EngineOptions options;  // vet_level defaults to kStatic
  auto engine = core::Engine::Create(&device, corrupt, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(VetIntegration, EngineCreateAcceptsValidCsrAtEveryLevel) {
  for (VetLevel level :
       {VetLevel::kOff, VetLevel::kStatic, VetLevel::kProbe}) {
    sim::GpuDevice device{sim::DeviceSpec{}};
    core::EngineOptions options;
    options.vet_level = level;
    auto engine = core::Engine::Create(&device, SmallValidGraph(), options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// The probe graph itself.

TEST(ProbeGraph, IsValidSymmetricAndShaped) {
  graph::Csr probe = check::MakeProbeGraph();
  EXPECT_TRUE(graph::ValidateCsr(probe).ok());
  EXPECT_EQ(probe.num_nodes(), 24u);
  EXPECT_GT(probe.OutDegree(0), 4u);     // the hub
  EXPECT_GT(probe.OutDegree(4), 1u);     // self-loop adds a neighbor
  // The self-loop is present: node 4 lists itself.
  auto neighbors = probe.Neighbors(4);
  EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(), NodeId{4}) !=
              neighbors.end());
  // Symmetric: every edge (u, v) has its reverse.
  for (NodeId u = 0; u < probe.num_nodes(); ++u) {
    for (NodeId v : probe.Neighbors(u)) {
      auto back = probe.Neighbors(v);
      EXPECT_TRUE(std::find(back.begin(), back.end(), u) != back.end())
          << "missing reverse edge (" << v << ", " << u << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Every registered app passes vetting at every level.

TEST(VetApps, AllRegisteredAppsAreSoundAtEveryLevel) {
  for (const std::string& app : apps::RegisteredApps()) {
    for (VetLevel level :
         {VetLevel::kOff, VetLevel::kStatic, VetLevel::kProbe}) {
      auto report = apps::VetApp(app, level, core::EngineOptions{});
      ASSERT_TRUE(report.ok())
          << app << " at " << check::VetLevelName(level) << ": "
          << report.status().ToString();
      EXPECT_FALSE(report->unsound())
          << app << " at " << check::VetLevelName(level) << ": "
          << report->ToText();
      EXPECT_TRUE(report->ToStatus().ok());
      if (level == VetLevel::kProbe) {
        EXPECT_TRUE(report->probe_ran) << report->ToText();
        EXPECT_GT(report->probe_edges, 0u) << app;
      }
    }
  }
}

TEST(VetApps, BfsIsCompletelyClean) {
  auto report =
      apps::VetApp("bfs", VetLevel::kProbe, core::EngineOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_STREQ(report->verdict(), "clean") << report->ToText();
  EXPECT_TRUE(report->checkpoint_supported);
}

TEST(VetApps, UnknownAppIsNotFound) {
  auto report = apps::VetApp("no-such-app", VetLevel::kStatic,
                             core::EngineOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kNotFound);
}

TEST(VetApps, ReportsSerializeToJson) {
  auto report =
      apps::VetApp("pagerank", VetLevel::kProbe, core::EngineOptions{});
  ASSERT_TRUE(report.ok());
  std::string json = report->ToJson();
  EXPECT_NE(json.find("\"program\":\"pagerank\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"level\":\"probe\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"verdict\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"findings\":["), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Lying programs are flagged unsound.

TEST(VetLiars, UndeclaredWritesAreUnsound) {
  LyingWriterProgram liar;
  auto report = check::VetProgram(liar, VetLevel::kProbe,
                                  core::EngineOptions{}, SimpleRunHooks());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->unsound()) << report->ToText();
  EXPECT_TRUE(HasFinding(*report, "undeclared-state-write"))
      << FindingCodes(*report);
  EXPECT_STREQ(report->verdict(), "unsound");
  EXPECT_EQ(report->ToStatus().code(), util::StatusCode::kFailedPrecondition);
}

TEST(VetLiars, FalseIdempotenceIsUnsound) {
  FalseIdempotenceProgram liar;
  auto report = check::VetProgram(liar, VetLevel::kProbe,
                                  core::EngineOptions{}, SimpleRunHooks());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->unsound()) << report->ToText();
  EXPECT_TRUE(HasFinding(*report, "false-idempotence"))
      << FindingCodes(*report);
}

TEST(VetLiars, PhantomBufferIsUnsoundAtStaticLevel) {
  PhantomBufferProgram liar;
  auto report = check::VetProgram(liar, VetLevel::kStatic,
                                  core::EngineOptions{}, check::ProbeHooks{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->unsound()) << report->ToText();
  EXPECT_TRUE(HasFinding(*report, "buffer-unregistered"))
      << FindingCodes(*report);
}

TEST(VetLiars, OffLevelSkipsEverything) {
  PhantomBufferProgram liar;
  auto report = check::VetProgram(liar, VetLevel::kOff,
                                  core::EngineOptions{}, check::ProbeHooks{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->findings.empty());
  EXPECT_STREQ(report->verdict(), "clean");
}

// ---------------------------------------------------------------------------
// Vet level parsing.

TEST(VetLevel, ParsesAndRejects) {
  EXPECT_EQ(*check::ParseVetLevel("off"), VetLevel::kOff);
  EXPECT_EQ(*check::ParseVetLevel("static"), VetLevel::kStatic);
  EXPECT_EQ(*check::ParseVetLevel("probe"), VetLevel::kProbe);
  EXPECT_FALSE(check::ParseVetLevel("bogus").ok());
  EXPECT_FALSE(check::ParseVetLevel("").ok());
}

// ---------------------------------------------------------------------------
// Serve admission: requests for vetted apps pass through.

TEST(VetServe, AdmissionAcceptsVettedApps) {
  serve::GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", SmallValidGraph()).ok());
  serve::ServeOptions options;
  options.worker_threads = 0;  // synchronous drain
  options.engine_options.host_threads = 1;
  options.engine_options.vet_level = VetLevel::kProbe;
  serve::QueryService service(&registry, options);

  serve::Request request;
  request.graph = "g";
  request.app = "bfs";
  request.params.sources = {0};
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  service.ProcessAllPending();
  serve::Response response = submitted->get();
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  service.Shutdown();
}

}  // namespace
}  // namespace sage
