// Regression net for the *qualitative* reproduction claims: the paper's
// headline orderings must hold on the tiny dataset scale so a cost-model
// or scheduling regression is caught by ctest, not only by eyeballing the
// benches. Thresholds are deliberately loose — shape, not magnitude.

#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/pagerank.h"
#include "core/sharded_engine.h"
#include "graph/partitioner.h"
#include "baselines/subway.h"
#include "core/engine.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"

namespace sage {
namespace {

using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;

// The bench device, shrunk L2 to keep the cache-pressure regime.
sim::DeviceSpec ShapeSpec() {
  sim::DeviceSpec spec;
  spec.l2_bytes = 16 << 10;
  return spec;
}

double Bfs(const Csr& csr, const EngineOptions& opts, NodeId source = 0) {
  sim::GpuDevice device(ShapeSpec());
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, source);
  EXPECT_TRUE(stats.ok());
  return stats->GTeps();
}

EngineOptions Base() {
  EngineOptions o;
  o.tiled_partitioning = false;
  o.resident_tiles = false;
  return o;
}
EngineOptions Tp() {
  EngineOptions o;
  o.resident_tiles = false;
  return o;
}
EngineOptions Full() { return EngineOptions(); }

// Figure 10's ordering: Base < +TP < +TP+RTS on the skewed social graph.
TEST(ShapeTest, AblationOrderingOnSkewedGraph) {
  Csr csr = graph::MakeDataset(graph::DatasetId::kTwitters,
                               graph::DatasetScale::kTiny);
  double base = Bfs(csr, Base());
  double tp = Bfs(csr, Tp());
  double full = Bfs(csr, Full());
  EXPECT_GT(tp, base);
  EXPECT_GT(full, tp);
}

// Section 7.2: Tiled Partitioning matters *more* on the skewed graph than
// on the regular one (relative gain ordering).
TEST(ShapeTest, TpGainLargerOnSkewedThanRegular) {
  Csr twitter = graph::MakeDataset(graph::DatasetId::kTwitters,
                                   graph::DatasetScale::kTiny);
  Csr brain = graph::MakeDataset(graph::DatasetId::kBrains,
                                 graph::DatasetScale::kTiny);
  double twitter_gain = Bfs(twitter, Tp()) / Bfs(twitter, Base());
  double brain_gain = Bfs(brain, Tp()) / Bfs(brain, Base());
  EXPECT_GT(twitter_gain, brain_gain);
}

// Figure 7's Tigr column: UDT helps on the skewed social graph relative
// to the same scheduling without it, and the advantage shrinks (or
// reverses) on the naturally regular graph.
TEST(ShapeTest, TigrHelpsSkewHurtsRegular) {
  EngineOptions warp;
  warp.strategy = core::ExpandStrategy::kWarpCentric;
  warp.tiled_partitioning = false;
  warp.resident_tiles = false;
  EngineOptions tigr = warp;
  tigr.udt_split_degree = 32;

  Csr twitter = graph::MakeDataset(graph::DatasetId::kTwitters,
                                   graph::DatasetScale::kTiny);
  Csr brain = graph::MakeDataset(graph::DatasetId::kBrains,
                                 graph::DatasetScale::kTiny);
  double twitter_ratio = Bfs(twitter, tigr) / Bfs(twitter, warp);
  double brain_ratio = Bfs(brain, tigr) / Bfs(brain, warp);
  EXPECT_GT(twitter_ratio, 1.0);  // UDT pays off on super nodes
  EXPECT_GT(twitter_ratio, brain_ratio);
}

// Figure 8: out-of-core SAGE beats both on-demand scattered access and
// Subway, and its link efficiency beats on-demand's.
TEST(ShapeTest, OutOfCoreOrdering) {
  Csr csr = graph::MakeDataset(graph::DatasetId::kTwitters,
                               graph::DatasetScale::kTiny);
  EngineOptions naive = Base();
  naive.adjacency_on_host = true;
  EngineOptions sage_ooc = Full();
  sage_ooc.adjacency_on_host = true;

  double on_demand = Bfs(csr, naive);
  double sage = Bfs(csr, sage_ooc);

  sim::GpuDevice sdev(ShapeSpec());
  baselines::SubwayBfs subway(&sdev, &csr);
  double sub = subway.Run(0).stats.GTeps();

  EXPECT_GT(sage, sub);
  EXPECT_GT(sub, on_demand);
}

// Figure 9: with a community-structured graph, metis-like partitioning
// moves less data than hash partitioning.
TEST(ShapeTest, MetisBeatsHashOnCommunities) {
  Csr csr = graph::GenerateCommunity(2048, 16, 1024, 0.95, 5);
  auto run = [&](graph::PartitionerKind kind) {
    core::ShardOptions opts;
    opts.num_shards = 2;
    opts.strategy = core::MultiGpuStrategy::kGunrockLike;
    opts.partitioner = kind;
    opts.spec = ShapeSpec();
    auto engine = core::ShardedEngine::Create(csr, opts);
    SAGE_CHECK(engine.ok()) << engine.status().ToString();
    apps::AppParams params;
    params.sources = {0};
    auto result = (*engine)->Run("bfs", params);
    SAGE_CHECK(result.ok()) << result.status().ToString();
    return *result;
  };
  core::ShardedRunStats hash = run(graph::PartitionerKind::kHash);
  core::ShardedRunStats metis = run(graph::PartitionerKind::kMetisLike);
  EXPECT_LT(metis.frontier_payload_bytes, hash.frontier_payload_bytes);
  auto gteps = [](const core::ShardedRunStats& r) {
    double t = r.stats.seconds + r.comm_seconds;
    return t <= 0 ? 0.0 : static_cast<double>(r.stats.edges_traversed) / t / 1e9;
  };
  EXPECT_GE(gteps(metis), gteps(hash) * 0.8);
}

// Table 3's ordering: TP overhead fraction is largest for BFS (local
// traversal with small frontiers re-scheduled every level) and smaller
// for the global-traversal PR.
TEST(ShapeTest, TpOverheadFractionBfsAbovePr) {
  Csr csr = graph::MakeDataset(graph::DatasetId::kTwitters,
                               graph::DatasetScale::kTiny);
  sim::GpuDevice d1(ShapeSpec());
  Engine e1(&d1, csr, Full());
  apps::BfsProgram bfs;
  auto b = apps::RunBfs(e1, bfs, 0);
  ASSERT_TRUE(b.ok());
  double bfs_frac = b->tp_overhead_seconds / b->seconds;

  sim::GpuDevice d2(ShapeSpec());
  Engine e2(&d2, csr, Full());
  apps::PageRankProgram pr;
  auto p = apps::RunPageRank(e2, pr, 5);
  ASSERT_TRUE(p.ok());
  double pr_frac = p->tp_overhead_seconds / p->seconds;
  EXPECT_GT(bfs_frac, pr_frac);
}

}  // namespace
}  // namespace sage
