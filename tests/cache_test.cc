// SageCache tests (DESIGN.md §12): the multi-section LRU tile cache, the
// engine's out-of-core paging mode (budget-triggered, bit-identical
// outputs), the degree-ranked static pre-fill, and the serve tier's
// registry memory budget with warm-pool eviction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"
#include "sim/gpu_device.h"
#include "sim/tile_cache.h"

namespace sage {
namespace {

using core::EngineOptions;
using core::ExpandStrategy;
using graph::Csr;
using sim::HostTileCache;
using util::StatusCode;

// --- HostTileCache (segmented LRU) ------------------------------------------

HostTileCache::Config SmallConfig(uint64_t tiles, double protected_fraction) {
  HostTileCache::Config config;
  config.sectors_per_tile = 8;
  config.sector_bytes = 32;
  config.capacity_bytes = tiles * 8 * 32;
  config.protected_fraction = protected_fraction;
  return config;
}

/// One sector in tile `t` (its first sector).
uint64_t Sector(uint64_t t) { return t * 8; }

/// Accesses tile `t` (one sector) and returns the number of hit sectors.
uint64_t Touch(HostTileCache* cache, uint64_t t) {
  std::vector<uint64_t> fetch;
  const uint64_t sectors[] = {Sector(t)};
  return cache->Access(sectors, &fetch);
}

TEST(HostTileCacheTest, MissAdmitsAndExpandsToAlignedTile) {
  HostTileCache cache;
  cache.Configure(SmallConfig(4, 0.5));
  ASSERT_TRUE(cache.enabled());
  EXPECT_EQ(cache.capacity_tiles(), 4u);

  std::vector<uint64_t> fetch;
  const uint64_t sectors[] = {17};  // tile 2, mid-tile sector
  EXPECT_EQ(cache.Access(sectors, &fetch), 0u);
  // The miss pages the whole aligned tile, not just the touched sector.
  ASSERT_EQ(fetch.size(), 8u);
  for (uint64_t s = 0; s < 8; ++s) EXPECT_EQ(fetch[s], 16 + s);
  EXPECT_TRUE(cache.Contains(17));
  EXPECT_TRUE(cache.Contains(16));
  EXPECT_EQ(cache.stats().misses, 1u);

  // Re-access: a hit, nothing to fetch.
  EXPECT_EQ(Touch(&cache, 2), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(HostTileCacheTest, ProbationaryEvictsLruWithoutTouchingProtected) {
  HostTileCache cache;
  cache.Configure(SmallConfig(4, 0.5));  // 2 protected + 2 probationary

  // Promote tiles 0 and 1 into protected (miss, then hit).
  Touch(&cache, 0);
  Touch(&cache, 1);
  Touch(&cache, 0);
  Touch(&cache, 1);
  EXPECT_EQ(cache.stats().promotions, 2u);

  // A cold scan through 3 fresh tiles churns probationary only: tile 2 is
  // the probationary LRU when 3 and 4 arrive, so it goes first.
  Touch(&cache, 2);
  Touch(&cache, 3);
  Touch(&cache, 4);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Contains(Sector(2)));
  EXPECT_TRUE(cache.Contains(Sector(3)));
  EXPECT_TRUE(cache.Contains(Sector(4)));
  // The protected hot set survived the scan.
  EXPECT_TRUE(cache.Contains(Sector(0)));
  EXPECT_TRUE(cache.Contains(Sector(1)));
}

TEST(HostTileCacheTest, ProtectedOverflowDemotesInsteadOfEvicting) {
  HostTileCache cache;
  cache.Configure(SmallConfig(4, 0.5));  // protected capacity 2

  // Miss-then-hit each tile so all three earn promotion.
  for (uint64_t t : {0, 1, 2}) {
    Touch(&cache, t);
    Touch(&cache, t);
  }
  EXPECT_EQ(cache.stats().promotions, 3u);
  // Promoting tile 2 overflowed protected; its LRU (tile 0) was demoted to
  // probationary, not evicted.
  EXPECT_TRUE(cache.Contains(Sector(0)));
  EXPECT_TRUE(cache.Contains(Sector(1)));
  EXPECT_TRUE(cache.Contains(Sector(2)));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.resident_tiles(), 3u);
}

TEST(HostTileCacheTest, PrefillFillsProtectedOnlyAndNeverEvicts) {
  HostTileCache cache;
  cache.Configure(SmallConfig(4, 0.5));  // protected capacity 2

  EXPECT_FALSE(cache.PrefillFull());
  EXPECT_TRUE(cache.Prefill(10));
  EXPECT_FALSE(cache.Prefill(10));  // duplicate
  EXPECT_TRUE(cache.Prefill(11));
  EXPECT_TRUE(cache.PrefillFull());
  EXPECT_FALSE(cache.Prefill(12));  // section full: pre-fill never evicts
  EXPECT_EQ(cache.stats().prefill_bytes, 2 * cache.tile_bytes());
  EXPECT_TRUE(cache.Contains(Sector(10)));
  EXPECT_TRUE(cache.Contains(Sector(11)));
  EXPECT_FALSE(cache.Contains(Sector(12)));

  // Demand traffic still has the probationary half to itself.
  Touch(&cache, 20);
  Touch(&cache, 21);
  EXPECT_EQ(cache.resident_tiles(), 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(HostTileCacheTest, ResetStatsKeepsResidency) {
  HostTileCache cache;
  cache.Configure(SmallConfig(4, 0.5));
  Touch(&cache, 5);
  Touch(&cache, 5);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // The tile stayed resident: the next access is a pure hit.
  EXPECT_EQ(Touch(&cache, 5), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(HostTileCacheTest, DisabledCachePassesEverythingThrough) {
  HostTileCache cache;  // never configured
  EXPECT_FALSE(cache.enabled());
  std::vector<uint64_t> fetch;
  const uint64_t sectors[] = {3, 4, 100};
  EXPECT_EQ(cache.Access(sectors, &fetch), 0u);
  EXPECT_EQ(fetch.size(), 3u);
  EXPECT_EQ(cache.resident_tiles(), 0u);
}

// --- Engine out-of-core mode ------------------------------------------------

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr TestGraph() { return graph::GenerateRmat(9, 4096, 0.57, 0.19, 0.19, 7); }

apps::AppParams ParamsFor(const std::string& app) {
  apps::AppParams params;
  if (app == "bfs" || app == "sssp") {
    params.sources = {0};
  } else if (app == "msbfs") {
    params.sources = {0, 1, 2, 3};
  }
  params.iterations = 5;
  params.k = 2;
  return params;
}

uint64_t RunDigest(const Csr& csr, const std::string& app,
                   const EngineOptions& options) {
  sim::GpuDevice device(TestSpec());
  auto engine = core::Engine::Create(&device, csr, options);
  SAGE_CHECK(engine.ok()) << engine.status().ToString();
  auto program = apps::CreateProgram(app);
  SAGE_CHECK(program.ok());
  auto stats = apps::RunApp(**engine, **program, ParamsFor(app));
  SAGE_CHECK(stats.ok()) << stats.status().ToString();
  return apps::OutputDigest(**engine, **program);
}

TEST(OutOfCoreTest, DigestsMatchInCoreForEveryAppStrategyAndThreadCount) {
  const Csr csr = TestGraph();
  const uint64_t budget = csr.MemoryBytes() / 4;  // forces paging
  const ExpandStrategy strategies[] = {ExpandStrategy::kSage,
                                       ExpandStrategy::kB40c,
                                       ExpandStrategy::kWarpCentric};
  for (const char* app : {"bfs", "pagerank", "kcore", "sssp", "msbfs"}) {
    for (ExpandStrategy strategy : strategies) {
      EngineOptions in_core;
      in_core.strategy = strategy;
      in_core.host_threads = 1;
      const uint64_t want = RunDigest(csr, app, in_core);
      for (uint32_t threads : {1u, 4u}) {
        EngineOptions ooc = in_core;
        ooc.memory_budget_bytes = budget;
        ooc.host_threads = threads;
        EXPECT_EQ(RunDigest(csr, app, ooc), want)
            << app << " strategy=" << static_cast<int>(strategy)
            << " host_threads=" << threads;
      }
    }
  }
}

TEST(OutOfCoreTest, GenerousBudgetStaysInCore) {
  const Csr csr = TestGraph();
  sim::GpuDevice device(TestSpec());
  EngineOptions options;
  options.host_threads = 1;
  options.memory_budget_bytes = csr.MemoryBytes() * 2;
  auto engine = core::Engine::Create(&device, csr, options);
  ASSERT_TRUE(engine.ok());
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(apps::RunApp(**engine, **program, ParamsFor("bfs")).ok());
  // The graph fits: no cache, no PCIe traffic, no cache metrics.
  EXPECT_FALSE(device.tile_cache().enabled());
  EXPECT_EQ(device.host_link().stats().transfers, 0u);
  for (const auto& [name, value] : (*engine)->metrics().Snapshot().counters) {
    EXPECT_NE(name.rfind("cache.", 0), 0u) << name;
  }
}

TEST(OutOfCoreTest, SmallBudgetPagesThroughCacheAndExportsMetrics) {
  const Csr csr = TestGraph();
  sim::GpuDevice device(TestSpec());
  EngineOptions options;
  options.host_threads = 1;
  options.memory_budget_bytes = csr.MemoryBytes() / 4;
  auto engine = core::Engine::Create(&device, csr, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(device.tile_cache().enabled());
  // The degree-ranked pre-fill ran at construction.
  const uint64_t prefill = device.tile_cache().stats().prefill_bytes;
  EXPECT_GT(prefill, 0u);
  EXPECT_GT(device.host_link().stats().transfers, 0u);  // the bulk DMA

  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(apps::RunApp(**engine, **program, ParamsFor("bfs")).ok());
  const HostTileCache::Stats& stats = device.tile_cache().stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);

  uint64_t hits = 0, misses = 0, prefill_metric = 0;
  bool saw_evictions = false;
  for (const auto& [name, value] : (*engine)->metrics().Snapshot().counters) {
    if (name == "cache.hits") hits = value;
    if (name == "cache.misses") misses = value;
    if (name == "cache.prefill_bytes") prefill_metric = value;
    if (name == "cache.evictions") saw_evictions = true;
  }
  EXPECT_EQ(hits, stats.hits);
  EXPECT_EQ(misses, stats.misses);
  EXPECT_EQ(prefill_metric, prefill);
  EXPECT_TRUE(saw_evictions);
}

TEST(OutOfCoreTest, PrefillAndPagingAreDeterministic) {
  const Csr csr = TestGraph();
  EngineOptions options;
  options.host_threads = 1;
  options.memory_budget_bytes = csr.MemoryBytes() / 4;

  HostTileCache::Stats first;
  uint64_t first_resident = 0;
  for (int run = 0; run < 2; ++run) {
    sim::GpuDevice device(TestSpec());
    auto engine = core::Engine::Create(&device, csr, options);
    ASSERT_TRUE(engine.ok());
    auto program = apps::CreateProgram("pagerank");
    ASSERT_TRUE(program.ok());
    ASSERT_TRUE(
        apps::RunApp(**engine, **program, ParamsFor("pagerank")).ok());
    const HostTileCache::Stats& stats = device.tile_cache().stats();
    if (run == 0) {
      first = stats;
      first_resident = device.tile_cache().resident_tiles();
    } else {
      EXPECT_EQ(stats.hits, first.hits);
      EXPECT_EQ(stats.misses, first.misses);
      EXPECT_EQ(stats.evictions, first.evictions);
      EXPECT_EQ(stats.prefill_bytes, first.prefill_bytes);
      EXPECT_EQ(device.tile_cache().resident_tiles(), first_resident);
    }
  }
}

// --- GraphRegistry memory budget / serve-tier eviction ----------------------

serve::Request MakeRequest(const std::string& graph, const std::string& app) {
  serve::Request request;
  request.graph = graph;
  request.app = app;
  request.params.sources = {0};
  return request;
}

TEST(RegistryBudgetTest, PrimaryPlacementStaysModular) {
  serve::GraphRegistry registry(3);
  for (int i = 0; i < 12; ++i) {
    const std::string name = "g" + std::to_string(i);
    ASSERT_TRUE(registry.Add(name, graph::GeneratePath(64)).ok());
    EXPECT_EQ(registry.PlacementOf(name).primary,
              static_cast<uint32_t>(i % 3));
  }
}

TEST(RegistryBudgetTest, BudgetTracksCsrBytesAndRejectsWithoutEvictor) {
  const Csr a = TestGraph();
  const uint64_t a_bytes = a.MemoryBytes();
  serve::GraphRegistry registry;
  registry.set_memory_budget_bytes(a_bytes);
  ASSERT_TRUE(registry.Add("a", a).ok());
  EXPECT_EQ(registry.tracked_bytes(), a_bytes);

  auto status = registry.Add("b", graph::GeneratePath(512));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("no pool evictor attached"),
            std::string::npos);
}

TEST(RegistryBudgetTest, AddEvictsColdWarmPoolToAdmitNewGraph) {
  const Csr a = TestGraph();
  const Csr b = graph::GenerateUniform(400, 1600, 3);
  const uint64_t a_bytes = a.MemoryBytes();
  const uint64_t b_bytes = b.MemoryBytes();
  ASSERT_LT(b_bytes, a_bytes);

  serve::GraphRegistry registry;
  // Fits both CSRs with half an a of slack: graph a's warm engine (a full
  // extra a_bytes, reported via NotePoolBytes) pushes an Add of b over.
  registry.set_memory_budget_bytes(a_bytes + b_bytes + a_bytes / 2);
  ASSERT_TRUE(registry.Add("a", a).ok());

  serve::ServeOptions options;
  options.worker_threads = 0;  // synchronous: ProcessAllPending drives
  options.engines_per_graph = 1;
  options.device_spec = TestSpec();
  serve::QueryService service(&registry, options);

  // Two dispatches warm one engine for "a": tracked = csr + pool = 2a.
  for (int i = 0; i < 2; ++i) {
    auto submitted = service.Submit(MakeRequest("a", "bfs"));
    ASSERT_TRUE(submitted.ok());
    service.ProcessAllPending();
    ASSERT_TRUE(submitted->get().status.ok());
  }
  EXPECT_EQ(registry.tracked_bytes(), 2 * a_bytes);

  // Without an evictor the load fails — the exact scenario the budget is
  // for: memory full of warm state, a new tenant graph arriving.
  auto status = registry.Add("b", b);
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);

  // With the service attached as evictor, the same load succeeds by
  // shedding the idle warm engine.
  registry.set_evictor(&service);
  ASSERT_TRUE(registry.Add("b", b).ok());
  EXPECT_EQ(registry.tracked_bytes(), a_bytes + b_bytes);

  uint64_t evictions = 0;
  for (const auto& [name, value] : service.metrics().Snapshot().counters) {
    if (name == "serve.cache.evictions") evictions = value;
  }
  EXPECT_EQ(evictions, 1u);

  // Both graphs keep serving after the eviction (the shed pool re-warms).
  for (const char* graph : {"a", "b"}) {
    auto submitted = service.Submit(MakeRequest(graph, "bfs"));
    ASSERT_TRUE(submitted.ok());
    service.ProcessAllPending();
    EXPECT_TRUE(submitted->get().status.ok()) << graph;
  }
}

TEST(RegistryBudgetTest, EvictionIsSafeUnderInFlightDispatches) {
  // TSan'd in run_checks.sh: concurrent dispatch traffic on one graph
  // while over-budget Adds keep evicting its idle engines. Every request
  // must still complete cleanly and every graph must eventually load.
  const Csr a = TestGraph();
  const uint64_t a_bytes = a.MemoryBytes();
  serve::GraphRegistry registry;
  registry.set_memory_budget_bytes(4 * a_bytes);
  ASSERT_TRUE(registry.Add("a", a).ok());

  serve::ServeOptions options;
  options.worker_threads = 2;
  options.engines_per_graph = 2;
  options.device_spec = TestSpec();
  serve::QueryService service(&registry, options);
  registry.set_evictor(&service);

  std::atomic<bool> failed{false};
  std::thread traffic([&] {
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < 40; ++i) {
      auto submitted = service.Submit(MakeRequest("a", "bfs"));
      if (!submitted.ok()) {
        failed = true;
        return;
      }
      futures.push_back(std::move(*submitted));
    }
    for (auto& f : futures) {
      if (!f.get().status.ok()) failed = true;
    }
  });

  // Loads racing the traffic: eviction can only reclaim idle engines, so
  // an Add may need several attempts while every engine is busy.
  for (int g = 0; g < 3; ++g) {
    const std::string name = "g" + std::to_string(g);
    util::Status status;
    for (int attempt = 0; attempt < 200; ++attempt) {
      status = registry.Add(name, a);
      if (status.ok() ||
          status.code() != StatusCode::kResourceExhausted) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(status.ok()) << name << ": " << status.ToString();
  }
  traffic.join();
  EXPECT_FALSE(failed);
  service.Shutdown();
}

}  // namespace
}  // namespace sage
