#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/kcore.h"
#include "apps/label_prop.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/builder.h"
#include "graph/coo.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "util/random.h"

namespace sage::apps {
namespace {

using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr Symmetrized(const Csr& csr) {
  graph::Coo coo = csr.ToCoo();
  graph::Symmetrize(coo);
  graph::RemoveSelfLoops(coo);
  graph::SortCoo(coo);
  graph::DedupSortedCoo(coo);
  return Csr::FromCoo(coo);
}

// --- K-core --------------------------------------------------------------

class KCoreTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KCoreTest, MatchesReferencePeeling) {
  Csr csr = Symmetrized(graph::GenerateRmat(10, 9000, 0.5, 0.2, 0.2, 5));
  auto ref = KCoreReference(csr, GetParam());
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  KCoreProgram kcore;
  auto stats = RunKCore(engine, kcore, GetParam());
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(kcore.InCore(v), ref[v] == 1) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KCoreTest, ::testing::Values(2u, 3u, 5u, 10u));

TEST(KCoreTest, CoreIsClosedUnderDegree) {
  // Every member of the k-core must have >= k neighbors inside the core.
  Csr csr = Symmetrized(graph::GenerateRmat(9, 6000, 0.5, 0.2, 0.2, 7));
  const uint32_t k = 4;
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  KCoreProgram kcore;
  ASSERT_TRUE(RunKCore(engine, kcore, k).ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (!kcore.InCore(v)) continue;
    uint32_t in_core_neighbors = 0;
    for (NodeId w : csr.Neighbors(v)) {
      if (kcore.InCore(w)) ++in_core_neighbors;
    }
    ASSERT_GE(in_core_neighbors, k) << "node " << v;
  }
}

TEST(KCoreTest, HugeKRemovesEverything) {
  Csr csr = Symmetrized(graph::GenerateRmat(8, 2000, 0.5, 0.2, 0.2, 3));
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  KCoreProgram kcore;
  ASSERT_TRUE(RunKCore(engine, kcore, 100000).ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    EXPECT_FALSE(kcore.InCore(v));
  }
}

// --- PageRank ------------------------------------------------------------

TEST(PageRankTest, MassIsConservedWithoutDanglingNodes) {
  // On a graph where every node has out-degree >= 1, total rank stays 1.
  graph::GraphBuilder builder(500);
  util::Rng rng(9);
  for (NodeId u = 0; u < 500; ++u) {
    builder.AddEdge(u, (u + 1) % 500);  // guarantee outdegree >= 1
    builder.AddEdge(u, rng.UniformU32(500));
  }
  Csr csr = builder.Build().value();
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  PageRankProgram pr;
  ASSERT_TRUE(RunPageRank(engine, pr, 10).ok());
  double total = 0;
  for (NodeId v = 0; v < csr.num_nodes(); ++v) total += pr.RankOf(v);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRankTest, HubAccumulatesRank) {
  Csr csr = graph::GenerateStar(200).Transpose();  // all point to node 0
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  PageRankProgram pr;
  ASSERT_TRUE(RunPageRank(engine, pr, 5).ok());
  for (NodeId v = 1; v < 200; ++v) EXPECT_GT(pr.RankOf(0), pr.RankOf(v));
}

TEST(PageRankTest, ZeroIterationsIsUniform) {
  Csr csr = graph::GenerateRmat(7, 500, 0.5, 0.2, 0.2, 2);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  PageRankProgram pr;
  ASSERT_TRUE(RunPageRank(engine, pr, 0).ok());
  EXPECT_NEAR(pr.RankOf(0), 1.0 / csr.num_nodes(), 1e-12);
}

// --- SSSP ----------------------------------------------------------------

TEST(SsspTest, WeightsAreDeterministicAndBounded) {
  for (NodeId u = 0; u < 100; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      uint32_t w = SyntheticEdgeWeight(u, v);
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 16u);
      EXPECT_EQ(w, SyntheticEdgeWeight(u, v));
    }
  }
}

TEST(SsspTest, UnreachableStaysInfinite) {
  Csr csr = graph::GeneratePath(5);  // 0->1->2->3->4, nothing reaches 0
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  SsspProgram sssp;
  ASSERT_TRUE(RunSssp(engine, sssp, 2).ok());
  EXPECT_EQ(sssp.DistanceOf(0), SsspProgram::kInfinity);
  EXPECT_EQ(sssp.DistanceOf(1), SsspProgram::kInfinity);
  EXPECT_EQ(sssp.DistanceOf(2), 0u);
  EXPECT_NE(sssp.DistanceOf(4), SsspProgram::kInfinity);
}

TEST(SsspTest, ShorterPathWinsOverFewerHops) {
  // 0->2 direct vs 0->1->2: with hashed weights either can win; verify
  // the engine agrees with Dijkstra on a graph full of such choices.
  Csr csr = graph::GenerateUniform(300, 3000, 11);
  auto ref = SsspReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  SsspProgram sssp;
  ASSERT_TRUE(RunSssp(engine, sssp, 0).ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(sssp.DistanceOf(v), ref[v]);
  }
}

// --- Label propagation ----------------------------------------------------

TEST(LabelPropTest, PerfectCommunitiesSeparate) {
  // Two cliques joined by one edge: LP must give each clique one label.
  graph::GraphBuilder builder(20);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      if (a != b) {
        builder.AddEdge(a, b);
        builder.AddEdge(a + 10, b + 10);
      }
    }
  }
  builder.AddEdge(0, 10);
  builder.AddEdge(10, 0);
  Csr csr = builder.Build().value();
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  LabelPropProgram lp;
  ASSERT_TRUE(RunLabelPropagation(engine, lp, 8).ok());
  std::set<NodeId> left, right;
  for (NodeId v = 0; v < 10; ++v) left.insert(lp.LabelOf(v));
  for (NodeId v = 10; v < 20; ++v) right.insert(lp.LabelOf(v));
  EXPECT_EQ(left.size(), 1u);
  EXPECT_EQ(right.size(), 1u);
}

TEST(LabelPropTest, LabelsAreOriginalIds) {
  Csr csr = Symmetrized(graph::GenerateRmat(8, 1500, 0.5, 0.2, 0.2, 4));
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.sampling_reorder = true;  // labels must survive relabeling
  opts.sampling_threshold_edges = 1500;
  Engine engine(&device, csr, opts);
  LabelPropProgram lp;
  ASSERT_TRUE(RunLabelPropagation(engine, lp, 4).ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    EXPECT_LT(lp.LabelOf(v), csr.num_nodes());
  }
}

// --- BC ------------------------------------------------------------------

TEST(BcTest, CentralityAccumulatesAcrossSources) {
  Csr csr = graph::GenerateRmat(8, 2500, 0.45, 0.25, 0.2, 6);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  Betweenness bc(csr.num_nodes());
  std::vector<double> expected(csr.num_nodes(), 0.0);
  for (NodeId src : {0u, 5u, 9u}) {
    ASSERT_TRUE(bc.Run(engine, src).ok());
    auto ref = BrandesReference(csr, src);
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      if (v != src) expected[v] += ref[v];
    }
  }
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(bc.centrality()[v], expected[v], 1e-8);
  }
}

TEST(BcTest, IsolatedSourceIsTrivial) {
  Csr csr = graph::GenerateStar(10);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  Betweenness bc(csr.num_nodes());
  ASSERT_TRUE(bc.Run(engine, 5).ok());  // node 5 has no out-edges
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(bc.DeltaOf(v), 0.0);
}

// --- CC -------------------------------------------------------------------

TEST(CcTest, DisconnectedComponentsKeepDistinctLabels) {
  graph::GraphBuilder builder(9);
  // Three triangles.
  for (NodeId base : {0u, 3u, 6u}) {
    builder.AddEdge(base, base + 1);
    builder.AddEdge(base + 1, base + 2);
    builder.AddEdge(base + 2, base);
  }
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  Csr csr = builder.Build(bopts).value();
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  CcProgram cc;
  ASSERT_TRUE(RunConnectedComponents(engine, cc).ok());
  EXPECT_EQ(cc.ComponentOf(0), 0u);
  EXPECT_EQ(cc.ComponentOf(1), 0u);
  EXPECT_EQ(cc.ComponentOf(4), 3u);
  EXPECT_EQ(cc.ComponentOf(8), 6u);
}

}  // namespace
}  // namespace sage::apps
