// SageScope observability tests (DESIGN.md §8): the device kernel
// timeline, the structured profile / metrics / trace JSON exports, and the
// determinism contract — everything the sim and engine publish is built
// from modeled quantities, so serial and parallel runs must render
// bit-identical bytes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/registry.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "sim/profile.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace sage {
namespace {

graph::Csr TestGraph() {
  return graph::GenerateRmat(9, 8192, 0.57, 0.19, 0.19, 7);
}

/// Minimal structural JSON check: braces/brackets balance outside string
/// literals (escapes honored). Not a parser — the sanitizer stage in
/// run_checks.sh validates the real thing with python3 -m json.tool.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      char open = c == '}' ? '{' : '[';
      if (stack.empty() || stack.back() != open) return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_string;
}

uint64_t CounterValue(const util::MetricsSnapshot& snap,
                      const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "missing counter " << name;
  return 0;
}

struct ObservedRun {
  core::RunStats stats;
  uint64_t kernels = 0;
  std::vector<sim::KernelRecord> records;
  std::string profile_json;
  std::string metrics_json;
  std::string trace_json;
  util::MetricsSnapshot engine_metrics;
};

ObservedRun RunObserved(uint32_t host_threads) {
  graph::Csr csr = TestGraph();
  sim::GpuDevice device{sim::DeviceSpec()};
  device.set_timeline_enabled(true);
  core::EngineOptions options;
  options.host_threads = host_threads;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  SAGE_CHECK(program.ok());
  apps::AppParams params;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (csr.OutDegree(v) > 0) {
      params.sources = {v};
      break;
    }
  }
  auto stats = apps::RunApp(engine, **program, params);
  SAGE_CHECK(stats.ok()) << stats.status().ToString();

  ObservedRun run;
  run.stats = *stats;
  run.kernels = device.totals().kernels;
  run.records = device.totals().kernel_records;
  run.profile_json = sim::FormatDeviceProfileJson(device);
  util::MetricsRegistry registry;
  sim::ExportDeviceMetrics(device, &registry);
  run.metrics_json = registry.ToJson();
  util::TraceLog trace;
  sim::AppendKernelTrace(device, "bfs@test", 42, &trace);
  run.trace_json = trace.ToJson();
  run.engine_metrics = engine.metrics().Snapshot();
  return run;
}

TEST(ObserveTest, TimelineOffByDefault) {
  graph::Csr csr = TestGraph();
  sim::GpuDevice device{sim::DeviceSpec()};
  ASSERT_FALSE(device.timeline_enabled());
  core::EngineOptions options;
  options.host_threads = 1;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  apps::AppParams params;
  params.sources = {0};
  ASSERT_TRUE(apps::RunApp(engine, **program, params).ok());
  EXPECT_GT(device.totals().kernels, 0u);
  EXPECT_TRUE(device.totals().kernel_records.empty());
}

TEST(ObserveTest, KernelRecordsCoverEveryKernel) {
  ObservedRun run = RunObserved(1);
  ASSERT_EQ(run.records.size(), run.kernels);
  double covered = 0.0;
  double prev_start = -1.0;
  for (const sim::KernelRecord& rec : run.records) {
    EXPECT_GT(rec.seconds, 0.0);
    EXPECT_GE(rec.start_seconds, prev_start);
    prev_start = rec.start_seconds;
    covered += rec.seconds;
    EXPECT_EQ(rec.label, "bfs");
  }
  // The records tile the modeled GPU time end to end.
  EXPECT_NEAR(covered, run.stats.seconds, 1e-12);
}

TEST(ObserveTest, EngineCountersMatchRunStats) {
  ObservedRun run = RunObserved(1);
  EXPECT_EQ(CounterValue(run.engine_metrics, "core.runs"), 1u);
  EXPECT_EQ(CounterValue(run.engine_metrics, "core.iterations"),
            run.stats.iterations);
  EXPECT_EQ(CounterValue(run.engine_metrics, "core.edges_traversed"),
            run.stats.edges_traversed);
  EXPECT_EQ(CounterValue(run.engine_metrics, "core.frontier_nodes"),
            run.stats.frontier_nodes);
  // The registry also carries host-perf histograms (sim.replay.slice_us),
  // so look core.iteration_edges up by name instead of assuming a count.
  const util::HistogramSnapshot* iter_edges = nullptr;
  for (const auto& h : run.engine_metrics.histograms) {
    if (h.name == "core.iteration_edges") iter_edges = &h;
  }
  ASSERT_NE(iter_edges, nullptr);
  EXPECT_EQ(iter_edges->count, run.stats.iterations);
}

TEST(ObserveTest, HostPerfMetricsExportedAfterParallelRun) {
  // The tiled (non-resident) expand path stages its per-block scratch in
  // the context arenas; after the first blocks warmed them, later blocks
  // are served from recycled chunks and the engine publishes the tally.
  graph::Csr csr = TestGraph();
  sim::DeviceSpec spec;
  // Small blocks so every iteration fans out over several stage units —
  // with the whole frontier in one block RunStage degenerates to serial
  // and never replays.
  spec.block_size = 64;
  sim::GpuDevice device{spec};
  core::EngineOptions options;
  options.host_threads = 4;
  options.resident_tiles = false;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  apps::AppParams params;
  params.sources = {0};
  ASSERT_TRUE(apps::RunApp(engine, **program, params).ok());
  util::MetricsSnapshot snap = engine.metrics().Snapshot();
  EXPECT_GT(CounterValue(snap, "util.arena.bytes_reused"), 0u);
  // The sharded replay timed its per-slice work.
  const util::HistogramSnapshot* slice_us = nullptr;
  for (const auto& h : snap.histograms) {
    if (h.name == "sim.replay.slice_us") slice_us = &h;
  }
  ASSERT_NE(slice_us, nullptr);
  EXPECT_GT(slice_us->count, 0u);
}

TEST(ObserveTest, ExportsAreStructurallyValidJson) {
  ObservedRun run = RunObserved(1);
  EXPECT_TRUE(JsonBalanced(run.profile_json)) << run.profile_json;
  EXPECT_TRUE(JsonBalanced(run.metrics_json)) << run.metrics_json;
  EXPECT_TRUE(JsonBalanced(run.trace_json)) << run.trace_json;
  EXPECT_NE(run.profile_json.find("\"kernels\""), std::string::npos);
  EXPECT_NE(run.profile_json.find("\"device_memory\""), std::string::npos);
  EXPECT_NE(run.metrics_json.find("\"device.kernels\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"bfs@test\""), std::string::npos);
}

// The SageScope determinism contract: every exported byte derives from
// modeled quantities updated at iteration/kernel boundaries on the main
// thread, so the parallel backend renders the identical JSON.
TEST(ObserveTest, ExportsBitIdenticalSerialVsParallel) {
  ObservedRun serial = RunObserved(1);
  ObservedRun parallel = RunObserved(4);
  EXPECT_EQ(serial.profile_json, parallel.profile_json);
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  EXPECT_EQ(serial.trace_json, parallel.trace_json);
  EXPECT_EQ(serial.records.size(), parallel.records.size());
}

}  // namespace
}  // namespace sage
