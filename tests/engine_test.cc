#include "core/engine.h"

#include <gtest/gtest.h>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/label_prop.h"
#include "apps/pagerank.h"
#include "apps/reference.h"
#include "apps/sssp.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "util/random.h"

namespace sage {
namespace {

using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;  // small device keeps tests fast
  spec.l2_bytes = 256 << 10;
  return spec;
}

// Engine configurations the whole functional suite runs under: every
// feature combination must produce identical traversal results.
struct EngineConfig {
  const char* label;
  bool tiled;
  bool resident;
  bool reorder;
  bool align;
};

const EngineConfig kConfigs[] = {
    {"scalar", false, false, false, true},
    {"tiled", true, false, false, true},
    {"tiled_noalign", true, false, false, false},
    {"resident", true, true, false, true},
    {"resident_reorder", true, true, true, true},
};

class EngineAllConfigsTest : public ::testing::TestWithParam<EngineConfig> {
 protected:
  EngineOptions MakeOptions() const {
    const EngineConfig& c = GetParam();
    EngineOptions o;
    o.tiled_partitioning = c.tiled;
    o.resident_tiles = c.resident;
    o.sampling_reorder = c.reorder;
    o.tile_alignment = c.align;
    if (c.reorder) o.sampling_threshold_edges = 2000;  // force rounds
    return o;
  }
};

TEST_P(EngineAllConfigsTest, BfsMatchesReferenceOnRmat) {
  Csr csr = graph::GenerateRmat(10, 8000, 0.55, 0.2, 0.2, 42);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, MakeOptions());
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]) << "node " << v;
  }
  EXPECT_GT(stats->edges_traversed, 0u);
  EXPECT_GT(stats->seconds, 0.0);
}

TEST_P(EngineAllConfigsTest, BfsMatchesReferenceOnStar) {
  Csr csr = graph::GenerateStar(5000);
  auto ref = apps::BfsReference(csr, 0);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, MakeOptions());
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(bfs.DistanceOf(v), ref[v]);
  }
  EXPECT_EQ(stats->edges_traversed, csr.num_edges());
}

TEST_P(EngineAllConfigsTest, PageRankMatchesReference) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 7);
  auto ref = apps::PageRankReference(csr, 5);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, MakeOptions());
  apps::PageRankProgram pr;
  auto stats = apps::RunPageRank(engine, pr, 5);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(pr.RankOf(v), ref[v], 1e-9) << "node " << v;
  }
}

TEST_P(EngineAllConfigsTest, BcMatchesReference) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.45, 0.25, 0.2, 9);
  auto ref = apps::BrandesReference(csr, 3);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, MakeOptions());
  apps::Betweenness bc(csr.num_nodes());
  auto stats = bc.Run(engine, 3);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR(bc.DeltaOf(v), ref[v], 1e-9) << "node " << v;
  }
}

TEST_P(EngineAllConfigsTest, SsspMatchesDijkstra) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 17);
  auto ref = apps::SsspReference(csr, 1);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, MakeOptions());
  apps::SsspProgram sssp;
  auto stats = apps::RunSssp(engine, sssp, 1);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(sssp.DistanceOf(v), ref[v]) << "node " << v;
  }
}

TEST_P(EngineAllConfigsTest, CcMatchesUnionFind) {
  // Symmetric graph: CC requires undirected connectivity.
  graph::GraphBuilder builder(2000);
  util::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    builder.AddEdge(rng.UniformU32(2000), rng.UniformU32(2000));
  }
  graph::BuildOptions bopts;
  bopts.symmetrize = true;
  auto csr_or = builder.Build(bopts);
  ASSERT_TRUE(csr_or.ok());
  const Csr& csr = csr_or.value();
  auto ref = apps::ConnectedComponentsReference(csr);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, MakeOptions());
  apps::CcProgram cc;
  auto stats = apps::RunConnectedComponents(engine, cc);
  ASSERT_TRUE(stats.ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ(cc.ComponentOf(v), ref[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, EngineAllConfigsTest,
                         ::testing::ValuesIn(kConfigs),
                         [](const auto& name_info) { return name_info.param.label; });

TEST(EngineTest, ReorderingActuallyHappens) {
  Csr csr = graph::GenerateRmat(10, 10000, 0.55, 0.2, 0.2, 21);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;
  opts.sampling_reorder = true;
  opts.sampling_threshold_edges = 3000;
  Engine engine(&device, csr, opts);
  apps::PageRankProgram pr;
  auto stats = apps::RunPageRank(engine, pr, 6);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(engine.reorder_rounds(), 0u);
  EXPECT_GT(engine.reorder_seconds_total(), 0.0);
}

TEST(EngineTest, RunWithoutBindFails) {
  Csr csr = graph::GeneratePath(10);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  NodeId src[1] = {0};
  auto stats = engine.Run(src);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(EngineTest, SourceOutOfRangeFails) {
  Csr csr = graph::GeneratePath(10);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::BfsProgram bfs;
  ASSERT_TRUE(engine.Bind(&bfs).ok());
  NodeId src[1] = {10};
  auto stats = engine.Run(src);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineTest, EmptyGraphBfs) {
  Csr csr = graph::GeneratePath(1);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(bfs.DistanceOf(0), 0u);
}

TEST(EngineTest, ResidentTilesAreReused) {
  Csr csr = graph::GenerateRmat(10, 8000, 0.55, 0.2, 0.2, 42);
  sim::GpuDevice device(TestSpec());
  EngineOptions opts;  // resident tiles on by default
  Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  auto s1 = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(s1.ok());
  uint64_t pool_after_first = engine.tile_store().size();
  EXPECT_GT(pool_after_first, 0u);
  auto s2 = apps::RunBfs(engine, bfs, 0);
  ASSERT_TRUE(s2.ok());
  // Second identical run revisits the same nodes: no new decompositions.
  EXPECT_EQ(engine.tile_store().size(), pool_after_first);
  // And it should be no slower (reuse skips online scheduling).
  EXPECT_LE(s2->tp_overhead_seconds, s1->tp_overhead_seconds + 1e-12);
}

}  // namespace
}  // namespace sage
