// SageCheck tests: synthetic buggy mini-kernels must trigger exactly the
// expected violations, and every seed application must run violation-free
// at check_level=full (zero false positives).
#include "check/access_checker.h"

#include <gtest/gtest.h>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/kcore.h"
#include "apps/label_prop.h"
#include "apps/pagerank.h"
#include "apps/pr_delta.h"
#include "apps/sssp.h"
#include "check/determinism.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"

namespace sage {
namespace {

using check::AccessChecker;
using check::ViolationKind;
using core::Engine;
using core::EngineOptions;
using graph::Csr;
using graph::NodeId;
using sim::AccessIntent;
using sim::CheckLevel;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 256 << 10;
  return spec;
}

// A raw device + checker pair for hand-written buggy kernels.
struct Harness {
  explicit Harness(CheckLevel level)
      : device(TestSpec()), checker(level) {
    device.set_access_sink(&checker);
  }
  ~Harness() { device.set_access_sink(nullptr); }
  sim::GpuDevice device;
  AccessChecker checker;
};

// --- memcheck: out-of-bounds --------------------------------------------

TEST(SageCheckTest, DetectsOutOfBoundsAccess) {
  Harness h(CheckLevel::kBounds);
  sim::Buffer buf = h.device.mem().Register("victim", 100, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {5, 100, 7});  // elem 100 is one past the end
  h.device.EndKernel();
  EXPECT_FALSE(h.checker.clean());
  EXPECT_EQ(h.checker.count(ViolationKind::kOutOfBounds), 1u);
  EXPECT_EQ(h.checker.total_violations(), 1u);
  ASSERT_EQ(h.checker.violations().size(), 1u);
  const auto& v = h.checker.violations()[0];
  EXPECT_EQ(v.buffer_name, "victim");
  EXPECT_EQ(v.elem, 100u);
  EXPECT_NE(h.checker.Report().find("out-of-bounds"), std::string::npos);
  EXPECT_FALSE(h.checker.ToStatus().ok());
}

TEST(SageCheckTest, DetectsOutOfBoundsRange) {
  Harness h(CheckLevel::kBounds);
  sim::Buffer buf = h.device.mem().Register("victim", 100, 4);
  h.device.BeginKernel();
  // [90, 110): overflows by 10 elements — reported once, as one bug.
  h.device.AccessRange(0, buf, 90, 20, AccessIntent::kWrite);
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kOutOfBounds), 1u);
  EXPECT_EQ(h.checker.violations()[0].elem, 100u);
}

TEST(SageCheckTest, OobLanesAreSuppressedBeforeCharging) {
  // Sanitizer semantics: the memory model must only see valid addresses,
  // so the charged sector count excludes the out-of-bounds lane.
  Harness h(CheckLevel::kBounds);
  sim::Buffer buf = h.device.mem().Register("victim", 8, 4);
  h.device.BeginKernel();
  auto r = h.device.Access(0, buf, {0, 1000000});
  h.device.EndKernel();
  EXPECT_EQ(r.sectors, 1u);  // only elem 0's sector
}

// --- racecheck ------------------------------------------------------------

TEST(SageCheckTest, DetectsWriteWriteRace) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("shared", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {7}, AccessIntent::kWrite);
  h.device.Access(1, buf, {7}, AccessIntent::kWrite);  // same elem, other SM
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kRaceWriteWrite), 1u);
  const auto& v = h.checker.violations()[0];
  EXPECT_EQ(v.elem, 7u);
  EXPECT_EQ(v.sm_a, 0u);
  EXPECT_EQ(v.sm_b, 1u);
}

TEST(SageCheckTest, DetectsReadWriteRace) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("shared", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {3}, AccessIntent::kWrite);
  h.device.Access(1, buf, {3}, AccessIntent::kRead);
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kRaceReadWrite), 1u);
  EXPECT_EQ(h.checker.count(ViolationKind::kRaceWriteWrite), 0u);
}

TEST(SageCheckTest, SameSmAccessesDoNotRace) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("private", 64, 4);
  h.device.BeginKernel();
  h.device.Access(2, buf, {9}, AccessIntent::kWrite);
  h.device.Access(2, buf, {9}, AccessIntent::kWrite);  // program order
  h.device.Access(2, buf, {9}, AccessIntent::kRead);
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, AtomicsDoNotRaceWithAtomics) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("counter", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {1}, AccessIntent::kAtomic);
  h.device.Access(1, buf, {1}, AccessIntent::kAtomic);
  h.device.Access(2, buf, {1}, AccessIntent::kRead);  // coherent dirty read
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, IdempotentWritesDoNotRaceWithEachOther) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("level", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {4}, AccessIntent::kWriteIdempotent);
  h.device.Access(1, buf, {4}, AccessIntent::kWriteIdempotent);
  h.device.Access(2, buf, {4}, AccessIntent::kRead);
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, IdempotentWriteRacesWithPlainWrite) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("level", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {4}, AccessIntent::kWriteIdempotent);
  h.device.Access(1, buf, {4}, AccessIntent::kWrite);
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kRaceWriteWrite), 1u);
}

TEST(SageCheckTest, IdempotentWriteRacesWithAtomic) {
  // A non-atomic store can tear / be lost against a concurrent RMW.
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("cell", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {4}, AccessIntent::kAtomic);
  h.device.Access(1, buf, {4}, AccessIntent::kWriteIdempotent);
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kRaceWriteWrite), 1u);
}

TEST(SageCheckTest, PhaseFenceOrdersAccesses) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("queue", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {5}, AccessIntent::kWrite);
  h.device.FenceKernelPhase();  // grid-wide sync
  h.device.Access(1, buf, {5}, AccessIntent::kRead);
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, NewKernelResetsRaceWindow) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("x", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {5}, AccessIntent::kWrite);
  h.device.EndKernel();
  h.device.BeginKernel();
  h.device.Access(1, buf, {5}, AccessIntent::kWrite);
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, RaceReportedOncePerElementPerPhase) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("x", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {5}, AccessIntent::kWrite);
  h.device.Access(1, buf, {5}, AccessIntent::kWrite);
  h.device.Access(2, buf, {5}, AccessIntent::kWrite);
  h.device.Access(3, buf, {5}, AccessIntent::kWrite);
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kRaceWriteWrite), 1u);
}

// --- initcheck ------------------------------------------------------------

TEST(SageCheckTest, DetectsReadBeforeEverWritten) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("uninit", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {10});
  h.device.Access(0, buf, {10});  // second read: reported once only
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kUninitRead), 1u);
  EXPECT_EQ(h.checker.violations()[0].elem, 10u);
}

TEST(SageCheckTest, NoteBufferWriteInitializesShadow) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("uploaded", 64, 4);
  h.device.NoteBufferWrite(buf, 0, 64);  // host upload before the kernel
  h.device.BeginKernel();
  h.device.Access(0, buf, {10});
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, ChargedWriteInitializesShadowAcrossKernels) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("x", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {10}, AccessIntent::kWrite);
  h.device.EndKernel();
  h.device.BeginKernel();
  h.device.Access(1, buf, {10});  // read what the previous kernel wrote
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

// --- bracketing -----------------------------------------------------------

TEST(SageCheckTest, DetectsEndWithoutBegin) {
  Harness h(CheckLevel::kBounds);
  h.device.EndKernel();  // recovered, not fatal, because a sink is attached
  EXPECT_EQ(h.checker.count(ViolationKind::kBracketing), 1u);
}

TEST(SageCheckTest, DetectsDoubleBegin) {
  Harness h(CheckLevel::kBounds);
  h.device.BeginKernel();
  h.device.BeginKernel();
  h.device.EndKernel();
  EXPECT_EQ(h.checker.count(ViolationKind::kBracketing), 1u);
}

TEST(SageCheckTest, DetectsAccessOutsideKernel) {
  Harness h(CheckLevel::kBounds);
  sim::Buffer buf = h.device.mem().Register("x", 64, 4);
  h.device.Access(0, buf, {0});
  EXPECT_EQ(h.checker.count(ViolationKind::kBracketing), 1u);
}

// --- check levels ---------------------------------------------------------

TEST(SageCheckTest, BoundsLevelIgnoresRacesAndShadow) {
  Harness h(CheckLevel::kBounds);
  sim::Buffer buf = h.device.mem().Register("x", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {5});  // uninit read
  h.device.Access(0, buf, {5}, AccessIntent::kWrite);
  h.device.Access(1, buf, {5}, AccessIntent::kWrite);  // race
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

TEST(SageCheckTest, ResetFindingsClearsCountsButKeepsShadow) {
  Harness h(CheckLevel::kFull);
  sim::Buffer buf = h.device.mem().Register("x", 64, 4);
  h.device.BeginKernel();
  h.device.Access(0, buf, {5}, AccessIntent::kWrite);
  h.device.Access(1, buf, {5}, AccessIntent::kWrite);
  h.device.EndKernel();
  EXPECT_FALSE(h.checker.clean());
  h.checker.ResetFindings();
  EXPECT_TRUE(h.checker.clean());
  EXPECT_TRUE(h.checker.violations().empty());
  // Shadow memory survived the reset: elem 5 is still "written".
  h.device.BeginKernel();
  h.device.Access(0, buf, {5});
  h.device.EndKernel();
  EXPECT_TRUE(h.checker.clean()) << h.checker.Report();
}

// --- engine integration: zero false positives on the seed apps -----------

struct EngineLevelCase {
  const char* label;
  EngineOptions options;
};

std::vector<EngineLevelCase> FullCheckConfigs() {
  std::vector<EngineLevelCase> cases;
  {
    EngineOptions o;
    o.check_level = CheckLevel::kFull;
    cases.push_back({"resident", o});
  }
  {
    EngineOptions o;
    o.check_level = CheckLevel::kFull;
    o.resident_tiles = false;
    cases.push_back({"tiled", o});
  }
  {
    EngineOptions o;
    o.check_level = CheckLevel::kFull;
    o.strategy = core::ExpandStrategy::kB40c;
    o.resident_tiles = false;
    cases.push_back({"b40c", o});
  }
  {
    EngineOptions o;
    o.check_level = CheckLevel::kFull;
    o.strategy = core::ExpandStrategy::kWarpCentric;
    o.resident_tiles = false;
    cases.push_back({"warp-centric", o});
  }
  return cases;
}

Csr CleanRunGraph() {
  return graph::GenerateRmat(9, 4000, 0.55, 0.2, 0.2, 7);
}

TEST(SageCheckCleanRunTest, AllSeedAppsAreViolationFreeAtFull) {
  const Csr csr = CleanRunGraph();
  for (const auto& c : FullCheckConfigs()) {
    auto expect_clean = [&](Engine& engine, const char* app) {
      ASSERT_NE(engine.checker(), nullptr);
      EXPECT_TRUE(engine.checker()->clean())
          << "config " << c.label << ", app " << app << "\n"
          << engine.checker()->Report();
    };
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::BfsProgram bfs;
      ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
      expect_clean(engine, "bfs");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::SsspProgram sssp;
      ASSERT_TRUE(apps::RunSssp(engine, sssp, 0).ok());
      expect_clean(engine, "sssp");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::PageRankProgram pr;
      ASSERT_TRUE(apps::RunPageRank(engine, pr, 3).ok());
      expect_clean(engine, "pagerank");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::CcProgram cc;
      ASSERT_TRUE(apps::RunConnectedComponents(engine, cc).ok());
      expect_clean(engine, "cc");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::Betweenness bc(csr.num_nodes());
      ASSERT_TRUE(bc.Run(engine, 0).ok());
      expect_clean(engine, "bc");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::KCoreProgram kcore;
      ASSERT_TRUE(apps::RunKCore(engine, kcore, 3).ok());
      expect_clean(engine, "kcore");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::LabelPropProgram lp;
      ASSERT_TRUE(apps::RunLabelPropagation(engine, lp, 3).ok());
      expect_clean(engine, "label_prop");
    }
    {
      sim::GpuDevice device(TestSpec());
      Engine engine(&device, csr, c.options);
      apps::DeltaPageRankProgram dpr;
      ASSERT_TRUE(apps::RunDeltaPageRank(engine, dpr, 1e-4).ok());
      expect_clean(engine, "pr_delta");
    }
  }
}

TEST(SageCheckCleanRunTest, ReorderingRunIsViolationFree) {
  const Csr csr = CleanRunGraph();
  EngineOptions o;
  o.check_level = CheckLevel::kFull;
  o.sampling_reorder = true;
  o.sampling_threshold_edges = 2000;  // force reorder rounds
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, o);
  apps::BfsProgram bfs;
  ASSERT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
  ASSERT_NE(engine.checker(), nullptr);
  EXPECT_TRUE(engine.checker()->clean()) << engine.checker()->Report();
}

TEST(SageCheckCleanRunTest, CheckLevelOffAttachesNothing) {
  const Csr csr = CleanRunGraph();
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  EXPECT_EQ(engine.checker(), nullptr);
  EXPECT_EQ(device.access_sink(), nullptr);
}

TEST(SageCheckCleanRunTest, EngineDetachesCheckerOnDestruction) {
  const Csr csr = CleanRunGraph();
  sim::GpuDevice device(TestSpec());
  {
    EngineOptions o;
    o.check_level = CheckLevel::kBounds;
    Engine engine(&device, csr, o);
    EXPECT_NE(device.access_sink(), nullptr);
  }
  EXPECT_EQ(device.access_sink(), nullptr);
}

// --- id-map bounds checking ----------------------------------------------

TEST(SageCheckDeathTest, InternalIdOutOfRangeAborts) {
  const Csr csr = graph::GeneratePath(8);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  EXPECT_EQ(engine.InternalId(7), 7u);
  EXPECT_DEATH(engine.InternalId(8), "out of range");
}

TEST(SageCheckDeathTest, OriginalIdOutOfRangeAborts) {
  const Csr csr = graph::GeneratePath(8);
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, EngineOptions());
  EXPECT_EQ(engine.OriginalId(7), 7u);
  EXPECT_DEATH(engine.OriginalId(1000), "out of range");
}

// --- determinism harness --------------------------------------------------

TEST(DeterminismHarnessTest, BfsIsScheduleInvariantAcrossStrategies) {
  const Csr csr = graph::GenerateRmat(9, 4000, 0.57, 0.19, 0.19, 11);
  check::DeterminismOptions dopts;  // all three strategies, 3 trials each
  check::DeterminismReport report = check::RunBfsDeterminism(
      csr, TestSpec(), 0, EngineOptions(), dopts);
  EXPECT_TRUE(report.deterministic) << report.details;
}

TEST(DeterminismHarnessTest, SmPermutationPreservesSectorTotals) {
  const Csr csr = graph::GenerateRmat(8, 2000, 0.55, 0.2, 0.2, 3);
  check::DeterminismOptions dopts;
  dopts.perturbed_trials = 2;
  check::DeterminismReport report = check::RunBfsDeterminism(
      csr, TestSpec(), 0, EngineOptions(), dopts);
  EXPECT_TRUE(report.deterministic) << report.details;
  // The details must include per-trial sector comparisons.
  EXPECT_NE(report.details.find("sectors="), std::string::npos);
}

TEST(DeterminismHarnessTest, PermutationFromSeedIsValid) {
  EXPECT_TRUE(check::PermutationFromSeed(8, 0).empty());
  auto perm = check::PermutationFromSeed(8, 42);
  ASSERT_EQ(perm.size(), 8u);
  std::vector<bool> seen(8, false);
  for (uint32_t s : perm) {
    ASSERT_LT(s, 8u);
    ASSERT_FALSE(seen[s]);
    seen[s] = true;
  }
  // Seeded shuffles are reproducible.
  EXPECT_EQ(check::PermutationFromSeed(8, 42), perm);
  EXPECT_NE(check::PermutationFromSeed(8, 43), perm);
}

TEST(DeterminismHarnessTest, HarnessFlagsAnOrderDependentTrial) {
  // A deliberately schedule-dependent "algorithm": its output hash is the
  // dispatch seed itself, so perturbed trials must mismatch the baseline.
  check::DeterminismOptions dopts;
  dopts.perturbed_trials = 1;
  dopts.strategies = {core::ExpandStrategy::kSage};
  auto trial = [](const EngineOptions& opts, uint64_t) {
    check::TrialResult r;
    r.output_hash = opts.dispatch_permutation_seed;  // order-dependent!
    r.total_sectors = 1;
    return r;
  };
  auto report = check::RunDeterminismHarness(EngineOptions(), dopts, trial);
  EXPECT_FALSE(report.deterministic);
  EXPECT_NE(report.details.find("MISMATCH"), std::string::npos);
}

}  // namespace
}  // namespace sage
