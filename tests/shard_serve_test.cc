// SageShard serving layer: placement assignment in the registry, shard
// routing through QueryService (shard_hint, served_by_shard), hot-graph
// replication, and a concurrent dispatch storm the TSan stage runs to
// prove the shard bookkeeping is race-free.

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "serve/graph_registry.h"
#include "serve/service.h"

namespace sage::serve {
namespace {

using graph::Csr;
using graph::NodeId;
using util::StatusCode;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr SmallGraph(uint64_t seed) {
  return graph::GenerateRmat(9, 4000, 0.57, 0.19, 0.19, seed);
}

ServeOptions SyncOptions(uint32_t engines_per_graph = 2) {
  ServeOptions options;
  options.worker_threads = 0;  // caller drives via ProcessAllPending
  options.engines_per_graph = engines_per_graph;
  options.device_spec = TestSpec();
  return options;
}

Request Bfs(const std::string& graph, NodeId source,
            uint32_t shard_hint = Placement::kNoShard) {
  Request request;
  request.graph = graph;
  request.app = "bfs";
  request.params.sources = {source};
  request.shard_hint = shard_hint;
  return request;
}

Response RoundTrip(QueryService& service, Request request) {
  auto future = service.Submit(std::move(request));
  SAGE_CHECK(future.ok()) << future.status().ToString();
  service.ProcessAllPending();
  return future->get();
}

// --- Placement in the registry ----------------------------------------------

TEST(ShardPlacementTest, RoundRobinPrimariesAtAdd) {
  GraphRegistry registry(3);
  EXPECT_EQ(registry.num_shards(), 3u);
  ASSERT_TRUE(registry.Add("a", SmallGraph(1)).ok());
  ASSERT_TRUE(registry.Add("b", SmallGraph(2)).ok());
  ASSERT_TRUE(registry.Add("c", SmallGraph(3)).ok());
  ASSERT_TRUE(registry.Add("d", SmallGraph(4)).ok());
  EXPECT_EQ(registry.PlacementOf("a").primary, 0u);
  EXPECT_EQ(registry.PlacementOf("b").primary, 1u);
  EXPECT_EQ(registry.PlacementOf("c").primary, 2u);
  EXPECT_EQ(registry.PlacementOf("d").primary, 0u);  // wraps
  // A fresh placement serves only its primary.
  EXPECT_EQ(registry.PlacementOf("a").shards,
            std::vector<uint32_t>{0u});
}

TEST(ShardPlacementTest, AddReplicaGrowsPlacement) {
  GraphRegistry registry(4);
  ASSERT_TRUE(registry.Add("g", SmallGraph(5)).ok());
  EXPECT_TRUE(registry.AddReplica("g", 2).ok());
  EXPECT_TRUE(registry.AddReplica("g", 2).ok());  // idempotent
  Placement p = registry.PlacementOf("g");
  EXPECT_EQ(p.shards, (std::vector<uint32_t>{0u, 2u}));
  EXPECT_TRUE(p.OnShard(0));
  EXPECT_TRUE(p.OnShard(2));
  EXPECT_FALSE(p.OnShard(1));
}

TEST(ShardPlacementTest, AddReplicaErrors) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("g", SmallGraph(6)).ok());
  EXPECT_EQ(registry.AddReplica("g", 5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.AddReplica("nope", 1).code(), StatusCode::kNotFound);
}

TEST(ShardPlacementTest, DefaultRegistryIsSingleShard) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", SmallGraph(7)).ok());
  EXPECT_EQ(registry.num_shards(), 1u);
  EXPECT_EQ(registry.PlacementOf("g").primary, 0u);
}

// --- Routing through the service --------------------------------------------

TEST(ShardServeTest, ResponseReportsServingShard) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("a", SmallGraph(10)).ok());  // primary 0
  ASSERT_TRUE(registry.Add("b", SmallGraph(11)).ok());  // primary 1
  QueryService service(&registry, SyncOptions());
  Response ra = RoundTrip(service, Bfs("a", 0));
  Response rb = RoundTrip(service, Bfs("b", 0));
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
  EXPECT_EQ(ra.served_by_shard, 0u);
  EXPECT_EQ(rb.served_by_shard, 1u);
}

TEST(ShardServeTest, HintInsidePlacementIsHonored) {
  GraphRegistry registry(3);
  ASSERT_TRUE(registry.Add("g", SmallGraph(12)).ok());  // primary 0
  ASSERT_TRUE(registry.AddReplica("g", 2).ok());
  QueryService service(&registry, SyncOptions());
  Response hinted = RoundTrip(service, Bfs("g", 0, /*shard_hint=*/2));
  ASSERT_TRUE(hinted.status.ok());
  EXPECT_EQ(hinted.served_by_shard, 2u);
  // A hint outside the placement is a preference the placement overrides:
  // the dispatch still runs, on a placement shard.
  Response off = RoundTrip(service, Bfs("g", 0, /*shard_hint=*/1));
  ASSERT_TRUE(off.status.ok());
  EXPECT_TRUE(registry.PlacementOf("g").OnShard(off.served_by_shard) ||
              off.served_by_shard == 1u);
}

TEST(ShardServeTest, OutOfRangeHintIsRejectedAtValidation) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("g", SmallGraph(13)).ok());
  QueryService service(&registry, SyncOptions());
  auto future = service.Submit(Bfs("g", 0, /*shard_hint=*/7));
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardServeTest, AnswersAreShardInvariant) {
  GraphRegistry registry(2);
  Csr csr = SmallGraph(14);
  ASSERT_TRUE(registry.Add("g", csr).ok());
  ASSERT_TRUE(registry.AddReplica("g", 1).ok());
  QueryService service(&registry, SyncOptions(/*engines_per_graph=*/2));
  Response r0 = RoundTrip(service, Bfs("g", 0, 0));
  Response r1 = RoundTrip(service, Bfs("g", 0, 1));
  ASSERT_TRUE(r0.status.ok());
  ASSERT_TRUE(r1.status.ok());
  // Which shard serves can never change the answer.
  EXPECT_EQ(r0.output_digest, r1.output_digest);
}

TEST(ShardServeTest, PerShardDispatchCountersAndImbalance) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("a", SmallGraph(15)).ok());  // shard 0
  ASSERT_TRUE(registry.Add("b", SmallGraph(16)).ok());  // shard 1
  ServeOptions options = SyncOptions();
  options.batching = false;
  QueryService service(&registry, options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(RoundTrip(service, Bfs("a", 0)).status.ok());
  }
  ASSERT_TRUE(RoundTrip(service, Bfs("b", 0)).status.ok());
  std::string json = service.metrics().ToJson();
  EXPECT_NE(json.find("serve.shard.dispatches.0"), std::string::npos);
  EXPECT_NE(json.find("serve.shard.dispatches.1"), std::string::npos);
  EXPECT_NE(json.find("serve.shard.imbalance"), std::string::npos);
}

TEST(ShardServeTest, HotGraphIsReplicated) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("hot", SmallGraph(17)).ok());  // primary 0
  ServeOptions options = SyncOptions(/*engines_per_graph=*/4);
  options.batching = false;
  options.replicate_hot_after = 3;
  QueryService service(&registry, options);
  EXPECT_EQ(registry.PlacementOf("hot").shards.size(), 1u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(RoundTrip(service, Bfs("hot", 0)).status.ok());
  }
  // The third dispatch crossed the threshold: the graph now also lives on
  // shard 1 (the only other shard), and the stat records the replication.
  Placement p = registry.PlacementOf("hot");
  EXPECT_EQ(p.shards.size(), 2u);
  EXPECT_TRUE(p.OnShard(1));
  EXPECT_EQ(service.stats().shard_replications, 1u);
}

TEST(ShardServeTest, BatchingKeepsDifferentHintsApart) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("g", SmallGraph(18)).ok());
  ASSERT_TRUE(registry.AddReplica("g", 1).ok());
  QueryService service(&registry, SyncOptions());
  auto f0 = service.Submit(Bfs("g", 0, 0));
  auto f1 = service.Submit(Bfs("g", 1, 1));
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f1.ok());
  service.ProcessAllPending();
  Response r0 = f0->get();
  Response r1 = f1->get();
  ASSERT_TRUE(r0.status.ok());
  ASSERT_TRUE(r1.status.ok());
  // Different hints must not coalesce into one dispatch.
  EXPECT_EQ(r0.batch_size, 1u);
  EXPECT_EQ(r1.batch_size, 1u);
  EXPECT_EQ(r0.served_by_shard, 0u);
  EXPECT_EQ(r1.served_by_shard, 1u);
}

// --- Concurrency (the TSan stage) -------------------------------------------

TEST(ShardServeTest, ConcurrentShardedDispatchIsRaceFree) {
  GraphRegistry registry(2);
  ASSERT_TRUE(registry.Add("a", SmallGraph(19)).ok());
  ASSERT_TRUE(registry.Add("b", SmallGraph(20)).ok());
  ServeOptions options;
  options.worker_threads = 4;
  options.engines_per_graph = 2;
  options.device_spec = TestSpec();
  options.replicate_hot_after = 4;  // exercise replication under threads
  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 24; ++i) {
    const std::string graph = (i % 2 == 0) ? "a" : "b";
    const uint32_t hint =
        (i % 3 == 0) ? static_cast<uint32_t>(i % 2) : Placement::kNoShard;
    auto f = service.Submit(Bfs(graph, static_cast<NodeId>(i % 16), hint));
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(*f));
  }
  std::set<uint32_t> shards_seen;
  for (auto& f : futures) {
    Response r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_NE(r.served_by_shard, Placement::kNoShard);
    shards_seen.insert(r.served_by_shard);
  }
  EXPECT_GE(shards_seen.size(), 2u);  // both shards actually served
  service.Shutdown();
}

}  // namespace
}  // namespace sage::serve
