#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "graph/builder.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/datasets.h"
#include "graph/dynamic.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/random.h"
#include "util/stats.h"

namespace sage::graph {
namespace {

TEST(CooTest, SortAndDedup) {
  Coo coo;
  coo.num_nodes = 4;
  coo.u = {2, 0, 2, 0, 1};
  coo.v = {1, 3, 1, 3, 0};
  SortCoo(coo);
  EXPECT_TRUE(IsSorted(coo));
  DedupSortedCoo(coo);
  EXPECT_EQ(coo.num_edges(), 3u);
  EXPECT_EQ(coo.u, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(coo.v, (std::vector<NodeId>{3, 0, 1}));
}

TEST(CooTest, RemoveSelfLoops) {
  Coo coo;
  coo.num_nodes = 3;
  coo.u = {0, 1, 2};
  coo.v = {0, 2, 2};
  RemoveSelfLoops(coo);
  EXPECT_EQ(coo.num_edges(), 1u);
  EXPECT_EQ(coo.u[0], 1u);
}

TEST(CooTest, SymmetrizeDoublesEdges) {
  Coo coo;
  coo.num_nodes = 3;
  coo.u = {0};
  coo.v = {1};
  Symmetrize(coo);
  EXPECT_EQ(coo.num_edges(), 2u);
}

TEST(CsrTest, FromCooBasics) {
  Coo coo;
  coo.num_nodes = 4;
  coo.u = {0, 0, 1, 3};
  coo.v = {1, 2, 2, 0};
  Csr csr = Csr::FromCoo(coo);
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.OutDegree(0), 2u);
  EXPECT_EQ(csr.OutDegree(2), 0u);
  EXPECT_TRUE(csr.Validate().ok());
  auto nbrs = csr.Neighbors(0);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(CsrTest, FromUnsortedCooSortsAdjacency) {
  Coo coo;
  coo.num_nodes = 3;
  coo.u = {1, 0, 0};
  coo.v = {2, 2, 1};
  Csr csr = Csr::FromCoo(coo);
  auto nbrs = csr.Neighbors(0);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(CsrTest, TransposeRoundTrip) {
  Csr csr = GenerateRmat(8, 2000, 0.5, 0.2, 0.2, 3);
  Csr t = csr.Transpose();
  EXPECT_EQ(t.num_edges(), csr.num_edges());
  Csr tt = t.Transpose();
  EXPECT_EQ(tt, csr);
}

TEST(CsrTest, ToCooRoundTrip) {
  Csr csr = GenerateRmat(8, 1500, 0.5, 0.2, 0.2, 4);
  Csr back = Csr::FromCoo(csr.ToCoo());
  EXPECT_EQ(back, csr);
}

TEST(CsrTest, MaxOutDegreeOnStar) {
  EXPECT_EQ(GenerateStar(100).MaxOutDegree(), 99u);
}

TEST(BuilderTest, RejectsOutOfRangeEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 5);
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(BuilderTest, NormalizesEdges) {
  GraphBuilder builder(4);
  builder.AddEdge(1, 1);  // self loop
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 2);  // dup
  builder.AddEdge(2, 0);
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 2u);
}

TEST(BuilderTest, SymmetrizeOption) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  BuildOptions opts;
  opts.symmetrize = true;
  auto result = builder.Build(opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 2u);
  EXPECT_EQ(result->Neighbors(1)[0], 0u);
}

TEST(IoTest, EdgeListRoundTrip) {
  Coo coo;
  coo.num_nodes = 5;
  coo.u = {0, 1, 4};
  coo.v = {1, 2, 0};
  std::string path = testing::TempDir() + "/edges.txt";
  ASSERT_TRUE(SaveEdgeListText(coo, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->u, coo.u);
  EXPECT_EQ(loaded->v, coo.v);
  EXPECT_EQ(loaded->num_nodes, 5u);
  std::remove(path.c_str());
}

TEST(IoTest, EdgeListSkipsComments) {
  std::string path = testing::TempDir() + "/commented.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# comment\n% other\n0 1\n\n2 3\n", f);
  fclose(f);
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, EdgeListMalformedFails) {
  std::string path = testing::TempDir() + "/bad.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("0 1\nnot numbers\n", f);
  fclose(f);
  auto loaded = LoadEdgeListText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileFails) {
  auto loaded = LoadEdgeListText("/nonexistent/nope.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST(IoTest, CsrBinaryRoundTrip) {
  Csr csr = GenerateRmat(8, 2000, 0.5, 0.2, 0.2, 8);
  std::string path = testing::TempDir() + "/graph.sage";
  ASSERT_TRUE(SaveCsrBinary(csr, path).ok());
  auto loaded = LoadCsrBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, csr);
  std::remove(path.c_str());
}

TEST(IoTest, CsrBinaryBadMagicFails) {
  std::string path = testing::TempDir() + "/junk.sage";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("JUNKJUNKJUNKJUNK", f);
  fclose(f);
  auto loaded = LoadCsrBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(GeneratorsTest, UniformHasRequestedShape) {
  Csr csr = GenerateUniform(1000, 5000, 1);
  EXPECT_EQ(csr.num_nodes(), 1000u);
  EXPECT_LE(csr.num_edges(), 5000u);
  EXPECT_GT(csr.num_edges(), 4500u);  // few dup/self-loop losses
  EXPECT_TRUE(csr.Validate().ok());
}

TEST(GeneratorsTest, RmatIsDeterministic) {
  Csr a = GenerateRmat(9, 3000, 0.5, 0.2, 0.2, 7);
  Csr b = GenerateRmat(9, 3000, 0.5, 0.2, 0.2, 7);
  EXPECT_EQ(a, b);
}

TEST(GeneratorsTest, RmatSkewGrowsWithA) {
  Csr mild = GenerateRmat(11, 40000, 0.3, 0.25, 0.25, 5);
  Csr harsh = GenerateRmat(11, 40000, 0.65, 0.15, 0.15, 5);
  auto gini = [](const Csr& c) {
    std::vector<uint64_t> deg(c.num_nodes());
    for (NodeId u = 0; u < c.num_nodes(); ++u) deg[u] = c.OutDegree(u);
    return util::GiniCoefficient(std::move(deg));
  };
  EXPECT_GT(gini(harsh), gini(mild));
}

TEST(GeneratorsTest, CommunityIsDenseAndRegular) {
  Csr csr = GenerateCommunity(512, 60, 64, 0.8, 2);
  auto stats = ComputeStats(csr);
  EXPECT_GT(stats.avg_degree, 40.0);  // dedup trims intra-community collisions
  EXPECT_LT(stats.degree_gini, 0.2);  // near-uniform degrees
}

TEST(GeneratorsTest, WebCopyHasPowerLawIndegree) {
  Csr csr = GenerateWebCopy(3000, 12, 0.7, 3);
  Csr t = csr.Transpose();
  EXPECT_GT(t.MaxOutDegree(), 100u);  // hub pages emerge
}

TEST(GeneratorsTest, GridPathStarComplete) {
  EXPECT_EQ(GenerateGrid2d(3, 4).num_edges(), 2u * (3 * 3 + 2 * 4));
  EXPECT_EQ(GeneratePath(5).num_edges(), 4u);
  EXPECT_EQ(GenerateStar(5).num_edges(), 4u);
  EXPECT_EQ(GenerateComplete(5).num_edges(), 20u);
}

TEST(DatasetsTest, AllTinyDatasetsAreValid) {
  for (DatasetId id : AllDatasets()) {
    Csr csr = MakeDataset(id, DatasetScale::kTiny);
    EXPECT_TRUE(csr.Validate().ok()) << DatasetName(id);
    EXPECT_GT(csr.num_edges(), 0u) << DatasetName(id);
  }
}

TEST(DatasetsTest, SkewOrderingMatchesPaper) {
  // twitter-s must be the most skewed social graph; brain-s the most
  // regular dataset overall (Section 7.2's analysis).
  auto gini = [](DatasetId id) {
    return ComputeStats(MakeDataset(id, DatasetScale::kTiny)).degree_gini;
  };
  EXPECT_GT(gini(DatasetId::kTwitters), gini(DatasetId::kLjournals));
  EXPECT_GT(gini(DatasetId::kTwitters), gini(DatasetId::kFriendsters));
  for (DatasetId other :
       {DatasetId::kUk2002s, DatasetId::kLjournals, DatasetId::kTwitters,
        DatasetId::kFriendsters}) {
    EXPECT_LT(gini(DatasetId::kBrains), gini(other));
  }
}

TEST(DatasetsTest, BrainIsDensest) {
  auto avg = [](DatasetId id) {
    return ComputeStats(MakeDataset(id, DatasetScale::kTiny)).avg_degree;
  };
  for (DatasetId other :
       {DatasetId::kUk2002s, DatasetId::kLjournals, DatasetId::kTwitters,
        DatasetId::kFriendsters}) {
    EXPECT_GT(avg(DatasetId::kBrains), avg(other));
  }
}

TEST(DynamicTest, InsertAndDelete) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  Csr csr = builder.Build().value();
  EdgeUpdateBatch batch;
  batch.insertions = {{2, 3}, {0, 1}};  // one dup of existing
  batch.deletions = {{1, 2}, {3, 0}};   // one missing
  auto updated = ApplyUpdates(csr, batch);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->num_edges(), 2u);
  EXPECT_EQ(updated->Neighbors(2)[0], 3u);
  EXPECT_EQ(updated->OutDegree(1), 0u);
}

TEST(DynamicTest, OutOfRangeRejected) {
  Csr csr = GeneratePath(3);
  EdgeUpdateBatch batch;
  batch.insertions = {{0, 9}};
  EXPECT_FALSE(ApplyUpdates(csr, batch).ok());
}

TEST(DynamicTest, EmptyBatchIsIdentity) {
  Csr csr = GenerateRmat(7, 500, 0.5, 0.2, 0.2, 5);
  auto updated = ApplyUpdates(csr, EdgeUpdateBatch());
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, csr);
}

}  // namespace
}  // namespace sage::graph
