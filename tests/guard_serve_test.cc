// Tests for SageGuard's serve layer: fault injection under load, retry and
// checkpoint-resume inside dispatches, circuit breaking, poisoned-batch
// bisection, deadlines with adaptive batch shrink, cancellation sweeps,
// and admission accounting under concurrent Submit storms.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "serve/circuit_breaker.h"
#include "serve/graph_registry.h"
#include "serve/service.h"
#include "sim/gpu_device.h"

namespace sage::serve {
namespace {

using graph::Csr;
using graph::NodeId;
using util::StatusCode;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

Csr GraphA() { return graph::GenerateRmat(10, 8192, 0.57, 0.19, 0.19, 7); }

ServeOptions SyncOptions() {
  ServeOptions options;
  options.worker_threads = 0;  // caller drives via ProcessAllPending
  options.device_spec = TestSpec();
  return options;
}

Request MakeRequest(const std::string& graph, const std::string& app,
                    std::vector<NodeId> sources) {
  Request request;
  request.graph = graph;
  request.app = app;
  request.params.sources = std::move(sources);
  return request;
}

/// The request's answer on a fresh fault-free engine — what every response
/// must match bit-for-bit no matter which faults the service absorbed.
uint64_t SoloDigest(const Csr& csr, const Request& request) {
  sim::GpuDevice device(TestSpec());
  core::EngineOptions options;
  options.host_threads = 1;
  auto engine = core::Engine::Create(&device, csr, options);
  SAGE_CHECK(engine.ok());
  auto program = apps::CreateProgram(request.app);
  SAGE_CHECK(program.ok());
  auto stats = apps::RunApp(**engine, **program, request.params);
  SAGE_CHECK(stats.ok()) << stats.status().ToString();
  return apps::OutputDigest(**engine, **program);
}

/// Submits one request and drains it synchronously (one dispatch).
Response RoundTrip(QueryService& service, Request request) {
  auto submitted = service.Submit(std::move(request));
  SAGE_CHECK(submitted.ok()) << submitted.status().ToString();
  service.ProcessAllPending();
  return submitted->get();
}

// --- Acceptance: faulty service, bit-identical answers ----------------------

TEST(GuardServeTest, OnePercentFaultRateStillAnswersBitIdentically) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec = "seed 7\ntransient rate 0.01\n";
  options.retry.max_attempts = 5;
  options.checkpoint_interval = 2;
  options.engines_per_graph = 1;  // one deterministic fault schedule
  options.batching = false;

  std::vector<Request> requests;
  for (NodeId s : {0u, 1u, 5u, 17u, 101u, 256u, 300u, 512u, 700u, 900u}) {
    requests.push_back(MakeRequest("g", "bfs", {s}));
  }
  requests.push_back(MakeRequest("g", "sssp", {0u}));
  requests.push_back(MakeRequest("g", "sssp", {42u}));
  {
    Request pr = MakeRequest("g", "pagerank", {});
    pr.params.iterations = 15;
    requests.push_back(pr);
    requests.push_back(pr);
  }

  QueryService service(&registry, options);
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    requests[i].id = i;
    Response response = RoundTrip(service, requests[i]);
    // Every request completes despite injected faults, and its answer is
    // bit-identical to a fault-free run — the SageGuard acceptance bar.
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.output_digest, SoloDigest(csr, requests[i]));
  }
  EXPECT_EQ(service.stats().completed, requests.size());
}

TEST(GuardServeTest, AggressiveTransientsAreRetriedToSuccess) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec = "seed 3\ntransient rate 0.9 count 4\n";
  options.retry.max_attempts = 6;
  options.engines_per_graph = 1;
  options.batching = false;

  QueryService service(&registry, options);
  Request request = MakeRequest("g", "bfs", {0u});
  Response response = RoundTrip(service, request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.attempts, 1u);
  EXPECT_EQ(response.output_digest, SoloDigest(csr, request));
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GT(stats.backoff_ms, 0.0);  // jittered backoff was computed
}

TEST(GuardServeTest, CheckpointResumeInsideDispatch) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec = "transient kernel 5\n";  // fails mid-run, once
  options.retry.max_attempts = 3;
  options.checkpoint_interval = 2;
  options.engines_per_graph = 1;
  options.batching = false;

  QueryService service(&registry, options);
  Request request = MakeRequest("g", "bfs", {0u});
  Response response = RoundTrip(service, request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_EQ(response.output_digest, SoloDigest(csr, request));
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  // The retry resumed from the last checkpoint instead of starting over.
  EXPECT_EQ(stats.resumes, 1u);
  EXPECT_EQ(stats.checkpoint_fallbacks, 0u);
}

TEST(GuardServeTest, CorruptCheckpointFallsBackToFullRerun) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec =
      "transient kernel 5\n"
      "corrupt-checkpoint iter 4\n";
  options.retry.max_attempts = 3;
  options.checkpoint_interval = 2;
  options.engines_per_graph = 1;
  options.batching = false;

  QueryService service(&registry, options);
  Request request = MakeRequest("g", "bfs", {0u});
  Response response = RoundTrip(service, request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.output_digest, SoloDigest(csr, request));
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.checkpoint_fallbacks, 1u);
  EXPECT_EQ(stats.resumes, 0u);
}

// --- Failure reporting: request id + fault site -----------------------------

TEST(GuardServeTest, FailureCarriesRequestIdAndFaultSite) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec = "transient kernel 2\n";
  options.retry.max_attempts = 1;  // no retries: surface the raw fault
  options.engines_per_graph = 1;
  options.batching = false;

  QueryService service(&registry, options);
  Request request = MakeRequest("g", "bfs", {0u});
  request.id = 42;
  Response response = RoundTrip(service, request);
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  const std::string& message = response.status.message();
  EXPECT_NE(message.find("request 42"), std::string::npos) << message;
  EXPECT_NE(message.find("(bfs@g)"), std::string::npos) << message;
  EXPECT_NE(message.find("kernel=2"), std::string::npos) << message;
  EXPECT_NE(message.find("iteration"), std::string::npos) << message;
}

TEST(GuardServeTest, FaultSpecParseErrorSurfacesOnSubmit) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  ServeOptions options = SyncOptions();
  options.fault_spec = "transient rate 1.5\n";  // invalid rate
  QueryService service(&registry, options);
  auto submitted = service.Submit(MakeRequest("g", "bfs", {0u}));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
}

// --- Circuit breaker --------------------------------------------------------

TEST(GuardServeTest, BreakerOpensFailsFastAndRecoversViaProbe) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  // Every engine run faults — but only the first 3, so the half-open
  // probe after the cooldown succeeds and closes the breaker.
  options.fault_spec = "transient rate 1.0 count 3\n";
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_dispatches = 2;
  options.engines_per_graph = 1;
  options.batching = false;

  QueryService service(&registry, options);
  Request request = MakeRequest("g", "bfs", {0u});

  // Dispatches 1-3: infrastructure failures; the third trips the breaker.
  for (int i = 1; i <= 3; ++i) {
    SCOPED_TRACE("dispatch " + std::to_string(i));
    Response response = RoundTrip(service, request);
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_NE(response.status.message().find("transient"), std::string::npos);
  }
  // Dispatch 4: still cooling — failed fast, no engine run burned.
  Response rejected = RoundTrip(service, request);
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status.message().find("circuit breaker open"),
            std::string::npos)
      << rejected.status.message();
  // Dispatch 5: cooldown over → half-open probe; the fault budget is
  // exhausted, so the probe succeeds and closes the breaker.
  Response probe = RoundTrip(service, request);
  EXPECT_TRUE(probe.status.ok()) << probe.status.ToString();
  // Dispatch 6: back to normal service.
  EXPECT_TRUE(RoundTrip(service, request).status.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_rejects, 1u);
}

TEST(GuardServeTest, FailedProbeReopensBreaker) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  // One more fault than the previous test: the first probe consumes it,
  // fails, and re-opens the breaker for another cooldown window.
  options.fault_spec = "transient rate 1.0 count 4\n";
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_dispatches = 2;
  options.engines_per_graph = 1;
  options.batching = false;

  QueryService service(&registry, options);
  Request request = MakeRequest("g", "bfs", {0u});

  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(RoundTrip(service, request).status.code(),
              StatusCode::kUnavailable);  // dispatches 1-3: trip the breaker
  }
  EXPECT_NE(RoundTrip(service, request).status.message()
                .find("circuit breaker open"),
            std::string::npos);  // dispatch 4: rejected
  // Dispatch 5: probe runs, eats the 4th fault, fails → breaker re-opens.
  Response probe1 = RoundTrip(service, request);
  EXPECT_EQ(probe1.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(probe1.status.message().find("transient"), std::string::npos);
  // Dispatch 6: cooling again.
  EXPECT_NE(RoundTrip(service, request).status.message()
                .find("circuit breaker open"),
            std::string::npos);
  // Dispatch 7: second probe succeeds (faults exhausted) → closed.
  EXPECT_TRUE(RoundTrip(service, request).status.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.breaker_opens, 2u);  // initial trip + failed probe
  EXPECT_EQ(stats.breaker_rejects, 2u);
}

TEST(CircuitBreakerTest, StaleSuccessWhileOpenDoesNotClose) {
  BreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown_dispatches = 4;
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Allow(1));
  breaker.RecordFailure(1);
  ASSERT_TRUE(breaker.Allow(2));
  breaker.RecordFailure(2);  // second consecutive failure trips it open
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // A slow dispatch admitted before the trip completes now: its success
  // predates the failures and must not bypass the cooldown + probe
  // discipline.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(3));  // still cooling
  ASSERT_TRUE(breaker.Allow(6));   // cooldown over → half-open probe
  breaker.RecordSuccess();         // the probe's success does close it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, NeutralOutcomeFreesProbeSlotWithoutClosing) {
  BreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_dispatches = 2;
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Allow(1));
  breaker.RecordFailure(1);        // trips open
  ASSERT_TRUE(breaker.Allow(3));   // half-open probe claimed
  EXPECT_FALSE(breaker.Allow(3));  // one probe at a time
  // The probe resolved with a per-request outcome (poisoned input,
  // deadline miss, cancellation): infrastructure health still unknown —
  // the slot is freed, but the breaker neither closes nor re-opens.
  breaker.RecordNeutral();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Allow(4));  // the next dispatch probes again
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opens(), 1u);
}

// --- Poisoned-batch bisection -----------------------------------------------

TEST(GuardServeTest, BisectionIsolatesPoisonedMemberFromCoalescedBatch) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec = "poison node 13\n";
  options.engines_per_graph = 1;

  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (NodeId s = 0; s < 64; ++s) {
    Request request = MakeRequest("g", "bfs", {s});
    request.id = s;
    auto submitted = service.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.ProcessAllPending();  // all 64 coalesce into one dispatch

  for (NodeId s = 0; s < 64; ++s) {
    SCOPED_TRACE("source " + std::to_string(s));
    Response response = futures[s].get();
    if (s == 13) {
      // The poisoned member fails alone, with its id and the fault site.
      EXPECT_EQ(response.status.code(), StatusCode::kInternal);
      const std::string& message = response.status.message();
      EXPECT_NE(message.find("request 13"), std::string::npos) << message;
      EXPECT_NE(message.find("poisoned source node 13"), std::string::npos)
          << message;
    } else {
      // Every healthy member still gets its bit-exact answer.
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.output_digest,
                SoloDigest(csr, MakeRequest("g", "bfs", {s})));
    }
  }
  // 64 → 32 → 16 → 8 → 4 → 2 → {1, 1}: six splits isolate the poison.
  EXPECT_EQ(service.stats().batch_splits, 6u);
}

TEST(GuardServeTest, PoisonedProbeResolvesAndBreakerRecovers) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.fault_spec = "transient rate 1.0 count 3\npoison node 13\n";
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_dispatches = 2;
  options.engines_per_graph = 1;

  QueryService service(&registry, options);

  // Dispatches 1-3 trip the breaker; dispatch 4 is rejected while cooling.
  for (int i = 1; i <= 3; ++i) {
    SCOPED_TRACE("dispatch " + std::to_string(i));
    EXPECT_EQ(RoundTrip(service, MakeRequest("g", "bfs", {0u})).status.code(),
              StatusCode::kUnavailable);
  }
  EXPECT_NE(RoundTrip(service, MakeRequest("g", "bfs", {0u}))
                .status.message()
                .find("circuit breaker open"),
            std::string::npos);

  // Dispatch 5 is the half-open probe — a coalesced batch whose bisection
  // chases a poisoned source through several kInternal dispatches. None of
  // those say anything about infrastructure health, but each must resolve
  // its probe slot or the breaker wedges half-open and rejects the graph
  // forever (including the bisection halves themselves).
  const std::vector<NodeId> sources = {13u, 1u, 2u, 3u};
  std::vector<std::future<Response>> futures;
  for (NodeId s : sources) {
    Request request = MakeRequest("g", "bfs", {s});
    request.id = s;
    auto submitted = service.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.ProcessAllPending();
  for (size_t i = 0; i < sources.size(); ++i) {
    SCOPED_TRACE("source " + std::to_string(sources[i]));
    Response response = futures[i].get();
    if (sources[i] == 13u) {
      EXPECT_EQ(response.status.code(), StatusCode::kInternal);
    } else {
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.output_digest,
                SoloDigest(csr, MakeRequest("g", "bfs", {sources[i]})));
    }
  }
  // A healthy bisection half closed the breaker: normal service resumed.
  EXPECT_TRUE(RoundTrip(service, MakeRequest("g", "bfs", {0u})).status.ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_rejects, 1u);
}

// --- Deadlines & adaptive batching ------------------------------------------

TEST(GuardServeTest, DeadlineMissShrinksBatchCapAndCleanRunsRecoverIt) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options = SyncOptions();
  options.max_batch = 8;
  options.adaptive_batch = true;
  options.engines_per_graph = 1;

  QueryService service(&registry, options);
  std::vector<std::future<Response>> futures;
  for (NodeId s = 0; s < 8; ++s) {
    Request request = MakeRequest("g", "bfs", {s});
    request.deadline_modeled_seconds = 1e-12;  // impossible budget
    auto submitted = service.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  service.ProcessAllPending();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status.code(), StatusCode::kDeadlineExceeded);
  }
  ServiceStats after_miss = service.stats();
  EXPECT_EQ(after_miss.deadline_misses, 1u);  // one dispatch missed
  EXPECT_EQ(after_miss.current_max_batch, 4u);  // 8 halved

  // Clean dispatches grow the cap back additively (+1 each).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(RoundTrip(service, MakeRequest("g", "bfs", {0u})).status.ok());
  }
  EXPECT_EQ(service.stats().current_max_batch, 7u);
}

TEST(GuardServeTest, GenerousModeledDeadlineDoesNotTrip) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());
  Request request = MakeRequest("g", "bfs", {0u});
  request.deadline_modeled_seconds = 1e6;
  Response response = RoundTrip(service, request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(service.stats().deadline_misses, 0u);
}

TEST(GuardServeTest, NegativeDeadlineIsRejectedAtSubmit) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());
  Request request = MakeRequest("g", "bfs", {0u});
  request.deadline_modeled_seconds = -1.0;
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Cancellation -----------------------------------------------------------

TEST(GuardServeTest, CancelledRequestIsSweptBeforeDispatch) {
  Csr csr = GraphA();
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());
  QueryService service(&registry, SyncOptions());

  std::vector<std::future<Response>> futures;
  std::vector<Request> requests;
  for (NodeId s : {0u, 1u, 2u}) {
    Request request = MakeRequest("g", "bfs", {s});
    request.cancel = std::make_shared<core::CancellationToken>();
    requests.push_back(request);
    auto submitted = service.Submit(request);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  requests[1].cancel->Cancel();  // cancel the middle one while queued
  service.ProcessAllPending();

  Response cancelled = futures[1].get();
  EXPECT_EQ(cancelled.status.code(), StatusCode::kAborted);
  EXPECT_NE(cancelled.status.message().find("cancelled before dispatch"),
            std::string::npos)
      << cancelled.status.message();
  for (size_t i : {size_t{0}, size_t{2}}) {
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.output_digest, SoloDigest(csr, requests[i]));
  }
  EXPECT_EQ(service.stats().cancelled, 1u);
}

// --- Admission accounting under concurrent Submit storms --------------------

TEST(GuardServeTest, SubmitStormAccountsEveryRequestExactly) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Add("g", GraphA()).ok());

  ServeOptions options;
  options.worker_threads = 2;
  options.device_spec = TestSpec();
  options.max_pending = 8;  // tiny queue: force kResourceExhausted
  options.engines_per_graph = 1;

  QueryService service(&registry, options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::future<Response>> futures[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto submitted = service.Submit(MakeRequest("g", "bfs", {0u}));
        if (submitted.ok()) {
          futures[t].push_back(std::move(*submitted));
          accepted.fetch_add(1);
        } else {
          // The only overload answer is backpressure, never a lost future.
          ASSERT_EQ(submitted.status().code(),
                    StatusCode::kResourceExhausted);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.Shutdown();  // drains everything accepted

  EXPECT_EQ(accepted.load() + rejected.load(),
            uint64_t{kThreads * kPerThread});
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed, accepted.load());
  // Every accepted future resolves with a real answer — none are dropped.
  uint64_t resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      Response response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, accepted.load());
}

}  // namespace
}  // namespace sage::serve
