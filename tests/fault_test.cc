// Tests for SageGuard's sim/core layers: fault-spec parsing, each injected
// fault class, serial-vs-parallel fault-schedule determinism, cancellation
// and deadlines, and checkpoint/resume — including the contract that a
// recovered run's output is bit-identical to a fault-free run.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/registry.h"
#include "core/engine.h"
#include "core/guard.h"
#include "graph/generators.h"
#include "sim/fault_injector.h"
#include "sim/gpu_device.h"
#include "util/logging.h"

namespace sage {
namespace {

using graph::Csr;
using graph::NodeId;
using util::StatusCode;

Csr TestGraph() { return graph::GenerateRmat(10, 8192, 0.57, 0.19, 0.19, 7); }

apps::AppParams BfsParams(NodeId source = 0) {
  apps::AppParams params;
  params.sources = {source};
  return params;
}

/// One guarded run with serve-style recovery: retry kUnavailable faults up
/// to `max_attempts`, resuming from the latest checkpoint when one exists
/// and falling back to a full rerun when the checkpoint is corrupt.
struct GuardedRun {
  util::Status status;
  uint64_t digest = 0;
  double seconds = 0.0;
  uint32_t attempts = 0;
  uint32_t resumes = 0;
  uint32_t fallbacks = 0;
  uint64_t checkpoints = 0;
  std::string trace;
};

GuardedRun RunWithFaults(const Csr& csr, const std::string& app,
                         const apps::AppParams& params,
                         const std::string& spec_text,
                         uint32_t host_threads = 1,
                         uint32_t checkpoint_interval = 2,
                         uint32_t max_attempts = 5) {
  GuardedRun out;
  sim::GpuDevice device{sim::DeviceSpec()};
  std::unique_ptr<sim::FaultInjector> injector;
  if (!spec_text.empty()) {
    auto spec = sim::ParseFaultSpec(spec_text);
    SAGE_CHECK(spec.ok()) << spec.status().ToString();
    injector = std::make_unique<sim::FaultInjector>(std::move(*spec));
    device.set_fault_injector(injector.get());
  }
  core::EngineOptions options;
  options.host_threads = host_threads;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram(app);
  SAGE_CHECK(program.ok());
  core::MemoryCheckpointSink sink;
  if (checkpoint_interval > 0) {
    core::RunGuard guard;
    guard.checkpoint_sink = &sink;
    guard.checkpoint_interval = checkpoint_interval;
    engine.set_run_guard(guard);
  }
  out.attempts = 1;
  auto stats = apps::RunApp(engine, **program, params);
  while (!stats.ok() && stats.status().code() == StatusCode::kUnavailable &&
         out.attempts < max_attempts) {
    ++out.attempts;
    if (sink.has()) {
      auto resumed = apps::ResumeApp(engine, **program, sink.latest(), params);
      if (!resumed.ok() &&
          resumed.status().code() == StatusCode::kCorruption) {
        sink.Clear();
        ++out.fallbacks;
        stats = apps::RunApp(engine, **program, params);
      } else {
        ++out.resumes;
        stats = std::move(resumed);
      }
    } else {
      stats = apps::RunApp(engine, **program, params);
    }
  }
  out.status = stats.status();
  if (stats.ok()) {
    out.digest = apps::OutputDigest(engine, **program);
    out.seconds = stats->seconds;
  }
  if (injector != nullptr) out.trace = injector->TraceString();
  out.checkpoints = sink.saves();
  return out;
}

uint64_t FaultFreeDigest(const Csr& csr, const std::string& app,
                         const apps::AppParams& params) {
  GuardedRun run = RunWithFaults(csr, app, params, "", 1, 0, 1);
  SAGE_CHECK(run.status.ok()) << run.status.ToString();
  return run.digest;
}

// --- Spec parsing -----------------------------------------------------------

TEST(FaultSpecTest, ParsesEveryRuleKind) {
  auto spec = sim::ParseFaultSpec(
      "# a comment\n"
      "seed 42\n"
      "transient rate 0.01\n"
      "transient kernel 7\n"
      "transient rate 1.0 count 6\n"
      "oom grow 2\n"
      "corrupt iter 3\n"
      "corrupt iter 3 silent\n"
      "corrupt-checkpoint iter 2\n"
      "straggler sm 3 x 8.0\n"
      "straggler sm 1 x 4.0 kernel 5\n"
      "poison node 17\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->seed, 42u);
  ASSERT_EQ(spec->rules.size(), 10u);
  EXPECT_EQ(spec->rules[0].kind, sim::FaultKind::kTransientKernel);
  EXPECT_DOUBLE_EQ(spec->rules[0].rate, 0.01);
  EXPECT_EQ(spec->rules[1].kernel, 7);
  EXPECT_EQ(spec->rules[2].max_fires, 6);
  EXPECT_EQ(spec->rules[3].grow_index, 2);
  EXPECT_FALSE(spec->rules[4].silent);
  EXPECT_TRUE(spec->rules[5].silent);
  EXPECT_EQ(spec->rules[6].kind, sim::FaultKind::kCheckpointCorruption);
  EXPECT_DOUBLE_EQ(spec->rules[7].multiplier, 8.0);
  EXPECT_EQ(spec->rules[8].kernel, 5);
  EXPECT_EQ(spec->rules[9].node, 17u);
}

TEST(FaultSpecTest, RejectsMalformedLines) {
  EXPECT_EQ(sim::ParseFaultSpec("explode rate 0.5\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sim::ParseFaultSpec("transient rate 1.5\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sim::ParseFaultSpec("transient\n").status().code(),
            StatusCode::kInvalidArgument);  // no trigger
  EXPECT_EQ(sim::ParseFaultSpec("transient kernel\n").status().code(),
            StatusCode::kInvalidArgument);  // missing value
  EXPECT_EQ(sim::ParseFaultSpec("transient rate 0.5 count 0\n")
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sim::ParseFaultSpec("straggler sm 1 x 0.5\n").status().code(),
            StatusCode::kInvalidArgument);  // multiplier < 1
  EXPECT_EQ(sim::ParseFaultSpec("seed nope\n").status().code(),
            StatusCode::kInvalidArgument);
}

// --- Fault classes ----------------------------------------------------------

TEST(FaultInjectionTest, TransientKernelFaultSurfacesSiteAndRetrySucceeds) {
  Csr csr = TestGraph();
  GuardedRun first =
      RunWithFaults(csr, "bfs", BfsParams(), "transient kernel 3\n", 1,
                    /*checkpoint_interval=*/0, /*max_attempts=*/1);
  ASSERT_FALSE(first.status.ok());
  EXPECT_EQ(first.status.code(), StatusCode::kUnavailable);
  // The failure names the fault site: the kernel and the iteration.
  EXPECT_NE(first.status.message().find("kernel=3"), std::string::npos)
      << first.status.message();
  EXPECT_NE(first.status.message().find("iteration"), std::string::npos);

  // Exact-coordinate rules are one-shot: the retry makes progress and the
  // recovered output is bit-identical to a fault-free run.
  GuardedRun retried =
      RunWithFaults(csr, "bfs", BfsParams(), "transient kernel 3\n", 1, 0, 3);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_EQ(retried.attempts, 2u);
  EXPECT_EQ(retried.digest, FaultFreeDigest(csr, "bfs", BfsParams()));
}

TEST(FaultInjectionTest, DeviceOomRaisedAtExactGrowIndex) {
  auto spec = sim::ParseFaultSpec("oom grow 2\n");
  ASSERT_TRUE(spec.ok());
  sim::FaultInjector injector(std::move(*spec));
  injector.OnGrow("frontier", 1024);
  EXPECT_TRUE(injector.TakePendingFault().ok());  // grow #1: healthy
  injector.OnGrow("frontier", 2048);
  util::Status fault = injector.TakePendingFault();
  EXPECT_EQ(fault.code(), StatusCode::kUnavailable);
  EXPECT_NE(fault.message().find("device OOM"), std::string::npos);
  EXPECT_NE(fault.message().find("frontier"), std::string::npos);
  injector.OnGrow("frontier", 4096);
  EXPECT_TRUE(injector.TakePendingFault().ok());  // one-shot
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].kind, sim::FaultKind::kDeviceOom);
}

TEST(FaultInjectionTest, DetectedEccCorruptionAbortsAndRetryRecovers) {
  Csr csr = TestGraph();
  GuardedRun first =
      RunWithFaults(csr, "bfs", BfsParams(), "corrupt iter 2\n", 1, 0, 1);
  ASSERT_FALSE(first.status.ok());
  EXPECT_EQ(first.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(first.status.message().find("ECC"), std::string::npos);

  GuardedRun retried =
      RunWithFaults(csr, "bfs", BfsParams(), "corrupt iter 2\n", 1, 0, 3);
  ASSERT_TRUE(retried.status.ok());
  EXPECT_EQ(retried.digest, FaultFreeDigest(csr, "bfs", BfsParams()));
}

TEST(FaultInjectionTest, SilentCorruptionRunsToCompletionButIsTraced) {
  Csr csr = TestGraph();
  GuardedRun run = RunWithFaults(csr, "bfs", BfsParams(),
                                 "corrupt iter 1 silent\n", 1, 0, 1);
  // Nobody raised a fault — the run "succeeds" with possibly-wrong output;
  // the trace (and output digests downstream) are how it gets caught.
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.attempts, 1u);
  EXPECT_NE(run.trace.find("silent"), std::string::npos) << run.trace;
}

TEST(FaultInjectionTest, StragglerSlowsModeledTimeWithoutChangingOutput) {
  Csr csr = TestGraph();
  GuardedRun healthy = RunWithFaults(csr, "bfs", BfsParams(), "", 1, 0, 1);
  GuardedRun slow = RunWithFaults(csr, "bfs", BfsParams(),
                                  "straggler sm 0 x 16.0\n", 1, 0, 1);
  ASSERT_TRUE(healthy.status.ok());
  ASSERT_TRUE(slow.status.ok());
  EXPECT_EQ(slow.digest, healthy.digest);
  EXPECT_GT(slow.seconds, healthy.seconds);
  EXPECT_NE(slow.trace.find("straggler"), std::string::npos);
}

TEST(FaultInjectionTest, PoisonedSourceFailsPermanently) {
  Csr csr = TestGraph();
  GuardedRun poisoned =
      RunWithFaults(csr, "bfs", BfsParams(5), "poison node 5\n", 1, 0, 5);
  EXPECT_EQ(poisoned.status.code(), StatusCode::kInternal);
  EXPECT_NE(poisoned.status.message().find("poisoned source node 5"),
            std::string::npos);
  EXPECT_EQ(poisoned.attempts, 1u);  // permanent: never retried

  // Other sources are unaffected by the poison rule.
  GuardedRun healthy =
      RunWithFaults(csr, "bfs", BfsParams(0), "poison node 5\n", 1, 0, 1);
  EXPECT_TRUE(healthy.status.ok());
}

TEST(FaultInjectionTest, CountBudgetExhaustsRateRules) {
  Csr csr = TestGraph();
  // Every kernel faults — but only twice; the third attempt completes.
  GuardedRun run = RunWithFaults(csr, "bfs", BfsParams(),
                                 "transient rate 1.0 count 2\n", 1,
                                 /*checkpoint_interval=*/0,
                                 /*max_attempts=*/5);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.attempts, 3u);
  EXPECT_EQ(run.digest, FaultFreeDigest(csr, "bfs", BfsParams()));
}

// --- Determinism: serial vs parallel ----------------------------------------

TEST(FaultDeterminismTest, FaultScheduleIsBitIdenticalSerialVsParallel) {
  Csr csr = TestGraph();
  const std::string spec =
      "seed 99\n"
      "transient rate 0.05\n"
      "corrupt rate 0.1 silent\n"
      "straggler sm 2 x 4.0\n";
  GuardedRun serial = RunWithFaults(csr, "bfs", BfsParams(), spec,
                                    /*host_threads=*/1);
  GuardedRun parallel = RunWithFaults(csr, "bfs", BfsParams(), spec,
                                      /*host_threads=*/4);
  // The fault trace is the determinism witness: every draw keys off
  // main-thread monotonic counters, never off the worker schedule.
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.status.ToString(), parallel.status.ToString());
  EXPECT_EQ(serial.attempts, parallel.attempts);
  if (serial.status.ok()) {
    EXPECT_EQ(serial.digest, parallel.digest);
  }
  EXPECT_FALSE(serial.trace.empty());
}

TEST(FaultDeterminismTest, SameSpecSameSeedReplaysIdentically) {
  Csr csr = TestGraph();
  const std::string spec = "seed 7\ntransient rate 0.2\n";
  GuardedRun a = RunWithFaults(csr, "pagerank", apps::AppParams(), spec);
  GuardedRun b = RunWithFaults(csr, "pagerank", apps::AppParams(), spec);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.digest, b.digest);
}

// --- Checkpoint / resume ----------------------------------------------------

TEST(CheckpointTest, DigestSealsEveryField) {
  core::Checkpoint ckpt;
  ckpt.program_name = "bfs";
  ckpt.iteration = 4;
  ckpt.reorder_rounds = 1;
  ckpt.frontier = {1, 2, 3};
  ckpt.app_state = {9, 8, 7};
  ckpt.Seal();
  EXPECT_TRUE(ckpt.Valid());
  ckpt.app_state[1] ^= 0x10;
  EXPECT_FALSE(ckpt.Valid());
  ckpt.app_state[1] ^= 0x10;
  EXPECT_TRUE(ckpt.Valid());
  ckpt.iteration = 5;
  EXPECT_FALSE(ckpt.Valid());
}

TEST(CheckpointTest, MemorySinkKeepsLatest) {
  core::MemoryCheckpointSink sink;
  EXPECT_FALSE(sink.has());
  core::Checkpoint ckpt;
  ckpt.iteration = 2;
  ckpt.Seal();
  sink.Save(ckpt);
  ckpt.iteration = 4;
  ckpt.Seal();
  sink.Save(ckpt);
  EXPECT_TRUE(sink.has());
  EXPECT_EQ(sink.saves(), 2u);
  EXPECT_EQ(sink.latest().iteration, 4u);
  sink.Clear();
  EXPECT_FALSE(sink.has());
}

TEST(CheckpointResumeTest, ResumeAfterFaultMatchesFaultFreeDigest) {
  Csr csr = TestGraph();
  // Fails at kernel 5 (iteration 4); checkpoints every 2 iterations, so the
  // retry resumes from the after-4-iterations snapshot instead of redoing
  // the whole traversal.
  GuardedRun run = RunWithFaults(csr, "bfs", BfsParams(),
                                 "transient kernel 5\n", 1,
                                 /*checkpoint_interval=*/2,
                                 /*max_attempts=*/3);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.attempts, 2u);
  EXPECT_EQ(run.resumes, 1u);
  EXPECT_GE(run.checkpoints, 2u);
  EXPECT_EQ(run.digest, FaultFreeDigest(csr, "bfs", BfsParams()));
}

TEST(CheckpointResumeTest, ResumeWorksForEverySnapshotCapableApp) {
  Csr csr = TestGraph();
  struct Case {
    const char* app;
    apps::AppParams params;
    const char* spec;           // fault early enough that the app reaches it
    uint32_t interval;
    uint32_t expected_resumes;  // 0 = app has no snapshot → full rerun
  };
  std::vector<Case> cases;
  cases.push_back({"bfs", BfsParams(), "transient kernel 5\n", 2, 1});
  {
    apps::AppParams pr;
    pr.iterations = 10;
    cases.push_back({"pagerank", pr, "transient kernel 5\n", 2, 1});
  }
  {
    // Multiple sources converge in few hops — fault at kernel 2 so the
    // run is guaranteed to reach the fault site.
    apps::AppParams ms;
    ms.sources = {0, 1, 5, 17};
    cases.push_back({"msbfs", ms, "transient kernel 2\n", 1, 1});
  }
  // sssp has no SaveState: the engine skips checkpointing it, so the
  // retry reruns from scratch — still converging on the right answer.
  cases.push_back({"sssp", BfsParams(), "transient kernel 5\n", 2, 0});
  for (const Case& c : cases) {
    SCOPED_TRACE(c.app);
    GuardedRun run =
        RunWithFaults(csr, c.app, c.params, c.spec, 1, c.interval, 3);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    EXPECT_EQ(run.attempts, 2u);  // the fault fired and one retry recovered
    EXPECT_EQ(run.resumes, c.expected_resumes);
    EXPECT_EQ(run.digest, FaultFreeDigest(csr, c.app, c.params));
  }
}

TEST(CheckpointResumeTest, CorruptedCheckpointFallsBackToFullRerun) {
  Csr csr = TestGraph();
  // The checkpoint taken after iteration 4 is byte-flipped as it is
  // written; the retry detects the digest mismatch (kCorruption), discards
  // it, and reruns from scratch — still converging on the right answer.
  GuardedRun run = RunWithFaults(csr, "bfs", BfsParams(),
                                 "transient kernel 5\n"
                                 "corrupt-checkpoint iter 4\n",
                                 1, 2, 3);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.fallbacks, 1u);
  EXPECT_EQ(run.resumes, 0u);
  EXPECT_EQ(run.digest, FaultFreeDigest(csr, "bfs", BfsParams()));
  EXPECT_NE(run.trace.find("corrupt-checkpoint"), std::string::npos);
}

TEST(CheckpointResumeTest, ResumeRejectsTamperedCheckpoint) {
  Csr csr = TestGraph();
  sim::GpuDevice device{sim::DeviceSpec()};
  core::EngineOptions options;
  options.host_threads = 1;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  core::MemoryCheckpointSink sink;
  core::RunGuard guard;
  guard.checkpoint_sink = &sink;
  guard.checkpoint_interval = 2;
  engine.set_run_guard(guard);
  ASSERT_TRUE(apps::RunApp(engine, **program, BfsParams()).ok());
  ASSERT_TRUE(sink.has());

  core::Checkpoint tampered = sink.latest();
  tampered.app_state[0] ^= 0x01;  // storage bit rot, digest not re-sealed
  auto resumed = apps::ResumeApp(engine, **program, tampered, BfsParams());
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kCorruption);

  // The untampered checkpoint still resumes cleanly.
  auto ok = apps::ResumeApp(engine, **program, sink.latest(), BfsParams());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(CheckpointResumeTest, ResumeRejectsEpochMismatchedCheckpoint) {
  Csr csr = TestGraph();
  sim::GpuDevice device{sim::DeviceSpec()};
  core::EngineOptions options;
  options.host_threads = 1;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  core::MemoryCheckpointSink sink;
  core::RunGuard guard;
  guard.checkpoint_sink = &sink;
  guard.checkpoint_interval = 2;
  engine.set_run_guard(guard);
  ASSERT_TRUE(apps::RunApp(engine, **program, BfsParams()).ok());
  ASSERT_TRUE(sink.has());

  // A checkpoint from a different internal-id epoch (a relabeling landed
  // between taking it and the fault). Re-sealed, so the digest is valid —
  // the epoch check is the detector, and it must fail kFailedPrecondition
  // (the serving layer treats that as checkpoint-unusable and falls back
  // to a full rerun rather than surfacing it as the request's answer).
  core::Checkpoint stale = sink.latest();
  stale.reorder_rounds += 1;
  stale.Seal();
  auto resumed = apps::ResumeApp(engine, **program, stale, BfsParams());
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("epoch"), std::string::npos);
}

// --- Cancellation & deadlines -----------------------------------------------

TEST(GuardTest, CancellationAbortsAtIterationBoundary) {
  Csr csr = TestGraph();
  sim::GpuDevice device{sim::DeviceSpec()};
  core::EngineOptions options;
  options.host_threads = 1;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());
  core::CancellationToken token;
  token.Cancel();
  core::RunGuard guard;
  guard.cancel = &token;
  engine.set_run_guard(guard);
  auto stats = apps::RunApp(engine, **program, BfsParams());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kAborted);
  EXPECT_NE(stats.status().message().find("cancel"), std::string::npos);

  // Dropping the guard restores normal behavior on the same engine.
  engine.set_run_guard(core::RunGuard());
  EXPECT_TRUE(apps::RunApp(engine, **program, BfsParams()).ok());
}

TEST(GuardTest, ModeledDeadlineTripsDeterministically) {
  Csr csr = TestGraph();
  auto run_with_budget = [&](double budget) {
    sim::GpuDevice device{sim::DeviceSpec()};
    core::EngineOptions options;
    options.host_threads = 1;
    core::Engine engine(&device, csr, options);
    auto program = apps::CreateProgram("bfs");
    SAGE_CHECK(program.ok());
    core::RunGuard guard;
    guard.deadline_modeled_seconds = budget;
    engine.set_run_guard(guard);
    return apps::RunApp(engine, **program, BfsParams()).status();
  };
  util::Status tight = run_with_budget(1e-9);
  EXPECT_EQ(tight.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(tight.message().find("budget"), std::string::npos);
  // Modeled budgets are deterministic: the same budget trips identically.
  EXPECT_EQ(tight.ToString(), run_with_budget(1e-9).ToString());
  // A generous budget never trips.
  EXPECT_TRUE(run_with_budget(1e6).ok());
}

TEST(GuardTest, WallDeadlineIsEndToEndAcrossRunsUnderOneGuard) {
  Csr csr = TestGraph();
  sim::GpuDevice device{sim::DeviceSpec()};
  core::EngineOptions options;
  options.host_threads = 1;
  core::Engine engine(&device, csr, options);
  auto program = apps::CreateProgram("bfs");
  ASSERT_TRUE(program.ok());

  // set_run_guard resolves the duration to an absolute deadline once; a
  // retry on the same installed guard draws down that same budget instead
  // of restarting the clock at each RunLoop entry.
  core::RunGuard guard;
  guard.deadline_wall_seconds = 3600.0;
  engine.set_run_guard(guard);
  const double until = engine.run_guard().deadline_wall_until_seconds;
  EXPECT_GT(until, 0.0);
  ASSERT_TRUE(apps::RunApp(engine, **program, BfsParams()).ok());
  ASSERT_TRUE(apps::RunApp(engine, **program, BfsParams()).ok());
  EXPECT_EQ(engine.run_guard().deadline_wall_until_seconds, until);

  // An absolute deadline already in the past trips at iteration 0 — the
  // deterministic stand-in for "the budget ran out during an earlier
  // attempt of this dispatch".
  core::RunGuard expired;
  expired.deadline_wall_until_seconds = 1e-9;  // monotonic epoch long past
  engine.set_run_guard(expired);
  auto stats = apps::RunApp(engine, **program, BfsParams());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(stats.status().message().find("wall deadline"),
            std::string::npos);
  engine.set_run_guard(core::RunGuard());
}

}  // namespace
}  // namespace sage
