#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/arena.h"
#include "util/bitmap.h"
#include "util/metrics.h"
#include "util/prefix_sum.h"
#include "util/simd.h"
#include "util/random.h"
#include "util/segsort.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/trace.h"

namespace sage::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad node");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad node");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  SAGE_ASSIGN_OR_RETURN(int x, std::move(in));
  return 2 * x;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.UniformU64(8)];
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(13);
  uint64_t small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 1.2) < 10) ++small;
  }
  EXPECT_GT(small, 3000u);  // head-heavy
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PrefixSumTest, ExclusiveBasics) {
  auto out = ExclusivePrefixSum({3, 1, 4, 1, 5});
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[5], 14u);
}

TEST(PrefixSumTest, EmptyInput) {
  auto out = ExclusivePrefixSum({});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(PrefixSumTest, InPlaceReturnsTotal) {
  std::vector<uint64_t> v{2, 2, 2};
  EXPECT_EQ(ExclusivePrefixSumInPlace(v), 6u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[2], 4u);
}

TEST(PrefixSumTest, InclusiveMatchesExclusiveShifted) {
  std::vector<uint32_t> in{5, 0, 7, 2};
  auto inc = InclusivePrefixSum(in);
  auto exc = ExclusivePrefixSum(in);
  for (size_t i = 0; i < in.size(); ++i) EXPECT_EQ(inc[i], exc[i + 1]);
}

TEST(SegsortTest, SortsEachSegmentIndependently) {
  std::vector<uint32_t> keys{5, 3, 9, 2, 8, 1};
  std::vector<uint32_t> vals{0, 1, 2, 3, 4, 5};
  std::vector<uint64_t> offsets{0, 3, 6};
  SegmentedSortKV(offsets, keys, vals);
  EXPECT_EQ(keys, (std::vector<uint32_t>{3, 5, 9, 1, 2, 8}));
  EXPECT_EQ(vals, (std::vector<uint32_t>{1, 0, 2, 5, 3, 4}));
}

TEST(SegsortTest, StableWithinSegment) {
  std::vector<uint32_t> keys{7, 7, 7, 7};
  std::vector<uint32_t> vals{0, 1, 2, 3};
  std::vector<uint64_t> offsets{0, 4};
  SegmentedSortKV(offsets, keys, vals);
  EXPECT_EQ(vals, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(SegsortTest, RandomizedAgainstStdSort) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.UniformU64(500);
    std::vector<uint32_t> keys(n);
    std::vector<uint32_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(rng.Next());
      vals[i] = static_cast<uint32_t>(i);
    }
    // Random segment boundaries.
    std::vector<uint64_t> offsets{0};
    while (offsets.back() < n) {
      offsets.push_back(
          std::min<uint64_t>(n, offsets.back() + 1 + rng.UniformU64(50)));
    }
    auto keys_copy = keys;
    SegmentedSortKV(offsets, keys, vals);
    for (size_t s = 0; s + 1 < offsets.size(); ++s) {
      std::sort(keys_copy.begin() + offsets[s],
                keys_copy.begin() + offsets[s + 1]);
      for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
        EXPECT_EQ(keys[i], keys_copy[i]);
      }
    }
    // Values carried along: keys[vals] must reconstruct.
    for (size_t s = 0; s + 1 < offsets.size(); ++s) {
      for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
        EXPECT_GE(vals[i], offsets[s]);
        EXPECT_LT(vals[i], offsets[s + 1]);
      }
    }
  }
}

TEST(SegsortTest, ArgsortIsStablePermutation) {
  std::vector<uint32_t> keys{4, 1, 4, 1, 0};
  auto idx = RadixArgsort(keys);
  EXPECT_EQ(idx, (std::vector<uint32_t>{4, 1, 3, 0, 2}));
}

TEST(StatsTest, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StatsTest, HistogramPercentiles) {
  Histogram h;
  for (uint64_t i = 0; i < 1000; ++i) h.Add(i);
  EXPECT_EQ(h.total_count(), 1000u);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
  EXPECT_FALSE(h.ToString().empty());
}

TEST(StatsTest, GiniUniformIsZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-9);
}

TEST(StatsTest, GiniSkewedIsHigh) {
  std::vector<uint64_t> v(100, 0);
  v[0] = 1000;
  EXPECT_GT(GiniCoefficient(v), 0.9);
}

TEST(StatsTest, GiniEmptyAndZeros) {
  EXPECT_EQ(GiniCoefficient({}), 0.0);
  EXPECT_EQ(GiniCoefficient({0, 0, 0}), 0.0);
}

// Regression: values in the top bucket [2^63, UINT64_MAX] used to render
// via `1ull << 64` (shift-width UB caught by UBSan) and report the
// unrepresentable 2^64 from Percentile. Both paths must now stay inside
// uint64 / double range.
TEST(StatsTest, HistogramTopBucketNoOverflow) {
  Histogram h;
  h.Add(UINT64_MAX);
  h.Add(1ull << 63);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), 1ull << 63);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  std::string rendered = h.ToString();
  EXPECT_NE(rendered.find("18446744073709551615"), std::string::npos)
      << rendered;
  // Percentiles clamp to the largest uint64-representable double, so the
  // result round-trips through a uint64_t cast without UB.
  double p100 = h.Percentile(100.0);
  EXPECT_GE(p100, std::ldexp(1.0, 63));
  EXPECT_LT(p100, std::ldexp(1.0, 64));
}

TEST(StatsTest, HistogramBucketBoundsAreInclusive) {
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    Histogram h;
    h.Add(Histogram::BucketLowerBound(b));
    h.Add(Histogram::BucketUpperBound(b));
    EXPECT_EQ(h.bucket_count(b), 2u) << "bucket " << b;
  }
}

TEST(StatsTest, HistogramPercentileMonotone) {
  Histogram h;
  const std::vector<uint64_t> values{0,          1,          17, 1000,
                                     1ull << 40, 1ull << 63, UINT64_MAX};
  for (uint64_t v : values) h.Add(v);
  double p0 = h.Percentile(0.0);
  double p50 = h.Percentile(50.0);
  double p99 = h.Percentile(99.0);
  double p100 = h.Percentile(100.0);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p100);
  EXPECT_GE(p0, 0.0);
  EXPECT_LT(p100, std::ldexp(1.0, 64));
  // Empty histogram: defined (0), not UB.
  EXPECT_EQ(Histogram().Percentile(50.0), 0.0);
}

// The one shared percentile convention (nearest rank): the ceil(p/100*n)-th
// smallest sample, p=0 clamped to the minimum.
TEST(StatsTest, PercentileOfSortedNearestRank) {
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(PercentileOfSorted(sorted, 0.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(sorted, 25.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(sorted, 50.0), 2.0);
  EXPECT_EQ(PercentileOfSorted(sorted, 75.0), 3.0);
  EXPECT_EQ(PercentileOfSorted(sorted, 99.0), 4.0);
  EXPECT_EQ(PercentileOfSorted(sorted, 100.0), 4.0);
  std::vector<double> one{7.5};
  EXPECT_EQ(PercentileOfSorted(one, 99.0), 7.5);
}

// Regression: profile rendering used a 256-byte stack buffer that silently
// truncated long lines; AppendF must grow instead.
TEST(StringsTest, AppendFGrowsPastInternalBuffer) {
  std::string long_word(500, 'x');
  std::string out = "head:";
  AppendF(&out, "%s:%d", long_word.c_str(), 42);
  EXPECT_EQ(out, "head:" + long_word + ":42");
  AppendF(&out, "|%s", "tail");
  EXPECT_EQ(out.substr(out.size() - 5), "|tail");
}

TEST(StringsTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(MetricsTest, RegistryPointersAreStableAndSharedByName) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a.count");
  EXPECT_EQ(c, registry.counter("a.count"));
  c->Add(3);
  c->Add();
  EXPECT_EQ(registry.counter("a.count")->value(), 4u);
  Gauge* g = registry.gauge("a.ratio");
  g->Set(0.5);
  EXPECT_EQ(g, registry.gauge("a.ratio"));
  EXPECT_EQ(registry.gauge("a.ratio")->value(), 0.5);
}

TEST(MetricsTest, SnapshotIsNameSortedAndJsonRenders) {
  MetricsRegistry registry;
  registry.counter("z.last")->Add(1);
  registry.counter("a.first")->Add(2);
  registry.gauge("m.gauge")->Set(1.25);
  registry.histogram("h.lat")->Add(100);
  registry.histogram("h.lat")->Add(1ull << 63);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "z.last");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_FALSE(snap.histograms[0].buckets.empty());
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a.first\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"m.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  // Deterministic: rendering twice gives the same bytes.
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsTest, HistogramMetricReset) {
  HistogramMetric m;
  m.Add(5);
  m.Add(9);
  EXPECT_EQ(m.snapshot().total_count(), 2u);
  m.Reset();
  EXPECT_EQ(m.snapshot().total_count(), 0u);
}

// --- Bitmap: packed frontier sets ----------------------------------------

TEST(BitmapTest, SetTestClearAndTestAndSet) {
  Bitmap b(130);  // spans three words, short tail
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.num_words(), 3u);
  EXPECT_FALSE(b.AnySet());
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0) && b.Test(63) && b.Test(64) && b.Test(129));
  EXPECT_FALSE(b.Test(1) || b.Test(65) || b.Test(128));
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_FALSE(b.TestAndSet(63));  // was clear, now set
  EXPECT_TRUE(b.TestAndSet(63));   // already set
  EXPECT_TRUE(b.Test(63));
}

TEST(BitmapTest, WordOpsRespectBooleanAlgebra) {
  // a = multiples of 3, b = multiples of 2, across word boundaries.
  constexpr size_t kN = 200;
  Bitmap a(kN), b(kN);
  for (size_t i = 0; i < kN; i += 3) a.Set(i);
  for (size_t i = 0; i < kN; i += 2) b.Set(i);

  Bitmap and_ab = a;
  and_ab.AndWith(b);
  Bitmap or_ab = a;
  or_ab.OrWith(b);
  Bitmap diff_ab = a;
  diff_ab.AndNotWith(b);
  size_t count_and = 0, count_or = 0, count_diff = 0;
  for (size_t i = 0; i < kN; ++i) {
    bool in_a = i % 3 == 0, in_b = i % 2 == 0;
    EXPECT_EQ(and_ab.Test(i), in_a && in_b) << i;
    EXPECT_EQ(or_ab.Test(i), in_a || in_b) << i;
    EXPECT_EQ(diff_ab.Test(i), in_a && !in_b) << i;
    count_and += in_a && in_b;
    count_or += in_a || in_b;
    count_diff += in_a && !in_b;
  }
  EXPECT_EQ(and_ab.CountSet(), count_and);
  EXPECT_EQ(or_ab.CountSet(), count_or);
  EXPECT_EQ(diff_ab.CountSet(), count_diff);
}

TEST(BitmapTest, SetAllMasksTailBits) {
  // 70 bits: the second word has only 6 live bits; SetAll must not set the
  // other 58, or CountSet/ForEachSet would report phantom members.
  Bitmap b(70);
  b.SetAll();
  EXPECT_EQ(b.CountSet(), 70u);
  EXPECT_EQ(b.words()[1], (uint64_t{1} << 6) - 1);
  // Word-exact size: no tail to mask.
  Bitmap exact(128);
  exact.SetAll();
  EXPECT_EQ(exact.CountSet(), 128u);
  EXPECT_EQ(exact.words()[1], ~uint64_t{0});
  exact.ClearAll();
  EXPECT_EQ(exact.CountSet(), 0u);
  EXPECT_FALSE(exact.AnySet());
}

TEST(BitmapTest, ForEachSetVisitsAscending) {
  Bitmap b(300);
  const std::vector<size_t> members{0, 1, 63, 64, 65, 127, 128, 200, 299};
  for (size_t m : members) b.Set(m);
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, members);
  EXPECT_EQ(b.CountSet(), members.size());
}

TEST(BitmapTest, ForEachSetBitWordHelper) {
  uint64_t word = (uint64_t{1} << 0) | (uint64_t{1} << 5) |
                  (uint64_t{1} << 63);
  std::vector<uint32_t> bits;
  ForEachSetBit(word, [&](uint32_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<uint32_t>{0, 5, 63}));
  bits.clear();
  ForEachSetBit(uint64_t{0}, [&](uint32_t i) { bits.push_back(i); });
  EXPECT_TRUE(bits.empty());
  bits.clear();
  ForEachSetBit(~uint64_t{0}, [&](uint32_t i) { bits.push_back(i); });
  ASSERT_EQ(bits.size(), 64u);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(bits[i], i);
}

TEST(BitmapTest, ResizeClearsContents) {
  Bitmap b(64);
  b.SetAll();
  b.Resize(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.CountSet(), 0u);
  b.Set(99);
  b.Resize(10);  // shrink also clears
  EXPECT_EQ(b.CountSet(), 0u);
  Bitmap empty(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.CountSet(), 0u);
  EXPECT_FALSE(empty.AnySet());
}

// --- Arena: steady-state phases allocate nothing --------------------------

TEST(ArenaTest, SpansAreUsableAndZeroedVariantZeroes) {
  Arena arena;
  auto a = arena.AllocateSpan<uint32_t>(100);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<uint32_t>(i);
  auto b = arena.AllocateZeroedSpan<uint64_t>(50);
  ASSERT_EQ(b.size(), 50u);
  for (uint64_t v : b) EXPECT_EQ(v, 0u);
  // The first span is untouched by the second allocation.
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i);
  EXPECT_TRUE(arena.AllocateSpan<uint32_t>(0).empty());
}

TEST(ArenaTest, NoChunkGrowthAfterWarmup) {
  // The workspace-pool contract: after the first phase warmed the arena,
  // identical phases are served entirely from recycled chunks —
  // chunk_allocations() stays flat and bytes_reused() grows.
  Arena arena(4096);
  auto phase = [&] {
    arena.Reset();
    (void)arena.AllocateSpan<uint64_t>(300);
    (void)arena.AllocateSpan<uint32_t>(500);
    (void)arena.AllocateSpan<uint8_t>(1000);
  };
  phase();  // warmup
  uint64_t warm_chunks = arena.chunk_allocations();
  uint64_t warm_capacity = arena.bytes_capacity();
  EXPECT_GT(warm_chunks, 0u);
  uint64_t reused_before = arena.bytes_reused();
  for (int i = 0; i < 100; ++i) phase();
  EXPECT_EQ(arena.chunk_allocations(), warm_chunks);
  EXPECT_EQ(arena.bytes_capacity(), warm_capacity);
  // Every post-warmup byte came from recycled chunks.
  EXPECT_GE(arena.bytes_reused(),
            reused_before + 100 * (300 * 8 + 500 * 4 + 1000));
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(1024);
  auto big = arena.AllocateSpan<uint8_t>(10000);
  ASSERT_EQ(big.size(), 10000u);
  big[0] = 1;
  big[9999] = 2;
  EXPECT_GE(arena.bytes_capacity(), 10000u);
  // The oversized chunk is recycled like any other.
  arena.Reset();
  uint64_t chunks = arena.chunk_allocations();
  auto again = arena.AllocateSpan<uint8_t>(10000);
  ASSERT_EQ(again.size(), 10000u);
  EXPECT_EQ(arena.chunk_allocations(), chunks);
  EXPECT_GE(arena.bytes_reused(), 10000u);
}

TEST(ArenaTest, CopyYieldsFreshEmptyArena) {
  // Scratch-copy semantics: contexts embedding an arena stay copyable, and
  // the copy never aliases the original's chunks.
  Arena arena(2048);
  auto span = arena.AllocateSpan<uint32_t>(64);
  span[0] = 7;
  Arena copy(arena);
  EXPECT_EQ(copy.chunk_allocations(), 0u);
  EXPECT_EQ(copy.bytes_capacity(), 0u);
  auto copied_span = copy.AllocateSpan<uint32_t>(64);
  copied_span[0] = 9;
  EXPECT_EQ(span[0], 7u);  // original untouched
  Arena assigned(128);
  (void)assigned.AllocateSpan<uint8_t>(64);
  assigned = arena;
  EXPECT_EQ(assigned.chunk_allocations(), 0u);
  EXPECT_EQ(assigned.bytes_reused(), 0u);
}

// --- SIMD helpers: AVX2 fast paths must match the scalar definition -------

TEST(SimdTest, SumBytesMatchesScalarAtAllLengths) {
  Rng rng(77);
  std::vector<uint8_t> data(300);
  for (auto& v : data) v = static_cast<uint8_t>(rng.UniformU64(256));
  // Lengths straddling the 32-byte vector width, including 0.
  for (size_t n : {0u, 1u, 31u, 32u, 33u, 64u, 100u, 255u, 300u}) {
    uint64_t expect = 0;
    for (size_t i = 0; i < n; ++i) expect += data[i];
    EXPECT_EQ(SumBytes(data.data(), n), expect) << "n=" << n;
  }
  // All-255 does not overflow intermediate lanes.
  std::vector<uint8_t> maxed(256, 255);
  EXPECT_EQ(SumBytes(maxed.data(), maxed.size()), 256u * 255u);
}

TEST(SimdTest, ShiftedSectorIdsMatchesScalar) {
  Rng rng(78);
  std::vector<uint64_t> idx(67);
  for (auto& v : idx) v = rng.UniformU64(uint64_t{1} << 40);
  const uint64_t base = 0x1234500;
  const uint32_t elem_shift = 3, sector_shift = 5;
  std::vector<uint64_t> out(idx.size(), 0);
  ShiftedSectorIds(idx.data(), idx.size(), base, elem_shift, sector_shift,
                   out.data());
  for (size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(out[i], (base + (idx[i] << elem_shift)) >> sector_shift) << i;
  }
  // n not a multiple of the 4-wide vector width exercises the tail loop;
  // n == 0 must not touch out.
  uint64_t sentinel = 0xdeadbeef;
  ShiftedSectorIds(idx.data(), 0, base, elem_shift, sector_shift, &sentinel);
  EXPECT_EQ(sentinel, 0xdeadbeefull);
}

TEST(SimdTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(StatsTest, HistogramAddCountMatchesRepeatedAdd) {
  Histogram a, b;
  for (uint64_t v : {0ull, 1ull, 17ull, 1000ull, 1ull << 40}) {
    a.AddCount(v, 5);
    for (int i = 0; i < 5; ++i) b.Add(v);
  }
  EXPECT_EQ(a.total_count(), b.total_count());
  for (int bu = 0; bu < Histogram::kNumBuckets; ++bu) {
    EXPECT_EQ(a.bucket_count(bu), b.bucket_count(bu)) << bu;
  }
  a.AddCount(3, 0);  // n == 0 is a no-op
  EXPECT_EQ(a.total_count(), b.total_count());
}

TEST(MetricsTest, HistogramMetricAddCount) {
  HistogramMetric m;
  m.AddCount(100, 3);
  m.Add(100);
  EXPECT_EQ(m.snapshot().total_count(), 4u);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceLog log;
  log.Add(ProcessNameEvent(7, "my track"));
  TraceEvent slice;
  slice.name = "kernel";
  slice.cat = "sim";
  slice.ph = 'X';
  slice.ts_us = 1.5;
  slice.dur_us = 2.25;
  slice.pid = 7;
  slice.ArgU64("seq", 3).ArgF("ratio", 0.5).ArgStr("label", "a\"b");
  log.Add(slice);
  TraceEvent begin;
  begin.name = "req";
  begin.ph = 'b';
  begin.id = 0xabc;
  log.Add(begin);
  EXPECT_EQ(log.size(), 3u);
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\": 2.250"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\": \"0xabc\""), std::string::npos) << json;
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
  // 'X' events carry dur; 'b' events carry id but no dur (spot check the
  // begin event rendered without one).
  size_t begin_pos = json.find("\"req\"");
  ASSERT_NE(begin_pos, std::string::npos);
  EXPECT_EQ(json.find("\"dur\"", begin_pos), std::string::npos);
}

}  // namespace
}  // namespace sage::util
