#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators.h"
#include "reorder/permutation.h"
#include "reorder/reorderers.h"
#include "util/random.h"

namespace sage::reorder {
namespace {

using graph::Csr;
using graph::NodeId;

TEST(PermutationTest, IdentityAndValidity) {
  auto id = IdentityPermutation(5);
  EXPECT_TRUE(IsPermutation(id));
  EXPECT_EQ(id[3], 3u);
  EXPECT_FALSE(IsPermutation(std::vector<NodeId>{0, 0, 1}));
  EXPECT_FALSE(IsPermutation(std::vector<NodeId>{0, 5, 1}));
}

TEST(PermutationTest, InvertAndCompose) {
  std::vector<NodeId> perm{2, 0, 3, 1};
  auto inv = InvertPermutation(perm);
  EXPECT_EQ(ComposePermutations(perm, inv), IdentityPermutation(4));
  EXPECT_EQ(ComposePermutations(inv, perm), IdentityPermutation(4));
}

TEST(PermutationTest, PermuteVectorPlacesByNewId) {
  std::vector<int> v{10, 20, 30};
  std::vector<NodeId> perm{2, 0, 1};
  auto out = PermuteVector(v, perm);
  EXPECT_EQ(out, (std::vector<int>{20, 30, 10}));
}

TEST(PermutationTest, RemapIds) {
  std::vector<NodeId> perm{2, 0, 1};
  std::vector<NodeId> ids{0, 1, 2, 0};
  RemapIds(perm, ids);
  EXPECT_EQ(ids, (std::vector<NodeId>{2, 0, 1, 2}));
}

// The relabeled graph must be isomorphic to the original: edge (u,v)
// exists iff (σ(u),σ(v)) exists in the new graph.
TEST(PermutationTest, ApplyToCsrPreservesIsomorphism) {
  Csr csr = graph::GenerateRmat(8, 1500, 0.5, 0.2, 0.2, 6);
  auto perm = RandomOrder(csr, 77).new_of_old;
  Csr relabeled = ApplyToCsr(csr, perm);
  ASSERT_TRUE(relabeled.Validate().ok());
  ASSERT_EQ(relabeled.num_edges(), csr.num_edges());
  std::set<std::pair<NodeId, NodeId>> original_edges;
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    for (NodeId v : csr.Neighbors(u)) {
      original_edges.emplace(perm[u], perm[v]);
    }
  }
  std::set<std::pair<NodeId, NodeId>> new_edges;
  for (NodeId u = 0; u < relabeled.num_nodes(); ++u) {
    for (NodeId v : relabeled.Neighbors(u)) new_edges.emplace(u, v);
  }
  EXPECT_EQ(original_edges, new_edges);
}

// Mean distinct memory sectors touched per adjacency list, normalized by
// list length — the paper's own locality objective (Section 6) with
// 8 values per 32-byte sector. Lower is better.
double MeanSectorRatio(const Csr& csr) {
  double total = 0;
  uint64_t lists = 0;
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    auto nbrs = csr.Neighbors(u);
    if (nbrs.size() < 2) continue;
    std::set<NodeId> sectors;
    for (NodeId v : nbrs) sectors.insert(v / 8);
    total += static_cast<double>(sectors.size()) /
             static_cast<double>(nbrs.size());
    ++lists;
  }
  return lists == 0 ? 0.0 : total / static_cast<double>(lists);
}

class ReordererValidityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ReordererValidityTest, ProducesValidPermutation) {
  Csr csr = graph::GenerateWebCopy(2000, 10, 0.7, 5);
  std::string which = GetParam();
  ReorderResult result;
  if (which == "rcm") {
    result = RcmOrder(csr);
  } else if (which == "llp") {
    result = LlpOrder(csr, 4, 1);
  } else if (which == "gorder") {
    result = GorderOrder(csr);
  } else if (which == "degree") {
    result = DegreeOrder(csr);
  } else {
    result = RandomOrder(csr, 9);
  }
  EXPECT_TRUE(IsPermutation(result.new_of_old)) << which;
  EXPECT_GE(result.seconds, 0.0);
  // Relabeled graph stays structurally valid.
  Csr relabeled = ApplyToCsr(csr, result.new_of_old);
  EXPECT_TRUE(relabeled.Validate().ok());
  EXPECT_EQ(relabeled.num_edges(), csr.num_edges());
}

INSTANTIATE_TEST_SUITE_P(All, ReordererValidityTest,
                         ::testing::Values("rcm", "llp", "gorder", "degree",
                                           "random"),
                         [](const auto& name_info) {
                           return std::string(name_info.param);
                         });

TEST(ReordererQualityTest, RcmBeatsRandomOnLocality) {
  // A community graph has strong structure for RCM to exploit.
  Csr csr = graph::GenerateCommunity(2048, 16, 128, 0.9, 3);
  Csr shuffled = ApplyToCsr(csr, RandomOrder(csr, 123).new_of_old);
  Csr rcm = ApplyToCsr(shuffled, RcmOrder(shuffled).new_of_old);
  EXPECT_LT(MeanSectorRatio(rcm), 0.9 * MeanSectorRatio(shuffled));
}

TEST(ReordererQualityTest, GorderBeatsRandomOnLocality) {
  Csr csr = graph::GenerateCommunity(2048, 16, 128, 0.9, 3);
  Csr shuffled = ApplyToCsr(csr, RandomOrder(csr, 123).new_of_old);
  Csr gorder = ApplyToCsr(shuffled, GorderOrder(shuffled).new_of_old);
  EXPECT_LT(MeanSectorRatio(gorder), 0.9 * MeanSectorRatio(shuffled));
}

TEST(ReordererQualityTest, LlpGroupsCommunities) {
  Csr csr = graph::GenerateCommunity(1024, 12, 64, 0.95, 4);
  Csr shuffled = ApplyToCsr(csr, RandomOrder(csr, 5).new_of_old);
  Csr llp = ApplyToCsr(shuffled, LlpOrder(shuffled, 8, 2).new_of_old);
  EXPECT_LT(MeanSectorRatio(llp), MeanSectorRatio(shuffled));
}

TEST(ReordererQualityTest, DegreeOrderPutsHubsFirst) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.6, 0.18, 0.18, 7);
  auto perm = DegreeOrder(csr).new_of_old;
  Csr ordered = ApplyToCsr(csr, perm);
  // New node 0 must have the maximum degree.
  EXPECT_EQ(ordered.OutDegree(0), ordered.MaxOutDegree());
}

TEST(ReordererEdgeCases, SingleNodeAndEmpty) {
  Csr one = graph::GeneratePath(1);
  EXPECT_TRUE(IsPermutation(RcmOrder(one).new_of_old));
  EXPECT_TRUE(IsPermutation(GorderOrder(one).new_of_old));
  EXPECT_TRUE(IsPermutation(LlpOrder(one).new_of_old));
}

}  // namespace
}  // namespace sage::reorder
