#include <gtest/gtest.h>

#include "sim/device_spec.h"
#include "sim/gpu_device.h"
#include "sim/link.h"
#include "sim/memory_sim.h"

namespace sage::sim {
namespace {

DeviceSpec SmallSpec() {
  DeviceSpec spec;
  spec.num_sms = 4;
  spec.l2_bytes = 8 << 10;  // tiny L2: 256 sectors
  spec.l2_ways = 4;
  return spec;
}

TEST(MemorySimTest, DistinctSectorCounting) {
  MemorySim mem(SmallSpec());
  Buffer buf = mem.Register("labels", 1000, 4);
  // 8 consecutive 4-byte values fit one 32-byte sector.
  auto r = mem.Access(buf, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(r.sectors, 1u);
  // Stride-8 values hit 8 distinct sectors.
  r = mem.Access(buf, {0, 8, 16, 24, 32, 40, 48, 56});
  EXPECT_EQ(r.sectors, 8u);
}

TEST(MemorySimTest, BuffersDoNotShareSectors) {
  MemorySim mem(SmallSpec());
  Buffer a = mem.Register("a", 1, 4);
  Buffer b = mem.Register("b", 1, 4);
  EXPECT_NE(a.Addr(0) / 32, b.Addr(0) / 32);
}

TEST(MemorySimTest, L2HitOnRepeatedAccess) {
  MemorySim mem(SmallSpec());
  Buffer buf = mem.Register("x", 64, 4);
  auto miss = mem.Access(buf, {0});
  EXPECT_EQ(miss.l2_misses, 1u);
  auto hit = mem.Access(buf, {1});  // same sector
  EXPECT_EQ(hit.l2_hits, 1u);
  EXPECT_EQ(hit.l2_misses, 0u);
}

TEST(MemorySimTest, L2EvictsLru) {
  DeviceSpec spec = SmallSpec();
  spec.l2_bytes = 4 * 32;  // 4 sectors total
  spec.l2_ways = 4;        // one set
  MemorySim mem(spec);
  Buffer buf = mem.Register("x", 8 * 64, 4);
  // Fill the set with sectors 0..3 (element stride 8 = one sector each).
  for (uint64_t s = 0; s < 4; ++s) mem.Access(buf, {s * 8});
  // Touch sector 0 so sector 1 is LRU; insert sector 4 -> evicts 1.
  mem.Access(buf, {0});
  mem.Access(buf, {4 * 8});
  EXPECT_EQ(mem.Access(buf, {0}).l2_hits, 1u);       // still cached
  EXPECT_EQ(mem.Access(buf, {1 * 8}).l2_misses, 1u); // evicted
}

TEST(MemorySimTest, FlushInvalidatesEverything) {
  MemorySim mem(SmallSpec());
  Buffer buf = mem.Register("x", 64, 4);
  mem.Access(buf, {0});
  mem.FlushL2();
  EXPECT_EQ(mem.Access(buf, {0}).l2_misses, 1u);
}

TEST(MemorySimTest, AmplificationScattered) {
  MemorySim mem(SmallSpec());
  Buffer buf = mem.Register("labels", 100000, 4);
  // Perfectly scattered: one 4-byte value per 32-byte sector -> 8x.
  std::vector<uint64_t> idx;
  for (uint64_t i = 0; i < 32; ++i) idx.push_back(i * 8);
  mem.Access(buf, idx);
  EXPECT_NEAR(mem.device_stats().Amplification(), 8.0, 1e-9);
}

TEST(MemorySimTest, HostSpaceBypassesL2) {
  MemorySim mem(SmallSpec());
  Buffer buf = mem.Register("host", 64, 4, MemSpace::kHost);
  auto r1 = mem.Access(buf, {0});
  auto r2 = mem.Access(buf, {0});
  EXPECT_EQ(r1.l2_misses, 1u);
  EXPECT_EQ(r2.l2_misses, 1u);  // never cached
  EXPECT_EQ(mem.host_stats().batches, 2u);
  EXPECT_EQ(mem.device_stats().batches, 0u);
}

TEST(LinkModelTest, ScatteredSectorsPayPerFrameHeaders) {
  LinkModel link(8.0, 100, 24, 256);
  // 4 scattered sectors -> 4 frames.
  auto t = link.RequestSectors({0, 10, 20, 30}, 32);
  EXPECT_EQ(t.frames, 4u);
  EXPECT_EQ(t.payload_bytes, 128u);
  EXPECT_EQ(t.wire_bytes, 128u + 4 * 24u);
}

TEST(LinkModelTest, ConsecutiveSectorsMerge) {
  LinkModel link(8.0, 100, 24, 256);
  // 8 consecutive sectors of 32B fit one 256B frame.
  auto t = link.RequestSectors({0, 1, 2, 3, 4, 5, 6, 7}, 32);
  EXPECT_EQ(t.frames, 1u);
  // 9 consecutive need a second frame.
  t = link.RequestSectors({0, 1, 2, 3, 4, 5, 6, 7, 8}, 32);
  EXPECT_EQ(t.frames, 2u);
}

TEST(LinkModelTest, BulkEfficiencyBeatsScattered) {
  LinkModel bulk(8.0, 100, 24, 256);
  LinkModel scattered(8.0, 100, 24, 256);
  bulk.BulkTransfer(32 * 1024);
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 1024; ++i) ids.push_back(i * 7);
  scattered.RequestSectors(ids, 32);
  EXPECT_GT(bulk.stats().Efficiency(), scattered.stats().Efficiency());
}

TEST(GpuDeviceTest, KernelBracketsRequired) {
  GpuDevice device(SmallSpec());
  device.BeginKernel();
  device.ChargeCompute(0, 100);
  KernelResult r = device.EndKernel();
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(device.totals().kernels, 1u);
}

TEST(GpuDeviceTest, MaxSmDominatesKernelTime) {
  DeviceSpec spec = SmallSpec();
  GpuDevice balanced(spec);
  balanced.BeginKernel();
  for (uint32_t s = 0; s < 4; ++s) balanced.ChargeCompute(s, 100000);
  double t_balanced = balanced.EndKernel().seconds;

  GpuDevice skewed(spec);
  skewed.BeginKernel();
  skewed.ChargeCompute(0, 400000);  // same total work, one SM
  double t_skewed = skewed.EndKernel().seconds;
  EXPECT_GT(t_skewed, t_balanced * 2);
}

TEST(GpuDeviceTest, LeastLoadedSmBalances) {
  GpuDevice device(SmallSpec());
  device.BeginKernel();
  device.ChargeCompute(0, 1000);
  EXPECT_NE(device.LeastLoadedSm(), 0u);
  for (uint32_t s = 1; s < 4; ++s) device.ChargeCompute(s, 2000);
  EXPECT_EQ(device.LeastLoadedSm(), 0u);
  device.EndKernel();
}

TEST(GpuDeviceTest, ResidentWarpsHideLatency) {
  DeviceSpec spec = SmallSpec();
  GpuDevice low(spec);
  low.BeginKernel();
  Buffer buf = low.mem().Register("x", 1 << 20, 4);
  for (int i = 0; i < 100; ++i) low.AccessRange(0, buf, i * 4096, 8);
  low.ChargeWarps(0, 1);
  double t_low = low.EndKernel().seconds;

  GpuDevice high(spec);
  high.BeginKernel();
  Buffer buf2 = high.mem().Register("x", 1 << 20, 4);
  for (int i = 0; i < 100; ++i) high.AccessRange(0, buf2, i * 4096, 8);
  high.ChargeWarps(0, 32);
  double t_high = high.EndKernel().seconds;
  EXPECT_GT(t_low, t_high * 2);
}

TEST(GpuDeviceTest, TpOverheadTracked) {
  GpuDevice device(SmallSpec());
  device.BeginKernel();
  device.ChargeTpOverhead(0, 500);
  device.ChargeCompute(0, 500);
  KernelResult r = device.EndKernel();
  EXPECT_EQ(r.total_tp_overhead_cycles, 500u);
  EXPECT_EQ(r.total_compute_cycles, 1000u);
  EXPECT_GT(device.totals().tp_overhead_seconds, 0.0);
}

TEST(GpuDeviceTest, HostAccessChargesLink) {
  GpuDevice device(SmallSpec());
  Buffer host = device.mem().Register("adj", 1 << 16, 4, MemSpace::kHost);
  device.BeginKernel();
  device.AccessRange(0, host, 0, 32);
  device.EndKernel();
  EXPECT_GT(device.host_link().stats().transfers, 0u);
  EXPECT_GT(device.host_link().stats().wire_bytes,
            device.host_link().stats().payload_bytes - 1);
}

TEST(GpuDeviceTest, StreamingBytesAreCheapButNotFree) {
  GpuDevice device(SmallSpec());
  device.BeginKernel();
  device.ChargeStreamingBytes(0, 1 << 20);
  KernelResult r = device.EndKernel();
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.total_sectors, (1u << 20) / 32);
}

TEST(MemorySimTest, CountDistinctSectorsDoesNotTouchCache) {
  MemorySim mem(SmallSpec());
  Buffer buf = mem.Register("x", 1024, 4);
  EXPECT_EQ(mem.CountDistinctSectors(buf, {0, 1, 2, 3, 4, 5, 6, 7}), 1u);
  EXPECT_EQ(mem.CountDistinctSectors(buf, {0, 8, 16}), 3u);
  // No stats were recorded.
  EXPECT_EQ(mem.device_stats().batches, 0u);
  // And the L2 was not filled: the first real access still misses.
  EXPECT_EQ(mem.Access(buf, {0}).l2_misses, 1u);
}

TEST(GpuDeviceTest, ResetTotalsClearsEverything) {
  GpuDevice device(SmallSpec());
  Buffer buf = device.mem().Register("x", 64, 4);
  device.BeginKernel();
  device.AccessRange(0, buf, 0, 8);
  device.EndKernel();
  EXPECT_GT(device.totals().kernels, 0u);
  device.ResetTotals();
  EXPECT_EQ(device.totals().kernels, 0u);
  EXPECT_EQ(device.totals().seconds, 0.0);
  EXPECT_EQ(device.mem().device_stats().batches, 0u);
}

TEST(GpuDeviceTest, ExternalSecondsAccumulate) {
  GpuDevice device(SmallSpec());
  device.AddExternalSeconds(0.25);
  device.AddExternalSeconds(0.25);
  EXPECT_DOUBLE_EQ(device.totals().seconds, 0.5);
}

TEST(GpuDeviceTest, AtomicConflictsCostCompute) {
  GpuDevice a(SmallSpec());
  a.BeginKernel();
  a.ChargeAtomicConflicts(0, 1000);
  double with = a.EndKernel().seconds;
  GpuDevice b(SmallSpec());
  b.BeginKernel();
  double without = b.EndKernel().seconds;
  EXPECT_GT(with, without);
}

TEST(DeviceSpecTest, DerivedQuantities) {
  DeviceSpec spec;
  EXPECT_EQ(spec.ValuesPerSector(), 8u);
  EXPECT_GT(spec.PcieBytesPerCycle(), 0.0);
  EXPECT_GT(spec.PeerBytesPerCycle(), spec.PcieBytesPerCycle());
}

}  // namespace
}  // namespace sage::sim
