// Parallel execution backend tests (DESIGN.md §5): thread-pool unit tests,
// the 64-bit buffer-size overflow guard, and — the core guarantee — exact
// serial-vs-parallel equivalence: every seed application, every expand
// strategy and every thread count must produce bit-identical outputs,
// sector accounting and modeled timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "check/determinism.h"
#include "core/engine.h"
#include "graph/coo.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "util/thread_pool.h"

namespace sage {
namespace {

using core::Engine;
using core::EngineOptions;
using core::ExpandStrategy;
using graph::Csr;
using graph::NodeId;
using util::ThreadPool;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 128 << 10;
  return spec;
}

// --- ThreadPool ----------------------------------------------------------

class ThreadPoolSizes : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ThreadPoolSizes, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr size_t kN = 1000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  pool.ParallelFor(kN, [&](uint32_t /*worker*/, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST_P(ThreadPoolSizes, ParallelForWorkerIdsStayInRange) {
  ThreadPool pool(GetParam());
  std::mutex mu;
  std::set<uint32_t> seen;
  pool.ParallelFor(256, [&](uint32_t worker, size_t /*i*/) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(worker);
  });
  // The caller participates as worker id size(); pool threads are
  // 0..size()-1.
  for (uint32_t w : seen) EXPECT_LE(w, pool.size());
  EXPECT_EQ(pool.workers(), pool.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThreadPoolSizes,
                         ::testing::Values(0u, 1u, 4u));

TEST(ThreadPoolTest, CallerParticipatesInParallelFor) {
  // A zero-thread pool has no workers at all, so the caller must run every
  // index itself (worker id == size() == 0).
  ThreadPool pool(0);
  std::vector<uint32_t> workers(64, 123);
  pool.ParallelFor(64, [&](uint32_t worker, size_t i) {
    workers[i] = worker;
  });
  for (uint32_t w : workers) EXPECT_EQ(w, 0u);
}

TEST(ThreadPoolTest, ParallelForZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](uint32_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](uint32_t, size_t i) {
                         if (i == 57) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a failed loop and stay usable.
  std::atomic<size_t> count{0};
  pool.ParallelFor(10, [&](uint32_t, size_t) { ++count; });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPoolTest, DrainPropagatesSubmittedException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Drain(), std::runtime_error);
}

TEST(ThreadPoolTest, DrainWithNoTasksIsANoOp) {
  ThreadPool pool(2);
  pool.Drain();  // must not hang or throw
  ThreadPool inline_pool(0);
  inline_pool.Drain();
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Drain();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // The destructor must join cleanly and run every queued task — workers
  // only exit once the queue is empty.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool: no Drain() call
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

// --- Static ParallelFor: deterministic chunk -> worker mapping ------------

TEST(StaticParallelForTest, StaticChunksCoverRangeContiguously) {
  auto chunks = ThreadPool::StaticChunks(13, 113, 7);
  ASSERT_EQ(chunks.size(), (113u - 13u + 6u) / 7u);
  size_t expect_begin = 13;
  for (size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, expect_begin);
    EXPECT_GT(chunks[c].second, chunks[c].first);
    // Only the final chunk may be short.
    if (c + 1 < chunks.size()) {
      EXPECT_EQ(chunks[c].second - chunks[c].first, 7u);
    }
    expect_begin = chunks[c].second;
  }
  EXPECT_EQ(expect_begin, 113u);
}

TEST(StaticParallelForTest, StaticChunksEdgeCases) {
  EXPECT_TRUE(ThreadPool::StaticChunks(5, 5, 4).empty());  // empty range
  EXPECT_TRUE(ThreadPool::StaticChunks(9, 5, 4).empty());  // inverted range
  // grain == 0 is treated as 1.
  auto unit = ThreadPool::StaticChunks(0, 3, 0);
  ASSERT_EQ(unit.size(), 3u);
  EXPECT_EQ(unit[2], (std::pair<size_t, size_t>{2, 3}));
  // Range smaller than one grain: a single short chunk.
  auto single = ThreadPool::StaticChunks(10, 12, 100);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], (std::pair<size_t, size_t>{10, 12}));
}

class StaticParallelForSizes : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StaticParallelForSizes, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr size_t kBegin = 13, kEnd = 1013;
  std::vector<std::atomic<uint32_t>> hits(kEnd);
  pool.ParallelFor(kBegin, kEnd, 7,
                   [&](uint32_t /*worker*/, size_t lo, size_t hi) {
                     for (size_t i = lo; i < hi; ++i) {
                       hits[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (size_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0u) << i;
  for (size_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST_P(StaticParallelForSizes, ChunkToWorkerMappingIsDeterministic) {
  // Chunk c always runs on worker c % workers() — a pure function of the
  // bounds and the pool size, never of timing. Call sites keep per-worker
  // state (trace recorders, replay slices) keyed on that contract.
  ThreadPool pool(GetParam());
  auto chunks = ThreadPool::StaticChunks(0, 997, 11);
  auto run = [&] {
    // One slot per chunk; the contract makes the writes disjoint.
    std::vector<uint32_t> owner(chunks.size(), UINT32_MAX);
    pool.ParallelFor(0, 997, 11, [&](uint32_t worker, size_t lo, size_t hi) {
      size_t c = lo / 11;
      ASSERT_LT(c, chunks.size());
      EXPECT_EQ(chunks[c].first, lo);
      EXPECT_EQ(chunks[c].second, hi);
      owner[c] = worker;
    });
    return owner;
  };
  std::vector<uint32_t> first = run();
  for (size_t c = 0; c < first.size(); ++c) {
    EXPECT_EQ(first[c], c % pool.workers()) << "chunk " << c;
  }
  EXPECT_EQ(run(), first);  // identical assignment on every run
}

INSTANTIATE_TEST_SUITE_P(Sizes, StaticParallelForSizes,
                         ::testing::Values(0u, 1u, 3u, 4u));

TEST(StaticParallelForTest, EmptyRangeDoesNotInvokeBody) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(9, 9, 4, [&](uint32_t, size_t, size_t) { ran = true; });
  pool.ParallelFor(9, 5, 4, [&](uint32_t, size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(StaticParallelForTest, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(0, 100, 3,
                                [&](uint32_t, size_t lo, size_t) {
                                  if (lo == 57) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must survive and stay usable.
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, 10, 2, [&](uint32_t, size_t lo, size_t hi) {
    count += hi - lo;
  });
  EXPECT_EQ(count.load(), 10u);
}

// --- Buffer-size overflow guard -----------------------------------------

using ParallelDeathTest = ::testing::Test;

TEST(ParallelDeathTest, RegisterRejectsOverflowingBufferSize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::GpuDevice device(TestSpec());
  EXPECT_DEATH(device.mem().Register("huge", uint64_t{1} << 60, 1 << 10),
               "overflows");
}

TEST(ParallelDeathTest, GrowRejectsOverflowingBufferSize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::GpuDevice device(TestSpec());
  sim::Buffer buf = device.mem().Register("grows", 16, 1 << 10);
  EXPECT_DEATH(device.mem().Grow(&buf, uint64_t{1} << 60), "overflows");
}

// --- Serial-vs-parallel equivalence: the BFS harness ---------------------

TEST(EquivalenceTest, BfsAllStrategiesAllThreadCounts) {
  const Csr csr = graph::GenerateRmat(9, 4000, 0.55, 0.2, 0.2, 7);
  EngineOptions base;
  check::EquivalenceOptions eq;
  eq.thread_counts = {1, 2, 7, 0};  // 0 = hardware concurrency
  check::EquivalenceReport report =
      check::RunBfsEquivalence(csr, TestSpec(), 0, base, eq);
  EXPECT_TRUE(report.equivalent) << report.details;
}

TEST(EquivalenceTest, BfsWithShuffledDispatchOrder) {
  // The replay must preserve whatever canonical order the dispatch
  // permutation defines — shuffled serial == shuffled parallel.
  const Csr csr = graph::GenerateRmat(8, 2500, 0.5, 0.22, 0.2, 13);
  EngineOptions base;
  base.dispatch_permutation_seed = 99;
  check::EquivalenceOptions eq;
  check::EquivalenceReport report =
      check::RunBfsEquivalence(csr, TestSpec(), 0, base, eq);
  EXPECT_TRUE(report.equivalent) << report.details;
}

// --- Serial-vs-parallel equivalence: every seed application --------------

// Full observable state of one app run: the algorithm output digest plus
// every modeled-timing observable. operator== is exact (doubles compare
// bit-for-bit) because the parallel backend replays the identical charge
// sequence — any drift is a bug.
struct RunDigest {
  uint64_t output_hash = 0;
  double seconds = 0.0;
  double tp_overhead_seconds = 0.0;
  std::vector<double> per_kernel_seconds;
  uint64_t dev_sectors = 0, dev_hits = 0, dev_misses = 0;
  uint64_t dev_useful = 0, dev_loaded = 0, dev_batches = 0;
  uint64_t host_sectors = 0, host_batches = 0;
  uint64_t link_transfers = 0, link_frames = 0, link_wire = 0;
  double link_busy = 0.0;
  std::vector<uint64_t> sm_sectors;

  bool operator==(const RunDigest&) const = default;
};

template <typename RunFn>
RunDigest RunApp(const Csr& csr, const EngineOptions& opts, RunFn&& run) {
  sim::GpuDevice device(TestSpec());
  Engine engine(&device, csr, opts);
  RunDigest d;
  d.output_hash = run(engine, csr);
  const auto& totals = device.totals();
  d.seconds = totals.seconds;
  d.tp_overhead_seconds = totals.tp_overhead_seconds;
  d.per_kernel_seconds = totals.per_kernel_seconds;
  d.sm_sectors = totals.sm_sectors;
  const auto& dm = device.mem().device_stats();
  d.dev_sectors = dm.sectors;
  d.dev_hits = dm.l2_hits;
  d.dev_misses = dm.l2_misses;
  d.dev_useful = dm.useful_bytes;
  d.dev_loaded = dm.loaded_bytes;
  d.dev_batches = dm.batches;
  const auto& hm = device.mem().host_stats();
  d.host_sectors = hm.sectors;
  d.host_batches = hm.batches;
  const auto& ls = device.host_link().stats();
  d.link_transfers = ls.transfers;
  d.link_frames = ls.frames;
  d.link_wire = ls.wire_bytes;
  d.link_busy = ls.busy_cycles;
  return d;
}

template <typename RunFn>
void ExpectSerialParallelEqual(const Csr& csr, EngineOptions opts,
                               RunFn&& run) {
  opts.host_threads = 1;
  RunDigest serial = RunApp(csr, opts, run);
  for (uint32_t threads : {2u, 4u}) {
    opts.host_threads = threads;
    RunDigest parallel = RunApp(csr, opts, run);
    EXPECT_EQ(parallel.output_hash, serial.output_hash)
        << "threads=" << threads;
    EXPECT_EQ(parallel.seconds, serial.seconds) << "threads=" << threads;
    EXPECT_EQ(parallel.per_kernel_seconds, serial.per_kernel_seconds)
        << "threads=" << threads;
    EXPECT_EQ(parallel.sm_sectors, serial.sm_sectors)
        << "threads=" << threads;
    EXPECT_TRUE(parallel == serial) << "threads=" << threads;
  }
}

Csr SymmetricRmat(uint32_t scale, uint64_t edges, uint64_t seed) {
  graph::Coo coo =
      graph::GenerateRmat(scale, edges, 0.5, 0.2, 0.2, seed).ToCoo();
  graph::Symmetrize(coo);
  graph::RemoveSelfLoops(coo);
  graph::SortCoo(coo);
  graph::DedupSortedCoo(coo);
  return Csr::FromCoo(coo);
}

uint64_t HashU32(uint64_t h, uint32_t v) {
  return check::HashBytes(&v, sizeof(v), h);
}
uint64_t HashU64(uint64_t h, uint64_t v) {
  return check::HashBytes(&v, sizeof(v), h);
}
uint64_t HashF64(uint64_t h, double v) {
  return check::HashBytes(&v, sizeof(v), h);
}

class AppEquivalenceTest
    : public ::testing::TestWithParam<ExpandStrategy> {};

TEST_P(AppEquivalenceTest, Bfs) {
  const Csr csr = graph::GenerateRmat(9, 3500, 0.55, 0.2, 0.2, 5);
  EngineOptions opts;
  opts.strategy = GetParam();
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::BfsProgram bfs;
    EXPECT_TRUE(engine.Bind(&bfs).ok());
    EXPECT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) h = HashU32(h, bfs.DistanceOf(u));
    return h;
  });
}

TEST_P(AppEquivalenceTest, PageRank) {
  const Csr csr = graph::GenerateRmat(8, 2500, 0.5, 0.2, 0.2, 9);
  EngineOptions opts;
  opts.strategy = GetParam();
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::PageRankProgram pr;
    EXPECT_TRUE(engine.Bind(&pr).ok());
    EXPECT_TRUE(apps::RunPageRank(engine, pr, 5).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) h = HashF64(h, pr.RankOf(u));
    return h;
  });
}

TEST_P(AppEquivalenceTest, Sssp) {
  const Csr csr = graph::GenerateUniform(400, 4000, 11);
  EngineOptions opts;
  opts.strategy = GetParam();
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::SsspProgram sssp;
    EXPECT_TRUE(engine.Bind(&sssp).ok());
    EXPECT_TRUE(apps::RunSssp(engine, sssp, 0).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) h = HashU64(h, sssp.DistanceOf(u));
    return h;
  });
}

TEST_P(AppEquivalenceTest, ConnectedComponents) {
  const Csr csr = SymmetricRmat(8, 2000, 17);
  EngineOptions opts;
  opts.strategy = GetParam();
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::CcProgram cc;
    EXPECT_TRUE(apps::RunConnectedComponents(engine, cc).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) h = HashU64(h, cc.ComponentOf(u));
    return h;
  });
}

TEST_P(AppEquivalenceTest, BetweennessCentrality) {
  const Csr csr = graph::GenerateRmat(8, 1800, 0.45, 0.25, 0.2, 21);
  EngineOptions opts;
  opts.strategy = GetParam();
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::Betweenness bc(g.num_nodes());
    EXPECT_TRUE(bc.Run(engine, 0).ok());
    EXPECT_TRUE(bc.Run(engine, 1).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (double c : bc.centrality()) h = HashF64(h, c);
    return h;
  });
}

TEST_P(AppEquivalenceTest, MultiSourceBfs) {
  // The MS-BFS batching path iterates 64-instance masks through the shared
  // ForEachSetBit popcount idiom; its per-edge atomicOr filter work is
  // deferred and committed in rank order like any other filter app.
  const Csr csr = graph::GenerateRmat(9, 3000, 0.55, 0.2, 0.2, 23);
  EngineOptions opts;
  opts.strategy = GetParam();
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::MultiSourceBfsProgram msbfs;
    msbfs.EnableDistanceRecording();
    std::vector<NodeId> sources{0, 3, 11, 57, 123, 200, 301, 411};
    EXPECT_TRUE(apps::RunMultiSourceBfs(engine, msbfs, sources).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint32_t i = 0; i < msbfs.num_sources(); ++i) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        h = HashU32(h, msbfs.DistanceOf(i, u));
      }
      h = HashU64(h, msbfs.ReachedCount(i));
    }
    return h;
  });
}

INSTANTIATE_TEST_SUITE_P(Strategies, AppEquivalenceTest,
                         ::testing::Values(ExpandStrategy::kSage,
                                           ExpandStrategy::kB40c,
                                           ExpandStrategy::kWarpCentric),
                         [](const auto& name_info) {
                           switch (name_info.param) {
                             case ExpandStrategy::kSage:
                               return "sage";
                             case ExpandStrategy::kB40c:
                               return "b40c";
                             default:
                               return "warp";
                           }
                         });

// --- Equivalence under special engine configurations ---------------------

TEST(EquivalenceTest, AdjacencyOnHost) {
  // Out-of-core mode routes adjacency reads over the PCIe link; the replay
  // must reproduce the exact serial link-charge sequence too.
  const Csr csr = graph::GenerateRmat(8, 2000, 0.55, 0.2, 0.2, 31);
  EngineOptions opts;
  opts.adjacency_on_host = true;
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::BfsProgram bfs;
    EXPECT_TRUE(engine.Bind(&bfs).ok());
    EXPECT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) h = HashU32(h, bfs.DistanceOf(u));
    return h;
  });
}

TEST(EquivalenceTest, ShardedReplayManySlicesOddThreads) {
  // A larger L2 gives the sliced replay more address shards to run
  // concurrently, and odd worker counts leave slices and workers coprime
  // (every worker sees a different slice mix than with the even counts the
  // other tests sweep). Outputs, sector counts and modeled timing must
  // still match serial bit-for-bit.
  const Csr csr = graph::GenerateRmat(9, 4500, 0.55, 0.2, 0.2, 51);
  sim::DeviceSpec spec;
  spec.num_sms = 16;
  spec.l2_bytes = 1 << 20;
  EngineOptions base;
  check::EquivalenceOptions eq;
  eq.thread_counts = {1, 2, 3, 4, 8};
  check::EquivalenceReport report =
      check::RunBfsEquivalence(csr, spec, 0, base, eq);
  EXPECT_TRUE(report.equivalent) << report.details;
}

TEST(EquivalenceTest, SamplingReorderBitmapFrontierRebuild) {
  // Sampling-based reordering permutes node ids mid-run; RunLoop then
  // rebuilds the sorted global frontier through the packed bitmap. Engines
  // with sampling_reorder fall back to serial execution (the sampler is
  // order-sensitive), so every requested thread count must agree
  // bit-for-bit — including with the bitmap rebuild on the hot path. The
  // tiny sampling threshold forces several reorder points per run.
  const Csr csr = SymmetricRmat(9, 4000, 37);
  EngineOptions opts;
  opts.sampling_reorder = true;
  opts.sampling_threshold_edges = 500;
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::BfsProgram bfs;
    EXPECT_TRUE(engine.Bind(&bfs).ok());
    EXPECT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      h = HashU32(h, bfs.DistanceOf(u));
    }
    return h;
  });
}

TEST(EquivalenceTest, UdtPreprocessing) {
  // Tigr's UDT layer adds virtual→real frontier translation reads in the
  // expand hot path; those flow through the trace recorder like any other
  // access.
  const Csr csr = graph::GenerateRmat(8, 2200, 0.55, 0.2, 0.2, 41);
  EngineOptions opts;
  opts.udt_split_degree = 16;
  opts.resident_tiles = false;
  ExpectSerialParallelEqual(csr, opts, [](Engine& engine, const Csr& g) {
    apps::BfsProgram bfs;
    EXPECT_TRUE(engine.Bind(&bfs).ok());
    EXPECT_TRUE(apps::RunBfs(engine, bfs, 0).ok());
    uint64_t h = 0xcbf29ce484222325ull;
    for (NodeId u = 0; u < g.num_nodes(); ++u) h = HashU32(h, bfs.DistanceOf(u));
    return h;
  });
}

}  // namespace
}  // namespace sage
