// SageShard: the sharded-execution contract. The heart is the equivalence
// matrix — for every app, shard count K in {1,2,4}, and host-thread count
// in {1,4}, the sharded output digest is bit-identical to the single-
// device run — plus partitioner edge cases, option validation, per-device
// fault injection inside the group, and the delta-vs-dense exchange
// accounting the frontier compression is measured by.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "apps/registry.h"
#include "apps/reference.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "graph/generators.h"
#include "graph/partitioner.h"
#include "sim/fault_injector.h"
#include "sim/gpu_device.h"

namespace sage {
namespace {

using core::MultiGpuStrategy;
using core::ShardedEngine;
using core::ShardOptions;
using graph::Csr;
using graph::NodeId;
using graph::PartitionerKind;

sim::DeviceSpec TestSpec() {
  sim::DeviceSpec spec;
  spec.num_sms = 8;
  spec.l2_bytes = 256 << 10;
  return spec;
}

ShardOptions Opts(uint32_t shards, uint32_t host_threads = 1,
                  PartitionerKind partitioner = PartitionerKind::kHash) {
  ShardOptions opts;
  opts.num_shards = shards;
  opts.host_threads = host_threads;
  opts.partitioner = partitioner;
  opts.spec = TestSpec();
  return opts;
}

/// Runs `app` sharded and returns the output digest.
uint64_t ShardedDigest(const Csr& csr, const std::string& app,
                       const apps::AppParams& params,
                       const ShardOptions& opts) {
  auto engine = ShardedEngine::Create(csr, opts);
  SAGE_CHECK(engine.ok()) << engine.status().ToString();
  auto result = (*engine)->Run(app, params);
  SAGE_CHECK(result.ok()) << result.status().ToString();
  return (*engine)->OutputDigest();
}

/// The single-device reference digest via the registry path.
uint64_t SoloDigest(const Csr& csr, const std::string& app,
                    const apps::AppParams& params) {
  sim::GpuDevice device(TestSpec());
  auto engine = core::Engine::Create(&device, csr, core::EngineOptions());
  SAGE_CHECK(engine.ok());
  auto program = apps::CreateProgram(app);
  SAGE_CHECK(program.ok());
  auto stats = apps::RunApp(**engine, **program, params);
  SAGE_CHECK(stats.ok()) << stats.status().ToString();
  return apps::OutputDigest(**engine, **program);
}

// --- The equivalence matrix -------------------------------------------------

struct MatrixCase {
  uint32_t shards;
  uint32_t host_threads;
};

class ShardMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ShardMatrixTest, BfsDigestMatchesSingleDevice) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.57, 0.19, 0.19, 15);
  apps::AppParams params;
  params.sources = {0};
  uint64_t solo = SoloDigest(csr, "bfs", params);
  uint64_t sharded = ShardedDigest(
      csr, "bfs", params, Opts(GetParam().shards, GetParam().host_threads));
  EXPECT_EQ(sharded, solo);
}

TEST_P(ShardMatrixTest, MsBfsDigestMatchesSingleDevice) {
  Csr csr = graph::GenerateRmat(10, 8000, 0.5, 0.2, 0.2, 23);
  apps::AppParams params;
  params.sources = {0, 7, 19, 101};
  uint64_t solo = SoloDigest(csr, "msbfs", params);
  uint64_t sharded = ShardedDigest(
      csr, "msbfs", params, Opts(GetParam().shards, GetParam().host_threads));
  EXPECT_EQ(sharded, solo);
}

TEST_P(ShardMatrixTest, PageRankDigestMatchesK1) {
  // PageRank's canonical summation order is the sharded fold (sorted by
  // contributing edge); K=1 defines the reference digest and every K and
  // thread count must reproduce it bit-for-bit. A solo engine's
  // schedule-dependent float summation only agrees numerically (checked in
  // PageRankMatchesReferenceNumerically below).
  Csr csr = graph::GenerateRmat(9, 5000, 0.5, 0.2, 0.2, 19);
  apps::AppParams params;
  params.iterations = 4;
  uint64_t reference = ShardedDigest(csr, "pagerank", params, Opts(1));
  uint64_t sharded = ShardedDigest(
      csr, "pagerank", params,
      Opts(GetParam().shards, GetParam().host_threads));
  EXPECT_EQ(sharded, reference);
}

TEST_P(ShardMatrixTest, MetisPartitioningSameDigests) {
  Csr csr = graph::GenerateCommunity(2048, 12, 512, 0.9, 7);
  apps::AppParams params;
  params.sources = {0};
  uint64_t solo = SoloDigest(csr, "bfs", params);
  uint64_t sharded = ShardedDigest(csr, "bfs", params,
                                   Opts(GetParam().shards,
                                        GetParam().host_threads,
                                        PartitionerKind::kMetisLike));
  EXPECT_EQ(sharded, solo);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardMatrixTest,
    ::testing::Values(MatrixCase{1, 1}, MatrixCase{2, 1}, MatrixCase{4, 1},
                      MatrixCase{1, 4}, MatrixCase{2, 4}, MatrixCase{4, 4}),
    [](const auto& param_info) {
      return "K" + std::to_string(param_info.param.shards) + "T" +
             std::to_string(param_info.param.host_threads);
    });

TEST(ShardedEngineTest, MsBfsInstanceDigestMatchesSoloBfs) {
  Csr csr = graph::GenerateRmat(9, 6000, 0.5, 0.2, 0.2, 31);
  apps::AppParams params;
  params.sources = {3, 42, 7};
  auto engine = ShardedEngine::Create(csr, Opts(2));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Run("msbfs", params).ok());
  for (uint32_t i = 0; i < params.sources.size(); ++i) {
    apps::AppParams solo;
    solo.sources = {params.sources[i]};
    EXPECT_EQ((*engine)->InstanceDigest(i), SoloDigest(csr, "bfs", solo))
        << "instance " << i;
  }
}

TEST(ShardedEngineTest, PageRankMatchesReferenceNumerically) {
  Csr csr = graph::GenerateRmat(9, 5000, 0.5, 0.2, 0.2, 19);
  auto ref = apps::PageRankReference(csr, 4);
  apps::AppParams params;
  params.iterations = 4;
  auto engine = ShardedEngine::Create(csr, Opts(4));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Run("pagerank", params).ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_NEAR((*engine)->RankOf(v), ref[v], 1e-9) << "node " << v;
  }
}

TEST(ShardedEngineTest, BfsDistancesMatchReference) {
  Csr csr = graph::GenerateRmat(10, 9000, 0.57, 0.19, 0.19, 15);
  auto ref = apps::BfsReference(csr, 0);
  apps::AppParams params;
  params.sources = {0};
  auto engine = ShardedEngine::Create(csr, Opts(4, 4));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Run("bfs", params).ok());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    ASSERT_EQ((*engine)->DistanceOf(v), ref[v]) << "node " << v;
  }
}

// --- Exchange accounting ----------------------------------------------------

TEST(ShardedEngineTest, DeltaExchangeBeatsDenseBitmaps) {
  Csr csr = graph::GenerateRmat(11, 20000, 0.57, 0.19, 0.19, 5);
  apps::AppParams params;
  params.sources = {0};
  auto engine = ShardedEngine::Create(csr, Opts(2));
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Run("bfs", params);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->frontier_payload_bytes, 0u);
  EXPECT_GT(result->frontier_dense_bytes, 0u);
  // The headline gate: delta-compressed words ship at most half of what a
  // full-bitmap exchange per pair per level would.
  EXPECT_LE(result->frontier_payload_bytes,
            result->frontier_dense_bytes / 2);
  // Wire bytes add frame headers on top of the payload — and are bytes,
  // not whole sectors (the satellite fix).
  EXPECT_GE(result->frontier_wire_bytes, result->frontier_payload_bytes);
  EXPECT_GT(result->messages, 0u);
  // The byte counters are exposed through the metrics registry (SageScope).
  std::string json = (*engine)->metrics().ToJson();
  EXPECT_NE(json.find("shard.frontier_bytes_exchanged"), std::string::npos);
  EXPECT_NE(json.find("shard.frontier_bytes_dense"), std::string::npos);
  EXPECT_NE(json.find("shard.link_us"), std::string::npos);
  EXPECT_NE(json.find("shard.imbalance"), std::string::npos);
}

TEST(ShardedEngineTest, SingleShardExchangesNothing) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 3);
  apps::AppParams params;
  params.sources = {0};
  auto engine = ShardedEngine::Create(csr, Opts(1));
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Run("bfs", params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->frontier_payload_bytes, 0u);
  EXPECT_EQ(result->comm_seconds, 0.0);
}

// --- Option validation ------------------------------------------------------

TEST(ShardOptionsTest, ValidateRejectsBadCombinations) {
  ShardOptions opts = Opts(0);
  EXPECT_FALSE(opts.Validate().ok());

  opts = Opts(3, 1, PartitionerKind::kMetisLike);  // metis needs 2^k parts
  EXPECT_FALSE(opts.Validate().ok());
  opts = Opts(4, 1, PartitionerKind::kMetisLike);
  EXPECT_TRUE(opts.Validate().ok());
  opts = Opts(3);  // hash takes any K
  EXPECT_TRUE(opts.Validate().ok());

  opts = Opts(2);
  opts.engine_options.sampling_reorder = true;  // would relabel node ids
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(ShardOptionsTest, CreateSurfacesValidateError) {
  Csr csr = graph::GeneratePath(8);
  ShardOptions opts = Opts(3, 1, PartitionerKind::kMetisLike);
  auto engine = ShardedEngine::Create(csr, opts);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, UnknownAppIsNotFound) {
  Csr csr = graph::GeneratePath(8);
  auto engine = ShardedEngine::Create(csr, Opts(2));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->Run("nope", apps::AppParams()).status().code(),
            util::StatusCode::kNotFound);
}

// --- Strategy / partitioner parsing (the shared CLI surface) ----------------

TEST(ShardParseTest, StrategyNamesIncludingLegacySpellings) {
  MultiGpuStrategy s;
  EXPECT_TRUE(core::ParseMultiGpuStrategy("sage", &s));
  EXPECT_EQ(s, MultiGpuStrategy::kSage);
  EXPECT_TRUE(core::ParseMultiGpuStrategy("gunrock", &s));
  EXPECT_EQ(s, MultiGpuStrategy::kGunrockLike);
  EXPECT_TRUE(core::ParseMultiGpuStrategy("gunrock-like", &s));
  EXPECT_EQ(s, MultiGpuStrategy::kGunrockLike);
  EXPECT_TRUE(core::ParseMultiGpuStrategy("groute-like", &s));
  EXPECT_EQ(s, MultiGpuStrategy::kGrouteLike);
  EXPECT_FALSE(core::ParseMultiGpuStrategy("cuda", &s));
}

TEST(ShardParseTest, PartitionerNamesIncludingLegacySpellings) {
  PartitionerKind k;
  EXPECT_TRUE(graph::ParsePartitionerKind("hash", &k));
  EXPECT_EQ(k, PartitionerKind::kHash);
  EXPECT_TRUE(graph::ParsePartitionerKind("range", &k));
  EXPECT_EQ(k, PartitionerKind::kRange);
  EXPECT_TRUE(graph::ParsePartitionerKind("metis", &k));
  EXPECT_EQ(k, PartitionerKind::kMetisLike);
  EXPECT_TRUE(graph::ParsePartitionerKind("metis-like", &k));
  EXPECT_EQ(k, PartitionerKind::kMetisLike);
  EXPECT_FALSE(graph::ParsePartitionerKind("spectral", &k));
}

// --- Partitioner edge cases -------------------------------------------------

TEST(PartitionerTest, InterfaceReportsKindAndName) {
  for (auto kind : {PartitionerKind::kHash, PartitionerKind::kRange,
                    PartitionerKind::kMetisLike}) {
    auto partitioner = graph::MakePartitioner(kind);
    ASSERT_NE(partitioner, nullptr);
    EXPECT_EQ(partitioner->kind(), kind);
    EXPECT_STREQ(partitioner->name(), graph::PartitionerKindName(kind));
  }
}

TEST(PartitionerTest, RangeIsContiguousAndCoversAll) {
  Csr csr = graph::GenerateRmat(9, 3000, 0.5, 0.2, 0.2, 11);
  auto partitioner = graph::MakePartitioner(PartitionerKind::kRange);
  auto result = partitioner->Partition(csr, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->part.size(), csr.num_nodes());
  // Contiguous blocks: part ids are non-decreasing over the node range.
  EXPECT_TRUE(std::is_sorted(result->part.begin(), result->part.end()));
  EXPECT_TRUE(std::all_of(result->part.begin(), result->part.end(),
                          [](uint32_t p) { return p < 3; }));
}

TEST(PartitionerTest, MorePartsThanNodesLeavesEmptyShards) {
  Csr csr = graph::GeneratePath(3);  // 3 nodes, K = 8
  auto partitioner = graph::MakePartitioner(PartitionerKind::kRange);
  auto result = partitioner->Partition(csr, 8);
  ASSERT_TRUE(result.ok());
  std::set<uint32_t> used(result->part.begin(), result->part.end());
  EXPECT_LT(used.size(), 8u);  // some shards own nothing — must be legal

  // And the sharded engine still answers correctly with empty shards.
  apps::AppParams params;
  params.sources = {0};
  EXPECT_EQ(ShardedDigest(csr, "bfs", params, Opts(8)),
            SoloDigest(csr, "bfs", params));
}

TEST(PartitionerTest, IsolatedVerticesArePlaced) {
  // A star's leaves have out-degree 0; every node must still get an owner
  // and BFS must still match the reference (unreached stays unreached).
  Csr csr = graph::GenerateStar(10);
  for (auto kind : {PartitionerKind::kHash, PartitionerKind::kRange,
                    PartitionerKind::kMetisLike}) {
    auto partitioner = graph::MakePartitioner(kind);
    auto result = partitioner->Partition(csr, 2);
    ASSERT_TRUE(result.ok()) << partitioner->name();
    EXPECT_EQ(result->part.size(), csr.num_nodes());
  }
  apps::AppParams params;
  params.sources = {1};  // a leaf: only itself (and maybe hub) reachable
  EXPECT_EQ(ShardedDigest(csr, "bfs", params, Opts(2)),
            SoloDigest(csr, "bfs", params));
}

TEST(PartitionerTest, ZeroPartsIsTypedErrorNotCrash) {
  Csr csr = graph::GeneratePath(4);
  for (auto kind : {PartitionerKind::kHash, PartitionerKind::kRange,
                    PartitionerKind::kMetisLike}) {
    auto partitioner = graph::MakePartitioner(kind);
    auto result = partitioner->Partition(csr, 0);
    EXPECT_FALSE(result.ok()) << partitioner->name();
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(PartitionerTest, MetisNonPowerOfTwoIsTypedError) {
  Csr csr = graph::GeneratePath(16);
  auto partitioner = graph::MakePartitioner(PartitionerKind::kMetisLike);
  auto result = partitioner->Partition(csr, 3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// --- SageGuard inside the group ---------------------------------------------

TEST(ShardedEngineTest, PerDeviceFaultInjectionSurfacesAsUnavailable) {
  Csr csr = graph::GenerateRmat(9, 4000, 0.5, 0.2, 0.2, 3);
  auto engine = ShardedEngine::Create(csr, Opts(2));
  ASSERT_TRUE(engine.ok());
  auto spec = sim::ParseFaultSpec("transient rate 1.0 count 1\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  sim::FaultInjector injector(std::move(*spec));
  // Attach to one device of the group, exactly as on a solo device.
  (*engine)->group().device(1)->set_fault_injector(&injector);
  apps::AppParams params;
  params.sources = {0};
  auto result = (*engine)->Run("bfs", params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  // Detach and the group runs clean again (per-run state fully resets).
  (*engine)->group().device(1)->set_fault_injector(nullptr);
  auto retry = (*engine)->Run("bfs", params);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ((*engine)->OutputDigest(), SoloDigest(csr, "bfs", params));
}

}  // namespace
}  // namespace sage
