#include "baselines/subway.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::baselines {

using graph::Csr;
using graph::EdgeId;
using graph::NodeId;

namespace {

constexpr uint32_t kUnreached = 0xffffffffu;

// Inline BFS filter over a shared distance array; frontier/neighbor ids are
// real node ids (the driver maps compact ids through the frontier map).
class SubwayBfsFilter : public core::FilterProgram {
 public:
  SubwayBfsFilter(std::vector<uint32_t>* dist, const sim::Buffer* dist_buf)
      : dist_(dist) {
    footprint_.neighbor_reads = {dist_buf};
    footprint_.neighbor_writes = {dist_buf};
    footprint_.frontier_reads = {dist_buf};
  }

  void Bind(core::Engine*) override {}
  bool Filter(NodeId frontier, NodeId neighbor) override {
    if ((*dist_)[neighbor] == kUnreached) {
      (*dist_)[neighbor] = (*dist_)[frontier] + 1;
      return true;
    }
    return false;
  }
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "subway-bfs"; }

 private:
  std::vector<uint32_t>* dist_;
  core::Footprint footprint_;
};

}  // namespace

SubwayBfs::SubwayBfs(sim::GpuDevice* device, const Csr* csr)
    : device_(device), csr_(csr) {
  auto& mem = device->mem();
  const uint64_t n = std::max<uint64_t>(csr->num_nodes(), 1);
  const uint64_t m = std::max<uint64_t>(csr->num_edges(), 1);
  dist_buf_ = mem.Register("subway.dist", n, sizeof(uint32_t));
  sub_v_buf_ = mem.Register("subway.sub_v", m, sizeof(NodeId));
  sub_offsets_buf_ = mem.Register("subway.sub_offsets", n + 1, sizeof(EdgeId));
  map_buf_ = mem.Register("subway.compact_to_real", n, sizeof(NodeId));
  frontier_buf_ = mem.Register("subway.frontier", n, sizeof(NodeId));
}

OutOfCoreResult SubwayBfs::Run(NodeId source,
                               std::vector<uint32_t>* dist_out) {
  const auto& spec = device_->spec();
  const NodeId n = csr_->num_nodes();
  OutOfCoreResult result;

  std::vector<uint32_t> dist(n, kUnreached);
  SAGE_CHECK_LT(source, n);
  dist[source] = 0;
  SubwayBfsFilter filter(&dist, &dist_buf_);

  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  core::TiledOptions topts;
  topts.block_size = spec.block_size;

  while (!frontier.empty()) {
    // --- Subgraph extraction kernel: scan activity flags, gather the
    // frontier's offset ranges, build the compaction map.
    uint64_t active_edges = 0;
    for (NodeId f : frontier) active_edges += csr_->OutDegree(f);
    device_->BeginKernel();
    uint64_t extraction_bytes =
        n / 8 + frontier.size() * (sizeof(EdgeId) * 2 + sizeof(NodeId) * 2);
    for (uint32_t s = 0; s < spec.num_sms; ++s) {
      device_->ChargeStreamingBytes(s, extraction_bytes / spec.num_sms + 1);
    }
    sim::KernelResult ek = device_->EndKernel();
    result.extraction_seconds += ek.seconds;

    // --- Planned preload of the active subgraph (async DMA).
    uint64_t payload = active_edges * sizeof(NodeId) +
                       (frontier.size() + 1) * sizeof(EdgeId);
    sim::LinkModel::Transfer t = device_->BulkHostTransfer(payload);
    double transfer_seconds = device_->CyclesToSeconds(t.cycles);
    result.transfer_seconds += transfer_seconds;
    result.bytes_transferred += t.wire_bytes;

    // --- Build the compacted subgraph (functional mirror of the DMA).
    graph::Coo coo;
    coo.num_nodes = static_cast<NodeId>(frontier.size());
    coo.u.reserve(active_edges);
    coo.v.reserve(active_edges);
    std::vector<NodeId> compact_to_real(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      compact_to_real[i] = frontier[i];
      for (NodeId v : csr_->Neighbors(frontier[i])) {
        coo.u.push_back(static_cast<NodeId>(i));
        coo.v.push_back(v);
      }
    }
    // Targets are real ids; widen the node count so FromCoo's range checks
    // accept them (the compact graph only expands its frontier rows).
    coo.num_nodes = std::max<NodeId>(coo.num_nodes, n);
    Csr compact = Csr::FromCoo(coo);

    // --- Device-local traversal of the preloaded subgraph.
    core::ExpandContext ctx(device_, &compact, &sub_v_buf_,
                            &sub_offsets_buf_);
    ctx.set_filter(&filter);
    ctx.set_frontier_map(&compact_to_real, &map_buf_);
    device_->BeginKernel();
    next.clear();
    uint64_t edges = 0;
    const uint32_t bs = spec.block_size;
    uint64_t blocks = (frontier.size() + bs - 1) / bs;
    std::vector<NodeId> compact_ids(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      compact_ids[i] = static_cast<NodeId>(i);
    }
    for (uint64_t b = 0; b < blocks; ++b) {
      uint32_t sm = device_->StaticSmForBlock(b);
      size_t beg = b * bs;
      size_t len = std::min<size_t>(bs, frontier.size() - beg);
      std::span<const NodeId> slice(compact_ids.data() + beg, len);
      ctx.ChargeBlockFrontierReads(sm, &frontier_buf_, beg, slice);
      edges += ExpandBlockTiled(ctx, sm, slice, topts, &next);
    }
    ctx.ChargeContraction(&frontier_buf_, next.size());
    sim::KernelResult ck = device_->EndKernel();
    result.compute_seconds += ck.seconds;

    // --- Pipeline model: the preload overlaps the compute kernel
    // (asynchronous preloading is Subway's key mechanism).
    double iter_seconds =
        ek.seconds + std::max(ck.seconds, transfer_seconds);
    result.stats.seconds += iter_seconds;
    result.stats.iterations += 1;
    result.stats.edges_traversed += edges;
    result.stats.frontier_nodes += frontier.size();
    frontier.swap(next);
  }
  if (dist_out != nullptr) *dist_out = std::move(dist);
  return result;
}

namespace {

// Inline push-PageRank filter over shared rank arrays.
class SubwayPrFilter : public core::FilterProgram {
 public:
  SubwayPrFilter(std::vector<double>* pr_in, std::vector<double>* pr_out,
                 std::vector<uint32_t>* outdeg, const sim::Buffer* in_buf,
                 const sim::Buffer* out_buf, const sim::Buffer* deg_buf)
      : pr_in_(pr_in), pr_out_(pr_out), outdeg_(outdeg) {
    footprint_.frontier_reads = {in_buf, deg_buf};
    footprint_.neighbor_writes = {out_buf};
    footprint_.atomic_neighbor = true;
  }

  void Bind(core::Engine*) override {}
  bool Filter(NodeId frontier, NodeId neighbor) override {
    (*pr_out_)[neighbor] +=
        (*pr_in_)[frontier] * 0.85 / static_cast<double>((*outdeg_)[frontier]);
    return false;
  }
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "subway-pagerank"; }

 private:
  std::vector<double>* pr_in_;
  std::vector<double>* pr_out_;
  std::vector<uint32_t>* outdeg_;
  core::Footprint footprint_;
};

}  // namespace

SubwayPageRank::SubwayPageRank(sim::GpuDevice* device, const Csr* csr)
    : device_(device), csr_(csr) {
  auto& mem = device->mem();
  const uint64_t n = std::max<uint64_t>(csr->num_nodes(), 1);
  const uint64_t m = std::max<uint64_t>(csr->num_edges(), 1);
  pr_in_buf_ = mem.Register("subway.pr_in", n, sizeof(double));
  pr_out_buf_ = mem.Register("subway.pr_out", n, sizeof(double));
  outdeg_buf_ = mem.Register("subway.outdeg", n, sizeof(uint32_t));
  sub_v_buf_ = mem.Register("subway.pr_sub_v", m, sizeof(NodeId));
  sub_offsets_buf_ = mem.Register("subway.pr_sub_off", n + 1, sizeof(EdgeId));
  frontier_buf_ = mem.Register("subway.pr_frontier", n, sizeof(NodeId));
}

OutOfCoreResult SubwayPageRank::Run(uint32_t iterations,
                                    std::vector<double>* ranks_out) {
  const auto& spec = device_->spec();
  const NodeId n = csr_->num_nodes();
  OutOfCoreResult result;

  std::vector<double> pr_in(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> pr_out(n, 0.0);
  std::vector<uint32_t> outdeg(n);
  for (NodeId u = 0; u < n; ++u) outdeg[u] = csr_->OutDegree(u);
  SubwayPrFilter filter(&pr_in, &pr_out, &outdeg, &pr_in_buf_, &pr_out_buf_,
                        &outdeg_buf_);

  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  core::TiledOptions topts;
  topts.block_size = spec.block_size;
  core::ExpandContext ctx(device_, csr_, &sub_v_buf_, &sub_offsets_buf_);
  ctx.set_filter(&filter);

  for (uint32_t iter = 0; iter < iterations; ++iter) {
    // PageRank activates every node: the preload covers the whole graph.
    uint64_t payload =
        csr_->num_edges() * sizeof(NodeId) + (n + 1) * sizeof(EdgeId);
    sim::LinkModel::Transfer t = device_->BulkHostTransfer(payload);
    double transfer_seconds = device_->CyclesToSeconds(t.cycles);
    result.transfer_seconds += transfer_seconds;
    result.bytes_transferred += t.wire_bytes;

    device_->BeginKernel();
    std::vector<NodeId> next;
    uint64_t edges = 0;
    const uint32_t bs = spec.block_size;
    uint64_t blocks = (all.size() + bs - 1) / bs;
    for (uint64_t b = 0; b < blocks; ++b) {
      uint32_t sm = device_->StaticSmForBlock(b);
      size_t beg = b * bs;
      size_t len = std::min<size_t>(bs, all.size() - beg);
      std::span<const NodeId> slice(all.data() + beg, len);
      ctx.ChargeBlockFrontierReads(sm, &frontier_buf_, beg, slice);
      edges += ExpandBlockTiled(ctx, sm, slice, topts, &next);
    }
    sim::KernelResult ck = device_->EndKernel();
    result.compute_seconds += ck.seconds;
    result.stats.seconds += std::max(ck.seconds, transfer_seconds);
    result.stats.iterations += 1;
    result.stats.edges_traversed += edges;
    result.stats.frontier_nodes += n;

    const double base = n == 0 ? 0.0 : 0.15 / n;
    for (NodeId v = 0; v < n; ++v) {
      pr_in[v] = base + pr_out[v];
      pr_out[v] = 0.0;
    }
  }
  if (ranks_out != nullptr) *ranks_out = std::move(pr_in);
  return result;
}

}  // namespace sage::baselines
