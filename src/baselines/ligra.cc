#include "baselines/ligra.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::baselines {

using graph::Csr;
using graph::NodeId;

namespace {
constexpr uint32_t kUnreached = 0xffffffffu;
}  // namespace

LigraEngine::LigraEngine(const Csr& csr, const CpuSpec& spec)
    : csr_(csr), in_csr_(csr.Transpose()), spec_(spec) {}

double LigraEngine::WorkSeconds(uint64_t edges, uint64_t nodes) const {
  double cycles = static_cast<double>(edges) * spec_.cycles_per_edge +
                  static_cast<double>(nodes) * spec_.cycles_per_node;
  double rate = spec_.cores * spec_.efficiency * spec_.ghz * 1e9;
  return cycles / rate + spec_.sync_seconds;
}

core::RunStats LigraEngine::Bfs(NodeId source,
                                std::vector<uint32_t>* dist_out) {
  const NodeId n = csr_.num_nodes();
  std::vector<uint32_t> dist(n, kUnreached);
  dist[source] = 0;
  std::vector<NodeId> frontier{source};
  core::RunStats stats;
  uint32_t level = 0;

  // Direction-optimizing threshold (Beamer): switch to pull when the
  // frontier's outgoing work exceeds a fraction of |E|.
  const uint64_t pull_threshold = csr_.num_edges() / 20 + 1;

  while (!frontier.empty()) {
    ++level;
    uint64_t frontier_out_edges = 0;
    for (NodeId f : frontier) frontier_out_edges += csr_.OutDegree(f);
    std::vector<NodeId> next;
    uint64_t scanned = 0;

    if (frontier_out_edges > pull_threshold) {
      // Pull: every unreached node scans its in-edges, early-exiting on the
      // first parent in the frontier.
      for (NodeId v = 0; v < n; ++v) {
        if (dist[v] != kUnreached) continue;
        for (NodeId u : in_csr_.Neighbors(v)) {
          ++scanned;
          if (dist[u] == level - 1) {
            dist[v] = level;
            next.push_back(v);
            break;
          }
        }
      }
    } else {
      for (NodeId f : frontier) {
        for (NodeId v : csr_.Neighbors(f)) {
          ++scanned;
          if (dist[v] == kUnreached) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
    }
    stats.iterations += 1;
    stats.edges_traversed += scanned;
    stats.frontier_nodes += frontier.size();
    stats.seconds += WorkSeconds(scanned, frontier.size());
    frontier.swap(next);
  }
  if (dist_out != nullptr) *dist_out = std::move(dist);
  return stats;
}

core::RunStats LigraEngine::PageRank(uint32_t iterations,
                                     std::vector<double>* pr_out) {
  constexpr double kDamping = 0.85;
  const NodeId n = csr_.num_nodes();
  std::vector<double> pr(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> contrib(n, 0.0);
  core::RunStats stats;
  for (uint32_t it = 0; it < iterations; ++it) {
    for (NodeId u = 0; u < n; ++u) {
      uint32_t deg = csr_.OutDegree(u);
      contrib[u] = deg == 0 ? 0.0 : pr[u] * kDamping / deg;
    }
    const double base = (1.0 - kDamping) / n;
    // Pull along in-edges: conflict-free on CPUs.
    for (NodeId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (NodeId u : in_csr_.Neighbors(v)) sum += contrib[u];
      pr[v] = base + sum;
    }
    stats.iterations += 1;
    stats.edges_traversed += csr_.num_edges();
    stats.frontier_nodes += n;
    stats.seconds += WorkSeconds(csr_.num_edges(), 2ull * n);
  }
  if (pr_out != nullptr) *pr_out = std::move(pr);
  return stats;
}

core::RunStats LigraEngine::Bc(NodeId source, std::vector<double>* delta_out) {
  const NodeId n = csr_.num_nodes();
  std::vector<uint32_t> dist;
  core::RunStats stats = Bfs(source, &dist);

  std::vector<double> sigma(n, 0.0);
  sigma[source] = 1.0;
  uint32_t max_level = 0;
  for (uint32_t d : dist) {
    if (d != kUnreached) max_level = std::max(max_level, d);
  }
  // Forward sigma accumulation level by level (one sweep per level).
  std::vector<std::vector<NodeId>> by_level(max_level + 1);
  for (NodeId v = 0; v < n; ++v) {
    if (dist[v] != kUnreached) by_level[dist[v]].push_back(v);
  }
  for (uint32_t l = 0; l < max_level; ++l) {
    uint64_t scanned = 0;
    for (NodeId u : by_level[l]) {
      for (NodeId v : csr_.Neighbors(u)) {
        ++scanned;
        if (dist[v] == l + 1) sigma[v] += sigma[u];
      }
    }
    stats.edges_traversed += scanned;
    stats.seconds += WorkSeconds(scanned, by_level[l].size());
    stats.iterations += 1;
  }
  // Backward dependency accumulation.
  std::vector<double> delta(n, 0.0);
  for (int64_t l = static_cast<int64_t>(max_level) - 1; l >= 0; --l) {
    uint64_t scanned = 0;
    for (NodeId u : by_level[l]) {
      for (NodeId v : csr_.Neighbors(u)) {
        ++scanned;
        if (dist[v] == static_cast<uint32_t>(l) + 1 && sigma[v] > 0.0) {
          delta[u] += sigma[u] / sigma[v] * (delta[v] + 1.0);
        }
      }
    }
    stats.edges_traversed += scanned;
    stats.seconds += WorkSeconds(scanned, by_level[l].size());
    stats.iterations += 1;
  }
  if (delta_out != nullptr) *delta_out = std::move(delta);
  return stats;
}

}  // namespace sage::baselines
