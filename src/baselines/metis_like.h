#ifndef SAGE_BASELINES_METIS_LIKE_H_
#define SAGE_BASELINES_METIS_LIKE_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace sage::baselines {

/// A graph partition: part[v] in [0, num_parts).
struct PartitionResult {
  std::vector<uint32_t> part;
  uint32_t num_parts = 0;
  uint64_t edge_cut = 0;      ///< directed edges crossing parts
  double seconds = 0.0;       ///< preprocessing wall-clock cost
  double balance = 0.0;       ///< max part size / ideal part size
};

/// Multilevel partitioner in the metis [22] algorithm family: heavy-edge
/// matching coarsening, greedy region-growing bisection on the coarsest
/// graph, and boundary gain refinement during uncoarsening; k-way by
/// recursive bisection. Stands in for metis pre-partitioning in the
/// multi-GPU comparison (Figure 9); its cost is reported separately and —
/// like the paper — excluded from traversal speed.
PartitionResult MetisLikePartition(const graph::Csr& csr, uint32_t num_parts,
                                   uint64_t seed = 1);

/// Preprocessing-free baseline placement: part[v] = v mod num_parts.
PartitionResult HashPartition(const graph::Csr& csr, uint32_t num_parts);

/// Recomputes the directed edge cut of a partition (also used by tests).
uint64_t ComputeEdgeCut(const graph::Csr& csr,
                        const std::vector<uint32_t>& part);

}  // namespace sage::baselines

#endif  // SAGE_BASELINES_METIS_LIKE_H_
