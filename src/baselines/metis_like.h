#ifndef SAGE_BASELINES_METIS_LIKE_H_
#define SAGE_BASELINES_METIS_LIKE_H_

// Forwarding shim: the partitioners moved to graph/partitioner.h so the
// sharded execution path (core::ShardedEngine) can depend on them without
// pulling in the baselines library. Prefer including graph/partitioner.h
// directly; this header only keeps the old baselines:: spellings alive.

#include <cstdint>
#include <vector>

#include "graph/partitioner.h"

namespace sage::baselines {

using PartitionResult = graph::PartitionResult;

inline PartitionResult MetisLikePartition(const graph::Csr& csr,
                                          uint32_t num_parts,
                                          uint64_t seed = 1) {
  return graph::MetisLikePartition(csr, num_parts, seed);
}

inline PartitionResult HashPartition(const graph::Csr& csr,
                                     uint32_t num_parts) {
  return graph::HashPartition(csr, num_parts);
}

inline uint64_t ComputeEdgeCut(const graph::Csr& csr,
                               const std::vector<uint32_t>& part) {
  return graph::ComputeEdgeCut(csr, part);
}

}  // namespace sage::baselines

#endif  // SAGE_BASELINES_METIS_LIKE_H_
