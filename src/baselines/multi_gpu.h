#ifndef SAGE_BASELINES_MULTI_GPU_H_
#define SAGE_BASELINES_MULTI_GPU_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "sim/device_spec.h"
#include "util/status.h"

namespace sage::baselines {

/// Multi-GPU engine families compared in Figure 9. All execute the same
/// owner-computes BFS; they differ in per-device scheduling and in how
/// frontier-exchange communication overlaps computation.
enum class MultiGpuStrategy {
  /// SAGE per device (tiled partitioning + resident tile stealing), BSP
  /// frontier exchange. Preprocessing-free.
  kSage,
  /// Gunrock-like: per-warp dynamic grouping, BSP exchange.
  kGunrockLike,
  /// Groute-like: per-warp grouping with asynchronous communication that
  /// overlaps the next compute phase.
  kGrouteLike,
};

/// How nodes are placed onto devices.
enum class PartitionScheme {
  kHash,       ///< v mod num_gpus; no preprocessing
  kMetisLike,  ///< multilevel partitioner (cost reported separately)
};

struct MultiGpuOptions {
  uint32_t num_gpus = 2;
  MultiGpuStrategy strategy = MultiGpuStrategy::kSage;
  PartitionScheme partition = PartitionScheme::kHash;
  sim::DeviceSpec spec;
  uint64_t partition_seed = 1;
};

struct MultiGpuResult {
  core::RunStats stats;          ///< end-to-end: max-per-iteration + comm
  double comm_seconds = 0.0;
  double partition_seconds = 0.0;  ///< excluded from stats (as in Fig. 9)
  uint64_t message_bytes = 0;
  uint64_t edge_cut = 0;
  std::vector<uint32_t> dist;    ///< final BFS distances by node id
};

/// Owner-computes BFS across `num_gpus` simulated devices: each device
/// expands the frontier nodes it owns; discoveries of foreign nodes are
/// shipped to their owner over the peer link at every level.
util::StatusOr<MultiGpuResult> MultiGpuBfs(const graph::Csr& csr,
                                           graph::NodeId source,
                                           const MultiGpuOptions& options);

struct MultiGpuPrResult {
  core::RunStats stats;
  double comm_seconds = 0.0;
  double partition_seconds = 0.0;
  uint64_t message_bytes = 0;
  std::vector<double> ranks;  ///< final PageRank by node id
};

/// Owner-computes PageRank across devices (an extension beyond the paper's
/// BFS-only multi-GPU evaluation): every iteration each device pushes its
/// owned nodes' contributions; increments destined for foreign nodes
/// travel as (node, increment) messages over the peer link.
util::StatusOr<MultiGpuPrResult> MultiGpuPageRank(
    const graph::Csr& csr, uint32_t iterations,
    const MultiGpuOptions& options);

}  // namespace sage::baselines

#endif  // SAGE_BASELINES_MULTI_GPU_H_
