#ifndef SAGE_BASELINES_LIGRA_H_
#define SAGE_BASELINES_LIGRA_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace sage::baselines {

/// Cost parameters of the modeled NUMA CPU host (the paper's testbed: 2×
/// Xeon Gold 6140, 36 cores at 2.3 GHz). Ligra executes *functionally* on
/// the host; its reported time comes from this work-based model, mirroring
/// how the GPU engines are costed by the simulator.
struct CpuSpec {
  uint32_t cores = 36;
  double ghz = 2.3;
  /// Effective cycles per scanned edge. Graph traversal on CPUs is
  /// memory-latency-bound: every neighbor probe is a likely LLC miss, so
  /// the effective cost is tens of cycles per edge (matching the ~1-2
  /// GTEPS that Ligra-class systems report on dual-socket Xeons).
  double cycles_per_edge = 20.0;
  double cycles_per_node = 6.0;
  /// Parallel efficiency of the OpenMP-style runtime.
  double efficiency = 0.5;
  /// Per-iteration fork/join overhead in seconds.
  double sync_seconds = 8e-6;
};

/// Ligra (Shun & Blelloch): the CPU direction-optimizing frontier engine.
/// Push iterations sweep the out-edges of the frontier; once the frontier
/// is dense the engine switches to pull and scans the in-edges of
/// unvisited nodes with early exit.
class LigraEngine {
 public:
  explicit LigraEngine(const graph::Csr& csr, const CpuSpec& spec = CpuSpec());

  /// Direction-optimizing BFS; fills dist (by node id) if non-null.
  core::RunStats Bfs(graph::NodeId source,
                     std::vector<uint32_t>* dist_out = nullptr);

  /// Pull-style PageRank over `iterations` rounds.
  core::RunStats PageRank(uint32_t iterations,
                          std::vector<double>* pr_out = nullptr);

  /// Brandes BC from one source (forward DO-BFS + backward sweep).
  core::RunStats Bc(graph::NodeId source,
                    std::vector<double>* delta_out = nullptr);

 private:
  double WorkSeconds(uint64_t edges, uint64_t nodes) const;

  graph::Csr csr_;
  graph::Csr in_csr_;
  CpuSpec spec_;
};

}  // namespace sage::baselines

#endif  // SAGE_BASELINES_LIGRA_H_
