#ifndef SAGE_BASELINES_SUBWAY_H_
#define SAGE_BASELINES_SUBWAY_H_

#include <cstdint>
#include <vector>

#include "core/expand.h"
#include "core/filter.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "sim/gpu_device.h"

namespace sage::baselines {

/// Result of an out-of-core run (Figure 8's scenario).
struct OutOfCoreResult {
  core::RunStats stats;  ///< end-to-end modeled time and work
  double transfer_seconds = 0.0;
  double extraction_seconds = 0.0;
  double compute_seconds = 0.0;
  uint64_t bytes_transferred = 0;
};

/// Subway (Sabet et al., EuroSys'20) for BFS: the adjacency lives in host
/// memory; every iteration the driver identifies the active subgraph (the
/// frontier's adjacency), preloads it over PCIe with a planned bulk DMA
/// that overlaps the compute kernel, then traverses the compacted subgraph
/// entirely device-locally.
class SubwayBfs {
 public:
  /// The CSR stays host-side; `device` models the GPU and its PCIe link.
  SubwayBfs(sim::GpuDevice* device, const graph::Csr* csr);

  /// Full BFS from `source`; distances (by node id) via dist_out.
  OutOfCoreResult Run(graph::NodeId source,
                      std::vector<uint32_t>* dist_out = nullptr);

 private:
  sim::GpuDevice* device_;
  const graph::Csr* csr_;
  sim::Buffer dist_buf_;
  sim::Buffer sub_v_buf_;
  sim::Buffer sub_offsets_buf_;
  sim::Buffer map_buf_;
  sim::Buffer frontier_buf_;
};

/// Subway for PageRank: the global traversal touches every adjacency list
/// each iteration, so the whole (compacted) edge set is preloaded per
/// round — bulk DMA efficiency, but no sparsity to exploit (contrast with
/// SAGE's on-demand tile reads, which pay headers but skip nothing).
class SubwayPageRank {
 public:
  SubwayPageRank(sim::GpuDevice* device, const graph::Csr* csr);

  /// Runs `iterations` rounds; final ranks (by node id) via ranks_out.
  OutOfCoreResult Run(uint32_t iterations,
                      std::vector<double>* ranks_out = nullptr);

 private:
  sim::GpuDevice* device_;
  const graph::Csr* csr_;
  sim::Buffer pr_in_buf_;
  sim::Buffer pr_out_buf_;
  sim::Buffer outdeg_buf_;
  sim::Buffer sub_v_buf_;
  sim::Buffer sub_offsets_buf_;
  sim::Buffer frontier_buf_;
};

}  // namespace sage::baselines

#endif  // SAGE_BASELINES_SUBWAY_H_
