#include "baselines/multi_gpu.h"

#include <algorithm>
#include <memory>

#include "apps/bfs.h"
#include "baselines/metis_like.h"
#include "core/engine.h"
#include "sim/gpu_device.h"
#include "sim/link.h"
#include "util/logging.h"

namespace sage::baselines {

using graph::Csr;
using graph::NodeId;

namespace {

// Induced per-device sub-CSR: full node-id space, but only the adjacency of
// nodes owned by `gpu` (targets keep global ids).
Csr OwnedSubgraph(const Csr& csr, const std::vector<uint32_t>& part,
                  uint32_t gpu) {
  graph::Coo coo;
  coo.num_nodes = csr.num_nodes();
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    if (part[u] != gpu) continue;
    for (NodeId v : csr.Neighbors(u)) {
      coo.u.push_back(u);
      coo.v.push_back(v);
    }
  }
  return Csr::FromCoo(coo);
}

core::EngineOptions EngineOptionsFor(MultiGpuStrategy strategy) {
  core::EngineOptions opts;
  switch (strategy) {
    case MultiGpuStrategy::kSage:
      break;  // full SAGE defaults
    case MultiGpuStrategy::kGunrockLike:
    case MultiGpuStrategy::kGrouteLike:
      opts.strategy = core::ExpandStrategy::kWarpCentric;
      opts.tiled_partitioning = false;
      opts.resident_tiles = false;
      break;
  }
  return opts;
}

}  // namespace

util::StatusOr<MultiGpuResult> MultiGpuBfs(const Csr& csr, NodeId source,
                                           const MultiGpuOptions& options) {
  if (options.num_gpus == 0) {
    return util::Status::InvalidArgument("num_gpus must be positive");
  }
  if (source >= csr.num_nodes()) {
    return util::Status::InvalidArgument("source out of range");
  }
  const uint32_t g_count = options.num_gpus;

  MultiGpuResult result;
  PartitionResult partition =
      options.partition == PartitionScheme::kMetisLike
          ? MetisLikePartition(csr, g_count, options.partition_seed)
          : HashPartition(csr, g_count);
  result.partition_seconds = partition.seconds;
  result.edge_cut = partition.edge_cut;

  // Per-device state.
  std::vector<std::unique_ptr<sim::GpuDevice>> devices;
  std::vector<std::unique_ptr<core::Engine>> engines;
  std::vector<std::unique_ptr<apps::BfsProgram>> programs;
  std::vector<std::vector<NodeId>> frontiers(g_count);
  for (uint32_t g = 0; g < g_count; ++g) {
    devices.push_back(std::make_unique<sim::GpuDevice>(options.spec));
    engines.push_back(std::make_unique<core::Engine>(
        devices.back().get(), OwnedSubgraph(csr, partition.part, g),
        EngineOptionsFor(options.strategy)));
    programs.push_back(std::make_unique<apps::BfsProgram>());
    SAGE_RETURN_IF_ERROR(engines[g]->Bind(programs[g].get()));
  }
  programs[partition.part[source]]->SetSource(source);
  frontiers[partition.part[source]].push_back(source);

  // One peer link model shared by all pairs (the paper's testbed has a
  // single inter-GPU path).
  sim::LinkModel peer(options.spec.PeerBytesPerCycle(),
                      options.spec.peer_latency_cycles,
                      options.spec.pcie_frame_header_bytes,
                      options.spec.pcie_max_payload_bytes);

  uint32_t level = 0;
  double prev_compute = 0.0;
  while (true) {
    bool any = false;
    for (const auto& f : frontiers) any |= !f.empty();
    if (!any) break;
    ++level;

    // Compute phase: every device expands its owned frontier.
    double compute_seconds = 0.0;
    std::vector<std::vector<NodeId>> nexts(g_count);
    for (uint32_t g = 0; g < g_count; ++g) {
      if (frontiers[g].empty()) continue;
      auto stats_or =
          engines[g]->RunOneIteration(frontiers[g], &nexts[g]);
      SAGE_RETURN_IF_ERROR(stats_or.status());
      compute_seconds = std::max(compute_seconds, stats_or->seconds);
      result.stats.edges_traversed += stats_or->edges_traversed;
      result.stats.frontier_nodes += frontiers[g].size();
    }

    // Exchange phase: ship foreign discoveries to their owners.
    uint64_t exchanged = 0;
    std::vector<std::vector<NodeId>> incoming(g_count);
    for (uint32_t g = 0; g < g_count; ++g) {
      std::vector<NodeId> kept;
      for (NodeId v : nexts[g]) {
        uint32_t owner = partition.part[v];
        if (owner == g) {
          kept.push_back(v);
        } else {
          incoming[owner].push_back(v);
          ++exchanged;
        }
      }
      frontiers[g] = std::move(kept);
    }
    for (uint32_t g = 0; g < g_count; ++g) {
      for (NodeId v : incoming[g]) {
        if (programs[g]->DistanceOf(v) == apps::BfsProgram::kUnreached) {
          programs[g]->SetDistance(v, level);
          frontiers[g].push_back(v);
        }
      }
    }

    double comm_seconds = 0.0;
    if (exchanged > 0) {
      sim::LinkModel::Transfer t =
          peer.BulkTransfer(exchanged * sizeof(NodeId));
      comm_seconds = t.cycles / (options.spec.clock_ghz * 1e9);
      result.message_bytes += t.wire_bytes;
    }
    result.comm_seconds += comm_seconds;

    // BSP: iteration = compute + synchronized exchange. Groute overlaps
    // communication with the next compute wave.
    double iter_seconds;
    if (options.strategy == MultiGpuStrategy::kGrouteLike) {
      iter_seconds =
          compute_seconds + std::max(0.0, comm_seconds - 0.5 * prev_compute);
    } else {
      iter_seconds = compute_seconds + comm_seconds;
    }
    prev_compute = compute_seconds;
    result.stats.seconds += iter_seconds;
    result.stats.iterations += 1;
  }

  // Merge owners' distances.
  result.dist.assign(csr.num_nodes(), apps::BfsProgram::kUnreached);
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    result.dist[v] = programs[partition.part[v]]->DistanceOf(v);
  }
  return result;
}

namespace {

// Push-PageRank filter for one device of an owner-computes cluster: local
// targets are applied directly; foreign targets become messages.
class PrPartProgram : public core::FilterProgram {
 public:
  PrPartProgram(uint32_t gpu, const std::vector<uint32_t>* part,
                const std::vector<uint32_t>* outdeg,
                std::vector<double>* pr_in, std::vector<double>* pr_out,
                std::vector<std::pair<NodeId, double>>* outbox)
      : gpu_(gpu),
        part_(part),
        outdeg_(outdeg),
        pr_in_(pr_in),
        pr_out_(pr_out),
        outbox_(outbox) {}

  void Bind(core::Engine* engine) override {
    if (engine_ == engine) return;
    engine_ = engine;
    pr_in_buf_ = engine->RegisterAttribute("mgpr.in", sizeof(double));
    pr_out_buf_ = engine->RegisterAttribute("mgpr.out", sizeof(double));
    outdeg_buf_ = engine->RegisterAttribute("mgpr.outdeg", sizeof(uint32_t));
    footprint_.frontier_reads = {&pr_in_buf_, &outdeg_buf_};
    footprint_.neighbor_writes = {&pr_out_buf_};
    footprint_.atomic_neighbor = true;
  }

  bool Filter(NodeId frontier, NodeId neighbor) override {
    double inc = (*pr_in_)[frontier] * 0.85 /
                 static_cast<double>((*outdeg_)[frontier]);
    if ((*part_)[neighbor] == gpu_) {
      (*pr_out_)[neighbor] += inc;
    } else {
      outbox_->emplace_back(neighbor, inc);
    }
    return false;
  }

  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "multi-gpu-pagerank"; }

 private:
  uint32_t gpu_;
  const std::vector<uint32_t>* part_;
  const std::vector<uint32_t>* outdeg_;
  std::vector<double>* pr_in_;
  std::vector<double>* pr_out_;
  std::vector<std::pair<NodeId, double>>* outbox_;
  core::Engine* engine_ = nullptr;
  sim::Buffer pr_in_buf_;
  sim::Buffer pr_out_buf_;
  sim::Buffer outdeg_buf_;
  core::Footprint footprint_;
};

}  // namespace

util::StatusOr<MultiGpuPrResult> MultiGpuPageRank(
    const Csr& csr, uint32_t iterations, const MultiGpuOptions& options) {
  if (options.num_gpus == 0) {
    return util::Status::InvalidArgument("num_gpus must be positive");
  }
  const uint32_t g_count = options.num_gpus;
  const NodeId n = csr.num_nodes();

  MultiGpuPrResult result;
  PartitionResult partition =
      options.partition == PartitionScheme::kMetisLike
          ? MetisLikePartition(csr, g_count, options.partition_seed)
          : HashPartition(csr, g_count);
  result.partition_seconds = partition.seconds;

  std::vector<uint32_t> outdeg(n);
  for (NodeId u = 0; u < n; ++u) outdeg[u] = csr.OutDegree(u);

  // Full-size rank arrays; entries are authoritative only at the owner.
  std::vector<double> pr_in(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> pr_out(n, 0.0);

  std::vector<std::unique_ptr<sim::GpuDevice>> devices;
  std::vector<std::unique_ptr<core::Engine>> engines;
  std::vector<std::unique_ptr<PrPartProgram>> programs;
  std::vector<std::vector<std::pair<NodeId, double>>> outboxes(g_count);
  std::vector<std::vector<NodeId>> owned(g_count);
  for (NodeId v = 0; v < n; ++v) owned[partition.part[v]].push_back(v);
  for (uint32_t g = 0; g < g_count; ++g) {
    devices.push_back(std::make_unique<sim::GpuDevice>(options.spec));
    engines.push_back(std::make_unique<core::Engine>(
        devices.back().get(), OwnedSubgraph(csr, partition.part, g),
        EngineOptionsFor(options.strategy)));
    programs.push_back(std::make_unique<PrPartProgram>(
        g, &partition.part, &outdeg, &pr_in, &pr_out, &outboxes[g]));
    SAGE_RETURN_IF_ERROR(engines[g]->Bind(programs[g].get()));
  }

  sim::LinkModel peer(options.spec.PeerBytesPerCycle(),
                      options.spec.peer_latency_cycles,
                      options.spec.pcie_frame_header_bytes,
                      options.spec.pcie_max_payload_bytes);

  double prev_compute = 0.0;
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    double compute_seconds = 0.0;
    for (uint32_t g = 0; g < g_count; ++g) {
      if (owned[g].empty()) continue;
      auto stats = engines[g]->RunOneIteration(owned[g], nullptr);
      SAGE_RETURN_IF_ERROR(stats.status());
      compute_seconds = std::max(compute_seconds, stats->seconds);
      result.stats.edges_traversed += stats->edges_traversed;
      result.stats.frontier_nodes += owned[g].size();
    }
    // Exchange: deliver foreign increments to their owners.
    uint64_t messages = 0;
    for (uint32_t g = 0; g < g_count; ++g) {
      messages += outboxes[g].size();
      for (const auto& [v, inc] : outboxes[g]) pr_out[v] += inc;
      outboxes[g].clear();
    }
    double comm_seconds = 0.0;
    if (messages > 0) {
      sim::LinkModel::Transfer t =
          peer.BulkTransfer(messages * (sizeof(NodeId) + sizeof(double)));
      comm_seconds = t.cycles / (options.spec.clock_ghz * 1e9);
      result.message_bytes += t.wire_bytes;
    }
    result.comm_seconds += comm_seconds;
    // Fold the iteration.
    const double base = n == 0 ? 0.0 : (1.0 - 0.85) / n;
    for (NodeId v = 0; v < n; ++v) {
      pr_in[v] = base + pr_out[v];
      pr_out[v] = 0.0;
    }
    double iter_seconds =
        options.strategy == MultiGpuStrategy::kGrouteLike
            ? compute_seconds +
                  std::max(0.0, comm_seconds - 0.5 * prev_compute)
            : compute_seconds + comm_seconds;
    prev_compute = compute_seconds;
    result.stats.seconds += iter_seconds;
    result.stats.iterations += 1;
  }
  result.ranks = std::move(pr_in);
  return result;
}

}  // namespace sage::baselines
