#ifndef SAGE_GRAPH_DYNAMIC_H_
#define SAGE_GRAPH_DYNAMIC_H_

#include <utility>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace sage::graph {

/// A batch of graph updates. The paper argues (Section 7.2) that SAGE works
/// on dynamic graphs "as long as the CSR format is used": apply the batch,
/// keep traversing, and Sampling-based Reordering re-optimizes the new CSR
/// on the fly. This module provides the CSR merge.
struct EdgeUpdateBatch {
  std::vector<std::pair<NodeId, NodeId>> insertions;
  std::vector<std::pair<NodeId, NodeId>> deletions;
};

/// Merges a batch into a CSR, producing the updated CSR. Duplicate
/// insertions of existing edges are ignored; deletions of missing edges are
/// ignored. Runs in O(|V| + |E| + |batch| log |batch|).
/// Returns InvalidArgument if an endpoint is out of range.
util::StatusOr<Csr> ApplyUpdates(const Csr& csr, const EdgeUpdateBatch& batch);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_DYNAMIC_H_
