#include "graph/coo.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::graph {
namespace {

// Stable counting sort of (u, v) pairs by `keys`, permuting both arrays.
void CountingSortBy(std::vector<NodeId>& keys, std::vector<NodeId>& other,
                    NodeId key_bound) {
  std::vector<uint64_t> count(static_cast<size_t>(key_bound) + 1, 0);
  for (NodeId k : keys) {
    SAGE_DCHECK(k < key_bound);
    ++count[k + 1];
  }
  for (size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::vector<NodeId> keys_out(keys.size());
  std::vector<NodeId> other_out(other.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t pos = count[keys[i]]++;
    keys_out[pos] = keys[i];
    other_out[pos] = other[i];
  }
  keys.swap(keys_out);
  other.swap(other_out);
}

}  // namespace

void SortCoo(Coo& coo) {
  SAGE_CHECK_EQ(coo.u.size(), coo.v.size());
  if (coo.num_nodes == 0) {
    SAGE_CHECK(coo.u.empty());
    return;
  }
  // LSD order: sort by secondary key v first, then stably by primary key u.
  CountingSortBy(coo.v, coo.u, coo.num_nodes);
  CountingSortBy(coo.u, coo.v, coo.num_nodes);
}

void DedupSortedCoo(Coo& coo) {
  SAGE_DCHECK(IsSorted(coo));
  size_t out = 0;
  for (size_t i = 0; i < coo.u.size(); ++i) {
    if (out > 0 && coo.u[i] == coo.u[out - 1] && coo.v[i] == coo.v[out - 1]) {
      continue;
    }
    coo.u[out] = coo.u[i];
    coo.v[out] = coo.v[i];
    ++out;
  }
  coo.u.resize(out);
  coo.v.resize(out);
}

void RemoveSelfLoops(Coo& coo) {
  size_t out = 0;
  for (size_t i = 0; i < coo.u.size(); ++i) {
    if (coo.u[i] == coo.v[i]) continue;
    coo.u[out] = coo.u[i];
    coo.v[out] = coo.v[i];
    ++out;
  }
  coo.u.resize(out);
  coo.v.resize(out);
}

void Symmetrize(Coo& coo) {
  size_t n = coo.u.size();
  coo.u.reserve(2 * n);
  coo.v.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    coo.u.push_back(coo.v[i]);
    coo.v.push_back(coo.u[i]);
  }
}

bool IsSorted(const Coo& coo) {
  for (size_t i = 1; i < coo.u.size(); ++i) {
    if (coo.u[i] < coo.u[i - 1]) return false;
    if (coo.u[i] == coo.u[i - 1] && coo.v[i] < coo.v[i - 1]) return false;
  }
  return true;
}

}  // namespace sage::graph
