#ifndef SAGE_GRAPH_GENERATORS_H_
#define SAGE_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/csr.h"
#include "graph/types.h"

namespace sage::graph {

/// Synthetic graph generators. These stand in for the paper's real datasets
/// (Table 1), which are not redistributable in this environment; each
/// generator is parameterised to reproduce the *category signature* the
/// paper's analysis depends on (degree-distribution shape, locality,
/// hierarchy). All generators are deterministic in `seed`.

/// Erdős–Rényi style: m directed edges with uniformly random endpoints
/// (self loops and duplicates removed, so the result has ≤ m edges).
Csr GenerateUniform(NodeId num_nodes, uint64_t num_edges, uint64_t seed);

/// RMAT / Kronecker generator (Chakrabarti et al.). `scale` gives
/// |V| = 2^scale; skew grows with `a` (a=b=c=d=0.25 is uniform; a=0.57 is
/// Graph500-like; a>=0.65 produces twitter-grade super nodes).
Csr GenerateRmat(uint32_t scale, uint64_t num_edges, double a, double b,
                 double c, uint64_t seed);

/// Community graph with near-uniform degrees: nodes live in contiguous
/// communities; each node draws `degree` neighbors, a `locality` fraction
/// from its own community and the rest uniformly. With high degree and high
/// locality this mimics the `brain` dataset: dense, regular, hierarchical.
Csr GenerateCommunity(NodeId num_nodes, uint32_t degree, NodeId community_size,
                      double locality, uint64_t seed);

/// Web-crawl-like graph via the copying model: node t links to a random
/// earlier "template" node and copies each of the template's out-links with
/// probability `copy_prob`, otherwise links uniformly at random among
/// earlier nodes. Produces power-law in-degrees with strong id-locality and
/// the shallow-hierarchy feel of crawled web graphs (uk-2002).
Csr GenerateWebCopy(NodeId num_nodes, uint32_t out_degree, double copy_prob,
                    uint64_t seed);

/// 2D grid with 4-neighborhood; handy regular topology for tests.
Csr GenerateGrid2d(NodeId rows, NodeId cols);

/// Directed path 0 -> 1 -> ... -> n-1.
Csr GeneratePath(NodeId num_nodes);

/// Star: hub 0 points to all others (the worst-case skew microbenchmark).
Csr GenerateStar(NodeId num_nodes);

/// Complete directed graph (no self loops); only for tiny tests.
Csr GenerateComplete(NodeId num_nodes);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_GENERATORS_H_
