#ifndef SAGE_GRAPH_BUILDER_H_
#define SAGE_GRAPH_BUILDER_H_

#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace sage::graph {

/// Options controlling edge-list normalization before CSR construction.
struct BuildOptions {
  bool remove_self_loops = true;
  bool dedup = true;
  bool symmetrize = false;
};

/// Incrementally collects edges and produces a normalized CSR. This is the
/// entry point applications use; SAGE itself needs nothing beyond the
/// resulting CSR (no preprocessing stage).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Adds a directed edge; ids must be < num_nodes (checked at Build).
  void AddEdge(NodeId u, NodeId v) {
    coo_.u.push_back(u);
    coo_.v.push_back(v);
  }

  void AddEdges(const std::vector<std::pair<NodeId, NodeId>>& edges) {
    for (auto [u, v] : edges) AddEdge(u, v);
  }

  uint64_t num_pending_edges() const { return coo_.num_edges(); }

  /// Normalizes (sort / dedup / drop loops / optional symmetrize) and builds
  /// the CSR. Returns InvalidArgument if any endpoint is out of range.
  util::StatusOr<Csr> Build(const BuildOptions& options = BuildOptions());

 private:
  NodeId num_nodes_;
  Coo coo_;
};

}  // namespace sage::graph

#endif  // SAGE_GRAPH_BUILDER_H_
