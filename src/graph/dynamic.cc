#include "graph/dynamic.h"

#include <algorithm>
#include <string>

namespace sage::graph {

util::StatusOr<Csr> ApplyUpdates(const Csr& csr,
                                 const EdgeUpdateBatch& batch) {
  const NodeId n = csr.num_nodes();
  for (const auto& [u, v] : batch.insertions) {
    if (u >= n || v >= n) {
      return util::Status::InvalidArgument(
          "insertion endpoint out of range: (" + std::to_string(u) + "," +
          std::to_string(v) + ")");
    }
  }
  for (const auto& [u, v] : batch.deletions) {
    if (u >= n || v >= n) {
      return util::Status::InvalidArgument(
          "deletion endpoint out of range: (" + std::to_string(u) + "," +
          std::to_string(v) + ")");
    }
  }

  auto ins = batch.insertions;
  auto del = batch.deletions;
  std::sort(ins.begin(), ins.end());
  ins.erase(std::unique(ins.begin(), ins.end()), ins.end());
  std::sort(del.begin(), del.end());
  del.erase(std::unique(del.begin(), del.end()), del.end());

  Coo out;
  out.num_nodes = n;
  out.u.reserve(csr.num_edges() + ins.size());
  out.v.reserve(csr.num_edges() + ins.size());

  size_t ins_pos = 0;
  size_t del_pos = 0;
  auto emit = [&out](NodeId u, NodeId v) {
    out.u.push_back(u);
    out.v.push_back(v);
  };
  // Merge the (sorted) existing adjacency with the sorted batches.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : csr.Neighbors(u)) {
      std::pair<NodeId, NodeId> edge{u, v};
      // Flush insertions that come before this edge.
      while (ins_pos < ins.size() && ins[ins_pos] < edge) {
        emit(ins[ins_pos].first, ins[ins_pos].second);
        ++ins_pos;
      }
      if (ins_pos < ins.size() && ins[ins_pos] == edge) ++ins_pos;
      while (del_pos < del.size() && del[del_pos] < edge) ++del_pos;
      if (del_pos < del.size() && del[del_pos] == edge) {
        ++del_pos;
        continue;  // deleted
      }
      emit(u, v);
    }
  }
  while (ins_pos < ins.size()) {
    emit(ins[ins_pos].first, ins[ins_pos].second);
    ++ins_pos;
  }
  return Csr::FromCoo(out);
}

}  // namespace sage::graph
