#ifndef SAGE_GRAPH_TYPES_H_
#define SAGE_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace sage::graph {

/// Node identifier. 32 bits covers every dataset in the paper (friendster is
/// 65.6M nodes) and matches the 4-byte labels the paper's memory-access
/// amplification analysis assumes (Section 3.2).
using NodeId = uint32_t;

/// Edge index into a CSR adjacency array; 64 bits because edge counts exceed
/// 2^32 (twitter: 1.46B, friendster: 1.81B).
using EdgeId = uint64_t;

/// Sentinel for "no node" (e.g., unreached BFS parents).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace sage::graph

#endif  // SAGE_GRAPH_TYPES_H_
