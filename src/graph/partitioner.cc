#include "graph/partitioner.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>
#include <utility>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace sage::graph {

namespace {

// Weighted undirected graph used across coarsening levels.
struct Level {
  // adj[v] = (neighbor, edge weight); deduped, no self loops.
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> adj;
  std::vector<uint32_t> node_weight;
  std::vector<NodeId> coarse_of_fine;  // map from the finer level

  NodeId size() const { return static_cast<NodeId>(adj.size()); }
};

Level BuildBaseLevel(const Csr& csr) {
  Level level;
  const NodeId n = csr.num_nodes();
  level.adj.resize(n);
  level.node_weight.assign(n, 1);
  // Symmetrize with unit weights; merge duplicates.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : csr.Neighbors(u)) {
      if (u == v) continue;
      level.adj[u].emplace_back(v, 1);
      level.adj[v].emplace_back(u, 1);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    auto& list = level.adj[u];
    std::sort(list.begin(), list.end());
    std::vector<std::pair<NodeId, uint32_t>> merged;
    for (const auto& [v, w] : list) {
      if (!merged.empty() && merged.back().first == v) {
        merged.back().second += w;
      } else {
        merged.emplace_back(v, w);
      }
    }
    list.swap(merged);
  }
  return level;
}

// Heavy-edge matching: returns the coarse graph.
Level Coarsen(const Level& fine, util::Rng& rng) {
  const NodeId n = fine.size();
  std::vector<NodeId> match(n, kInvalidNode);
  std::vector<NodeId> visit(n);
  std::iota(visit.begin(), visit.end(), 0);
  rng.Shuffle(visit);
  for (NodeId u : visit) {
    if (match[u] != kInvalidNode) continue;
    NodeId best = kInvalidNode;
    uint32_t best_w = 0;
    for (const auto& [v, w] : fine.adj[u]) {
      if (match[v] != kInvalidNode) continue;
      if (w > best_w) {
        best_w = w;
        best = v;
      }
    }
    if (best == kInvalidNode) {
      match[u] = u;  // unmatched: singleton
    } else {
      match[u] = best;
      match[best] = u;
    }
  }
  // Assign coarse ids.
  Level coarse;
  coarse.coarse_of_fine.assign(n, kInvalidNode);
  NodeId next_id = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (coarse.coarse_of_fine[u] != kInvalidNode) continue;
    coarse.coarse_of_fine[u] = next_id;
    coarse.coarse_of_fine[match[u]] = next_id;
    ++next_id;
  }
  coarse.adj.resize(next_id);
  coarse.node_weight.assign(next_id, 0);
  for (NodeId u = 0; u < n; ++u) {
    NodeId cu = coarse.coarse_of_fine[u];
    // Each pair contributes its weight once via the u <= match[u] member.
    if (u <= match[u]) {
      coarse.node_weight[cu] =
          fine.node_weight[u] +
          (match[u] != u ? fine.node_weight[match[u]] : 0);
    }
    for (const auto& [v, w] : fine.adj[u]) {
      NodeId cv = coarse.coarse_of_fine[v];
      if (cu != cv) coarse.adj[cu].emplace_back(cv, w);
    }
  }
  for (NodeId cu = 0; cu < next_id; ++cu) {
    auto& list = coarse.adj[cu];
    std::sort(list.begin(), list.end());
    std::vector<std::pair<NodeId, uint32_t>> merged;
    for (const auto& [v, w] : list) {
      if (!merged.empty() && merged.back().first == v) {
        merged.back().second += w;
      } else {
        merged.emplace_back(v, w);
      }
    }
    list.swap(merged);
  }
  return coarse;
}

// Greedy region-growing bisection: grow part 0 from a seed by strongest
// attachment until it holds half the node weight.
std::vector<uint32_t> InitialBisect(const Level& level, util::Rng& rng) {
  const NodeId n = level.size();
  uint64_t total_weight = 0;
  for (uint32_t w : level.node_weight) total_weight += w;
  const uint64_t target = total_weight / 2;

  std::vector<uint32_t> part(n, 1);
  if (n == 0) return part;
  std::vector<int64_t> gain(n, 0);
  std::vector<bool> in_zero(n, false);
  NodeId seed = rng.UniformU32(n);
  std::priority_queue<std::pair<int64_t, NodeId>> heap;
  heap.emplace(0, seed);
  uint64_t grown = 0;
  while (grown < target && !heap.empty()) {
    auto [g, u] = heap.top();
    heap.pop();
    if (in_zero[u] || g != gain[u]) continue;
    in_zero[u] = true;
    part[u] = 0;
    grown += level.node_weight[u];
    for (const auto& [v, w] : level.adj[u]) {
      if (in_zero[v]) continue;
      gain[v] += w;
      heap.emplace(gain[v], v);
    }
    if (heap.empty() && grown < target) {
      // Disconnected remainder: restart from any node still in part 1.
      for (NodeId v = 0; v < n; ++v) {
        if (!in_zero[v]) {
          heap.emplace(gain[v], v);
          break;
        }
      }
    }
  }
  return part;
}

// Boundary refinement: greedy single-node moves with positive gain while
// balance stays within 5%.
void Refine(const Level& level, std::vector<uint32_t>& part, int passes) {
  const NodeId n = level.size();
  uint64_t total_weight = 0;
  for (uint32_t w : level.node_weight) total_weight += w;
  uint64_t weight0 = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (part[v] == 0) weight0 += level.node_weight[v];
  }
  const uint64_t max_side = total_weight / 2 + total_weight / 20 + 1;

  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (NodeId u = 0; u < n; ++u) {
      int64_t internal = 0;
      int64_t external = 0;
      for (const auto& [v, w] : level.adj[u]) {
        if (part[v] == part[u]) {
          internal += w;
        } else {
          external += w;
        }
      }
      if (external <= internal) continue;  // no gain
      uint32_t from = part[u];
      uint64_t new0 = from == 0 ? weight0 - level.node_weight[u]
                                : weight0 + level.node_weight[u];
      uint64_t new1 = total_weight - new0;
      if (new0 > max_side || new1 > max_side) continue;
      part[u] = 1 - from;
      weight0 = new0;
      moved = true;
    }
    if (!moved) break;
  }
}

// Full multilevel bisection of `level`; fills part with 0/1.
std::vector<uint32_t> MultilevelBisect(Level base, util::Rng& rng) {
  std::vector<Level> levels;
  levels.push_back(std::move(base));
  while (levels.back().size() > 256) {
    Level coarse = Coarsen(levels.back(), rng);
    if (coarse.size() >= levels.back().size() * 95 / 100) break;  // stalled
    levels.push_back(std::move(coarse));
  }
  std::vector<uint32_t> part = InitialBisect(levels.back(), rng);
  Refine(levels.back(), part, 4);
  for (size_t l = levels.size() - 1; l > 0; --l) {
    // Project to the finer level l-1.
    const auto& map = levels[l].coarse_of_fine;
    std::vector<uint32_t> fine_part(levels[l - 1].size());
    for (NodeId v = 0; v < levels[l - 1].size(); ++v) {
      fine_part[v] = part[map[v]];
    }
    part = std::move(fine_part);
    Refine(levels[l - 1], part, 2);
  }
  return part;
}

// Fills edge_cut/balance/seconds from a finished part assignment.
void FinishResult(const Csr& csr, util::WallTimer& timer,
                  PartitionResult* result) {
  result->edge_cut = ComputeEdgeCut(csr, result->part);
  std::vector<uint64_t> sizes(result->num_parts, 0);
  for (uint32_t p : result->part) ++sizes[p];
  uint64_t max_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  result->balance = csr.num_nodes() == 0
                        ? 1.0
                        : static_cast<double>(max_size) * result->num_parts /
                              static_cast<double>(csr.num_nodes());
  result->seconds = timer.Seconds();
}

class HashPartitioner final : public Partitioner {
 public:
  util::StatusOr<PartitionResult> Partition(const Csr& csr,
                                            uint32_t num_parts) const override {
    if (num_parts == 0) {
      return util::Status::InvalidArgument("num_parts must be positive");
    }
    return HashPartition(csr, num_parts);
  }
  PartitionerKind kind() const override { return PartitionerKind::kHash; }
};

class RangePartitioner final : public Partitioner {
 public:
  util::StatusOr<PartitionResult> Partition(const Csr& csr,
                                            uint32_t num_parts) const override {
    if (num_parts == 0) {
      return util::Status::InvalidArgument("num_parts must be positive");
    }
    return RangePartition(csr, num_parts);
  }
  PartitionerKind kind() const override { return PartitionerKind::kRange; }
};

class MetisLikePartitioner final : public Partitioner {
 public:
  explicit MetisLikePartitioner(uint64_t seed) : seed_(seed) {}

  util::StatusOr<PartitionResult> Partition(const Csr& csr,
                                            uint32_t num_parts) const override {
    if (num_parts == 0) {
      return util::Status::InvalidArgument("num_parts must be positive");
    }
    if ((num_parts & (num_parts - 1)) != 0) {
      return util::Status::InvalidArgument(
          "metis-like recursive bisection requires a power-of-two part "
          "count; use the hash or range partitioner for other counts");
    }
    return MetisLikePartition(csr, num_parts, seed_);
  }
  PartitionerKind kind() const override { return PartitionerKind::kMetisLike; }

 private:
  uint64_t seed_;
};

}  // namespace

const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHash:
      return "hash";
    case PartitionerKind::kRange:
      return "range";
    case PartitionerKind::kMetisLike:
      return "metis";
  }
  return "unknown";
}

bool ParsePartitionerKind(const std::string& text, PartitionerKind* out) {
  if (text == "hash") {
    *out = PartitionerKind::kHash;
  } else if (text == "range") {
    *out = PartitionerKind::kRange;
  } else if (text == "metis" || text == "metis-like" || text == "metislike") {
    *out = PartitionerKind::kMetisLike;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<Partitioner> MakePartitioner(PartitionerKind kind,
                                             uint64_t seed) {
  switch (kind) {
    case PartitionerKind::kHash:
      return std::make_unique<HashPartitioner>();
    case PartitionerKind::kRange:
      return std::make_unique<RangePartitioner>();
    case PartitionerKind::kMetisLike:
      return std::make_unique<MetisLikePartitioner>(seed);
  }
  return nullptr;
}

uint64_t ComputeEdgeCut(const Csr& csr, const std::vector<uint32_t>& part) {
  uint64_t cut = 0;
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    for (NodeId v : csr.Neighbors(u)) {
      if (part[u] != part[v]) ++cut;
    }
  }
  return cut;
}

PartitionResult MetisLikePartition(const Csr& csr, uint32_t num_parts,
                                   uint64_t seed) {
  SAGE_CHECK_GE(num_parts, 1u);
  SAGE_CHECK((num_parts & (num_parts - 1)) == 0)
      << "recursive bisection supports power-of-two part counts";
  util::WallTimer timer;
  util::Rng rng(seed);
  const NodeId n = csr.num_nodes();
  PartitionResult result;
  result.num_parts = num_parts;
  result.part.assign(n, 0);
  if (num_parts > 1 && n > 0) {
    Level base = BuildBaseLevel(csr);
    // Recursive bisection over index sets.
    struct Task {
      std::vector<NodeId> nodes;  // base-level ids
      uint32_t first_part;
      uint32_t parts;
    };
    std::deque<Task> tasks;
    std::vector<NodeId> all(n);
    std::iota(all.begin(), all.end(), 0);
    tasks.push_back({std::move(all), 0, num_parts});
    while (!tasks.empty()) {
      Task task = std::move(tasks.front());
      tasks.pop_front();
      if (task.parts == 1) {
        for (NodeId v : task.nodes) result.part[v] = task.first_part;
        continue;
      }
      // Induced subgraph of task.nodes.
      std::vector<NodeId> local_of_base(n, kInvalidNode);
      for (NodeId i = 0; i < task.nodes.size(); ++i) {
        local_of_base[task.nodes[i]] = i;
      }
      Level sub;
      sub.adj.resize(task.nodes.size());
      sub.node_weight.assign(task.nodes.size(), 1);
      for (NodeId i = 0; i < task.nodes.size(); ++i) {
        for (const auto& [v, w] : base.adj[task.nodes[i]]) {
          NodeId lv = local_of_base[v];
          if (lv != kInvalidNode) sub.adj[i].emplace_back(lv, w);
        }
      }
      std::vector<uint32_t> bisect = MultilevelBisect(std::move(sub), rng);
      Task left{{}, task.first_part, task.parts / 2};
      Task right{{}, task.first_part + task.parts / 2, task.parts / 2};
      for (NodeId i = 0; i < task.nodes.size(); ++i) {
        (bisect[i] == 0 ? left.nodes : right.nodes).push_back(task.nodes[i]);
      }
      tasks.push_back(std::move(left));
      tasks.push_back(std::move(right));
    }
  }
  FinishResult(csr, timer, &result);
  return result;
}

PartitionResult HashPartition(const Csr& csr, uint32_t num_parts) {
  SAGE_CHECK_GE(num_parts, 1u);
  util::WallTimer timer;
  PartitionResult result;
  result.num_parts = num_parts;
  result.part.resize(csr.num_nodes());
  for (NodeId v = 0; v < csr.num_nodes(); ++v) result.part[v] = v % num_parts;
  FinishResult(csr, timer, &result);
  return result;
}

PartitionResult RangePartition(const Csr& csr, uint32_t num_parts) {
  SAGE_CHECK_GE(num_parts, 1u);
  util::WallTimer timer;
  PartitionResult result;
  result.num_parts = num_parts;
  const NodeId n = csr.num_nodes();
  result.part.resize(n);
  // ceil(n / K)-sized contiguous blocks; the tail shards may be empty when
  // num_parts > n.
  const uint64_t block =
      n == 0 ? 1 : (static_cast<uint64_t>(n) + num_parts - 1) / num_parts;
  for (NodeId v = 0; v < n; ++v) {
    result.part[v] = static_cast<uint32_t>(v / block);
  }
  FinishResult(csr, timer, &result);
  return result;
}

}  // namespace sage::graph
