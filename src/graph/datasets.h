#ifndef SAGE_GRAPH_DATASETS_H_
#define SAGE_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/csr.h"

namespace sage::graph {

/// The five evaluation datasets of Table 1, reproduced as scaled synthetic
/// graphs with matching category signatures (see DESIGN.md §1):
///   uk2002s     — web crawl: copying model, power-law indegree, strong
///                 id-locality and shallow hierarchy.
///   brains      — biology: dense (E/V in the hundreds), near-uniform
///                 degrees, clear community/hierarchical structure.
///   ljournals   — social: RMAT, moderate skew, E/V ≈ 15.
///   twitters    — social: RMAT with extreme skew (public follow graph);
///                 super nodes hold a large fraction of all edges.
///   friendsters — social: RMAT, large, milder skew than twitter.
enum class DatasetId {
  kUk2002s = 0,
  kBrains = 1,
  kLjournals = 2,
  kTwitters = 3,
  kFriendsters = 4,
};

/// Scale knob: kTiny for unit tests, kBench for the benchmark harness.
enum class DatasetScale {
  kTiny,
  kBench,
};

/// All five ids, in Table 1 order.
std::vector<DatasetId> AllDatasets();

/// Stable short name ("uk-2002s", "brain-s", ...).
std::string DatasetName(DatasetId id);

/// Category column of Table 1 ("Web", "Biology", "Social Network").
std::string DatasetCategory(DatasetId id);

/// Deterministically generates the dataset at the given scale.
Csr MakeDataset(DatasetId id, DatasetScale scale);

/// Summary statistics used to print the Table 1 reproduction.
struct DatasetStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_degree = 0.0;
  uint32_t max_degree = 0;
  /// Gini coefficient of out-degrees; the skew signature (twitter highest).
  double degree_gini = 0.0;
};

DatasetStats ComputeStats(const Csr& csr);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_DATASETS_H_
