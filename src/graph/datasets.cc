#include "graph/datasets.h"

#include "graph/generators.h"
#include "util/logging.h"
#include "util/stats.h"

namespace sage::graph {

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kUk2002s, DatasetId::kBrains, DatasetId::kLjournals,
          DatasetId::kTwitters, DatasetId::kFriendsters};
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kUk2002s:
      return "uk-2002s";
    case DatasetId::kBrains:
      return "brain-s";
    case DatasetId::kLjournals:
      return "ljournal-s";
    case DatasetId::kTwitters:
      return "twitter-s";
    case DatasetId::kFriendsters:
      return "friendster-s";
  }
  return "?";
}

std::string DatasetCategory(DatasetId id) {
  switch (id) {
    case DatasetId::kUk2002s:
      return "Web";
    case DatasetId::kBrains:
      return "Biology";
    case DatasetId::kLjournals:
    case DatasetId::kTwitters:
    case DatasetId::kFriendsters:
      return "Social Network";
  }
  return "?";
}

Csr MakeDataset(DatasetId id, DatasetScale scale) {
  const bool tiny = scale == DatasetScale::kTiny;
  switch (id) {
    case DatasetId::kUk2002s:
      // Table 1: E/V = 16.1, regular crawl hierarchy.
      return tiny ? GenerateWebCopy(/*num_nodes=*/3000, /*out_degree=*/16,
                                    /*copy_prob=*/0.75, /*seed=*/11)
                  : GenerateWebCopy(48'000, 16, 0.75, 11);
    case DatasetId::kBrains:
      // Table 1: E/V = 683 (dense, regular). Scaled to E/V ~ 160 to keep
      // simulated runs tractable while remaining an order denser than the
      // social graphs.
      return tiny ? GenerateCommunity(/*num_nodes=*/512, /*degree=*/60,
                                      /*community_size=*/64,
                                      /*locality=*/0.8, /*seed=*/12)
                  : GenerateCommunity(4096, 170, 256, 0.8, 12);
    case DatasetId::kLjournals:
      // Table 1: E/V = 14.9, moderate skew.
      return tiny ? GenerateRmat(/*scale=*/11, /*num_edges=*/30'000,
                                 /*a=*/0.45, /*b=*/0.22, /*c=*/0.22,
                                 /*seed=*/13)
                  : GenerateRmat(15, 520'000, 0.45, 0.22, 0.22, 13);
    case DatasetId::kTwitters:
      // Table 1: E/V = 35.1, extreme skew (super nodes).
      return tiny ? GenerateRmat(12, 140'000, 0.62, 0.18, 0.17, 14)
                  : GenerateRmat(16, 2'400'000, 0.62, 0.18, 0.17, 14);
    case DatasetId::kFriendsters:
      // Table 1: E/V = 27.5, large with milder skew than twitter.
      return tiny ? GenerateRmat(12, 110'000, 0.50, 0.21, 0.21, 15)
                  : GenerateRmat(17, 3'600'000, 0.50, 0.21, 0.21, 15);
  }
  SAGE_LOG(Fatal) << "unknown dataset id";
  return Csr();
}

DatasetStats ComputeStats(const Csr& csr) {
  DatasetStats stats;
  stats.num_nodes = csr.num_nodes();
  stats.num_edges = csr.num_edges();
  stats.avg_degree =
      stats.num_nodes == 0
          ? 0.0
          : static_cast<double>(stats.num_edges) /
                static_cast<double>(stats.num_nodes);
  stats.max_degree = csr.MaxOutDegree();
  std::vector<uint64_t> degrees(csr.num_nodes());
  for (NodeId u = 0; u < csr.num_nodes(); ++u) degrees[u] = csr.OutDegree(u);
  stats.degree_gini = util::GiniCoefficient(std::move(degrees));
  return stats;
}

}  // namespace sage::graph
