#include "graph/builder.h"

#include <string>

namespace sage::graph {

util::StatusOr<Csr> GraphBuilder::Build(const BuildOptions& options) {
  for (size_t i = 0; i < coo_.u.size(); ++i) {
    if (coo_.u[i] >= num_nodes_ || coo_.v[i] >= num_nodes_) {
      return util::Status::InvalidArgument(
          "edge endpoint out of range at index " + std::to_string(i) + ": (" +
          std::to_string(coo_.u[i]) + "," + std::to_string(coo_.v[i]) +
          "), num_nodes=" + std::to_string(num_nodes_));
    }
  }
  Coo coo = coo_;
  coo.num_nodes = num_nodes_;
  if (options.symmetrize) Symmetrize(coo);
  if (options.remove_self_loops) RemoveSelfLoops(coo);
  SortCoo(coo);
  if (options.dedup) DedupSortedCoo(coo);
  return Csr::FromCoo(coo);
}

}  // namespace sage::graph
