#include "graph/csr.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"

namespace sage::graph {

Csr Csr::FromCoo(const Coo& coo) {
  Csr csr;
  csr.num_nodes_ = coo.num_nodes;
  csr.u_offsets_.assign(static_cast<size_t>(coo.num_nodes) + 1, 0);
  for (NodeId u : coo.u) {
    SAGE_CHECK_LT(u, coo.num_nodes);
    ++csr.u_offsets_[u + 1];
  }
  for (size_t i = 1; i < csr.u_offsets_.size(); ++i) {
    csr.u_offsets_[i] += csr.u_offsets_[i - 1];
  }
  csr.v_.resize(coo.num_edges());
  std::vector<EdgeId> cursor(csr.u_offsets_.begin(), csr.u_offsets_.end() - 1);
  for (size_t i = 0; i < coo.num_edges(); ++i) {
    SAGE_CHECK_LT(coo.v[i], coo.num_nodes);
    csr.v_[cursor[coo.u[i]]++] = coo.v[i];
  }
  // Keep each adjacency list sorted: the scatter above preserves input edge
  // order per node, so sort only if the input was unsorted.
  if (!IsSorted(coo)) {
    for (NodeId u = 0; u < csr.num_nodes_; ++u) {
      std::sort(csr.v_.begin() + static_cast<ptrdiff_t>(csr.u_offsets_[u]),
                csr.v_.begin() + static_cast<ptrdiff_t>(csr.u_offsets_[u + 1]));
    }
  }
  return csr;
}

util::Status Csr::Validate() const { return ValidateCsr(*this); }

util::Status ValidateCsr(const Csr& csr) {
  const std::vector<EdgeId>& offsets = csr.u_offsets();
  const std::vector<NodeId>& v = csr.v();
  const NodeId n = csr.num_nodes();
  if (offsets.size() != static_cast<size_t>(n) + 1) {
    return util::Status::Corruption(
        "u_offsets size " + std::to_string(offsets.size()) +
        " != num_nodes + 1 (" + std::to_string(static_cast<uint64_t>(n) + 1) +
        ")");
  }
  if (offsets.front() != 0) {
    return util::Status::Corruption("u_offsets[0] != 0");
  }
  // Overflow guard: the terminal offset (and so every offset, once
  // monotonicity holds) must be addressable as a vector index on this
  // platform before it is compared against v.size().
  if constexpr (sizeof(size_t) < sizeof(EdgeId)) {
    if (offsets.back() >
        static_cast<EdgeId>(std::numeric_limits<size_t>::max())) {
      return util::Status::Corruption("terminal offset overflows size_t");
    }
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return util::Status::Corruption(
          "u_offsets not monotone at " + std::to_string(i) + " (" +
          std::to_string(offsets[i]) + " < " + std::to_string(offsets[i - 1]) +
          ")");
    }
    // Overflow guard: OutDegree returns uint32_t; a degree that wraps it
    // silently truncates every tile-size computation downstream.
    if (offsets[i] - offsets[i - 1] >
        std::numeric_limits<uint32_t>::max()) {
      return util::Status::Corruption("out-degree of node " +
                                      std::to_string(i - 1) +
                                      " overflows uint32_t");
    }
  }
  if (offsets.back() != v.size()) {
    return util::Status::Corruption(
        "terminal offset " + std::to_string(offsets.back()) +
        " != edge count " + std::to_string(v.size()));
  }
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] >= n) {
      return util::Status::Corruption(
          "neighbor id " + std::to_string(v[i]) + " out of range at edge " +
          std::to_string(i) + " (num_nodes " + std::to_string(n) + ")");
    }
  }
  return util::Status::OK();
}

Csr Csr::Transpose() const {
  Coo coo;
  coo.num_nodes = num_nodes_;
  coo.u.reserve(v_.size());
  coo.v.reserve(v_.size());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId w : Neighbors(u)) {
      coo.u.push_back(w);
      coo.v.push_back(u);
    }
  }
  return FromCoo(coo);
}

Coo Csr::ToCoo() const {
  Coo coo;
  coo.num_nodes = num_nodes_;
  coo.u.reserve(v_.size());
  coo.v.assign(v_.begin(), v_.end());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (EdgeId e = u_offsets_[u]; e < u_offsets_[u + 1]; ++e) {
      coo.u.push_back(u);
    }
  }
  return coo;
}

uint32_t Csr::MaxOutDegree() const {
  uint32_t best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, OutDegree(u));
  return best;
}

}  // namespace sage::graph
