#include "graph/csr.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace sage::graph {

Csr Csr::FromCoo(const Coo& coo) {
  Csr csr;
  csr.num_nodes_ = coo.num_nodes;
  csr.u_offsets_.assign(static_cast<size_t>(coo.num_nodes) + 1, 0);
  for (NodeId u : coo.u) {
    SAGE_CHECK_LT(u, coo.num_nodes);
    ++csr.u_offsets_[u + 1];
  }
  for (size_t i = 1; i < csr.u_offsets_.size(); ++i) {
    csr.u_offsets_[i] += csr.u_offsets_[i - 1];
  }
  csr.v_.resize(coo.num_edges());
  std::vector<EdgeId> cursor(csr.u_offsets_.begin(), csr.u_offsets_.end() - 1);
  for (size_t i = 0; i < coo.num_edges(); ++i) {
    SAGE_CHECK_LT(coo.v[i], coo.num_nodes);
    csr.v_[cursor[coo.u[i]]++] = coo.v[i];
  }
  // Keep each adjacency list sorted: the scatter above preserves input edge
  // order per node, so sort only if the input was unsorted.
  if (!IsSorted(coo)) {
    for (NodeId u = 0; u < csr.num_nodes_; ++u) {
      std::sort(csr.v_.begin() + static_cast<ptrdiff_t>(csr.u_offsets_[u]),
                csr.v_.begin() + static_cast<ptrdiff_t>(csr.u_offsets_[u + 1]));
    }
  }
  return csr;
}

util::Status Csr::Validate() const {
  if (u_offsets_.size() != static_cast<size_t>(num_nodes_) + 1) {
    return util::Status::Corruption("u_offsets size != num_nodes + 1");
  }
  if (u_offsets_.front() != 0) {
    return util::Status::Corruption("u_offsets[0] != 0");
  }
  for (size_t i = 1; i < u_offsets_.size(); ++i) {
    if (u_offsets_[i] < u_offsets_[i - 1]) {
      return util::Status::Corruption("u_offsets not monotone at " +
                                      std::to_string(i));
    }
  }
  if (u_offsets_.back() != v_.size()) {
    return util::Status::Corruption("u_offsets back != |E|");
  }
  for (size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] >= num_nodes_) {
      return util::Status::Corruption("neighbor id out of range at " +
                                      std::to_string(i));
    }
  }
  return util::Status::OK();
}

Csr Csr::Transpose() const {
  Coo coo;
  coo.num_nodes = num_nodes_;
  coo.u.reserve(v_.size());
  coo.v.reserve(v_.size());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId w : Neighbors(u)) {
      coo.u.push_back(w);
      coo.v.push_back(u);
    }
  }
  return FromCoo(coo);
}

Coo Csr::ToCoo() const {
  Coo coo;
  coo.num_nodes = num_nodes_;
  coo.u.reserve(v_.size());
  coo.v.assign(v_.begin(), v_.end());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (EdgeId e = u_offsets_[u]; e < u_offsets_[u + 1]; ++e) {
      coo.u.push_back(u);
    }
  }
  return coo;
}

uint32_t Csr::MaxOutDegree() const {
  uint32_t best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, OutDegree(u));
  return best;
}

}  // namespace sage::graph
