#ifndef SAGE_GRAPH_COO_H_
#define SAGE_GRAPH_COO_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace sage::graph {

/// Coordinate-format edge list (Figure 1 of the paper): two parallel arrays
/// u and v with one entry per directed edge (u[i] -> v[i]). Passive data
/// container; invariants (sortedness etc.) are established by the free
/// functions below and by GraphBuilder.
struct Coo {
  NodeId num_nodes = 0;
  std::vector<NodeId> u;
  std::vector<NodeId> v;

  uint64_t num_edges() const { return u.size(); }
};

/// Sorts edges by (u, v) using a two-pass stable counting sort — the host
/// analogue of the GPU radix sort used to build CSR without preprocessing.
void SortCoo(Coo& coo);

/// Removes duplicate edges; requires the Coo to be sorted.
void DedupSortedCoo(Coo& coo);

/// Removes self loops (u == v).
void RemoveSelfLoops(Coo& coo);

/// Appends the reverse of every edge, making the edge set symmetric.
/// (Does not dedup; call SortCoo + DedupSortedCoo afterwards.)
void Symmetrize(Coo& coo);

/// True if edges are sorted by (u, v).
bool IsSorted(const Coo& coo);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_COO_H_
