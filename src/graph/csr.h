#ifndef SAGE_GRAPH_CSR_H_
#define SAGE_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/coo.h"
#include "graph/types.h"
#include "util/status.h"

namespace sage::graph {

/// Compressed Sparse Row graph (Figure 1): `u_offsets` (|V|+1 entries) plus
/// the neighbor array `v`. This is the *only* representation SAGE requires —
/// the framework is preprocessing-free and operates on it directly
/// (Section 1). All SAGE-side mutation (Sampling-based Reordering) rewrites
/// this structure in place through ApplyPermutation in reorder/.
class Csr {
 public:
  Csr() = default;

  /// Builds a CSR from an edge list. The Coo does not need to be sorted;
  /// a counting pass + scatter is used (no comparison sort), mirroring how
  /// a GPU builds CSR from COO with a radix scatter.
  static Csr FromCoo(const Coo& coo);

  /// Validates structural invariants (monotone offsets, neighbor ids in
  /// range). Returns an error describing the first violation.
  util::Status Validate() const;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return v_.empty() ? 0 : v_.size(); }

  /// Out-degree of node u.
  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(u_offsets_[u + 1] - u_offsets_[u]);
  }

  /// Begin offset of u's adjacency in v().
  EdgeId NeighborBegin(NodeId u) const { return u_offsets_[u]; }
  EdgeId NeighborEnd(NodeId u) const { return u_offsets_[u + 1]; }

  /// Read-only view of u's neighbors.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return std::span<const NodeId>(v_.data() + u_offsets_[u], OutDegree(u));
  }

  const std::vector<EdgeId>& u_offsets() const { return u_offsets_; }
  const std::vector<NodeId>& v() const { return v_; }
  std::vector<NodeId>& mutable_v() { return v_; }
  std::vector<EdgeId>& mutable_u_offsets() { return u_offsets_; }

  /// Transposed graph (in-edges become out-edges); used by pull-style
  /// baselines (Ligra's pull direction) and by Gorder's indegree windows.
  Csr Transpose() const;

  /// Converts back to a (sorted) edge list.
  Coo ToCoo() const;

  /// Maximum out-degree; the skew headline number for each dataset.
  uint32_t MaxOutDegree() const;

  /// Bytes occupied by the representation (offsets + neighbor array).
  uint64_t MemoryBytes() const {
    return u_offsets_.size() * sizeof(EdgeId) + v_.size() * sizeof(NodeId);
  }

  friend bool operator==(const Csr& a, const Csr& b) {
    return a.num_nodes_ == b.num_nodes_ && a.u_offsets_ == b.u_offsets_ &&
           a.v_ == b.v_;
  }

 private:
  NodeId num_nodes_ = 0;
  std::vector<EdgeId> u_offsets_{0};
  std::vector<NodeId> v_;
};

/// Full structural validation of a CSR, the single authority every loading
/// and admission path defers to (Csr::Validate, graph::GraphRegistry load,
/// Engine::Create under vet_level >= kStatic): offsets array sized
/// num_nodes + 1, first offset zero, monotone non-decreasing offsets,
/// terminal offset equal to the edge count, every neighbor id in
/// [0, num_nodes), and overflow guards — no per-node degree may exceed what
/// OutDegree's uint32_t return can represent, and the offset/edge extents
/// must stay addressable. Returns kCorruption describing the first
/// violation.
util::Status ValidateCsr(const Csr& csr);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_CSR_H_
