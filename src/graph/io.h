#ifndef SAGE_GRAPH_IO_H_
#define SAGE_GRAPH_IO_H_

#include <string>

#include "graph/coo.h"
#include "graph/csr.h"
#include "util/status.h"

namespace sage::graph {

/// Loads a whitespace-separated "u v" edge-list text file (SNAP style).
/// Lines starting with '#' or '%' are comments. num_nodes is inferred as
/// max id + 1 unless a larger hint is given.
util::StatusOr<Coo> LoadEdgeListText(const std::string& path,
                                     NodeId num_nodes_hint = 0);

/// Writes "u v" lines.
util::Status SaveEdgeListText(const Coo& coo, const std::string& path);

/// Loads a METIS .graph file: header "num_nodes num_edges [fmt]", then one
/// line per node listing its (1-indexed) neighbors. Weighted variants
/// (fmt != 0) are rejected as Unimplemented.
util::StatusOr<Csr> LoadMetisGraph(const std::string& path);

/// Binary CSR container:
///   magic "SAGECSR1" | u64 num_nodes | u64 num_edges |
///   u64 u_offsets[num_nodes+1] | u32 v[num_edges]
/// Round-trips exactly; used so benchmarks can cache generated datasets.
util::Status SaveCsrBinary(const Csr& csr, const std::string& path);
util::StatusOr<Csr> LoadCsrBinary(const std::string& path);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_IO_H_
