#ifndef SAGE_GRAPH_PARTITIONER_H_
#define SAGE_GRAPH_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace sage::graph {

/// Result of partitioning a graph into `num_parts` shards: part[v] is the
/// owning shard of node v, plus the quality numbers every caller wants
/// (edge cut, balance, wall time spent partitioning).
struct PartitionResult {
  std::vector<uint32_t> part;
  uint32_t num_parts = 0;
  uint64_t edge_cut = 0;
  double seconds = 0.0;
  /// max shard size / ideal shard size (1.0 = perfectly balanced).
  double balance = 0.0;
};

/// The partitioning algorithms the sharded execution path can use.
enum class PartitionerKind : uint8_t {
  kHash,       ///< part[v] = v % K — balanced, cut-oblivious baseline
  kRange,      ///< contiguous blocks of ~n/K nodes — locality baseline
  kMetisLike,  ///< multilevel recursive bisection (power-of-two K only)
};

/// Canonical lower-case name of a kind ("hash", "range", "metis").
const char* PartitionerKindName(PartitionerKind kind);

/// Parses a kind from user input; accepts the canonical names plus the
/// legacy spellings "metis-like" and "metislike". Returns false (and
/// leaves *out untouched) on anything else.
bool ParsePartitionerKind(const std::string& text, PartitionerKind* out);

/// Strategy interface over the concrete algorithms so callers (the sharded
/// engine, the CLI) select one at runtime. Implementations are stateless
/// apart from the seed and may be reused across graphs.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Partitions `csr` into `num_parts` shards. num_parts may exceed the
  /// node count (the surplus shards simply own nothing). Returns
  /// InvalidArgument for num_parts == 0 and for algorithm-specific
  /// restrictions (the metis-like partitioner requires a power-of-two
  /// part count).
  virtual util::StatusOr<PartitionResult> Partition(
      const Csr& csr, uint32_t num_parts) const = 0;

  virtual PartitionerKind kind() const = 0;
  const char* name() const { return PartitionerKindName(kind()); }
};

/// Factory for the built-in partitioners. `seed` only affects the
/// randomized metis-like algorithm.
std::unique_ptr<Partitioner> MakePartitioner(PartitionerKind kind,
                                             uint64_t seed = 1);

/// Number of directed edges whose endpoints land in different parts.
uint64_t ComputeEdgeCut(const Csr& csr, const std::vector<uint32_t>& part);

/// Direct entry points (no virtual dispatch). These SAGE_CHECK their
/// preconditions — go through Partitioner::Partition for typed errors.
PartitionResult HashPartition(const Csr& csr, uint32_t num_parts);
PartitionResult RangePartition(const Csr& csr, uint32_t num_parts);
PartitionResult MetisLikePartition(const Csr& csr, uint32_t num_parts,
                                   uint64_t seed = 1);

}  // namespace sage::graph

#endif  // SAGE_GRAPH_PARTITIONER_H_
