#include "graph/generators.h"

#include <algorithm>

#include "graph/builder.h"
#include "util/logging.h"
#include "util/random.h"

namespace sage::graph {
namespace {

Csr BuildFromCoo(Coo coo) {
  RemoveSelfLoops(coo);
  SortCoo(coo);
  DedupSortedCoo(coo);
  return Csr::FromCoo(coo);
}

}  // namespace

Csr GenerateUniform(NodeId num_nodes, uint64_t num_edges, uint64_t seed) {
  SAGE_CHECK_GT(num_nodes, 0u);
  util::Rng rng(seed);
  Coo coo;
  coo.num_nodes = num_nodes;
  coo.u.reserve(num_edges);
  coo.v.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    coo.u.push_back(rng.UniformU32(num_nodes));
    coo.v.push_back(rng.UniformU32(num_nodes));
  }
  return BuildFromCoo(std::move(coo));
}

Csr GenerateRmat(uint32_t scale, uint64_t num_edges, double a, double b,
                 double c, uint64_t seed) {
  SAGE_CHECK_LE(scale, 31u);
  const double d = 1.0 - a - b - c;
  SAGE_CHECK(d >= -1e-9) << "RMAT probabilities exceed 1";
  util::Rng rng(seed);
  const NodeId n = static_cast<NodeId>(1u) << scale;
  Coo coo;
  coo.num_nodes = n;
  coo.u.reserve(num_edges);
  coo.v.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.UniformDouble();
      // Slight per-level noise prevents the degenerate exactly-self-similar
      // structure (standard RMAT practice).
      double aa = a * (0.95 + 0.1 * rng.UniformDouble());
      double bb = b * (0.95 + 0.1 * rng.UniformDouble());
      double cc = c * (0.95 + 0.1 * rng.UniformDouble());
      double norm = aa + bb + cc + d * (0.95 + 0.1 * rng.UniformDouble());
      r *= norm;
      u <<= 1;
      v <<= 1;
      if (r < aa) {
        // top-left quadrant: no bits set
      } else if (r < aa + bb) {
        v |= 1;
      } else if (r < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    coo.u.push_back(u);
    coo.v.push_back(v);
  }
  return BuildFromCoo(std::move(coo));
}

Csr GenerateCommunity(NodeId num_nodes, uint32_t degree, NodeId community_size,
                      double locality, uint64_t seed) {
  SAGE_CHECK_GT(num_nodes, 0u);
  SAGE_CHECK_GT(community_size, 0u);
  util::Rng rng(seed);
  Coo coo;
  coo.num_nodes = num_nodes;
  coo.u.reserve(static_cast<uint64_t>(num_nodes) * degree);
  coo.v.reserve(static_cast<uint64_t>(num_nodes) * degree);
  for (NodeId u = 0; u < num_nodes; ++u) {
    NodeId comm_begin = (u / community_size) * community_size;
    NodeId comm_end = std::min<NodeId>(comm_begin + community_size, num_nodes);
    NodeId comm_n = comm_end - comm_begin;
    for (uint32_t k = 0; k < degree; ++k) {
      NodeId v;
      if (rng.Bernoulli(locality) && comm_n > 1) {
        v = comm_begin + rng.UniformU32(comm_n);
      } else {
        v = rng.UniformU32(num_nodes);
      }
      coo.u.push_back(u);
      coo.v.push_back(v);
    }
  }
  return BuildFromCoo(std::move(coo));
}

Csr GenerateWebCopy(NodeId num_nodes, uint32_t out_degree, double copy_prob,
                    uint64_t seed) {
  SAGE_CHECK_GT(num_nodes, 1u);
  util::Rng rng(seed);
  Coo coo;
  coo.num_nodes = num_nodes;
  coo.u.reserve(static_cast<uint64_t>(num_nodes) * out_degree);
  coo.v.reserve(static_cast<uint64_t>(num_nodes) * out_degree);
  // Adjacency of already-generated nodes, needed for copying.
  std::vector<std::vector<NodeId>> adj(num_nodes);
  adj[0] = {};
  for (NodeId t = 1; t < num_nodes; ++t) {
    NodeId tmpl = rng.UniformU32(t);
    auto& mine = adj[t];
    const auto& theirs = adj[tmpl];
    // Heavy-tailed per-page out-degree around the requested mean: most
    // pages are small, a few are link hubs (web directories).
    uint32_t degree;
    if (rng.Bernoulli(0.05)) {
      degree = out_degree + rng.UniformU32(out_degree * 19 + 1);
    } else {
      degree = 1 + rng.UniformU32(out_degree);
    }
    for (uint32_t k = 0; k < degree; ++k) {
      NodeId v;
      if (k < theirs.size() && rng.Bernoulli(copy_prob)) {
        v = theirs[k];
      } else {
        v = rng.UniformU32(t);
      }
      mine.push_back(v);
      coo.u.push_back(t);
      coo.v.push_back(v);
    }
  }
  return BuildFromCoo(std::move(coo));
}

Csr GenerateGrid2d(NodeId rows, NodeId cols) {
  SAGE_CHECK_GT(rows, 0u);
  SAGE_CHECK_GT(cols, 0u);
  Coo coo;
  coo.num_nodes = rows * cols;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (r + 1 < rows) {
        coo.u.push_back(id(r, c));
        coo.v.push_back(id(r + 1, c));
        coo.u.push_back(id(r + 1, c));
        coo.v.push_back(id(r, c));
      }
      if (c + 1 < cols) {
        coo.u.push_back(id(r, c));
        coo.v.push_back(id(r, c + 1));
        coo.u.push_back(id(r, c + 1));
        coo.v.push_back(id(r, c));
      }
    }
  }
  return BuildFromCoo(std::move(coo));
}

Csr GeneratePath(NodeId num_nodes) {
  Coo coo;
  coo.num_nodes = num_nodes;
  for (NodeId u = 0; u + 1 < num_nodes; ++u) {
    coo.u.push_back(u);
    coo.v.push_back(u + 1);
  }
  return Csr::FromCoo(coo);
}

Csr GenerateStar(NodeId num_nodes) {
  SAGE_CHECK_GT(num_nodes, 0u);
  Coo coo;
  coo.num_nodes = num_nodes;
  for (NodeId v = 1; v < num_nodes; ++v) {
    coo.u.push_back(0);
    coo.v.push_back(v);
  }
  return Csr::FromCoo(coo);
}

Csr GenerateComplete(NodeId num_nodes) {
  Coo coo;
  coo.num_nodes = num_nodes;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (u == v) continue;
      coo.u.push_back(u);
      coo.v.push_back(v);
    }
  }
  return Csr::FromCoo(coo);
}

}  // namespace sage::graph
