#include "graph/io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

namespace sage::graph {
namespace {

constexpr char kMagic[8] = {'S', 'A', 'G', 'E', 'C', 'S', 'R', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

util::StatusOr<Coo> LoadEdgeListText(const std::string& path,
                                     NodeId num_nodes_hint) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  Coo coo;
  NodeId max_id = 0;
  bool any_edge = false;
  char line[256];
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    // Skip comments and blank lines.
    char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    unsigned long long u = 0;
    unsigned long long v = 0;
    if (std::sscanf(p, "%llu %llu", &u, &v) != 2) {
      return util::Status::Corruption("malformed edge at " + path + ":" +
                                      std::to_string(line_no));
    }
    if (u > 0xfffffffeull || v > 0xfffffffeull) {
      return util::Status::OutOfRange("node id exceeds 32-bit range at " +
                                      path + ":" + std::to_string(line_no));
    }
    coo.u.push_back(static_cast<NodeId>(u));
    coo.v.push_back(static_cast<NodeId>(v));
    max_id = std::max(max_id, static_cast<NodeId>(std::max(u, v)));
    any_edge = true;
  }
  coo.num_nodes = any_edge ? max_id + 1 : 0;
  if (num_nodes_hint > coo.num_nodes) coo.num_nodes = num_nodes_hint;
  return coo;
}

util::Status SaveEdgeListText(const Coo& coo, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  for (size_t i = 0; i < coo.u.size(); ++i) {
    if (std::fprintf(f.get(), "%u %u\n", coo.u[i], coo.v[i]) < 0) {
      return util::Status::IoError("write failed for " + path);
    }
  }
  return util::Status::OK();
}

util::StatusOr<Csr> LoadMetisGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  std::string line;
  char buf[1 << 16];
  uint64_t line_no = 0;
  // Header (skipping comment lines that start with '%').
  unsigned long long n = 0;
  unsigned long long m = 0;
  unsigned long long fmt = 0;
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    ++line_no;
    if (buf[0] == '%') continue;
    int fields = std::sscanf(buf, "%llu %llu %llu", &n, &m, &fmt);
    if (fields < 2) {
      return util::Status::Corruption("bad METIS header in " + path);
    }
    break;
  }
  if (fmt != 0) {
    return util::Status::Unimplemented(
        "weighted METIS graphs are not supported");
  }
  if (n > 0xfffffffeull) {
    return util::Status::OutOfRange("node count exceeds 32-bit id space");
  }
  Coo coo;
  coo.num_nodes = static_cast<NodeId>(n);
  coo.u.reserve(2 * m);
  coo.v.reserve(2 * m);
  NodeId u = 0;
  while (u < n && std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    ++line_no;
    if (buf[0] == '%') continue;
    char* p = buf;
    while (true) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      p = end;
      if (v == 0 || v > n) {
        return util::Status::Corruption("neighbor id out of range at " +
                                        path + ":" + std::to_string(line_no));
      }
      coo.u.push_back(u);
      coo.v.push_back(static_cast<NodeId>(v - 1));  // 1-indexed format
    }
    ++u;
  }
  if (u != n) {
    return util::Status::Corruption("expected " + std::to_string(n) +
                                    " adjacency lines, got " +
                                    std::to_string(u));
  }
  // METIS lists each undirected edge twice; the count is edges, not arcs.
  if (coo.u.size() != 2 * m) {
    return util::Status::Corruption(
        "arc count mismatch: header says " + std::to_string(2 * m) +
        ", file has " + std::to_string(coo.u.size()));
  }
  return Csr::FromCoo(coo);
}

util::Status SaveCsrBinary(const Csr& csr, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  uint64_t n = csr.num_nodes();
  uint64_t m = csr.num_edges();
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic) ||
      std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fwrite(&m, sizeof(m), 1, f.get()) != 1) {
    return util::Status::IoError("header write failed for " + path);
  }
  const auto& offsets = csr.u_offsets();
  if (std::fwrite(offsets.data(), sizeof(EdgeId), offsets.size(), f.get()) !=
      offsets.size()) {
    return util::Status::IoError("offset write failed for " + path);
  }
  if (m > 0 && std::fwrite(csr.v().data(), sizeof(NodeId), csr.v().size(),
                           f.get()) != csr.v().size()) {
    return util::Status::IoError("edge write failed for " + path);
  }
  return util::Status::OK();
}

util::StatusOr<Csr> LoadCsrBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  char magic[8];
  uint64_t n = 0;
  uint64_t m = 0;
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return util::Status::Corruption("bad magic in " + path);
  }
  if (std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&m, sizeof(m), 1, f.get()) != 1) {
    return util::Status::Corruption("truncated header in " + path);
  }
  if (n > 0xffffffffull) {
    return util::Status::OutOfRange("num_nodes exceeds 32-bit range");
  }
  Csr csr;
  auto& offsets = csr.mutable_u_offsets();
  offsets.assign(n + 1, 0);
  if (std::fread(offsets.data(), sizeof(EdgeId), offsets.size(), f.get()) !=
      offsets.size()) {
    return util::Status::Corruption("truncated offsets in " + path);
  }
  auto& v = csr.mutable_v();
  v.assign(m, 0);
  if (m > 0 && std::fread(v.data(), sizeof(NodeId), m, f.get()) != m) {
    return util::Status::Corruption("truncated edges in " + path);
  }
  // Re-create through Coo to set num_nodes_ and enforce invariants.
  Csr out;
  {
    Coo coo;
    coo.num_nodes = static_cast<NodeId>(n);
    coo.v.assign(v.begin(), v.end());
    coo.u.reserve(m);
    for (uint64_t u = 0; u < n; ++u) {
      for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
        coo.u.push_back(static_cast<NodeId>(u));
      }
    }
    out = Csr::FromCoo(coo);
  }
  SAGE_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace sage::graph
