#include "core/guard.h"

namespace sage::core {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

}  // namespace

uint64_t Checkpoint::ComputeDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvBytes(h, program_name.data(), program_name.size());
  h = FnvU64(h, iteration);
  h = FnvU64(h, reorder_rounds);
  h = FnvU64(h, global ? 1 : 0);
  h = FnvU64(h, frontier.size());
  h = FnvBytes(h, frontier.data(),
               frontier.size() * sizeof(graph::NodeId));
  h = FnvU64(h, app_state.size());
  h = FnvBytes(h, app_state.data(), app_state.size());
  return h;
}

}  // namespace sage::core
