#include "core/expand.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::core {

using graph::EdgeId;
using graph::NodeId;

namespace {

// Declared write semantics for the checker: atomics dominate, then the
// program's idempotence claim, else a plain (race-prone) store.
sim::AccessIntent NeighborWriteIntent(const Footprint& fp) {
  if (fp.atomic_neighbor) return sim::AccessIntent::kAtomic;
  if (fp.idempotent_neighbor_writes) return sim::AccessIntent::kWriteIdempotent;
  return sim::AccessIntent::kWrite;
}

sim::AccessIntent FrontierWriteIntent(const Footprint& fp) {
  if (fp.atomic_frontier) return sim::AccessIntent::kAtomic;
  if (fp.idempotent_frontier_writes) return sim::AccessIntent::kWriteIdempotent;
  return sim::AccessIntent::kWrite;
}

}  // namespace

ExpandContext::ExpandContext(sim::GpuDevice* device, const graph::Csr* csr,
                             const sim::Buffer* v_buf,
                             const sim::Buffer* offsets_buf)
    : device_(device), csr_(csr), v_buf_(v_buf), offsets_buf_(offsets_buf) {}

uint64_t ExpandContext::ProcessTileChunk(uint32_t sm, NodeId frontier,
                                         EdgeId gather, uint32_t m,
                                         std::vector<NodeId>* next) {
  SAGE_DCHECK(filter_ != nullptr);
  if (m == 0) return 0;
  const auto& spec = device_->spec();

  // Coalesced read of m consecutive neighbor indices from csr.v.
  device_->AccessRange(sm, *v_buf_, gather, m);
  // Edge-indexed attribute arrays (weights etc.) ride the same gather.
  for (const sim::Buffer* buf : footprint_->edge_reads) {
    device_->AccessRange(sm, *buf, gather, m);
  }

  // Materialize the neighbor ids (the functional part of the gather).
  auto& neighbors = nbr_scratch_;
  neighbors.clear();
  const auto& v = csr_->v();
  for (uint32_t i = 0; i < m; ++i) {
    neighbors.push_back(v[gather + i]);
  }

  if (observer_ != nullptr) {
    observer_->ObserveTileAccess(neighbors, sm);
  }

  // Virtual→real translation (UDT layer): one extra indirection read.
  if (frontier_map_ != nullptr) {
    uint64_t midx = frontier;
    device_->Access(sm, *frontier_map_buf_, std::span<const uint64_t>(&midx, 1));
    frontier = (*frontier_map_)[frontier];
  }

  // Scattered attribute batches at the neighbors' indices: the
  // locality-sensitive accesses of the filtering step (Section 6).
  auto& idx = idx_scratch_;
  idx.clear();
  for (NodeId nbr : neighbors) idx.push_back(nbr);
  for (const sim::Buffer* buf : footprint_->neighbor_reads) {
    device_->Access(sm, *buf, idx);
  }
  for (const sim::Buffer* buf : footprint_->neighbor_writes) {
    device_->Access(sm, *buf, idx, NeighborWriteIntent(*footprint_));
  }
  // Broadcast reads/writes at the frontier's index: one address per tile.
  uint64_t fidx = frontier;
  std::span<const uint64_t> fspan(&fidx, 1);
  for (const sim::Buffer* buf : footprint_->frontier_reads) {
    device_->Access(sm, *buf, fspan);
  }
  for (const sim::Buffer* buf : footprint_->frontier_writes) {
    device_->Access(sm, *buf, fspan, FrontierWriteIntent(*footprint_));
  }

  // Atomic serialization: duplicate neighbor ids within one concurrent
  // tile access conflict on the same address.
  if (footprint_->atomic_neighbor) {
    auto& sorted = sorted_scratch_;
    sorted.assign(neighbors.begin(), neighbors.end());
    std::sort(sorted.begin(), sorted.end());
    uint32_t distinct = sorted.empty() ? 0 : 1;
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] != sorted[i - 1]) ++distinct;
    }
    device_->ChargeAtomicConflicts(sm, m - distinct);
  }
  if (footprint_->atomic_frontier) {
    // Warp-aggregated reduction leaves one RMW per tile access.
    device_->ChargeAtomicConflicts(sm, 1);
  }

  // Filter body instructions, issued per warp.
  uint32_t warps = (m + spec.warp_size - 1) / spec.warp_size;
  device_->ChargeCompute(
      sm, static_cast<uint64_t>(ExpandCosts::kEdgeInstr) * warps +
              ExpandCosts::kChunkLoopOps);

  // Functional execution of the filtering step (or its deferral: trace-mode
  // workers record the inputs and the engine commits them in unit order).
  if (deferred_ != nullptr) {
    for (NodeId nbr : neighbors) deferred_->push_back({frontier, nbr});
  } else {
    for (NodeId nbr : neighbors) {
      if (filter_->Filter(frontier, nbr)) next->push_back(nbr);
    }
  }
  return m;
}

uint64_t ExpandContext::ProcessScatteredEdges(
    uint32_t sm, std::span<const std::pair<NodeId, EdgeId>> edges,
    std::vector<NodeId>* next) {
  SAGE_DCHECK(filter_ != nullptr);
  if (edges.empty()) return 0;
  const auto& spec = device_->spec();

  // Scattered adjacency reads: lanes gather from unrelated list positions.
  auto& idx = idx_scratch_;
  idx.clear();
  for (const auto& [f, e] : edges) {
    (void)f;
    idx.push_back(e);
  }
  device_->Access(sm, *v_buf_, idx);
  for (const sim::Buffer* buf : footprint_->edge_reads) {
    device_->Access(sm, *buf, idx);
  }

  auto& neighbors = nbr_scratch_;
  neighbors.clear();
  const auto& v = csr_->v();
  for (const auto& [f, e] : edges) {
    (void)f;
    neighbors.push_back(v[e]);
  }

  // Note: scattered fragment batches are NOT sampled for reordering —
  // Algorithm 4 observes *tile* accesses (one frontier's consecutive
  // neighbors); fragment batches mix unrelated frontiers' leftovers, whose
  // co-residency is scheduling noise rather than reusable locality.

  // Virtual→real translation for every distinct frontier in the batch.
  auto map_frontier = [this](NodeId f) {
    return frontier_map_ == nullptr ? f : (*frontier_map_)[f];
  };
  if (frontier_map_ != nullptr) {
    auto& midx = midx_scratch_;
    midx.clear();
    for (const auto& [f, e] : edges) {
      (void)e;
      midx.push_back(f);
    }
    std::sort(midx.begin(), midx.end());
    midx.erase(std::unique(midx.begin(), midx.end()), midx.end());
    device_->Access(sm, *frontier_map_buf_, midx);
  }

  idx.clear();
  for (NodeId nbr : neighbors) idx.push_back(nbr);
  for (const sim::Buffer* buf : footprint_->neighbor_reads) {
    device_->Access(sm, *buf, idx);
  }
  for (const sim::Buffer* buf : footprint_->neighbor_writes) {
    device_->Access(sm, *buf, idx, NeighborWriteIntent(*footprint_));
  }
  // Frontier-side accesses: one per distinct frontier in the batch.
  idx.clear();
  for (const auto& [f, e] : edges) {
    (void)e;
    idx.push_back(map_frontier(f));
  }
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  for (const sim::Buffer* buf : footprint_->frontier_reads) {
    device_->Access(sm, *buf, idx);
  }
  for (const sim::Buffer* buf : footprint_->frontier_writes) {
    device_->Access(sm, *buf, idx, FrontierWriteIntent(*footprint_));
  }

  if (footprint_->atomic_neighbor) {
    auto& sorted = sorted_scratch_;
    sorted.assign(neighbors.begin(), neighbors.end());
    std::sort(sorted.begin(), sorted.end());
    uint32_t distinct = sorted.empty() ? 0 : 1;
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] != sorted[i - 1]) ++distinct;
    }
    device_->ChargeAtomicConflicts(
        sm, static_cast<uint32_t>(edges.size()) - distinct);
  }

  uint32_t warps = (static_cast<uint32_t>(edges.size()) + spec.warp_size - 1) /
                   spec.warp_size;
  device_->ChargeCompute(
      sm, static_cast<uint64_t>(ExpandCosts::kEdgeInstr) * warps);

  if (deferred_ != nullptr) {
    for (const auto& [f, e] : edges) {
      deferred_->push_back({map_frontier(f), v[e]});
    }
  } else {
    for (const auto& [f, e] : edges) {
      if (filter_->Filter(map_frontier(f), v[e])) next->push_back(v[e]);
    }
  }
  return edges.size();
}

void ExpandContext::ChargeBlockFrontierReads(
    uint32_t sm, const sim::Buffer* frontier_buf, uint64_t frontier_base,
    std::span<const NodeId> frontiers) {
  // Coalesced read of the block's frontier slice.
  device_->AccessRange(sm, *frontier_buf, frontier_base, frontiers.size());
  // UDT layer: read the virtual→real map entries for the block.
  if (frontier_map_ != nullptr) {
    auto& midx = midx_scratch_;
    midx.assign(frontiers.begin(), frontiers.end());
    device_->Access(sm, *frontier_map_buf_, midx);
  }
  // Scattered reads of u_offsets[f] and u_offsets[f+1].
  auto& idx = idx_scratch_;
  idx.clear();
  for (NodeId f : frontiers) {
    idx.push_back(f);
    idx.push_back(static_cast<uint64_t>(f) + 1);
  }
  device_->Access(sm, *offsets_buf_, idx);
}

void ExpandContext::ChargeContraction(const sim::Buffer* frontier_buf,
                                      uint64_t size) {
  if (size == 0) return;
  const uint32_t num_sms = device_->spec().num_sms;
  uint64_t chunk = (size + num_sms - 1) / num_sms;
  uint64_t base = 0;
  for (uint32_t s = 0; s < num_sms && base < size; ++s) {
    uint64_t len = std::min<uint64_t>(chunk, size - base);
    // Compaction writes the next frontier; SMs own disjoint chunks.
    device_->AccessRange(s, *frontier_buf, base, len,
                         sim::AccessIntent::kWrite);
    // Prefix-sum compute for the compaction.
    device_->ChargeCompute(s, ExpandCosts::kScanOps);
    base += len;
  }
}

namespace {

// Recursive tiled partitioning over lanes [lo, hi): the functional model of
// Algorithm 2 lines 8-29. Each lane owns a remaining range [beg[i], end[i])
// of csr.v. Elections and chunk consumption happen at the current tile
// size; afterwards the tile splits in two (cg::partition) and recurses.
// The spans live in the context's arena for the duration of one block.
struct TiledState {
  std::span<NodeId> frontier;
  std::span<EdgeId> beg;
  std::span<EdgeId> end;
};

uint64_t ProcessTileLevel(ExpandContext& ctx, uint32_t sm, TiledState& st,
                          size_t lo, size_t hi, uint32_t tile_size,
                          const TiledOptions& options,
                          std::vector<NodeId>* next) {
  const auto& spec = ctx.device()->spec();
  uint64_t edges = 0;
  if (tile_size < options.min_tile_size || lo >= hi) return 0;

  // Election loop: while any lane's remaining degree >= tile size. The
  // terminating vote is one more cg op.
  while (true) {
    size_t leader = hi;
    for (size_t i = lo; i < hi; ++i) {
      if (st.end[i] - st.beg[i] >= tile_size) {
        leader = i;
        break;
      }
    }
    // any() vote that found (or did not find) a candidate.
    ctx.device()->ChargeTpOverhead(sm, spec.cg_op_cycles);
    if (leader == hi) break;
    // elect() + shfl of u_beg / u_end / frontier.
    ctx.device()->ChargeTpOverhead(
        sm, static_cast<uint64_t>(ExpandCosts::kElectionOps) *
                spec.cg_op_cycles);

    EdgeId g = st.beg[leader];
    EdgeId g_end = st.end[leader];
    NodeId leader_frontier = st.frontier[leader];
    uint64_t remaining = g_end - g;

    // (Tile alignment applies to the *resident* decomposition — see
    // DecomposeAdjacency — where misaligned prefixes amortize into the
    // shared scan-gather path; inline consumption keeps natural layout.)
    // Full collaborative chunks of tile_size.
    while (remaining >= tile_size) {
      edges += ctx.ProcessTileChunk(sm, leader_frontier, g, tile_size, next);
      g += tile_size;
      remaining -= tile_size;
    }
    // Leader keeps the sub-tile remainder (lines 14-17).
    st.beg[leader] = g;
  }

  // cg::partition into two halves (line 28).
  uint32_t half = tile_size / 2;
  if (half >= options.min_tile_size && hi - lo > 1) {
    ctx.device()->ChargeTpOverhead(
        sm, static_cast<uint64_t>(ExpandCosts::kPartitionOps) *
                    spec.cg_op_cycles +
                spec.sync_cycles);
    size_t mid = lo + (hi - lo) / 2;
    edges += ProcessTileLevel(ctx, sm, st, lo, mid, half, options, next);
    edges += ProcessTileLevel(ctx, sm, st, mid, hi, half, options, next);
  }
  return edges;
}

}  // namespace

uint64_t ExpandBlockTiled(ExpandContext& ctx, uint32_t sm,
                          std::span<const NodeId> frontiers,
                          const TiledOptions& options,
                          std::vector<NodeId>* next) {
  if (frontiers.empty()) return 0;
  const auto& spec = ctx.device()->spec();
  const graph::Csr& csr = ctx.csr();

  util::Arena& arena = ctx.arena();
  arena.Reset();
  TiledState st;
  st.frontier = arena.AllocateSpan<NodeId>(frontiers.size());
  st.beg = arena.AllocateSpan<EdgeId>(frontiers.size());
  st.end = arena.AllocateSpan<EdgeId>(frontiers.size());
  for (size_t i = 0; i < frontiers.size(); ++i) {
    st.frontier[i] = frontiers[i];
    st.beg[i] = csr.NeighborBegin(frontiers[i]);
    st.end[i] = csr.NeighborEnd(frontiers[i]);
  }

  ctx.device()->ChargeWarps(
      sm, (frontiers.size() + spec.warp_size - 1) / spec.warp_size);

  uint64_t edges = ProcessTileLevel(ctx, sm, st, 0, st.frontier.size(),
                                    options.block_size, options, next);

  // Block-wide sync before fragment handling (line 31).
  ctx.device()->ChargeCompute(sm, spec.sync_cycles);

  // Scan-based fragment gathering [Merrill et al. 30]: compact every
  // lane's sub-minimum remainder and process warp-sized scattered batches.
  // The remainder count is known exactly, so the list is one arena span.
  size_t num_fragments = 0;
  for (size_t i = 0; i < st.frontier.size(); ++i) {
    num_fragments += st.end[i] - st.beg[i];
  }
  std::span<std::pair<NodeId, EdgeId>> fragments =
      arena.AllocateSpan<std::pair<NodeId, EdgeId>>(num_fragments);
  size_t fill = 0;
  for (size_t i = 0; i < st.frontier.size(); ++i) {
    for (EdgeId e = st.beg[i]; e < st.end[i]; ++e) {
      fragments[fill++] = {st.frontier[i], e};
    }
  }
  if (!fragments.empty()) {
    ctx.device()->ChargeCompute(sm, ExpandCosts::kScanOps + spec.sync_cycles);
    for (size_t base = 0; base < fragments.size(); base += spec.warp_size) {
      size_t len = std::min<size_t>(spec.warp_size, fragments.size() - base);
      edges += ctx.ProcessScatteredEdges(
          sm, std::span<const std::pair<NodeId, EdgeId>>(
                  fragments.data() + base, len),
          next);
    }
  }
  return edges;
}

uint64_t ExpandBlockScalar(ExpandContext& ctx, uint32_t sm,
                           std::span<const NodeId> frontiers,
                           uint32_t block_size, uint32_t warp_size,
                           std::vector<NodeId>* next) {
  if (frontiers.empty()) return 0;
  const graph::Csr& csr = ctx.csr();
  ctx.device()->ChargeWarps(sm, (frontiers.size() + warp_size - 1) / warp_size);
  (void)block_size;

  uint64_t edges = 0;
  // Per-warp lane state lives in the context arena: one allocation of
  // warp_size per array, reused by every warp of the block.
  util::Arena& arena = ctx.arena();
  arena.Reset();
  std::span<EdgeId> cur = arena.AllocateSpan<EdgeId>(warp_size);
  std::span<EdgeId> stop = arena.AllocateSpan<EdgeId>(warp_size);
  std::span<std::pair<NodeId, EdgeId>> step =
      arena.AllocateSpan<std::pair<NodeId, EdgeId>>(warp_size);
  for (size_t warp_base = 0; warp_base < frontiers.size();
       warp_base += warp_size) {
    size_t lanes = std::min<size_t>(warp_size, frontiers.size() - warp_base);
    // The warp runs until its slowest lane finishes (warp divergence):
    // every step processes at most one edge per still-active lane.
    uint32_t max_deg = 0;
    for (size_t i = 0; i < lanes; ++i) {
      NodeId f = frontiers[warp_base + i];
      cur[i] = csr.NeighborBegin(f);
      stop[i] = csr.NeighborEnd(f);
      max_deg = std::max<uint32_t>(max_deg,
                                   static_cast<uint32_t>(stop[i] - cur[i]));
    }
    for (uint32_t s = 0; s < max_deg; ++s) {
      size_t active = 0;
      for (size_t i = 0; i < lanes; ++i) {
        if (cur[i] < stop[i]) {
          step[active++] = {frontiers[warp_base + i], cur[i]};
          ++cur[i];
        }
      }
      edges += ctx.ProcessScatteredEdges(
          sm,
          std::span<const std::pair<NodeId, EdgeId>>(step.data(), active),
          next);
    }
  }
  return edges;
}

}  // namespace sage::core
