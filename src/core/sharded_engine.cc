#include "core/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "apps/bfs.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "graph/coo.h"
#include "util/bitmap.h"
#include "util/logging.h"

namespace sage::core {

using graph::Csr;
using graph::NodeId;

namespace {

// The registry's FNV-1a construction (apps/registry.cc), re-implemented so
// sharded digests are byte-compatible with apps::OutputDigest without a
// layering dependency on the registry's internals.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
uint64_t HashValue(const T& v, uint64_t h) {
  return HashBytes(&v, sizeof(v), h);
}

// Induced per-shard sub-CSR: full node-id space, but only the adjacency of
// nodes owned by `shard` (targets keep global ids). With sampling_reorder
// off — Validate enforces it — every shard engine's internal ids equal the
// original ids, so frontiers and program accessors use global ids
// throughout.
Csr OwnedSubgraph(const Csr& csr, const std::vector<uint32_t>& part,
                  uint32_t shard) {
  graph::Coo coo;
  coo.num_nodes = csr.num_nodes();
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    if (part[u] != shard) continue;
    for (NodeId v : csr.Neighbors(u)) {
      coo.u.push_back(u);
      coo.v.push_back(v);
    }
  }
  return Csr::FromCoo(coo);
}

EngineOptions EngineOptionsForShard(const ShardOptions& options) {
  EngineOptions opts = options.engine_options;
  // The shard-level pool is the host parallelism; each shard engine runs
  // serially so per-shard results are schedule-invariant.
  opts.host_threads = 1;
  switch (options.strategy) {
    case MultiGpuStrategy::kSage:
      break;  // full SAGE defaults
    case MultiGpuStrategy::kGunrockLike:
    case MultiGpuStrategy::kGrouteLike:
      opts.strategy = ExpandStrategy::kWarpCentric;
      opts.tiled_partitioning = false;
      opts.resident_tiles = false;
      break;
  }
  return opts;
}

/// One delta-compressed bitmap word on the wire: a 32-bit word index plus
/// the 64-bit word itself.
constexpr uint64_t kWordMessageBytes = sizeof(uint32_t) + sizeof(uint64_t);
/// A PageRank contribution on the wire: target node id + increment.
constexpr uint64_t kRankMessageBytes = sizeof(NodeId) + sizeof(double);

}  // namespace

namespace shard_internal {

/// Per-shard MS-BFS program with the solo program's strict
/// level-synchronous semantics (apps/msbfs.cc): a bit is pushed only if
/// the frontier node held it at the start of the level, so the level at
/// which a node gains bit i is its true BFS distance from source i — the
/// property that makes sharded masks and distances bit-identical to solo
/// runs. Discoveries owned by other shards additionally land in an outbox
/// the driver drains after every level.
class MsBfsShardProgram final : public FilterProgram {
 public:
  static constexpr uint32_t kUnreached =
      apps::MultiSourceBfsProgram::kUnreached;

  MsBfsShardProgram(uint32_t shard, const std::vector<uint32_t>* part)
      : shard_(shard), part_(part) {}

  void Bind(Engine* engine) override {
    if (engine_ == engine) return;
    engine_ = engine;
    n_ = engine->csr().num_nodes();
    mask_.assign(n_, 0);
    mask_buf_ = engine->RegisterAttribute("shard.msbfs.mask",
                                          sizeof(uint64_t));
    dist_buf_ = engine->RegisterAttribute("shard.msbfs.dist",
                                          sizeof(uint32_t));
    footprint_ = Footprint();
    footprint_.neighbor_reads = {&mask_buf_};
    footprint_.neighbor_writes = {&mask_buf_, &dist_buf_};
    footprint_.frontier_reads = {&mask_buf_, &dist_buf_};
    footprint_.atomic_neighbor = true;  // atomicOr on the mask
  }

  void Reset(uint32_t num_sources) {
    level_ = 0;
    std::fill(mask_.begin(), mask_.end(), 0);
    dist_.assign(static_cast<size_t>(num_sources) * n_, kUnreached);
    outbox_.clear();
  }

  void Seed(NodeId v, uint32_t instance) {
    mask_[v] |= 1ull << instance;
    dist_[static_cast<size_t>(instance) * n_ + v] = 0;
  }

  /// The driver owns level numbering (BeginIteration is a no-op because
  /// RunOneIteration's internal counter restarts per call).
  void set_level(uint32_t level) { level_ = level; }
  void BeginIteration(uint32_t iteration) override { (void)iteration; }

  bool Filter(NodeId frontier, NodeId neighbor) override {
    uint64_t missing = mask_[frontier] & ~mask_[neighbor];
    if (missing == 0) return false;
    uint64_t held = 0;
    util::ForEachSetBit(missing, [&](uint32_t i) {
      if (dist_[static_cast<size_t>(i) * n_ + frontier] <= level_) {
        held |= 1ull << i;
      }
    });
    if (held == 0) return false;
    mask_[neighbor] |= held;  // atomicOr
    util::ForEachSetBit(held, [&](uint32_t i) {
      dist_[static_cast<size_t>(i) * n_ + neighbor] = level_ + 1;
    });
    if ((*part_)[neighbor] != shard_) outbox_.emplace_back(neighbor, held);
    return true;
  }

  /// Applies remotely discovered bits at the owner; returns the subset
  /// that was actually new (already-held bits were discovered locally or
  /// by an earlier sender and keep their distances).
  uint64_t Inject(NodeId v, uint64_t bits, uint32_t arrival_level) {
    uint64_t fresh = bits & ~mask_[v];
    if (fresh == 0) return 0;
    mask_[v] |= fresh;
    util::ForEachSetBit(fresh, [&](uint32_t i) {
      dist_[static_cast<size_t>(i) * n_ + v] = arrival_level;
    });
    return fresh;
  }

  uint64_t mask(NodeId v) const { return mask_[v]; }
  uint32_t dist(uint32_t instance, NodeId v) const {
    return dist_[static_cast<size_t>(instance) * n_ + v];
  }
  std::vector<std::pair<NodeId, uint64_t>>& outbox() { return outbox_; }

  const Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "shard-msbfs"; }

 private:
  uint32_t shard_;
  const std::vector<uint32_t>* part_;
  Engine* engine_ = nullptr;
  size_t n_ = 0;
  std::vector<uint64_t> mask_;
  std::vector<uint32_t> dist_;  // row-major [instance][node]
  std::vector<std::pair<NodeId, uint64_t>> outbox_;
  sim::Buffer mask_buf_;
  sim::Buffer dist_buf_;
  Footprint footprint_;
  uint32_t level_ = 0;
};

/// Per-shard PageRank program. Unlike the solo PageRankProgram it applies
/// nothing in Filter: every contribution is recorded as (source, target,
/// increment) and the driver applies the union of all shards' records in
/// canonical ascending-(source, target) order. Floating-point addition is
/// not associative, so this single canonical order is what makes ranks
/// bit-identical across shard counts, partitioners, and host threads.
class PrShardProgram final : public FilterProgram {
 public:
  struct Contribution {
    NodeId u;
    NodeId v;
    double inc;
  };

  void Bind(Engine* engine) override {
    if (engine_ == engine) return;
    engine_ = engine;
    in_buf_ = engine->RegisterAttribute("shard.pr.in", sizeof(double));
    out_buf_ = engine->RegisterAttribute("shard.pr.out", sizeof(double));
    outdeg_buf_ = engine->RegisterAttribute("shard.pr.outdeg",
                                            sizeof(uint32_t));
    footprint_ = Footprint();
    footprint_.frontier_reads = {&in_buf_, &outdeg_buf_};
    footprint_.neighbor_writes = {&out_buf_};
    footprint_.atomic_neighbor = true;
  }

  void Configure(const std::vector<double>* pr_in,
                 const std::vector<uint32_t>* outdeg) {
    pr_in_ = pr_in;
    outdeg_ = outdeg;
    outbox_.clear();
  }

  bool Filter(NodeId frontier, NodeId neighbor) override {
    // Exact solo arithmetic (apps/pagerank.cc): multiply, then divide.
    double increment = (*pr_in_)[frontier] * apps::PageRankProgram::kDamping;
    increment /= static_cast<double>((*outdeg_)[frontier]);
    outbox_.push_back({frontier, neighbor, increment});
    return false;  // global traversal: the driver supplies every frontier
  }

  std::vector<Contribution>& outbox() { return outbox_; }

  const Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "shard-pagerank"; }

 private:
  Engine* engine_ = nullptr;
  const std::vector<double>* pr_in_ = nullptr;
  const std::vector<uint32_t>* outdeg_ = nullptr;
  std::vector<Contribution> outbox_;
  sim::Buffer in_buf_;
  sim::Buffer out_buf_;
  sim::Buffer outdeg_buf_;
  Footprint footprint_;
};

}  // namespace shard_internal

struct ShardedEngine::BfsState {
  std::vector<std::unique_ptr<apps::BfsProgram>> programs;
};

struct ShardedEngine::MsBfsState {
  std::vector<std::unique_ptr<shard_internal::MsBfsShardProgram>> programs;
  uint32_t num_sources = 0;
};

struct ShardedEngine::PrState {
  std::vector<std::unique_ptr<shard_internal::PrShardProgram>> programs;
  std::vector<double> pr_in;
  std::vector<double> pr_out;
  std::vector<uint32_t> outdeg;
};

const char* MultiGpuStrategyName(MultiGpuStrategy strategy) {
  switch (strategy) {
    case MultiGpuStrategy::kSage:
      return "sage";
    case MultiGpuStrategy::kGunrockLike:
      return "gunrock";
    case MultiGpuStrategy::kGrouteLike:
      return "groute";
  }
  return "unknown";
}

bool ParseMultiGpuStrategy(const std::string& text, MultiGpuStrategy* out) {
  if (text == "sage") {
    *out = MultiGpuStrategy::kSage;
  } else if (text == "gunrock" || text == "gunrock-like") {
    *out = MultiGpuStrategy::kGunrockLike;
  } else if (text == "groute" || text == "groute-like") {
    *out = MultiGpuStrategy::kGrouteLike;
  } else {
    return false;
  }
  return true;
}

util::Status ShardOptions::Validate() const {
  if (num_shards == 0) {
    return util::Status::InvalidArgument("num_shards must be positive");
  }
  SAGE_RETURN_IF_ERROR(engine_options.Validate());
  if (engine_options.sampling_reorder) {
    return util::Status::InvalidArgument(
        "sampling_reorder renumbers nodes inside a shard; the sharded "
        "frontier exchange requires stable original ids");
  }
  if (engine_options.udt_split_degree > 0) {
    return util::Status::InvalidArgument(
        "udt_split_degree > 0 introduces virtual nodes that the sharded "
        "exchange cannot address; run UDT on a solo engine instead");
  }
  if (partitioner == graph::PartitionerKind::kMetisLike &&
      (num_shards & (num_shards - 1)) != 0) {
    return util::Status::InvalidArgument(
        "the metis-like partitioner requires a power-of-two num_shards; "
        "use the hash or range partitioner for other shard counts");
  }
  return util::Status::OK();
}

ShardedEngine::ShardedEngine(const Csr& csr, const ShardOptions& options,
                             graph::PartitionResult partition)
    : csr_(csr), options_(options), partition_(std::move(partition)) {
  group_ = std::make_unique<sim::DeviceGroup>(options_.spec,
                                              options_.num_shards);
  uint32_t workers =
      options_.host_threads == 0 ? options_.num_shards : options_.host_threads;
  pool_ = std::make_unique<util::ThreadPool>(workers - 1);
  m_payload_bytes_ = metrics_.counter("shard.frontier_bytes_exchanged");
  m_dense_bytes_ = metrics_.counter("shard.frontier_bytes_dense");
  m_wire_bytes_ = metrics_.counter("shard.frontier_bytes_wire");
  m_messages_ = metrics_.counter("shard.messages");
  m_levels_ = metrics_.counter("shard.levels");
  m_link_us_ = metrics_.gauge("shard.link_us");
  m_imbalance_ = metrics_.gauge("shard.imbalance");
  for (uint32_t g = 0; g < options_.num_shards; ++g) {
    m_shard_edges_.push_back(
        metrics_.counter("shard.edges." + std::to_string(g)));
  }
}

ShardedEngine::~ShardedEngine() = default;

util::Status ShardedEngine::BuildShards() {
  EngineOptions opts = EngineOptionsForShard(options_);
  for (uint32_t g = 0; g < options_.num_shards; ++g) {
    auto engine_or = Engine::Create(
        group_->device(g), OwnedSubgraph(csr_, partition_.part, g), opts);
    SAGE_RETURN_IF_ERROR(engine_or.status());
    engines_.push_back(std::move(*engine_or));
  }
  return util::Status::OK();
}

util::StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const Csr& csr, const ShardOptions& options) {
  SAGE_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<graph::Partitioner> partitioner =
      graph::MakePartitioner(options.partitioner, options.partition_seed);
  auto partition_or = partitioner->Partition(csr, options.num_shards);
  SAGE_RETURN_IF_ERROR(partition_or.status());
  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(csr, options, std::move(*partition_or)));
  SAGE_RETURN_IF_ERROR(engine->BuildShards());
  return engine;
}

template <typename Fn>
util::Status ShardedEngine::ForEachShard(Fn&& fn) {
  const uint32_t shards = options_.num_shards;
  std::vector<util::Status> slots(shards);
  pool_->ParallelFor(shards, [&](uint32_t worker, size_t g) {
    (void)worker;
    slots[g] = fn(static_cast<uint32_t>(g));
  });
  // Surface errors in shard order so the reported failure is deterministic
  // regardless of which worker hit it first.
  for (uint32_t g = 0; g < shards; ++g) {
    if (!slots[g].ok()) return slots[g];
  }
  return util::Status::OK();
}

void ShardedEngine::AccountExchange(uint64_t payload_bytes,
                                    uint64_t dense_bytes,
                                    uint64_t message_count,
                                    double compute_seconds,
                                    double* prev_compute,
                                    ShardedRunStats* out) {
  sim::LinkModel::Transfer transfer = group_->Exchange(payload_bytes);
  double comm = group_->SecondsFor(transfer);
  double iter_seconds =
      options_.strategy == MultiGpuStrategy::kGrouteLike
          // Groute-style async overlap: half of the previous level's
          // compute hides link time.
          ? compute_seconds + std::max(0.0, comm - 0.5 * *prev_compute)
          : compute_seconds + comm;
  *prev_compute = compute_seconds;
  out->stats.seconds += iter_seconds;
  out->comm_seconds += comm;
  out->frontier_payload_bytes += transfer.payload_bytes;
  out->frontier_wire_bytes += transfer.wire_bytes;
  out->frontier_dense_bytes += dense_bytes;
  out->messages += message_count;
  m_payload_bytes_->Add(transfer.payload_bytes);
  m_dense_bytes_->Add(dense_bytes);
  m_wire_bytes_->Add(transfer.wire_bytes);
  m_messages_->Add(message_count);
  m_levels_->Add(1);
  m_link_us_->Add(comm * 1e6);
}

namespace {

/// Publishes max-over-mean per-shard compute imbalance (1.0 = perfectly
/// even; empty shards drag the mean down, which is the point).
void PublishImbalance(const std::vector<double>& busy_seconds,
                      util::Gauge* gauge) {
  if (busy_seconds.empty()) return;
  double total = 0.0;
  double max_busy = 0.0;
  for (double s : busy_seconds) {
    total += s;
    max_busy = std::max(max_busy, s);
  }
  double mean = total / static_cast<double>(busy_seconds.size());
  gauge->Set(mean > 0.0 ? max_busy / mean : 1.0);
}

}  // namespace

util::StatusOr<ShardedRunStats> ShardedEngine::Run(
    const std::string& app, const apps::AppParams& params) {
  last_app_ = LastApp::kNone;
  if (app == "bfs") return RunBfs(params);
  if (app == "msbfs" || app == "multi-source-bfs") return RunMsBfs(params);
  if (app == "pagerank") return RunPageRank(params);
  return util::Status::NotFound(
      "app not supported by the sharded engine (bfs, msbfs, pagerank): " +
      app);
}

util::StatusOr<ShardedRunStats> ShardedEngine::RunBfs(
    const apps::AppParams& params) {
  const NodeId n = csr_.num_nodes();
  const uint32_t shards = options_.num_shards;
  if (params.sources.size() != 1) {
    return util::Status::InvalidArgument("bfs takes exactly one source");
  }
  const NodeId source = params.sources[0];
  if (source >= n) {
    return util::Status::InvalidArgument("bfs source out of range");
  }

  // Bind fresh programs BEFORE releasing the previous run's state: with
  // the old programs still alive the new allocations cannot reuse their
  // addresses, so Engine::Bind's warm-rebind shortcut (pointer equality)
  // can never mistake an unbound fresh program for the bound old one.
  auto fresh_bfs = std::make_unique<BfsState>();
  for (uint32_t g = 0; g < shards; ++g) {
    fresh_bfs->programs.push_back(std::make_unique<apps::BfsProgram>());
    SAGE_RETURN_IF_ERROR(engines_[g]->Bind(fresh_bfs->programs[g].get()));
  }
  bfs_ = std::move(fresh_bfs);
  auto& programs = bfs_->programs;
  programs[partition_.part[source]]->SetSource(source);

  std::vector<std::vector<NodeId>> frontiers(shards);
  std::vector<std::vector<NodeId>> nexts(shards);
  std::vector<RunStats> level_stats(shards);
  std::vector<double> busy_seconds(shards, 0.0);
  frontiers[partition_.part[source]].push_back(source);

  ShardedRunStats out;
  out.partition_seconds = partition_.seconds;
  out.edge_cut = partition_.edge_cut;

  // Per-source-shard delta bitmap of foreign discoveries, reused across
  // levels; dest_words tracks which destination shards a word reaches.
  util::Bitmap delta(n);
  std::vector<uint8_t> dest_seen(shards);
  const uint64_t dense_per_pair = util::Bitmap::NumWords(n) * sizeof(uint64_t);

  uint32_t level = 0;
  double prev_compute = 0.0;
  while (true) {
    bool any = false;
    for (const auto& f : frontiers) any |= !f.empty();
    if (!any) break;
    ++level;

    for (uint32_t g = 0; g < shards; ++g) {
      nexts[g].clear();
      level_stats[g] = RunStats();
    }
    SAGE_RETURN_IF_ERROR(ForEachShard([&](uint32_t g) -> util::Status {
      if (frontiers[g].empty()) return util::Status::OK();
      auto stats_or = engines_[g]->RunOneIteration(frontiers[g], &nexts[g]);
      if (!stats_or.ok()) return stats_or.status();
      level_stats[g] = *stats_or;
      return util::Status::OK();
    }));

    double compute_seconds = 0.0;
    for (uint32_t g = 0; g < shards; ++g) {
      compute_seconds = std::max(compute_seconds, level_stats[g].seconds);
      busy_seconds[g] += level_stats[g].seconds;
      out.stats.edges_traversed += level_stats[g].edges_traversed;
      out.stats.frontier_nodes += frontiers[g].size();
      m_shard_edges_[g]->Add(level_stats[g].edges_traversed);
    }

    // Exchange: owned discoveries stay, foreign ones travel per
    // destination shard in whichever encoding is cheapest this level —
    // the self-adaptive part of the protocol. A sparse frontier ships raw
    // node ids, a clustered one ships delta bitmap words, and a dense one
    // falls back to the full per-pair bitmap (the encoding can never cost
    // more than the dense baseline it is measured against).
    uint64_t payload = 0;
    uint64_t messages = 0;
    std::vector<std::vector<NodeId>> next_frontiers(shards);
    std::vector<uint64_t> pair_words(shards);
    std::vector<uint64_t> pair_nodes(shards);
    for (uint32_t g = 0; g < shards; ++g) {
      for (NodeId v : nexts[g]) {
        if (partition_.part[v] == g) {
          next_frontiers[g].push_back(v);
        } else {
          delta.Set(v);
        }
      }
      std::fill(pair_words.begin(), pair_words.end(), 0u);
      std::fill(pair_nodes.begin(), pair_nodes.end(), 0u);
      const uint64_t* words = delta.words();
      for (size_t wi = 0; wi < delta.num_words(); ++wi) {
        if (words[wi] == 0) continue;
        std::fill(dest_seen.begin(), dest_seen.end(), 0);
        util::ForEachSetBit(words[wi], [&](uint32_t bit) {
          NodeId v = static_cast<NodeId>((wi << 6) + bit);
          uint32_t owner = partition_.part[v];
          if (dest_seen[owner] == 0) {
            dest_seen[owner] = 1;
            ++pair_words[owner];
          }
          ++pair_nodes[owner];
          ++messages;
          // BFS levels are unique: whoever injects first writes the same
          // distance, so the arrival order cannot change the output.
          if (programs[owner]->DistanceOf(v) == apps::BfsProgram::kUnreached) {
            programs[owner]->SetDistance(v, level);
            next_frontiers[owner].push_back(v);
          }
        });
      }
      for (uint32_t dest = 0; dest < shards; ++dest) {
        if (pair_nodes[dest] == 0) continue;
        payload += std::min({pair_nodes[dest] * sizeof(NodeId),
                             pair_words[dest] * kWordMessageBytes,
                             dense_per_pair});
      }
      delta.ClearAll();
    }
    uint64_t dense = shards > 1 ? static_cast<uint64_t>(shards) *
                                      (shards - 1) * dense_per_pair
                                : 0;
    AccountExchange(payload, dense, messages, compute_seconds, &prev_compute,
                    &out);
    frontiers.swap(next_frontiers);
    ++out.stats.iterations;
  }

  PublishImbalance(busy_seconds, m_imbalance_);
  last_app_ = LastApp::kBfs;
  return out;
}

util::StatusOr<ShardedRunStats> ShardedEngine::RunMsBfs(
    const apps::AppParams& params) {
  const NodeId n = csr_.num_nodes();
  const uint32_t shards = options_.num_shards;
  const size_t num_sources = params.sources.size();
  if (num_sources == 0 ||
      num_sources > apps::MultiSourceBfsProgram::kMaxSources) {
    return util::Status::InvalidArgument("msbfs takes 1..64 sources");
  }
  for (NodeId s : params.sources) {
    if (s >= n) {
      return util::Status::InvalidArgument("msbfs source out of range");
    }
  }

  // Fresh programs bind while the old state is alive (see RunBfs).
  auto fresh_msbfs = std::make_unique<MsBfsState>();
  fresh_msbfs->num_sources = static_cast<uint32_t>(num_sources);
  for (uint32_t g = 0; g < shards; ++g) {
    fresh_msbfs->programs.push_back(
        std::make_unique<shard_internal::MsBfsShardProgram>(
            g, &partition_.part));
    SAGE_RETURN_IF_ERROR(engines_[g]->Bind(fresh_msbfs->programs[g].get()));
    fresh_msbfs->programs[g]->Reset(fresh_msbfs->num_sources);
  }
  msbfs_ = std::move(fresh_msbfs);
  auto& programs = msbfs_->programs;

  std::vector<std::vector<NodeId>> frontiers(shards);
  std::vector<std::vector<NodeId>> nexts(shards);
  std::vector<RunStats> level_stats(shards);
  std::vector<double> busy_seconds(shards, 0.0);
  std::vector<util::Bitmap> in_frontier(shards);
  for (auto& bm : in_frontier) bm.Resize(n);
  for (size_t i = 0; i < num_sources; ++i) {
    NodeId s = params.sources[i];
    uint32_t owner = partition_.part[s];
    programs[owner]->Seed(s, static_cast<uint32_t>(i));
    if (!in_frontier[owner].TestAndSet(s)) frontiers[owner].push_back(s);
  }

  ShardedRunStats out;
  out.partition_seconds = partition_.seconds;
  out.edge_cut = partition_.edge_cut;

  uint32_t level = 0;
  double prev_compute = 0.0;
  while (true) {
    bool any = false;
    for (const auto& f : frontiers) any |= !f.empty();
    if (!any) break;

    for (uint32_t g = 0; g < shards; ++g) {
      nexts[g].clear();
      level_stats[g] = RunStats();
      programs[g]->set_level(level);
      in_frontier[g].ClearAll();
    }
    SAGE_RETURN_IF_ERROR(ForEachShard([&](uint32_t g) -> util::Status {
      if (frontiers[g].empty()) return util::Status::OK();
      auto stats_or = engines_[g]->RunOneIteration(frontiers[g], &nexts[g]);
      if (!stats_or.ok()) return stats_or.status();
      level_stats[g] = *stats_or;
      return util::Status::OK();
    }));

    double compute_seconds = 0.0;
    for (uint32_t g = 0; g < shards; ++g) {
      compute_seconds = std::max(compute_seconds, level_stats[g].seconds);
      busy_seconds[g] += level_stats[g].seconds;
      out.stats.edges_traversed += level_stats[g].edges_traversed;
      out.stats.frontier_nodes += frontiers[g].size();
      m_shard_edges_[g]->Add(level_stats[g].edges_traversed);
    }

    // Locally owned gains re-enter their shard's frontier (deduped: a node
    // can gain bits from several frontier neighbors in one level).
    std::vector<std::vector<NodeId>> next_frontiers(shards);
    for (uint32_t g = 0; g < shards; ++g) {
      for (NodeId v : nexts[g]) {
        if (partition_.part[v] != g) continue;  // travels via the outbox
        if (!in_frontier[g].TestAndSet(v)) next_frontiers[g].push_back(v);
      }
    }

    // Exchange: merged (node -> new bits) records per source shard. The
    // encoding adapts per destination exactly as for BFS: delta bitmap
    // words plus one 64-bit instance mask per discovered node when the
    // frontier clusters, raw (node id, mask) pairs when it is sparse, and
    // the dense per-pair mask array as the ceiling.
    uint64_t payload = 0;
    uint64_t messages = 0;
    const uint64_t dense_masks_per_pair =
        static_cast<uint64_t>(n) * sizeof(uint64_t);
    std::vector<uint64_t> pair_delta(shards);
    std::vector<uint64_t> pair_nodes(shards);
    for (uint32_t g = 0; g < shards; ++g) {
      auto& outbox = programs[g]->outbox();
      if (outbox.empty()) continue;
      std::sort(outbox.begin(), outbox.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<uint64_t> last_word(shards, ~uint64_t{0});
      std::fill(pair_delta.begin(), pair_delta.end(), 0u);
      std::fill(pair_nodes.begin(), pair_nodes.end(), 0u);
      NodeId prev_node = graph::kInvalidNode;
      for (auto& [v, bits] : outbox) {
        uint32_t owner = partition_.part[v];
        uint64_t word = v >> 6;
        if (v != prev_node) {
          if (last_word[owner] != word) {
            pair_delta[owner] += kWordMessageBytes;
            last_word[owner] = word;
          }
          pair_delta[owner] += sizeof(uint64_t);  // the node's instance mask
          ++pair_nodes[owner];
          ++messages;
          prev_node = v;
        }
        uint64_t fresh = programs[owner]->Inject(v, bits, level + 1);
        if (fresh != 0 && !in_frontier[owner].TestAndSet(v)) {
          next_frontiers[owner].push_back(v);
        }
      }
      for (uint32_t dest = 0; dest < shards; ++dest) {
        if (pair_nodes[dest] == 0) continue;
        payload += std::min(
            {pair_delta[dest],
             pair_nodes[dest] * (sizeof(NodeId) + sizeof(uint64_t)),
             dense_masks_per_pair});
      }
      outbox.clear();
    }
    uint64_t dense = shards > 1
                         ? static_cast<uint64_t>(shards) * (shards - 1) *
                               static_cast<uint64_t>(n) * sizeof(uint64_t)
                         : 0;
    AccountExchange(payload, dense, messages, compute_seconds, &prev_compute,
                    &out);
    frontiers.swap(next_frontiers);
    ++out.stats.iterations;
    ++level;
  }

  PublishImbalance(busy_seconds, m_imbalance_);
  last_app_ = LastApp::kMsBfs;
  return out;
}

util::StatusOr<ShardedRunStats> ShardedEngine::RunPageRank(
    const apps::AppParams& params) {
  const NodeId n = csr_.num_nodes();
  const uint32_t shards = options_.num_shards;

  // Fresh programs bind while the old state is alive (see RunBfs).
  auto fresh_pr = std::make_unique<PrState>();
  fresh_pr->pr_in.assign(n, 1.0 / std::max<size_t>(n, 1));
  fresh_pr->pr_out.assign(n, 0.0);
  fresh_pr->outdeg.resize(n);
  for (NodeId v = 0; v < n; ++v) fresh_pr->outdeg[v] = csr_.OutDegree(v);
  std::vector<std::vector<NodeId>> owned(shards);
  for (NodeId v = 0; v < n; ++v) owned[partition_.part[v]].push_back(v);
  for (uint32_t g = 0; g < shards; ++g) {
    fresh_pr->programs.push_back(
        std::make_unique<shard_internal::PrShardProgram>());
    SAGE_RETURN_IF_ERROR(engines_[g]->Bind(fresh_pr->programs[g].get()));
    fresh_pr->programs[g]->Configure(&fresh_pr->pr_in, &fresh_pr->outdeg);
  }
  pr_ = std::move(fresh_pr);
  auto& programs = pr_->programs;

  ShardedRunStats out;
  out.partition_seconds = partition_.seconds;
  out.edge_cut = partition_.edge_cut;

  std::vector<RunStats> level_stats(shards);
  std::vector<double> busy_seconds(shards, 0.0);
  std::vector<shard_internal::PrShardProgram::Contribution> all;
  const double base = (1.0 - apps::PageRankProgram::kDamping) /
                      std::max<size_t>(n, 1);
  double prev_compute = 0.0;
  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    for (uint32_t g = 0; g < shards; ++g) level_stats[g] = RunStats();
    SAGE_RETURN_IF_ERROR(ForEachShard([&](uint32_t g) -> util::Status {
      if (owned[g].empty()) return util::Status::OK();
      auto stats_or = engines_[g]->RunOneIteration(owned[g], nullptr);
      if (!stats_or.ok()) return stats_or.status();
      level_stats[g] = *stats_or;
      return util::Status::OK();
    }));

    double compute_seconds = 0.0;
    for (uint32_t g = 0; g < shards; ++g) {
      compute_seconds = std::max(compute_seconds, level_stats[g].seconds);
      busy_seconds[g] += level_stats[g].seconds;
      out.stats.edges_traversed += level_stats[g].edges_traversed;
      out.stats.frontier_nodes += owned[g].size();
      m_shard_edges_[g]->Add(level_stats[g].edges_traversed);
    }

    // Canonical fold: every contribution — local and remote alike — is
    // applied in ascending (source, target) order. Each source is owned by
    // exactly one shard and its increment is a pure function of the
    // previous iteration's rank vector, so the contribution multiset is
    // identical for every K / partitioner / thread count, and therefore so
    // is the floating-point summation order. Only the cross-shard subset
    // is charged to the link.
    uint64_t foreign = 0;
    all.clear();
    for (uint32_t g = 0; g < shards; ++g) {
      auto& outbox = programs[g]->outbox();
      for (const auto& c : outbox) {
        if (partition_.part[c.v] != g) ++foreign;
        all.push_back(c);
      }
      outbox.clear();
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    for (const auto& c : all) pr_->pr_out[c.v] += c.inc;

    uint64_t dense = shards > 1
                         ? static_cast<uint64_t>(shards) * (shards - 1) *
                               static_cast<uint64_t>(n) * sizeof(double)
                         : 0;
    AccountExchange(foreign * kRankMessageBytes, dense, foreign,
                    compute_seconds, &prev_compute, &out);

    for (NodeId v = 0; v < n; ++v) {
      pr_->pr_in[v] = base + pr_->pr_out[v];
      pr_->pr_out[v] = 0.0;
    }
    ++out.stats.iterations;
  }

  PublishImbalance(busy_seconds, m_imbalance_);
  last_app_ = LastApp::kPageRank;
  return out;
}

uint32_t ShardedEngine::DistanceOf(NodeId v) const {
  SAGE_CHECK(last_app_ == LastApp::kBfs) << "DistanceOf: last run was not bfs";
  return bfs_->programs[partition_.part[v]]->DistanceOf(v);
}

double ShardedEngine::RankOf(NodeId v) const {
  SAGE_CHECK(last_app_ == LastApp::kPageRank)
      << "RankOf: last run was not pagerank";
  return pr_->pr_in[v];
}

bool ShardedEngine::Reached(uint32_t source_index, NodeId v) const {
  SAGE_CHECK(last_app_ == LastApp::kMsBfs)
      << "Reached: last run was not msbfs";
  return (msbfs_->programs[partition_.part[v]]->mask(v) >> source_index) & 1;
}

uint32_t ShardedEngine::MsBfsDistanceOf(uint32_t source_index,
                                        NodeId v) const {
  SAGE_CHECK(last_app_ == LastApp::kMsBfs)
      << "MsBfsDistanceOf: last run was not msbfs";
  SAGE_CHECK(source_index < msbfs_->num_sources);
  return msbfs_->programs[partition_.part[v]]->dist(source_index, v);
}

uint64_t ShardedEngine::OutputDigest() const {
  const NodeId n = csr_.num_nodes();
  uint64_t h = kFnvOffset;
  switch (last_app_) {
    case LastApp::kNone:
      return 0;
    case LastApp::kBfs:
      for (NodeId v = 0; v < n; ++v) h = HashValue(DistanceOf(v), h);
      return h;
    case LastApp::kPageRank:
      for (NodeId v = 0; v < n; ++v) h = HashValue(RankOf(v), h);
      return h;
    case LastApp::kMsBfs:
      for (NodeId v = 0; v < n; ++v) {
        uint64_t mask = 0;
        for (uint32_t i = 0; i < msbfs_->num_sources; ++i) {
          if (Reached(i, v)) mask |= 1ull << i;
        }
        h = HashValue(mask, h);
      }
      return h;
  }
  return 0;
}

uint64_t ShardedEngine::InstanceDigest(uint32_t source_index) const {
  SAGE_CHECK(last_app_ == LastApp::kMsBfs)
      << "InstanceDigest: last run was not msbfs";
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < csr_.num_nodes(); ++v) {
    h = HashValue(MsBfsDistanceOf(source_index, v), h);
  }
  return h;
}

}  // namespace sage::core
