#ifndef SAGE_CORE_EXPAND_H_
#define SAGE_CORE_EXPAND_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/filter.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "sim/gpu_device.h"
#include "util/arena.h"

namespace sage::core {

/// Observer of concurrent tile accesses in the filtering step; the hook
/// Sampling-based Reordering uses to collect its locality statistics
/// (Algorithm 4 runs "along with the tile access").
class TileAccessObserver {
 public:
  virtual ~TileAccessObserver() = default;

  /// One tile access: the internal ids of the neighbors a tile<m> read
  /// concurrently. `sm` is where the access executed (sampling cost is
  /// charged there).
  virtual void ObserveTileAccess(std::span<const graph::NodeId> neighbors,
                                 uint32_t sm) = 0;
};

/// Instruction-cost constants of the expansion machinery (in issued warp
/// instructions). These model code the real kernels would execute; the
/// election/partition costs are the Tiled Partitioning overhead of Table 3.
struct ExpandCosts {
  static constexpr uint32_t kEdgeInstr = 6;       ///< filter body per edge
  static constexpr uint32_t kElectionOps = 6;     ///< any+elect+shfl per election
  static constexpr uint32_t kChunkLoopOps = 3;    ///< gather-loop bookkeeping
  static constexpr uint32_t kPartitionOps = 4;    ///< cg::partition per level
  static constexpr uint32_t kScanOps = 12;        ///< scan-based fragment gather
  static constexpr uint32_t kQueuePopOps = 4;     ///< resident-tile queue pop
};

/// One edge whose filtering step was postponed: the parallel backend's
/// workers may not call FilterProgram::Filter (it mutates shared app state),
/// so they record (frontier, neighbor) pairs and the engine commits them
/// serially in canonical unit order — the exact call sequence serial
/// execution would have made.
struct DeferredEdge {
  graph::NodeId frontier;
  graph::NodeId neighbor;
};

/// Shared charging + functional-execution context for one expansion kernel.
/// Both the SAGE engine and the PGP baselines express their scheduling
/// strategies through this context, so all of them face the same memory
/// system and cost model (DESIGN.md §1: isolating the scheduling variable).
class ExpandContext {
 public:
  ExpandContext(sim::GpuDevice* device, const graph::Csr* csr,
                const sim::Buffer* v_buf, const sim::Buffer* offsets_buf);

  void set_filter(FilterProgram* filter) {
    filter_ = filter;
    footprint_ = &filter->footprint();
  }
  void set_observer(TileAccessObserver* observer) { observer_ = observer; }

  /// Trace mode: append filter inputs to *deferred instead of running the
  /// filter program (nullptr restores immediate filtering). While set, the
  /// `next` arguments of Process* are ignored.
  void set_deferred_edges(std::vector<DeferredEdge>* deferred) {
    deferred_ = deferred;
  }

  /// Installs a virtual→real frontier-id translation (Tigr's UDT layer):
  /// adjacency ranges come from virtual ids, while the filter program and
  /// frontier-side attribute accesses see real ids. Each translation
  /// charges a read of `map_buf`.
  void set_frontier_map(const std::vector<graph::NodeId>* map,
                        const sim::Buffer* map_buf) {
    frontier_map_ = map;
    frontier_map_buf_ = map_buf;
  }

  sim::GpuDevice* device() { return device_; }
  const graph::Csr& csr() const { return *csr_; }

  /// Per-context scratch arena for the block executors (ExpandBlockTiled /
  /// ExpandBlockScalar lane state, fragment lists). Each executor call
  /// Reset()s it and bump-allocates its spans, so steady-state expansion
  /// allocates nothing after warmup. Copied contexts (the per-worker
  /// clones) start with their own empty arena.
  util::Arena& arena() { return arena_; }
  const util::Arena& arena() const { return arena_; }

  /// Processes one tile<m> access: the tile reads csr.v[gather, gather+m)
  /// (neighbors of `frontier`), runs the filtering step on every neighbor,
  /// and appends passing neighbors to `next`. Charges: coalesced adjacency
  /// read, per-footprint attribute batches, filter instructions, atomic
  /// conflicts. Returns edges processed (== m).
  uint64_t ProcessTileChunk(uint32_t sm, graph::NodeId frontier,
                            graph::EdgeId gather, uint32_t m,
                            std::vector<graph::NodeId>* next);

  /// Processes scattered single edges — the fragment / per-thread path.
  /// Each element is (frontier, edge index into csr.v). Charged as one
  /// scattered adjacency batch plus scattered attribute batches.
  uint64_t ProcessScatteredEdges(
      uint32_t sm,
      std::span<const std::pair<graph::NodeId, graph::EdgeId>> edges,
      std::vector<graph::NodeId>* next);

  /// Charges a block's reads of its frontier slice and the corresponding
  /// u_offsets entries.
  void ChargeBlockFrontierReads(uint32_t sm, const sim::Buffer* frontier_buf,
                                uint64_t frontier_base,
                                std::span<const graph::NodeId> frontiers);

  /// Charges writing the contracted next-frontier array, spread over SMs.
  void ChargeContraction(const sim::Buffer* frontier_buf, uint64_t size);

 private:
  sim::GpuDevice* device_;
  const graph::Csr* csr_;
  const sim::Buffer* v_buf_;
  const sim::Buffer* offsets_buf_;
  FilterProgram* filter_ = nullptr;
  const Footprint* footprint_ = nullptr;
  TileAccessObserver* observer_ = nullptr;
  const std::vector<graph::NodeId>* frontier_map_ = nullptr;
  const sim::Buffer* frontier_map_buf_ = nullptr;
  std::vector<DeferredEdge>* deferred_ = nullptr;
  // Reused scratch to avoid per-chunk allocation.
  std::vector<uint64_t> idx_scratch_;
  std::vector<uint64_t> midx_scratch_;
  std::vector<graph::NodeId> nbr_scratch_;
  std::vector<graph::NodeId> sorted_scratch_;
  util::Arena arena_;
};

/// Options for the Algorithm 2 executor.
struct TiledOptions {
  uint32_t block_size = 256;
  uint32_t min_tile_size = 8;
  /// Align collaborative chunks to memory-sector boundaries (Section 5.3's
  /// tile alignment strategy).
  bool tile_alignment = true;
};

/// Executes Algorithm 2 — Load Reallocation by Tiled Partitions — for one
/// block of frontier nodes on SM `sm`: leader elections at every tile size
/// from the block down to min_tile_size (binary cg::partition), then
/// scan-based fragment gathering for the sub-minimum remainders.
/// Returns edges processed.
uint64_t ExpandBlockTiled(ExpandContext& ctx, uint32_t sm,
                          std::span<const graph::NodeId> frontiers,
                          const TiledOptions& options,
                          std::vector<graph::NodeId>* next);

/// Baseline expansion without load reallocation: each lane serially walks
/// its own adjacency; a warp advances in lock step, so its cost is driven
/// by the maximum degree among its 32 lanes (warp divergence).
uint64_t ExpandBlockScalar(ExpandContext& ctx, uint32_t sm,
                           std::span<const graph::NodeId> frontiers,
                           uint32_t block_size, uint32_t warp_size,
                           std::vector<graph::NodeId>* next);

}  // namespace sage::core

#endif  // SAGE_CORE_EXPAND_H_
