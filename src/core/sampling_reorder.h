#ifndef SAGE_CORE_SAMPLING_REORDER_H_
#define SAGE_CORE_SAMPLING_REORDER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/expand.h"
#include "graph/types.h"
#include "sim/gpu_device.h"

namespace sage::core {

/// Sampling-based Reordering (Section 6, Algorithm 4): a lightweight,
/// on-the-fly node relabeling that raises intra-tile sector locality.
/// Because computing the optimal permutation is NP-hard (Theorem 6.1), SAGE
/// samples the *actual* tile accesses of the running workload and proceeds
/// in rounds of three stages:
///
///   Stage 1 — measure each node's current locality: how many intra-tile
///             co-accessed neighbors share its memory sector.
///   Stage 2 — binary-search a candidate sector for each node: repeatedly
///             sample which half of the shrinking id interval holds more of
///             the node's co-accessed neighbors.
///   Stage 3 — measure the locality the candidate index would achieve;
///             nodes whose locality improves adopt the candidate.
///
/// A stage advances after `threshold_edges` sampled edges (the paper uses
/// |E|). After Stage 3 the expected-index array is sorted (segmented radix
/// sort — the bb_segsort stand-in) into a permutation the engine applies.
class SamplingReorderer : public TileAccessObserver {
 public:
  struct Options {
    /// Edges sampled per stage before advancing; 0 → use |E|.
    uint64_t threshold_edges = 0;
    /// Observations required before one binary-search halving in Stage 2.
    uint32_t min_observations_per_step = 4;
  };

  SamplingReorderer(graph::NodeId num_nodes, uint64_t num_edges,
                    uint32_t values_per_sector, sim::GpuDevice* device,
                    const Options& options);

  /// TileAccessObserver: samples one concurrent tile access. Charges the
  /// (cheap, shared-memory) counting cost to `sm`.
  void ObserveTileAccess(std::span<const graph::NodeId> neighbors,
                         uint32_t sm) override;

  /// If a full round (Stages 1-3) has completed since the last call,
  /// returns the permutation (new_of_old) to apply and resets for the next
  /// round. The engine calls this between traversal iterations.
  std::optional<std::vector<graph::NodeId>> MaybeTakePermutation();

  /// Current stage (1, 2 or 3) — exposed for tests and reports.
  int stage() const { return stage_; }
  uint32_t rounds_completed() const { return rounds_completed_; }
  uint64_t sampled_edges_in_stage() const { return sampled_in_stage_; }

 private:
  void BuildSectorCounts(std::span<const graph::NodeId> neighbors);
  void SampleStage1(std::span<const graph::NodeId> neighbors);
  void SampleStage2(std::span<const graph::NodeId> neighbors);
  void SampleStage3(std::span<const graph::NodeId> neighbors);
  void AdvanceStage();
  void FinishStage2();
  std::vector<graph::NodeId> BuildPermutation();
  void ResetRound();

  uint32_t SectorOf(graph::NodeId id) const { return id / values_per_sector_; }

  graph::NodeId num_nodes_;
  uint64_t threshold_;
  uint32_t values_per_sector_;
  sim::GpuDevice* device_;
  Options options_;

  int stage_ = 1;
  uint64_t sampled_in_stage_ = 0;
  uint32_t rounds_completed_ = 0;
  std::optional<std::vector<graph::NodeId>> pending_;

  // Stage 1 / 3 locality tallies.
  std::vector<uint32_t> locality1_;
  std::vector<uint32_t> locality3_;
  // Stage 2 binary-search state per node.
  std::vector<graph::NodeId> lo_;
  std::vector<graph::NodeId> hi_;
  std::vector<uint32_t> left_count_;
  std::vector<uint32_t> right_count_;
  std::vector<uint32_t> observations_;
  std::vector<graph::NodeId> candidate_;

  // Scratch reused per tile access.
  std::vector<graph::NodeId> sorted_ids_;
  std::vector<std::pair<uint32_t, uint32_t>> sector_counts_;
};

}  // namespace sage::core

#endif  // SAGE_CORE_SAMPLING_REORDER_H_
