#include "core/resident.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::core {

using graph::EdgeId;
using graph::NodeId;

ResidentTileStore::ResidentTileStore(NodeId num_nodes)
    : present_(num_nodes), head_(num_nodes, -1), count_(num_nodes, 0) {}

uint64_t ResidentTileStore::Put(NodeId u, std::span<const TileEntry> entries) {
  SAGE_DCHECK(!Has(u));
  uint64_t at = pool_.size();
  present_.Set(u);
  head_[u] = static_cast<int64_t>(at);
  count_[u] = static_cast<uint32_t>(entries.size());
  pool_.insert(pool_.end(), entries.begin(), entries.end());
  return at;
}

void ResidentTileStore::Invalidate() {
  // head_/count_ are left stale on purpose: Has() consults the bitmap, and
  // Put rewrites both entries before the bit is ever set again.
  present_.ClearAll();
  pool_.clear();
}

void DecomposeAdjacency(NodeId node, EdgeId begin, uint32_t degree,
                        const TiledOptions& options,
                        uint32_t values_per_sector,
                        std::vector<TileEntry>* out) {
  EdgeId g = begin;
  uint32_t remaining = degree;

  if (options.tile_alignment && remaining >= options.min_tile_size) {
    uint32_t mis = static_cast<uint32_t>(g % values_per_sector);
    if (mis != 0) {
      uint32_t prefix = values_per_sector - mis;
      if (prefix < remaining) {
        out->push_back(TileEntry{node, g, prefix});
        g += prefix;
        remaining -= prefix;
      }
    }
  }

  for (uint32_t size = options.block_size; size >= options.min_tile_size;
       size /= 2) {
    while (remaining >= size) {
      out->push_back(TileEntry{node, g, size});
      g += size;
      remaining -= size;
    }
    if (size == 1) break;  // guard against min_tile_size == 1
  }
  if (remaining > 0) {
    // Fragment record: consumed by the scan-based gather path.
    out->push_back(TileEntry{node, g, remaining});
  }
}

}  // namespace sage::core
