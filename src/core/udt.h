#ifndef SAGE_CORE_UDT_H_
#define SAGE_CORE_UDT_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace sage::core {

/// Tigr's Uniform-Degree Tree transformation (Sabet et al., ASPLOS'18;
/// Section 5.3 of the SAGE paper): nodes whose out-degree exceeds a fixed
/// cutpoint are split into virtual nodes of at most `split_degree`
/// out-edges each. The transformed graph is regular, which suits simple
/// per-thread/per-warp mapping — at the price of a preprocessing pass,
/// auxiliary structures, and an extra virtual→real indirection per access.
///
/// Virtual ids of one real node are contiguous: [group_offsets[u],
/// group_offsets[u+1]). Edges of the virtual graph point at *real* target
/// ids, so filter programs keep operating on real-node attributes.
struct UdtLayout {
  graph::Csr virtual_csr;                    ///< virtual source adjacency
  std::vector<graph::NodeId> real_of_virtual;///< virtual id -> real id
  std::vector<graph::EdgeId> group_offsets;  ///< real id -> virtual id range
  graph::NodeId real_nodes = 0;
  uint32_t split_degree = 0;

  graph::NodeId virtual_nodes() const { return virtual_csr.num_nodes(); }
};

/// Builds the UDT layout. split_degree must be >= 1.
UdtLayout BuildUdt(const graph::Csr& csr, uint32_t split_degree);

}  // namespace sage::core

#endif  // SAGE_CORE_UDT_H_
