#ifndef SAGE_CORE_GUARD_H_
#define SAGE_CORE_GUARD_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace sage::core {

/// Cooperative cancellation: the owner calls Cancel(), the engine checks
/// cancelled() at iteration boundaries and returns kAborted. Relaxed
/// atomics suffice — cancellation is a latency hint, not a synchronization
/// edge (the engine publishes nothing the canceller reads).
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A resumable snapshot of an iterative run, taken at an iteration
/// boundary: the next iteration's input frontier plus the bound program's
/// serialized state. `digest` seals the whole record — Engine::Resume
/// refuses a checkpoint whose digest no longer matches (storage
/// corruption), returning kCorruption so callers fall back to a full rerun.
struct Checkpoint {
  std::string program_name;   ///< FilterProgram::name() that produced it
  uint32_t iteration = 0;     ///< iterations completed when taken
  uint32_t reorder_rounds = 0;///< internal-id epoch (relabelings applied)
  bool global = false;        ///< RunGlobal-style (frontier is implicit)
  std::vector<graph::NodeId> frontier;  ///< internal ids; empty when global
  std::vector<uint8_t> app_state;       ///< FilterProgram::SaveState bytes
  uint64_t digest = 0;

  /// FNV-1a over every field above (except digest itself).
  uint64_t ComputeDigest() const;
  void Seal() { digest = ComputeDigest(); }
  bool Valid() const { return digest == ComputeDigest(); }
};

/// Where per-iteration checkpoints go. Implementations must copy what they
/// need — the engine reuses its buffers after Save returns.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void Save(const Checkpoint& checkpoint) = 0;
};

/// Keeps only the most recent checkpoint, in memory — what the serving
/// layer uses for retry-with-resume.
class MemoryCheckpointSink : public CheckpointSink {
 public:
  void Save(const Checkpoint& checkpoint) override {
    latest_ = checkpoint;
    has_ = true;
    ++saves_;
  }

  bool has() const { return has_; }
  const Checkpoint& latest() const { return latest_; }
  uint64_t saves() const { return saves_; }
  void Clear() {
    has_ = false;
    latest_ = Checkpoint();
  }

 private:
  Checkpoint latest_;
  bool has_ = false;
  uint64_t saves_ = 0;
};

/// Per-run guard configuration (SageGuard; DESIGN.md §7). All pointers are
/// borrowed and must outlive the run. Default-constructed = unguarded: the
/// engine behaves exactly as before.
struct RunGuard {
  /// Checked at every iteration boundary; cancelled → kAborted.
  const CancellationToken* cancel = nullptr;
  /// Budget in *modeled* GPU seconds (RunStats::seconds); exceeding it at
  /// an iteration boundary → kDeadlineExceeded. 0 = no budget. Modeled
  /// budgets are deterministic — the same run always trips at the same
  /// iteration — which is what fault-replay tests need.
  double deadline_modeled_seconds = 0.0;
  /// Budget in host wall seconds for the whole guarded dispatch; 0 = none.
  /// Wall deadlines are what serving actually enforces per request.
  /// Engine::set_run_guard resolves it to `deadline_wall_until_seconds`
  /// exactly once, so every run under one installation — retries and
  /// checkpoint resumes included — draws down the same end-to-end budget
  /// instead of each attempt getting a fresh one.
  double deadline_wall_seconds = 0.0;
  /// The resolved absolute wall deadline (monotonic-clock seconds); 0 =
  /// none. Normally derived from `deadline_wall_seconds` by set_run_guard;
  /// callers may also pin it directly, which wins over the duration.
  double deadline_wall_until_seconds = 0.0;
  /// Save a checkpoint every `checkpoint_interval` completed iterations
  /// (0 = never). Programs that do not implement SaveState are skipped.
  CheckpointSink* checkpoint_sink = nullptr;
  uint32_t checkpoint_interval = 0;

  bool engaged() const {
    return cancel != nullptr || deadline_modeled_seconds > 0.0 ||
           deadline_wall_seconds > 0.0 || deadline_wall_until_seconds > 0.0 ||
           (checkpoint_sink != nullptr && checkpoint_interval > 0);
  }
};

}  // namespace sage::core

#endif  // SAGE_CORE_GUARD_H_
