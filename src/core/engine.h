#ifndef SAGE_CORE_ENGINE_H_
#define SAGE_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/vet.h"
#include "core/expand.h"
#include "core/filter.h"
#include "core/guard.h"
#include "core/resident.h"
#include "core/sampling_reorder.h"
#include "core/udt.h"
#include "graph/csr.h"
#include "sim/gpu_device.h"
#include "sim/replay.h"
#include "util/bitmap.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sage::check {
class AccessChecker;
}  // namespace sage::check

namespace sage::core {

/// Expansion scheduling strategy. kSage is the paper's contribution
/// (driven by the tiled_partitioning / resident_tiles switches); the other
/// two are the re-implemented baselines of Section 7.1 running on the same
/// simulator and cost model.
enum class ExpandStrategy {
  kSage,
  /// B40C (Merrill et al.): three predefined buckets — block-sized,
  /// warp-sized, and scan-gathered frontiers — with synchronization-based
  /// rescheduling, intra-SM only.
  kB40c,
  /// Gunrock-style per-warp dynamic grouping: each warp cooperatively
  /// walks its frontiers' adjacencies in warp-sized strides.
  kWarpCentric,
};

/// Feature switches of the SAGE engine. The defaults are full SAGE; the
/// ablation study (Figure 10) toggles them incrementally.
struct EngineOptions {
  /// Scheduling strategy; non-kSage values ignore tiled_partitioning /
  /// resident_tiles (which must then be left false/true-compatible).
  ExpandStrategy strategy = ExpandStrategy::kSage;
  /// >0 enables Tigr's UDT preprocessing layer with this split degree
  /// (virtual nodes of bounded out-degree; see core/udt.h). Incompatible
  /// with resident_tiles and sampling_reorder.
  uint32_t udt_split_degree = 0;
  /// Algorithm 2: in-block load reallocation by tiled partitions.
  bool tiled_partitioning = true;
  /// Section 5.2 / Algorithm 3: resident tiles + device-wide stealing.
  /// Requires tiled_partitioning.
  bool resident_tiles = true;
  /// Section 6: sampling-based reordering on the fly.
  bool sampling_reorder = false;
  /// Smallest cooperative-group size (Algorithm 2's MIN_TILE_SIZE).
  uint32_t min_tile_size = 8;
  /// Align tiles with physical memory sectors (Section 5.3).
  bool tile_alignment = true;
  /// Edges sampled per reordering stage; 0 → |E| (the paper's setting).
  uint64_t sampling_threshold_edges = 0;
  /// Out-of-core: keep the adjacency array csr.v in host memory and access
  /// it through the PCIe link (Figure 8's scenario).
  bool adjacency_on_host = false;
  /// SageCache (DESIGN.md §12): cap on resident CSR bytes; 0 = unlimited.
  /// A graph whose CSR exceeds the budget goes out-of-core automatically —
  /// the adjacency array lives host-side and pages over the PCIe link in
  /// tile-aligned merged requests, fronted by the device's HostTileCache
  /// (multi-section LRU with a degree-ranked static pre-fill) sized to the
  /// budget left after the device-resident offsets array. Outputs are
  /// bit-identical to in-core execution (only modeled cost changes);
  /// "cache.*" metrics appear in sim::ExportDeviceMetrics and
  /// Engine::metrics(). Also honoured with adjacency_on_host = true, where
  /// it sizes the cache for the explicitly host-resident adjacency.
  uint64_t memory_budget_bytes = 0;
  /// SageCheck level. Anything above kOff makes the engine own an
  /// AccessChecker and attach it to the device for the engine's lifetime
  /// (see checker()). kOff records nothing — zero hot-path overhead.
  sim::CheckLevel check_level = sim::CheckLevel::kOff;
  /// Non-zero: perturb the dispatch order of independent work units (tile
  /// pops, warp batches, block launches) with this seed. Charges and SM
  /// assignments follow the shuffled schedule, so modeled seconds and L2
  /// behaviour may shift, but algorithm output must not — the determinism
  /// harness (src/check/determinism.h) re-runs traversals under different
  /// seeds and asserts exactly that. 0 = the canonical order.
  uint64_t dispatch_permutation_seed = 0;
  /// Host threads the parallel execution backend may use (DESIGN.md §5):
  /// 0 = auto (hardware concurrency), 1 = legacy serial execution, N > 1 =
  /// a pool of N workers runs each kernel phase's units concurrently. Every
  /// result — outputs, sector counts, cycle totals — is bit-identical to
  /// host_threads = 1; the serial-vs-parallel equivalence harness enforces
  /// it. Engines with a SageCheck level above kOff or sampling_reorder fall
  /// back to serial execution (their observers are order-sensitive).
  uint32_t host_threads = 0;
  /// SageVet pre-flight level applied by Engine::Create (src/check/vet.h):
  /// anything above kOff validates the CSR's structural invariants
  /// (graph::ValidateCsr) before the engine copies it, turning a corrupt
  /// graph into a typed kInvalidArgument instead of downstream UB. Program-
  /// level vetting (footprint analysis, probe runs) needs a program factory
  /// and therefore lives above the engine — check::VetProgram / apps::VetApp
  /// and the QueryService admission path, which all honour this level too.
  /// The legacy Engine constructor skips CSR validation (its callers abort
  /// on bad input anyway); prefer Create.
  check::VetLevel vet_level = check::VetLevel::kStatic;

  /// Checks the switch combination for consistency. Incompatible combos
  /// (udt_split_degree with resident_tiles / sampling_reorder,
  /// resident_tiles without tiled_partitioning, min_tile_size == 0) are
  /// typed kInvalidArgument errors. Engine::Create calls this and
  /// propagates the error; the legacy constructor calls it and aborts on
  /// failure (migration path — prefer Create in new code).
  util::Status Validate() const;
};

/// SAGE: self-adaptive graph traversal. Constructed directly from a CSR —
/// no preprocessing — the engine runs the expansion / filtering /
/// contraction pipeline (Figure 2) with runtime load reallocation,
/// resident-tile work stealing, and optional on-the-fly reordering.
///
/// Node ids: the public API speaks *original* ids; internally the engine
/// may relabel nodes (Sampling-based Reordering). FilterPrograms see
/// internal ids and are notified of relabelings via OnPermutation.
class Engine {
 public:
  /// The preferred way to build an engine: validates the options (see
  /// EngineOptions::Validate) and the device pointer, returning a typed
  /// error instead of aborting. The engine copies the CSR (reordering
  /// mutates the copy; the caller's graph is never touched).
  static util::StatusOr<std::unique_ptr<Engine>> Create(
      sim::GpuDevice* device, graph::Csr csr, const EngineOptions& options);

  /// Legacy direct construction; aborts on invalid options. Delegates the
  /// checking to EngineOptions::Validate so the two paths cannot drift.
  Engine(sim::GpuDevice* device, graph::Csr csr, const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Binds a filter program: the program registers its attribute buffers
  /// and sizes its state. Must be called before Run.
  util::Status Bind(FilterProgram* program);

  /// Registers a per-node attribute array on the simulated device (called
  /// by programs from Bind).
  sim::Buffer RegisterAttribute(const std::string& name, uint32_t elem_bytes);

  /// Registers a per-edge attribute array (parallel to csr.v; e.g. edge
  /// weights). Declared through Footprint::edge_reads, it is charged
  /// coalesced alongside every adjacency gather.
  sim::Buffer RegisterEdgeAttribute(const std::string& name,
                                    uint32_t elem_bytes);

  /// Runs the bound program from the given source nodes (original ids)
  /// until the frontier empties or max_iterations is reached.
  util::StatusOr<RunStats> Run(std::span<const graph::NodeId> sources,
                               uint32_t max_iterations = 0xffffffffu);

  /// Runs `iterations` global-traversal iterations: every node is a
  /// frontier each time (PageRank's pattern; Section 7.2).
  util::StatusOr<RunStats> RunGlobal(uint32_t iterations);

  /// Resumes an interrupted run from a checkpoint (SageGuard). The same
  /// program (by name) must be bound to an engine on the same graph in the
  /// same internal-id epoch (reorder_rounds). Restores the program's state
  /// and continues the loop from the checkpointed iteration with the
  /// checkpointed frontier; `max_iterations` is the run's overall cap (the
  /// same value the interrupted Run/RunGlobal was called with). Returns
  /// kCorruption when the checkpoint's digest no longer matches — callers
  /// fall back to a from-scratch rerun.
  util::StatusOr<RunStats> Resume(const Checkpoint& checkpoint,
                                  uint32_t max_iterations);

  /// Installs the guard applied to subsequent Run/RunGlobal/Resume calls
  /// (cancellation, deadlines, checkpointing — see core/guard.h). Borrowed
  /// pointers inside must outlive the runs. A wall-deadline duration is
  /// resolved to an absolute timestamp here, once, so all runs under this
  /// installation (retries, resumes) share one end-to-end wall budget.
  /// Default RunGuard{} = unguarded.
  void set_run_guard(const RunGuard& guard);
  const RunGuard& run_guard() const { return guard_; }

  /// Runs exactly one iteration over an explicit internal-id frontier
  /// (used by level-driven algorithms like BC's backward phase and by
  /// ShardedEngine's per-level shard steps). Kernel-raised faults surface
  /// here exactly as in Run, so SageGuard injection works per device
  /// inside a group. The next frontier produced by the filter is returned
  /// through next (optional).
  util::StatusOr<RunStats> RunOneIteration(
      std::span<const graph::NodeId> frontier_internal,
      std::vector<graph::NodeId>* next);

  /// Id mapping between the caller's original ids and the engine's current
  /// internal ids. Out-of-range ids are a caller bug and abort with a
  /// diagnostic rather than indexing out of bounds.
  graph::NodeId InternalId(graph::NodeId original) const {
    SAGE_CHECK(original < orig_to_int_.size())
        << "InternalId: original node id " << original
        << " out of range [0, " << orig_to_int_.size() << ")";
    return orig_to_int_[original];
  }
  graph::NodeId OriginalId(graph::NodeId internal) const {
    SAGE_CHECK(internal < int_to_orig_.size())
        << "OriginalId: internal node id " << internal
        << " out of range [0, " << int_to_orig_.size() << ")";
    return int_to_orig_[internal];
  }

  /// The engine-owned SageCheck instance, or nullptr when
  /// options.check_level == kOff.
  const check::AccessChecker* checker() const { return checker_.get(); }

  const graph::Csr& csr() const { return csr_; }
  sim::GpuDevice* device() { return device_; }
  const EngineOptions& options() const { return options_; }

  /// The currently bound program (nullptr before the first Bind). Engines
  /// are designed for reuse: a warm engine may Run many times and Bind
  /// different programs between runs (each program's buffers stay
  /// registered); serving pools rely on this to keep engines hot.
  FilterProgram* bound_program() const { return program_; }

  /// Streams per-iteration RunStats into `trace` (appended as iterations
  /// execute; pass nullptr to disable). Useful for convergence plots and
  /// per-level analysis.
  void set_iteration_trace(std::vector<RunStats>* trace) { trace_ = trace; }

  /// Temporarily stops tile-access sampling (checkpoint measurements in
  /// benchmarks measure the *current* order without mid-run stage churn).
  void PauseSampling();
  void ResumeSampling();

  uint32_t reorder_rounds() const {
    return sampler_ ? sampler_->rounds_completed() : 0;
  }
  double reorder_seconds_total() const { return reorder_seconds_total_; }
  const ResidentTileStore& tile_store() const { return store_; }

  /// The UDT layout when udt_split_degree > 0 (Tigr baseline), else null.
  const UdtLayout* udt() const { return udt_.get(); }

  /// SageScope metrics for this engine (DESIGN.md §8): run/iteration/edge
  /// counters plus a per-iteration traversed-edges histogram, all updated at
  /// iteration boundaries on the main thread. Every value is a modeled
  /// quantity, so snapshots are bit-identical between host_threads = 1 and
  /// N runs of the same work.
  const util::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// A stage body processes the unit at canonical rank `rank`, charging to
  /// `ctx`'s device and appending passing neighbors to `next` (serial) or
  /// deferring them (parallel, `next` == nullptr). Must be rank-pure: its
  /// charges and filter inputs may depend only on the rank, pre-stage
  /// engine state, and read-only shared data — never on other units.
  using StageBody =
      std::function<uint64_t(ExpandContext&, size_t, std::vector<graph::NodeId>*)>;

  /// Shared Run/RunGlobal/Resume loop body. `global` loops all-nodes
  /// iterations (frontier is the full node list and is not swapped);
  /// otherwise frontier-driven until empty. Guard checks, fault surfacing,
  /// and checkpointing all happen here, at iteration boundaries on the main
  /// thread — identical in serial and parallel execution modes.
  util::StatusOr<RunStats> RunLoop(std::vector<graph::NodeId> frontier,
                                   uint32_t start_iteration,
                                   uint32_t max_iterations, bool global);
  /// Cancellation/deadline check at an iteration boundary.
  util::Status CheckGuard(const RunStats& total, uint32_t iteration) const;
  /// Iteration counter across RunOneIteration calls (fault attribution).
  uint32_t one_iteration_seq_ = 0;
  /// Saves a checkpoint if the guard asks for one at this boundary.
  void MaybeCheckpoint(uint32_t iterations_completed,
                       const std::vector<graph::NodeId>& frontier,
                       bool global);

  RunStats ExpandIteration(const std::vector<graph::NodeId>& frontier,
                           std::vector<graph::NodeId>* next);
  uint64_t ExpandResident(const std::vector<graph::NodeId>& frontier,
                          std::vector<graph::NodeId>* next);
  uint64_t ExpandB40c(const std::vector<graph::NodeId>& frontier,
                      std::vector<graph::NodeId>* next);
  uint64_t ExpandWarpCentric(const std::vector<graph::NodeId>& frontier,
                             std::vector<graph::NodeId>* next);
  void MaybeApplyReordering(std::vector<graph::NodeId>* live_frontier,
                            RunStats* stats);
  void ChargeReorderUpdateKernel(RunStats* stats);

  /// Publishes host-side performance metrics (util.arena.bytes_reused,
  /// sim.replay.slice_us) into metrics_. Called at run boundaries on the
  /// main thread. These are wall-clock / allocator quantities — never part
  /// of modeled results, digests, or the serial-vs-parallel bit-identity
  /// contract (which only covers device exports and modeled counters).
  /// Out-of-core engines additionally mirror the (modeled, deterministic)
  /// SageCache stats here.
  void PublishHostPerfMetrics();

  /// SageCache static pre-fill: walks `g`'s nodes in (degree desc, id asc)
  /// order, admitting their adjacency tiles in `vbuf` into the device tile
  /// cache's protected section until it is full, then charges the whole
  /// pre-fill as one bulk host transfer of synchronous pipeline seconds.
  void PrefillTileCache(const graph::Csr& g, const sim::Buffer& vbuf);

  /// True when stages may run on the thread pool: a pool exists and no
  /// order-sensitive observer (SageCheck sink, sampling reorderer) is
  /// attached.
  bool ParallelEligible() const;
  /// Sizes the per-worker contexts/recorders on first parallel use.
  void EnsureWorkers();
  /// Runs `num_units` independent units through `body`. Serial mode calls
  /// body(ctx_, rank, next) in rank order — the legacy execution. Parallel
  /// mode fans ranks out over the pool into per-worker recorders, replays
  /// the traces in rank order (bit-identical charging), then commits the
  /// deferred filter calls in rank order. Returns total edges processed.
  uint64_t RunStage(size_t num_units, const StageBody& body,
                    std::vector<graph::NodeId>* next);
  /// Deterministic pre-dispatch cost estimates for the Phase B scheduler
  /// (any pure function works; these roughly track the cost model).
  double TileUnitCost(uint64_t edges) const;
  /// Greedy deterministic schedule: seeds per-SM loads from the device's
  /// current busy proxies, then assigns unit rank r (cost costs[r]) to the
  /// argmin-load SM. Fills unit_sms_. Replaces LeastLoadedSm on the
  /// traversal hot path — the pop outcome no longer depends on L2 state,
  /// so serial and parallel modes compute the identical schedule.
  void ScheduleUnits(const std::vector<double>& costs);

  sim::GpuDevice* device_;
  graph::Csr csr_;
  EngineOptions options_;
  TiledOptions tiled_options_;

  sim::Buffer offsets_buf_;
  sim::Buffer v_buf_;
  sim::Buffer frontier_buf_[2];
  sim::Buffer head_buf_;
  sim::Buffer pool_buf_;
  sim::Buffer tile_array_buf_;

  std::unique_ptr<UdtLayout> udt_;
  sim::Buffer udt_offsets_buf_;
  sim::Buffer udt_v_buf_;
  sim::Buffer udt_map_buf_;
  sim::Buffer udt_group_buf_;

  ExpandContext ctx_;
  ResidentTileStore store_;
  std::unique_ptr<SamplingReorderer> sampler_;
  FilterProgram* program_ = nullptr;

  std::vector<RunStats>* trace_ = nullptr;
  RunGuard guard_;

  // SageScope: registry plus cached metric pointers (resolved once in the
  // constructor so the run loop never takes the registry lock).
  util::MetricsRegistry metrics_;
  util::Counter* m_runs_ = nullptr;
  util::Counter* m_iterations_ = nullptr;
  util::Counter* m_edges_ = nullptr;
  util::Counter* m_frontier_nodes_ = nullptr;
  util::Counter* m_checkpoints_ = nullptr;
  util::HistogramMetric* m_iter_edges_ = nullptr;
  util::Counter* m_arena_reused_ = nullptr;
  util::HistogramMetric* m_replay_slice_us_ = nullptr;
  /// SageCache counters (null for in-core engines — the keys only exist
  /// when the device tile cache is enabled).
  util::Counter* m_cache_hits_ = nullptr;
  util::Counter* m_cache_misses_ = nullptr;
  util::Counter* m_cache_evictions_ = nullptr;
  util::Counter* m_cache_prefill_bytes_ = nullptr;
  std::vector<graph::NodeId> orig_to_int_;
  std::vector<graph::NodeId> int_to_orig_;
  double reorder_seconds_total_ = 0.0;

  std::unique_ptr<check::AccessChecker> checker_;

  // Scratch reused across iterations (workspace-pool discipline: steady-
  // state iterations allocate nothing — capacities persist across calls).
  std::vector<TileEntry> iter_tiles_;
  std::vector<TileEntry> decompose_scratch_;
  std::vector<std::pair<graph::NodeId, graph::EdgeId>> fragment_scratch_;
  std::vector<size_t> big_tile_scratch_;
  util::Bitmap frontier_bitmap_;  ///< sorted-frontier rebuild after reorder
  std::vector<size_t> dispatch_order_;     ///< DispatchOrderInto target
  std::vector<double> costs_scratch_;      ///< ScheduleUnits inputs
  std::vector<uint64_t> head_idx_scratch_; ///< resident Phase A head reads
  std::vector<uint64_t> pool_reads_scratch_;
  std::vector<graph::NodeId> virtual_frontier_;  ///< UDT translation
  std::vector<uint64_t> gidx_scratch_;
  /// One precomputed B40c dispatch unit (see ExpandB40c).
  struct B40cUnit {
    uint8_t kind;  // 0 = big node, 1 = medium node, 2 = fine batch
    graph::NodeId node;
    size_t base;  // fine: offset into b40c_fine_
    size_t len;   // fine: batch length
    uint32_t sm;
  };
  std::vector<graph::NodeId> b40c_big_;
  std::vector<graph::NodeId> b40c_medium_;
  std::vector<graph::NodeId> b40c_small_;
  std::vector<std::pair<graph::NodeId, graph::EdgeId>> b40c_fine_;
  std::vector<B40cUnit> b40c_units_;

  // ---- Parallel execution backend (DESIGN.md §5). ----
  /// One unit's slice of its worker's deferred-edge log.
  struct DeferredSlice {
    uint32_t worker = 0;
    size_t begin = 0;
    size_t end = 0;
  };
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<ExpandContext> worker_ctx_;
  std::vector<std::unique_ptr<sim::KernelTraceRecorder>> recorders_;
  std::vector<sim::KernelTraceRecorder*> recorder_ptrs_;
  std::vector<std::vector<DeferredEdge>> deferred_;
  std::vector<uint64_t> worker_edges_;
  std::vector<DeferredSlice> unit_slices_;
  std::vector<double> sm_loads_;
  std::vector<uint32_t> unit_sms_;
};

}  // namespace sage::core

#endif  // SAGE_CORE_ENGINE_H_
