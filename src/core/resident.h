#ifndef SAGE_CORE_RESIDENT_H_
#define SAGE_CORE_RESIDENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/expand.h"
#include "graph/types.h"
#include "sim/gpu_device.h"
#include "util/bitmap.h"

namespace sage::core {

/// One resident tile: a pre-partitioned slice of a node's adjacency that a
/// cooperative group of exactly `size` threads consumes (Algorithm 3).
/// Sizes below min_tile_size mark fragment records (scan-gathered).
struct TileEntry {
  graph::NodeId node = 0;
  graph::EdgeId offset = 0;
  uint32_t size = 0;
};

/// The scheduling log of Section 5.2: tiled-partitioning results kept in
/// device memory so revisited nodes skip online scheduling entirely, and —
/// because the log is visible device-wide — any SM can steal tiles.
class ResidentTileStore {
 public:
  /// `pool_buf` is the device buffer the entries notionally live in (for
  /// memory charging); capacity grows as nodes are first visited.
  explicit ResidentTileStore(graph::NodeId num_nodes);

  /// Presence is a packed bitmap: one word test here, and Invalidate()
  /// clears 64 nodes per word instead of refilling the sentinel arrays.
  /// head_/count_ entries are only meaningful while the node's bit is set.
  bool Has(graph::NodeId u) const { return present_.Test(u); }

  std::span<const TileEntry> Get(graph::NodeId u) const {
    return std::span<const TileEntry>(pool_.data() + head_[u], count_[u]);
  }

  /// Records a node's decomposition; entries become contiguous in the pool.
  /// Returns the pool index of the first entry.
  uint64_t Put(graph::NodeId u, std::span<const TileEntry> entries);

  /// Pool index of a node's first entry (valid only if Has(u)).
  uint64_t HeadIndex(graph::NodeId u) const {
    return static_cast<uint64_t>(head_[u]);
  }

  uint64_t size() const { return pool_.size(); }

  /// Drops every cached decomposition (after a reordering round relabels
  /// the graph, all offsets are stale).
  void Invalidate();

 private:
  util::Bitmap present_;
  std::vector<int64_t> head_;
  std::vector<uint32_t> count_;
  std::vector<TileEntry> pool_;
};

/// Computes the tiled decomposition of a degree-d adjacency starting at
/// `begin`: power-of-two tile sizes from block_size down to min_tile_size
/// (one entry per binary digit, exactly what Algorithm 2's election loop
/// consumes), then one fragment record for the remainder. With
/// tile_alignment, an unaligned prefix is split off first so the full
/// tiles start on sector boundaries.
void DecomposeAdjacency(graph::NodeId node, graph::EdgeId begin, uint32_t degree,
                        const TiledOptions& options, uint32_t values_per_sector,
                        std::vector<TileEntry>* out);

}  // namespace sage::core

#endif  // SAGE_CORE_RESIDENT_H_
