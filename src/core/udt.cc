#include "core/udt.h"

#include "util/logging.h"

namespace sage::core {

using graph::Csr;
using graph::EdgeId;
using graph::NodeId;

UdtLayout BuildUdt(const Csr& csr, uint32_t split_degree) {
  SAGE_CHECK_GE(split_degree, 1u);
  UdtLayout layout;
  layout.real_nodes = csr.num_nodes();
  layout.split_degree = split_degree;
  layout.group_offsets.assign(static_cast<size_t>(csr.num_nodes()) + 1, 0);

  // Pass 1: group sizes (every node gets at least one virtual node).
  uint64_t total_virtual = 0;
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    uint32_t deg = csr.OutDegree(u);
    uint32_t group =
        deg == 0 ? 1 : (deg + split_degree - 1) / split_degree;
    layout.group_offsets[u] = total_virtual;
    total_virtual += group;
  }
  layout.group_offsets[csr.num_nodes()] = total_virtual;
  SAGE_CHECK_LE(total_virtual, 0xfffffffeull) << "virtual id overflow";

  // Pass 2: emit virtual adjacency (targets stay real ids).
  layout.real_of_virtual.resize(total_virtual);
  graph::Coo coo;
  coo.num_nodes = static_cast<NodeId>(total_virtual);
  coo.u.reserve(csr.num_edges());
  coo.v.reserve(csr.num_edges());
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    EdgeId vbase = layout.group_offsets[u];
    EdgeId vcount = layout.group_offsets[u + 1] - vbase;
    for (EdgeId g = 0; g < vcount; ++g) {
      layout.real_of_virtual[vbase + g] = u;
    }
    uint32_t deg = csr.OutDegree(u);
    auto nbrs = csr.Neighbors(u);
    for (uint32_t k = 0; k < deg; ++k) {
      coo.u.push_back(static_cast<NodeId>(vbase + k / split_degree));
      coo.v.push_back(nbrs[k]);
    }
  }
  layout.virtual_csr = Csr::FromCoo(coo);
  return layout;
}

}  // namespace sage::core
