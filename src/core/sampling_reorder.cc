#include "core/sampling_reorder.h"

#include <algorithm>

#include "util/logging.h"
#include "util/segsort.h"

namespace sage::core {

using graph::NodeId;

SamplingReorderer::SamplingReorderer(NodeId num_nodes, uint64_t num_edges,
                                     uint32_t values_per_sector,
                                     sim::GpuDevice* device,
                                     const Options& options)
    : num_nodes_(num_nodes),
      threshold_(options.threshold_edges == 0 ? num_edges
                                              : options.threshold_edges),
      values_per_sector_(values_per_sector),
      device_(device),
      options_(options) {
  SAGE_CHECK_GT(values_per_sector, 0u);
  if (threshold_ == 0) threshold_ = 1;
  locality1_.assign(num_nodes_, 0);
  locality3_.assign(num_nodes_, 0);
  lo_.assign(num_nodes_, 0);
  hi_.assign(num_nodes_, num_nodes_);
  left_count_.assign(num_nodes_, 0);
  right_count_.assign(num_nodes_, 0);
  observations_.assign(num_nodes_, 0);
  candidate_.assign(num_nodes_, 0);
}

void SamplingReorderer::BuildSectorCounts(std::span<const NodeId> neighbors) {
  sorted_ids_.assign(neighbors.begin(), neighbors.end());
  std::sort(sorted_ids_.begin(), sorted_ids_.end());
  sector_counts_.clear();
  for (NodeId id : sorted_ids_) {
    uint32_t s = SectorOf(id);
    if (!sector_counts_.empty() && sector_counts_.back().first == s) {
      ++sector_counts_.back().second;
    } else {
      sector_counts_.emplace_back(s, 1);
    }
  }
}

namespace {
// Count of sorted ids in [lo, hi).
uint32_t CountInRange(const std::vector<NodeId>& sorted, NodeId lo,
                      NodeId hi) {
  auto b = std::lower_bound(sorted.begin(), sorted.end(), lo);
  auto e = std::lower_bound(sorted.begin(), sorted.end(), hi);
  return static_cast<uint32_t>(e - b);
}
}  // namespace

void SamplingReorderer::SampleStage1(std::span<const NodeId> neighbors) {
  // Algorithm 4: each lane counts intra-tile co-members in its own sector.
  for (NodeId id : neighbors) {
    uint32_t s = SectorOf(id);
    auto it = std::lower_bound(
        sector_counts_.begin(), sector_counts_.end(), s,
        [](const auto& p, uint32_t key) { return p.first < key; });
    SAGE_DCHECK(it != sector_counts_.end() && it->first == s);
    locality1_[id] += it->second - 1;
  }
}

void SamplingReorderer::SampleStage2(std::span<const NodeId> neighbors) {
  for (NodeId id : neighbors) {
    NodeId lo = lo_[id];
    NodeId hi = hi_[id];
    if (hi - lo <= values_per_sector_) continue;  // converged
    NodeId mid = lo + (hi - lo) / 2;
    // Count intra-tile co-members in each half of the search interval
    // (excluding the node itself).
    uint32_t in_left = CountInRange(sorted_ids_, lo, mid);
    uint32_t in_right = CountInRange(sorted_ids_, mid, hi);
    if (id >= lo && id < mid && in_left > 0) --in_left;
    if (id >= mid && id < hi && in_right > 0) --in_right;
    left_count_[id] += in_left;
    right_count_[id] += in_right;
    observations_[id] += in_left + in_right;
    if (observations_[id] >= options_.min_observations_per_step) {
      if (left_count_[id] >= right_count_[id]) {
        hi_[id] = mid;
      } else {
        lo_[id] = mid;
      }
      left_count_[id] = 0;
      right_count_[id] = 0;
      observations_[id] = 0;
    }
  }
}

void SamplingReorderer::SampleStage3(std::span<const NodeId> neighbors) {
  for (NodeId id : neighbors) {
    uint32_t cand_sector = SectorOf(candidate_[id]);
    auto it = std::lower_bound(
        sector_counts_.begin(), sector_counts_.end(), cand_sector,
        [](const auto& p, uint32_t key) { return p.first < key; });
    if (it == sector_counts_.end() || it->first != cand_sector) continue;
    uint32_t cnt = it->second;
    if (SectorOf(id) == cand_sector) --cnt;  // exclude self
    locality3_[id] += cnt;
  }
}

void SamplingReorderer::ObserveTileAccess(std::span<const NodeId> neighbors,
                                          uint32_t sm) {
  // A completed round is waiting to be applied (the engine relabels between
  // iterations): suspend sampling, otherwise the next round's Stage 1 would
  // accumulate statistics against the soon-to-be-stale layout.
  if (pending_.has_value()) return;
  if (neighbors.size() < 2) return;
  // The sampling loop of Algorithm 4 runs in shared memory alongside the
  // filtering step; charge its (small) instruction cost.
  const auto& spec = device_->spec();
  uint32_t warps = (static_cast<uint32_t>(neighbors.size()) + spec.warp_size -
                    1) /
                   spec.warp_size;
  device_->ChargeCompute(sm, 2ull * warps + spec.sync_cycles / 4);

  BuildSectorCounts(neighbors);
  switch (stage_) {
    case 1:
      SampleStage1(neighbors);
      break;
    case 2:
      SampleStage2(neighbors);
      break;
    case 3:
      SampleStage3(neighbors);
      break;
  }
  sampled_in_stage_ += neighbors.size();
  if (sampled_in_stage_ >= threshold_) AdvanceStage();
}

void SamplingReorderer::FinishStage2() {
  // Unconverged intervals fall back to their current midpoint; converged
  // ones use the interval base. The in-sector slot keeps nodes distinct.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    NodeId base =
        hi_[u] - lo_[u] <= values_per_sector_ ? lo_[u] : lo_[u] + (hi_[u] - lo_[u]) / 2;
    candidate_[u] = std::min<NodeId>(
        base + (u % values_per_sector_),
        num_nodes_ == 0 ? 0 : num_nodes_ - 1);
  }
}

void SamplingReorderer::AdvanceStage() {
  sampled_in_stage_ = 0;
  if (stage_ == 1) {
    stage_ = 2;
    return;
  }
  if (stage_ == 2) {
    FinishStage2();
    stage_ = 3;
    return;
  }
  // Stage 3 complete: a full round is done.
  pending_ = BuildPermutation();
  ResetRound();
}

std::vector<NodeId> SamplingReorderer::BuildPermutation() {
  // Expected index per node: adopt the candidate only if its measured
  // locality beats the current one (Stage 1 vs Stage 3 comparison) by a
  // clear margin — marginal wins churn the layout (each adoption displaces
  // neighbors in the sorted order) without paying for themselves.
  std::vector<uint32_t> expected(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    bool adopt = locality3_[u] > locality1_[u] + locality1_[u] / 2 + 1;
    expected[u] = adopt ? candidate_[u] : u;
  }
  // Sort the expected-index array (bb_segsort stand-in; stable radix
  // argsort) to obtain the actual order: duplicates / gaps collapse.
  std::vector<uint32_t> order = util::RadixArgsort(expected);
  std::vector<NodeId> new_of_old(num_nodes_);
  for (NodeId rank = 0; rank < num_nodes_; ++rank) {
    new_of_old[order[rank]] = rank;
  }
  return new_of_old;
}

void SamplingReorderer::ResetRound() {
  stage_ = 1;
  ++rounds_completed_;
  std::fill(locality1_.begin(), locality1_.end(), 0);
  std::fill(locality3_.begin(), locality3_.end(), 0);
  std::fill(lo_.begin(), lo_.end(), 0);
  std::fill(hi_.begin(), hi_.end(), num_nodes_);
  std::fill(left_count_.begin(), left_count_.end(), 0);
  std::fill(right_count_.begin(), right_count_.end(), 0);
  std::fill(observations_.begin(), observations_.end(), 0);
  std::fill(candidate_.begin(), candidate_.end(), 0);
}

std::optional<std::vector<NodeId>> SamplingReorderer::MaybeTakePermutation() {
  if (!pending_.has_value()) return std::nullopt;
  auto out = std::move(*pending_);
  pending_.reset();
  return out;
}

}  // namespace sage::core
