#ifndef SAGE_CORE_SHARDED_ENGINE_H_
#define SAGE_CORE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "core/engine.h"
#include "graph/csr.h"
#include "graph/partitioner.h"
#include "sim/device_group.h"
#include "sim/device_spec.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sage::core {

/// Execution schedule across the device group (the Figure 9 comparison).
/// kSage and kGunrockLike are BSP (compute then exchange); kGrouteLike
/// overlaps the exchange with the previous level's compute.
enum class MultiGpuStrategy : uint8_t { kSage, kGunrockLike, kGrouteLike };

const char* MultiGpuStrategyName(MultiGpuStrategy strategy);

/// Parses a strategy from user input. Accepts the canonical names
/// ("sage", "gunrock", "groute") plus the legacy CLI spellings
/// "gunrock-like" / "groute-like". Returns false on anything else.
bool ParseMultiGpuStrategy(const std::string& text, MultiGpuStrategy* out);

/// Options for ShardedEngine::Create, mirroring EngineOptions: plain
/// fields plus a Validate() that returns a typed error for every
/// inconsistent combination instead of aborting mid-run.
struct ShardOptions {
  /// Number of simulated devices (shards). 1 is the single-device
  /// baseline every larger K must match bit-for-bit.
  uint32_t num_shards = 2;

  MultiGpuStrategy strategy = MultiGpuStrategy::kSage;

  /// How the CSR is split across shards.
  graph::PartitionerKind partitioner = graph::PartitionerKind::kHash;
  uint64_t partition_seed = 1;

  /// Host threads driving the per-shard engines (the shard-level pool).
  /// 0 = one per shard. Results are bit-identical for any value.
  uint32_t host_threads = 1;

  /// Spec shared by every device in the group (peer link fields included).
  sim::DeviceSpec spec;

  /// Per-shard engine configuration. host_threads is forced to 1 inside
  /// each shard (the shard-level pool is the parallelism); strategy
  /// presets (kGunrockLike/kGrouteLike -> warp-centric, no TP/RTS) are
  /// applied on top.
  EngineOptions engine_options;

  util::Status Validate() const;
};

/// Aggregated result of one sharded run.
struct ShardedRunStats {
  RunStats stats;  ///< compute side: per-level max over shards, summed

  double comm_seconds = 0.0;       ///< modeled peer-link time
  double partition_seconds = 0.0;  ///< preprocessing (excluded from stats)
  uint64_t edge_cut = 0;

  /// Frontier-exchange accounting (the delta-compression win). Payload is
  /// what the delta protocol ships; wire adds the link's frame headers;
  /// dense is what a full-bitmap exchange would have shipped per pair per
  /// level. All in bytes — whole-sector rounding would hide the gap the
  /// Gunrock multi-GPU study says matters.
  uint64_t frontier_payload_bytes = 0;
  uint64_t frontier_wire_bytes = 0;
  uint64_t frontier_dense_bytes = 0;
  uint64_t messages = 0;  ///< node discoveries / rank contributions shipped
};

/// Level-synchronous traversal across K simulated devices: the CSR is
/// partitioned owner-computes (each shard holds the full node-id space but
/// only its owned nodes' adjacency), every level runs the per-shard
/// engines on the host thread pool, and cross-shard discoveries travel as
/// delta-compressed util::Bitmap words over the group's peer link — sync
/// bytes proportional to new discoveries, not |V|.
///
/// The API mirrors Engine: Create validates options and returns a typed
/// error; Run binds one of the registry apps ("bfs", "msbfs", "pagerank")
/// with the registry's AppParams. Outputs are digest-compatible: for any
/// K and host-thread count the output digest is bit-identical to the K=1
/// run (and for BFS / MS-BFS also to the solo apps:: digest, because
/// level-synchronous distances are schedule-invariant; PageRank defines
/// its canonical order via the ascending-source fold, which a solo
/// engine's schedule-dependent summation only matches to ~1e-9).
class ShardedEngine {
 public:
  static util::StatusOr<std::unique_ptr<ShardedEngine>> Create(
      const graph::Csr& csr, const ShardOptions& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  /// Runs one registry app to completion. `app` accepts the registry's
  /// canonical and program names ("bfs"; "msbfs" / "multi-source-bfs";
  /// "pagerank"). Parameters follow apps::AppParams: bfs takes one
  /// source, msbfs 1..64 sources, pagerank `iterations`.
  util::StatusOr<ShardedRunStats> Run(const std::string& app,
                                      const apps::AppParams& params);

  /// FNV-1a digest over the last run's per-node outputs in original-id
  /// order — the same construction as apps::OutputDigest. 0 before any
  /// successful run.
  uint64_t OutputDigest() const;

  /// Per-instance distance digest of the last msbfs run (matches
  /// apps::MsBfsInstanceDigest and a solo BFS digest from that source).
  uint64_t InstanceDigest(uint32_t source_index) const;

  // Per-app output accessors (original ids; valid after a matching Run).
  uint32_t DistanceOf(graph::NodeId v) const;  ///< bfs
  double RankOf(graph::NodeId v) const;        ///< pagerank
  bool Reached(uint32_t source_index, graph::NodeId v) const;  ///< msbfs
  uint32_t MsBfsDistanceOf(uint32_t source_index,
                           graph::NodeId v) const;  ///< msbfs

  uint32_t num_shards() const { return options_.num_shards; }
  const ShardOptions& options() const { return options_; }
  const graph::PartitionResult& partition() const { return partition_; }
  sim::DeviceGroup& group() { return *group_; }

  /// SageScope: shard.frontier_bytes_exchanged / shard.frontier_bytes_dense
  /// / shard.link_us counters-gauges plus per-shard compute imbalance.
  const util::MetricsRegistry& metrics() const { return metrics_; }

 private:
  ShardedEngine(const graph::Csr& csr, const ShardOptions& options,
                graph::PartitionResult partition);

  util::Status BuildShards();

  util::StatusOr<ShardedRunStats> RunBfs(const apps::AppParams& params);
  util::StatusOr<ShardedRunStats> RunMsBfs(const apps::AppParams& params);
  util::StatusOr<ShardedRunStats> RunPageRank(const apps::AppParams& params);

  /// Folds one level's timing into `out` under the configured strategy and
  /// publishes the link metrics.
  void AccountExchange(uint64_t payload_bytes, uint64_t dense_bytes,
                       uint64_t message_count, double compute_seconds,
                       double* prev_compute, ShardedRunStats* out);

  /// Runs fn(shard) for every shard on the shard-level pool; statuses land
  /// in per-shard slots and are surfaced in shard order (deterministic).
  template <typename Fn>
  util::Status ForEachShard(Fn&& fn);

  enum class LastApp : uint8_t { kNone, kBfs, kMsBfs, kPageRank };

  const graph::Csr& csr_;  // owned by the caller; outlives the engine
  ShardOptions options_;
  graph::PartitionResult partition_;
  std::unique_ptr<sim::DeviceGroup> group_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<Engine>> engines_;

  // Per-app state (rebuilt per run; see sharded_engine.cc).
  struct BfsState;
  struct MsBfsState;
  struct PrState;
  std::unique_ptr<BfsState> bfs_;
  std::unique_ptr<MsBfsState> msbfs_;
  std::unique_ptr<PrState> pr_;
  LastApp last_app_ = LastApp::kNone;

  util::MetricsRegistry metrics_;
  util::Counter* m_payload_bytes_ = nullptr;
  util::Counter* m_dense_bytes_ = nullptr;
  util::Counter* m_wire_bytes_ = nullptr;
  util::Counter* m_messages_ = nullptr;
  util::Counter* m_levels_ = nullptr;
  util::Gauge* m_link_us_ = nullptr;
  util::Gauge* m_imbalance_ = nullptr;
  std::vector<util::Counter*> m_shard_edges_;
};

}  // namespace sage::core

#endif  // SAGE_CORE_SHARDED_ENGINE_H_
