#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "check/access_checker.h"
#include "reorder/permutation.h"
#include "sim/fault_injector.h"
#include "util/logging.h"
#include "util/random.h"

namespace sage::core {

using graph::EdgeId;
using graph::NodeId;

namespace {

/// Processing order of `n` independent dispatch units: the identity when
/// seed == 0 (the canonical schedule — byte-identical to the engine's
/// historical behaviour), else a seeded shuffle. `salt` decorrelates the
/// different dispatch sites within one run. Fills a caller-owned vector
/// (the engine's reused dispatch_order_ scratch) instead of allocating.
void DispatchOrderInto(size_t n, uint64_t seed, uint64_t salt,
                       std::vector<size_t>* order) {
  order->resize(n);
  std::iota(order->begin(), order->end(), size_t{0});
  if (seed != 0 && n > 1) {
    util::Rng rng(util::SplitMix64(seed) ^ util::SplitMix64(salt + 1));
    rng.Shuffle(*order);
  }
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Appends the failing iteration to an injected fault's message so serving
/// can report the exact fault site per request.
util::Status DecorateFault(const util::Status& fault, uint32_t iteration) {
  std::ostringstream os;
  os << fault.message() << "; run failed at iteration " << iteration;
  return util::Status(fault.code(), os.str());
}

}  // namespace

util::Status EngineOptions::Validate() const {
  if (resident_tiles && !tiled_partitioning) {
    return util::Status::InvalidArgument(
        "resident tiles require tiled partitioning "
        "(resident_tiles = true needs tiled_partitioning = true)");
  }
  if (udt_split_degree > 0 && (resident_tiles || sampling_reorder)) {
    return util::Status::InvalidArgument(
        "udt_split_degree > 0 (the UDT layer) is incompatible with "
        "resident_tiles / sampling_reorder");
  }
  if (min_tile_size == 0) {
    return util::Status::InvalidArgument(
        "min_tile_size must be at least 1");
  }
  return util::Status::OK();
}

util::StatusOr<std::unique_ptr<Engine>> Engine::Create(
    sim::GpuDevice* device, graph::Csr csr, const EngineOptions& options) {
  if (device == nullptr) {
    return util::Status::InvalidArgument("Engine::Create: null device");
  }
  SAGE_RETURN_IF_ERROR(options.Validate());
  if (options.vet_level != check::VetLevel::kOff) {
    util::Status csr_ok = graph::ValidateCsr(csr);
    if (!csr_ok.ok()) {
      return util::Status::InvalidArgument(
          "Engine::Create: CSR failed structural validation: " +
          csr_ok.message());
    }
  }
  if (options.check_level != sim::CheckLevel::kOff &&
      device->access_sink() != nullptr) {
    return util::Status::FailedPrecondition(
        "device already has an access sink; one checker per device");
  }
  return std::make_unique<Engine>(device, std::move(csr), options);
}

Engine::Engine(sim::GpuDevice* device, graph::Csr csr,
               const EngineOptions& options)
    : device_(device),
      csr_(std::move(csr)),
      options_(options),
      ctx_(device, &csr_, nullptr, nullptr),
      store_(csr_.num_nodes()) {
  SAGE_CHECK(device != nullptr);
  {
    util::Status valid = options_.Validate();
    SAGE_CHECK(valid.ok()) << valid.message();
  }
  if (options_.check_level != sim::CheckLevel::kOff) {
    SAGE_CHECK(device->access_sink() == nullptr)
        << "device already has an access sink; one checker per device";
    checker_ = std::make_unique<check::AccessChecker>(options_.check_level);
    device->set_access_sink(checker_.get());
  }
  const auto& spec = device_->spec();
  tiled_options_.block_size = spec.block_size;
  tiled_options_.min_tile_size = options_.min_tile_size;
  tiled_options_.tile_alignment = options_.tile_alignment;

  const NodeId n = csr_.num_nodes();
  const uint64_t m = csr_.num_edges();
  // SageCache (DESIGN.md §12): a memory budget smaller than the CSR forces
  // the adjacency out-of-core exactly like adjacency_on_host; the budget
  // then also sizes the device-resident host-tile cache.
  const bool paged =
      options_.adjacency_on_host ||
      (options_.memory_budget_bytes > 0 &&
       csr_.MemoryBytes() > options_.memory_budget_bytes);
  auto& mem = device_->mem();
  offsets_buf_ = mem.Register("csr.u_offsets", static_cast<uint64_t>(n) + 1,
                              sizeof(EdgeId));
  v_buf_ = mem.Register(
      "csr.v", std::max<uint64_t>(m, 1), sizeof(NodeId),
      paged ? sim::MemSpace::kHost : sim::MemSpace::kDevice);
  uint64_t frontier_cap = std::max<uint64_t>(m + n, 1);
  frontier_buf_[0] = mem.Register("frontier.a", frontier_cap, sizeof(NodeId));
  frontier_buf_[1] = mem.Register("frontier.b", frontier_cap, sizeof(NodeId));
  uint64_t tile_cap =
      m / std::max<uint32_t>(options_.min_tile_size, 1) + 2ull * n + 64;
  head_buf_ = mem.Register("resident.head", std::max<uint64_t>(n, 1), 8);
  pool_buf_ = mem.Register("resident.pool", tile_cap, sizeof(TileEntry));
  tile_array_buf_ = mem.Register("resident.iter_tiles", tile_cap,
                                 sizeof(TileEntry));

  if (options_.udt_split_degree > 0) {
    udt_ = std::make_unique<UdtLayout>(
        BuildUdt(csr_, options_.udt_split_degree));
    const uint64_t vn = udt_->virtual_nodes();
    udt_offsets_buf_ = mem.Register("udt.u_offsets", vn + 1, sizeof(EdgeId));
    udt_v_buf_ = mem.Register(
        "udt.v", std::max<uint64_t>(udt_->virtual_csr.num_edges(), 1),
        sizeof(NodeId),
        paged ? sim::MemSpace::kHost : sim::MemSpace::kDevice);
    udt_map_buf_ = mem.Register("udt.real_of_virtual",
                                std::max<uint64_t>(vn, 1), sizeof(NodeId));
    udt_group_buf_ = mem.Register("udt.group_offsets",
                                  static_cast<uint64_t>(n) + 1,
                                  sizeof(EdgeId));
    ctx_ = ExpandContext(device_, &udt_->virtual_csr, &udt_v_buf_,
                         &udt_offsets_buf_);
    ctx_.set_frontier_map(&udt_->real_of_virtual, &udt_map_buf_);
  } else {
    ctx_ = ExpandContext(device_, &csr_, &v_buf_, &offsets_buf_);
  }

  if (paged && options_.memory_budget_bytes > 0) {
    // Size the host-tile cache to the budget left once the always-resident
    // offsets array is paid for, floored at one tile so paging always has
    // a cache in front of it. One tile = one maximum PCIe payload, so a
    // missed tile pages in as a single full frame.
    sim::HostTileCache::Config cache_cfg;
    cache_cfg.sector_bytes = spec.sector_bytes;
    cache_cfg.sectors_per_tile = std::max<uint32_t>(
        1, spec.pcie_max_payload_bytes / spec.sector_bytes);
    const uint64_t tile_bytes =
        static_cast<uint64_t>(cache_cfg.sectors_per_tile) * spec.sector_bytes;
    const uint64_t offsets_bytes =
        offsets_buf_.num_elems * offsets_buf_.elem_bytes;
    cache_cfg.capacity_bytes =
        options_.memory_budget_bytes > offsets_bytes + tile_bytes
            ? options_.memory_budget_bytes - offsets_bytes
            : tile_bytes;
    device_->tile_cache().Configure(cache_cfg);
    if (udt_ != nullptr) {
      PrefillTileCache(udt_->virtual_csr, udt_v_buf_);
    } else {
      PrefillTileCache(csr_, v_buf_);
    }
  }

  orig_to_int_ = reorder::IdentityPermutation(n);
  int_to_orig_ = orig_to_int_;

  m_runs_ = metrics_.counter("core.runs");
  m_iterations_ = metrics_.counter("core.iterations");
  m_edges_ = metrics_.counter("core.edges_traversed");
  m_frontier_nodes_ = metrics_.counter("core.frontier_nodes");
  m_checkpoints_ = metrics_.counter("core.checkpoints_saved");
  m_iter_edges_ = metrics_.histogram("core.iteration_edges");
  // Host-side performance metrics (SageSpeed): allocator reuse and replay
  // slice wall time. Published at run boundaries; wall-clock values, so
  // they are deliberately kept out of every modeled/deterministic export.
  m_arena_reused_ = metrics_.counter("util.arena.bytes_reused");
  m_replay_slice_us_ = metrics_.histogram("sim.replay.slice_us");
  // SageCache counters mirror the device cache stats at run boundaries;
  // only materialized for out-of-core engines so in-core metric snapshots
  // keep their exact historical key set.
  if (device_->tile_cache().enabled()) {
    m_cache_hits_ = metrics_.counter("cache.hits");
    m_cache_misses_ = metrics_.counter("cache.misses");
    m_cache_evictions_ = metrics_.counter("cache.evictions");
    m_cache_prefill_bytes_ = metrics_.counter("cache.prefill_bytes");
    m_cache_prefill_bytes_->Set(device_->tile_cache().stats().prefill_bytes);
  }

  if (options_.sampling_reorder) {
    SamplingReorderer::Options sopts;
    sopts.threshold_edges = options_.sampling_threshold_edges;
    sampler_ = std::make_unique<SamplingReorderer>(
        n, m, spec.ValuesPerSector(), device_, sopts);
    ctx_.set_observer(sampler_.get());
  }

  // Setup-time uploads/memsets, marked for SageCheck's shadow-init memory:
  // the graph representation and the zeroed resident-store heads exist
  // before the first kernel reads them.
  device_->NoteBufferWrite(offsets_buf_, 0, offsets_buf_.num_elems);
  device_->NoteBufferWrite(v_buf_, 0, v_buf_.num_elems);
  device_->NoteBufferWrite(head_buf_, 0, head_buf_.num_elems);
  if (udt_ != nullptr) {
    device_->NoteBufferWrite(udt_offsets_buf_, 0, udt_offsets_buf_.num_elems);
    device_->NoteBufferWrite(udt_v_buf_, 0, udt_v_buf_.num_elems);
    device_->NoteBufferWrite(udt_map_buf_, 0, udt_map_buf_.num_elems);
    device_->NoteBufferWrite(udt_group_buf_, 0, udt_group_buf_.num_elems);
  }

  uint32_t threads = options_.host_threads == 0
                         ? util::ThreadPool::HardwareThreads()
                         : options_.host_threads;
  if (threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads - 1);
  }
}

Engine::~Engine() {
  // Detach the engine-owned checker; leave any externally-attached sink.
  if (checker_ != nullptr && device_->access_sink() == checker_.get()) {
    device_->set_access_sink(nullptr);
  }
}

void Engine::PauseSampling() { ctx_.set_observer(nullptr); }

void Engine::ResumeSampling() {
  if (sampler_ != nullptr) ctx_.set_observer(sampler_.get());
}

util::Status Engine::Bind(FilterProgram* program) {
  if (program == nullptr) {
    return util::Status::InvalidArgument("null filter program");
  }
  // Warm rebind of the program already driving this engine: nothing to
  // reconfigure, and the per-worker contexts stay valid. Serving pools hit
  // this path on every reused (engine, program) pair.
  if (program == program_) return util::Status::OK();
  program->Bind(this);
  program_ = program;
  ctx_.set_filter(program);
  // Worker contexts copy ctx_'s configuration; rebuild on next use.
  worker_ctx_.clear();
  return util::Status::OK();
}

bool Engine::ParallelEligible() const {
  return pool_ != nullptr && device_->access_sink() == nullptr &&
         sampler_ == nullptr;
}

void Engine::EnsureWorkers() {
  const uint32_t workers = pool_->workers();
  if (recorders_.empty()) {
    deferred_.resize(workers);
    worker_edges_.resize(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      recorders_.push_back(
          std::make_unique<sim::KernelTraceRecorder>(device_));
      recorder_ptrs_.push_back(recorders_.back().get());
    }
  }
  if (worker_ctx_.empty()) {
    worker_ctx_.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      worker_ctx_.push_back(ctx_);
      worker_ctx_.back().set_observer(nullptr);
      worker_ctx_.back().set_deferred_edges(&deferred_[w]);
    }
  }
}

uint64_t Engine::RunStage(size_t num_units, const StageBody& body,
                          std::vector<NodeId>* next) {
  if (num_units == 0) return 0;
  if (!ParallelEligible() || num_units == 1) {
    // Legacy serial execution: charge and filter each unit immediately.
    uint64_t edges = 0;
    for (size_t rank = 0; rank < num_units; ++rank) {
      edges += body(ctx_, rank, next);
    }
    return edges;
  }
  // Trace phase: workers claim ranks dynamically and record each unit's
  // charges (keyed by rank) and filter inputs into worker-local logs.
  EnsureWorkers();
  for (uint32_t w = 0; w < pool_->workers(); ++w) {
    deferred_[w].clear();
    worker_edges_[w] = 0;
    recorders_[w]->Reset();
  }
  unit_slices_.assign(num_units, DeferredSlice());
  pool_->ParallelFor(num_units, [&](uint32_t w, size_t rank) {
    sim::GpuDevice::BindThreadRecorder(recorders_[w].get());
    recorders_[w]->BeginUnit(rank);
    DeferredSlice slice;
    slice.worker = w;
    slice.begin = deferred_[w].size();
    worker_edges_[w] += body(worker_ctx_[w], rank, nullptr);
    slice.end = deferred_[w].size();
    unit_slices_[rank] = slice;
    sim::GpuDevice::BindThreadRecorder(nullptr);
  });
  // Replay phase: drive the recorded charges through the stateful models
  // in canonical rank order — bit-identical to serial charging.
  device_->ReplayTraces(recorder_ptrs_, pool_.get());
  // Commit phase: run the deferred filter calls in rank order, the exact
  // call sequence (and next-frontier order) serial execution produces. The
  // loop is branchless on the store side: every neighbor is written to the
  // pre-sized tail and the cursor advances only when the filter admits it —
  // same output order, no per-edge push_back capacity checks.
  uint64_t edges = 0;
  for (uint32_t w = 0; w < pool_->workers(); ++w) edges += worker_edges_[w];
  size_t deferred_total = 0;
  for (const DeferredSlice& s : unit_slices_) {
    deferred_total += s.end - s.begin;
  }
  const size_t base = next->size();
  next->resize(base + deferred_total);
  NodeId* out = next->data() + base;
  size_t kept = 0;
  for (const DeferredSlice& s : unit_slices_) {
    const DeferredEdge* log = deferred_[s.worker].data();
    for (size_t i = s.begin; i < s.end; ++i) {
      out[kept] = log[i].neighbor;
      kept += program_->Filter(log[i].frontier, log[i].neighbor) ? 1 : 0;
    }
  }
  next->resize(base + kept);
  return edges;
}

double Engine::TileUnitCost(uint64_t edges) const {
  const auto& spec = device_->spec();
  double sectors = static_cast<double>(edges) / spec.ValuesPerSector() + 1.0;
  double warps = static_cast<double>((edges + spec.warp_size - 1) /
                                     spec.warp_size);
  return sectors * spec.dram_sector_cycles +
         warps * ExpandCosts::kEdgeInstr + ExpandCosts::kQueuePopOps;
}

void Engine::ScheduleUnits(const std::vector<double>& costs) {
  const uint32_t num_sms = device_->spec().num_sms;
  sm_loads_.resize(num_sms);
  for (uint32_t s = 0; s < num_sms; ++s) {
    sm_loads_[s] = device_->SmBusyProxy(s);
  }
  unit_sms_.assign(costs.size(), 0);
  for (size_t r = 0; r < costs.size(); ++r) {
    uint32_t sm = device_->ArgMinSm(sm_loads_);
    sm_loads_[sm] += costs[r];
    unit_sms_[r] = sm;
  }
}

sim::Buffer Engine::RegisterAttribute(const std::string& name,
                                      uint32_t elem_bytes) {
  sim::Buffer buf = device_->mem().Register(
      name, std::max<uint64_t>(csr_.num_nodes(), 1), elem_bytes);
  // Programs initialize their attribute arrays host-side before launching;
  // mark the upload so reads are not flagged as uninitialized.
  device_->NoteBufferWrite(buf, 0, buf.num_elems);
  return buf;
}

sim::Buffer Engine::RegisterEdgeAttribute(const std::string& name,
                                          uint32_t elem_bytes) {
  sim::Buffer buf = device_->mem().Register(
      name, std::max<uint64_t>(csr_.num_edges(), 1), elem_bytes);
  device_->NoteBufferWrite(buf, 0, buf.num_elems);
  return buf;
}

util::StatusOr<RunStats> Engine::Run(std::span<const NodeId> sources,
                                     uint32_t max_iterations) {
  if (program_ == nullptr) {
    return util::Status::FailedPrecondition("no program bound");
  }
  std::vector<NodeId> frontier;
  frontier.reserve(sources.size());
  for (NodeId s : sources) {
    if (s >= csr_.num_nodes()) {
      return util::Status::InvalidArgument("source node out of range");
    }
    frontier.push_back(orig_to_int_[s]);
  }
  return RunLoop(std::move(frontier), 0, max_iterations, /*global=*/false);
}

util::StatusOr<RunStats> Engine::RunGlobal(uint32_t iterations) {
  if (program_ == nullptr) {
    return util::Status::FailedPrecondition("no program bound");
  }
  std::vector<NodeId> all(csr_.num_nodes());
  for (NodeId u = 0; u < csr_.num_nodes(); ++u) all[u] = u;
  return RunLoop(std::move(all), 0, iterations, /*global=*/true);
}

util::StatusOr<RunStats> Engine::RunLoop(std::vector<NodeId> frontier,
                                         uint32_t start_iteration,
                                         uint32_t max_iterations,
                                         bool global) {
  RunStats total;
  std::vector<NodeId> next;
  sim::FaultInjector* injector = device_->fault_injector();
  m_runs_->Add(1);
  if (device_->timeline_enabled() && program_ != nullptr) {
    device_->set_kernel_label(program_->name());
  }
  uint32_t iter = start_iteration;
  while (iter < max_iterations && (global || !frontier.empty())) {
    SAGE_RETURN_IF_ERROR(CheckGuard(total, iter));
    if (injector != nullptr) {
      injector->SetIteration(iter);
      // ECC-style frontier corruption (frontier-driven runs only — a
      // global run's "frontier" is the implicit all-nodes list, not data).
      if (!global && injector->MaybeCorruptFrontier(iter, frontier,
                                                    csr_.num_nodes())) {
        util::Status fault = injector->TakePendingFault();
        // Detected ECC errors abort before the kernel launches; silent
        // flips sail on (output digests are how those get caught).
        if (!fault.ok()) return DecorateFault(fault, iter);
      }
    }
    program_->BeginIteration(iter);
    RunStats it = ExpandIteration(frontier, &next);
    total.Accumulate(it);
    // Metrics are bumped here, at the iteration boundary on the main
    // thread, so values cannot depend on worker interleaving.
    m_iterations_->Add(1);
    m_edges_->Add(it.edges_traversed);
    m_frontier_nodes_->Add(it.frontier_nodes);
    m_iter_edges_->Add(it.edges_traversed);
    if (injector != nullptr) {
      // Surface faults the iteration's kernels raised (transient failures,
      // injected Grow OOMs). The iteration's side effects stand — recovery
      // is checkpoint-restore or a full rerun, never a partial replay.
      util::Status fault = injector->TakePendingFault();
      if (!fault.ok()) return DecorateFault(fault, iter);
    }
    if (global) {
      next.clear();
    } else {
      frontier.swap(next);
    }
    MaybeApplyReordering(&frontier, &total);
    // A relabeling permutes a global run's node list, which must stay the
    // full node list. (It always is — a permutation of [0,n) is [0,n) —
    // but keep it sorted for deterministic block composition.) The rebuild
    // goes through the frontier bitmap: set one bit per member, then emit
    // set bits in ascending order — O(n) word iteration, not a sort.
    if (global && total.reorder_rounds > 0) {
      frontier_bitmap_.Resize(csr_.num_nodes());
      for (NodeId u : frontier) frontier_bitmap_.Set(u);
      size_t k = 0;
      frontier_bitmap_.ForEachSet(
          [&](size_t u) { frontier[k++] = static_cast<NodeId>(u); });
      SAGE_DCHECK(k == frontier.size()) << "global frontier not a permutation";
    }
    ++iter;
    MaybeCheckpoint(iter, frontier, global);
  }
  PublishHostPerfMetrics();
  return total;
}

void Engine::PrefillTileCache(const graph::Csr& g, const sim::Buffer& vbuf) {
  sim::HostTileCache& cache = device_->tile_cache();
  if (!cache.enabled()) return;
  const NodeId n = g.num_nodes();
  if (n == 0) return;
  // Degree-ranked static pre-fill: hottest adjacency first. stable_sort on
  // descending degree keeps node id as the tie-break, so the pre-fill set
  // is a pure function of (graph, budget) — identical across runs, thread
  // counts, and processes.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    return g.OutDegree(a) > g.OutDegree(b);
  });
  const uint32_t sector_bytes = device_->spec().sector_bytes;
  const uint32_t spt = cache.config().sectors_per_tile;
  const std::vector<EdgeId>& off = g.u_offsets();
  for (NodeId u : order) {
    if (cache.PrefillFull()) break;
    if (off[u] == off[u + 1]) break;  // degree-sorted: the rest are isolated
    const uint64_t t0 = vbuf.Addr(off[u]) / sector_bytes / spt;
    const uint64_t t1 = vbuf.Addr(off[u + 1] - 1) / sector_bytes / spt;
    for (uint64_t t = t0; t <= t1 && !cache.PrefillFull(); ++t) {
      cache.Prefill(t);
    }
  }
  // The pre-fill ships as one planned bulk DMA (headers amortize over
  // maximal frames) and its synchronous cost lands in the pipeline totals,
  // not in any kernel.
  const uint64_t bytes = cache.stats().prefill_bytes;
  if (bytes > 0) {
    sim::LinkModel::Transfer t = device_->BulkHostTransfer(bytes);
    device_->AddExternalSeconds(device_->CyclesToSeconds(t.cycles));
  }
}

void Engine::PublishHostPerfMetrics() {
  uint64_t reused = ctx_.arena().bytes_reused();
  for (const ExpandContext& cx : worker_ctx_) {
    reused += cx.arena().bytes_reused();
  }
  m_arena_reused_->Set(reused);
  // SageCache stats are modeled quantities (deterministic across thread
  // counts); published here because run boundaries are the natural export
  // point, not because they are host-side like the rest.
  if (m_cache_hits_ != nullptr) {
    const sim::HostTileCache::Stats& cs = device_->tile_cache().stats();
    m_cache_hits_->Set(cs.hits);
    m_cache_misses_->Set(cs.misses);
    m_cache_evictions_->Set(cs.evictions);
    m_cache_prefill_bytes_->Set(cs.prefill_bytes);
  }
  // Mirror the memory system's replay-slice histogram bucket by bucket
  // (publish-style: rebuild from the source of truth on every export).
  m_replay_slice_us_->Reset();
  const util::Histogram& h = device_->mem().replay_slice_us();
  for (int b = 0; b < util::Histogram::kNumBuckets; ++b) {
    uint64_t c = h.bucket_count(b);
    if (c != 0) {
      m_replay_slice_us_->AddCount(util::Histogram::BucketLowerBound(b), c);
    }
  }
}

void Engine::set_run_guard(const RunGuard& guard) {
  guard_ = guard;
  // Resolve a wall-deadline duration to an absolute timestamp exactly once
  // per installation: retries and resumes under this guard share one
  // end-to-end budget rather than each run getting a fresh one.
  if (guard_.deadline_wall_seconds > 0.0 &&
      guard_.deadline_wall_until_seconds == 0.0) {
    guard_.deadline_wall_until_seconds =
        MonotonicSeconds() + guard_.deadline_wall_seconds;
  }
}

util::Status Engine::CheckGuard(const RunStats& total,
                                uint32_t iteration) const {
  if (guard_.cancel != nullptr && guard_.cancel->cancelled()) {
    std::ostringstream os;
    os << "run cancelled at iteration " << iteration;
    return util::Status::Aborted(os.str());
  }
  if (guard_.deadline_modeled_seconds > 0.0 &&
      total.seconds > guard_.deadline_modeled_seconds) {
    std::ostringstream os;
    os << "modeled-time budget of " << guard_.deadline_modeled_seconds
       << "s exceeded at iteration " << iteration << " (" << total.seconds
       << "s modeled)";
    return util::Status::DeadlineExceeded(os.str());
  }
  if (guard_.deadline_wall_until_seconds > 0.0 &&
      MonotonicSeconds() > guard_.deadline_wall_until_seconds) {
    std::ostringstream os;
    os << "wall deadline";
    if (guard_.deadline_wall_seconds > 0.0) {
      os << " of " << guard_.deadline_wall_seconds << "s";
    }
    os << " exceeded at iteration " << iteration;
    return util::Status::DeadlineExceeded(os.str());
  }
  return util::Status::OK();
}

void Engine::MaybeCheckpoint(uint32_t iterations_completed,
                             const std::vector<NodeId>& frontier,
                             bool global) {
  if (guard_.checkpoint_sink == nullptr || guard_.checkpoint_interval == 0) {
    return;
  }
  if (iterations_completed == 0 ||
      iterations_completed % guard_.checkpoint_interval != 0) {
    return;
  }
  Checkpoint ckpt;
  ckpt.program_name = program_->name();
  ckpt.iteration = iterations_completed;
  ckpt.reorder_rounds = reorder_rounds();
  ckpt.global = global;
  if (!global) ckpt.frontier = frontier;
  // Programs that cannot snapshot their state simply are not checkpointed;
  // their recovery path is a full rerun.
  if (!program_->SaveState(&ckpt.app_state)) return;
  ckpt.Seal();
  if (sim::FaultInjector* injector = device_->fault_injector()) {
    // Storage corruption strikes *after* sealing, so the digest is the
    // detector (Resume returns kCorruption).
    injector->MaybeCorruptCheckpoint(
        static_cast<int64_t>(iterations_completed),
        std::span<uint8_t>(ckpt.app_state));
  }
  guard_.checkpoint_sink->Save(ckpt);
  m_checkpoints_->Add(1);
}

util::StatusOr<RunStats> Engine::Resume(const Checkpoint& checkpoint,
                                        uint32_t max_iterations) {
  if (program_ == nullptr) {
    return util::Status::FailedPrecondition("no program bound");
  }
  if (!checkpoint.Valid()) {
    std::ostringstream os;
    os << "checkpoint digest mismatch (program '" << checkpoint.program_name
       << "', iteration " << checkpoint.iteration << ")";
    return util::Status::Corruption(os.str());
  }
  if (checkpoint.program_name != program_->name()) {
    std::ostringstream os;
    os << "checkpoint was taken by program '" << checkpoint.program_name
       << "' but '" << program_->name() << "' is bound";
    return util::Status::FailedPrecondition(os.str());
  }
  if (checkpoint.reorder_rounds != reorder_rounds()) {
    std::ostringstream os;
    os << "checkpoint internal-id epoch " << checkpoint.reorder_rounds
       << " != engine epoch " << reorder_rounds()
       << ": node relabeling invalidated it";
    return util::Status::FailedPrecondition(os.str());
  }
  if (checkpoint.iteration > max_iterations) {
    return util::Status::InvalidArgument(
        "checkpoint is beyond max_iterations");
  }
  if (!program_->RestoreState(
          std::span<const uint8_t>(checkpoint.app_state))) {
    std::ostringstream os;
    os << "program '" << program_->name()
       << "' failed to restore checkpointed state";
    return util::Status::FailedPrecondition(os.str());
  }
  std::vector<NodeId> frontier;
  if (checkpoint.global) {
    frontier.resize(csr_.num_nodes());
    std::iota(frontier.begin(), frontier.end(), NodeId{0});
  } else {
    frontier = checkpoint.frontier;
  }
  return RunLoop(std::move(frontier), checkpoint.iteration, max_iterations,
                 checkpoint.global);
}

util::StatusOr<RunStats> Engine::RunOneIteration(
    std::span<const NodeId> frontier_internal, std::vector<NodeId>* next) {
  if (program_ == nullptr) {
    return util::Status::FailedPrecondition("no program bound");
  }
  std::vector<NodeId> frontier(frontier_internal.begin(),
                               frontier_internal.end());
  std::vector<NodeId> local_next;
  sim::FaultInjector* injector = device_->fault_injector();
  if (injector != nullptr) injector->SetIteration(one_iteration_seq_);
  RunStats stats = ExpandIteration(frontier, &local_next);
  if (injector != nullptr) {
    // Same contract as Run: kernel-raised faults (transient failures,
    // injected OOMs) surface at the iteration boundary.
    util::Status fault = injector->TakePendingFault();
    if (!fault.ok()) return DecorateFault(fault, one_iteration_seq_);
  }
  ++one_iteration_seq_;
  MaybeApplyReordering(&local_next, &stats);
  if (next != nullptr) *next = std::move(local_next);
  PublishHostPerfMetrics();
  return stats;
}

RunStats Engine::ExpandIteration(const std::vector<NodeId>& frontier,
                                 std::vector<NodeId>* next) {
  const auto& spec = device_->spec();
  next->clear();
  device_->BeginKernel();
  uint64_t edges = 0;

  // UDT layer: translate the real frontier into its virtual-node groups
  // (one group-offsets read per frontier node). Translation scratch is
  // engine-persistent, so steady-state iterations allocate nothing.
  const std::vector<NodeId>* work = &frontier;
  if (udt_ != nullptr) {
    gidx_scratch_.resize(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) gidx_scratch_[i] = frontier[i];
    if (!gidx_scratch_.empty()) device_->Access(0, udt_group_buf_, gidx_scratch_);
    virtual_frontier_.clear();
    for (NodeId f : frontier) {
      for (graph::EdgeId g = udt_->group_offsets[f];
           g < udt_->group_offsets[f + 1]; ++g) {
        virtual_frontier_.push_back(static_cast<NodeId>(g));
      }
    }
    work = &virtual_frontier_;
  }

  // The iteration's frontier was swapped (or uploaded) into the read
  // buffer between kernels; an uncharged pointer-swap, but a functional
  // write for shadow-init purposes.
  device_->NoteBufferWrite(frontier_buf_[0], 0, work->size());

  if (options_.strategy == ExpandStrategy::kB40c) {
    edges = ExpandB40c(*work, next);
  } else if (options_.strategy == ExpandStrategy::kWarpCentric) {
    edges = ExpandWarpCentric(*work, next);
  } else if (options_.resident_tiles) {
    edges = ExpandResident(*work, next);
  } else {
    const uint32_t bs = spec.block_size;
    uint64_t num_blocks = (work->size() + bs - 1) / bs;
    DispatchOrderInto(num_blocks, options_.dispatch_permutation_seed, 0xA1,
                      &dispatch_order_);
    const std::vector<size_t>& order = dispatch_order_;
    const std::vector<NodeId>& nodes = *work;
    edges = RunStage(
        order.size(),
        [&](ExpandContext& cx, size_t rank, std::vector<NodeId>* nx) {
          size_t b = order[rank];
          uint32_t sm = device_->StaticSmForBlock(b);
          size_t beg = b * bs;
          size_t len = std::min<size_t>(bs, nodes.size() - beg);
          std::span<const NodeId> slice(nodes.data() + beg, len);
          cx.ChargeBlockFrontierReads(sm, &frontier_buf_[0], beg, slice);
          if (options_.tiled_partitioning) {
            return ExpandBlockTiled(cx, sm, slice, tiled_options_, nx);
          }
          return ExpandBlockScalar(cx, sm, slice, bs, spec.warp_size, nx);
        },
        next);
  }

  ctx_.ChargeContraction(&frontier_buf_[1], next->size());
  sim::KernelResult kr = device_->EndKernel();

  RunStats stats;
  stats.iterations = 1;
  stats.edges_traversed = edges;
  stats.frontier_nodes = frontier.size();
  stats.seconds = kr.seconds;
  stats.tp_overhead_seconds = device_->CyclesToSeconds(
      static_cast<double>(kr.total_tp_overhead_cycles) / spec.num_sms);
  if (trace_ != nullptr) trace_->push_back(stats);
  return stats;
}

uint64_t Engine::ExpandResident(const std::vector<NodeId>& frontier,
                                std::vector<NodeId>* next) {
  const auto& spec = device_->spec();
  const uint32_t bs = spec.block_size;
  uint64_t edges = 0;

  // ---- Phase A: expand tiled partitions into device memory (Alg 3 l.2-7).
  iter_tiles_.clear();
  uint64_t num_blocks = (frontier.size() + bs - 1) / bs;
  DispatchOrderInto(num_blocks, options_.dispatch_permutation_seed, 0xB2,
                    &dispatch_order_);
  for (size_t b : dispatch_order_) {
    uint32_t sm = device_->StaticSmForBlock(b);
    size_t beg = b * bs;
    size_t len = std::min<size_t>(bs, frontier.size() - beg);
    std::span<const NodeId> slice(frontier.data() + beg, len);
    ctx_.ChargeBlockFrontierReads(sm, &frontier_buf_[0], beg, slice);
    device_->ChargeWarps(sm, (len + spec.warp_size - 1) / spec.warp_size);

    // Read the per-node store heads.
    head_idx_scratch_.assign(slice.begin(), slice.end());
    device_->Access(sm, head_buf_, head_idx_scratch_);

    std::vector<uint64_t>& pool_reads = pool_reads_scratch_;
    pool_reads.clear();
    uint64_t pool_write_begin = store_.size();
    uint64_t new_entries = 0;
    uint64_t appended = 0;
    for (NodeId f : slice) {
      if (store_.Has(f)) {
        // Reuse the resident decomposition: read it from the pool.
        auto entries = store_.Get(f);
        uint64_t head = store_.HeadIndex(f);
        for (size_t i = 0; i < entries.size(); ++i) {
          pool_reads.push_back(head + i);
        }
        iter_tiles_.insert(iter_tiles_.end(), entries.begin(), entries.end());
        appended += entries.size();
      } else {
        // First visit: run tiled partitioning online and persist it.
        decompose_scratch_.clear();
        DecomposeAdjacency(f, csr_.NeighborBegin(f), csr_.OutDegree(f),
                           tiled_options_, spec.ValuesPerSector(),
                           &decompose_scratch_);
        // Scheduling cost: one pass of elections over the adjacency.
        device_->ChargeTpOverhead(
            sm, static_cast<uint64_t>(ExpandCosts::kElectionOps) *
                        spec.cg_op_cycles * decompose_scratch_.size() +
                    spec.cg_op_cycles);
        uint64_t at = store_.Put(f, decompose_scratch_);
        // Entries are globally visible before the head CAS publishes them
        // (write + threadfence precede the CAS), so a duplicate frontier
        // occurrence that wins the Has() check later in this kernel reads
        // initialized memory. Note the functional write now; the streaming
        // bytes are still charged once per block below.
        device_->NoteBufferWrite(pool_buf_, at, decompose_scratch_.size(),
                                 sim::AccessIntent::kWriteIdempotent);
        // The head pointer publish is a CAS the cost model folds into the
        // TP overhead above; record it for the shadow/race model.
        device_->NoteBufferWrite(head_buf_, f, 1, sim::AccessIntent::kAtomic);
        new_entries += decompose_scratch_.size();
        iter_tiles_.insert(iter_tiles_.end(), decompose_scratch_.begin(),
                           decompose_scratch_.end());
        appended += decompose_scratch_.size();
      }
    }
    if (!pool_reads.empty()) device_->Access(sm, pool_buf_, pool_reads);
    if (new_entries > 0) {
      // Idempotent: if the same node appears twice in one frontier, both
      // writers would persist the identical decomposition (and the head CAS
      // publishes it exactly once).
      device_->AccessRange(sm, pool_buf_, pool_write_begin, new_entries,
                           sim::AccessIntent::kWriteIdempotent);
    }
    if (iter_tiles_.size() > tile_array_buf_.num_elems) {
      // Duplicate-heavy frontiers (a node admitted once per parent under
      // idempotent dirty writes) re-append a node's entries per occurrence,
      // so the per-iteration tile array can outgrow any static cap tied to
      // unique nodes. Model the queue realloc; runs that fit the original
      // capacity are charged identically.
      device_->mem().Grow(&tile_array_buf_,
                          std::max<uint64_t>(iter_tiles_.size(),
                                             2 * tile_array_buf_.num_elems));
    }
    if (appended > 0) {
      device_->AccessRange(sm, tile_array_buf_,
                           iter_tiles_.size() - appended, appended,
                           sim::AccessIntent::kWrite);
    }
  }

  // ---- Phase B: device-wide consumption with stealing (Alg 3 l.9-17).
  // Tile records are globally visible; each is popped by whichever SM has
  // spare capacity (modeled as least-loaded assignment). Publishing the
  // tile array and switching every SM to consumption is a device-wide
  // ordering point (grid sync / queue publish + threadfence): tell the
  // race checker Phase A writes cannot race Phase B reads.
  device_->FenceKernelPhase();
  fragment_scratch_.clear();
  big_tile_scratch_.clear();
  for (size_t i = 0; i < iter_tiles_.size(); ++i) {
    const TileEntry& t = iter_tiles_[i];
    if (t.size >= options_.min_tile_size) {
      big_tile_scratch_.push_back(i);
    } else {
      for (uint32_t k = 0; k < t.size; ++k) {
        fragment_scratch_.emplace_back(t.node, t.offset + k);
      }
    }
  }
  // The global pop is modeled by a deterministic greedy schedule: per-SM
  // loads are seeded from the post-Phase-A busy proxies and each popped
  // tile goes to the estimated-least-loaded SM. Unlike LeastLoadedSm (which
  // reads live L2-outcome-dependent counters mid-phase), the schedule is a
  // pure function of pre-phase state — so serial and parallel execution
  // assign every tile to the same SM.
  DispatchOrderInto(big_tile_scratch_.size(),
                    options_.dispatch_permutation_seed, 0xB3,
                    &dispatch_order_);
  const std::vector<size_t>& big_order = dispatch_order_;
  {
    costs_scratch_.resize(big_order.size());
    for (size_t r = 0; r < big_order.size(); ++r) {
      costs_scratch_[r] = TileUnitCost(
          iter_tiles_[big_tile_scratch_[big_order[r]]].size);
    }
    ScheduleUnits(costs_scratch_);
  }
  edges += RunStage(
      big_order.size(),
      [&](ExpandContext& cx, size_t rank, std::vector<NodeId>* nx) {
        size_t i = big_tile_scratch_[big_order[rank]];
        const TileEntry& t = iter_tiles_[i];
        uint32_t sm = unit_sms_[rank];
        device_->ChargeCompute(sm, ExpandCosts::kQueuePopOps);
        device_->ChargeWarps(sm,
                             (t.size + spec.warp_size - 1) / spec.warp_size);
        uint64_t one = i;
        device_->Access(sm, tile_array_buf_,
                        std::span<const uint64_t>(&one, 1));
        return cx.ProcessTileChunk(sm, t.node, t.offset, t.size, nx);
      },
      next);
  // Fragments: warp-sized scan-gathered batches, also stolen. Their
  // schedule is seeded from the post-big-tile proxies — identical in both
  // modes because replay reproduced the identical SM state.
  size_t num_batches =
      (fragment_scratch_.size() + spec.warp_size - 1) / spec.warp_size;
  DispatchOrderInto(num_batches, options_.dispatch_permutation_seed, 0xB4,
                    &dispatch_order_);
  const std::vector<size_t>& frag_order = dispatch_order_;
  {
    costs_scratch_.resize(frag_order.size());
    for (size_t r = 0; r < frag_order.size(); ++r) {
      size_t base = frag_order[r] * spec.warp_size;
      size_t len =
          std::min<size_t>(spec.warp_size, fragment_scratch_.size() - base);
      costs_scratch_[r] = TileUnitCost(len);
    }
    ScheduleUnits(costs_scratch_);
  }
  edges += RunStage(
      frag_order.size(),
      [&](ExpandContext& cx, size_t rank, std::vector<NodeId>* nx) {
        size_t base = frag_order[rank] * spec.warp_size;
        size_t len =
            std::min<size_t>(spec.warp_size, fragment_scratch_.size() - base);
        uint32_t sm = unit_sms_[rank];
        device_->ChargeCompute(sm, ExpandCosts::kScanOps);
        device_->ChargeWarps(sm, 1);
        return cx.ProcessScatteredEdges(
            sm,
            std::span<const std::pair<NodeId, EdgeId>>(
                fragment_scratch_.data() + base, len),
            nx);
      },
      next);
  return edges;
}

uint64_t Engine::ExpandB40c(const std::vector<NodeId>& frontier,
                            std::vector<NodeId>* next) {
  const auto& spec = device_->spec();
  const graph::Csr& csr = ctx_.csr();
  const uint32_t bs = spec.block_size;
  const uint32_t ws = spec.warp_size;
  uint64_t edges = 0;

  // Classification pass: every block reads its frontier slice, looks up
  // degrees and scatters nodes into the three buckets via scans + syncs
  // (the synchronization-heavy rescheduling Section 5.3 describes).
  // Buckets are engine-persistent scratch: cleared here, capacity kept.
  std::vector<NodeId>& big = b40c_big_;
  std::vector<NodeId>& medium = b40c_medium_;
  std::vector<NodeId>& small = b40c_small_;
  big.clear();
  medium.clear();
  small.clear();
  uint64_t num_blocks = (frontier.size() + bs - 1) / bs;
  DispatchOrderInto(num_blocks, options_.dispatch_permutation_seed, 0xC1,
                    &dispatch_order_);
  for (size_t b : dispatch_order_) {
    uint32_t sm = device_->StaticSmForBlock(b);
    size_t beg = b * bs;
    size_t len = std::min<size_t>(bs, frontier.size() - beg);
    std::span<const NodeId> slice(frontier.data() + beg, len);
    ctx_.ChargeBlockFrontierReads(sm, &frontier_buf_[0], beg, slice);
    device_->ChargeCompute(sm, 2ull * ExpandCosts::kScanOps +
                                   2ull * spec.sync_cycles);
    for (NodeId f : slice) {
      uint32_t deg = csr.OutDegree(f);
      if (deg >= bs) {
        big.push_back(f);
      } else if (deg >= ws) {
        medium.push_back(f);
      } else if (deg > 0) {
        small.push_back(f);
      }
    }
  }

  // The three buckets' SM placements are pure block-counter arithmetic, so
  // the full unit list (in the exact serial dispatch order) is precomputed
  // and executed as one stage.
  std::vector<B40cUnit>& units = b40c_units_;
  units.clear();
  uint64_t block_counter = 0;
  // Bucket 1: block-sized gathering — one thread block per super node.
  DispatchOrderInto(big.size(), options_.dispatch_permutation_seed, 0xC2,
                    &dispatch_order_);
  for (size_t bi : dispatch_order_) {
    units.push_back(
        {0, big[bi], 0, 0, device_->StaticSmForBlock(block_counter++)});
  }
  // Bucket 2: warp-sized gathering — one warp per medium node.
  const uint32_t warps_per_block = bs / ws;
  DispatchOrderInto(medium.size(), options_.dispatch_permutation_seed, 0xC3,
                    &dispatch_order_);
  for (size_t i : dispatch_order_) {
    units.push_back(
        {1, medium[i], 0, 0,
         device_->StaticSmForBlock(block_counter + i / warps_per_block)});
  }
  block_counter += (medium.size() + warps_per_block - 1) / warps_per_block;
  // Bucket 3: fine-grained scan-based gathering of the small remainder.
  std::vector<std::pair<NodeId, graph::EdgeId>>& fine = b40c_fine_;
  fine.clear();
  for (NodeId f : small) {
    for (graph::EdgeId e = csr.NeighborBegin(f); e < csr.NeighborEnd(f);
         ++e) {
      fine.emplace_back(f, e);
    }
  }
  size_t fine_batches = (fine.size() + ws - 1) / ws;
  DispatchOrderInto(fine_batches, options_.dispatch_permutation_seed, 0xC4,
                    &dispatch_order_);
  for (size_t fb : dispatch_order_) {
    size_t base = fb * ws;
    size_t len = std::min<size_t>(ws, fine.size() - base);
    units.push_back({2, 0, base, len,
                     device_->StaticSmForBlock(block_counter + base / bs)});
  }

  edges += RunStage(
      units.size(),
      [&](ExpandContext& cx, size_t rank, std::vector<NodeId>* nx) {
        const B40cUnit& u = units[rank];
        uint64_t e = 0;
        if (u.kind == 0) {
          device_->ChargeWarps(u.sm, bs / ws);
          graph::EdgeId g = csr.NeighborBegin(u.node);
          uint64_t remaining = csr.OutDegree(u.node);
          while (remaining > 0) {
            uint32_t m =
                static_cast<uint32_t>(std::min<uint64_t>(bs, remaining));
            e += cx.ProcessTileChunk(u.sm, u.node, g, m, nx);
            device_->ChargeCompute(u.sm, spec.sync_cycles);  // block stepping
            g += m;
            remaining -= m;
          }
        } else if (u.kind == 1) {
          device_->ChargeWarps(u.sm, 1);
          device_->ChargeCompute(u.sm, 2ull * spec.cg_op_cycles);
          graph::EdgeId g = csr.NeighborBegin(u.node);
          uint64_t remaining = csr.OutDegree(u.node);
          while (remaining > 0) {
            uint32_t m =
                static_cast<uint32_t>(std::min<uint64_t>(ws, remaining));
            e += cx.ProcessTileChunk(u.sm, u.node, g, m, nx);
            g += m;
            remaining -= m;
          }
        } else {
          device_->ChargeWarps(u.sm, 1);
          device_->ChargeCompute(u.sm, ExpandCosts::kScanOps);
          e += cx.ProcessScatteredEdges(
              u.sm,
              std::span<const std::pair<NodeId, graph::EdgeId>>(
                  fine.data() + u.base, u.len),
              nx);
        }
        return e;
      },
      next);
  return edges;
}

uint64_t Engine::ExpandWarpCentric(const std::vector<NodeId>& frontier,
                                   std::vector<NodeId>* next) {
  const auto& spec = device_->spec();
  const graph::Csr& csr = ctx_.csr();
  const uint32_t bs = spec.block_size;
  const uint32_t ws = spec.warp_size;
  const uint32_t warps_per_block = bs / ws;
  uint64_t edges = 0;

  uint64_t num_warps = (frontier.size() + ws - 1) / ws;
  DispatchOrderInto(num_warps, options_.dispatch_permutation_seed, 0xC5,
                    &dispatch_order_);
  const std::vector<size_t>& order = dispatch_order_;
  edges = RunStage(
      order.size(),
      [&](ExpandContext& cx, size_t rank, std::vector<NodeId>* nx) {
        size_t w = order[rank];
        uint32_t sm = device_->StaticSmForBlock(w / warps_per_block);
        size_t beg = w * ws;
        size_t len = std::min<size_t>(ws, frontier.size() - beg);
        std::span<const NodeId> slice(frontier.data() + beg, len);
        cx.ChargeBlockFrontierReads(sm, &frontier_buf_[0], beg, slice);
        device_->ChargeWarps(sm, 1);
        // The warp serially drains each of its frontiers' adjacencies in
        // warp-wide strides; short lists leave lanes idle (no finer
        // regrouping).
        uint64_t e = 0;
        for (NodeId f : slice) {
          device_->ChargeCompute(sm, 2ull * spec.cg_op_cycles);
          graph::EdgeId g = csr.NeighborBegin(f);
          uint64_t remaining = csr.OutDegree(f);
          while (remaining > 0) {
            uint32_t m =
                static_cast<uint32_t>(std::min<uint64_t>(ws, remaining));
            e += cx.ProcessTileChunk(sm, f, g, m, nx);
            g += m;
            remaining -= m;
          }
        }
        return e;
      },
      next);
  return edges;
}

void Engine::MaybeApplyReordering(std::vector<NodeId>* live_frontier,
                                  RunStats* stats) {
  if (!sampler_) return;
  auto perm = sampler_->MaybeTakePermutation();
  if (!perm.has_value()) return;

  // Relabel the graph representation in place (Section 6's update step).
  csr_ = reorder::ApplyToCsr(csr_, *perm);
  orig_to_int_ = reorder::ComposePermutations(orig_to_int_, *perm);
  int_to_orig_ = reorder::InvertPermutation(orig_to_int_);
  if (live_frontier != nullptr) {
    reorder::RemapIds(*perm, *live_frontier);
  }
  if (program_ != nullptr) {
    program_->OnPermutation(*perm);
  }
  // Resident decompositions refer to pre-relabeling offsets.
  store_.Invalidate();

  ChargeReorderUpdateKernel(stats);
  stats->reorder_rounds += 1;
}

void Engine::ChargeReorderUpdateKernel(RunStats* stats) {
  // Modeled cost of the update step: radix-sorting the expected-index
  // array (4 passes over keys+values) and rewriting u_offsets / v plus the
  // bound program's attribute arrays. All streaming traffic.
  const auto& spec = device_->spec();
  const uint64_t n = csr_.num_nodes();
  const uint64_t m = csr_.num_edges();
  uint64_t bytes = 0;
  bytes += 4ull * 2 * (n * 4 + n * 4);            // radix sort passes
  bytes += 2ull * (n + 1) * sizeof(EdgeId);       // offsets rebuild
  bytes += 2ull * m * sizeof(NodeId);             // v relabel + scatter
  size_t attr_arrays = program_ == nullptr
                           ? 0
                           : program_->footprint().neighbor_reads.size() +
                                 program_->footprint().neighbor_writes.size();
  bytes += 2ull * attr_arrays * n * 4;            // permute attributes

  device_->BeginKernel();
  uint64_t per_sm = bytes / spec.num_sms + 1;
  for (uint32_t s = 0; s < spec.num_sms; ++s) {
    device_->ChargeStreamingBytes(s, per_sm);
  }
  sim::KernelResult kr = device_->EndKernel();
  stats->reorder_seconds += kr.seconds;
  reorder_seconds_total_ += kr.seconds;
  // The relabeled layout invalidates cached graph data.
  device_->mem().FlushL2();
}

}  // namespace sage::core
