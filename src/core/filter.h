#ifndef SAGE_CORE_FILTER_H_
#define SAGE_CORE_FILTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "sim/memory_sim.h"

namespace sage::core {

class Engine;

/// Which node-attribute buffers a filter touches per traversed edge. The
/// engine charges one memory batch per listed buffer per tile access, with
/// the neighbor-side batches being the scattered, locality-sensitive
/// accesses that Sampling-based Reordering optimizes (Section 6).
struct Footprint {
  /// Arrays read at index `neighbor` for every edge (e.g. BFS dist[]).
  std::vector<const sim::Buffer*> neighbor_reads;
  /// Arrays written at index `neighbor` for every passing edge.
  std::vector<const sim::Buffer*> neighbor_writes;
  /// Arrays read at index `frontier` once per tile access (broadcast).
  std::vector<const sim::Buffer*> frontier_reads;
  /// Arrays indexed by *edge position* (parallel to csr.v), read for every
  /// traversed edge — e.g. an edge-weight array. Tile accesses read them
  /// coalesced alongside the adjacency gather.
  std::vector<const sim::Buffer*> edge_reads;
  /// Arrays written at index `frontier` (e.g. BC backward delta[]).
  std::vector<const sim::Buffer*> frontier_writes;
  /// Neighbor-side updates use atomics; duplicate neighbor ids within one
  /// tile access serialize (Section 7.2's atomicity factor).
  bool atomic_neighbor = false;
  /// Frontier-side updates use atomics; lanes of a tile hit the same
  /// address but a warp-aggregated reduction leaves one RMW per tile.
  bool atomic_frontier = false;
  /// Non-atomic neighbor writes are value-idempotent: any two writers that
  /// can hit the same element in one iteration store the same value (BFS's
  /// dirty level writes — Section 7.2's "no atomics needed" class). Declares
  /// the benign race to SageCheck; ignored when atomic_neighbor is set.
  bool idempotent_neighbor_writes = false;
  /// Same declaration for non-atomic frontier-side writes (e.g. a program
  /// that claims a frontier cell once per iteration under its own guard).
  bool idempotent_frontier_writes = false;
};

/// The user-facing programming interface of SAGE (Section 4, Algorithm 1):
/// applications implement the filtering step, which is invoked for every
/// (frontier, neighbor) edge during traversal; returning true admits the
/// neighbor into the next iteration's frontier. Everything else —
/// expansion, load reallocation, contraction — is the framework's job.
///
/// All NodeIds passed to this interface are *internal* ids (they follow the
/// engine's current node ordering). OnPermutation tells the program to
/// remap its own state when Sampling-based Reordering relabels the graph.
class FilterProgram {
 public:
  virtual ~FilterProgram() = default;

  /// Called once before the program runs: register attribute buffers with
  /// the engine's device and size internal state to the graph.
  virtual void Bind(Engine* engine) = 0;

  /// The filtering step. Must be deterministic given its inputs.
  virtual bool Filter(graph::NodeId frontier, graph::NodeId neighbor) = 0;

  /// Invoked at the start of every traversal iteration.
  virtual void BeginIteration(uint32_t iteration) { (void)iteration; }

  /// The engine relabeled node ids: new_of_old[old] == new. Programs must
  /// permute their attribute arrays and any cached id lists.
  virtual void OnPermutation(std::span<const graph::NodeId> new_of_old) {
    (void)new_of_old;
  }

  /// Serializes the program's complete per-run state (attribute arrays,
  /// counters) into *out for checkpointing (SageGuard; DESIGN.md §7).
  /// Returns false when the program does not support checkpoint/resume —
  /// the engine then simply skips checkpointing it. Implementations append
  /// nothing on failure.
  virtual bool SaveState(std::vector<uint8_t>* out) const {
    (void)out;
    return false;
  }

  /// Restores state previously produced by SaveState on a program bound to
  /// the same graph. Returns false on malformed input (wrong size/shape);
  /// state is unspecified after a failed restore, so callers must rerun
  /// from scratch.
  virtual bool RestoreState(std::span<const uint8_t> bytes) {
    (void)bytes;
    return false;
  }

  /// Memory behaviour per edge; must remain stable while running.
  virtual const Footprint& footprint() const = 0;

  /// A short name for reports ("bfs", "bc-forward", ...).
  virtual const char* name() const = 0;
};

/// Aggregate result of a traversal run (one or more kernels).
struct RunStats {
  uint32_t iterations = 0;
  uint64_t edges_traversed = 0;
  uint64_t frontier_nodes = 0;
  /// Modeled GPU seconds (cost model; DESIGN.md §3).
  double seconds = 0.0;
  /// Portion of `seconds` spent in Tiled Partitioning scheduling (Table 3).
  double tp_overhead_seconds = 0.0;
  /// Modeled seconds spent applying Sampling-based Reordering rounds.
  double reorder_seconds = 0.0;
  uint32_t reorder_rounds = 0;

  /// Traversal speed in billions of edges per second — the paper's metric.
  double GTeps() const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(edges_traversed) / seconds /
                                1e9;
  }

  void Accumulate(const RunStats& other) {
    iterations += other.iterations;
    edges_traversed += other.edges_traversed;
    frontier_nodes += other.frontier_nodes;
    seconds += other.seconds;
    tp_overhead_seconds += other.tp_overhead_seconds;
    reorder_seconds += other.reorder_seconds;
    reorder_rounds += other.reorder_rounds;
  }
};

}  // namespace sage::core

#endif  // SAGE_CORE_FILTER_H_
