#include "check/access_checker.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace sage::check {
namespace {

/// conflict_mask[i] is the bitmask of intents that race against intent i
/// when issued from a different SM within one kernel phase. Bit positions
/// follow the AccessIntent enum values (read=0, write=1, atomic=2,
/// idempotent-write=3).
constexpr uint8_t kConflictMask[4] = {
    /*kRead*/ 0b0010,             // races only against plain writes
    /*kWrite*/ 0b1111,            // races against everything, incl. writes
    /*kAtomic*/ 0b1010,           // plain and idempotent writes
    /*kWriteIdempotent*/ 0b0110,  // plain writes and atomics
};

constexpr bool IsWriteIntent(sim::AccessIntent intent) {
  return intent != sim::AccessIntent::kRead;
}

uint64_t ElemKey(const sim::Buffer& buffer, uint64_t elem) {
  // Buffer ids are small and dense; element indices fit well under 2^44 for
  // any graph this simulator models.
  return (static_cast<uint64_t>(buffer.id) << 44) | elem;
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOutOfBounds:
      return "out-of-bounds";
    case ViolationKind::kRaceWriteWrite:
      return "write-write race";
    case ViolationKind::kRaceReadWrite:
      return "read-write race";
    case ViolationKind::kUninitRead:
      return "uninitialized read";
    case ViolationKind::kBracketing:
      return "kernel bracketing";
  }
  return "unknown";
}

AccessChecker::AccessChecker(sim::CheckLevel level) : level_(level) {}

void AccessChecker::OnKernelBegin(uint64_t kernel_seq) {
  kernel_open_ = true;
  kernel_ = kernel_seq;
  ++era_;
  // A fresh kernel cannot race against a finished one; dropping the map
  // here bounds its size by the footprint of a single kernel.
  race_.clear();
}

void AccessChecker::OnKernelEnd(uint64_t /*kernel_seq*/) {
  kernel_open_ = false;
}

void AccessChecker::OnPhaseFence(uint64_t /*kernel_seq*/) {
  // Accesses separated by a grid-wide sync are ordered. Bumping the era
  // lazily invalidates every ElemState without walking the map.
  ++era_;
}

void AccessChecker::OnAccess(uint32_t sm, const sim::Buffer& buffer,
                             std::span<const uint64_t> elem_indices,
                             sim::AccessIntent intent) {
  for (uint64_t elem : elem_indices) {
    if (elem >= buffer.num_elems) {
      ReportOob(sm, buffer, elem, intent);
      continue;
    }
    CheckElem(sm, buffer, elem, intent);
  }
}

void AccessChecker::OnAccessRange(uint32_t sm, const sim::Buffer& buffer,
                                  uint64_t first, uint64_t count,
                                  sim::AccessIntent intent) {
  if (count == 0) return;
  uint64_t last = first + count - 1;
  if (last >= buffer.num_elems) {
    // Report the first offending index only; a range overflow is one bug,
    // not (count - in_bounds) bugs.
    uint64_t bad = std::max(first, buffer.num_elems);
    ReportOob(sm, buffer, bad, intent);
    if (first >= buffer.num_elems) return;
    last = buffer.num_elems - 1;
  }
  for (uint64_t elem = first; elem <= last; ++elem) {
    CheckElem(sm, buffer, elem, intent);
  }
}

void AccessChecker::OnBufferNote(const sim::Buffer& buffer, uint64_t first,
                                 uint64_t count, sim::AccessIntent intent) {
  // Notes are uncharged functional writes (uploads, memsets, metadata
  // publishes): they initialize shadow memory but carry no SM identity, so
  // they do not participate in race detection.
  if (IsWriteIntent(intent)) MarkWrittenRange(buffer, first, count);
}

void AccessChecker::OnBracketingViolation(std::string_view what) {
  Violation v;
  v.kind = ViolationKind::kBracketing;
  v.kernel = kernel_;
  v.message = std::string("bracketing: ") + std::string(what);
  AddViolation(std::move(v));
}

void AccessChecker::CheckElem(uint32_t sm, const sim::Buffer& buffer,
                              uint64_t elem, sim::AccessIntent intent) {
  if (level_ != sim::CheckLevel::kFull) return;

  // initcheck: a read of an element nothing has ever written.
  if (intent == sim::AccessIntent::kRead) {
    auto shadow_it = shadow_.find(buffer.id);
    if (shadow_it == shadow_.end() ||
        !IsWritten(shadow_it->second, elem)) {
      auto& seen = uninit_reported_[buffer.id];
      if (seen.insert(elem).second) {
        Violation v;
        v.kind = ViolationKind::kUninitRead;
        v.buffer_id = buffer.id;
        v.buffer_name = buffer.name;
        v.elem = elem;
        v.sm_a = sm;
        v.intent_a = intent;
        v.kernel = kernel_;
        std::ostringstream os;
        os << "uninitialized read: buffer '" << buffer.name << "' elem "
           << elem << " read by SM " << sm << " in kernel " << kernel_
           << " before any write";
        v.message = os.str();
        AddViolation(std::move(v));
      }
    }
  } else {
    MarkWritten(buffer, elem);
  }

  // racecheck: pair this access against every intent class already seen on
  // the element in the current kernel phase.
  ElemState& st = race_[ElemKey(buffer, elem)];
  if (st.era != era_) {
    st = ElemState();
    st.era = era_;
  }
  uint8_t idx = static_cast<uint8_t>(intent);
  if (!st.reported) {
    uint8_t conflicts = kConflictMask[idx] & st.seen;
    for (uint8_t j = 0; j < 4 && conflicts != 0; ++j) {
      if ((conflicts & (1u << j)) == 0) continue;
      // Same-SM accesses are program-ordered; a conflict needs a second SM:
      // either the prior intent came from a different SM, or it was already
      // seen from at least two SMs.
      bool cross_sm = st.first_sm[j] != sm || (st.multi & (1u << j)) != 0;
      if (!cross_sm) continue;
      sim::AccessIntent other = static_cast<sim::AccessIntent>(j);
      Violation v;
      v.kind = (intent == sim::AccessIntent::kRead ||
                other == sim::AccessIntent::kRead)
                   ? ViolationKind::kRaceReadWrite
                   : ViolationKind::kRaceWriteWrite;
      v.buffer_id = buffer.id;
      v.buffer_name = buffer.name;
      v.elem = elem;
      v.sm_a = st.first_sm[j];
      v.sm_b = sm;
      v.intent_a = other;
      v.intent_b = intent;
      v.kernel = kernel_;
      std::ostringstream os;
      os << ViolationKindName(v.kind) << ": buffer '" << buffer.name
         << "' elem " << elem << ", " << sim::AccessIntentName(other)
         << " by SM " << v.sm_a << " vs " << sim::AccessIntentName(intent)
         << " by SM " << sm << " in kernel " << kernel_
         << " with no ordering between them";
      v.message = os.str();
      AddViolation(std::move(v));
      st.reported = true;  // one report per element per phase
      break;
    }
  }
  if ((st.seen & (1u << idx)) == 0) {
    st.seen |= static_cast<uint8_t>(1u << idx);
    st.first_sm[idx] = sm;
  } else if (st.first_sm[idx] != sm) {
    st.multi |= static_cast<uint8_t>(1u << idx);
  }
}

void AccessChecker::ReportOob(uint32_t sm, const sim::Buffer& buffer,
                              uint64_t elem, sim::AccessIntent intent) {
  // Bounds violations are detected at kBounds and above.
  if (level_ == sim::CheckLevel::kOff) return;
  Violation v;
  v.kind = ViolationKind::kOutOfBounds;
  v.buffer_id = buffer.id;
  v.buffer_name = buffer.name;
  v.elem = elem;
  v.sm_a = sm;
  v.intent_a = intent;
  v.kernel = kernel_;
  std::ostringstream os;
  os << "out-of-bounds " << sim::AccessIntentName(intent) << ": buffer '"
     << buffer.name << "' elem " << elem << " >= num_elems "
     << buffer.num_elems << " by SM " << sm << " in kernel " << kernel_;
  v.message = os.str();
  AddViolation(std::move(v));
}

void AccessChecker::MarkWritten(const sim::Buffer& buffer, uint64_t elem) {
  Shadow& shadow = shadow_[buffer.id];
  if (shadow.all) return;
  if (shadow.bits.size() < buffer.num_elems) {
    shadow.bits.resize(buffer.num_elems, false);
  }
  shadow.bits[elem] = true;
}

void AccessChecker::MarkWrittenRange(const sim::Buffer& buffer, uint64_t first,
                                     uint64_t count) {
  if (count == 0) return;
  Shadow& shadow = shadow_[buffer.id];
  if (shadow.all) return;
  if (first == 0 && count >= buffer.num_elems) {
    shadow.all = true;
    shadow.bits.clear();
    shadow.bits.shrink_to_fit();
    return;
  }
  if (shadow.bits.size() < buffer.num_elems) {
    shadow.bits.resize(buffer.num_elems, false);
  }
  uint64_t last = std::min(first + count, buffer.num_elems);
  for (uint64_t i = first; i < last; ++i) shadow.bits[i] = true;
}

bool AccessChecker::IsWritten(const Shadow& shadow, uint64_t elem) const {
  if (shadow.all) return true;
  return elem < shadow.bits.size() && shadow.bits[elem];
}

void AccessChecker::AddViolation(Violation v) {
  ++total_violations_;
  ++counts_[static_cast<size_t>(v.kind)];
  SAGE_LOG(Warning) << "sagecheck: " << v.message;
  if (recorded_.size() < kMaxRecorded) recorded_.push_back(std::move(v));
}

std::string AccessChecker::Report() const {
  std::ostringstream os;
  os << "SageCheck (" << sim::CheckLevelName(level_) << "): ";
  if (clean()) {
    os << "no violations\n";
    return os.str();
  }
  os << total_violations_ << " violation(s)\n";
  for (size_t k = 0; k < kNumViolationKinds; ++k) {
    if (counts_[k] == 0) continue;
    os << "  " << ViolationKindName(static_cast<ViolationKind>(k)) << ": "
       << counts_[k] << "\n";
  }
  for (const Violation& v : recorded_) {
    os << "  [" << ViolationKindName(v.kind) << "] " << v.message << "\n";
  }
  if (total_violations_ > recorded_.size()) {
    os << "  ... " << (total_violations_ - recorded_.size())
       << " more not recorded\n";
  }
  return os.str();
}

util::Status AccessChecker::ToStatus() const {
  if (clean()) return util::Status::OK();
  std::ostringstream os;
  os << "SageCheck found " << total_violations_ << " violation(s):";
  for (size_t k = 0; k < kNumViolationKinds; ++k) {
    if (counts_[k] == 0) continue;
    os << " " << ViolationKindName(static_cast<ViolationKind>(k)) << "="
       << counts_[k];
  }
  return util::Status::Corruption(os.str());
}

void AccessChecker::ResetFindings() {
  race_.clear();
  uninit_reported_.clear();
  recorded_.clear();
  total_violations_ = 0;
  counts_.fill(0);
}

}  // namespace sage::check
