#include "check/vet.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <utility>

#include "check/access_checker.h"
#include "core/engine.h"
#include "core/filter.h"
#include "graph/coo.h"
#include "sim/access_event.h"
#include "sim/device_spec.h"
#include "sim/gpu_device.h"
#include "sim/memory_sim.h"
#include "util/strings.h"

namespace sage::check {

namespace {

using core::Footprint;
using graph::NodeId;

/// An AccessEventSink that forwards every event to a full-level SageCheck
/// instance and additionally records which charged intents were observed
/// per buffer id — the "shadow-tracked buffers" of the probe run.
class ShadowSink final : public sim::AccessEventSink {
 public:
  struct Observed {
    uint8_t intents = 0;  ///< bitmask over AccessIntent values
    std::string name;
  };

  ShadowSink() : checker_(sim::CheckLevel::kFull) {}

  void OnKernelBegin(uint64_t kernel_seq) override {
    checker_.OnKernelBegin(kernel_seq);
  }
  void OnKernelEnd(uint64_t kernel_seq) override {
    checker_.OnKernelEnd(kernel_seq);
  }
  void OnPhaseFence(uint64_t kernel_seq) override {
    checker_.OnPhaseFence(kernel_seq);
  }
  void OnAccess(uint32_t sm, const sim::Buffer& buffer,
                std::span<const uint64_t> elem_indices,
                sim::AccessIntent intent) override {
    Observe(buffer, intent);
    checker_.OnAccess(sm, buffer, elem_indices, intent);
  }
  void OnAccessRange(uint32_t sm, const sim::Buffer& buffer, uint64_t first,
                     uint64_t count, sim::AccessIntent intent) override {
    Observe(buffer, intent);
    checker_.OnAccessRange(sm, buffer, first, count, intent);
  }
  void OnBufferNote(const sim::Buffer& buffer, uint64_t first, uint64_t count,
                    sim::AccessIntent intent) override {
    // Uncharged functional writes (uploads, memsets) are setup, not
    // footprint traffic; they feed shadow-init only.
    checker_.OnBufferNote(buffer, first, count, intent);
  }
  void OnBracketingViolation(std::string_view what) override {
    checker_.OnBracketingViolation(what);
  }

  const AccessChecker& checker() const { return checker_; }
  const std::map<uint32_t, Observed>& observed() const { return observed_; }

 private:
  void Observe(const sim::Buffer& buffer, sim::AccessIntent intent) {
    Observed& o = observed_[buffer.id];
    o.intents |= static_cast<uint8_t>(1u << static_cast<uint8_t>(intent));
    if (o.name.empty()) o.name = buffer.name;
  }

  AccessChecker checker_;
  std::map<uint32_t, Observed> observed_;
};

std::string FormatDouble(double v) {
  std::string out;
  util::AppendF(&out, "%.9g", v);
  return out;
}

/// Engine-owned infrastructure buffers (adjacency, frontier queues, tile
/// store, UDT layout) are charged by the engine itself and are never part
/// of a program's footprint.
bool IsInfraBuffer(const std::string& name) {
  for (std::string_view prefix : {"csr.", "frontier.", "resident.", "udt."}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

uint8_t IntentBit(sim::AccessIntent intent) {
  return static_cast<uint8_t>(1u << static_cast<uint8_t>(intent));
}

sim::AccessIntent NeighborWriteIntent(const Footprint& fp) {
  if (fp.atomic_neighbor) return sim::AccessIntent::kAtomic;
  if (fp.idempotent_neighbor_writes) return sim::AccessIntent::kWriteIdempotent;
  return sim::AccessIntent::kWrite;
}

sim::AccessIntent FrontierWriteIntent(const Footprint& fp) {
  if (fp.atomic_frontier) return sim::AccessIntent::kAtomic;
  if (fp.idempotent_frontier_writes) return sim::AccessIntent::kWriteIdempotent;
  return sim::AccessIntent::kWrite;
}

/// Folds the probe run's SageCheck verdict into the report: any violation
/// class the checker saw becomes one unsound finding carrying the count and
/// the first recorded detail line.
void FoldCheckerFindings(const AccessChecker& checker, VetReport* report) {
  if (checker.clean()) return;
  static constexpr struct {
    ViolationKind kind;
    const char* code;
  } kKinds[] = {
      {ViolationKind::kOutOfBounds, "probe-out-of-bounds"},
      {ViolationKind::kRaceWriteWrite, "probe-race-write-write"},
      {ViolationKind::kRaceReadWrite, "probe-race-read-write"},
      {ViolationKind::kUninitRead, "probe-uninit-read"},
      {ViolationKind::kBracketing, "probe-bracketing"},
  };
  for (const auto& k : kKinds) {
    uint64_t count = checker.count(k.kind);
    if (count == 0) continue;
    std::string detail = std::to_string(count) + " " +
                         ViolationKindName(k.kind) +
                         " violation(s) during the probe run";
    for (const Violation& v : checker.violations()) {
      if (v.kind == k.kind) {
        detail += "; first: " + v.message;
        break;
      }
    }
    report->Add(VetSeverity::kUnsound, k.code, std::move(detail));
  }
}

/// Flags charged access classes the footprint never declared. The engine
/// derives its charges from the declaration, so for engine-driven traffic
/// this is a drift detector; for programs charging the device directly it
/// is the primary line of defense.
void CheckObservedAccesses(const ShadowSink& shadow, const Footprint& fp,
                           VetReport* report) {
  std::map<uint32_t, uint8_t> expected;
  auto allow = [&expected](const std::vector<const sim::Buffer*>& list,
                           sim::AccessIntent intent) {
    for (const sim::Buffer* b : list) {
      if (b != nullptr) expected[b->id] |= IntentBit(intent);
    }
  };
  allow(fp.neighbor_reads, sim::AccessIntent::kRead);
  allow(fp.frontier_reads, sim::AccessIntent::kRead);
  allow(fp.edge_reads, sim::AccessIntent::kRead);
  allow(fp.neighbor_writes, NeighborWriteIntent(fp));
  allow(fp.frontier_writes, FrontierWriteIntent(fp));

  for (const auto& [id, obs] : shadow.observed()) {
    auto it = expected.find(id);
    if (it == expected.end()) {
      if (IsInfraBuffer(obs.name)) continue;
      report->Add(VetSeverity::kUnsound, "undeclared-buffer",
                  "buffer '" + obs.name +
                      "' was charged during the probe run but appears in no "
                      "footprint list");
      continue;
    }
    uint8_t extra = static_cast<uint8_t>(obs.intents & ~it->second);
    for (uint8_t i = 0; i < 4; ++i) {
      if ((extra & (1u << i)) == 0) continue;
      report->Add(
          VetSeverity::kUnsound, "undeclared-access",
          "buffer '" + obs.name + "' observed " +
              sim::AccessIntentName(static_cast<sim::AccessIntent>(i)) +
              " accesses the footprint does not declare");
    }
  }
}

/// Fingerprint of the program's externally observable state: the SaveState
/// bytes when checkpointing is supported, else the app's output digest.
std::optional<std::string> StateFingerprint(const core::Engine& engine,
                                            const core::FilterProgram& program,
                                            const ProbeHooks& hooks,
                                            bool save_supported) {
  if (save_supported) {
    std::vector<uint8_t> bytes;
    if (program.SaveState(&bytes)) {
      return std::string(bytes.begin(), bytes.end());
    }
  }
  if (hooks.digest) return std::to_string(hooks.digest(engine, program));
  return std::nullopt;
}

/// Behavioral cross-check of the write declarations: direct Filter calls on
/// probe edges, fingerprinting state between calls.
///  - state changed with no writes declared        -> undeclared-state-write
///  - an identical repeat call changed state again, with no atomics
///    declared but idempotence claimed             -> false-idempotence
/// Atomic declarations legitimately accumulate, so the repeat check only
/// applies to programs claiming the value-idempotent benign-race class.
void ProbeFilterBehaviour(core::Engine& engine, core::FilterProgram& program,
                          const ProbeHooks& hooks, VetReport* report) {
  const Footprint& fp = program.footprint();
  const bool writes_declared =
      !fp.neighbor_writes.empty() || !fp.frontier_writes.empty();
  const bool atomics = fp.atomic_neighbor || fp.atomic_frontier;
  const bool idempotence_claimed =
      (!fp.neighbor_writes.empty() && fp.idempotent_neighbor_writes) ||
      (!fp.frontier_writes.empty() && fp.idempotent_frontier_writes);

  std::optional<std::string> before = StateFingerprint(
      engine, program, hooks, report->checkpoint_supported);
  if (!before.has_value()) {
    report->Add(VetSeverity::kNote, "probe-unobservable",
                "no SaveState support and no digest hook; behavioral "
                "Filter probing skipped");
    return;
  }

  bool reported_undeclared = false;
  bool reported_idempotence = false;
  auto report_undeclared = [&](NodeId u, NodeId v) {
    if (reported_undeclared) return;
    reported_undeclared = true;
    report->Add(VetSeverity::kUnsound, "undeclared-state-write",
                "Filter(" + std::to_string(u) + ", " + std::to_string(v) +
                    ") mutated program state but the footprint declares no "
                    "writes — the stores are invisible to the cost model "
                    "and to SageCheck");
  };

  const graph::Csr& csr = engine.csr();  // internal ids, post-run layout
  uint32_t probed = 0;
  for (NodeId u = 0; u < csr.num_nodes() && probed < 16; ++u) {
    std::span<const NodeId> neighbors = csr.Neighbors(u);
    if (neighbors.empty()) continue;
    // First and last neighbor: varies targets and covers the self-loop.
    for (size_t pick : {size_t{0}, neighbors.size() - 1}) {
      if (pick != 0 && neighbors.size() == 1) break;
      NodeId v = neighbors[pick];
      program.Filter(u, v);
      std::optional<std::string> after1 = StateFingerprint(
          engine, program, hooks, report->checkpoint_supported);
      if (after1 != before && !writes_declared) report_undeclared(u, v);
      program.Filter(u, v);
      std::optional<std::string> after2 = StateFingerprint(
          engine, program, hooks, report->checkpoint_supported);
      if (after2 != after1 && !atomics) {
        if (idempotence_claimed) {
          if (!reported_idempotence) {
            reported_idempotence = true;
            report->Add(
                VetSeverity::kUnsound, "false-idempotence",
                "repeating Filter(" + std::to_string(u) + ", " +
                    std::to_string(v) +
                    ") changed state again: the writes accumulate rather "
                    "than store one value, so the declared idempotent "
                    "benign-race class is wrong");
          }
        } else if (!writes_declared) {
          report_undeclared(u, v);
        }
      }
      before = std::move(after2);
      ++probed;
    }
  }
}

/// Post-run checkpoint battery: a Save/Restore/Save round trip must be
/// byte-stable, and a truncated snapshot must be rejected.
void ProbeCheckpoint(core::FilterProgram& program, VetReport* report) {
  if (!report->checkpoint_supported) return;
  std::vector<uint8_t> snap;
  if (!program.SaveState(&snap)) {
    report->Add(VetSeverity::kUnsound, "checkpoint-claims-conflict",
                "SaveState succeeded at bind time but failed after the "
                "probe run");
    return;
  }
  if (!program.RestoreState(snap)) {
    report->Add(VetSeverity::kUnsound, "checkpoint-restore",
                "RestoreState rejected the bytes SaveState just produced");
    return;
  }
  std::vector<uint8_t> again;
  if (!program.SaveState(&again) || again != snap) {
    report->Add(VetSeverity::kUnsound, "checkpoint-roundtrip-drift",
                "a Save/Restore/Save round trip did not reproduce "
                "identical bytes");
  }
  if (!snap.empty()) {
    std::span<const uint8_t> truncated(snap.data(), snap.size() - 1);
    if (program.RestoreState(truncated)) {
      report->Add(VetSeverity::kWarning, "checkpoint-accepts-truncated",
                  "RestoreState accepted a truncated snapshot; a corrupt "
                  "checkpoint would silently restore garbage");
    } else {
      // Failed restores leave state unspecified; put the good bytes back.
      program.RestoreState(snap);
    }
  }
}

}  // namespace

const char* VetLevelName(VetLevel level) {
  switch (level) {
    case VetLevel::kOff:
      return "off";
    case VetLevel::kStatic:
      return "static";
    case VetLevel::kProbe:
      return "probe";
  }
  return "unknown";
}

util::StatusOr<VetLevel> ParseVetLevel(const std::string& text) {
  if (text == "off") return VetLevel::kOff;
  if (text == "static") return VetLevel::kStatic;
  if (text == "probe") return VetLevel::kProbe;
  return util::Status::InvalidArgument(
      "unknown vet level '" + text + "' (expected off | static | probe)");
}

const char* VetSeverityName(VetSeverity severity) {
  switch (severity) {
    case VetSeverity::kNote:
      return "note";
    case VetSeverity::kWarning:
      return "warning";
    case VetSeverity::kUnsound:
      return "unsound";
  }
  return "unknown";
}

void VetReport::Add(VetSeverity severity, std::string code,
                    std::string detail) {
  findings.push_back(
      VetFinding{severity, std::move(code), std::move(detail)});
}

bool VetReport::unsound() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const VetFinding& f) {
                       return f.severity == VetSeverity::kUnsound;
                     });
}

const char* VetReport::verdict() const {
  if (unsound()) return "unsound";
  if (std::any_of(findings.begin(), findings.end(), [](const VetFinding& f) {
        return f.severity == VetSeverity::kWarning;
      })) {
    return "warning";
  }
  return "clean";
}

std::string VetReport::ToText() const {
  std::string out = "program '" + program + "' [" + VetLevelName(level) +
                    "]: " + verdict();
  out += " (checkpoint: ";
  out += checkpoint_supported ? "yes" : "no";
  if (probe_ran) {
    out += "; probe: " + std::to_string(probe_edges) + " edges, " +
           FormatDouble(probe_modeled_seconds) + " modeled s";
  }
  out += "; wall " + FormatDouble(wall_seconds) + " s)\n";
  for (const VetFinding& f : findings) {
    out += "  [" + std::string(VetSeverityName(f.severity)) + "] " + f.code +
           ": " + f.detail + "\n";
  }
  return out;
}

std::string VetReport::ToJson() const {
  std::string out = "{";
  out += "\"program\":\"" + util::JsonEscape(program) + "\"";
  out += ",\"level\":\"" + std::string(VetLevelName(level)) + "\"";
  out += ",\"verdict\":\"" + std::string(verdict()) + "\"";
  out += ",\"checkpoint_supported\":";
  out += checkpoint_supported ? "true" : "false";
  out += ",\"probe\":{\"ran\":";
  out += probe_ran ? "true" : "false";
  out += ",\"modeled_seconds\":" + FormatDouble(probe_modeled_seconds);
  out += ",\"edges\":" + std::to_string(probe_edges) + "}";
  out += ",\"wall_seconds\":" + FormatDouble(wall_seconds);
  out += ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"severity\":\"" +
           std::string(VetSeverityName(findings[i].severity)) + "\"";
    out += ",\"code\":\"" + util::JsonEscape(findings[i].code) + "\"";
    out += ",\"detail\":\"" + util::JsonEscape(findings[i].detail) + "\"}";
  }
  out += "]}";
  return out;
}

util::Status VetReport::ToStatus() const {
  if (!unsound()) return util::Status::OK();
  std::string msg =
      "program '" + program + "' failed SageVet at level " +
      VetLevelName(level) + ":";
  for (const VetFinding& f : findings) {
    if (f.severity != VetSeverity::kUnsound) continue;
    msg += " [" + f.code + "] " + f.detail + ";";
  }
  return util::Status::FailedPrecondition(std::move(msg));
}

graph::Csr MakeProbeGraph() {
  graph::Coo coo;
  coo.num_nodes = 24;
  auto edge = [&coo](NodeId a, NodeId b) {
    coo.u.push_back(a);
    coo.v.push_back(b);
    if (a != b) {
      coo.u.push_back(b);
      coo.v.push_back(a);
    }
  };
  // Hub: node 0 fans out to 1..8 (forces tile splitting on the hub).
  for (NodeId n = 1; n <= 8; ++n) edge(0, n);
  // Chain: 8-9-...-15 (long diameter; deep BFS levels).
  for (NodeId n = 8; n < 15; ++n) edge(n, n + 1);
  // Diamond: 15-{16,17}-18 (two frontier nodes pushing one neighbor in the
  // same iteration — the duplicate-candidate shape races live on).
  edge(15, 16);
  edge(15, 17);
  edge(16, 18);
  edge(17, 18);
  // Self-loop: Filter(u, u).
  edge(4, 4);
  // Second component: ring 19-20-21-22 plus pendant 23. Unreached by
  // traversals sourced in the first component, so "initialized but never
  // touched" state stays observable.
  edge(19, 20);
  edge(20, 21);
  edge(21, 22);
  edge(22, 19);
  edge(22, 23);
  return graph::Csr::FromCoo(coo);
}

void VetStatic(core::Engine& engine, core::FilterProgram& program,
               VetReport* report) {
  const Footprint& fp = program.footprint();
  const sim::MemorySim& mem = engine.device()->mem();
  const uint64_t num_nodes = engine.csr().num_nodes();
  const uint64_t num_edges = engine.csr().num_edges();
  const core::EngineOptions& opts = engine.options();

  struct ListRef {
    const char* name;
    const std::vector<const sim::Buffer*>* list;
    bool node_indexed;
  };
  const ListRef lists[] = {
      {"neighbor_reads", &fp.neighbor_reads, true},
      {"neighbor_writes", &fp.neighbor_writes, true},
      {"frontier_reads", &fp.frontier_reads, true},
      {"frontier_writes", &fp.frontier_writes, true},
      {"edge_reads", &fp.edge_reads, false},
  };
  std::set<uint32_t> node_indexed_ids;
  std::set<uint32_t> edge_indexed_ids;
  std::map<uint32_t, std::string> names;
  for (const ListRef& lr : lists) {
    std::set<uint32_t> seen_in_list;
    for (const sim::Buffer* b : *lr.list) {
      if (b == nullptr) {
        report->Add(VetSeverity::kUnsound, "null-buffer",
                    std::string(lr.name) + " contains a null buffer entry");
        continue;
      }
      names[b->id] = b->name;
      const sim::Buffer* reg = mem.FindBuffer(b->id);
      if (reg == nullptr) {
        report->Add(VetSeverity::kUnsound, "buffer-unregistered",
                    "buffer '" + b->name + "' in " + lr.name +
                        " was never registered with this engine's memory "
                        "system");
        continue;
      }
      if (reg->base != b->base || reg->num_elems != b->num_elems ||
          reg->elem_bytes != b->elem_bytes) {
        report->Add(VetSeverity::kUnsound, "buffer-stale",
                    "buffer '" + b->name + "' in " + lr.name +
                        " is a stale copy: the registered geometry differs "
                        "(a Grow reallocated it after the footprint was "
                        "built?)");
      }
      const uint64_t need = lr.node_indexed ? num_nodes : num_edges;
      if (b->num_elems < need) {
        report->Add(VetSeverity::kUnsound, "buffer-undersized",
                    "buffer '" + b->name + "' in " + lr.name + " has " +
                        std::to_string(b->num_elems) +
                        " elements but the graph indexes up to " +
                        std::to_string(need));
      }
      if (!seen_in_list.insert(b->id).second) {
        report->Add(VetSeverity::kWarning, "duplicate-buffer",
                    "buffer '" + b->name + "' listed twice in " + lr.name +
                        " — every access is double-charged");
      }
      (lr.node_indexed ? node_indexed_ids : edge_indexed_ids).insert(b->id);
    }
  }
  for (uint32_t id : node_indexed_ids) {
    if (edge_indexed_ids.count(id) != 0) {
      report->Add(VetSeverity::kUnsound, "domain-alias",
                  "buffer '" + names[id] +
                      "' appears in both node-indexed and edge-indexed "
                      "footprint lists; one index domain must be wrong");
    }
  }

  // Race soundness of the declaration itself.
  if (!fp.neighbor_writes.empty() && !fp.atomic_neighbor &&
      !fp.idempotent_neighbor_writes) {
    report->Add(VetSeverity::kUnsound, "race-neighbor",
                "neighbor writes are declared neither atomic nor "
                "value-idempotent: concurrent tiles reaching one neighbor "
                "are a data race");
  }
  if (!fp.frontier_writes.empty() && !fp.atomic_frontier &&
      !fp.idempotent_frontier_writes) {
    report->Add(VetSeverity::kWarning, "race-frontier",
                "frontier writes are declared neither atomic nor "
                "value-idempotent: duplicate frontier entries race");
  }
  if (fp.atomic_neighbor && fp.neighbor_writes.empty()) {
    report->Add(VetSeverity::kWarning, "atomic-neighbor-unused",
                "atomic_neighbor is set but neighbor_writes is empty");
  }
  if (fp.atomic_frontier && fp.frontier_writes.empty()) {
    report->Add(VetSeverity::kWarning, "atomic-frontier-unused",
                "atomic_frontier is set but frontier_writes is empty");
  }
  if (fp.idempotent_neighbor_writes && fp.atomic_neighbor) {
    report->Add(VetSeverity::kNote, "idempotence-shadowed",
                "idempotent_neighbor_writes is ignored while "
                "atomic_neighbor is set");
  }

  // Option cross-checks against the footprint.
  if (!fp.edge_reads.empty() && opts.udt_split_degree > 0) {
    report->Add(VetSeverity::kWarning, "edge-reads-udt",
                "edge-position charges follow the UDT virtual layout; "
                "edge attribute values must not depend on physical edge "
                "positions");
  }
  if (!fp.edge_reads.empty() && opts.sampling_reorder) {
    report->Add(VetSeverity::kWarning, "edge-reads-reorder",
                "sampling reorder rewrites edge positions and "
                "OnPermutation reports only the node relabeling; edge "
                "attribute values must not depend on edge positions");
  }

  // Checkpoint claim consistency (SaveState contract: append nothing and
  // return false when unsupported).
  std::vector<uint8_t> snap;
  const bool save_ok = program.SaveState(&snap);
  report->checkpoint_supported = save_ok;
  if (!save_ok) {
    if (!snap.empty()) {
      report->Add(VetSeverity::kUnsound, "checkpoint-claims-conflict",
                  "SaveState returned false but appended bytes — the "
                  "engine would checkpoint a program that disclaims "
                  "support");
    }
    report->Add(VetSeverity::kNote, "checkpoint-unsupported",
                "SaveState returned false; SageGuard skips checkpointing "
                "this program");
  } else if (!program.RestoreState(snap)) {
    report->Add(VetSeverity::kUnsound, "checkpoint-restore",
                "RestoreState rejected the bytes SaveState just produced");
  }
}

util::StatusOr<VetReport> VetProgram(core::FilterProgram& program,
                                     VetLevel level,
                                     const core::EngineOptions& options,
                                     const ProbeHooks& hooks) {
  const auto start = std::chrono::steady_clock::now();
  VetReport report;
  report.program = program.name();
  report.level = level;
  if (level == VetLevel::kOff) return report;

  sim::GpuDevice device{sim::DeviceSpec{}};
  ShadowSink shadow;
  device.set_access_sink(&shadow);
  core::EngineOptions opts = options;
  // The probe owns the device's one sink slot and runs serially so the
  // shadow observations are deterministic.
  opts.check_level = sim::CheckLevel::kOff;
  opts.host_threads = 1;
  opts.vet_level = VetLevel::kStatic;
  SAGE_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Engine> engine,
      core::Engine::Create(&device, MakeProbeGraph(), opts));
  SAGE_RETURN_IF_ERROR(engine->Bind(&program));
  VetStatic(*engine, program, &report);

  if (level == VetLevel::kProbe) {
    if (!hooks.run) {
      report.Add(VetSeverity::kWarning, "probe-unavailable",
                 "no probe driver supplied; declarations were not "
                 "cross-checked against behaviour");
    } else {
      util::StatusOr<core::RunStats> run = hooks.run(*engine, program);
      if (!run.ok()) {
        report.Add(VetSeverity::kUnsound, "probe-run-failed",
                   run.status().ToString());
      } else {
        report.probe_ran = true;
        report.probe_modeled_seconds = run->seconds;
        report.probe_edges = run->edges_traversed;
        FoldCheckerFindings(shadow.checker(), &report);
        CheckObservedAccesses(shadow, program.footprint(), &report);
        ProbeFilterBehaviour(*engine, program, hooks, &report);
        ProbeCheckpoint(program, &report);
      }
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace sage::check
