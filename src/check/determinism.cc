#include "check/determinism.h"

#include <numeric>
#include <sstream>

#include "apps/bfs.h"
#include "sim/gpu_device.h"
#include "util/logging.h"
#include "util/random.h"

namespace sage::check {
namespace {

const char* StrategyName(core::ExpandStrategy s) {
  switch (s) {
    case core::ExpandStrategy::kSage:
      return "sage";
    case core::ExpandStrategy::kB40c:
      return "b40c";
    case core::ExpandStrategy::kWarpCentric:
      return "warp-centric";
  }
  return "unknown";
}

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  return h;
}

std::vector<uint32_t> PermutationFromSeed(uint32_t n, uint64_t seed) {
  if (seed == 0) return {};
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  util::Rng rng(util::SplitMix64(seed ^ 0x5347435045524dull));  // "SGCPERM"
  rng.Shuffle(perm);
  return perm;
}

DeterminismReport RunDeterminismHarness(const core::EngineOptions& base,
                                        const DeterminismOptions& options,
                                        const TrialFn& trial) {
  DeterminismReport report;
  std::ostringstream os;
  for (core::ExpandStrategy s : options.strategies) {
    core::EngineOptions opts = base;
    opts.strategy = s;
    opts.dispatch_permutation_seed = 0;
    TrialResult ref = trial(opts, 0);
    os << StrategyName(s) << ": baseline hash=" << std::hex << ref.output_hash
       << std::dec << " sectors=" << ref.total_sectors << "\n";
    for (uint64_t t = 1; t <= options.perturbed_trials; ++t) {
      // (a) SM placement only: same access stream from different SM ids, so
      // both the output and the sector accounting must be bit-identical.
      opts.dispatch_permutation_seed = 0;
      TrialResult perm = trial(opts, t);
      bool same_hash = perm.output_hash == ref.output_hash;
      bool same_sectors = perm.total_sectors == ref.total_sectors;
      os << StrategyName(s) << ": sm-perm trial " << t
         << (same_hash && same_sectors ? " MATCH" : " MISMATCH");
      if (!same_hash) {
        os << " (hash " << std::hex << perm.output_hash << " != "
           << ref.output_hash << std::dec << ")";
      }
      if (!same_sectors) {
        os << " (sectors " << perm.total_sectors << " != "
           << ref.total_sectors << ")";
      }
      os << "\n";
      if (!same_hash || !same_sectors) report.deterministic = false;

      // (b) Dispatch order shuffled on top: the stream order through the
      // LRU L2 changes, so only the algorithm output is an invariant.
      opts.dispatch_permutation_seed = t;
      TrialResult shuf = trial(opts, t);
      same_hash = shuf.output_hash == ref.output_hash;
      os << StrategyName(s) << ": dispatch trial " << t
         << (same_hash ? " MATCH" : " MISMATCH");
      if (!same_hash) {
        os << " (hash " << std::hex << shuf.output_hash << " != "
           << ref.output_hash << std::dec << ")";
      }
      os << " (sectors " << shuf.total_sectors << ")\n";
      if (!same_hash) report.deterministic = false;
    }
  }
  report.details = os.str();
  return report;
}

EquivalenceReport RunSerialParallelEquivalence(
    const core::EngineOptions& base, const EquivalenceOptions& options,
    const TrialFn& trial) {
  EquivalenceReport report;
  std::ostringstream os;
  for (core::ExpandStrategy s : options.strategies) {
    core::EngineOptions opts = base;
    opts.strategy = s;
    opts.host_threads = 1;
    TrialResult ref = trial(opts, 0);
    os << StrategyName(s) << ": serial hash=" << std::hex << ref.output_hash
       << " sm-sectors=" << ref.sm_sector_hash << " timing=" << ref.timing_hash
       << std::dec << " sectors=" << ref.total_sectors << "\n";
    for (uint32_t threads : options.thread_counts) {
      opts.host_threads = threads;
      TrialResult par = trial(opts, 0);
      bool ok = par.output_hash == ref.output_hash &&
                par.total_sectors == ref.total_sectors &&
                par.sm_sector_hash == ref.sm_sector_hash &&
                par.timing_hash == ref.timing_hash;
      os << StrategyName(s) << ": threads=" << threads
         << (threads == 0 ? " (auto)" : "") << (ok ? " MATCH" : " MISMATCH");
      if (par.output_hash != ref.output_hash) {
        os << " (hash " << std::hex << par.output_hash << " != "
           << ref.output_hash << std::dec << ")";
      }
      if (par.total_sectors != ref.total_sectors) {
        os << " (sectors " << par.total_sectors << " != " << ref.total_sectors
           << ")";
      }
      if (par.sm_sector_hash != ref.sm_sector_hash) {
        os << " (sm-sectors " << std::hex << par.sm_sector_hash << " != "
           << ref.sm_sector_hash << std::dec << ")";
      }
      if (par.timing_hash != ref.timing_hash) {
        os << " (timing " << std::hex << par.timing_hash << " != "
           << ref.timing_hash << std::dec << ")";
      }
      os << "\n";
      if (!ok) report.equivalent = false;
    }
  }
  report.details = os.str();
  return report;
}

TrialResult RunBfsTrial(const graph::Csr& csr, const sim::DeviceSpec& spec,
                        graph::NodeId source, const core::EngineOptions& opts,
                        uint64_t sm_perm_seed) {
  sim::GpuDevice device(spec);
  device.SetSmPermutation(PermutationFromSeed(spec.num_sms, sm_perm_seed));
  core::Engine engine(&device, csr, opts);
  apps::BfsProgram bfs;
  SAGE_CHECK(engine.Bind(&bfs).ok());
  auto stats = apps::RunBfs(engine, bfs, source);
  SAGE_CHECK(stats.ok()) << stats.status().message();
  TrialResult r;
  r.seconds = stats->seconds;
  // Digest distances in original-id order so any internal relabeling the
  // engine performed is invisible to the comparison.
  uint64_t h = 0xcbf29ce484222325ull;
  for (graph::NodeId u = 0; u < csr.num_nodes(); ++u) {
    uint32_t d = bfs.DistanceOf(u);
    h = HashBytes(&d, sizeof(d), h);
  }
  r.output_hash = h;
  const auto& mem = device.mem();
  r.total_sectors = mem.device_stats().sectors + mem.host_stats().sectors;

  const auto& totals = device.totals();
  r.sm_sector_hash =
      HashSpan(std::span<const uint64_t>(totals.sm_sectors));

  // Fold every modeled-timing observable into one digest: totals,
  // per-kernel timings, both memory-space stat blocks, link stats. Doubles
  // are hashed by bit pattern, so "equal" means bit-identical, not
  // approximately equal.
  uint64_t th = 0xcbf29ce484222325ull;
  th = HashBytes(&totals.seconds, sizeof(totals.seconds), th);
  th = HashBytes(&totals.tp_overhead_seconds,
                 sizeof(totals.tp_overhead_seconds), th);
  th = HashBytes(&totals.kernels, sizeof(totals.kernels), th);
  th = HashSpan(std::span<const double>(totals.per_kernel_seconds), th);
  for (const sim::MemStats* ms : {&mem.device_stats(), &mem.host_stats()}) {
    th = HashBytes(&ms->batches, sizeof(ms->batches), th);
    th = HashBytes(&ms->sectors, sizeof(ms->sectors), th);
    th = HashBytes(&ms->l2_hits, sizeof(ms->l2_hits), th);
    th = HashBytes(&ms->l2_misses, sizeof(ms->l2_misses), th);
    th = HashBytes(&ms->useful_bytes, sizeof(ms->useful_bytes), th);
    th = HashBytes(&ms->loaded_bytes, sizeof(ms->loaded_bytes), th);
  }
  const auto& ls = device.host_link().stats();
  th = HashBytes(&ls.transfers, sizeof(ls.transfers), th);
  th = HashBytes(&ls.frames, sizeof(ls.frames), th);
  th = HashBytes(&ls.payload_bytes, sizeof(ls.payload_bytes), th);
  th = HashBytes(&ls.wire_bytes, sizeof(ls.wire_bytes), th);
  th = HashBytes(&ls.busy_cycles, sizeof(ls.busy_cycles), th);
  r.timing_hash = th;
  return r;
}

DeterminismReport RunBfsDeterminism(const graph::Csr& csr,
                                    const sim::DeviceSpec& spec,
                                    graph::NodeId source,
                                    const core::EngineOptions& base,
                                    const DeterminismOptions& options) {
  TrialFn trial = [&csr, &spec, source](const core::EngineOptions& opts,
                                        uint64_t sm_perm_seed) {
    return RunBfsTrial(csr, spec, source, opts, sm_perm_seed);
  };
  return RunDeterminismHarness(base, options, trial);
}

EquivalenceReport RunBfsEquivalence(const graph::Csr& csr,
                                    const sim::DeviceSpec& spec,
                                    graph::NodeId source,
                                    const core::EngineOptions& base,
                                    const EquivalenceOptions& options) {
  TrialFn trial = [&csr, &spec, source](const core::EngineOptions& opts,
                                        uint64_t sm_perm_seed) {
    return RunBfsTrial(csr, spec, source, opts, sm_perm_seed);
  };
  return RunSerialParallelEquivalence(base, options, trial);
}

}  // namespace sage::check
