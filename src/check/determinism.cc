#include "check/determinism.h"

#include <numeric>
#include <sstream>

#include "apps/bfs.h"
#include "sim/gpu_device.h"
#include "util/logging.h"
#include "util/random.h"

namespace sage::check {
namespace {

const char* StrategyName(core::ExpandStrategy s) {
  switch (s) {
    case core::ExpandStrategy::kSage:
      return "sage";
    case core::ExpandStrategy::kB40c:
      return "b40c";
    case core::ExpandStrategy::kWarpCentric:
      return "warp-centric";
  }
  return "unknown";
}

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  return h;
}

std::vector<uint32_t> PermutationFromSeed(uint32_t n, uint64_t seed) {
  if (seed == 0) return {};
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  util::Rng rng(util::SplitMix64(seed ^ 0x5347435045524dull));  // "SGCPERM"
  rng.Shuffle(perm);
  return perm;
}

DeterminismReport RunDeterminismHarness(const core::EngineOptions& base,
                                        const DeterminismOptions& options,
                                        const TrialFn& trial) {
  DeterminismReport report;
  std::ostringstream os;
  for (core::ExpandStrategy s : options.strategies) {
    core::EngineOptions opts = base;
    opts.strategy = s;
    opts.dispatch_permutation_seed = 0;
    TrialResult ref = trial(opts, 0);
    os << StrategyName(s) << ": baseline hash=" << std::hex << ref.output_hash
       << std::dec << " sectors=" << ref.total_sectors << "\n";
    for (uint64_t t = 1; t <= options.perturbed_trials; ++t) {
      // (a) SM placement only: same access stream from different SM ids, so
      // both the output and the sector accounting must be bit-identical.
      opts.dispatch_permutation_seed = 0;
      TrialResult perm = trial(opts, t);
      bool same_hash = perm.output_hash == ref.output_hash;
      bool same_sectors = perm.total_sectors == ref.total_sectors;
      os << StrategyName(s) << ": sm-perm trial " << t
         << (same_hash && same_sectors ? " MATCH" : " MISMATCH");
      if (!same_hash) {
        os << " (hash " << std::hex << perm.output_hash << " != "
           << ref.output_hash << std::dec << ")";
      }
      if (!same_sectors) {
        os << " (sectors " << perm.total_sectors << " != "
           << ref.total_sectors << ")";
      }
      os << "\n";
      if (!same_hash || !same_sectors) report.deterministic = false;

      // (b) Dispatch order shuffled on top: the stream order through the
      // LRU L2 changes, so only the algorithm output is an invariant.
      opts.dispatch_permutation_seed = t;
      TrialResult shuf = trial(opts, t);
      same_hash = shuf.output_hash == ref.output_hash;
      os << StrategyName(s) << ": dispatch trial " << t
         << (same_hash ? " MATCH" : " MISMATCH");
      if (!same_hash) {
        os << " (hash " << std::hex << shuf.output_hash << " != "
           << ref.output_hash << std::dec << ")";
      }
      os << " (sectors " << shuf.total_sectors << ")\n";
      if (!same_hash) report.deterministic = false;
    }
  }
  report.details = os.str();
  return report;
}

DeterminismReport RunBfsDeterminism(const graph::Csr& csr,
                                    const sim::DeviceSpec& spec,
                                    graph::NodeId source,
                                    const core::EngineOptions& base,
                                    const DeterminismOptions& options) {
  TrialFn trial = [&csr, &spec, source](const core::EngineOptions& opts,
                                        uint64_t sm_perm_seed) {
    sim::GpuDevice device(spec);
    device.SetSmPermutation(PermutationFromSeed(spec.num_sms, sm_perm_seed));
    core::Engine engine(&device, csr, opts);
    apps::BfsProgram bfs;
    SAGE_CHECK(engine.Bind(&bfs).ok());
    auto stats = apps::RunBfs(engine, bfs, source);
    SAGE_CHECK(stats.ok()) << stats.status().message();
    TrialResult r;
    r.seconds = stats->seconds;
    // Digest distances in original-id order so any internal relabeling the
    // engine performed is invisible to the comparison.
    uint64_t h = 0xcbf29ce484222325ull;
    for (graph::NodeId u = 0; u < csr.num_nodes(); ++u) {
      uint32_t d = bfs.DistanceOf(u);
      h = HashBytes(&d, sizeof(d), h);
    }
    r.output_hash = h;
    const auto& mem = device.mem();
    r.total_sectors = mem.device_stats().sectors + mem.host_stats().sectors;
    return r;
  };
  return RunDeterminismHarness(base, options, trial);
}

}  // namespace sage::check
