#ifndef SAGE_CHECK_ACCESS_CHECKER_H_
#define SAGE_CHECK_ACCESS_CHECKER_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/access_event.h"
#include "sim/memory_sim.h"
#include "util/status.h"

namespace sage::check {

/// Violation classes SageCheck detects — the simulator's analogue of
/// NVIDIA compute-sanitizer's memcheck / racecheck / initcheck tools.
enum class ViolationKind : uint8_t {
  /// memcheck: an element index at or past Buffer::num_elems.
  kOutOfBounds = 0,
  /// racecheck: two writes (or a write and an atomic / idempotent write)
  /// to one element from different SMs in the same kernel phase.
  kRaceWriteWrite = 1,
  /// racecheck: a plain write and a read of one element from different SMs
  /// in the same kernel phase.
  kRaceReadWrite = 2,
  /// initcheck: a read of an element no kernel, upload, or memset ever
  /// wrote.
  kUninitRead = 3,
  /// BeginKernel/EndKernel bracketing misuse (double begin, end without
  /// begin, access outside any kernel).
  kBracketing = 4,
};
inline constexpr size_t kNumViolationKinds = 5;

const char* ViolationKindName(ViolationKind kind);

/// One detected violation. `message` is the full human-readable line; the
/// structured fields let tests assert precisely.
struct Violation {
  ViolationKind kind = ViolationKind::kOutOfBounds;
  uint32_t buffer_id = 0;
  std::string buffer_name;
  uint64_t elem = 0;
  uint32_t sm_a = 0;
  uint32_t sm_b = 0;
  sim::AccessIntent intent_a = sim::AccessIntent::kRead;
  sim::AccessIntent intent_b = sim::AccessIntent::kRead;
  uint64_t kernel = 0;
  std::string message;
};

/// SageCheck's core: an AccessEventSink that validates every memory event a
/// GpuDevice emits. Attach with device->set_access_sink(&checker) — or let
/// core::Engine own one by setting EngineOptions::check_level.
///
/// Race model: two accesses to the same element conflict when they come
/// from different SMs within the same kernel *phase* (FenceKernelPhase
/// resets the window, modeling grid-wide synchronization) and their intents
/// are incompatible:
///
///              read   write  atomic  idem-write
///   read        ok    RACE     ok       ok
///   write      RACE   RACE    RACE     RACE
///   atomic      ok    RACE     ok      RACE
///   idem-write  ok    RACE    RACE      ok
///
/// Shadow-init model: per-buffer write bitmaps persist for the checker's
/// lifetime; any write intent (charged, atomic, idempotent, or an uncharged
/// NoteBufferWrite upload) marks elements written. Reads of never-written
/// elements report once per element.
class AccessChecker final : public sim::AccessEventSink {
 public:
  explicit AccessChecker(sim::CheckLevel level);

  // --- sim::AccessEventSink ----------------------------------------------
  void OnKernelBegin(uint64_t kernel_seq) override;
  void OnKernelEnd(uint64_t kernel_seq) override;
  void OnPhaseFence(uint64_t kernel_seq) override;
  void OnAccess(uint32_t sm, const sim::Buffer& buffer,
                std::span<const uint64_t> elem_indices,
                sim::AccessIntent intent) override;
  void OnAccessRange(uint32_t sm, const sim::Buffer& buffer, uint64_t first,
                     uint64_t count, sim::AccessIntent intent) override;
  void OnBufferNote(const sim::Buffer& buffer, uint64_t first, uint64_t count,
                    sim::AccessIntent intent) override;
  void OnBracketingViolation(std::string_view what) override;

  // --- results ------------------------------------------------------------
  sim::CheckLevel level() const { return level_; }
  bool clean() const { return total_violations_ == 0; }
  uint64_t total_violations() const { return total_violations_; }
  uint64_t count(ViolationKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  /// The first violations in detection order (detail capped; counts are
  /// complete).
  const std::vector<Violation>& violations() const { return recorded_; }

  /// Multi-line report: per-class totals plus the recorded details.
  std::string Report() const;

  /// OK when clean, else StatusCode::kCorruption summarizing the counts.
  util::Status ToStatus() const;

  /// Drops all findings and per-kernel state; shadow-init memory is kept
  /// (the device's buffers are still initialized).
  void ResetFindings();

 private:
  /// Per-element per-phase conflict bookkeeping. `era` stamps which
  /// kernel-phase the entry belongs to; stale entries reset lazily.
  struct ElemState {
    uint64_t era = 0;
    uint8_t seen = 0;      ///< bitmask over AccessIntent values
    uint8_t multi = 0;     ///< intents seen from >= 2 distinct SMs
    bool reported = false;
    std::array<uint32_t, 4> first_sm{};
  };
  /// Per-buffer ever-written shadow memory. `all` short-circuits full-range
  /// markings (whole-buffer uploads) without allocating bits.
  struct Shadow {
    bool all = false;
    std::vector<bool> bits;
  };

  void CheckElem(uint32_t sm, const sim::Buffer& buffer, uint64_t elem,
                 sim::AccessIntent intent);
  void ReportOob(uint32_t sm, const sim::Buffer& buffer, uint64_t elem,
                 sim::AccessIntent intent);
  void MarkWritten(const sim::Buffer& buffer, uint64_t elem);
  void MarkWrittenRange(const sim::Buffer& buffer, uint64_t first,
                        uint64_t count);
  bool IsWritten(const Shadow& shadow, uint64_t elem) const;
  void AddViolation(Violation v);

  sim::CheckLevel level_;
  bool kernel_open_ = false;
  uint64_t kernel_ = 0;
  uint64_t era_ = 0;  ///< bumped at every kernel begin and phase fence
  std::unordered_map<uint64_t, ElemState> race_;
  std::unordered_map<uint32_t, Shadow> shadow_;
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> uninit_reported_;
  std::vector<Violation> recorded_;
  uint64_t total_violations_ = 0;
  std::array<uint64_t, kNumViolationKinds> counts_{};

  static constexpr size_t kMaxRecorded = 128;
};

}  // namespace sage::check

#endif  // SAGE_CHECK_ACCESS_CHECKER_H_
