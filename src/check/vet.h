#ifndef SAGE_CHECK_VET_H_
#define SAGE_CHECK_VET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/filter.h"
#include "graph/csr.h"
#include "util/status.h"

namespace sage::core {
class Engine;
struct EngineOptions;
}  // namespace sage::core

namespace sage::check {

/// How much pre-flight verification SageVet performs before a program is
/// trusted (DESIGN.md "Static verification").
///
///  - kOff:    no vetting at all.
///  - kStatic: declaration-only analysis — the program's Footprint is
///             cross-checked against the engine's graph shape, buffer
///             registrations, and options, plus CSR structural validation
///             in Engine::Create. No traversal runs.
///  - kProbe:  kStatic plus one traversal of a tiny canonical probe graph
///             (MakeProbeGraph) with shadow-tracked buffers: SageCheck
///             watches every charged access at kFull, and behavioral
///             probing of Filter / SaveState catches declarations that
///             contradict what the program actually does.
enum class VetLevel : uint8_t {
  kOff = 0,
  kStatic = 1,
  kProbe = 2,
};

const char* VetLevelName(VetLevel level);

/// Parses "off" / "static" / "probe"; kInvalidArgument otherwise.
util::StatusOr<VetLevel> ParseVetLevel(const std::string& text);

/// Severity taxonomy of a vet finding.
///
///  - kNote:    informational; does not affect the verdict ("clean" may
///              carry notes — e.g. a program that opts out of checkpoints).
///  - kWarning: suspicious but not disqualifying (duplicate buffer in one
///              footprint list, an atomic flag with nothing to apply to).
///  - kUnsound: the declaration contradicts the graph, the registration
///              state, or the program's observed behaviour; trusting it
///              would corrupt the cost model or mask a real race. Unsound
///              programs are rejected at admission.
enum class VetSeverity : uint8_t {
  kNote = 0,
  kWarning = 1,
  kUnsound = 2,
};

const char* VetSeverityName(VetSeverity severity);

/// One vet finding. `code` is a stable kebab-case slug tests and tools key
/// on ("race-neighbor", "buffer-unregistered", "false-idempotence", ...);
/// `detail` is the human-readable explanation.
struct VetFinding {
  VetSeverity severity = VetSeverity::kNote;
  std::string code;
  std::string detail;
};

/// The result of vetting one program.
struct VetReport {
  std::string program;
  VetLevel level = VetLevel::kStatic;
  std::vector<VetFinding> findings;
  /// True when the kProbe traversal actually ran.
  bool probe_ran = false;
  /// Modeled seconds of the probe traversal (cost-model time, not wall).
  double probe_modeled_seconds = 0.0;
  /// Edges the probe traversal processed.
  uint64_t probe_edges = 0;
  /// Wall-clock seconds the whole vet took (the pre-flight price).
  double wall_seconds = 0.0;
  /// Whether SaveState reported checkpoint support.
  bool checkpoint_supported = false;

  void Add(VetSeverity severity, std::string code, std::string detail);

  bool unsound() const;
  /// "unsound" | "warning" | "clean" — notes never demote a clean verdict.
  const char* verdict() const;

  /// Multi-line human-readable report.
  std::string ToText() const;
  /// One JSON object (stable schema; see DESIGN.md).
  std::string ToJson() const;
  /// OK unless unsound — then kFailedPrecondition summarizing the findings.
  util::Status ToStatus() const;
};

/// The canonical probe graph: a deterministic, symmetric ~24-node graph
/// combining the shapes that exercise a traversal program's footprint — a
/// hub (tile splitting), a chain (long diameter), a diamond (duplicate
/// neighbor candidates), a self-loop (frontier == neighbor), and a second
/// component (unreached state stays initialized-but-untouched).
graph::Csr MakeProbeGraph();

/// Callbacks VetProgram needs to drive a probe traversal. Kept as hooks so
/// sage_vet does not depend on the apps layer (apps::VetApp supplies them
/// from the registry).
struct ProbeHooks {
  /// Drives one full run of `program` on `engine` the way the app needs
  /// (frontier-driven, global, peeling...). Required for kProbe.
  std::function<util::StatusOr<core::RunStats>(core::Engine&,
                                               core::FilterProgram&)>
      run;
  /// Optional fingerprint of the program's user-visible output
  /// (apps::OutputDigest): the observation channel for behavioral probing
  /// when the program does not support SaveState.
  std::function<uint64_t(const core::Engine&, const core::FilterProgram&)>
      digest;
};

/// Declaration-only checks of a program already bound to `engine`: footprint
/// buffer registration/size/aliasing, race soundness of the atomic /
/// idempotence flags, option cross-checks, and SaveState/RestoreState claim
/// consistency. Appends findings to *report (does not clear it).
void VetStatic(core::Engine& engine, core::FilterProgram& program,
               VetReport* report);

/// Full vet of a fresh program at `level`: builds a probe engine over
/// MakeProbeGraph() using `options` (check_level and host_threads are
/// overridden — the probe attaches its own shadow sink and runs serially),
/// binds the program, runs the static checks, and at kProbe drives
/// hooks.run under SageCheck kFull plus behavioral Filter/SaveState
/// probing. The program is consumed: it is left bound to the (destroyed)
/// probe engine, so vet a throwaway instance, not one you intend to run.
util::StatusOr<VetReport> VetProgram(core::FilterProgram& program,
                                     VetLevel level,
                                     const core::EngineOptions& options,
                                     const ProbeHooks& hooks);

}  // namespace sage::check

#endif  // SAGE_CHECK_VET_H_
