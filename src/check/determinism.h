#ifndef SAGE_CHECK_DETERMINISM_H_
#define SAGE_CHECK_DETERMINISM_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "graph/csr.h"
#include "sim/device_spec.h"

namespace sage::check {

/// What one traversal trial produced, reduced to comparable invariants.
/// `output_hash` digests the algorithm's result (e.g. the BFS distance
/// array in original-id order) and must be bit-identical across SM
/// placements AND dispatch orders. `total_sectors` is the device-wide count
/// of distinct sectors charged per batch: invariant under SM permutation
/// (the access stream is unchanged, only issued from different SM ids) but
/// NOT under dispatch shuffling, which reorders the stream through the LRU
/// L2 and legitimately changes hit/sector accounting. `seconds` may vary
/// and is reported for context only.
struct TrialResult {
  uint64_t output_hash = 0;
  uint64_t total_sectors = 0;
  double seconds = 0.0;
  /// Digest of DeviceTotals::sm_sectors — per-SM serviced-sector totals.
  /// Must be bit-identical between serial and parallel execution (the
  /// parallel backend replays the identical charge stream), but varies with
  /// SM permutation, so only the equivalence harness compares it.
  uint64_t sm_sector_hash = 0;
  /// Digest of every modeled-timing observable: total/per-kernel seconds,
  /// TP overhead, memory-system stats and host-link stats. The strongest
  /// invariant — serial and parallel runs must agree on every bit.
  uint64_t timing_hash = 0;
};

/// Runs one traversal under the given engine options with the SM placement
/// permuted by `sm_perm_seed` (0 = identity; see PermutationFromSeed). The
/// callback owns device + engine + program construction so every trial
/// starts from pristine state.
using TrialFn =
    std::function<TrialResult(const core::EngineOptions&, uint64_t)>;

struct DeterminismOptions {
  /// Perturbed re-runs per strategy. Each trial index runs twice: once with
  /// only the SM placement permuted (hash and sector totals must match the
  /// baseline) and once with the dispatch order also shuffled (hash must
  /// match; sectors are reported for context).
  uint32_t perturbed_trials = 3;
  std::vector<core::ExpandStrategy> strategies = {
      core::ExpandStrategy::kSage, core::ExpandStrategy::kB40c,
      core::ExpandStrategy::kWarpCentric};
};

struct DeterminismReport {
  bool deterministic = true;
  /// Per-strategy, per-trial comparison lines (human-readable).
  std::string details;
};

/// The determinism harness: for every strategy, runs an unperturbed
/// baseline trial, then for each trial index (a) a re-run with a shuffled
/// SM placement via GpuDevice::SetSmPermutation — output hash and total
/// charged sectors must be bit-identical, because the access stream is the
/// same — and (b) a re-run that additionally shuffles the tile / block
/// dispatch order via EngineOptions::dispatch_permutation_seed — output
/// hash must still be bit-identical (scheduling must never change what a
/// traversal computes, only when and where; Section 5.2's stealing is safe
/// exactly because tile work units are independent), while sector totals
/// may shift with the reordered stream.
DeterminismReport RunDeterminismHarness(const core::EngineOptions& base,
                                        const DeterminismOptions& options,
                                        const TrialFn& trial);

/// Ready-made harness instantiation: BFS from `source` on `csr`. BFS output
/// is execution-order-independent (level = shortest hop count regardless of
/// visit order), which makes it the canonical determinism workload.
DeterminismReport RunBfsDeterminism(const graph::Csr& csr,
                                    const sim::DeviceSpec& spec,
                                    graph::NodeId source,
                                    const core::EngineOptions& base,
                                    const DeterminismOptions& options);

struct EquivalenceOptions {
  /// host_threads values compared against the serial (host_threads = 1)
  /// baseline. 0 means "auto" (hardware concurrency).
  std::vector<uint32_t> thread_counts = {2, 7, 0};
  std::vector<core::ExpandStrategy> strategies = {
      core::ExpandStrategy::kSage, core::ExpandStrategy::kB40c,
      core::ExpandStrategy::kWarpCentric};
};

struct EquivalenceReport {
  bool equivalent = true;
  std::string details;
};

/// The serial-vs-parallel equivalence harness: for every strategy, runs a
/// serial baseline (host_threads = 1), then the same configuration at each
/// requested thread count. Output hash, total charged sectors, per-SM
/// sector digests and the full timing digest must all be bit-identical —
/// the parallel backend's trace-and-replay design (DESIGN.md §5) promises
/// the exact serial charge sequence, so ANY divergence is a bug, not noise.
EquivalenceReport RunSerialParallelEquivalence(const core::EngineOptions& base,
                                               const EquivalenceOptions& options,
                                               const TrialFn& trial);

/// Ready-made equivalence instantiation: BFS from `source` on `csr`.
EquivalenceReport RunBfsEquivalence(const graph::Csr& csr,
                                    const sim::DeviceSpec& spec,
                                    graph::NodeId source,
                                    const core::EngineOptions& base,
                                    const EquivalenceOptions& options);

/// The trial body RunBfsDeterminism / RunBfsEquivalence share: one pristine
/// device + engine + BFS run under `opts`, digested into a TrialResult.
TrialResult RunBfsTrial(const graph::Csr& csr, const sim::DeviceSpec& spec,
                        graph::NodeId source, const core::EngineOptions& opts,
                        uint64_t sm_perm_seed);

/// A seeded permutation of [0, n): seed 0 returns the empty vector (the
/// identity — GpuDevice::SetSmPermutation's "no permutation" form).
std::vector<uint32_t> PermutationFromSeed(uint32_t n, uint64_t seed);

/// FNV-1a-style 64-bit digest, chainable via `seed`.
uint64_t HashBytes(const void* data, size_t len,
                   uint64_t seed = 0xcbf29ce484222325ull);

template <typename T>
uint64_t HashSpan(std::span<const T> values,
                  uint64_t seed = 0xcbf29ce484222325ull) {
  return HashBytes(values.data(), values.size() * sizeof(T), seed);
}

}  // namespace sage::check

#endif  // SAGE_CHECK_DETERMINISM_H_
