#include <deque>
#include <queue>
#include <vector>

#include "reorder/reorderers.h"
#include "util/logging.h"
#include "util/timer.h"

namespace sage::reorder {

using graph::Csr;
using graph::NodeId;

namespace {

// Lazy max-heap over (key, node): stale entries are skipped at pop time by
// checking the authoritative key table.
struct LazyHeap {
  std::priority_queue<std::pair<int64_t, NodeId>> heap;

  void Push(NodeId v, int64_t key) { heap.emplace(key, v); }

  // Pops the unplaced node with the highest current key.
  NodeId PopMax(const std::vector<int64_t>& key,
                const std::vector<bool>& placed) {
    while (!heap.empty()) {
      auto [k, v] = heap.top();
      heap.pop();
      if (!placed[v] && key[v] == k) return v;
    }
    return graph::kInvalidNode;
  }
};

}  // namespace

ReorderResult GorderOrder(const Csr& csr, uint32_t window, uint32_t hub_cap) {
  util::WallTimer timer;
  const NodeId n = csr.num_nodes();
  const Csr in_csr = csr.Transpose();

  std::vector<int64_t> key(n, 0);
  std::vector<bool> placed(n, false);
  LazyHeap heap;
  for (NodeId v = 0; v < n; ++v) heap.Push(v, 0);

  // Applies the Gscore contribution of `u` to every unplaced candidate:
  //   +delta for each direct out-neighbor of u,
  //   +delta for each v sharing an in-neighbor x with u (x -> u, x -> v).
  // Hubs (degree > hub_cap) are skipped in the common-in-neighbor pass —
  // the standard mitigation; an uncapped pass is quadratic in hub degree.
  auto apply = [&](NodeId u, int64_t delta) {
    for (NodeId w : csr.Neighbors(u)) {
      if (placed[w]) continue;
      key[w] += delta;
      heap.Push(w, key[w]);
    }
    for (NodeId x : in_csr.Neighbors(u)) {
      if (csr.OutDegree(x) > hub_cap) continue;
      for (NodeId w : csr.Neighbors(x)) {
        if (placed[w] || w == u) continue;
        key[w] += delta;
        heap.Push(w, key[w]);
      }
    }
  };

  std::vector<NodeId> order;
  order.reserve(n);
  std::deque<NodeId> live_window;
  for (NodeId step = 0; step < n; ++step) {
    NodeId u = heap.PopMax(key, placed);
    SAGE_CHECK_NE(u, graph::kInvalidNode);
    placed[u] = true;
    order.push_back(u);
    live_window.push_back(u);
    apply(u, +1);
    if (live_window.size() > window) {
      NodeId old = live_window.front();
      live_window.pop_front();
      apply(old, -1);
    }
  }

  ReorderResult result;
  result.new_of_old.resize(n);
  for (NodeId rank = 0; rank < n; ++rank) result.new_of_old[order[rank]] = rank;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace sage::reorder
