#include "reorder/permutation.h"

namespace sage::reorder {

using graph::Csr;
using graph::NodeId;

std::vector<NodeId> IdentityPermutation(NodeId n) {
  std::vector<NodeId> perm(n);
  for (NodeId i = 0; i < n; ++i) perm[i] = i;
  return perm;
}

bool IsPermutation(std::span<const NodeId> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (NodeId p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

std::vector<NodeId> InvertPermutation(std::span<const NodeId> new_of_old) {
  std::vector<NodeId> inverse(new_of_old.size());
  for (size_t old_id = 0; old_id < new_of_old.size(); ++old_id) {
    SAGE_DCHECK(new_of_old[old_id] < new_of_old.size());
    inverse[new_of_old[old_id]] = static_cast<NodeId>(old_id);
  }
  return inverse;
}

std::vector<NodeId> ComposePermutations(std::span<const NodeId> first,
                                        std::span<const NodeId> second) {
  SAGE_CHECK_EQ(first.size(), second.size());
  std::vector<NodeId> out(first.size());
  for (size_t i = 0; i < first.size(); ++i) out[i] = second[first[i]];
  return out;
}

Csr ApplyToCsr(const Csr& csr, std::span<const NodeId> new_of_old) {
  SAGE_CHECK_EQ(static_cast<size_t>(csr.num_nodes()), new_of_old.size());
  const NodeId n = csr.num_nodes();
  std::vector<NodeId> old_of_new = InvertPermutation(new_of_old);

  graph::Coo coo;
  coo.num_nodes = n;
  coo.u.reserve(csr.num_edges());
  coo.v.reserve(csr.num_edges());
  // Emit nodes in *new* id order so FromCoo's scatter preserves each
  // adjacency list's relative order without a sort.
  for (NodeId new_u = 0; new_u < n; ++new_u) {
    NodeId old_u = old_of_new[new_u];
    for (NodeId old_v : csr.Neighbors(old_u)) {
      coo.u.push_back(new_u);
      coo.v.push_back(new_of_old[old_v]);
    }
  }
  return Csr::FromCoo(coo);
}

void RemapIds(std::span<const NodeId> new_of_old,
              std::vector<NodeId>& ids) {
  for (NodeId& id : ids) {
    SAGE_DCHECK(id < new_of_old.size());
    id = new_of_old[id];
  }
}

}  // namespace sage::reorder
