#include <algorithm>
#include <deque>

#include "reorder/permutation.h"
#include "reorder/reorderers.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace sage::reorder {

using graph::Csr;
using graph::NodeId;

namespace {

// Symmetrized adjacency (union of out- and in-edges), deduped.
Csr Symmetrized(const Csr& csr) {
  graph::Coo coo = csr.ToCoo();
  graph::Symmetrize(coo);
  graph::RemoveSelfLoops(coo);
  graph::SortCoo(coo);
  graph::DedupSortedCoo(coo);
  return Csr::FromCoo(coo);
}

}  // namespace

ReorderResult RcmOrder(const Csr& csr) {
  util::WallTimer timer;
  const NodeId n = csr.num_nodes();
  Csr sym = Symmetrized(csr);

  std::vector<NodeId> order;  // Cuthill-McKee visitation order
  order.reserve(n);
  std::vector<bool> visited(n, false);

  // Nodes sorted by (degree, id): component seeds are minimum-degree.
  std::vector<NodeId> by_degree(n);
  for (NodeId v = 0; v < n; ++v) by_degree[v] = v;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&sym](NodeId a, NodeId b) {
                     return sym.OutDegree(a) < sym.OutDegree(b);
                   });

  std::vector<NodeId> nbrs;
  for (NodeId seed : by_degree) {
    if (visited[seed]) continue;
    visited[seed] = true;
    std::deque<NodeId> queue{seed};
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      nbrs.assign(sym.Neighbors(u).begin(), sym.Neighbors(u).end());
      std::stable_sort(nbrs.begin(), nbrs.end(),
                       [&sym](NodeId a, NodeId b) {
                         return sym.OutDegree(a) < sym.OutDegree(b);
                       });
      for (NodeId v : nbrs) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  SAGE_CHECK_EQ(order.size(), static_cast<size_t>(n));

  ReorderResult result;
  result.new_of_old.resize(n);
  // Reverse Cuthill-McKee: last visited gets the smallest index.
  for (NodeId rank = 0; rank < n; ++rank) {
    result.new_of_old[order[rank]] = n - 1 - rank;
  }
  result.seconds = timer.Seconds();
  return result;
}

ReorderResult DegreeOrder(const Csr& csr) {
  util::WallTimer timer;
  const NodeId n = csr.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&csr](NodeId a, NodeId b) {
    return csr.OutDegree(a) > csr.OutDegree(b);
  });
  ReorderResult result;
  result.new_of_old.resize(n);
  for (NodeId rank = 0; rank < n; ++rank) result.new_of_old[order[rank]] = rank;
  result.seconds = timer.Seconds();
  return result;
}

ReorderResult RandomOrder(const Csr& csr, uint64_t seed) {
  util::WallTimer timer;
  const NodeId n = csr.num_nodes();
  ReorderResult result;
  result.new_of_old = IdentityPermutation(n);
  util::Rng rng(seed);
  rng.Shuffle(result.new_of_old);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace sage::reorder
