#ifndef SAGE_REORDER_REORDERERS_H_
#define SAGE_REORDER_REORDERERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace sage::reorder {

/// A reordering baseline's output: the relabeling plus its preprocessing
/// wall-clock cost (the quantity Table 2 reports). These are the offline,
/// whole-graph methods SAGE's on-the-fly Sampling-based Reordering is
/// compared against (Section 7.2).
struct ReorderResult {
  std::vector<graph::NodeId> new_of_old;
  double seconds = 0.0;
};

/// Reversed Cuthill-McKee [10]: BFS over the symmetrized graph from a
/// minimum-degree seed per component, neighbors visited in ascending-degree
/// order, final order reversed. Reduces adjacency-matrix bandwidth.
ReorderResult RcmOrder(const graph::Csr& csr);

/// Layered Label Propagation [5] (simplified single-layer variant):
/// `passes` synchronous label-propagation sweeps over the symmetrized
/// graph; nodes are then grouped by their final cluster label, giving
/// contiguous indices within clusters.
ReorderResult LlpOrder(const graph::Csr& csr, uint32_t passes = 8,
                       uint64_t seed = 1);

/// Gorder [49]: greedy maximization of the windowed locality score
/// Gscore (shared in-neighbors + direct edges within a sliding window of
/// `window`), via a lazy max-heap. `hub_cap` skips score propagation
/// through nodes whose degree exceeds the cap (the standard practical
/// mitigation; without it the update cost is quadratic in hub degree —
/// which is exactly why Gorder's preprocessing dominates Table 2).
ReorderResult GorderOrder(const graph::Csr& csr, uint32_t window = 5,
                          uint32_t hub_cap = 32);

/// Descending out-degree order (a cheap locality heuristic baseline).
ReorderResult DegreeOrder(const graph::Csr& csr);

/// Uniformly random relabeling — the adversarial baseline for tests.
ReorderResult RandomOrder(const graph::Csr& csr, uint64_t seed);

}  // namespace sage::reorder

#endif  // SAGE_REORDER_REORDERERS_H_
