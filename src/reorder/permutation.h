#ifndef SAGE_REORDER_PERMUTATION_H_
#define SAGE_REORDER_PERMUTATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/logging.h"

namespace sage::reorder {

/// A node relabeling σ is represented as `new_of_old`: new_of_old[old] is
/// the node's new id. All reordering methods (RCM, LLP, Gorder and SAGE's
/// Sampling-based Reordering) produce this form.

/// Identity permutation of size n.
std::vector<graph::NodeId> IdentityPermutation(graph::NodeId n);

/// True if `perm` is a bijection on [0, perm.size()).
bool IsPermutation(std::span<const graph::NodeId> perm);

/// inverse[new] == old.
std::vector<graph::NodeId> InvertPermutation(
    std::span<const graph::NodeId> new_of_old);

/// Composition: applying `first` then `second`; result[old] ==
/// second[first[old]].
std::vector<graph::NodeId> ComposePermutations(
    std::span<const graph::NodeId> first,
    std::span<const graph::NodeId> second);

/// Relabels a CSR under σ: node u becomes new_of_old[u] and every neighbor
/// id is mapped. Adjacency lists keep their relative edge order (the engine
/// does not require sorted lists; memory behaviour is what changes).
graph::Csr ApplyToCsr(const graph::Csr& csr,
                      std::span<const graph::NodeId> new_of_old);

/// Permutes a node-attribute vector: out[new_of_old[i]] = in[i].
template <typename T>
std::vector<T> PermuteVector(const std::vector<T>& in,
                             std::span<const graph::NodeId> new_of_old) {
  SAGE_CHECK_EQ(in.size(), new_of_old.size());
  std::vector<T> out(in.size());
  for (size_t i = 0; i < in.size(); ++i) out[new_of_old[i]] = in[i];
  return out;
}

/// Remaps a list of node ids in place: id -> new_of_old[id].
void RemapIds(std::span<const graph::NodeId> new_of_old,
              std::vector<graph::NodeId>& ids);

}  // namespace sage::reorder

#endif  // SAGE_REORDER_PERMUTATION_H_
