#include <algorithm>
#include <unordered_map>

#include "reorder/reorderers.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace sage::reorder {

using graph::Csr;
using graph::NodeId;

ReorderResult LlpOrder(const Csr& csr, uint32_t passes, uint64_t seed) {
  util::WallTimer timer;
  const NodeId n = csr.num_nodes();

  // Symmetrized adjacency for clustering.
  Csr sym;
  {
    graph::Coo coo = csr.ToCoo();
    graph::Symmetrize(coo);
    graph::RemoveSelfLoops(coo);
    graph::SortCoo(coo);
    graph::DedupSortedCoo(coo);
    sym = Csr::FromCoo(coo);
  }

  std::vector<NodeId> label(n);
  for (NodeId v = 0; v < n; ++v) label[v] = v;

  util::Rng rng(seed);
  std::vector<NodeId> sweep(n);
  for (NodeId v = 0; v < n; ++v) sweep[v] = v;

  std::unordered_map<NodeId, uint32_t> counts;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    rng.Shuffle(sweep);
    bool changed = false;
    for (NodeId u : sweep) {
      auto nbrs = sym.Neighbors(u);
      if (nbrs.empty()) continue;
      counts.clear();
      for (NodeId v : nbrs) ++counts[label[v]];
      // Majority label; ties toward the smaller label for determinism.
      NodeId best = label[u];
      uint32_t best_count = 0;
      for (const auto& [lbl, cnt] : counts) {
        if (cnt > best_count || (cnt == best_count && lbl < best)) {
          best = lbl;
          best_count = cnt;
        }
      }
      if (best != label[u]) {
        label[u] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Group nodes by cluster label (stable within a cluster by id): nodes of
  // a cluster receive contiguous indices.
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&label](NodeId a, NodeId b) { return label[a] < label[b]; });

  ReorderResult result;
  result.new_of_old.resize(n);
  for (NodeId rank = 0; rank < n; ++rank) result.new_of_old[order[rank]] = rank;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace sage::reorder
