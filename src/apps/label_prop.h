#ifndef SAGE_APPS_LABEL_PROP_H_
#define SAGE_APPS_LABEL_PROP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Synchronous Label Propagation — "identify the label majority among all
/// neighbors of a frontier" (Section 4's primitive list). Every iteration,
/// frontiers push their label as a vote to each neighbor; at the next
/// iteration boundary, every voted-on node adopts its majority label (ties
/// broken toward the smaller label). Labels are original ids, stable under
/// reordering. Drive with RunGlobal for a fixed number of rounds.
class LabelPropProgram : public core::FilterProgram {
 public:
  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void BeginIteration(uint32_t iteration) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "label-prop"; }

  void Reset();

  /// Applies any pending votes; call once after the final iteration.
  void Finalize();

  graph::NodeId LabelOf(graph::NodeId original) const;

 private:
  void ApplyVotes();

  core::Engine* engine_ = nullptr;
  std::vector<graph::NodeId> label_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> votes_;
  sim::Buffer label_buf_;
  core::Footprint footprint_;
  bool pending_votes_ = false;
};

/// Runs `iterations` synchronous LP rounds; returns run stats.
util::StatusOr<core::RunStats> RunLabelPropagation(core::Engine& engine,
                                                   LabelPropProgram& program,
                                                   uint32_t iterations);

}  // namespace sage::apps

#endif  // SAGE_APPS_LABEL_PROP_H_
