#ifndef SAGE_APPS_REFERENCE_H_
#define SAGE_APPS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace sage::apps {

/// Sequential reference implementations used as correctness oracles for
/// every engine and baseline (all of which must reproduce these results
/// exactly, up to floating-point tolerance for PR/BC).

/// BFS distances from `source` (0xffffffff = unreached).
std::vector<uint32_t> BfsReference(const graph::Csr& csr,
                                   graph::NodeId source);

/// Brandes dependency scores (delta) from one source.
std::vector<double> BrandesReference(const graph::Csr& csr,
                                     graph::NodeId source);

/// Push-style PageRank with damping 0.85 and `iterations` rounds,
/// matching PageRankProgram's update order and dangling handling.
std::vector<double> PageRankReference(const graph::Csr& csr,
                                      uint32_t iterations);

/// Connected components via union-find over the symmetrized edge set;
/// each node's label is the minimum original id in its component.
std::vector<graph::NodeId> ConnectedComponentsReference(
    const graph::Csr& csr);

/// Dijkstra with SyntheticEdgeWeight (see sssp.h).
std::vector<uint64_t> SsspReference(const graph::Csr& csr,
                                    graph::NodeId source);

}  // namespace sage::apps

#endif  // SAGE_APPS_REFERENCE_H_
