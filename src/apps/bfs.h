#ifndef SAGE_APPS_BFS_H_
#define SAGE_APPS_BFS_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Breadth-First Search as a SAGE filter program (Algorithm 1, lines 2-6):
/// a neighbor passes the filter the first time it is reached; its distance
/// is the frontier's plus one. BFS tolerates dirty writes, so it needs no
/// atomics (Section 7.2).
class BfsProgram : public core::FilterProgram {
 public:
  static constexpr uint32_t kUnreached = 0xffffffffu;

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  bool SaveState(std::vector<uint8_t>* out) const override;
  bool RestoreState(std::span<const uint8_t> bytes) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "bfs"; }

  /// Resets distances and seeds the given source (original id). Call after
  /// Bind and before every Run.
  void SetSource(graph::NodeId source_original);

  /// Distance of a node (original id); kUnreached if not reached.
  uint32_t DistanceOf(graph::NodeId original) const;

  /// Directly sets a node's distance (original id). Used by multi-GPU
  /// drivers to inject discoveries received from peer partitions.
  void SetDistance(graph::NodeId original, uint32_t dist);

  /// Internal-id distance array (for level-driven consumers like BC).
  const std::vector<uint32_t>& dist_internal() const { return dist_; }

 private:
  core::Engine* engine_ = nullptr;
  std::vector<uint32_t> dist_;
  sim::Buffer dist_buf_;
  core::Footprint footprint_;
};

/// Convenience: full BFS from `source`; returns the run stats.
util::StatusOr<core::RunStats> RunBfs(core::Engine& engine,
                                      BfsProgram& program,
                                      graph::NodeId source_original);

}  // namespace sage::apps

#endif  // SAGE_APPS_BFS_H_
