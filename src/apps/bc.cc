#include "apps/bc.h"

#include <algorithm>

#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

namespace {
constexpr uint32_t kUnreached = 0xffffffffu;
}  // namespace

void BcProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  const NodeId n = engine->csr().num_nodes();
  dist_.assign(n, kUnreached);
  sigma_.assign(n, 0.0);
  delta_.assign(n, 0.0);
  dist_buf_ = engine->RegisterAttribute("bc.dist", sizeof(uint32_t));
  sigma_buf_ = engine->RegisterAttribute("bc.sigma", sizeof(double));
  delta_buf_ = engine->RegisterAttribute("bc.delta", sizeof(double));

  footprint_forward_ = core::Footprint();
  footprint_forward_.neighbor_reads = {&dist_buf_};
  footprint_forward_.neighbor_writes = {&dist_buf_, &sigma_buf_};
  footprint_forward_.frontier_reads = {&dist_buf_, &sigma_buf_};
  footprint_forward_.atomic_neighbor = true;  // atomicCAS + atomicAdd

  footprint_backward_ = core::Footprint();
  footprint_backward_.neighbor_reads = {&dist_buf_, &sigma_buf_, &delta_buf_};
  footprint_backward_.frontier_reads = {&dist_buf_, &sigma_buf_};
  footprint_backward_.frontier_writes = {&delta_buf_};
  footprint_backward_.atomic_frontier = true;  // atomicAdd(delta[frontier])
}

void BcProgram::SetSource(NodeId source_original) {
  SAGE_CHECK(engine_ != nullptr);
  std::fill(dist_.begin(), dist_.end(), kUnreached);
  std::fill(sigma_.begin(), sigma_.end(), 0.0);
  std::fill(delta_.begin(), delta_.end(), 0.0);
  NodeId s = engine_->InternalId(source_original);
  dist_[s] = 0;
  sigma_[s] = 1.0;
  phase_ = Phase::kForward;
}

bool BcProgram::Filter(NodeId frontier, NodeId neighbor) {
  if (phase_ == Phase::kForward) {
    bool pass = false;
    if (dist_[neighbor] == kUnreached) {  // atomicCAS
      dist_[neighbor] = dist_[frontier] + 1;
      pass = true;
    }
    if (dist_[neighbor] == dist_[frontier] + 1) {
      sigma_[neighbor] += sigma_[frontier];  // atomicAdd
    }
    return pass;
  }
  // Backward: frontier at level l pulls dependency from out-neighbors at
  // level l+1 (Algorithm 1 lines 20-24).
  if (dist_[neighbor] == dist_[frontier] + 1 && sigma_[neighbor] > 0.0) {
    double increment = sigma_[frontier] / sigma_[neighbor];
    increment *= delta_[neighbor] + 1.0;
    delta_[frontier] += increment;  // atomicAdd
  }
  return false;
}

void BcProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  dist_ = reorder::PermuteVector(dist_, new_of_old);
  sigma_ = reorder::PermuteVector(sigma_, new_of_old);
  delta_ = reorder::PermuteVector(delta_, new_of_old);
}

util::StatusOr<core::RunStats> Betweenness::Run(core::Engine& engine,
                                                NodeId source_original) {
  SAGE_RETURN_IF_ERROR(engine.Bind(&program_));
  program_.SetSource(source_original);
  core::RunStats total;

  NodeId src[1] = {source_original};
  SAGE_ASSIGN_OR_RETURN(core::RunStats fwd, engine.Run(src));
  total.Accumulate(fwd);

  program_.SetPhase(BcProgram::Phase::kBackward);
  SAGE_RETURN_IF_ERROR(engine.Bind(&program_));

  // Deepest reached level.
  const auto& dist = program_.dist_internal();
  uint32_t max_level = 0;
  for (uint32_t d : dist) {
    if (d != kUnreached) max_level = std::max(max_level, d);
  }
  // Walk levels from the deepest-1 up to the source. Frontiers are
  // recomputed from dist each level so a mid-run reordering stays safe.
  for (int64_t level = static_cast<int64_t>(max_level) - 1; level >= 0;
       --level) {
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < dist.size(); ++v) {
      if (dist[v] == static_cast<uint32_t>(level)) frontier.push_back(v);
    }
    if (frontier.empty()) continue;
    SAGE_ASSIGN_OR_RETURN(core::RunStats it,
                          engine.RunOneIteration(frontier, nullptr));
    total.Accumulate(it);
  }

  // Fold per-source dependencies into centrality, keyed by original id.
  const auto& delta = program_.delta_internal();
  NodeId s_int = engine.InternalId(source_original);
  for (NodeId v = 0; v < delta.size(); ++v) {
    if (v == s_int) continue;
    centrality_[engine.OriginalId(v)] += delta[v];
  }
  return total;
}

double Betweenness::DeltaOf(NodeId original) const {
  core::Engine* engine = program_.engine();
  SAGE_CHECK(engine != nullptr);
  return program_.delta_internal()[engine->InternalId(original)];
}

}  // namespace sage::apps
