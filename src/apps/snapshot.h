#ifndef SAGE_APPS_SNAPSHOT_H_
#define SAGE_APPS_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace sage::apps::snapshot {

/// Tiny byte-serialization helpers for FilterProgram::SaveState /
/// RestoreState (SageGuard checkpoints). Fixed little-endian-of-host
/// layout: checkpoints live in memory for the duration of one process, not
/// on portable storage, so host byte order is fine. Readers are strict —
/// any length mismatch fails the restore, and the caller falls back to a
/// full rerun.

inline void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

inline void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

template <typename T>
void AppendVector(std::vector<uint8_t>* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendU64(out, v.size());
  const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

/// Cursor over a serialized state blob. Every Read* returns false (and
/// stops consuming) on truncation; Complete() additionally requires the
/// blob to be fully consumed — trailing garbage is also a failed restore.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

  /// Reads a vector written by AppendVector. `expected_elems` pins the
  /// element count (program state arrays are graph-sized); pass
  /// kAnyLength to accept whatever was written.
  static constexpr uint64_t kAnyLength = ~0ull;
  template <typename T>
  bool ReadVector(std::vector<T>* v, uint64_t expected_elems) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    if (expected_elems != kAnyLength && n != expected_elems) return false;
    if (n > (bytes_.size() - pos_) / sizeof(T)) return false;
    v->resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(v->data(), bytes_.data() + pos_,
                  static_cast<size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<size_t>(n) * sizeof(T);
    return true;
  }

  bool Complete() const { return pos_ == bytes_.size(); }

 private:
  bool ReadRaw(void* dst, size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    std::memcpy(dst, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace sage::apps::snapshot

#endif  // SAGE_APPS_SNAPSHOT_H_
