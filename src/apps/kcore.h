#ifndef SAGE_APPS_KCORE_H_
#define SAGE_APPS_KCORE_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// K-core decomposition by iterative peeling, expressed as a filtering
/// step (another of the customized primitives Section 4's interface
/// supports): the frontier carries freshly removed nodes; each removal
/// decrements its neighbors' remaining degrees, and a neighbor whose
/// degree drops below k is removed and becomes frontier. Run on a
/// symmetrized graph; nodes left standing form the k-core.
class KCoreProgram : public core::FilterProgram {
 public:
  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  bool SaveState(std::vector<uint8_t>* out) const override;
  bool RestoreState(std::span<const uint8_t> bytes) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "kcore"; }

  /// Resets state for a decomposition with threshold k and returns the
  /// initial frontier (original ids of nodes already below k).
  std::vector<graph::NodeId> Reset(uint32_t k);

  /// True if the node survived peeling (member of the k-core).
  bool InCore(graph::NodeId original) const;

 private:
  core::Engine* engine_ = nullptr;
  uint32_t k_ = 0;
  std::vector<uint32_t> degree_;
  std::vector<uint8_t> removed_;
  sim::Buffer degree_buf_;
  sim::Buffer removed_buf_;
  core::Footprint footprint_;
};

/// Runs the full peeling; returns stats. The program afterwards answers
/// InCore queries.
util::StatusOr<core::RunStats> RunKCore(core::Engine& engine,
                                        KCoreProgram& program, uint32_t k);

/// Sequential reference peeling. Treats the graph as already symmetrized
/// (the program's contract). Returns an in-core flag per node.
std::vector<uint8_t> KCoreReference(const graph::Csr& csr, uint32_t k);

}  // namespace sage::apps

#endif  // SAGE_APPS_KCORE_H_
