#include "apps/pr_delta.h"

#include <algorithm>

#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void DeltaPageRankProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  const auto& csr = engine->csr();
  const NodeId n = csr.num_nodes();
  pr_.assign(n, 0.0);
  resid_.assign(n, 0.0);
  delta_.assign(n, 0.0);
  touched_.assign(n, 0);
  queued_.assign(n, 0);
  outdeg_.resize(n);
  for (NodeId u = 0; u < n; ++u) outdeg_[u] = csr.OutDegree(u);
  pr_buf_ = engine->RegisterAttribute("prd.rank", sizeof(double));
  resid_buf_ = engine->RegisterAttribute("prd.resid", sizeof(double));
  outdeg_buf_ = engine->RegisterAttribute("prd.outdeg", sizeof(uint32_t));
  delta_buf_ = engine->RegisterAttribute("prd.delta", sizeof(double));
  touched_buf_ = engine->RegisterAttribute("prd.touched", sizeof(uint32_t));
  queued_buf_ = engine->RegisterAttribute("prd.queued", sizeof(uint32_t));
  footprint_ = core::Footprint();
  // Touch() reads and writes the frontier node's residual, delta, touched
  // tag, and rank; Filter then reads/updates the neighbor's residual and
  // queued tag. The original declaration covered only {resid, outdeg} reads
  // and the pr write — a SageVet audit flagged the rest as undeclared
  // (uncharged) accesses, i.e. silent cost-model holes.
  footprint_.frontier_reads = {&resid_buf_, &outdeg_buf_, &delta_buf_,
                               &touched_buf_};
  footprint_.frontier_writes = {&pr_buf_, &resid_buf_, &delta_buf_,
                                &touched_buf_};
  footprint_.neighbor_reads = {&resid_buf_, &queued_buf_};
  footprint_.neighbor_writes = {&resid_buf_, &queued_buf_};
  footprint_.atomic_neighbor = true;  // atomicAdd on residuals
  // The frontier-side residual claim (resid[f] -> 0) can race with a
  // neighbor-side atomicAdd to the same node, so on real hardware it is an
  // atomicExch — declare the frontier writes atomic rather than relying on
  // the weaker idempotence claim the original footprint made.
  footprint_.atomic_frontier = true;
}

void DeltaPageRankProgram::Reset(double epsilon) {
  SAGE_CHECK(engine_ != nullptr);
  epsilon_ = epsilon;
  iteration_ = 0;
  const double init =
      (1.0 - kDamping) / std::max<size_t>(pr_.size(), 1);
  std::fill(pr_.begin(), pr_.end(), 0.0);
  std::fill(resid_.begin(), resid_.end(), init);
  std::fill(delta_.begin(), delta_.end(), 0.0);
  std::fill(touched_.begin(), touched_.end(), 0);
  std::fill(queued_.begin(), queued_.end(), 0);
}

void DeltaPageRankProgram::BeginIteration(uint32_t iteration) {
  (void)iteration;  // tags use a monotone local counter across runs
  ++iteration_;
}

void DeltaPageRankProgram::Touch(NodeId frontier) {
  if (touched_[frontier] == iteration_) return;
  touched_[frontier] = iteration_;
  delta_[frontier] = resid_[frontier];
  pr_[frontier] += resid_[frontier];
  resid_[frontier] = 0.0;
}

bool DeltaPageRankProgram::Filter(NodeId frontier, NodeId neighbor) {
  Touch(frontier);
  if (delta_[frontier] <= 0.0) return false;
  resid_[neighbor] +=
      kDamping * delta_[frontier] / static_cast<double>(outdeg_[frontier]);
  if (resid_[neighbor] > epsilon_ && queued_[neighbor] != iteration_) {
    queued_[neighbor] = iteration_;
    return true;
  }
  return false;
}

void DeltaPageRankProgram::Finalize() {
  // Sub-threshold residuals never propagate; fold them into the ranks so
  // the total converged mass matches the power iteration's.
  for (size_t v = 0; v < pr_.size(); ++v) {
    pr_[v] += resid_[v];
    resid_[v] = 0.0;
  }
}

void DeltaPageRankProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  pr_ = reorder::PermuteVector(pr_, new_of_old);
  resid_ = reorder::PermuteVector(resid_, new_of_old);
  delta_ = reorder::PermuteVector(delta_, new_of_old);
  touched_ = reorder::PermuteVector(touched_, new_of_old);
  queued_ = reorder::PermuteVector(queued_, new_of_old);
  outdeg_ = reorder::PermuteVector(outdeg_, new_of_old);
}

double DeltaPageRankProgram::RankOf(NodeId original) const {
  return pr_[engine_->InternalId(original)];
}

util::StatusOr<core::RunStats> RunDeltaPageRank(core::Engine& engine,
                                                DeltaPageRankProgram& program,
                                                double epsilon) {
  SAGE_RETURN_IF_ERROR(engine.Bind(&program));
  program.Reset(epsilon);
  std::vector<NodeId> all(engine.csr().num_nodes());
  for (NodeId v = 0; v < all.size(); ++v) all[v] = v;
  auto stats = engine.Run(all);
  if (stats.ok()) program.Finalize();
  return stats;
}

}  // namespace sage::apps
