#ifndef SAGE_APPS_BC_H_
#define SAGE_APPS_BC_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// The filter program behind Betweenness Centrality (Brandes): a forward
/// phase (Algorithm 1 lines 8-17 — BFS with atomicCAS on dist plus
/// shortest-path counting into sigma) and a backward phase (lines 19-24 —
/// dependency accumulation from the deepest level up).
class BcProgram : public core::FilterProgram {
 public:
  enum class Phase { kForward, kBackward };

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  const core::Footprint& footprint() const override {
    return phase_ == Phase::kForward ? footprint_forward_
                                     : footprint_backward_;
  }
  const char* name() const override {
    return phase_ == Phase::kForward ? "bc-forward" : "bc-backward";
  }

  /// Resets per-source state and seeds the forward phase.
  void SetSource(graph::NodeId source_original);

  /// Switches phase. Rebind the engine afterwards so it picks up the
  /// phase's footprint: engine.Bind(&program).
  void SetPhase(Phase phase) { phase_ = phase; }

  const std::vector<uint32_t>& dist_internal() const { return dist_; }
  const std::vector<double>& sigma_internal() const { return sigma_; }
  const std::vector<double>& delta_internal() const { return delta_; }
  core::Engine* engine() const { return engine_; }

 private:
  core::Engine* engine_ = nullptr;
  Phase phase_ = Phase::kForward;
  std::vector<uint32_t> dist_;
  std::vector<double> sigma_;
  std::vector<double> delta_;
  sim::Buffer dist_buf_;
  sim::Buffer sigma_buf_;
  sim::Buffer delta_buf_;
  core::Footprint footprint_forward_;
  core::Footprint footprint_backward_;
};

/// Driver for one full Brandes source sweep: forward BFS, then the
/// level-by-level backward dependency accumulation. Accumulates centrality
/// (indexed by *original* node id) across calls.
class Betweenness {
 public:
  explicit Betweenness(graph::NodeId num_nodes)
      : centrality_(num_nodes, 0.0) {}

  /// Runs Brandes from one source; returns combined forward+backward stats.
  util::StatusOr<core::RunStats> Run(core::Engine& engine,
                                     graph::NodeId source_original);

  /// Dependency (delta) of a node from the most recent Run, by original id.
  double DeltaOf(graph::NodeId original) const;

  const std::vector<double>& centrality() const { return centrality_; }

 private:
  BcProgram program_;
  std::vector<double> centrality_;
};

}  // namespace sage::apps

#endif  // SAGE_APPS_BC_H_
