#include "apps/cc.h"

#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void CcProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  label_.resize(engine->csr().num_nodes());
  label_buf_ = engine->RegisterAttribute("cc.label", sizeof(NodeId));
  footprint_ = core::Footprint();
  footprint_.neighbor_reads = {&label_buf_};
  footprint_.neighbor_writes = {&label_buf_};
  footprint_.frontier_reads = {&label_buf_};
  footprint_.atomic_neighbor = true;  // atomicMin
  Reset();
}

void CcProgram::Reset() {
  SAGE_CHECK(engine_ != nullptr);
  for (NodeId v = 0; v < label_.size(); ++v) {
    label_[v] = engine_->OriginalId(v);
  }
}

bool CcProgram::Filter(NodeId frontier, NodeId neighbor) {
  if (label_[frontier] < label_[neighbor]) {  // atomicMin
    label_[neighbor] = label_[frontier];
    return true;
  }
  return false;
}

void CcProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  label_ = reorder::PermuteVector(label_, new_of_old);
}

NodeId CcProgram::ComponentOf(NodeId original) const {
  return label_[engine_->InternalId(original)];
}

util::StatusOr<core::RunStats> RunConnectedComponents(core::Engine& engine,
                                                      CcProgram& program) {
  SAGE_RETURN_IF_ERROR(engine.Bind(&program));
  program.Reset();
  // Every node starts as a frontier carrying its own label.
  std::vector<NodeId> sources(engine.csr().num_nodes());
  for (NodeId v = 0; v < sources.size(); ++v) sources[v] = v;
  return engine.Run(sources);
}

}  // namespace sage::apps
