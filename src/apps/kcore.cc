#include "apps/kcore.h"

#include <deque>

#include "apps/registry.h"
#include "apps/snapshot.h"
#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void KCoreProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  const NodeId n = engine->csr().num_nodes();
  degree_.assign(n, 0);
  removed_.assign(n, 0);
  degree_buf_ = engine->RegisterAttribute("kcore.degree", sizeof(uint32_t));
  removed_buf_ = engine->RegisterAttribute("kcore.removed", sizeof(uint8_t));
  footprint_ = core::Footprint();
  // Filter reads removed[neighbor] and degree[neighbor] for every edge and
  // writes both on a passing edge (the removal flag flips exactly when the
  // degree decrement crosses k). SageVet's probe caught the original
  // declaration omitting `removed` entirely — every edge's flag load was
  // invisible to the cost model.
  footprint_.neighbor_reads = {&degree_buf_, &removed_buf_};
  footprint_.neighbor_writes = {&degree_buf_, &removed_buf_};
  footprint_.atomic_neighbor = true;  // atomicSub on the degree counter
}

std::vector<NodeId> KCoreProgram::Reset(uint32_t k) {
  SAGE_CHECK(engine_ != nullptr);
  k_ = k;
  const auto& csr = engine_->csr();
  std::vector<NodeId> initial;
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    degree_[v] = csr.OutDegree(v);
    removed_[v] = degree_[v] < k_ ? 1 : 0;
    if (removed_[v]) initial.push_back(engine_->OriginalId(v));
  }
  return initial;
}

bool KCoreProgram::Filter(NodeId frontier, NodeId neighbor) {
  (void)frontier;
  if (removed_[neighbor]) return false;
  // atomicSub(degree[neighbor], 1); removal triggers when it drops below k.
  if (--degree_[neighbor] < k_) {
    removed_[neighbor] = 1;
    return true;
  }
  return false;
}

void KCoreProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  degree_ = reorder::PermuteVector(degree_, new_of_old);
  removed_ = reorder::PermuteVector(removed_, new_of_old);
}

bool KCoreProgram::SaveState(std::vector<uint8_t>* out) const {
  snapshot::AppendU32(out, k_);
  snapshot::AppendVector(out, degree_);
  snapshot::AppendVector(out, removed_);
  return true;
}

bool KCoreProgram::RestoreState(std::span<const uint8_t> bytes) {
  snapshot::Reader r(bytes);
  return r.ReadU32(&k_) && r.ReadVector(&degree_, degree_.size()) &&
         r.ReadVector(&removed_, removed_.size()) && r.Complete();
}

bool KCoreProgram::InCore(NodeId original) const {
  return removed_[engine_->InternalId(original)] == 0;
}

util::StatusOr<core::RunStats> RunKCore(core::Engine& engine,
                                        KCoreProgram& program, uint32_t k) {
  AppParams params;
  params.k = k;
  return RunApp(engine, program, params);
}

std::vector<uint8_t> KCoreReference(const graph::Csr& csr, uint32_t k) {
  const NodeId n = csr.num_nodes();
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  std::deque<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = csr.OutDegree(v);
    if (degree[v] < k) {
      removed[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : csr.Neighbors(u)) {
      if (removed[v]) continue;
      if (--degree[v] < k) {
        removed[v] = 1;
        queue.push_back(v);
      }
    }
  }
  std::vector<uint8_t> in_core(n);
  for (NodeId v = 0; v < n; ++v) in_core[v] = removed[v] ? 0 : 1;
  return in_core;
}

}  // namespace sage::apps
