#ifndef SAGE_APPS_MSBFS_H_
#define SAGE_APPS_MSBFS_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Concurrent multi-source BFS (the iBFS workload the paper cites [27]):
/// up to 64 BFS instances share one traversal, each owning a bit in a
/// per-node reachability mask. A node joins the frontier whenever it
/// gains new bits, so all instances amortize the same adjacency reads —
/// far cheaper than 64 separate traversals.
class MultiSourceBfsProgram : public core::FilterProgram {
 public:
  static constexpr uint32_t kMaxSources = 64;

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "multi-source-bfs"; }

  /// Resets state and seeds the sources (original ids; at most 64).
  void SetSources(std::span<const graph::NodeId> sources_original);

  /// True if BFS instance `source_index` reached the node.
  bool Reached(uint32_t source_index, graph::NodeId original) const;

  /// Number of nodes reached by instance `source_index`.
  uint64_t ReachedCount(uint32_t source_index) const;

 private:
  core::Engine* engine_ = nullptr;
  std::vector<uint64_t> mask_;
  sim::Buffer mask_buf_;
  core::Footprint footprint_;
};

/// Runs all instances to convergence; returns combined stats.
util::StatusOr<core::RunStats> RunMultiSourceBfs(
    core::Engine& engine, MultiSourceBfsProgram& program,
    std::span<const graph::NodeId> sources_original);

}  // namespace sage::apps

#endif  // SAGE_APPS_MSBFS_H_
