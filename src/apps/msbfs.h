#ifndef SAGE_APPS_MSBFS_H_
#define SAGE_APPS_MSBFS_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Concurrent multi-source BFS (the iBFS workload the paper cites [27]):
/// up to 64 BFS instances share one traversal, each owning a bit in a
/// per-node reachability mask. A node joins the frontier whenever it
/// gains new bits, so all instances amortize the same adjacency reads —
/// far cheaper than 64 separate traversals.
class MultiSourceBfsProgram : public core::FilterProgram {
 public:
  static constexpr uint32_t kMaxSources = 64;
  /// Same sentinel as BfsProgram::kUnreached so per-instance distances are
  /// bit-comparable with a solo BFS run.
  static constexpr uint32_t kUnreached = 0xffffffffu;

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void BeginIteration(uint32_t iteration) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  bool SaveState(std::vector<uint8_t>* out) const override;
  bool RestoreState(std::span<const uint8_t> bytes) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "multi-source-bfs"; }

  /// Resets state and seeds the sources (original ids; at most 64).
  void SetSources(std::span<const graph::NodeId> sources_original);

  /// Opt-in per-instance distance tracking (kMaxSources × |V| uint32 of
  /// host bookkeeping, so off by default). Recording also switches Filter
  /// into strict level-synchronous propagation — bits a node gains
  /// mid-iteration are pushed in the next iteration, not ridden through —
  /// so the iteration at which a node gains bit i *is* its BFS distance
  /// from source i. That makes every instance's result bit-identical to a
  /// solo BfsProgram run, which is what lets the serving layer coalesce
  /// BFS queries without changing their answers. Final reachability masks
  /// are unaffected either way. Call before Bind (the distance rows join
  /// the declared footprint at bind time).
  void EnableDistanceRecording() {
    if (record_distances_) return;
    record_distances_ = true;
    // Force the next Bind to rebuild the footprint with the dist row even
    // if this engine was already bound without recording. Only on the
    // false->true transition: repeat calls on an already-recording program
    // (the serving layer re-enables on every coalesced dispatch) must not
    // invalidate a live bind, since Engine::Bind skips re-binding a
    // program it already holds.
    engine_ = nullptr;
  }

  /// True if BFS instance `source_index` reached the node.
  bool Reached(uint32_t source_index, graph::NodeId original) const;

  /// Number of nodes reached by instance `source_index`.
  uint64_t ReachedCount(uint32_t source_index) const;

  /// Distance of a node from source `source_index` (original ids);
  /// kUnreached if not reached. Requires EnableDistanceRecording before
  /// the run.
  uint32_t DistanceOf(uint32_t source_index, graph::NodeId original) const;

  /// Number of sources seeded by the last SetSources.
  uint32_t num_sources() const { return num_sources_; }

 private:
  core::Engine* engine_ = nullptr;
  std::vector<uint64_t> mask_;
  /// Row-major [source_index][internal node] distances when recording.
  std::vector<uint32_t> dist_;
  /// Reused OnPermutation row buffer (no per-source allocation).
  std::vector<uint32_t> perm_row_scratch_;
  sim::Buffer mask_buf_;
  sim::Buffer dist_buf_;
  core::Footprint footprint_;
  uint32_t num_sources_ = 0;
  uint32_t iteration_ = 0;
  bool record_distances_ = false;
};

/// Runs all instances to convergence; returns combined stats.
util::StatusOr<core::RunStats> RunMultiSourceBfs(
    core::Engine& engine, MultiSourceBfsProgram& program,
    std::span<const graph::NodeId> sources_original);

}  // namespace sage::apps

#endif  // SAGE_APPS_MSBFS_H_
