#include "apps/sssp.h"

#include <algorithm>

#include "apps/registry.h"
#include "reorder/permutation.h"
#include "util/logging.h"
#include "util/random.h"

namespace sage::apps {

using graph::NodeId;

uint32_t SyntheticEdgeWeight(NodeId u_original, NodeId v_original) {
  uint64_t h = util::SplitMix64(
      (static_cast<uint64_t>(u_original) << 32) | v_original);
  return static_cast<uint32_t>(h % 16) + 1;
}

void SsspProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  dist_.assign(engine->csr().num_nodes(), kInfinity);
  dist_buf_ = engine->RegisterAttribute("sssp.dist", sizeof(uint64_t));
  // The weight array lives alongside csr.v (one 4-byte weight per edge);
  // its *values* are derived by SyntheticEdgeWeight so the CPU oracle
  // needs no extra plumbing, but its memory traffic is fully charged.
  weight_buf_ = engine->RegisterEdgeAttribute("sssp.weights",
                                              sizeof(uint32_t));
  footprint_ = core::Footprint();
  footprint_.neighbor_reads = {&dist_buf_};
  footprint_.neighbor_writes = {&dist_buf_};
  footprint_.frontier_reads = {&dist_buf_};
  footprint_.edge_reads = {&weight_buf_};
  footprint_.atomic_neighbor = true;  // atomicMin on 64-bit distance
}

void SsspProgram::SetSource(NodeId source_original) {
  SAGE_CHECK(engine_ != nullptr);
  std::fill(dist_.begin(), dist_.end(), kInfinity);
  dist_[engine_->InternalId(source_original)] = 0;
}

bool SsspProgram::Filter(NodeId frontier, NodeId neighbor) {
  uint64_t candidate =
      dist_[frontier] + SyntheticEdgeWeight(engine_->OriginalId(frontier),
                                            engine_->OriginalId(neighbor));
  if (candidate < dist_[neighbor]) {  // atomicMin
    dist_[neighbor] = candidate;
    return true;
  }
  return false;
}

void SsspProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  dist_ = reorder::PermuteVector(dist_, new_of_old);
}

uint64_t SsspProgram::DistanceOf(NodeId original) const {
  return dist_[engine_->InternalId(original)];
}

util::StatusOr<core::RunStats> RunSssp(core::Engine& engine,
                                       SsspProgram& program,
                                       NodeId source_original) {
  AppParams params;
  params.sources = {source_original};
  return RunApp(engine, program, params);
}

}  // namespace sage::apps
