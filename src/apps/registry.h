#ifndef SAGE_APPS_REGISTRY_H_
#define SAGE_APPS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "check/vet.h"
#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"
#include "util/status.h"

namespace sage::apps {

class MultiSourceBfsProgram;

/// Parameters of one application run — the union of every registered
/// app's knobs. Apps read only the fields they understand and reject
/// nonsensical values of the ones they do (see RunApp).
struct AppParams {
  /// Source nodes (original ids). bfs / sssp take exactly one; msbfs
  /// takes 1..MultiSourceBfsProgram::kMaxSources; pagerank / kcore none.
  std::vector<graph::NodeId> sources;
  /// Global-traversal iterations (pagerank).
  uint32_t iterations = 10;
  /// Core threshold (kcore). The bound graph must be symmetrized.
  uint32_t k = 2;
};

/// Canonical names of every registered app:
/// {"bfs", "pagerank", "kcore", "sssp", "msbfs"}.
std::vector<std::string> RegisteredApps();

/// True if `name` resolves to a registered app (canonical name or a
/// program's self-reported name, e.g. "multi-source-bfs" for msbfs).
bool AppKnown(const std::string& name);

/// Factory: a fresh, unbound program for the app. kNotFound for unknown
/// names. The returned program is driven through RunApp; callers that
/// need app-specific accessors (BfsProgram::DistanceOf, ...) may
/// static_cast to the concrete type matching the canonical name.
util::StatusOr<std::unique_ptr<core::FilterProgram>> CreateProgram(
    const std::string& name);

/// The one uniform run entry point: binds `program` to `engine` (warm
/// rebinds are free), resets the program's per-run state from `params`,
/// and drives the traversal the way that app needs (frontier-driven,
/// global, or peeling). Dispatches on program.name(); kNotFound if the
/// program is not a registered app, kInvalidArgument for bad params.
/// sage_cli, the serving layer, and the benches all route through here.
util::StatusOr<core::RunStats> RunApp(core::Engine& engine,
                                      core::FilterProgram& program,
                                      const AppParams& params);

/// Resumes an interrupted RunApp from a checkpoint (SageGuard): binds the
/// program (without resetting its per-run state — Engine::Resume restores
/// it from the checkpoint), continues the run to the app's iteration cap,
/// and applies any post-run step the app needs (pagerank's Finalize).
/// `params` must be the interrupted run's parameters. Propagates
/// Engine::Resume's errors — kCorruption means the checkpoint is damaged
/// and the caller should rerun from scratch via RunApp.
util::StatusOr<core::RunStats> ResumeApp(core::Engine& engine,
                                         core::FilterProgram& program,
                                         const core::Checkpoint& checkpoint,
                                         const AppParams& params);

/// FNV-1a digest of the program's user-visible output (distances, ranks,
/// core membership, ...) enumerated in original-id order — the canonical
/// "are two runs' answers bit-identical" check used by the serving layer
/// and its tests. Dispatches on program.name(); 0 for unknown programs.
uint64_t OutputDigest(const core::Engine& engine,
                      const core::FilterProgram& program);

/// Pre-flight SageVet of a registered app (DESIGN.md "Static
/// verification"): creates a throwaway program instance (msbfs gets
/// distance recording enabled — the serving layer's coalescing
/// configuration is the one worth vetting), supplies the registry's run
/// driver and output digest as probe hooks, and vets it at `level` on the
/// canonical probe graph. `options` seeds the probe engine's options and
/// participates in the option/footprint cross-checks. kNotFound for
/// unknown names; otherwise the report (which may be unsound — inspect
/// VetReport::ToStatus for an admission decision).
util::StatusOr<check::VetReport> VetApp(const std::string& name,
                                        check::VetLevel level,
                                        const core::EngineOptions& options);

/// Digest of one MS-BFS instance's per-node distances. Bit-identical to
/// OutputDigest of a solo BfsProgram run from the same source — the
/// contract that lets the serving layer coalesce N BFS queries into one
/// MS-BFS run. Requires EnableDistanceRecording before the run.
uint64_t MsBfsInstanceDigest(const core::Engine& engine,
                             const MultiSourceBfsProgram& program,
                             uint32_t instance);

}  // namespace sage::apps

#endif  // SAGE_APPS_REGISTRY_H_
