#include "apps/reference.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "apps/sssp.h"
#include "util/logging.h"

namespace sage::apps {

using graph::Csr;
using graph::NodeId;

std::vector<uint32_t> BfsReference(const Csr& csr, NodeId source) {
  constexpr uint32_t kUnreached = 0xffffffffu;
  std::vector<uint32_t> dist(csr.num_nodes(), kUnreached);
  SAGE_CHECK_LT(source, csr.num_nodes());
  dist[source] = 0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : csr.Neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<double> BrandesReference(const Csr& csr, NodeId source) {
  constexpr uint32_t kUnreached = 0xffffffffu;
  const NodeId n = csr.num_nodes();
  std::vector<uint32_t> dist(n, kUnreached);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<NodeId> order;  // BFS visitation order
  dist[source] = 0;
  sigma[source] = 1.0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (NodeId v : csr.Neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId u = *it;
    for (NodeId v : csr.Neighbors(u)) {
      if (dist[v] == dist[u] + 1 && sigma[v] > 0.0) {
        delta[u] += sigma[u] / sigma[v] * (delta[v] + 1.0);
      }
    }
  }
  return delta;
}

std::vector<double> PageRankReference(const Csr& csr, uint32_t iterations) {
  constexpr double kDamping = 0.85;
  const NodeId n = csr.num_nodes();
  std::vector<double> pr(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> out(n, 0.0);
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(out.begin(), out.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      uint32_t deg = csr.OutDegree(u);
      if (deg == 0) continue;
      double inc = pr[u] * kDamping / deg;
      for (NodeId v : csr.Neighbors(u)) out[v] += inc;
    }
    const double base = (1.0 - kDamping) / n;
    for (NodeId v = 0; v < n; ++v) pr[v] = base + out[v];
  }
  return pr;
}

namespace {
NodeId Find(std::vector<NodeId>& parent, NodeId x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}
}  // namespace

std::vector<NodeId> ConnectedComponentsReference(const Csr& csr) {
  const NodeId n = csr.num_nodes();
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) parent[v] = v;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : csr.Neighbors(u)) {
      NodeId ru = Find(parent, u);
      NodeId rv = Find(parent, v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  std::vector<NodeId> label(n);
  for (NodeId v = 0; v < n; ++v) label[v] = Find(parent, v);
  return label;
}

std::vector<uint64_t> SsspReference(const Csr& csr, NodeId source) {
  constexpr uint64_t kInf = 0xffffffffffffffffull;
  std::vector<uint64_t> dist(csr.num_nodes(), kInf);
  dist[source] = 0;
  using Entry = std::pair<uint64_t, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0, source);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    for (NodeId v : csr.Neighbors(u)) {
      uint64_t nd = d + SyntheticEdgeWeight(u, v);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.emplace(nd, v);
      }
    }
  }
  return dist;
}

}  // namespace sage::apps
