#include "apps/label_prop.h"

#include <algorithm>

#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void LabelPropProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  label_.resize(engine->csr().num_nodes());
  label_buf_ = engine->RegisterAttribute("lp.label", sizeof(NodeId));
  footprint_ = core::Footprint();
  footprint_.frontier_reads = {&label_buf_};
  footprint_.neighbor_writes = {&label_buf_};
  footprint_.atomic_neighbor = true;
  Reset();
}

void LabelPropProgram::Reset() {
  SAGE_CHECK(engine_ != nullptr);
  for (NodeId v = 0; v < label_.size(); ++v) {
    label_[v] = engine_->OriginalId(v);
  }
  votes_.clear();
  pending_votes_ = false;
}

bool LabelPropProgram::Filter(NodeId frontier, NodeId neighbor) {
  votes_.emplace_back(neighbor, label_[frontier]);
  return false;  // globally driven
}

void LabelPropProgram::BeginIteration(uint32_t iteration) {
  (void)iteration;
  if (pending_votes_) ApplyVotes();
  pending_votes_ = true;
}

void LabelPropProgram::ApplyVotes() {
  // Majority per voted-on node; ties break toward the smaller label.
  std::sort(votes_.begin(), votes_.end());
  size_t i = 0;
  while (i < votes_.size()) {
    NodeId node = votes_[i].first;
    NodeId best_label = votes_[i].second;
    size_t best_count = 0;
    while (i < votes_.size() && votes_[i].first == node) {
      NodeId lbl = votes_[i].second;
      size_t count = 0;
      while (i < votes_.size() && votes_[i].first == node &&
             votes_[i].second == lbl) {
        ++count;
        ++i;
      }
      if (count > best_count) {
        best_count = count;
        best_label = lbl;
      }
    }
    label_[node] = best_label;
  }
  votes_.clear();
}

void LabelPropProgram::Finalize() {
  if (pending_votes_) {
    ApplyVotes();
    pending_votes_ = false;
  }
}

void LabelPropProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  label_ = reorder::PermuteVector(label_, new_of_old);
  for (auto& [node, lbl] : votes_) {
    node = new_of_old[node];  // labels are original ids; only keys remap
  }
}

NodeId LabelPropProgram::LabelOf(NodeId original) const {
  return label_[engine_->InternalId(original)];
}

util::StatusOr<core::RunStats> RunLabelPropagation(core::Engine& engine,
                                                   LabelPropProgram& program,
                                                   uint32_t iterations) {
  SAGE_RETURN_IF_ERROR(engine.Bind(&program));
  program.Reset();
  auto stats = engine.RunGlobal(iterations);
  if (stats.ok()) program.Finalize();
  return stats;
}

}  // namespace sage::apps
