#include "apps/registry.h"

#include <cstring>

#include "apps/bfs.h"
#include "apps/kcore.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "sim/fault_injector.h"

namespace sage::apps {

using graph::NodeId;

namespace {

/// FNV-1a over raw bytes; the same digest the determinism harness uses,
/// re-implemented here so sage_apps does not depend on the check harness
/// (which sits above it in the layering).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

template <typename T>
uint64_t HashValue(const T& v, uint64_t h) {
  return HashBytes(&v, sizeof(v), h);
}

/// One registered app: how to create it, run it, and digest its output.
struct AppDescriptor {
  const char* canonical;     // the factory name ("msbfs", ...)
  const char* program_name;  // what the program's name() reports
  std::unique_ptr<core::FilterProgram> (*make)();
  util::StatusOr<core::RunStats> (*run)(core::Engine&, core::FilterProgram&,
                                        const AppParams&);
  uint64_t (*digest)(const core::Engine&, const core::FilterProgram&);
};

/// Poisoned-source fault injection (SageGuard): a run whose sources include
/// a poisoned node fails *permanently* — kInternal, not the retryable
/// kUnavailable class — modeling an input that deterministically crashes
/// the kernel. The serving layer's batch bisection isolates such requests
/// so they cannot take down the queries they were coalesced with.
util::Status CheckPoisonedSources(core::Engine& engine,
                                  const AppParams& params) {
  sim::FaultInjector* injector = engine.device()->fault_injector();
  if (injector == nullptr) return util::Status::OK();
  for (NodeId s : params.sources) {
    if (injector->PoisonedSource(s)) {
      return util::Status::Internal(
          "poisoned source node " + std::to_string(s) +
          ": traversal from it faults the device");
    }
  }
  return util::Status::OK();
}

util::Status RequireSources(const AppParams& params, size_t min, size_t max,
                            const core::Engine& engine, const char* app) {
  if (params.sources.size() < min || params.sources.size() > max) {
    return util::Status::InvalidArgument(
        std::string(app) + ": expected between " + std::to_string(min) +
        " and " + std::to_string(max) + " sources, got " +
        std::to_string(params.sources.size()));
  }
  for (NodeId s : params.sources) {
    if (s >= engine.csr().num_nodes()) {
      return util::Status::InvalidArgument(
          std::string(app) + ": source node " + std::to_string(s) +
          " out of range");
    }
  }
  return util::Status::OK();
}

// ---- bfs -------------------------------------------------------------------

util::StatusOr<core::RunStats> RunBfsApp(core::Engine& engine,
                                         core::FilterProgram& program,
                                         const AppParams& params) {
  SAGE_RETURN_IF_ERROR(RequireSources(params, 1, 1, engine, "bfs"));
  auto& bfs = static_cast<BfsProgram&>(program);
  SAGE_RETURN_IF_ERROR(engine.Bind(&bfs));
  bfs.SetSource(params.sources[0]);
  return engine.Run(std::span<const NodeId>(params.sources));
}

uint64_t BfsDigest(const core::Engine& engine,
                   const core::FilterProgram& program) {
  const auto& bfs = static_cast<const BfsProgram&>(program);
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < engine.csr().num_nodes(); ++v) {
    h = HashValue(bfs.DistanceOf(v), h);
  }
  return h;
}

// ---- pagerank --------------------------------------------------------------

util::StatusOr<core::RunStats> RunPageRankApp(core::Engine& engine,
                                              core::FilterProgram& program,
                                              const AppParams& params) {
  auto& pr = static_cast<PageRankProgram&>(program);
  SAGE_RETURN_IF_ERROR(engine.Bind(&pr));
  pr.Reset();
  auto stats = engine.RunGlobal(params.iterations);
  if (stats.ok()) pr.Finalize();
  return stats;
}

uint64_t PageRankDigest(const core::Engine& engine,
                        const core::FilterProgram& program) {
  const auto& pr = static_cast<const PageRankProgram&>(program);
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < engine.csr().num_nodes(); ++v) {
    h = HashValue(pr.RankOf(v), h);
  }
  return h;
}

// ---- kcore -----------------------------------------------------------------

util::StatusOr<core::RunStats> RunKCoreApp(core::Engine& engine,
                                           core::FilterProgram& program,
                                           const AppParams& params) {
  auto& kcore = static_cast<KCoreProgram&>(program);
  SAGE_RETURN_IF_ERROR(engine.Bind(&kcore));
  std::vector<NodeId> initial = kcore.Reset(params.k);
  if (initial.empty()) return core::RunStats{};
  return engine.Run(initial);
}

uint64_t KCoreDigest(const core::Engine& engine,
                     const core::FilterProgram& program) {
  const auto& kcore = static_cast<const KCoreProgram&>(program);
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < engine.csr().num_nodes(); ++v) {
    h = HashValue(static_cast<uint8_t>(kcore.InCore(v) ? 1 : 0), h);
  }
  return h;
}

// ---- sssp ------------------------------------------------------------------

util::StatusOr<core::RunStats> RunSsspApp(core::Engine& engine,
                                          core::FilterProgram& program,
                                          const AppParams& params) {
  SAGE_RETURN_IF_ERROR(RequireSources(params, 1, 1, engine, "sssp"));
  auto& sssp = static_cast<SsspProgram&>(program);
  SAGE_RETURN_IF_ERROR(engine.Bind(&sssp));
  sssp.SetSource(params.sources[0]);
  return engine.Run(std::span<const NodeId>(params.sources));
}

uint64_t SsspDigest(const core::Engine& engine,
                    const core::FilterProgram& program) {
  const auto& sssp = static_cast<const SsspProgram&>(program);
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < engine.csr().num_nodes(); ++v) {
    h = HashValue(sssp.DistanceOf(v), h);
  }
  return h;
}

// ---- msbfs -----------------------------------------------------------------

util::StatusOr<core::RunStats> RunMsBfsApp(core::Engine& engine,
                                           core::FilterProgram& program,
                                           const AppParams& params) {
  SAGE_RETURN_IF_ERROR(RequireSources(
      params, 1, MultiSourceBfsProgram::kMaxSources, engine, "msbfs"));
  auto& msbfs = static_cast<MultiSourceBfsProgram&>(program);
  SAGE_RETURN_IF_ERROR(engine.Bind(&msbfs));
  msbfs.SetSources(params.sources);
  return engine.Run(std::span<const NodeId>(params.sources));
}

uint64_t MsBfsDigest(const core::Engine& engine,
                     const core::FilterProgram& program) {
  const auto& msbfs = static_cast<const MultiSourceBfsProgram&>(program);
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < engine.csr().num_nodes(); ++v) {
    uint64_t mask = 0;
    for (uint32_t i = 0; i < msbfs.num_sources(); ++i) {
      if (msbfs.Reached(i, v)) mask |= 1ull << i;
    }
    h = HashValue(mask, h);
  }
  return h;
}

// ---- registry --------------------------------------------------------------

template <typename T>
std::unique_ptr<core::FilterProgram> Make() {
  return std::make_unique<T>();
}

constexpr AppDescriptor kApps[] = {
    {"bfs", "bfs", &Make<BfsProgram>, &RunBfsApp, &BfsDigest},
    {"pagerank", "pagerank", &Make<PageRankProgram>, &RunPageRankApp,
     &PageRankDigest},
    {"kcore", "kcore", &Make<KCoreProgram>, &RunKCoreApp, &KCoreDigest},
    {"sssp", "sssp", &Make<SsspProgram>, &RunSsspApp, &SsspDigest},
    {"msbfs", "multi-source-bfs", &Make<MultiSourceBfsProgram>, &RunMsBfsApp,
     &MsBfsDigest},
};

const AppDescriptor* Find(const std::string& name) {
  for (const AppDescriptor& app : kApps) {
    if (name == app.canonical || name == app.program_name) return &app;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> RegisteredApps() {
  std::vector<std::string> names;
  for (const AppDescriptor& app : kApps) names.emplace_back(app.canonical);
  return names;
}

bool AppKnown(const std::string& name) { return Find(name) != nullptr; }

util::StatusOr<std::unique_ptr<core::FilterProgram>> CreateProgram(
    const std::string& name) {
  const AppDescriptor* app = Find(name);
  if (app == nullptr) {
    return util::Status::NotFound("unknown app: " + name);
  }
  return app->make();
}

util::StatusOr<core::RunStats> RunApp(core::Engine& engine,
                                      core::FilterProgram& program,
                                      const AppParams& params) {
  const AppDescriptor* app = Find(program.name());
  if (app == nullptr) {
    return util::Status::NotFound(
        std::string("RunApp: program '") + program.name() +
        "' is not a registered app");
  }
  SAGE_RETURN_IF_ERROR(CheckPoisonedSources(engine, params));
  return app->run(engine, program, params);
}

util::StatusOr<core::RunStats> ResumeApp(core::Engine& engine,
                                         core::FilterProgram& program,
                                         const core::Checkpoint& checkpoint,
                                         const AppParams& params) {
  const AppDescriptor* app = Find(program.name());
  if (app == nullptr) {
    return util::Status::NotFound(
        std::string("ResumeApp: program '") + program.name() +
        "' is not a registered app");
  }
  SAGE_RETURN_IF_ERROR(CheckPoisonedSources(engine, params));
  SAGE_RETURN_IF_ERROR(engine.Bind(&program));
  const bool is_pagerank = std::strcmp(program.name(), "pagerank") == 0;
  uint32_t max_iterations = is_pagerank ? params.iterations : 0xffffffffu;
  auto stats = engine.Resume(checkpoint, max_iterations);
  if (stats.ok() && is_pagerank) {
    static_cast<PageRankProgram&>(program).Finalize();
  }
  return stats;
}

uint64_t OutputDigest(const core::Engine& engine,
                      const core::FilterProgram& program) {
  const AppDescriptor* app = Find(program.name());
  if (app == nullptr) return 0;
  return app->digest(engine, program);
}

util::StatusOr<check::VetReport> VetApp(const std::string& name,
                                        check::VetLevel level,
                                        const core::EngineOptions& options) {
  SAGE_ASSIGN_OR_RETURN(std::unique_ptr<core::FilterProgram> program,
                        CreateProgram(name));
  if (std::strcmp(program->name(), "multi-source-bfs") == 0) {
    // Vet the configuration the serving layer actually runs: coalesced BFS
    // needs per-instance distances, which widens the footprint (msbfs.dist).
    static_cast<MultiSourceBfsProgram&>(*program).EnableDistanceRecording();
  }
  check::ProbeHooks hooks;
  hooks.run = [](core::Engine& eng,
                 core::FilterProgram& prog) -> util::StatusOr<core::RunStats> {
    AppParams params;
    params.iterations = 3;
    params.k = 2;
    if (std::strcmp(prog.name(), "multi-source-bfs") == 0) {
      // Two sources, one per probe-graph component, so every msbfs lane
      // (and the unreached-state path) gets exercised.
      params.sources = {0, 19};
    } else if (std::strcmp(prog.name(), "bfs") == 0 ||
               std::strcmp(prog.name(), "sssp") == 0) {
      params.sources = {0};
    }
    return RunApp(eng, prog, params);
  };
  hooks.digest = [](const core::Engine& eng,
                    const core::FilterProgram& prog) -> uint64_t {
    return OutputDigest(eng, prog);
  };
  return check::VetProgram(*program, level, options, hooks);
}

uint64_t MsBfsInstanceDigest(const core::Engine& engine,
                             const MultiSourceBfsProgram& program,
                             uint32_t instance) {
  uint64_t h = kFnvOffset;
  for (NodeId v = 0; v < engine.csr().num_nodes(); ++v) {
    h = HashValue(program.DistanceOf(instance, v), h);
  }
  return h;
}

}  // namespace sage::apps
