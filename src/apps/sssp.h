#ifndef SAGE_APPS_SSSP_H_
#define SAGE_APPS_SSSP_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Edge weight derived on the fly from the (original) endpoint ids — the
/// CSR carries no weight array, and hashing keeps weights stable under
/// reordering. Range: [1, 16].
uint32_t SyntheticEdgeWeight(graph::NodeId u_original,
                             graph::NodeId v_original);

/// Single-Source Shortest Path by Bellman-Ford-style relaxation — the
/// "iteratively update neighbors' distances" primitive of Section 4. A
/// neighbor re-enters the frontier whenever its distance improves.
class SsspProgram : public core::FilterProgram {
 public:
  static constexpr uint64_t kInfinity = 0xffffffffffffffffull;

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "sssp"; }

  void SetSource(graph::NodeId source_original);

  /// Shortest distance by original id; kInfinity if unreachable.
  uint64_t DistanceOf(graph::NodeId original) const;

 private:
  core::Engine* engine_ = nullptr;
  std::vector<uint64_t> dist_;
  sim::Buffer dist_buf_;
  sim::Buffer weight_buf_;
  core::Footprint footprint_;
};

/// Runs SSSP to convergence; returns run stats.
util::StatusOr<core::RunStats> RunSssp(core::Engine& engine,
                                       SsspProgram& program,
                                       graph::NodeId source_original);

}  // namespace sage::apps

#endif  // SAGE_APPS_SSSP_H_
