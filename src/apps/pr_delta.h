#ifndef SAGE_APPS_PR_DELTA_H_
#define SAGE_APPS_PR_DELTA_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Delta (residual-push) PageRank: instead of the global traversal of
/// PageRankProgram, ranks converge through SAGE's *local* traversal — a
/// node re-enters the frontier only while it still holds enough residual
/// to push. Formulation (Gauss-Southwell / PageRankDelta family):
///
///   pr[v] = 0, resid[v] = (1-d)/|V|, frontier = V
///   processing v:  pr[v] += resid[v];
///                  push d·resid[v]/outdeg(v) onto each neighbor's resid
///   v re-activates once resid[v] > epsilon
///
/// Converges to the same fixpoint as the power iteration (with the same
/// dangling-mass convention). Its value is *adaptivity*: the frontier
/// shrinks as residuals drain, concentrating the remaining work on the
/// nodes that still hold mass instead of re-sweeping the whole graph.
class DeltaPageRankProgram : public core::FilterProgram {
 public:
  static constexpr double kDamping = 0.85;

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void BeginIteration(uint32_t iteration) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "pagerank-delta"; }

  /// Resets state; `epsilon` is the residual activation threshold.
  void Reset(double epsilon);

  /// Flushes remaining residuals into the ranks; call after Run.
  void Finalize();

  double RankOf(graph::NodeId original) const;

 private:
  /// Lazily snapshots a frontier node on its first edge of the iteration:
  /// absorb its residual into the rank and fix the pushed delta.
  void Touch(graph::NodeId frontier);

  core::Engine* engine_ = nullptr;
  double epsilon_ = 1e-9;
  uint32_t iteration_ = 0;
  std::vector<double> pr_;
  std::vector<double> resid_;
  std::vector<double> delta_;
  std::vector<uint32_t> touched_;   ///< iteration tag: processed
  std::vector<uint32_t> queued_;    ///< iteration tag: admitted to next
  std::vector<uint32_t> outdeg_;
  sim::Buffer pr_buf_;
  sim::Buffer resid_buf_;
  sim::Buffer outdeg_buf_;
  sim::Buffer delta_buf_;
  sim::Buffer touched_buf_;
  sim::Buffer queued_buf_;
  core::Footprint footprint_;
};

/// Runs delta PageRank to convergence (residuals below epsilon).
util::StatusOr<core::RunStats> RunDeltaPageRank(core::Engine& engine,
                                                DeltaPageRankProgram& program,
                                                double epsilon = 1e-9);

}  // namespace sage::apps

#endif  // SAGE_APPS_PR_DELTA_H_
