#include "apps/msbfs.h"

#include <algorithm>

#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void MultiSourceBfsProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  mask_.assign(engine->csr().num_nodes(), 0);
  mask_buf_ = engine->RegisterAttribute("msbfs.mask", sizeof(uint64_t));
  footprint_ = core::Footprint();
  footprint_.neighbor_reads = {&mask_buf_};
  footprint_.neighbor_writes = {&mask_buf_};
  footprint_.frontier_reads = {&mask_buf_};
  footprint_.atomic_neighbor = true;  // atomicOr on the mask
}

void MultiSourceBfsProgram::SetSources(
    std::span<const NodeId> sources_original) {
  SAGE_CHECK(engine_ != nullptr);
  SAGE_CHECK_LE(sources_original.size(), kMaxSources);
  std::fill(mask_.begin(), mask_.end(), 0);
  for (size_t i = 0; i < sources_original.size(); ++i) {
    mask_[engine_->InternalId(sources_original[i])] |= 1ull << i;
  }
}

bool MultiSourceBfsProgram::Filter(NodeId frontier, NodeId neighbor) {
  uint64_t missing = mask_[frontier] & ~mask_[neighbor];
  if (missing == 0) return false;
  mask_[neighbor] |= missing;  // atomicOr
  return true;
}

void MultiSourceBfsProgram::OnPermutation(
    std::span<const NodeId> new_of_old) {
  mask_ = reorder::PermuteVector(mask_, new_of_old);
}

bool MultiSourceBfsProgram::Reached(uint32_t source_index,
                                    NodeId original) const {
  return (mask_[engine_->InternalId(original)] >> source_index) & 1;
}

uint64_t MultiSourceBfsProgram::ReachedCount(uint32_t source_index) const {
  uint64_t count = 0;
  for (uint64_t m : mask_) count += (m >> source_index) & 1;
  return count;
}

util::StatusOr<core::RunStats> RunMultiSourceBfs(
    core::Engine& engine, MultiSourceBfsProgram& program,
    std::span<const NodeId> sources_original) {
  SAGE_RETURN_IF_ERROR(engine.Bind(&program));
  program.SetSources(sources_original);
  return engine.Run(sources_original);
}

}  // namespace sage::apps
