#include "apps/msbfs.h"

#include <algorithm>
#include <bit>

#include "apps/registry.h"
#include "apps/snapshot.h"
#include "reorder/permutation.h"
#include "util/bitmap.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void MultiSourceBfsProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  mask_.assign(engine->csr().num_nodes(), 0);
  mask_buf_ = engine->RegisterAttribute("msbfs.mask", sizeof(uint64_t));
  footprint_ = core::Footprint();
  footprint_.neighbor_reads = {&mask_buf_};
  footprint_.neighbor_writes = {&mask_buf_};
  footprint_.frontier_reads = {&mask_buf_};
  footprint_.atomic_neighbor = true;  // atomicOr on the mask
  if (record_distances_) {
    // Strict level-synchronous mode additionally consults the recorded
    // distance rows: Filter reads dist[i][frontier] to decide which bits
    // were held at the iteration start and writes dist[i][neighbor] for
    // every newly gained bit. Model it as one node-indexed row (the rows
    // are touched together at the same node index), charged per edge like
    // the mask. A SageVet probe flagged the original declaration, which
    // omitted these accesses whenever recording was on — exactly the
    // serving layer's coalescing configuration.
    dist_buf_ = engine->RegisterAttribute("msbfs.dist", sizeof(uint32_t));
    footprint_.frontier_reads.push_back(&dist_buf_);
    footprint_.neighbor_writes.push_back(&dist_buf_);
  }
}

void MultiSourceBfsProgram::SetSources(
    std::span<const NodeId> sources_original) {
  SAGE_CHECK(engine_ != nullptr);
  SAGE_CHECK_LE(sources_original.size(), kMaxSources);
  std::fill(mask_.begin(), mask_.end(), 0);
  num_sources_ = static_cast<uint32_t>(sources_original.size());
  iteration_ = 0;
  if (record_distances_) {
    dist_.assign(static_cast<size_t>(num_sources_) * mask_.size(),
                 kUnreached);
  }
  for (size_t i = 0; i < sources_original.size(); ++i) {
    NodeId internal = engine_->InternalId(sources_original[i]);
    mask_[internal] |= 1ull << i;
    if (record_distances_) dist_[i * mask_.size() + internal] = 0;
  }
}

bool MultiSourceBfsProgram::Filter(NodeId frontier, NodeId neighbor) {
  uint64_t missing = mask_[frontier] & ~mask_[neighbor];
  if (record_distances_ && missing != 0) {
    // Strict level-synchronous mode: only push bits the frontier node held
    // at the START of this iteration (recorded distance <= t). Without the
    // restriction a bit gained earlier in the same kernel can ride through
    // this node and jump two hops in one level, which is fine for
    // reachability but breaks the distance invariant. A suppressed bit is
    // not lost: gaining it put this node into the next frontier, so it is
    // pushed at t + 1.
    const size_t n = mask_.size();
    uint64_t held = 0;
    util::ForEachSetBit(missing, [&](uint32_t i) {
      if (dist_[static_cast<size_t>(i) * n + frontier] <= iteration_) {
        held |= 1ull << i;
      }
    });
    missing = held;
  }
  if (missing == 0) return false;
  mask_[neighbor] |= missing;  // atomicOr
  if (record_distances_) {
    // Every pushed bit was held by the frontier node at distance exactly t
    // (an earlier gain would already have been pushed to every neighbor),
    // so the neighbor's distance for each newly gained instance is t + 1 —
    // identical to what a solo BfsProgram run from that source computes.
    util::ForEachSetBit(missing, [&](uint32_t i) {
      dist_[static_cast<size_t>(i) * mask_.size() + neighbor] =
          iteration_ + 1;
    });
  }
  return true;
}

void MultiSourceBfsProgram::BeginIteration(uint32_t iteration) {
  iteration_ = iteration;
}

void MultiSourceBfsProgram::OnPermutation(
    std::span<const NodeId> new_of_old) {
  mask_ = reorder::PermuteVector(mask_, new_of_old);
  if (record_distances_ && num_sources_ > 0) {
    const size_t n = mask_.size();
    perm_row_scratch_.resize(n);
    for (uint32_t i = 0; i < num_sources_; ++i) {
      // out[new_of_old[u]] = in[u], staged through the reused row buffer.
      for (size_t u = 0; u < n; ++u) {
        perm_row_scratch_[new_of_old[u]] = dist_[i * n + u];
      }
      std::copy(perm_row_scratch_.begin(), perm_row_scratch_.end(),
                dist_.begin() + i * n);
    }
  }
}

bool MultiSourceBfsProgram::SaveState(std::vector<uint8_t>* out) const {
  snapshot::AppendU32(out, num_sources_);
  snapshot::AppendU32(out, iteration_);
  snapshot::AppendU32(out, record_distances_ ? 1 : 0);
  snapshot::AppendVector(out, mask_);
  snapshot::AppendVector(out, dist_);
  return true;
}

bool MultiSourceBfsProgram::RestoreState(std::span<const uint8_t> bytes) {
  snapshot::Reader r(bytes);
  uint32_t sources = 0;
  uint32_t iter = 0;
  uint32_t record = 0;
  if (!r.ReadU32(&sources) || !r.ReadU32(&iter) || !r.ReadU32(&record) ||
      sources > kMaxSources) {
    return false;
  }
  uint64_t dist_elems =
      record != 0 ? static_cast<uint64_t>(sources) * mask_.size() : 0;
  if (!r.ReadVector(&mask_, mask_.size()) ||
      !r.ReadVector(&dist_, dist_elems) || !r.Complete()) {
    return false;
  }
  num_sources_ = sources;
  iteration_ = iter;
  record_distances_ = record != 0;
  return true;
}

uint32_t MultiSourceBfsProgram::DistanceOf(uint32_t source_index,
                                           NodeId original) const {
  SAGE_CHECK(record_distances_) << "EnableDistanceRecording before the run";
  SAGE_CHECK(source_index < num_sources_);
  return dist_[static_cast<size_t>(source_index) * mask_.size() +
               engine_->InternalId(original)];
}

bool MultiSourceBfsProgram::Reached(uint32_t source_index,
                                    NodeId original) const {
  return (mask_[engine_->InternalId(original)] >> source_index) & 1;
}

uint64_t MultiSourceBfsProgram::ReachedCount(uint32_t source_index) const {
  uint64_t count = 0;
  for (uint64_t m : mask_) count += (m >> source_index) & 1;
  return count;
}

util::StatusOr<core::RunStats> RunMultiSourceBfs(
    core::Engine& engine, MultiSourceBfsProgram& program,
    std::span<const NodeId> sources_original) {
  AppParams params;
  params.sources.assign(sources_original.begin(), sources_original.end());
  return RunApp(engine, program, params);
}

}  // namespace sage::apps
