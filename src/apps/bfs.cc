#include "apps/bfs.h"

#include <algorithm>

#include "apps/registry.h"
#include "apps/snapshot.h"
#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void BfsProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;  // idempotent rebind on the same engine
  engine_ = engine;
  dist_.assign(engine->csr().num_nodes(), kUnreached);
  dist_buf_ = engine->RegisterAttribute("bfs.dist", sizeof(uint32_t));
  footprint_ = core::Footprint();
  footprint_.neighbor_reads = {&dist_buf_};
  footprint_.neighbor_writes = {&dist_buf_};
  footprint_.frontier_reads = {&dist_buf_};
  // Dirty level writes need no atomics: every SM that races on dist[nbr]
  // in one iteration stores the same level (Section 7.2).
  footprint_.idempotent_neighbor_writes = true;
}

void BfsProgram::SetSource(NodeId source_original) {
  SAGE_CHECK(engine_ != nullptr) << "Bind before SetSource";
  std::fill(dist_.begin(), dist_.end(), kUnreached);
  dist_[engine_->InternalId(source_original)] = 0;
}

bool BfsProgram::Filter(NodeId frontier, NodeId neighbor) {
  if (dist_[neighbor] == kUnreached) {
    dist_[neighbor] = dist_[frontier] + 1;
    return true;
  }
  return false;
}

void BfsProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  dist_ = reorder::PermuteVector(dist_, new_of_old);
}

bool BfsProgram::SaveState(std::vector<uint8_t>* out) const {
  snapshot::AppendVector(out, dist_);
  return true;
}

bool BfsProgram::RestoreState(std::span<const uint8_t> bytes) {
  snapshot::Reader r(bytes);
  return r.ReadVector(&dist_, dist_.size()) && r.Complete();
}

uint32_t BfsProgram::DistanceOf(NodeId original) const {
  return dist_[engine_->InternalId(original)];
}

void BfsProgram::SetDistance(NodeId original, uint32_t dist) {
  dist_[engine_->InternalId(original)] = dist;
}

util::StatusOr<core::RunStats> RunBfs(core::Engine& engine,
                                      BfsProgram& program,
                                      NodeId source_original) {
  AppParams params;
  params.sources = {source_original};
  return RunApp(engine, program, params);
}

}  // namespace sage::apps
