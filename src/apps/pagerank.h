#ifndef SAGE_APPS_PAGERANK_H_
#define SAGE_APPS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Push-style PageRank (Algorithm 1, lines 26-29): every iteration each
/// node pushes pr_in[frontier] * d / outdeg(frontier) to all its neighbors
/// with atomic adds; the engine drives it as a global traversal (the
/// frontier is all of V every iteration; Section 7.2).
class PageRankProgram : public core::FilterProgram {
 public:
  static constexpr double kDamping = 0.85;

  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void BeginIteration(uint32_t iteration) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  bool SaveState(std::vector<uint8_t>* out) const override;
  bool RestoreState(std::span<const uint8_t> bytes) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "pagerank"; }

  /// Resets ranks to the uniform distribution. Call before every run.
  void Reset();

  /// Folds the final push results into ranks; call once after RunGlobal.
  void Finalize();

  /// Rank of a node by original id (after Finalize).
  double RankOf(graph::NodeId original) const;

  const std::vector<double>& ranks_internal() const { return pr_in_; }

 private:
  void FoldIteration();

  core::Engine* engine_ = nullptr;
  std::vector<double> pr_in_;
  std::vector<double> pr_out_;
  std::vector<uint32_t> outdeg_;
  sim::Buffer pr_in_buf_;
  sim::Buffer pr_out_buf_;
  sim::Buffer outdeg_buf_;
  core::Footprint footprint_;
  bool pending_fold_ = false;
};

/// Convenience: `iterations` PageRank iterations; returns run stats.
util::StatusOr<core::RunStats> RunPageRank(core::Engine& engine,
                                           PageRankProgram& program,
                                           uint32_t iterations);

}  // namespace sage::apps

#endif  // SAGE_APPS_PAGERANK_H_
