#include "apps/pagerank.h"

#include <algorithm>

#include "apps/registry.h"
#include "apps/snapshot.h"
#include "reorder/permutation.h"
#include "util/logging.h"

namespace sage::apps {

using graph::NodeId;

void PageRankProgram::Bind(core::Engine* engine) {
  if (engine_ == engine) return;
  engine_ = engine;
  const auto& csr = engine->csr();
  const NodeId n = csr.num_nodes();
  pr_in_.assign(n, 0.0);
  pr_out_.assign(n, 0.0);
  outdeg_.resize(n);
  for (NodeId u = 0; u < n; ++u) outdeg_[u] = csr.OutDegree(u);
  // 8-byte rank cells; the outdegree table is 4-byte.
  pr_in_buf_ = engine->RegisterAttribute("pr.in", sizeof(double));
  pr_out_buf_ = engine->RegisterAttribute("pr.out", sizeof(double));
  outdeg_buf_ = engine->RegisterAttribute("pr.outdeg", sizeof(uint32_t));
  footprint_ = core::Footprint();
  footprint_.frontier_reads = {&pr_in_buf_, &outdeg_buf_};
  footprint_.neighbor_writes = {&pr_out_buf_};
  footprint_.atomic_neighbor = true;
  Reset();
}

void PageRankProgram::Reset() {
  SAGE_CHECK(engine_ != nullptr);
  const double init = 1.0 / std::max<size_t>(pr_in_.size(), 1);
  std::fill(pr_in_.begin(), pr_in_.end(), init);
  std::fill(pr_out_.begin(), pr_out_.end(), 0.0);
  pending_fold_ = false;
}

bool PageRankProgram::Filter(NodeId frontier, NodeId neighbor) {
  // Dangling nodes never appear as frontiers with outdeg 0 here: the engine
  // only calls Filter for actual edges, so outdeg_[frontier] >= 1.
  double increment = pr_in_[frontier] * kDamping;
  increment /= static_cast<double>(outdeg_[frontier]);
  pr_out_[neighbor] += increment;
  return false;  // global traversal: the driver supplies every frontier
}

void PageRankProgram::BeginIteration(uint32_t iteration) {
  (void)iteration;
  if (pending_fold_) FoldIteration();
  pending_fold_ = true;
}

void PageRankProgram::FoldIteration() {
  const double base =
      (1.0 - kDamping) / std::max<size_t>(pr_in_.size(), 1);
  for (size_t v = 0; v < pr_in_.size(); ++v) {
    pr_in_[v] = base + pr_out_[v];
    pr_out_[v] = 0.0;
  }
}

void PageRankProgram::Finalize() {
  if (pending_fold_) {
    FoldIteration();
    pending_fold_ = false;
  }
}

bool PageRankProgram::SaveState(std::vector<uint8_t>* out) const {
  // outdeg_ is graph-derived and rebuilt by Bind; only the rank vectors and
  // the fold flag are genuine per-run state.
  snapshot::AppendU32(out, pending_fold_ ? 1 : 0);
  snapshot::AppendVector(out, pr_in_);
  snapshot::AppendVector(out, pr_out_);
  return true;
}

bool PageRankProgram::RestoreState(std::span<const uint8_t> bytes) {
  snapshot::Reader r(bytes);
  uint32_t fold = 0;
  if (!r.ReadU32(&fold) || !r.ReadVector(&pr_in_, pr_in_.size()) ||
      !r.ReadVector(&pr_out_, pr_out_.size()) || !r.Complete()) {
    return false;
  }
  pending_fold_ = fold != 0;
  return true;
}

void PageRankProgram::OnPermutation(std::span<const NodeId> new_of_old) {
  pr_in_ = reorder::PermuteVector(pr_in_, new_of_old);
  pr_out_ = reorder::PermuteVector(pr_out_, new_of_old);
  outdeg_ = reorder::PermuteVector(outdeg_, new_of_old);
}

double PageRankProgram::RankOf(NodeId original) const {
  return pr_in_[engine_->InternalId(original)];
}

util::StatusOr<core::RunStats> RunPageRank(core::Engine& engine,
                                           PageRankProgram& program,
                                           uint32_t iterations) {
  AppParams params;
  params.iterations = iterations;
  return RunApp(engine, program, params);
}

}  // namespace sage::apps
