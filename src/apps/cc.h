#ifndef SAGE_APPS_CC_H_
#define SAGE_APPS_CC_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/types.h"

namespace sage::apps {

/// Connected Components by min-label propagation (one of the primitives
/// Section 4 lists). Labels are *original* node ids, so they are stable
/// under Sampling-based Reordering's relabelings. Run on a symmetrized
/// graph with every node in the initial frontier.
class CcProgram : public core::FilterProgram {
 public:
  void Bind(core::Engine* engine) override;
  bool Filter(graph::NodeId frontier, graph::NodeId neighbor) override;
  void OnPermutation(std::span<const graph::NodeId> new_of_old) override;
  const core::Footprint& footprint() const override { return footprint_; }
  const char* name() const override { return "cc"; }

  /// Re-initializes every node's label to its own (original) id.
  void Reset();

  /// Component label of a node (original ids on both sides).
  graph::NodeId ComponentOf(graph::NodeId original) const;

 private:
  core::Engine* engine_ = nullptr;
  std::vector<graph::NodeId> label_;
  sim::Buffer label_buf_;
  core::Footprint footprint_;
};

/// Runs min-label CC to convergence; returns run stats.
util::StatusOr<core::RunStats> RunConnectedComponents(core::Engine& engine,
                                                      CcProgram& program);

}  // namespace sage::apps

#endif  // SAGE_APPS_CC_H_
