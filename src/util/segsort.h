#ifndef SAGE_UTIL_SEGSORT_H_
#define SAGE_UTIL_SEGSORT_H_

#include <cstdint>
#include <vector>

namespace sage::util {

/// Segmented key-value sort, the host-side stand-in for bb_segsort
/// (Hou et al., ICS'17) which the paper uses to apply the expected-index
/// array when updating the graph representation after Sampling-based
/// Reordering (Section 6).
///
/// Sorts each segment [offsets[i], offsets[i+1]) of `keys` ascending and
/// applies the same permutation to `values`. The sort is stable within each
/// segment (LSD radix), matching the GPU primitive's semantics, and runs in
/// O(k * n) for 32-bit keys.
void SegmentedSortKV(const std::vector<uint64_t>& offsets,
                     std::vector<uint32_t>& keys,
                     std::vector<uint32_t>& values);

/// Single-segment stable LSD radix sort of (key, value) pairs.
void RadixSortKV(std::vector<uint32_t>& keys, std::vector<uint32_t>& values);

/// Stable LSD radix argsort: returns the permutation `idx` such that
/// keys[idx[0]] <= keys[idx[1]] <= ... with ties in original order.
std::vector<uint32_t> RadixArgsort(const std::vector<uint32_t>& keys);

}  // namespace sage::util

#endif  // SAGE_UTIL_SEGSORT_H_
