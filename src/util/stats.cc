#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sage::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {
// Bucket index: 0 for value 0, otherwise 1 + floor(log2(value)).
int BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - __builtin_clzll(value);
}
}  // namespace

void Histogram::Add(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++total_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    uint64_t lo = b == 0 ? 0 : (1ull << (b - 1));
    uint64_t hi = b == 0 ? 1 : (1ull << b);
    os << "[" << lo << "," << hi << "): " << buckets_[b] << "\n";
  }
  return os.str();
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) return 0.0;
  double target = p / 100.0 * static_cast<double>(total_);
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= target) {
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      double hi = b == 0 ? 1.0 : std::ldexp(1.0, b);
      double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return lo + frac * (hi - lo);
    }
    seen += buckets_[b];
  }
  return std::ldexp(1.0, kNumBuckets - 1);
}

double GiniCoefficient(std::vector<uint64_t> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double cum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    cum_weighted += static_cast<double>(values[i]) * static_cast<double>(i + 1);
    cum += static_cast<double>(values[i]);
  }
  if (cum == 0.0) return 0.0;
  double n = static_cast<double>(values.size());
  return (2.0 * cum_weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace sage::util
