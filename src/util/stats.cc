#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace sage::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {
// Bucket index: 0 for value 0, otherwise 1 + floor(log2(value)).
int BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - __builtin_clzll(value);
}

// Largest double strictly below 2^64; the clamp target for bucket bounds
// whose exact value (2^64) is not representable as uint64_t.
double MaxRepresentableBound() {
  return std::nextafter(std::ldexp(1.0, 64), 0.0);
}
}  // namespace

void Histogram::Add(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++total_;
}

void Histogram::AddCount(uint64_t value, uint64_t n) {
  buckets_[BucketIndex(value)] += n;
  total_ += n;
}

uint64_t Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  return 1ull << (b - 1);
}

uint64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  // Bucket b holds values in [2^(b-1), 2^b - 1]. For the top bucket (b=64)
  // the exclusive bound 2^64 would require `1ull << 64` — UB — so the
  // inclusive form is computed as 2*(2^(b-1)) - 1 without ever shifting by b.
  uint64_t lo = 1ull << (b - 1);
  return lo - 1 + lo;  // == 2^b - 1, no overflow: top bucket yields UINT64_MAX
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    os << "[" << BucketLowerBound(b) << "," << BucketUpperBound(b)
       << "]: " << buckets_[b] << "\n";
  }
  return os.str();
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) return 0.0;
  // Nearest-rank target: the k-th smallest sample with k = ceil(p/100 * n),
  // clamped to [1, n] so p=0 selects the minimum. Within the bucket holding
  // that sample we interpolate linearly between the bucket bounds.
  double target = std::ceil(p / 100.0 * static_cast<double>(total_));
  target = std::clamp(target, 1.0, static_cast<double>(total_));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= target) {
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      double hi = b == 0 ? 1.0 : std::ldexp(1.0, b);
      // 2^64 (top bucket's exclusive bound) is not representable as uint64;
      // clamp to the largest double below it so callers can round-trip the
      // result through integer types.
      hi = std::min(hi, MaxRepresentableBound());
      double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return lo + frac * (hi - lo);
    }
    seen += buckets_[b];
  }
  // Unreachable when total_ > 0, but keep a safe clamp instead of the old
  // unrepresentable 2^64 fallback.
  return MaxRepresentableBound();
}

double PercentileOfSorted(std::span<const double> sorted, double p) {
  SAGE_CHECK(!sorted.empty()) << "PercentileOfSorted on empty sample set";
  double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  rank = std::clamp(rank, 1.0, static_cast<double>(sorted.size()));
  return sorted[static_cast<size_t>(rank) - 1];
}

double GiniCoefficient(std::vector<uint64_t> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double cum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    cum_weighted += static_cast<double>(values[i]) * static_cast<double>(i + 1);
    cum += static_cast<double>(values[i]);
  }
  if (cum == 0.0) return 0.0;
  double n = static_cast<double>(values.size());
  return (2.0 * cum_weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace sage::util
