#include "util/strings.h"

#include <cstdio>

#include "util/logging.h"

namespace sage::util {

void AppendV(std::string* out, const char* fmt, va_list args) {
  va_list probe;
  va_copy(probe, args);
  char stack_buf[256];
  int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, probe);
  va_end(probe);
  SAGE_CHECK(needed >= 0) << "vsnprintf failed for format: " << fmt;
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    out->append(stack_buf, static_cast<size_t>(needed));
    return;
  }
  // The stack buffer was too small: render again into the grown output.
  size_t old_size = out->size();
  out->resize(old_size + static_cast<size_t>(needed) + 1);
  std::vsnprintf(out->data() + old_size, static_cast<size_t>(needed) + 1, fmt,
                 args);
  out->resize(old_size + static_cast<size_t>(needed));
}

void AppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  AppendV(out, fmt, args);
  va_end(args);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace sage::util
