#ifndef SAGE_UTIL_STATS_H_
#define SAGE_UTIL_STATS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sage::util {

/// Streaming mean/variance accumulator (Welford). Used by benchmarks to
/// aggregate repeated measurements and by graph statistics.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over non-negative integer values; used for degree
/// distributions, tile-size distributions and SageScope latency metrics.
class Histogram {
 public:
  /// Bucket b covers the closed value range
  /// [BucketLowerBound(b), BucketUpperBound(b)]: {0}, {1}, [2,3], [4,7], ...
  /// with the top bucket [2^63, UINT64_MAX] clamped to the representable
  /// range (2^64 - 1 does not fit in uint64_t arithmetic as an exclusive
  /// bound, which is what made the old half-open rendering UB).
  static constexpr int kNumBuckets = 65;

  void Add(uint64_t value);
  /// Adds `n` samples of `value` in O(1) — the publish-style rebuild path
  /// (mirroring another histogram bucket by bucket) uses this.
  void AddCount(uint64_t value, uint64_t n);

  uint64_t total_count() const { return total_; }
  uint64_t bucket_count(int b) const { return buckets_[b]; }

  /// Inclusive bounds of bucket b (see kNumBuckets comment).
  static uint64_t BucketLowerBound(int b);
  static uint64_t BucketUpperBound(int b);

  /// Renders "[bucket_lo,bucket_hi]: count" lines (inclusive bounds) for
  /// non-empty buckets.
  std::string ToString() const;

  /// Approximate p-th percentile (p in [0,100]). Walks buckets to the one
  /// containing the ceil(p/100 * count)-th sample (nearest-rank; p=0 maps to
  /// the first sample) and interpolates linearly within it. Results are
  /// clamped to the largest uint64-representable double, so the top bucket
  /// never reports the unrepresentable 2^64.
  double Percentile(double p) const;

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t total_ = 0;
};

/// Nearest-rank percentile of an ascending-sorted sample list: returns the
/// ceil(p/100 * n)-th smallest element (1-based; p=0 maps to the minimum).
/// This is the one percentile convention shared by benches, the device
/// profile and serve latency reporting. Asserts on empty input.
double PercentileOfSorted(std::span<const double> sorted, double p);

/// Gini coefficient of a list of non-negative values — the skewness measure
/// we report for synthetic dataset degree distributions.
double GiniCoefficient(std::vector<uint64_t> values);

}  // namespace sage::util

#endif  // SAGE_UTIL_STATS_H_
