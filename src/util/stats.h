#ifndef SAGE_UTIL_STATS_H_
#define SAGE_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sage::util {

/// Streaming mean/variance accumulator (Welford). Used by benchmarks to
/// aggregate repeated measurements and by graph statistics.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over non-negative integer values; used for degree
/// distributions and tile-size distributions in reports.
class Histogram {
 public:
  /// Buckets are powers of two: [0,1), [1,2), [2,4), ... up to 2^63.
  void Add(uint64_t value);

  uint64_t total_count() const { return total_; }

  /// Renders "bucket_lo..bucket_hi: count" lines for non-empty buckets.
  std::string ToString() const;

  /// Approximate p-th percentile (p in [0,100]) assuming uniform
  /// distribution within a bucket.
  double Percentile(double p) const;

 private:
  static constexpr int kNumBuckets = 65;
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t total_ = 0;
};

/// Gini coefficient of a list of non-negative values — the skewness measure
/// we report for synthetic dataset degree distributions.
double GiniCoefficient(std::vector<uint64_t> values);

}  // namespace sage::util

#endif  // SAGE_UTIL_STATS_H_
