#include "util/prefix_sum.h"

namespace sage::util {

std::vector<uint64_t> ExclusivePrefixSum(const std::vector<uint32_t>& in) {
  std::vector<uint64_t> out(in.size() + 1, 0);
  uint64_t acc = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  out[in.size()] = acc;
  return out;
}

uint64_t ExclusivePrefixSumInPlace(std::vector<uint64_t>& v) {
  uint64_t acc = 0;
  for (auto& x : v) {
    uint64_t cur = x;
    x = acc;
    acc += cur;
  }
  return acc;
}

std::vector<uint64_t> InclusivePrefixSum(const std::vector<uint32_t>& in) {
  std::vector<uint64_t> out(in.size(), 0);
  uint64_t acc = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
  return out;
}

}  // namespace sage::util
