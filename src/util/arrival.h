#ifndef SAGE_UTIL_ARRIVAL_H_
#define SAGE_UTIL_ARRIVAL_H_

#include <cstdint>

#include "util/random.h"

namespace sage::util {

/// Shape of a synthetic request-arrival process, in *virtual* seconds —
/// nothing here reads a clock, so a (seed, options) pair always produces
/// the identical arrival sequence.
struct ArrivalOptions {
  /// Long-run mean arrival rate (arrivals per virtual second).
  double rate = 1000.0;

  /// Bursty modulation: the process alternates ON windows at
  /// rate * burst_factor with OFF windows whose rate is chosen so the
  /// long-run mean stays `rate`. burst_factor = 1 or burst_period_s = 0
  /// degenerates to a plain homogeneous Poisson process.
  double burst_factor = 1.0;
  /// Length of one ON+OFF cycle in virtual seconds (0 = no modulation).
  double burst_period_s = 0.0;
  /// Fraction of each cycle spent in the ON phase, in (0, 1).
  double burst_duty = 0.3;
};

/// Deterministic piecewise-Poisson arrival generator. Inter-arrival gaps
/// are exponential at the instantaneous phase rate; an exponential draw
/// that straddles a phase boundary is continued at the next phase's rate
/// (the exact inhomogeneous-Poisson construction, not an approximation).
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalOptions& options, uint64_t seed);

  /// The next absolute arrival time in virtual seconds (strictly
  /// increasing across calls).
  double Next();

  double now() const { return now_; }

 private:
  ArrivalOptions options_;
  Rng rng_;
  double now_ = 0.0;
  /// Index of the ON/OFF cycle containing now_. An integer counter, not
  /// fmod(now_, period): float disagreement between the two at a phase
  /// boundary can yield a zero-length segment and a stuck loop.
  uint64_t cycle_ = 0;
  double on_rate_ = 0.0;
  double off_rate_ = 0.0;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_ARRIVAL_H_
