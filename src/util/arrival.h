#ifndef SAGE_UTIL_ARRIVAL_H_
#define SAGE_UTIL_ARRIVAL_H_

#include <cstdint>

#include "util/random.h"

namespace sage::util {

/// Shape of a synthetic request-arrival process, in *virtual* seconds —
/// nothing here reads a clock, so a (seed, options) pair always produces
/// the identical arrival sequence.
struct ArrivalOptions {
  /// Long-run mean arrival rate (arrivals per virtual second).
  double rate = 1000.0;

  /// Bursty modulation: the process alternates ON windows at
  /// rate * burst_factor with OFF windows whose rate is chosen so the
  /// long-run mean stays `rate`. burst_factor = 1 or burst_period_s = 0
  /// degenerates to a plain homogeneous Poisson process.
  double burst_factor = 1.0;
  /// Length of one ON+OFF cycle in virtual seconds (0 = no modulation).
  double burst_period_s = 0.0;
  /// Fraction of each cycle spent in the ON phase, in (0, 1).
  double burst_duty = 0.3;
};

/// Deterministic piecewise-Poisson arrival generator. Inter-arrival gaps
/// are exponential at the instantaneous phase rate; an exponential draw
/// that straddles a phase boundary is continued at the next phase's rate
/// (the exact inhomogeneous-Poisson construction, not an approximation).
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalOptions& options, uint64_t seed);

  /// The next absolute arrival time in virtual seconds (strictly
  /// increasing across calls).
  double Next();

  double now() const { return now_; }

  /// Complete process state at an arrival boundary. Restoring it into any
  /// ArrivalProcess with the same ArrivalOptions continues the exact
  /// arrival sequence — bit-identical to never having stopped — which is
  /// what lets long-horizon load runs checkpoint and resume.
  struct State {
    Rng::State rng;
    double now = 0.0;
    uint64_t cycle = 0;
    double cycle_start = 0.0;
  };
  State Save() const {
    return State{rng_.state(), now_, cycle_, cycle_start_};
  }
  void Restore(const State& state) {
    rng_.set_state(state.rng);
    now_ = state.now;
    cycle_ = state.cycle;
    cycle_start_ = state.cycle_start;
  }

 private:
  ArrivalOptions options_;
  Rng rng_;
  double now_ = 0.0;
  /// Index of the ON/OFF cycle containing now_. An integer counter, not
  /// fmod(now_, period): float disagreement between the two at a phase
  /// boundary can yield a zero-length segment and a stuck loop.
  uint64_t cycle_ = 0;
  /// Start time of cycle_, accumulated one period per cycle advance rather
  /// than recomputed as double(cycle_) * period — the product loses ulps
  /// once cycle_ is large, and a cycle_start drifting past now_ on a long
  /// horizon yields negative segment capacities. Incremental accumulation
  /// keeps every phase boundary consistent with the boundary the previous
  /// iteration stepped now_ onto (now_ = end uses the same value).
  double cycle_start_ = 0.0;
  double on_rate_ = 0.0;
  double off_rate_ = 0.0;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_ARRIVAL_H_
