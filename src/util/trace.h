#ifndef SAGE_UTIL_TRACE_H_
#define SAGE_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sage::util {

/// One event in the Chrome trace-event JSON format (loadable in
/// chrome://tracing or Perfetto). Supported phases:
///   'X' complete slice (ts + dur), 'b'/'e' async begin/end (keyed by id),
///   'M' metadata (e.g. process_name), 'i' instant.
/// `args` values are pre-rendered JSON literals (use ArgStr for strings).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;  // 'X' only
  uint64_t id = 0;      // 'b'/'e' only
  uint32_t pid = 0;
  uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;

  TraceEvent& ArgStr(const std::string& key, const std::string& value);
  TraceEvent& ArgU64(const std::string& key, uint64_t value);
  TraceEvent& ArgF(const std::string& key, double value);
};

/// Thread-safe in-memory trace sink (SageScope; DESIGN.md §8). Wall-clock
/// timestamps are taken relative to construction via NowUs(); modeled-time
/// tracks (kernel timelines) instead stamp deterministic simulated seconds,
/// so those events are bit-identical between serial and parallel runs.
class TraceLog {
 public:
  TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  void Add(TraceEvent event);

  /// Microseconds of wall time since this log was created.
  double NowUs() const;

  size_t size() const;
  std::vector<TraceEvent> snapshot() const;

  /// Renders {"traceEvents": [...]} — the Chrome trace-event JSON envelope.
  std::string ToJson() const;

 private:
  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Convenience: a ph='M' process_name metadata event, which labels the pid
/// track in the trace viewer.
TraceEvent ProcessNameEvent(uint32_t pid, const std::string& name);

}  // namespace sage::util

#endif  // SAGE_UTIL_TRACE_H_
