#ifndef SAGE_UTIL_STRINGS_H_
#define SAGE_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>

namespace sage::util {

/// Appends printf-formatted text to `out`. Unlike a fixed stack buffer this
/// never truncates: the required length is taken from the vsnprintf return
/// value and the output grows to fit.
void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// va_list flavour of AppendF for wrappers that forward their own varargs.
void AppendV(std::string* out, const char* fmt, va_list args);

/// Returns `s` escaped for embedding inside a JSON string literal (quotes,
/// backslashes and control characters; no surrounding quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace sage::util

#endif  // SAGE_UTIL_STRINGS_H_
