#ifndef SAGE_UTIL_SIMD_H_
#define SAGE_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sage::util {

/// Sum of `n` bytes (each 0..255) as a uint64. The replay fold uses this on
/// 0/1 hit flags — AVX2 path reduces 32 bytes per _mm256_sad_epu8; the
/// scalar loop autovectorizes to the same idea on other targets.
inline uint64_t SumBytes(const uint8_t* p, size_t n) {
  uint64_t total = 0;
#if defined(__AVX2__)
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    // Sum of absolute differences against zero = horizontal byte sums into
    // four 64-bit lanes; accumulates without overflow for any batch size.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, _mm256_setzero_si256()));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += p[i];
#else
  for (size_t i = 0; i < n; ++i) total += p[i];
#endif
  return total;
}

/// Fills out[i] = (base + indices[i] << elem_shift) >> sector_shift for
/// i in [0, n) — the sector-id computation of a gather batch when both the
/// element size and the sector size are powers of two (the common case;
/// callers fall back to the div/mul form otherwise).
inline void ShiftedSectorIds(const uint64_t* indices, size_t n, uint64_t base,
                             uint32_t elem_shift, uint32_t sector_shift,
                             uint64_t* out) {
#if defined(__AVX2__)
  __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices + i));
    __m256i addr =
        _mm256_add_epi64(vbase, _mm256_slli_epi64(idx, elem_shift));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_srli_epi64(addr, sector_shift));
  }
  for (; i < n; ++i) {
    out[i] = (base + (indices[i] << elem_shift)) >> sector_shift;
  }
#else
  // Shift-only body: autovectorizes on any target with 64-bit SIMD shifts.
  for (size_t i = 0; i < n; ++i) {
    out[i] = (base + (indices[i] << elem_shift)) >> sector_shift;
  }
#endif
}

/// True if `v` has exactly one bit set.
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace sage::util

#endif  // SAGE_UTIL_SIMD_H_
