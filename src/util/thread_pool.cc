#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace sage::util {

ThreadPool::ThreadPool(uint32_t num_threads) {
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (threads_.empty()) {
    // No workers: run inline so Submit/Drain stay usable on a zero-size pool.
    try {
      fn();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && running_tasks_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_tasks_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --running_tasks_;
      if (queue_.empty() && running_tasks_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(uint32_t worker, size_t index)>& fn) {
  if (n == 0) return;
  // Dynamic dispatch: determinism must come from what each index *does*
  // (keyed traces), never from which worker claims it.
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr for_error;
  std::mutex err_mu;
  auto body = [&](uint32_t worker) {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(worker, i);
      } catch (...) {
        {
          std::unique_lock<std::mutex> lock(err_mu);
          if (!for_error) for_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  uint32_t helpers =
      static_cast<uint32_t>(std::min<size_t>(threads_.size(), n));
  std::mutex done_mu;
  std::condition_variable done_cv;
  uint32_t pending = helpers;  // guarded by done_mu
  for (uint32_t w = 0; w < helpers; ++w) {
    Submit([&, w] {
      body(w);
      // Decrement under done_mu: the caller may destroy done_mu the moment
      // it observes pending == 0, so the counter and the notify must be a
      // single critical section.
      std::unique_lock<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_all();
    });
  }
  // The caller is worker id size(): always distinct from pool workers.
  body(size());
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  if (for_error) std::rethrow_exception(for_error);
}

std::vector<std::pair<size_t, size_t>> ThreadPool::StaticChunks(size_t begin,
                                                                size_t end,
                                                                size_t grain) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (begin >= end) return chunks;
  if (grain == 0) grain = 1;
  chunks.reserve((end - begin + grain - 1) / grain);
  for (size_t lo = begin; lo < end; lo += grain) {
    chunks.emplace_back(lo, std::min(lo + grain, end));
  }
  return chunks;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const ChunkFn& fn) {
  if (begin >= end) return;
  std::vector<std::pair<size_t, size_t>> chunks =
      StaticChunks(begin, end, grain);
  uint32_t num_workers = workers();
  std::exception_ptr for_error;
  std::mutex err_mu;
  // Worker w owns chunks w, w + workers(), w + 2 * workers(), ... — a pure
  // function of the iteration bounds and pool size, never of timing.
  auto body = [&](uint32_t worker) {
    for (size_t c = worker; c < chunks.size(); c += num_workers) {
      try {
        fn(worker, chunks[c].first, chunks[c].second);
      } catch (...) {
        std::unique_lock<std::mutex> lock(err_mu);
        if (!for_error) for_error = std::current_exception();
        return;
      }
    }
  };
  uint32_t helpers = static_cast<uint32_t>(
      std::min<size_t>(threads_.size(), chunks.size()));
  std::mutex done_mu;
  std::condition_variable done_cv;
  uint32_t pending = helpers;  // guarded by done_mu
  for (uint32_t w = 0; w < helpers; ++w) {
    Submit([&, w] {
      body(w);
      std::unique_lock<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_all();
    });
  }
  body(size());
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  if (for_error) std::rethrow_exception(for_error);
}

uint32_t ThreadPool::HardwareThreads() {
  uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace sage::util
