#include "util/segsort.h"

#include <array>

#include "util/logging.h"

namespace sage::util {
namespace {

// One LSD radix pass (8-bit digits) over pairs in [begin, end) of
// keys/values, using scratch buffers of the same span size.
void RadixPass(uint32_t* keys, uint32_t* values, uint32_t* keys_tmp,
               uint32_t* values_tmp, size_t n, int shift) {
  std::array<size_t, 257> count{};
  for (size_t i = 0; i < n; ++i) {
    ++count[((keys[i] >> shift) & 0xff) + 1];
  }
  for (size_t d = 1; d <= 256; ++d) count[d] += count[d - 1];
  for (size_t i = 0; i < n; ++i) {
    size_t pos = count[(keys[i] >> shift) & 0xff]++;
    keys_tmp[pos] = keys[i];
    values_tmp[pos] = values[i];
  }
}

void RadixSortRange(uint32_t* keys, uint32_t* values, size_t n,
                    std::vector<uint32_t>& keys_scratch,
                    std::vector<uint32_t>& values_scratch) {
  if (n <= 1) return;
  if (keys_scratch.size() < n) {
    keys_scratch.resize(n);
    values_scratch.resize(n);
  }
  uint32_t* a_k = keys;
  uint32_t* a_v = values;
  uint32_t* b_k = keys_scratch.data();
  uint32_t* b_v = values_scratch.data();
  for (int pass = 0; pass < 4; ++pass) {
    RadixPass(a_k, a_v, b_k, b_v, n, pass * 8);
    std::swap(a_k, b_k);
    std::swap(a_v, b_v);
  }
  // Four passes means the sorted data ended up back in (keys, values):
  // after an even number of swaps a_k == keys again. Nothing to copy.
  SAGE_DCHECK(a_k == keys);
}

}  // namespace

void SegmentedSortKV(const std::vector<uint64_t>& offsets,
                     std::vector<uint32_t>& keys,
                     std::vector<uint32_t>& values) {
  SAGE_CHECK_EQ(keys.size(), values.size());
  SAGE_CHECK(!offsets.empty());
  SAGE_CHECK_EQ(offsets.back(), keys.size());
  std::vector<uint32_t> ks, vs;
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    uint64_t beg = offsets[s];
    uint64_t end = offsets[s + 1];
    SAGE_DCHECK(beg <= end);
    RadixSortRange(keys.data() + beg, values.data() + beg,
                   static_cast<size_t>(end - beg), ks, vs);
  }
}

void RadixSortKV(std::vector<uint32_t>& keys, std::vector<uint32_t>& values) {
  SAGE_CHECK_EQ(keys.size(), values.size());
  std::vector<uint32_t> ks, vs;
  RadixSortRange(keys.data(), values.data(), keys.size(), ks, vs);
}

std::vector<uint32_t> RadixArgsort(const std::vector<uint32_t>& keys) {
  std::vector<uint32_t> keys_copy = keys;
  std::vector<uint32_t> idx(keys.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
  RadixSortKV(keys_copy, idx);
  return idx;
}

}  // namespace sage::util
