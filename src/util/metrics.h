#ifndef SAGE_UTIL_METRICS_H_
#define SAGE_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace sage::util {

/// Monotonic event counter. Add/Set are relaxed atomics — safe from any
/// thread with no lock on the hot path. Set exists for publish-style
/// mirroring of totals maintained elsewhere (e.g. MemStats exports).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written floating-point value (ratios, accumulated milliseconds,
/// current limits). Atomic; Add uses C++20 atomic<double>::fetch_add.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe power-of-two-bucket histogram metric: a mutex-guarded
/// util::Histogram. Add is one short critical section; snapshot() copies.
class HistogramMetric {
 public:
  void Add(uint64_t value);
  /// Adds `n` samples of `value` under one lock acquisition.
  void AddCount(uint64_t value, uint64_t n);
  /// Clears all buckets; for publish-style exporters that rebuild the
  /// distribution from a source of truth on every export.
  void Reset();
  Histogram snapshot() const;

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Point-in-time copy of one histogram metric for export.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Non-empty buckets as (inclusive lo, inclusive hi, count).
  struct Bucket {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint64_t count = 0;
  };
  std::vector<Bucket> buckets;
};

/// Point-in-time copy of a whole registry, sorted by metric name so export
/// order is deterministic. With deterministic metric values (everything the
/// sim/engine publishes), the rendered JSON is bit-identical across runs.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  std::string ToJson() const;
};

/// Named-metric registry (SageScope; DESIGN.md §8). Lookup by name takes a
/// mutex, but returned pointers are stable for the registry's lifetime, so
/// hot paths resolve each metric once and then update lock-free (counters,
/// gauges) or under a single short mutex (histograms).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric with this name, creating it on first use.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_METRICS_H_
