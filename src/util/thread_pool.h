#ifndef SAGE_UTIL_THREAD_POOL_H_
#define SAGE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sage::util {

/// A fixed-size host worker pool. Built for the simulator's parallel
/// execution backend (DESIGN.md §5): the engine fans the per-SM work of a
/// kernel phase out as independent index ranges, each worker records into
/// its own trace, and the caller joins before the deterministic replay.
///
/// Concurrency contract:
///  - Submit/Drain form a plain task queue (used for background jobs such
///    as concurrent bench configs).
///  - ParallelFor(n, fn) runs fn(worker, index) for every index in [0, n)
///    exactly once and returns when all of them finished. The caller
///    participates as worker id `size()` (so a pool of T threads gives
///    T + 1 workers), which keeps ParallelFor correct even for a pool of
///    size zero. Worker ids are stable within one ParallelFor call — one
///    worker id is never active on two threads at once — so fn may keep
///    per-worker state indexed by id.
///  - The first exception thrown by a task or a ParallelFor body is
///    captured and rethrown on the calling thread; remaining indices are
///    abandoned.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is valid: everything runs inline on
  /// the calling thread).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool threads (excluding the caller).
  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }
  /// Concurrent workers a ParallelFor can use (pool threads + caller).
  uint32_t workers() const { return size() + 1; }

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any). Submitting zero tasks
  /// and draining is a no-op.
  void Drain();

  /// Runs fn(worker, index) for index in [0, n), dynamically load-balanced
  /// across workers; see the class comment for the contract.
  void ParallelFor(size_t n,
                   const std::function<void(uint32_t worker, size_t index)>& fn);

  /// One contiguous chunk of a static partition: fn receives
  /// [chunk_begin, chunk_end).
  using ChunkFn =
      std::function<void(uint32_t worker, size_t chunk_begin, size_t chunk_end)>;

  /// Statically partitioned variant: [begin, end) is cut into chunks of
  /// `grain` indices (the final chunk may be short) and chunk c is always
  /// executed by worker c % workers(), each worker walking its chunks in
  /// ascending order. The chunk → worker mapping is a pure function of
  /// (begin, end, grain, workers()) — see StaticChunks — so call sites that
  /// keep per-worker state get the same assignment on every run. Same
  /// caller-participates and first-exception contract as the dynamic form.
  void ParallelFor(size_t begin, size_t end, size_t grain, const ChunkFn& fn);

  /// The deterministic chunk list ParallelFor(begin, end, grain, ...) uses:
  /// chunk c covers [begin + c * grain, min(begin + (c+1) * grain, end))
  /// and runs on worker c % num_workers. Exposed for unit tests and for
  /// call sites that need to precompute per-chunk outputs. grain == 0 is
  /// treated as grain == 1.
  static std::vector<std::pair<size_t, size_t>> StaticChunks(size_t begin,
                                                             size_t end,
                                                             size_t grain);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static uint32_t HardwareThreads();

 private:
  struct ForJob;

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals Drain: queue empty & idle
  std::deque<std::function<void()>> queue_;
  uint32_t running_tasks_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_THREAD_POOL_H_
